// Package repro reproduces Choi & Yew, "Compiler and Hardware Support
// for Cache Coherence in Large-Scale Multiprocessors: Design
// Considerations and Performance Study" (ISCA 1996).
//
// The library lives under internal/: the compiler pipeline (pfl,
// epochg, sections, marking), the machine substrate (machine, cache,
// memory, network, memsys), the coherence schemes (tpi, directory,
// swschemes), the execution-driven simulator (sim), and the evaluation
// harness (bench, exper, overhead). Package internal/core is the
// high-level facade; cmd/ holds the tools and examples/ the runnable
// walk-throughs. See README.md, DESIGN.md, and EXPERIMENTS.md.
package repro
