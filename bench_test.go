package repro

// One benchmark per table/figure of the paper's evaluation (DESIGN.md
// experiment index). Each benchmark regenerates its table through the
// experiment harness and reports the headline quantity as a custom
// metric, so `go test -bench=. -benchmem` doubles as a full (small-size)
// reproduction run. cmd/experiments produces the same tables at the
// paper workload size.

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/overhead"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func suite() *exper.Suite {
	return exper.NewSuite(bench.Params{N: 16, Steps: 2}, 8)
}

func cell(tab *exper.Table, row, col int) float64 {
	s := strings.TrimSuffix(tab.Rows[row][col], "%")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// BenchmarkFig5StorageOverhead regenerates E1 (Figure 5).
func BenchmarkFig5StorageOverhead(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		c := overhead.PaperDefault()
		fm := overhead.FullMap(c)
		tp := overhead.TPI(c)
		ratio = float64(fm.Total()) / float64(tp.Total())
	}
	b.ReportMetric(ratio, "fullmap/tpi-bits")
}

// BenchmarkFig11MissRates regenerates E3 (Figure 11).
func BenchmarkFig11MissRates(b *testing.B) {
	var tpi, hw float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E3MissRates()
		if err != nil {
			b.Fatal(err)
		}
		// ocean row: columns benchmark, BASE, SC, TPI, HW
		tpi, hw = cell(tab, 1, 3), cell(tab, 1, 4)
	}
	b.ReportMetric(tpi, "ocean-tpi-miss%")
	b.ReportMetric(hw, "ocean-hw-miss%")
}

// BenchmarkMissClassification regenerates E4 (miss decomposition).
func BenchmarkMissClassification(b *testing.B) {
	var conserv float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E4MissClassification()
		if err != nil {
			b.Fatal(err)
		}
		conserv = cell(tab, 0, 6) // spec77/TPI conservative per 1000 reads
	}
	b.ReportMetric(conserv, "spec77-conserv/1k")
}

// BenchmarkNetworkTraffic regenerates E5 (traffic figure).
func BenchmarkNetworkTraffic(b *testing.B) {
	var trfdWrite, trfdWriteNoWbc float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E5NetworkTraffic()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tab.Rows {
			if r[0] == "trfd" && r[1] == "TPI" {
				trfdWrite, _ = strconv.ParseFloat(r[3], 64)
			}
			if r[0] == "trfd" && r[1] == "TPI-nowbc" {
				trfdWriteNoWbc, _ = strconv.ParseFloat(r[3], 64)
			}
		}
	}
	b.ReportMetric(trfdWrite, "trfd-write-wpr")
	b.ReportMetric(trfdWriteNoWbc, "trfd-write-nowbc-wpr")
}

// BenchmarkMissLatency regenerates E6 (average miss latency table).
func BenchmarkMissLatency(b *testing.B) {
	var tpiQcd, hwQcd float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E6MissLatency()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tab.Rows {
			if r[0] == "qcd2" {
				tpiQcd, _ = strconv.ParseFloat(r[1], 64)
				hwQcd, _ = strconv.ParseFloat(r[3], 64)
			}
		}
	}
	b.ReportMetric(tpiQcd, "qcd2-tpi-lat")
	b.ReportMetric(hwQcd, "qcd2-hw-lat")
}

// BenchmarkExecutionTime regenerates E7 (normalized execution time).
func BenchmarkExecutionTime(b *testing.B) {
	var tpiNorm float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E7ExecutionTime()
		if err != nil {
			b.Fatal(err)
		}
		tpiNorm = cell(tab, 1, 3) // ocean, TPI/HW
	}
	b.ReportMetric(tpiNorm, "ocean-tpi/hw-time")
}

// BenchmarkTimetagSensitivity regenerates E8.
func BenchmarkTimetagSensitivity(b *testing.B) {
	var resets2 float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E8TimetagSensitivity()
		if err != nil {
			b.Fatal(err)
		}
		resets2 = cell(tab, 0, 3) // spec77, 2-bit resets
	}
	b.ReportMetric(resets2, "spec77-2bit-resets")
}

// BenchmarkCacheSizeSweep regenerates E9.
func BenchmarkCacheSizeSweep(b *testing.B) {
	var small, large float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E9CacheSizeSweep()
		if err != nil {
			b.Fatal(err)
		}
		small, large = cell(tab, 0, 2), cell(tab, 3, 2)
	}
	b.ReportMetric(small, "spec77-4KB-tpi-miss%")
	b.ReportMetric(large, "spec77-256KB-tpi-miss%")
}

// BenchmarkLineSizeSweep regenerates E10.
func BenchmarkLineSizeSweep(b *testing.B) {
	var hwUnnec16 float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E10LineSizeSweep()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tab.Rows {
			if r[0] == "arc2d" && r[1] == "16w" {
				hwUnnec16, _ = strconv.ParseFloat(r[5], 64)
			}
		}
	}
	b.ReportMetric(hwUnnec16, "arc2d-hw-unnec-16w/1k")
}

// BenchmarkTwoPhaseResetAblation regenerates E11.
func BenchmarkTwoPhaseResetAblation(b *testing.B) {
	var twoPhase, flash float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E11ResetAblation()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tab.Rows {
			if r[0] == "spec77" && r[1] == "two-phase" {
				twoPhase, _ = strconv.ParseFloat(r[3], 64)
			}
			if r[0] == "spec77" && r[1] == "flash" {
				flash, _ = strconv.ParseFloat(r[3], 64)
			}
		}
	}
	b.ReportMetric(twoPhase, "spec77-2phase-invals")
	b.ReportMetric(flash, "spec77-flash-invals")
}

// BenchmarkScalability regenerates E12.
func BenchmarkScalability(b *testing.B) {
	var lat32 float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E12Scalability()
		if err != nil {
			b.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1]
		lat32, _ = strconv.ParseFloat(last[2], 64)
	}
	b.ReportMetric(lat32, "tpi-lat-at-32p")
}

// BenchmarkCompilerAblations regenerates E13.
func BenchmarkCompilerAblations(b *testing.B) {
	var full, neither float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E13CompilerAblations()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tab.Rows {
			if r[0] == "spec77" && r[1] == "full" {
				full = cell(tab, 0, 2)
			}
			if r[0] == "spec77" && r[1] == "neither" {
				neither, _ = strconv.ParseFloat(strings.TrimSuffix(r[2], "%"), 64)
			}
		}
	}
	b.ReportMetric(full, "spec77-full-miss%")
	b.ReportMetric(neither, "spec77-ablated-miss%")
}

// BenchmarkCompile measures the compiler pipeline itself.
func BenchmarkCompile(b *testing.B) {
	k, err := bench.Get("spec77", bench.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(k.Source, core.DefaultCompileOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures simulated references per second
// under TPI on the ocean kernel.
func BenchmarkSimulatorThroughput(b *testing.B) {
	k, err := bench.Get("ocean", bench.Params{N: 32, Steps: 2})
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.Compile(k.Source, core.DefaultCompileOptions())
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.Default(machine.SchemeTPI)
	var refs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := core.Run(c, cfg)
		if err != nil {
			b.Fatal(err)
		}
		refs = st.Reads + st.Writes
	}
	b.ReportMetric(float64(refs), "refs/run")
}

// BenchmarkSimHotLoop measures the simulator's inner loop on each paper
// kernel at the unit-test workload size under TPI: compile once, then
// simulate repeatedly on a fresh memory system. ns/op tracks the
// end-to-end run; B/op must stay flat in the reference count (the
// steady-state inner loop performs no per-reference allocations).
func BenchmarkSimHotLoop(b *testing.B) {
	for _, name := range bench.Names {
		b.Run(name, func(b *testing.B) {
			k, err := bench.Get(name, bench.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			c, err := core.Compile(k.Source, core.DefaultCompileOptions())
			if err != nil {
				b.Fatal(err)
			}
			cfg := machine.Default(machine.SchemeTPI)
			var refs int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := core.Run(c, cfg)
				if err != nil {
					b.Fatal(err)
				}
				refs = st.Reads + st.Writes
			}
			b.ReportMetric(float64(refs), "refs/run")
		})
	}
}

// BenchmarkStreamFastPath measures the affine reference-stream fast
// path: fastpath on/off across every scheme (all seven plus two-level
// TPI implement stream cursors) at 16 and 64 simulated processors, on
// two workload shapes — ocean (mixed: stencil sweeps plus
// critical-section reductions, so a fraction of references never
// streams) and trfd (stream-dominated: the n-cubed matmul inner loops
// put nearly every reference on the fast path). Both arms produce
// bit-identical statistics (guarded by the exper equivalence tests);
// only ns/op may change. docs/results.md records the measured deltas.
func BenchmarkStreamFastPath(b *testing.B) {
	variants := []struct {
		name    string
		scheme  machine.Scheme
		l1Words int64
	}{
		{"BASE", machine.SchemeBase, 0},
		{"SC", machine.SchemeSC, 0},
		{"TPI", machine.SchemeTPI, 0},
		{"TPI2L", machine.SchemeTPI, 1024},
		{"HW", machine.SchemeHW, 0},
		{"VC", machine.SchemeVC, 0},
		{"TARDIS", machine.SchemeTardis, 0},
		{"TARDIS2", machine.SchemeTardis2, 0},
	}
	for _, kn := range []string{"ocean", "trfd"} {
		k, err := bench.Get(kn, bench.Params{N: 48, Steps: 2})
		if err != nil {
			b.Fatal(err)
		}
		c, err := core.Compile(k.Source, core.DefaultCompileOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range variants {
			for _, procs := range []int{16, 64} {
				for _, fast := range []bool{false, true} {
					mode := "scalar"
					if fast {
						mode = "stream"
					}
					b.Run(fmt.Sprintf("%s/%s/procs=%d/%s", kn, v.name, procs, mode), func(b *testing.B) {
						cfg := machine.Default(v.scheme)
						cfg.L1Words = v.l1Words
						cfg.Procs = procs
						cfg.FastPath = fast
						var refs int64
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							st, err := core.Run(c, cfg)
							if err != nil {
								b.Fatal(err)
							}
							refs = st.Reads + st.Writes
						}
						b.ReportMetric(float64(refs), "refs/run")
					})
				}
			}
		}
	}
}

// BenchmarkHostParallel measures the host-parallel epoch execution mode
// on 16- and 64-processor ocean runs at host worker counts 1/2/4/8,
// under TPI and the two buffered schemes (HW's barrier-deferred
// directory and VC's always-buffered lanes shard through per-lane logs
// merged at the barrier). hostpar=1 is the sequential path (the mode
// only engages above one worker); every variant produces bit-identical
// stats, so ns/op is the only thing that may change. Wall-clock speedup
// requires host cores: on a single-core host (GOMAXPROCS=1) the sharded
// variants measure pure overhead, not speedup.
func BenchmarkHostParallel(b *testing.B) {
	k, err := bench.Get("ocean", bench.Params{N: 32, Steps: 2})
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.Compile(k.Source, core.DefaultCompileOptions())
	if err != nil {
		b.Fatal(err)
	}
	schemes := []machine.Scheme{machine.SchemeTPI, machine.SchemeHW, machine.SchemeVC}
	for _, s := range schemes {
		for _, procs := range []int{16, 64} {
			for _, hp := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/procs=%d/hostpar=%d", s, procs, hp), func(b *testing.B) {
					cfg := machine.Default(s)
					cfg.Procs = procs
					cfg.HostParallel = hp
					var refs int64
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						st, err := core.Run(c, cfg)
						if err != nil {
							b.Fatal(err)
						}
						refs = st.Reads + st.Writes
					}
					b.ReportMetric(float64(refs), "refs/run")
				})
			}
		}
	}
}

// BenchmarkLargeP measures the large-machine regime the clustered mesh
// model targets: ocean on a mesh of 256 to 4096 simulated processors
// under the hardware directory, two-level TPI, and Tardis 2.0, with
// host parallelism fixed at 8 workers. The refs/run metric makes runs comparable across
// P (the kernel, and so the reference stream, is the same size at every
// P — only the machine grows); allocs/op is the lazy per-processor
// state working: idle processors past the kernel's parallelism must not
// cost cache or tracker allocations.
func BenchmarkLargeP(b *testing.B) {
	k, err := bench.Get("ocean", bench.Params{N: 48, Steps: 2})
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.Compile(k.Source, core.DefaultCompileOptions())
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name    string
		scheme  machine.Scheme
		l1Words int64
	}{
		{"HW", machine.SchemeHW, 0},
		{"TPI2L", machine.SchemeTPI, 1024},
		{"TARDIS2", machine.SchemeTardis2, 0},
	}
	for _, v := range variants {
		for _, procs := range []int{256, 1024, 4096} {
			b.Run(fmt.Sprintf("%s/procs=%d", v.name, procs), func(b *testing.B) {
				cfg := machine.Default(v.scheme)
				cfg.L1Words = v.l1Words
				cfg.Procs = procs
				cfg.Topology = "mesh"
				cfg.ClusterSize = 16
				cfg.HostParallel = 8
				var refs int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st, err := core.Run(c, cfg)
					if err != nil {
						b.Fatal(err)
					}
					refs = st.Reads + st.Writes
				}
				b.ReportMetric(float64(refs), "refs/run")
			})
		}
	}
}

// BenchmarkObsOverhead measures the cost of the instrumentation layer on
// the ocean/TPI hot loop at each obs.Level. The "off" sub-benchmark is
// the same work as BenchmarkSimHotLoop/ocean and must stay within noise
// of it: with observation off the runner selects the plain readFast /
// writeFast closures and no obs code is on the reference path.
func BenchmarkObsOverhead(b *testing.B) {
	k, err := bench.Get("ocean", bench.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.Compile(k.Source, core.DefaultCompileOptions())
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.Default(machine.SchemeTPI)
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(c, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("counters", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RunObserved(c, cfg, obs.LevelCounters, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trace", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RunObserved(c, cfg, obs.LevelTrace, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTelemetryOverhead measures the cost of the live-telemetry
// progress sampling on the ocean/TPI hot loop. "off" is the uninstru-
// mented baseline (identical work to BenchmarkSimHotLoop/ocean); "idle"
// attaches a progress callback that exports per-scheme counter deltas
// into a telemetry registry at every epoch barrier — the tpiserved
// configuration with no scraper or SSE subscriber attached. The
// per-reference hot path is untouched by sampling, so the two arms must
// stay within noise of each other; docs/results.md records the measured
// numbers.
func BenchmarkTelemetryOverhead(b *testing.B) {
	k, err := bench.Get("ocean", bench.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.Compile(k.Source, core.DefaultCompileOptions())
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.Default(machine.SchemeTPI)
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(c, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("idle", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		epochs := reg.Counter("bench_epochs_total", "", telemetry.Labels{"scheme": "TPI"})
		misses := reg.Counter("bench_read_misses_total", "", telemetry.Labels{"scheme": "TPI"})
		var prevEpoch, prevMiss int64
		progress := func(p sim.Progress) {
			epochs.Add(p.Epoch - prevEpoch)
			misses.Add(p.Counters.ReadMisses - prevMiss)
			prevEpoch, prevMiss = p.Epoch, p.Counters.ReadMisses
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			prevEpoch, prevMiss = 0, 0
			if _, err := core.RunWithOptions(c, cfg, core.RunOptions{Progress: progress}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLimitedPointerDirectory regenerates E14 (extension).
func BenchmarkLimitedPointerDirectory(b *testing.B) {
	var evict1 float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E14LimitedPointers()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tab.Rows {
			if r[0] == "trfd" && r[1] == "DIR_NB(1)" {
				evict1, _ = strconv.ParseFloat(r[3], 64)
			}
		}
	}
	b.ReportMetric(evict1, "trfd-nb1-evictions")
}

// BenchmarkConsistencyModels regenerates E15 (extension).
func BenchmarkConsistencyModels(b *testing.B) {
	var tpiSlow, hwSlow float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E15ConsistencyModels()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tab.Rows {
			if r[0] == "ocean" && r[1] == "TPI" {
				tpiSlow, _ = strconv.ParseFloat(r[4], 64)
			}
			if r[0] == "ocean" && r[1] == "HW" {
				hwSlow, _ = strconv.ParseFloat(r[4], 64)
			}
		}
	}
	b.ReportMetric(tpiSlow, "ocean-tpi-sc-slowdown")
	b.ReportMetric(hwSlow, "ocean-hw-sc-slowdown")
}

// BenchmarkSchedulingPolicies regenerates E16 (extension).
func BenchmarkSchedulingPolicies(b *testing.B) {
	var blockMiss, dynMiss float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E16SchedulingPolicies()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tab.Rows {
			if r[0] == "ocean" && r[1] == "block" {
				blockMiss = cell(tab, 0, 2)
			}
			if r[0] == "ocean" && r[1] == "dynamic" {
				dynMiss, _ = strconv.ParseFloat(strings.TrimSuffix(r[2], "%"), 64)
			}
		}
	}
	b.ReportMetric(blockMiss, "ocean-block-miss%")
	b.ReportMetric(dynMiss, "ocean-dynamic-miss%")
}

// BenchmarkToolchain regenerates E21 (sequential -> auto-parallel ->
// simulate).
func BenchmarkToolchain(b *testing.B) {
	var loops float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E21Toolchain()
		if err != nil {
			b.Fatal(err)
		}
		loops = cell(tab, 0, 1)
	}
	b.ReportMetric(loops, "ocean-seq-doalls")
}

// BenchmarkOffTheShelf regenerates E19 (two-level implementation).
func BenchmarkOffTheShelf(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E19OffTheShelf()
		if err != nil {
			b.Fatal(err)
		}
		slowdown, _ = strconv.ParseFloat(tab.Rows[1][4], 64)
	}
	b.ReportMetric(slowdown, "ocean-2level-slowdown")
}

// BenchmarkTopologies regenerates E20 (multistage vs torus).
func BenchmarkTopologies(b *testing.B) {
	var torusLat float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E20Topologies()
		if err != nil {
			b.Fatal(err)
		}
		torusLat, _ = strconv.ParseFloat(tab.Rows[0][3], 64)
	}
	b.ReportMetric(torusLat, "ocean-tpi-torus-lat")
}

// BenchmarkHSCDFamily regenerates E17 (SC vs VC vs TPI).
func BenchmarkHSCDFamily(b *testing.B) {
	var vc, tpi float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E17HSCDFamily()
		if err != nil {
			b.Fatal(err)
		}
		vc, tpi = cell(tab, 1, 2), cell(tab, 1, 3)
	}
	b.ReportMetric(vc, "ocean-vc-miss%")
	b.ReportMetric(tpi, "ocean-tpi-miss%")
}

// BenchmarkWritePolicies regenerates E18.
func BenchmarkWritePolicies(b *testing.B) {
	var stall float64
	for i := 0; i < b.N; i++ {
		tab, err := suite().E18WritePolicies()
		if err != nil {
			b.Fatal(err)
		}
		stall, _ = strconv.ParseFloat(tab.Rows[1][3], 64)
	}
	b.ReportMetric(stall, "trfd-flush-stalls")
}
