// Migration: the paper's Section 5 scenario. Under a simple
// compiler-directed invalidation scheme, a task that migrates to another
// processor can read its own stale leftovers; TPI's timetags make the
// cached copies self-describing, so coherence survives arbitrary task
// placement. This example runs the same program with serial tasks pinned
// to processor 0 and with serial tasks rotating across all processors
// (plus cyclic DOALL scheduling), and verifies both against the
// sequential oracle under every scheme.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
)

const src = `
program migration
param n = 48
scalar total = 0.0
array A[n]
array B[n]

proc main() {
  doall i = 0 to n-1 {
    A[i] = i
    B[i] = 0.0
  }
  for t = 0 to 5 {
    # serial epoch: under -migrate this runs on a different processor
    # each iteration, leaving stale copies of A[0] behind everywhere.
    A[0] = A[0] + 1.0
    doall i = 1 to n-1 {
      B[i] = A[i-1] + A[0]
    }
    doall i = 1 to n-1 {
      A[i] = B[i] * 0.5
    }
  }
  doall i = 0 to n-1 {
    critical {
      total = total + A[i]
    }
  }
}
`

func main() {
	c, err := core.Compile(src, core.DefaultCompileOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, migrate := range []bool{false, true} {
		fmt.Printf("--- serial-task placement: migrate=%v ---\n", migrate)
		for _, scheme := range machine.Schemes {
			cfg := machine.Default(scheme)
			cfg.Procs = 8
			cfg.MigrateSerial = migrate
			cfg.CyclicSched = migrate
			st, err := core.VerifyAgainstOracle(c, cfg)
			if err != nil {
				log.Fatalf("%s migrate=%v: %v", scheme, migrate, err)
			}
			fmt.Printf("%-5s ok: missrate=%.4f cycles=%d\n", scheme, st.MissRate(), st.Cycles)
		}
		fmt.Println()
	}
	fmt.Println("All schemes stay coherent under task migration: TPI because a")
	fmt.Println("Time-Read trusts a copy only if its timetag proves it was")
	fmt.Println("(re)validated after the last possible write, regardless of")
	fmt.Println("which processor ran which task.")
}
