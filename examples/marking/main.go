// Marking walk-through: reproduces the paper's Figure 1/2 motivation —
// which reads become Time-Reads and why — on a program containing every
// interesting case: cross-epoch producer/consumer flow, intra-task reuse,
// read-only data, an unanalyzable subscript X[f(i)], loop-carried
// distances, a procedure boundary, and lock-protected data.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/marking"
)

const src = `
program figure1
param n = 32
scalar sum = 0.0
array X[n]
array Y[n]
array T[n]
array F[n]

proc main() {
  # epoch: initialize X and the read-only table T; F holds runtime
  # indices the compiler cannot analyze (the paper's f(i)).
  doall i = 0 to n-1 {
    X[i] = i
    T[i] = i * 0.5
    F[i] = (i * 13 + 5) % n
  }

  # epoch: writes X; the next reader of X must use a Time-Read.
  doall i = 0 to n-1 {
    X[i] = X[i] + T[i]
  }

  # epoch: Y[i] = X[f(i)] — the unknown subscript forces the most
  # conservative window; T[i] is read-only, so it stays a regular read;
  # the second read of X[F[i]]'s neighbour is NOT covered (unknown
  # subscripts never prove coverage).
  doall i = 0 to n-1 {
    Y[i] = X[F[i]] * T[i]
    Y[i] = Y[i] + X[F[i]]
  }

  # serial loop: the write of X and its read alternate around the loop,
  # so the read's window is the epoch distance around the back edge.
  for t = 0 to 2 {
    doall i = 0 to n-1 {
      X[i] = Y[i] * 0.5
    }
    doall i = 0 to n-1 {
      Y[i] = X[i] + 1.0
    }
  }

  # procedure boundary: interprocedural analysis keeps the window wide
  # instead of assuming everything was just written.
  call reduce(Y)
}

proc reduce(Z[]) {
  doall i = 0 to n-1 {
    Z[i] = Z[i] * 0.5
    critical {
      sum = sum + Z[i]
    }
  }
}
`

func main() {
	c, err := core.Compile(src, core.DefaultCompileOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Reference marking (epoch node / reference / mark / why):")
	fmt.Println()
	fmt.Print(c.Marks.Report())

	fmt.Println()
	fmt.Println("Now the same program WITHOUT interprocedural analysis — the")
	fmt.Println("reads inside proc reduce collapse to window 0 and every call")
	fmt.Println("site conservatively clobbers all arrays:")
	fmt.Println()
	c2, err := core.Compile(src, core.CompileOptions{Interproc: false, FirstReadReuse: true, AlignWords: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full analysis:  %d regular reads, %d time-reads, windows %v\n",
		c.Marks.NumRegular, c.Marks.NumTimeRead, windows(c))
	fmt.Printf("no interproc:   %d regular reads, %d time-reads, windows %v\n",
		c2.Marks.NumRegular, c2.Marks.NumTimeRead, windows(c2))
	fmt.Println()
	fmt.Println("The read of Z inside proc reduce keeps a wide window under the")
	fmt.Println("full analysis (the last write of Y is epochs away) but collapses")
	fmt.Println("to the conservative entry assumption without it.")
}

// windows collects the Time-Read windows in RefID order.
func windows(c *core.Compiled) []int {
	var ws []int
	for _, m := range c.Marks.Marks {
		if m.Kind == marking.TimeRead {
			ws = append(ws, m.Window)
		}
	}
	return ws
}
