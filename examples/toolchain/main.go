// Toolchain: the paper's complete flow on one screen. Start from
// sequential code (what the authors' users write), auto-parallelize it
// (what Polaris did), inspect the coherence marking (this paper's
// compiler contribution), then simulate under TPI and the directory and
// compare with the serial execution.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/parallelize"
	"repro/internal/pfl"
)

const sequential = `
program toolchain
param n = 64
scalar checksum = 0.0
array A[n][n]
array B[n][n]

proc main() {
  for i = 0 to n-1 {
    for j = 0 to n-1 {
      A[i][j] = (i * n + j) * 0.001
      B[i][j] = 0.0
    }
  }
  for t = 0 to 3 {
    for i = 1 to n-2 {
      for j = 1 to n-2 {
        B[i][j] = (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]) * 0.25
      }
    }
    for i = 1 to n-2 {
      for j = 1 to n-2 {
        A[i][j] = B[i][j]
      }
    }
  }
  for i = 0 to n-1 {
    checksum = checksum + A[i][i]
  }
}
`

func main() {
	// 1. Parse and check the sequential program.
	ast, err := pfl.Parse(sequential)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := pfl.Check(ast); err != nil {
		log.Fatal(err)
	}

	// 2. Auto-parallelize (Polaris stage).
	rep, err := parallelize.Run(ast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== auto-parallelization ==")
	fmt.Print(rep.String())
	fmt.Printf("-> %d loops became DOALLs\n\n", rep.NumParallelized())

	// 3. Compile the parallel form: epochs, sections, marking.
	c, err := core.Compile(pfl.Format(ast), core.DefaultCompileOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== reference marking (this paper's compiler stage) ==")
	fmt.Printf("%d regular reads, %d time-reads, %d bypasses\n\n",
		c.Marks.NumRegular, c.Marks.NumTimeRead, c.Marks.NumBypass)

	// 4. Simulate and verify under both headline schemes; compare with a
	//    single-processor run of the same program.
	serialCfg := machine.Default(machine.SchemeTPI)
	serialCfg.Procs = 1
	serial, err := core.Run(c, serialCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== simulation (16 processors, Figure-8 machine) ==")
	for _, s := range []machine.Scheme{machine.SchemeTPI, machine.SchemeHW} {
		cfg := machine.Default(s)
		st, err := core.VerifyAgainstOracle(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s missrate=%.4f cycles=%d speedup=%.1fx (verified)\n",
			s, st.MissRate(), st.Cycles, float64(serial.Cycles)/float64(st.Cycles))
	}
}
