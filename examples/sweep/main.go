// Sweep: parameter-sensitivity curves on the ocean kernel — miss rate
// versus cache size, line size, and timetag width for TPI and the
// hardware directory. This is the programmatic version of experiments
// E8–E10 for a single workload.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
)

func main() {
	k, err := bench.Get("ocean", bench.Params{N: 32, Steps: 2})
	if err != nil {
		log.Fatal(err)
	}
	c, err := core.Compile(k.Source, core.DefaultCompileOptions())
	if err != nil {
		log.Fatal(err)
	}
	run := func(cfg machine.Config) float64 {
		st, err := core.Run(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return st.MissRate()
	}

	fmt.Println("ocean kernel, 16 processors")
	fmt.Println()
	fmt.Println("miss rate vs cache size:")
	fmt.Printf("%-8s %8s %8s\n", "cache", "TPI", "HW")
	for _, words := range []int64{1024, 4096, 16384, 65536} {
		t := machine.Default(machine.SchemeTPI)
		h := machine.Default(machine.SchemeHW)
		t.CacheWords, h.CacheWords = words, words
		fmt.Printf("%-8s %7.2f%% %7.2f%%\n",
			fmt.Sprintf("%dKB", words*4/1024), 100*run(t), 100*run(h))
	}

	fmt.Println()
	fmt.Println("miss rate vs line size:")
	fmt.Printf("%-8s %8s %8s\n", "line", "TPI", "HW")
	for _, lw := range []int{1, 2, 4, 8, 16} {
		t := machine.Default(machine.SchemeTPI)
		h := machine.Default(machine.SchemeHW)
		t.LineWords, h.LineWords = lw, lw
		fmt.Printf("%-8s %7.2f%% %7.2f%%\n", fmt.Sprintf("%dw", lw), 100*run(t), 100*run(h))
	}

	fmt.Println()
	fmt.Println("TPI miss rate and resets vs timetag width:")
	fmt.Printf("%-8s %8s %8s\n", "bits", "miss", "resets")
	for _, bits := range []int{2, 3, 4, 8} {
		t := machine.Default(machine.SchemeTPI)
		t.TimetagBits = bits
		st, err := core.Run(c, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %7.2f%% %8d\n", bits, 100*st.MissRate(), st.TimetagResets)
	}
}
