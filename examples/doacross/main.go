// Doacross: pipelined inter-iteration communication through `ordered`
// sections — the paper's "threads with inter-thread communication"
// scenario. A recurrence (prefix smoothing) runs as a DOACROSS loop:
// iteration i's ordered section consumes iteration i-1's result within
// the same epoch, below timetag granularity, so the compiler routes all
// ordered references through memory (like critical-section data) while
// the surrounding DOALL traffic still enjoys cached Time-Reads.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/marking"
	"repro/internal/stats"
)

const src = `
program doacross
param n = 128
scalar total = 0.0
array A[n]
array S[n]
array W[n]

proc main() {
  doall i = 0 to n-1 {
    A[i] = 1.0 + (i * 29 % 11) * 0.0625
    W[i] = 0.5 + (i % 3) * 0.125
    S[i] = 0.0
  }
  # The pipeline: S[i] depends on S[i-1] produced by the PREVIOUS
  # iteration of the SAME epoch.
  doall i = 1 to n-1 {
    ordered {
      S[i] = S[i-1] * 0.5 + A[i] * W[i]
    }
  }
  # Ordinary cross-epoch consumption: these reads are Time-Reads.
  doall i = 0 to n-1 {
    A[i] = S[i] * W[i]
  }
  doall i = 0 to n-1 {
    critical {
      total = total + A[i]
    }
  }
}
`

func main() {
	c, err := core.Compile(src, core.DefaultCompileOptions())
	if err != nil {
		log.Fatal(err)
	}

	var ordered, timereads int
	for _, m := range c.Marks.Marks {
		switch m.Kind {
		case marking.Bypass:
			ordered++
		case marking.TimeRead:
			timereads++
		}
	}
	fmt.Printf("marking: %d bypassed (ordered/critical) references, %d time-reads\n\n", ordered, timereads)

	for _, s := range machine.AllSchemes {
		cfg := machine.Default(s)
		cfg.Procs = 8
		st, err := core.VerifyAgainstOracle(c, cfg)
		if err != nil {
			log.Fatalf("%s: %v", s, err)
		}
		fmt.Printf("%-5s ok: missrate=%.4f bypass-misses=%d cycles=%d\n",
			s, st.MissRate(), st.ReadMisses[stats.MissBypass], st.Cycles)
	}
	fmt.Println()
	fmt.Println("All five schemes agree with the sequential oracle: the ordered")
	fmt.Println("sections serialize the recurrence while the rest of the loop")
	fmt.Println("still runs (and caches) in parallel.")
}
