// Quickstart: compile a small parallel program with the TPI compiler
// pipeline, simulate it under the two headline coherence schemes (the
// paper's TPI and a full-map hardware directory), verify both against
// the sequential oracle, and print the comparison.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
)

const src = `
program quickstart
param n = 64
scalar checksum = 0.0
array A[n][n]
array B[n][n]

proc main() {
  # Epoch 1: every processor initializes its block of rows.
  doall i = 0 to n-1 {
    for j = 0 to n-1 {
      A[i][j] = (i * n + j) * 0.001
    }
  }
  # Epochs 2..: a five-point smoothing pass. Reads of A are potentially
  # stale (written by other processors last epoch), so the compiler marks
  # them as Time-Reads with a one-epoch window.
  for t = 1 to 4 {
    doall i = 1 to n-2 {
      for j = 1 to n-2 {
        B[i][j] = (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]) * 0.25
      }
    }
    doall i = 1 to n-2 {
      for j = 1 to n-2 {
        A[i][j] = B[i][j]
      }
    }
  }
  # A reduction through the global critical-section lock.
  doall i = 0 to n-1 {
    critical {
      checksum = checksum + A[i][i]
    }
  }
}
`

func main() {
	c, err := core.Compile(src, core.DefaultCompileOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d regular reads, %d time-reads, %d bypasses, %d writes\n\n",
		c.AST.Name, c.Marks.NumRegular, c.Marks.NumTimeRead, c.Marks.NumBypass, c.Marks.NumWrite)

	for _, scheme := range []machine.Scheme{machine.SchemeTPI, machine.SchemeHW} {
		cfg := machine.Default(scheme)
		st, err := core.VerifyAgainstOracle(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(st)
		fmt.Println("      verified against sequential oracle")
		fmt.Println()
	}
	fmt.Println("Both schemes computed identical results; compare their miss")
	fmt.Println("rates and traffic above — the paper's claim is that the")
	fmt.Println("compiler-directed TPI scheme stays competitive with the")
	fmt.Println("full-map directory at a fraction of the hardware cost.")
}
