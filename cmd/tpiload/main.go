// Command tpiload is the load generator for tpiserved: it fires a mixed
// batch of run requests (kernels × schemes, with a controlled duplicate
// fraction to exercise the dedup and cache tiers), validates every
// response as a structurally sound core.RunResult, and reports latency
// percentiles plus the server's cache hit rates.
//
// Usage:
//
//	tpiload -addr http://localhost:8177 -requests 40 -c 8 -dup 0.5
//
// It exits non-zero if any request fails validation or the result-cache
// hit rate falls below -min-hit-rate, which makes it double as the CI
// smoke check for the service path.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/exper"
	"repro/internal/httpx"
	"repro/internal/svc"
)

func main() {
	addr := flag.String("addr", "http://localhost:8177", "tpiserved base URL")
	requests := flag.Int("requests", 40, "total number of submissions")
	conc := flag.Int("c", 8, "concurrent client connections")
	kernels := flag.String("kernels", "ocean,trfd", "comma-separated kernel names")
	schemes := flag.String("schemes", "BASE,TPI,HW", "comma-separated coherence schemes")
	n := flag.Int("n", 24, "kernel grid size")
	steps := flag.Int("steps", 2, "kernel time steps")
	dup := flag.Float64("dup", 0.5, "fraction of submissions that duplicate an earlier one [0,1)")
	minHitRate := flag.Float64("min-hit-rate", 0, "fail unless the result-cache hit rate reaches this fraction")
	wait := flag.Duration("wait", 10*time.Second, "how long to wait for the server to become healthy")
	progress := flag.Bool("progress", false, "submit async and follow each job's SSE event stream, printing phase and epoch progress")
	flag.Parse()
	if err := run(*addr, *requests, *conc, *kernels, *schemes, *n, *steps, *dup, *minHitRate, *wait, *progress); err != nil {
		fmt.Fprintln(os.Stderr, "tpiload:", err)
		os.Exit(1)
	}
}

func run(addr string, requests, conc int, kernels, schemes string, n, steps int, dup, minHitRate float64, wait time.Duration, progress bool) error {
	if requests < 1 || conc < 1 {
		return fmt.Errorf("need -requests >= 1 and -c >= 1 (got %d, %d)", requests, conc)
	}
	if dup < 0 || dup >= 1 {
		return fmt.Errorf("-dup %g out of range [0,1)", dup)
	}
	// One shared keep-alive pool for the whole batch; retry/backoff on
	// transport errors and 5xx lives in httpx, not here.
	client := httpx.New(httpx.Options{Timeout: 2 * time.Minute, MaxIdleConnsPerHost: conc})
	ctx := context.Background()
	if err := waitHealthy(ctx, client, addr, wait); err != nil {
		return err
	}

	batch := buildBatch(requests, splitList(kernels), splitList(schemes), n, steps, dup)
	lat := make([]float64, len(batch))
	errs := make([]error, len(batch))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if progress {
					lat[i], errs[i] = submitProgress(ctx, client, addr, batch[i])
				} else {
					lat[i], errs[i] = submit(ctx, client, addr, batch[i])
				}
			}
		}()
	}
	start := time.Now()
	for i := range batch {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			if failed <= 5 {
				fmt.Fprintf(os.Stderr, "tpiload: request %d (%s/%s): %v\n",
					i, batch[i].Kernel, batch[i].Scheme, err)
			}
		}
	}

	sort.Float64s(lat)
	fmt.Printf("tpiload: %d requests, %d concurrent, %.1f req/s\n",
		len(batch), conc, float64(len(batch))/elapsed.Seconds())
	fmt.Printf("  latency ms: p50 %.2f  p95 %.2f  max %.2f\n",
		lat[len(lat)/2], lat[len(lat)*95/100], lat[len(lat)-1])

	hitRate, err := reportMetrics(ctx, client, addr)
	if err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d requests failed", failed, len(batch))
	}
	if hitRate < minHitRate {
		return fmt.Errorf("result-cache hit rate %.3f below -min-hit-rate %.3f", hitRate, minHitRate)
	}
	return nil
}

// buildBatch lays out the submission mix: the unique points cycle
// through kernels × schemes (varying n to mint extra distinct points
// when needed), and the duplicate tail repeats them in order, so a -dup
// fraction of the batch is guaranteed to hit the dedup or cache path.
func buildBatch(requests int, kernels, schemes []string, n, steps int, dup float64) []svc.RunRequest {
	uniques := requests - int(float64(requests)*dup)
	if uniques < 1 {
		uniques = 1
	}
	batch := make([]svc.RunRequest, 0, requests)
	for i := 0; i < uniques; i++ {
		variant := i / (len(kernels) * len(schemes))
		batch = append(batch, svc.RunRequest{
			Kernel: kernels[i%len(kernels)],
			Scheme: schemes[(i/len(kernels))%len(schemes)],
			N:      n + 2*variant,
			Steps:  steps,
		})
	}
	for i := uniques; i < requests; i++ {
		batch = append(batch, batch[i%uniques])
	}
	return batch
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		out = []string{""}
	}
	return out
}

// submit posts one run and validates the response end to end. Failure
// errors carry the server's verbatim response body, so a failing job's
// cause survives into the exit diagnostics.
func submit(ctx context.Context, client *httpx.Client, addr string, req svc.RunRequest) (ms float64, err error) {
	t0 := time.Now()
	status, raw, err := client.PostJSON(ctx, addr+"/v1/runs", &req)
	ms = float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		return ms, err
	}
	var st svc.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return ms, fmt.Errorf("HTTP %d: %v; body: %s", status, err, truncate(raw))
	}
	if status != http.StatusOK || st.State != svc.StateDone {
		return ms, fmt.Errorf("HTTP %d state %s: %s", status, st.State, serverError(st, raw))
	}
	return ms, validateStatus(st)
}

// submitProgress submits async and follows the job's SSE event stream,
// printing phase transitions and epoch heartbeats, then validates the
// terminal result event.
func submitProgress(ctx context.Context, client *httpx.Client, addr string, req svc.RunRequest) (ms float64, err error) {
	req.Async = true
	t0 := time.Now()
	status, raw, err := client.PostJSON(ctx, addr+"/v1/runs", &req)
	if err != nil {
		return 0, err
	}
	var st svc.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return 0, fmt.Errorf("HTTP %d: %v; body: %s", status, err, truncate(raw))
	}
	if status != http.StatusOK && status != http.StatusAccepted {
		return 0, fmt.Errorf("HTTP %d state %s: %s", status, st.State, serverError(st, raw))
	}

	final, err := followEvents(ctx, client, addr, st.ID)
	ms = float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		return ms, err
	}
	if final.State != svc.StateDone {
		return ms, fmt.Errorf("job %s ended %s: %s", final.ID, final.State, final.Error)
	}
	return ms, validateStatus(*final)
}

// followEvents consumes the job's SSE stream until the terminal
// result/error event, echoing progress to stderr.
func followEvents(ctx context.Context, client *httpx.Client, addr, id string) (*svc.JobStatus, error) {
	// Stream bypasses httpx's retries and deadline: the SSE connection
	// stays open for the life of the job.
	resp, err := client.Stream(ctx, addr+"/v1/runs/"+id+"/events")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("events for %s: HTTP %d: %s", id, resp.StatusCode, truncate(raw))
	}
	var event string
	var data []byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = []byte(line[len("data: "):])
		case line == "": // frame boundary
			if event == "" && data == nil {
				continue
			}
			switch event {
			case "phase":
				var p svc.PhaseEvent
				if json.Unmarshal(data, &p) == nil {
					fmt.Fprintf(os.Stderr, "tpiload: %s phase=%s t=%.0fms\n", p.Job, p.Phase, p.TMS)
				}
			case "progress":
				var p svc.ProgressEvent
				if json.Unmarshal(data, &p) == nil {
					fmt.Fprintf(os.Stderr, "tpiload: %s epoch=%d cycles=%d readMisses=%d\n",
						p.Job, p.Epoch, p.Cycles, p.ReadMisses)
				}
			case "result", "error":
				var st svc.JobStatus
				if err := json.Unmarshal(data, &st); err != nil {
					return nil, fmt.Errorf("events for %s: terminal payload: %v; body: %s", id, err, truncate(data))
				}
				return &st, nil
			}
			event, data = "", nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("events for %s: %w", id, err)
	}
	return nil, fmt.Errorf("events for %s: stream ended without a terminal event", id)
}

// validateStatus checks the terminal status carries a structurally
// sound result that agrees with the job's scheme.
func validateStatus(st svc.JobStatus) error {
	r, err := exper.ValidateRunResult(st.Result)
	if err != nil {
		return err
	}
	if r.Scheme != st.Scheme {
		return fmt.Errorf("result scheme %s disagrees with job scheme %s", r.Scheme, st.Scheme)
	}
	return nil
}

// serverError prefers the structured error field but falls back to the
// raw body, so unexpected server responses are never swallowed.
func serverError(st svc.JobStatus, raw []byte) string {
	if st.Error != "" {
		return st.Error
	}
	return truncate(raw)
}

func truncate(b []byte) string {
	const max = 512
	s := strings.TrimSpace(string(b))
	if len(s) > max {
		return s[:max] + "...(truncated)"
	}
	return s
}

func waitHealthy(ctx context.Context, client *httpx.Client, addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		err := client.GetJSON(ctx, addr+"/v1/healthz", nil)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not healthy after %v: %w", wait, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// reportMetrics prints the server-side view and returns the result-cache
// hit rate.
func reportMetrics(ctx context.Context, client *httpx.Client, addr string) (float64, error) {
	var m svc.Metrics
	if err := client.GetJSON(ctx, addr+"/v1/metrics", &m); err != nil {
		return 0, fmt.Errorf("metrics: %w", err)
	}
	hitRate := 0.0
	if total := m.ResultCache.Hits + m.ResultCache.Misses; total > 0 {
		hitRate = float64(m.ResultCache.Hits) / float64(total)
	}
	fmt.Printf("  server: submitted %d  simulated %d  deduped %d  cacheServed %d  failed %d\n",
		m.Jobs.Submitted, m.Jobs.Simulated, m.Jobs.Deduped, m.Jobs.CacheServed, m.Jobs.Failed)
	fmt.Printf("  result cache: %.1f%% hit (%d/%d)  compile cache: %d hit / %d miss\n",
		100*hitRate, m.ResultCache.Hits, m.ResultCache.Hits+m.ResultCache.Misses,
		m.CompileCache.Hits, m.CompileCache.Misses)
	for sc, l := range m.RunsByScheme {
		fmt.Printf("  %s: %d runs, mean %.2f ms, max %.2f ms\n", sc, l.Count, l.TotalMS/float64(l.Count), l.MaxMS)
	}
	return hitRate, nil
}
