// Command tpiload is the load generator for tpiserved: it fires a mixed
// batch of run requests (kernels × schemes, with a controlled duplicate
// fraction to exercise the dedup and cache tiers), validates every
// response as a structurally sound core.RunResult, and reports latency
// percentiles plus the server's cache hit rates.
//
// Usage:
//
//	tpiload -addr http://localhost:8177 -requests 40 -c 8 -dup 0.5
//
// It exits non-zero if any request fails validation or the result-cache
// hit rate falls below -min-hit-rate, which makes it double as the CI
// smoke check for the service path.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/exper"
	"repro/internal/svc"
)

func main() {
	addr := flag.String("addr", "http://localhost:8177", "tpiserved base URL")
	requests := flag.Int("requests", 40, "total number of submissions")
	conc := flag.Int("c", 8, "concurrent client connections")
	kernels := flag.String("kernels", "ocean,trfd", "comma-separated kernel names")
	schemes := flag.String("schemes", "BASE,TPI,HW", "comma-separated coherence schemes")
	n := flag.Int("n", 24, "kernel grid size")
	steps := flag.Int("steps", 2, "kernel time steps")
	dup := flag.Float64("dup", 0.5, "fraction of submissions that duplicate an earlier one [0,1)")
	minHitRate := flag.Float64("min-hit-rate", 0, "fail unless the result-cache hit rate reaches this fraction")
	wait := flag.Duration("wait", 10*time.Second, "how long to wait for the server to become healthy")
	flag.Parse()
	if err := run(*addr, *requests, *conc, *kernels, *schemes, *n, *steps, *dup, *minHitRate, *wait); err != nil {
		fmt.Fprintln(os.Stderr, "tpiload:", err)
		os.Exit(1)
	}
}

func run(addr string, requests, conc int, kernels, schemes string, n, steps int, dup, minHitRate float64, wait time.Duration) error {
	if requests < 1 || conc < 1 {
		return fmt.Errorf("need -requests >= 1 and -c >= 1 (got %d, %d)", requests, conc)
	}
	if dup < 0 || dup >= 1 {
		return fmt.Errorf("-dup %g out of range [0,1)", dup)
	}
	if err := waitHealthy(addr, wait); err != nil {
		return err
	}

	batch := buildBatch(requests, splitList(kernels), splitList(schemes), n, steps, dup)
	lat := make([]float64, len(batch))
	errs := make([]error, len(batch))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				lat[i], errs[i] = submit(addr, batch[i])
			}
		}()
	}
	start := time.Now()
	for i := range batch {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			if failed <= 5 {
				fmt.Fprintf(os.Stderr, "tpiload: request %d (%s/%s): %v\n",
					i, batch[i].Kernel, batch[i].Scheme, err)
			}
		}
	}

	sort.Float64s(lat)
	fmt.Printf("tpiload: %d requests, %d concurrent, %.1f req/s\n",
		len(batch), conc, float64(len(batch))/elapsed.Seconds())
	fmt.Printf("  latency ms: p50 %.2f  p95 %.2f  max %.2f\n",
		lat[len(lat)/2], lat[len(lat)*95/100], lat[len(lat)-1])

	hitRate, err := reportMetrics(addr)
	if err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d requests failed", failed, len(batch))
	}
	if hitRate < minHitRate {
		return fmt.Errorf("result-cache hit rate %.3f below -min-hit-rate %.3f", hitRate, minHitRate)
	}
	return nil
}

// buildBatch lays out the submission mix: the unique points cycle
// through kernels × schemes (varying n to mint extra distinct points
// when needed), and the duplicate tail repeats them in order, so a -dup
// fraction of the batch is guaranteed to hit the dedup or cache path.
func buildBatch(requests int, kernels, schemes []string, n, steps int, dup float64) []svc.RunRequest {
	uniques := requests - int(float64(requests)*dup)
	if uniques < 1 {
		uniques = 1
	}
	batch := make([]svc.RunRequest, 0, requests)
	for i := 0; i < uniques; i++ {
		variant := i / (len(kernels) * len(schemes))
		batch = append(batch, svc.RunRequest{
			Kernel: kernels[i%len(kernels)],
			Scheme: schemes[(i/len(kernels))%len(schemes)],
			N:      n + 2*variant,
			Steps:  steps,
		})
	}
	for i := uniques; i < requests; i++ {
		batch = append(batch, batch[i%uniques])
	}
	return batch
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		out = []string{""}
	}
	return out
}

// submit posts one run and validates the response end to end.
func submit(addr string, req svc.RunRequest) (ms float64, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	resp, err := http.Post(addr+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	ms = float64(time.Since(t0)) / float64(time.Millisecond)
	var st svc.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return ms, fmt.Errorf("HTTP %d: %w", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK || st.State != svc.StateDone {
		return ms, fmt.Errorf("HTTP %d state %s: %s", resp.StatusCode, st.State, st.Error)
	}
	r, err := exper.ValidateRunResult(st.Result)
	if err != nil {
		return ms, err
	}
	if r.Scheme != st.Scheme {
		return ms, fmt.Errorf("result scheme %s disagrees with job scheme %s", r.Scheme, st.Scheme)
	}
	return ms, nil
}

func waitHealthy(addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(addr + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not healthy after %v: %w", wait, err)
			}
			return fmt.Errorf("server not healthy after %v (HTTP %d)", wait, resp.StatusCode)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// reportMetrics prints the server-side view and returns the result-cache
// hit rate.
func reportMetrics(addr string) (float64, error) {
	resp, err := http.Get(addr + "/v1/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var m svc.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return 0, fmt.Errorf("metrics: %w", err)
	}
	hitRate := 0.0
	if total := m.ResultCache.Hits + m.ResultCache.Misses; total > 0 {
		hitRate = float64(m.ResultCache.Hits) / float64(total)
	}
	fmt.Printf("  server: submitted %d  simulated %d  deduped %d  cacheServed %d  failed %d\n",
		m.Jobs.Submitted, m.Jobs.Simulated, m.Jobs.Deduped, m.Jobs.CacheServed, m.Jobs.Failed)
	fmt.Printf("  result cache: %.1f%% hit (%d/%d)  compile cache: %d hit / %d miss\n",
		100*hitRate, m.ResultCache.Hits, m.ResultCache.Hits+m.ResultCache.Misses,
		m.CompileCache.Hits, m.CompileCache.Misses)
	for sc, l := range m.RunsByScheme {
		fmt.Printf("  %s: %d runs, mean %.2f ms, max %.2f ms\n", sc, l.Count, l.TotalMS/float64(l.Count), l.MaxMS)
	}
	return hitRate, nil
}
