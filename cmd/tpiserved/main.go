// Command tpiserved is the simulation-as-a-service daemon: it serves the
// internal/svc HTTP JSON API (POST /v1/runs, GET/DELETE /v1/runs/{id},
// GET /v1/healthz, GET /v1/metrics) over a bounded worker pool with
// content-addressed compile and result caches.
//
// Usage:
//
//	tpiserved -addr :8177 -workers 4
//
// SIGTERM or SIGINT drains gracefully: new submissions are rejected with
// 503 while in-flight and queued jobs run to completion (bounded by
// -drain-timeout, after which stragglers are cancelled at their next
// epoch barrier). See docs/SERVICE.md for the API reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/svc"
)

func main() {
	addr := flag.String("addr", ":8177", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "submission queue depth (full queue rejects with 429)")
	compileCache := flag.Int("compile-cache", 128, "compile cache entries")
	resultCache := flag.Int("result-cache", 4096, "result cache entries")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "default per-job deadline for requests without timeoutMs")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits before cancelling in-flight jobs")
	maxBody := flag.Int64("max-body", 8<<20, "request body size limit in bytes")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "tpiserved: unexpected argument %q\n", flag.Arg(0))
		flag.PrintDefaults()
		os.Exit(2)
	}

	s := svc.New(svc.Options{
		Workers:             *workers,
		QueueDepth:          *queue,
		CompileCacheEntries: *compileCache,
		ResultCacheEntries:  *resultCache,
		DefaultTimeout:      *jobTimeout,
		MaxBodyBytes:        *maxBody,
	})
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	log.Printf("tpiserved: serving on %s", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "tpiserved:", err)
		os.Exit(1)
	case sig := <-sigc:
		log.Printf("tpiserved: %v: draining (up to %v)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := s.Drain(ctx)
	if err := hs.Shutdown(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "tpiserved:", err)
		os.Exit(1)
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "tpiserved:", drainErr)
		os.Exit(1)
	}
	log.Printf("tpiserved: drained cleanly")
}
