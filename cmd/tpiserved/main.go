// Command tpiserved is the simulation-as-a-service daemon: it serves the
// internal/svc HTTP JSON API (POST /v1/runs, GET/DELETE /v1/runs/{id},
// GET /v1/runs/{id}/events, GET /v1/healthz, GET /v1/metrics) over a
// bounded worker pool with content-addressed compile and result caches,
// plus a Prometheus scrape endpoint on GET /metrics. With -peers, the
// daemon joins a fleet: every worker serves its result cache on
// GET /v1/cache/{key} and probes its siblings for a content-address hit
// before simulating a miss locally (see docs/SERVICE.md). With
// -advertise and -join the fleet wires itself: the daemon registers its
// advertised URL with the listed seeds over PUT /v1/peers, adopts
// whatever siblings the seeds already know, and repeats every
// -reannounce so seed restarts heal without a coordinator.
//
// Usage:
//
//	tpiserved -addr :8177 -workers 4
//
// Logs are structured (log/slog): -log-format picks text or json,
// -log-level picks debug/info/warn/error. -debug-addr starts a second
// listener with net/http/pprof and a /metrics mirror, kept off the main
// API port so profiling is opt-in and never internet-facing by accident.
//
// SIGTERM or SIGINT drains gracefully: new submissions are rejected with
// 503 while in-flight and queued jobs run to completion (bounded by
// -drain-timeout, after which stragglers are cancelled at their next
// epoch barrier). See docs/SERVICE.md for the API reference and
// docs/TELEMETRY.md for the metric catalogue.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/svc"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8177", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "submission queue depth (full queue rejects with 429)")
	compileCache := flag.Int("compile-cache", 128, "compile cache entries")
	resultCache := flag.Int("result-cache", 4096, "result cache entries")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "default per-job deadline for requests without timeoutMs")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits before cancelling in-flight jobs")
	maxBody := flag.Int64("max-body", 8<<20, "request body size limit in bytes")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	debugAddr := flag.String("debug-addr", "", "optional second listener with net/http/pprof and /metrics (e.g. localhost:8178)")
	peers := flag.String("peers", "", "comma-separated sibling base URLs whose caches are probed before simulating (e.g. http://host1:8177,http://host2:8177); updatable at runtime via PUT /v1/peers")
	peerTimeout := flag.Duration("peer-timeout", 2*time.Second, "per-probe deadline for peer cache fetches")
	advertise := flag.String("advertise", "", "base URL other fleet members can reach this daemon at (e.g. http://host1:8177); required by -join")
	join := flag.String("join", "", "comma-separated fleet members to self-register with on startup (requires -advertise)")
	reannounce := flag.Duration("reannounce", time.Minute, "how often to repeat the -join registration, healing seed restarts")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "tpiserved: unexpected argument %q\n", flag.Arg(0))
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *join != "" && *advertise == "" {
		fmt.Fprintln(os.Stderr, "tpiserved: -join requires -advertise (the URL peers register for this daemon)")
		os.Exit(2)
	}

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpiserved:", err)
		os.Exit(2)
	}

	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg, 5*time.Second)

	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}

	s := svc.New(svc.Options{
		Workers:             *workers,
		QueueDepth:          *queue,
		CompileCacheEntries: *compileCache,
		ResultCacheEntries:  *resultCache,
		DefaultTimeout:      *jobTimeout,
		MaxBodyBytes:        *maxBody,
		Logger:              logger,
		Registry:            reg,
		Peers:               peerList,
		PeerTimeout:         *peerTimeout,
	})
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	var ds *http.Server
	if *debugAddr != "" {
		ds = &http.Server{Addr: *debugAddr, Handler: debugMux(reg)}
		go func() {
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("debug listener: %w", err)
			}
		}()
		logger.Info("debug listener up", "addr", *debugAddr)
	}

	annCtx, annCancel := context.WithCancel(context.Background())
	defer annCancel()
	if *join != "" {
		ann := &svc.Announcer{
			Self:   *advertise,
			Seeds:  strings.Split(*join, ","),
			Server: s,
			Log:    logger,
		}
		go ann.Run(annCtx, *reannounce)
		logger.Info("fleet self-registration on", "advertise", *advertise, "join", *join, "reannounce", reannounce.String())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	logger.Info("serving", "addr", *addr, "workers", *workers, "queue", *queue)

	select {
	case err := <-errc:
		logger.Error("listener failed", "error", err.Error())
		os.Exit(1)
	case sig := <-sigc:
		logger.Info("signal received, draining", "signal", sig.String(), "timeout", drainTimeout.String())
	}
	annCancel() // stop re-announcing before the listener goes away

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := s.Drain(ctx)
	if err := hs.Shutdown(context.Background()); err != nil {
		logger.Error("shutdown failed", "error", err.Error())
		os.Exit(1)
	}
	if ds != nil {
		ds.Shutdown(context.Background()) //nolint:errcheck // best-effort; main listener is down
	}
	if drainErr != nil {
		logger.Error("drain forced", "error", drainErr.Error())
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// buildLogger assembles the slog handler from the CLI flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// debugMux is the -debug-addr handler: pprof plus a metrics mirror.
// Handlers are mounted explicitly rather than via the pprof package's
// DefaultServeMux side effects, so the main API mux stays clean.
func debugMux(reg *telemetry.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", telemetry.ContentType)
		reg.WritePrometheus(w)
	})
	return mux
}
