// Command pflfmt formats PFL source files (gofmt for PFL): parsing and
// reprinting with the canonical layout. With -check it only reports
// whether files are formatted; with -w it rewrites them in place;
// otherwise it prints to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/pfl"
)

func main() {
	write := flag.Bool("w", false, "rewrite files in place")
	check := flag.Bool("check", false, "exit non-zero if any file is not formatted")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pflfmt [-w|-check] file.pfl...")
		os.Exit(2)
	}
	dirty := false
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		prog, err := pfl.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		out := pfl.Format(prog)
		switch {
		case *check:
			if out != string(src) {
				fmt.Printf("%s\n", path)
				dirty = true
			}
		case *write:
			if out != string(src) {
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					fatal(err)
				}
			}
		default:
			fmt.Print(out)
		}
	}
	if dirty {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pflfmt:", err)
	os.Exit(1)
}
