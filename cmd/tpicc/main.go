// Command tpicc is the compiler driver: it parses a PFL source file,
// runs the epoch/section/marking analyses, and prints the epoch flow
// graphs and the per-reference coherence marking.
//
// Usage:
//
//	tpicc [-interproc=false] [-reuse=false] [-efg] [-src] file.pfl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/parallelize"
	"repro/internal/pfl"
)

func main() {
	interproc := flag.Bool("interproc", true, "enable interprocedural analysis")
	reuse := flag.Bool("reuse", true, "enable first-read (intra-task reuse) analysis")
	showEFG := flag.Bool("efg", false, "print epoch flow graphs")
	showSections := flag.Bool("sections", false, "print per-epoch MOD/USE sections and summaries")
	showSrc := flag.Bool("src", false, "echo the formatted source")
	auto := flag.Bool("auto", false, "run the Polaris-style auto-parallelizer first")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tpicc [flags] file.pfl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)
	if *auto {
		ast, err := pfl.Parse(src)
		if err != nil {
			fatal(err)
		}
		if _, err := pfl.Check(ast); err != nil {
			fatal(err)
		}
		rep, err := parallelize.Run(ast)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.String())
		fmt.Printf("auto-parallelized %d loop(s)\n\n", rep.NumParallelized())
		src = pfl.Format(ast)
	}
	c, err := core.Compile(src, core.CompileOptions{
		Interproc:      *interproc,
		FirstReadReuse: *reuse,
		AlignWords:     4,
	})
	if err != nil {
		fatal(err)
	}

	if *showSrc {
		fmt.Print(pfl.Format(c.AST))
		fmt.Println()
	}
	if *showEFG {
		for _, pr := range c.AST.Procs {
			fmt.Print(c.Analysis.Procs[pr.Name].Graph.String())
		}
		fmt.Println()
	}
	if *showSections {
		fmt.Print(c.Analysis.Report())
		fmt.Println()
	}
	fmt.Print(c.Marks.Report())
	fmt.Printf("\nsummary: %d regular reads, %d time-reads, %d bypasses, %d writes\n",
		c.Marks.NumRegular, c.Marks.NumTimeRead, c.Marks.NumBypass, c.Marks.NumWrite)
	h := c.Marks.WindowHistogram()
	fmt.Printf("time-read windows: w0=%d w1=%d w2=%d w>=3=%d\n", h[0], h[1], h[2], h[3])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpicc:", err)
	os.Exit(1)
}
