// Command tpisweep shards parameter sweeps across a fleet of tpiserved
// workers (internal/sweep). It has two modes:
//
// Experiment mode (-exp) runs the paper's experiment tables with every
// named-kernel simulation point executed on the fleet instead of
// in-process. Output is identical — byte-for-byte — to cmd/experiments
// run sequentially at the same size, because results are
// content-addressed and stats restore losslessly:
//
//	tpisweep -workers http://h1:8177,http://h2:8177 -exp E3 -exp E7
//
// Grid mode expands a sweep spec (flags or -spec JSON file) into the
// cross product of its axes and streams one NDJSON result line per
// point as it lands, in completion order:
//
//	tpisweep -workers http://h1:8177,http://h2:8177 \
//	    -kernels ocean,trfd -schemes BASE,TPI,HW -n 24,48
//
// Unless -wire-peers=false, the coordinator first tells every worker
// about its siblings (PUT /v1/peers), so the fleet shares its
// content-addressed result caches: a point simulated on any worker is
// simulated exactly once fleet-wide. Workers that die mid-sweep are
// retired after consecutive failures and their share of the grid is
// rebalanced onto the survivors. -min-cached-rate turns the warm-
// resubmission cache floor into an exit code for CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/exper"
	"repro/internal/httpx"
	"repro/internal/sweep"
)

type listFlag []string

func (e *listFlag) String() string     { return strings.Join(*e, ",") }
func (e *listFlag) Set(v string) error { *e = append(*e, v); return nil }

func main() {
	var selected listFlag
	workers := flag.String("workers", "", "comma-separated tpiserved base URLs (required)")
	window := flag.Int("window", 4, "in-flight submissions per worker")
	maxAttempts := flag.Int("max-attempts", 3, "submission attempts per job before it is recorded failed")
	deathThreshold := flag.Int("death-threshold", 3, "consecutive failures that retire a worker for the sweep")
	reqTimeout := flag.Duration("request-timeout", 5*time.Minute, "per-submission deadline (queue + simulation)")
	wirePeers := flag.Bool("wire-peers", true, "PUT each worker's sibling list so the fleet shares its result caches")
	wait := flag.Duration("wait", 10*time.Second, "how long to wait for workers to become healthy")
	minCachedRate := flag.Float64("min-cached-rate", 0, "exit non-zero unless the sweep's cached fraction reaches this floor (grid mode)")

	flag.Var(&selected, "exp", "experiment id to run on the fleet (repeatable), e.g. E3; selects experiment mode")
	quick := flag.Bool("quick", false, "small workload for a fast smoke run (experiment mode)")
	procs := flag.Int("procs", 16, "number of processors (experiment mode)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown tables (experiment mode)")
	jsonOut := flag.Bool("json", false, "emit schema-versioned results JSON (experiment mode)")
	outFile := flag.String("out", "", "also write the output to this file")

	specFile := flag.String("spec", "", "sweep spec JSON file (grid mode)")
	kernels := flag.String("kernels", "", "comma-separated kernel names (grid mode; empty = all)")
	schemes := flag.String("schemes", "", "comma-separated coherence schemes (grid mode; empty = all)")
	ns := flag.String("n", "", "comma-separated kernel grid sizes (grid mode)")
	steps := flag.String("steps", "", "comma-separated kernel time-step counts (grid mode)")
	obs := flag.String("obs", "", "observability level for every job: off or counters (grid mode)")
	noResults := flag.Bool("no-results", false, "omit result payloads from the NDJSON stream (grid mode)")
	flag.Parse()

	if err := run(runArgs{
		workers: *workers, window: *window, maxAttempts: *maxAttempts,
		deathThreshold: *deathThreshold, reqTimeout: *reqTimeout,
		wirePeers: *wirePeers, wait: *wait, minCachedRate: *minCachedRate,
		selected: selected, quick: *quick, procs: *procs,
		markdown: *markdown, jsonOut: *jsonOut, outFile: *outFile,
		specFile: *specFile, kernels: *kernels, schemes: *schemes,
		ns: *ns, steps: *steps, obs: *obs, noResults: *noResults,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "tpisweep:", err)
		os.Exit(1)
	}
}

type runArgs struct {
	workers        string
	window         int
	maxAttempts    int
	deathThreshold int
	reqTimeout     time.Duration
	wirePeers      bool
	wait           time.Duration
	minCachedRate  float64
	selected       []string
	quick          bool
	procs          int
	markdown       bool
	jsonOut        bool
	outFile        string
	specFile       string
	kernels        string
	schemes        string
	ns             string
	steps          string
	obs            string
	noResults      bool
}

func run(a runArgs) error {
	if a.workers == "" {
		return fmt.Errorf("-workers is required (comma-separated tpiserved base URLs)")
	}
	coord, err := sweep.New(sweep.Options{
		Workers:        splitList(a.workers),
		Window:         a.window,
		MaxAttempts:    a.maxAttempts,
		DeathThreshold: a.deathThreshold,
		RequestTimeout: a.reqTimeout,
	})
	if err != nil {
		return err
	}
	ctx := context.Background()
	if err := waitHealthy(ctx, coord.Workers(), a.wait); err != nil {
		return err
	}
	if a.wirePeers {
		if err := coord.WirePeers(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "tpisweep: peer wiring incomplete: %v\n", err)
		}
	}
	if len(a.selected) > 0 {
		return runExperiments(ctx, coord, a)
	}
	return runGrid(ctx, coord, a)
}

// runExperiments mirrors cmd/experiments' rendering exactly, with the
// suite's executor pointed at the fleet — same entries, same output
// bytes.
func runExperiments(ctx context.Context, coord *sweep.Coordinator, a runArgs) error {
	p := bench.PaperParams()
	if a.quick {
		p = bench.DefaultParams()
	}
	if a.procs <= 0 {
		return fmt.Errorf("-procs must be positive, got %d", a.procs)
	}
	s := exper.NewSuite(p, a.procs)
	s.Exec = coord.ExperExec(ctx, p)
	entries := s.Entries()
	known := map[string]bool{}
	for _, e := range entries {
		known[e.ID] = true
	}
	want := map[string]bool{}
	for _, id := range a.selected {
		id = strings.ToUpper(id)
		if !known[id] {
			return fmt.Errorf("unknown experiment id %q (want E1..E%d)", id, len(entries))
		}
		want[id] = true
	}

	var sink strings.Builder
	emit := func(text string) {
		fmt.Print(text)
		sink.WriteString(text)
	}
	results := exper.Results{SchemaVersion: exper.ResultsSchemaVersion, Params: p, Procs: a.procs}
	start := time.Now()
	for _, e := range entries {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		t0 := time.Now()
		tab, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		switch {
		case a.jsonOut:
			results.Experiments = append(results.Experiments, tab)
		case a.markdown:
			emit(tab.Markdown() + "\n")
		default:
			emit(tab.String())
			emit("\n")
		}
		fmt.Fprintf(os.Stderr, "(%s in %v)\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "total %v across %d workers\n",
		time.Since(start).Round(time.Millisecond), len(coord.Workers()))

	if a.jsonOut {
		data, err := json.MarshalIndent(&results, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		emit(string(data))
	}
	if a.outFile != "" {
		if err := os.WriteFile(a.outFile, []byte(sink.String()), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", a.outFile, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", a.outFile)
	}
	return nil
}

// row is one streamed NDJSON result line.
type row struct {
	Seq     int             `json:"seq"`
	Label   string          `json:"label"`
	Worker  string          `json:"worker,omitempty"`
	State   string          `json:"state,omitempty"`
	Cached  bool            `json:"cached,omitempty"`
	Peer    bool            `json:"peer,omitempty"`
	RunMS   float64         `json:"runMs,omitempty"`
	Error   string          `json:"error,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Attempt int             `json:"attempts,omitempty"`
}

// runGrid expands the spec and streams results as they land.
func runGrid(ctx context.Context, coord *sweep.Coordinator, a runArgs) error {
	sp, err := buildSpec(a)
	if err != nil {
		return err
	}
	jobs, err := sp.Expand()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tpisweep: %d jobs across %d workers (window %d)\n",
		len(jobs), len(coord.Workers()), a.window)

	var out *os.File
	enc := json.NewEncoder(os.Stdout)
	if a.outFile != "" {
		out, err = os.Create(a.outFile)
		if err != nil {
			return err
		}
		defer out.Close()
	}
	stream := func(r sweep.Result) {
		ln := row{Seq: r.Job.Seq, Label: r.Job.Label, Worker: r.Worker, Attempt: r.Attempts}
		if r.Err != nil {
			ln.Error = r.Err.Error()
		}
		if r.Status != nil {
			ln.State = r.Status.State
			ln.Cached = r.Status.Cached
			ln.Peer = r.Status.Peer
			ln.RunMS = r.Status.RunMS
			if !a.noResults {
				ln.Result = r.Status.Result
			}
		}
		enc.Encode(&ln) //nolint:errcheck // stdout write failures surface at exit
		if out != nil {
			json.NewEncoder(out).Encode(&ln) //nolint:errcheck
		}
	}

	_, st, err := coord.Do(ctx, jobs, stream)
	fmt.Fprintf(os.Stderr,
		"tpisweep: %d/%d done (%d failed) in %.0fms — %d simulated, %d cached (%d from peers), %d retries, %d worker deaths, cached rate %.1f%%\n",
		st.Done, st.Jobs, st.Failed, st.ElapsedMS, st.Simulated, st.Cached,
		st.PeerServed, st.Retries, st.WorkerDeaths, 100*st.CachedRate())
	if err != nil {
		return err
	}
	if st.Failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", st.Failed, st.Jobs)
	}
	if st.CachedRate() < a.minCachedRate {
		return fmt.Errorf("cached rate %.3f below -min-cached-rate %.3f", st.CachedRate(), a.minCachedRate)
	}
	return nil
}

// buildSpec assembles the grid from -spec plus any overriding flags.
func buildSpec(a runArgs) (sweep.Spec, error) {
	var sp sweep.Spec
	if a.specFile != "" {
		data, err := os.ReadFile(a.specFile)
		if err != nil {
			return sp, err
		}
		sp, err = sweep.ParseSpec(data)
		if err != nil {
			return sp, err
		}
	}
	if a.kernels != "" {
		sp.Kernels = splitList(a.kernels)
	}
	if a.schemes != "" {
		sp.Schemes = splitList(a.schemes)
	}
	var err error
	if a.ns != "" {
		if sp.N, err = splitInts(a.ns); err != nil {
			return sp, fmt.Errorf("-n: %w", err)
		}
	}
	if a.steps != "" {
		if sp.Steps, err = splitInts(a.steps); err != nil {
			return sp, fmt.Errorf("-steps: %w", err)
		}
	}
	if a.obs != "" {
		sp.Obs = a.obs
	}
	return sp, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// waitHealthy polls every worker's /v1/healthz until all answer ok or
// the deadline passes.
func waitHealthy(ctx context.Context, workers []string, wait time.Duration) error {
	client := httpx.New(httpx.Options{Timeout: 2 * time.Second, Retries: -1})
	deadline := time.Now().Add(wait)
	for _, w := range workers {
		for {
			var doc struct {
				Status string `json:"status"`
			}
			err := client.GetJSON(ctx, w+"/v1/healthz", &doc)
			if err == nil && doc.Status == "ok" {
				break
			}
			if time.Now().After(deadline) {
				if err != nil {
					return fmt.Errorf("worker %s not healthy after %v: %w", w, wait, err)
				}
				return fmt.Errorf("worker %s not healthy after %v (status %q)", w, wait, doc.Status)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return nil
}
