// Command tpitrace analyzes a binary event trace produced by
// `tpisim -btrace` (or core.RunObserved): it replays the trace into the
// attributed report and prints epoch timelines, per-array miss heatmaps,
// and the top conservative-miss source references — the drill-down that
// explains *why* a scheme's misses happen, not just how many.
//
// Usage:
//
//	tpitrace run.trace                   # summary + epoch timeline
//	tpitrace -arrays -refs 10 run.trace  # per-array heatmap, top-10 refs
//	tpitrace -perfetto out.json run.trace # Chrome trace_event for Perfetto
//	tpitrace -json run.trace             # full attributed report as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	epochs := flag.Int("epochs", 40, "max epoch-timeline rows to print (0 = all)")
	arrays := flag.Bool("arrays", false, "print the per-array miss heatmap table")
	procs := flag.Bool("procs", false, "print the per-processor attribution table")
	refs := flag.Int("refs", 10, "top-K conservative-miss source references (0 = skip)")
	hist := flag.Bool("hist", false, "print the miss-latency histogram")
	jsonOut := flag.Bool("json", false, "emit the full attributed report as JSON")
	perfetto := flag.String("perfetto", "", "write Chrome trace_event JSON to this file (load in Perfetto)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tpitrace [flags] trace-file")
		flag.PrintDefaults()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	rep, err := obs.Replay(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}

	rep.WriteSummary(os.Stdout)
	fmt.Println()
	fmt.Println("epoch timeline:")
	rep.WriteEpochTimeline(os.Stdout, *epochs)
	if *arrays {
		fmt.Println()
		fmt.Println("per-array misses:")
		rep.WriteArrayTable(os.Stdout)
	}
	if *procs {
		fmt.Println()
		fmt.Println("per-processor reads:")
		rep.WriteProcTable(os.Stdout)
	}
	if *refs > 0 {
		fmt.Println()
		fmt.Printf("top %d conservative-miss references:\n", *refs)
		rep.WriteTopConservative(os.Stdout, *refs)
	}
	if *hist {
		fmt.Println()
		fmt.Println("read-miss latency histogram:")
		rep.WriteLatencyHistogram(os.Stdout)
	}
	if *perfetto != "" {
		pf, err := os.Create(*perfetto)
		if err != nil {
			fatal(err)
		}
		err = rep.WritePerfetto(pf)
		if cerr := pf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote Perfetto trace to %s\n", *perfetto)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpitrace:", err)
	os.Exit(1)
}
