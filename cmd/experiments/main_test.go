package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain re-execs the test binary as the experiments command when the
// marker variable is set, so the exit-code tests exercise the real
// main() including its os.Exit paths.
func TestMain(m *testing.M) {
	if os.Getenv("EXPERIMENTS_BE_EXPERIMENTS") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runExperiments(t *testing.T, args ...string) (exit int, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "EXPERIMENTS_BE_EXPERIMENTS=1")
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	err := cmd.Run()
	if err == nil {
		return 0, errBuf.String()
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("run: %v", err)
	}
	return ee.ExitCode(), errBuf.String()
}

// TestExitCodes: malformed selections and inputs fail with a one-line
// error, never a panic — and an unknown -exp id is an error rather than
// a silently empty run.
func TestExitCodes(t *testing.T) {
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(garbage, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		exit int
		want string
	}{
		{"unknown flag", []string{"-no-such-flag"}, 2, "flag provided but not defined"},
		{"unknown experiment", []string{"-quick", "-exp", "E99"}, 1, "unknown experiment id"},
		{"bad procs", []string{"-quick", "-procs", "0"}, 1, "-procs"},
		{"bad hostpar", []string{"-quick", "-hostpar", "-1"}, 1, "-hostpar"},
		{"validate missing file", []string{"-validate", "/no/such/results.json"}, 1, "no such file"},
		{"validate garbage", []string{"-validate", garbage}, 1, "results JSON"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exit, stderr := runExperiments(t, tc.args...)
			if exit != tc.exit {
				t.Fatalf("exit %d, want %d\nstderr: %s", exit, tc.exit, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr missing %q:\n%s", tc.want, stderr)
			}
			// (the re-exec'd binary's usage text includes the -test.*
			// flag docs, so match the panic banner, not "goroutine")
			if strings.Contains(stderr, "panic:") {
				t.Fatalf("stderr shows a panic:\n%s", stderr)
			}
		})
	}
}

func TestSelectedQuickRunExitsZero(t *testing.T) {
	exit, stderr := runExperiments(t, "-quick", "-exp", "E2")
	if exit != 0 {
		t.Fatalf("exit %d\nstderr: %s", exit, stderr)
	}
}
