// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// paper-vs-measured record).
//
// Usage:
//
//	experiments                 # run all experiments at the paper size
//	experiments -exp E3 -exp E6 # run selected experiments
//	experiments -quick          # small workload (seconds, for smoke runs)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/exper"
)

type expFlag []string

func (e *expFlag) String() string     { return strings.Join(*e, ",") }
func (e *expFlag) Set(v string) error { *e = append(*e, v); return nil }

func main() {
	var selected expFlag
	flag.Var(&selected, "exp", "experiment id to run (repeatable), e.g. E3; default all")
	quick := flag.Bool("quick", false, "small workload for a fast smoke run")
	procs := flag.Int("procs", 16, "number of processors")
	hostpar := flag.Int("hostpar", 0, "host goroutines per DOALL epoch inside each run (0/1 = sequential; results are bit-identical)")
	fastpath := flag.Bool("fastpath", true, "batch affine innermost loops through the coherence schemes (results are bit-identical; -fastpath=false is the kill switch)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
	jsonOut := flag.Bool("json", false, "emit the results as schema-versioned JSON (see exper.Results)")
	validate := flag.String("validate", "", "validate a results JSON file against the schema and exit")
	outFile := flag.String("out", "", "also write the output to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		r, err := exper.ValidateResults(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid (schema v%d, %d experiments)\n", *validate, r.SchemaVersion, len(r.Experiments))
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return
			}
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			}
			f.Close()
		}()
	}

	p := bench.PaperParams()
	if *quick {
		p = bench.DefaultParams()
	}
	s := exper.NewSuite(p, *procs)
	s.HostPar = *hostpar
	s.NoFastPath = !*fastpath

	// The registry lives in exper so cmd/tpisweep drives the same list.
	entries := s.Entries()

	if *procs <= 0 {
		fmt.Fprintf(os.Stderr, "experiments: -procs must be positive, got %d\n", *procs)
		os.Exit(1)
	}
	if *hostpar < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -hostpar must be >= 0, got %d\n", *hostpar)
		os.Exit(1)
	}
	known := map[string]bool{}
	for _, e := range entries {
		known[e.ID] = true
	}
	want := map[string]bool{}
	for _, id := range selected {
		id = strings.ToUpper(id)
		if !known[id] {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment id %q (want E1..E%d)\n", id, len(entries))
			os.Exit(1)
		}
		want[id] = true
	}

	var sink strings.Builder
	emit := func(text string) {
		fmt.Print(text)
		sink.WriteString(text)
	}

	results := exper.Results{SchemaVersion: exper.ResultsSchemaVersion, Params: p, Procs: *procs}
	start := time.Now()
	for _, e := range entries {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		t0 := time.Now()
		tab, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch {
		case *jsonOut:
			results.Experiments = append(results.Experiments, tab)
		case *markdown:
			emit(tab.Markdown() + "\n")
		default:
			emit(tab.String())
			emit("\n")
		}
		fmt.Fprintf(os.Stderr, "(%s in %v)\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "total %v\n", time.Since(start).Round(time.Millisecond))

	if *jsonOut {
		data, err := json.MarshalIndent(&results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		emit(string(data))
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, []byte(sink.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", *outFile, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outFile)
	}
}
