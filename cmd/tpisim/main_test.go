package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain re-execs the test binary as tpisim when the marker variable
// is set, so the exit-code tests below exercise the real main() —
// including its os.Exit paths — without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("TPISIM_BE_TPISIM") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runTpisim(t *testing.T, args ...string) (exit int, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TPISIM_BE_TPISIM=1")
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	err := cmd.Run()
	if err == nil {
		return 0, errBuf.String()
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("run: %v", err)
	}
	return ee.ExitCode(), errBuf.String()
}

// TestExitCodes: malformed flags and unreadable input produce a one-line
// error and a non-zero exit — never a panic with a stack trace.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		exit int
		want string // required stderr substring
	}{
		{"no input", nil, 2, "usage:"},
		{"unknown flag", []string{"-no-such-flag"}, 2, "flag provided but not defined"},
		{"unknown scheme", []string{"-bench", "ocean", "-scheme", "MESI"}, 1, "unknown scheme"},
		{"unknown kernel", []string{"-bench", "nope"}, 1, "unknown kernel"},
		{"unreadable file", []string{"/no/such/file.pfl"}, 1, "no such file"},
		{"bad n", []string{"-bench", "ocean", "-n", "0"}, 1, "out of range"},
		{"bad procs", []string{"-bench", "ocean", "-procs", "0"}, 1, "-procs"},
		{"bad cache", []string{"-bench", "ocean", "-cache", "-1"}, 1, "-cache"},
		{"bad line", []string{"-bench", "ocean", "-line", "0"}, 1, "-line"},
		{"btrace multi scheme", []string{"-bench", "trfd", "-scheme", "all", "-btrace", "/tmp/x"}, 1, "-btrace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exit, stderr := runTpisim(t, tc.args...)
			if exit != tc.exit {
				t.Fatalf("exit %d, want %d\nstderr: %s", exit, tc.exit, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr missing %q:\n%s", tc.want, stderr)
			}
			// (the re-exec'd binary's usage text includes the -test.*
			// flag docs, so match the panic banner, not "goroutine")
			if strings.Contains(stderr, "panic:") {
				t.Fatalf("stderr shows a panic:\n%s", stderr)
			}
		})
	}
}

func TestGoodRunExitsZero(t *testing.T) {
	exit, stderr := runTpisim(t, "-bench", "trfd", "-scheme", "BASE", "-n", "8", "-steps", "1", "-verify=false")
	if exit != 0 {
		t.Fatalf("exit %d\nstderr: %s", exit, stderr)
	}
}
