// Command tpisim runs one program (a PFL file or a named built-in
// benchmark kernel) under one coherence scheme and prints the run
// statistics.
//
// Usage:
//
//	tpisim -bench ocean -scheme TPI
//	tpisim -scheme HW -procs 32 myprog.pfl
//	tpisim -bench trfd -scheme all      # compare the four schemes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	benchName := flag.String("bench", "", "built-in kernel (spec77 ocean flo52 qcd2 trfd arc2d)")
	schemeName := flag.String("scheme", "TPI", "coherence scheme: BASE, SC, TPI, HW, VC, TARDIS, TARDIS2, or all")
	procs := flag.Int("procs", 16, "number of processors")
	n := flag.Int("n", 32, "benchmark grid size")
	steps := flag.Int("steps", 2, "benchmark time steps")
	cacheKB := flag.Int64("cache", 64, "cache size in KB (4-byte words)")
	lineWords := flag.Int("line", 4, "line size in words")
	ttBits := flag.Int("timetag", 8, "timetag bits")
	migrate := flag.Bool("migrate", false, "rotate serial tasks across processors")
	seqc := flag.Bool("seqconsistency", false, "sequential instead of weak consistency")
	dyn := flag.Bool("dynamic", false, "self-schedule DOALL iterations")
	hostpar := flag.Int("hostpar", 0, "host goroutines per DOALL epoch (0/1 = sequential; results are bit-identical)")
	dirPtrs := flag.Int("dirpointers", 0, "limited-pointer directory DIR_NB(i); 0 = full map")
	writeBack := flag.Bool("writeback", false, "TPI write-back-at-boundary instead of write-through")
	l1KB := flag.Int64("l1", 0, "on-chip L1 size in KB for the two-level TPI implementation (0 = integrated)")
	topology := flag.String("topology", "multistage", "interconnect model: multistage, torus, or mesh (clustered 2-D mesh)")
	clusters := flag.Int("clusters", 0, "processors per mesh cluster (mesh topology only; 0 = default)")
	prefetch := flag.Bool("prefetch", false, "one-block-lookahead sequential prefetch (TPI)")
	padScalars := flag.Bool("padscalars", false, "give every scalar its own cache line")
	fastpath := flag.Bool("fastpath", true, "batch affine innermost loops through the coherence schemes (results are bit-identical; -fastpath=false is the kill switch)")
	explainFP := flag.Bool("explain-fastpath", false, "print the per-loop stream fast-path recognition report and exit (no simulation)")
	requireFP := flag.Bool("require-fastpath", false, "exit non-zero unless every innermost loop streamed and (with -hostpar > 1) every DOALL epoch sharded; prints the per-loop, per-scheme reason for each fallback")
	verify := flag.Bool("verify", true, "check results against the sequential oracle")
	traceFile := flag.String("trace", "", "write a text memory-event trace to this file")
	obsLevel := flag.String("obs", "off", "instrumentation level: off, counters, or trace")
	btraceFile := flag.String("btrace", "", "write a binary event trace to this file (implies -obs trace; analyze with tpitrace)")
	jsonOut := flag.Bool("json", false, "emit a JSON array of per-scheme run results (stats schema + attributed report when -obs is on)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	switch {
	case *procs <= 0:
		fatal(fmt.Errorf("-procs must be positive, got %d", *procs))
	case *cacheKB <= 0:
		fatal(fmt.Errorf("-cache must be positive, got %d", *cacheKB))
	case *lineWords <= 0:
		fatal(fmt.Errorf("-line must be positive, got %d", *lineWords))
	case *benchName != "" && (*n < 2 || *steps < 1):
		fatal(fmt.Errorf("benchmark size out of range: -n %d -steps %d (want n >= 2, steps >= 1)", *n, *steps))
	case *hostpar < 0:
		fatal(fmt.Errorf("-hostpar must be >= 0, got %d", *hostpar))
	}

	var src, program string
	switch {
	case *benchName != "":
		k, err := bench.Get(*benchName, bench.Params{N: *n, Steps: *steps})
		if err != nil {
			fatal(err)
		}
		src = k.Source
		program = *benchName
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(b)
		program = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: tpisim (-bench name | file.pfl) [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var schemes []machine.Scheme
	if strings.EqualFold(*schemeName, "all") {
		schemes = machine.AllSchemes
	} else {
		s, err := machine.ParseScheme(*schemeName)
		if err != nil {
			fatal(err)
		}
		schemes = []machine.Scheme{s}
	}

	level, err := obs.ParseLevel(*obsLevel)
	if err != nil {
		fatal(err)
	}
	if *explainFP {
		cfg := machine.Default(schemes[0])
		cfg.LineWords = *lineWords
		c, err := core.Compile(src, core.CompileOptions{
			Interproc:      cfg.Interproc,
			FirstReadReuse: cfg.FirstReadReuse,
			AlignWords:     int64(cfg.LineWords),
			PadScalars:     *padScalars,
		})
		if err != nil {
			fatal(err)
		}
		lp, err := c.Lowered()
		if err != nil {
			fatal(err)
		}
		explainFastPath(program, lp.StreamDiags())
		return
	}
	if *btraceFile != "" && len(schemes) > 1 {
		fatal(fmt.Errorf("-btrace needs a single -scheme"))
	}

	var results []core.RunResult
	fpFallbacks := 0
	for _, s := range schemes {
		cfg := machine.Default(s)
		cfg.FastPath = *fastpath
		cfg.Procs = *procs
		cfg.CacheWords = *cacheKB * 1024 / 4
		cfg.LineWords = *lineWords
		cfg.TimetagBits = *ttBits
		cfg.MigrateSerial = *migrate
		cfg.SeqConsistency = *seqc
		cfg.DynamicSched = *dyn
		cfg.HostParallel = *hostpar
		cfg.DirPointers = *dirPtrs
		cfg.TPIWriteBack = *writeBack
		cfg.L1Words = *l1KB * 1024 / 4
		cfg.Topology = *topology
		cfg.ClusterSize = *clusters
		cfg.Prefetch = *prefetch
		c, err := core.Compile(src, core.CompileOptions{
			Interproc:      cfg.Interproc,
			FirstReadReuse: cfg.FirstReadReuse,
			AlignWords:     int64(cfg.LineWords),
			PadScalars:     *padScalars,
		})
		if err != nil {
			fatal(err)
		}
		switch {
		case *requireFP:
			st, fps, err := core.RunFastPathAudit(c, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Println(st)
			fpFallbacks += reportFastPathStatus(s, fps)
		case level != obs.LevelOff || *btraceFile != "" || *jsonOut:
			var btw io.Writer
			var btf *os.File
			if *btraceFile != "" {
				btf, err = os.Create(*btraceFile)
				if err != nil {
					fatal(err)
				}
				btw = btf
			}
			st, rep, err := core.RunObserved(c, cfg, level, btw)
			if btf != nil {
				if cerr := btf.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fatal(err)
			}
			if *jsonOut {
				results = append(results, core.NewRunResult(program, cfg, st, rep))
			} else {
				fmt.Println(st)
				if btf != nil {
					fmt.Printf("      binary trace written to %s (analyze with tpitrace)\n", *btraceFile)
				}
			}
		case *traceFile != "":
			f, err := os.Create(*traceFile)
			if err != nil {
				fatal(err)
			}
			st, err := core.RunTraced(c, cfg, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal(err)
			}
			fmt.Println(st)
			fmt.Printf("      trace written to %s\n", *traceFile)
		case *verify:
			st, err := core.VerifyAgainstOracle(c, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Println(st)
			fmt.Println("      result verified against sequential oracle")
		default:
			st, err := core.Run(c, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Println(st)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal(err)
		}
	}
	if *requireFP && fpFallbacks > 0 {
		fatal(fmt.Errorf("-require-fastpath: %d fallback site(s), see the per-scheme report above", fpFallbacks))
	}
}

// reportFastPathStatus prints, for one scheme's run, every runtime
// fast-path miss — a recognized stream loop that ran scalar, or a
// shardable DOALL epoch that ran sequentially — and returns the count.
// Structural non-candidates (unrecognized loops, seqOnly doalls) are
// listed as notes but don't count: they can never take the fast paths
// under any configuration (-explain-fastpath has the full detail).
func reportFastPathStatus(s machine.Scheme, fps *core.FastPathStatus) int {
	streamed := 0
	for _, d := range fps.StreamDiags {
		switch {
		case d.OK:
			streamed++
		case d.Outer:
			// outer loops never stream; their innermost loops have their own diags
		default:
			fmt.Printf("      [%s] note: %s: for %s at %s is not a stream candidate — %s (at %s)\n",
				s, d.Proc, d.Var, d.Pos, d.Reason, d.ReasonPos)
		}
	}
	for _, m := range fps.Misses {
		if m.Kind == "stream-loop" {
			fmt.Printf("      [%s] %s: for %s at %s: ran scalar — %s\n", s, m.Proc, m.Var, m.Pos, m.Reason)
		} else {
			fmt.Printf("      [%s] doall %s at %s: ran sequentially — %s\n", s, m.Var, m.Pos, m.Reason)
		}
	}
	if len(fps.Misses) == 0 {
		fmt.Printf("      fast-path coverage: complete (%d stream loops)\n", streamed)
	}
	return len(fps.Misses)
}

// explainFastPath prints the lower-time stream recognition report: one
// line per innermost serial loop, with the blocking construct (and its
// position) for loops that stay scalar — the tool for spotting a kernel
// loop kept off the fast path by, say, one dynamic subscript.
func explainFastPath(program string, diags []sim.StreamDiag) {
	fmt.Printf("stream fast path: %s\n", program)
	if len(diags) == 0 {
		fmt.Println("  no serial loops in task bodies")
		return
	}
	streamed := 0
	for _, dg := range diags {
		if dg.OK {
			streamed++
			fmt.Printf("  %s: for %s at %s: STREAM (%d read streams, %d write streams)\n",
				dg.Proc, dg.Var, dg.Pos, dg.Reads, dg.Writes)
		} else {
			fmt.Printf("  %s: for %s at %s: scalar — %s (at %s)\n",
				dg.Proc, dg.Var, dg.Pos, dg.Reason, dg.ReasonPos)
		}
	}
	fmt.Printf("  %d/%d loops stream; every scheme (BASE, SC, TPI, two-level TPI, HW, VC) runs "+
		"recognized loops through stream cursors — a recognized loop runs scalar only under the "+
		"text trace, -fastpath=false, or when an entry guard fails (check with -require-fastpath)\n",
		streamed, len(diags))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpisim:", err)
	os.Exit(1)
}
