// Package vc implements the version-control HSCD coherence scheme of
// Cheong and Veidenbaum (ICS 1989) — the paper's closest predecessor,
// compared against hardware directories by Lilja. It is our extension to
// the paper's four-scheme comparison.
//
// Mechanism: every shared variable X (each array and each scalar) has a
// current version number CVN(X); every cache word carries the birth
// version number (BVN) it was created under. The compiler (here: the
// section analysis) tells the hardware, at each epoch boundary, which
// variables the finished epoch may have written; their CVNs advance.
//
//	read hit:  word valid AND BVN >= CVN(var of word)
//	write:     BVN := CVN + 1  (the write creates the next version)
//	fill:      BVN := CVN      (memory holds the current version)
//
// Compared with TPI, coherence state is per *variable* rather than per
// word with epoch distances: one write anywhere in a large array ages
// every cached element of it, so VC loses intertask locality whenever an
// array is partially updated — exactly the gap the paper's timetags
// close. Compared with SC, unmodified variables stay cacheable across
// epochs.
//
// Execution model: VC runs always-buffered (memsys.Buffered). Its
// version-failure reclassification compares a cached value against
// memory, so pass-through sequential execution and buffered host-
// parallel execution would observe different neighbor values mid-epoch.
// With every epoch on buffered lanes, reads see (own buffered stores,
// then pre-epoch memory) in both modes, CVNs are frozen mid-epoch
// (EpochMods only runs at boundaries), and the lane merge at FlushEpoch
// is the single canonical serialization — sequential and host-parallel
// runs are bit-identical by construction.
package vc

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/prog"
	"repro/internal/stats"
)

// System is the version-control memory system.
type System struct {
	*memsys.Core
	caches   []*cache.Cache
	trackers []*cache.Tracker
	wbufs    []*cache.WriteBuffer

	cvn    []int64 // current version number per variable
	varOf  []int32 // word address -> variable id (-1: padding)
	byName map[string]int32
}

// New builds a VC system for a program layout (needed to map addresses
// to variables).
func New(cfg machine.Config, p *prog.Prog) *System {
	s := &System{
		Core:   memsys.NewCore(cfg, p.MemWords),
		byName: map[string]int32{},
	}
	s.varOf = make([]int32, s.Memory.Size())
	for i := range s.varOf {
		s.varOf[i] = -1
	}
	assign := func(name string, base prog.Word, size int64) {
		id := int32(len(s.cvn))
		s.byName[name] = id
		s.cvn = append(s.cvn, 0)
		for w := int64(0); w < size; w++ {
			s.varOf[int64(base)+w] = id
		}
	}
	// Deterministic variable numbering: scalars then arrays, layout order.
	var scalars []*prog.ScalarInfo
	for _, sc := range p.Scalars {
		scalars = append(scalars, sc)
	}
	sort.Slice(scalars, func(i, j int) bool { return scalars[i].Addr < scalars[j].Addr })
	for _, sc := range scalars {
		assign(sc.Name, sc.Addr, 1)
	}
	var arrays []*prog.ArrayInfo
	for _, ai := range p.Arrays {
		arrays = append(arrays, ai)
	}
	sort.Slice(arrays, func(i, j int) bool { return arrays[i].Base < arrays[j].Base })
	for _, ai := range arrays {
		assign(ai.Name, ai.Base, ai.Size)
	}

	s.caches = make([]*cache.Cache, cfg.Procs)
	s.trackers = make([]*cache.Tracker, cfg.Procs)
	s.wbufs = make([]*cache.WriteBuffer, cfg.Procs)
	s.EnableAlwaysBuffered()
	return s
}

// procState returns p's cache and tracker (building them, and the write
// buffer, on first use). Safe under host parallelism: each processor is
// owned by exactly one worker, so concurrent first-touches write
// distinct slice elements.
func (s *System) procState(p int) (*cache.Cache, *cache.Tracker) {
	if cc := s.caches[p]; cc != nil {
		return cc, s.trackers[p]
	}
	cc := cache.New(s.Cfg.CacheWords, s.Cfg.LineWords, s.Cfg.Assoc)
	s.caches[p] = cc
	s.trackers[p] = cache.NewTracker(s.Memory.Size())
	s.wbufs[p] = cache.NewWriteBuffer(s.Cfg.WriteBufferCache)
	return cc, s.trackers[p]
}

// HostShardable implements memsys.Sharded: with CVNs frozen mid-epoch
// and every reference lane-routed, concurrent processors touch only
// per-processor state (cache, tracker, write buffer, lane).
func (s *System) HostShardable() bool { return true }

// Name implements memsys.System.
func (s *System) Name() string { return "VC" }

// ReleaseCaches implements memsys.Releaser. The fields are nilled so any
// use after release fails loudly instead of corrupting a pooled cache.
func (s *System) ReleaseCaches() {
	for p, cc := range s.caches {
		if cc == nil {
			continue
		}
		cache.Release(cc)
		cache.ReleaseTracker(s.trackers[p])
		cache.ReleaseWriteBuffer(s.wbufs[p])
	}
	s.caches, s.trackers, s.wbufs = nil, nil, nil
	s.ReleaseLanes()
}

// cvnAt returns the current version of the variable holding addr
// (padding words version 0, never advanced).
func (s *System) cvnAt(addr prog.Word) int64 {
	id := s.varOf[addr]
	if id < 0 {
		return 0
	}
	return s.cvn[id]
}

// EpochMods implements memsys.Versioned.
func (s *System) EpochMods(names []string) {
	for _, n := range names {
		if id, ok := s.byName[n]; ok {
			s.cvn[id]++
		}
	}
}

// Read implements memsys.System. The Time-Read window is ignored — VC's
// compiler support is only the per-epoch modification sets. Every
// shared-state access routes through the processor's lane (see the
// package comment on always-buffered execution).
func (s *System) Read(p int, addr prog.Word, kind memsys.ReadKind, window int) (float64, int64) {
	ln := s.LaneFor(p)
	ln.St.Reads++
	cc, tr := s.procState(p)

	if kind == memsys.ReadBypass {
		v := ln.Value(addr)
		if line, w, ok := cc.Lookup(addr); ok && line.ValidWord(w) {
			line.Vals[w] = v
		}
		ln.St.ReadMisses[stats.MissBypass]++
		ln.St.ReadTrafficWords++
		ln.Inject(2)
		lat := s.WordMissLatencyFor(p, addr)
		ln.St.MissLatencySum += lat
		return v, lat
	}

	line, w, present := cc.Lookup(addr)
	if present && line.ValidWord(w) {
		if line.TT[w] >= s.cvnAt(addr) {
			ln.St.ReadHits++
			line.Used[w] = true
			cc.Touch(line)
			ln.CheckFresh(addr, line.Vals[w], p, "vc hit")
			return line.Vals[w], s.Cfg.HitCycles
		}
		// Version failure: did the data actually change?
		if line.Vals[w] != ln.Value(addr) {
			ln.St.ReadMisses[stats.MissTrueSharing]++
		} else {
			ln.St.ReadMisses[stats.MissConservative]++
		}
		s.refreshLine(ln, line, w, addr, cc, tr)
		return line.Vals[w], s.chargeLineMiss(ln, p, addr)
	}

	ln.St.ReadMisses[s.ClassifyMissLane(ln, tr, addr)]++
	if present {
		s.refreshLine(ln, line, w, addr, cc, tr)
		return line.Vals[w], s.chargeLineMiss(ln, p, addr)
	}
	nl, nw := s.fillLine(ln, cc, tr, addr)
	return nl.Vals[nw], s.chargeLineMiss(ln, p, addr)
}

// fillLine installs the line with per-word BVN = CVN(var of word).
func (s *System) fillLine(ln *memsys.Lane, cc *cache.Cache, tr *cache.Tracker, addr prog.Word) (*cache.Line, int) {
	nl, nw := s.FillLane(ln, cc, tr, addr, 0, 0)
	base := cc.LineBase(addr)
	for i := 0; i < cc.LineWords(); i++ {
		nl.TT[i] = s.cvnAt(base + prog.Word(i))
	}
	return nl, nw
}

// refreshLine refetches a present line; every word's BVN becomes the
// current version of its variable. Fill data comes through the lane so
// the processor sees its own buffered same-epoch stores.
func (s *System) refreshLine(ln *memsys.Lane, line *cache.Line, w int, addr prog.Word, cc *cache.Cache, tr *cache.Tracker) {
	base := cc.LineBase(addr)
	for i := 0; i < cc.LineWords(); i++ {
		a := base + prog.Word(i)
		line.Vals[i] = ln.Value(a)
		line.TT[i] = s.cvnAt(a)
		tr.NoteCached(a)
	}
	line.Used[w] = true
	cc.Touch(line)
}

func (s *System) chargeLineMiss(ln *memsys.Lane, p int, addr prog.Word) int64 {
	ln.St.ReadTrafficWords += int64(s.Cfg.LineWords)
	ln.Inject(int64(s.Cfg.LineWords) + 1)
	lat := s.LineMissLatencyFor(p, addr)
	ln.St.MissLatencySum += lat
	return lat
}

// Write implements memsys.System: write-through; the written word's BVN
// becomes CVN+1 (the version this epoch is producing). Regular stores
// buffer in the lane until the barrier; critical-section stores write
// through eagerly (they only occur in sequential epochs).
func (s *System) Write(p int, addr prog.Word, val float64, crit bool) int64 {
	ln := s.LaneFor(p)
	ln.St.Writes++
	cc, tr := s.procState(p)
	if crit {
		ln.WriteThrough(addr, val, p, s.Epoch)
		ln.St.WriteMisses[stats.MissBypass]++
		if line, w, ok := cc.Lookup(addr); ok && line.ValidWord(w) {
			tr.NoteLost(addr, cache.LostInvalTrue, line.TT[w])
			line.InvalidateWord(w)
		}
		ln.St.WriteTrafficWords++
		ln.Inject(1)
		return 0
	}
	ln.Write(addr, val, p, s.Epoch)
	bvn := s.cvnAt(addr) + 1
	line, w, ok := cc.Lookup(addr)
	hit := ok && line.ValidWord(w)
	if hit {
		ln.St.WriteHits++
	} else {
		// Classify before the tracker below records the new residency.
		ln.St.WriteMisses[s.ClassifyMissLane(ln, tr, addr)]++
	}
	if ok {
		line.Vals[w] = val
		line.TT[w] = bvn
		line.Used[w] = true
		cc.Touch(line)
		tr.NoteCached(addr)
	} else {
		v := cc.Victim(addr)
		if v.State != cache.Invalid {
			base := prog.Word(v.Tag * int64(cc.LineWords()))
			for i := 0; i < cc.LineWords(); i++ {
				if v.TT[i] != cache.TTInvalid {
					tr.NoteLost(base+prog.Word(i), cache.LostReplaced, v.TT[i])
				}
			}
			v.InvalidateLine()
		}
		tag, w := cc.Split(addr)
		v.Tag = tag
		v.State = cache.Shared
		v.Vals[w] = val
		v.TT[w] = bvn
		v.Used[w] = true
		cc.Touch(v)
		tr.NoteCached(addr)
	}
	if s.wbufs[p].Write(addr) {
		ln.St.WriteTrafficWords++
		ln.Inject(1)
	} else {
		ln.St.WritesCoalesced++
	}
	if s.Cfg.SeqConsistency {
		lat := s.WordMissLatencyFor(p, addr)
		if !hit {
			ln.St.WriteMissLatencySum += lat
		}
		return lat
	}
	return 0
}

// EpochBoundary implements memsys.System. The simulator's FlushEpoch has
// already merged the previous epoch's lanes when this runs.
func (s *System) EpochBoundary(epoch int64) int64 {
	s.Epoch = epoch
	s.SetLaneEpoch(epoch)
	for _, wb := range s.wbufs {
		if wb != nil {
			wb.Flush()
		}
	}
	return 0
}

// StreamCapable implements memsys.Streamer.
func (s *System) StreamCapable() bool { return true }

// InitReadCursor implements memsys.Streamer. The version cut is the
// stream variable's CVN, captured once: CVNs are frozen mid-epoch and
// the affine entry guards keep every stream address inside one variable.
// Time-Reads take the same path as regular reads (VC ignores windows).
func (s *System) InitReadCursor(c *memsys.ReadCursor, p int, kind memsys.ReadKind, window int, addr0 prog.Word) {
	ln := s.LaneFor(p)
	if kind == memsys.ReadBypass {
		*c = memsys.ReadCursor{
			Mode: memsys.StreamUncached,
			Sys:  s, Core: s.Core, Ln: ln, Proc: p,
			Kind: kind, Window: window,
		}
		return
	}
	cc, _ := s.procState(p)
	*c = memsys.ReadCursor{
		Mode: memsys.StreamCached,
		Sys:  s, Core: s.Core, Ln: ln,
		CC: cc, Proc: p,
		Kind: kind, Window: window,
		Cut:       s.cvnAt(addr0),
		PromoteTT: false,
		Epoch:     s.Epoch,
		HitCycles: s.Cfg.HitCycles,
		HitCtx:    "vc hit",
		Fresh:     ln.FreshWords(),
	}
}

// InitWriteCursor implements memsys.Streamer. The written BVN is
// CVN(stream variable)+1, constant across the stream.
func (s *System) InitWriteCursor(c *memsys.WriteCursor, p int, addr0 prog.Word) {
	cc, tr := s.procState(p)
	*c = memsys.WriteCursor{
		Mode: memsys.StreamCached,
		Sys:  s, Core: s.Core, Ln: s.LaneFor(p),
		CC: cc, Tr: tr, WB: s.wbufs[p],
		Proc:      p,
		Epoch:     s.Epoch,
		WTT:       s.cvnAt(addr0) + 1,
		PromoteTT: false,
		SeqC:      s.Cfg.SeqConsistency,
	}
}

// CVN exposes a variable's current version (tests).
func (s *System) CVN(name string) int64 {
	if id, ok := s.byName[name]; ok {
		return s.cvn[id]
	}
	return -1
}
