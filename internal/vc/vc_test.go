package vc

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/pfl"
	"repro/internal/prog"
	"repro/internal/stats"
)

func buildProg(t *testing.T) *prog.Prog {
	t.Helper()
	ast, err := pfl.Parse(`
program p
param n = 16
scalar s
array A[n]
array B[n]
proc main() { A[0] = s  B[0] = A[0] }
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := pfl.Check(ast)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prog.Build(info, 4)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newSys(t *testing.T) (*System, *prog.Prog) {
	t.Helper()
	p := buildProg(t)
	cfg := machine.Default(machine.SchemeVC)
	cfg.Procs = 2
	cfg.CacheWords = 64
	return New(cfg, p), p
}

// barrier ends the current epoch the way the simulator does: report the
// epoch's modified variables, merge the buffered lanes (VC runs
// always-buffered), and enter the next epoch. Counters in s.St and
// values in memory are only current after a barrier.
func barrier(s *System, mods []string, next int64) {
	if mods != nil {
		s.EpochMods(mods)
	}
	s.FlushEpoch()
	s.EpochBoundary(next)
}

func TestVersionHitAndAging(t *testing.T) {
	s, p := newSys(t)
	a := p.Arrays["A"]
	s.EpochBoundary(1)
	s.Write(0, a.Base, 1.5, false) // BVN = CVN+1 = 1

	// same variable unmodified across the boundary: still a hit
	barrier(s, []string{"A"}, 2) // the write's epoch modified A: CVN -> 1
	v, lat := s.Read(0, a.Base, memsys.ReadRegular, 0)
	if v != 1.5 || lat != s.Cfg.HitCycles {
		t.Fatalf("own write should still hit: v=%v lat=%d", v, lat)
	}

	// another epoch modifies A ANYWHERE: every cached element of A ages
	s.Write(1, a.Base+5, 9.0, false)
	barrier(s, []string{"A"}, 3) // CVN -> 2
	misses := s.St.TotalReadMisses()
	v, _ = s.Read(0, a.Base, memsys.ReadRegular, 0)
	s.FlushEpoch() // merge the read's lane counters for the checks below
	if v != 1.5 {
		t.Fatalf("refetched value = %v", v)
	}
	if s.St.TotalReadMisses() != misses+1 {
		t.Fatal("aged version must miss")
	}
	// word a.Base was NOT actually rewritten: conservative miss (the
	// per-variable granularity at work — TPI would have hit here).
	if s.St.ReadMisses[stats.MissConservative] != 1 {
		t.Fatalf("conservative misses = %v", s.St.ReadMisses)
	}
}

func TestUnmodifiedVariableKeepsLocality(t *testing.T) {
	s, p := newSys(t)
	b := p.Arrays["B"]
	s.EpochBoundary(1)
	s.Read(0, b.Base, memsys.ReadRegular, 0) // fill, BVN = 0
	// many epochs pass; B never modified
	for e := int64(2); e < 10; e++ {
		barrier(s, []string{"A"}, e)
	}
	_, lat := s.Read(0, b.Base, memsys.ReadRegular, 0)
	if lat != s.Cfg.HitCycles {
		t.Fatal("unmodified variable must stay cached (VC's advantage over SC)")
	}
}

func TestPerVariableGranularity(t *testing.T) {
	s, p := newSys(t)
	a, b := p.Arrays["A"], p.Arrays["B"]
	s.EpochBoundary(1)
	s.Read(0, a.Base, memsys.ReadRegular, 0)
	s.Read(0, b.Base, memsys.ReadRegular, 0)
	barrier(s, []string{"A"}, 2) // only A modified
	if _, lat := s.Read(0, b.Base, memsys.ReadRegular, 0); lat != s.Cfg.HitCycles {
		t.Fatal("B must still hit: only A was modified")
	}
	if s.CVN("A") != 1 || s.CVN("B") != 0 {
		t.Fatalf("CVNs: A=%d B=%d", s.CVN("A"), s.CVN("B"))
	}
}

func TestTrueSharingDetected(t *testing.T) {
	s, p := newSys(t)
	a := p.Arrays["A"]
	s.EpochBoundary(1)
	s.Read(0, a.Base, memsys.ReadRegular, 0) // P0 caches old value
	s.Write(1, a.Base, 7.0, false)           // P1 rewrites the same word
	barrier(s, []string{"A"}, 2)
	v, _ := s.Read(0, a.Base, memsys.ReadRegular, 0)
	s.FlushEpoch()
	if v != 7.0 {
		t.Fatalf("read %v, want 7.0", v)
	}
	if s.St.ReadMisses[stats.MissTrueSharing] != 1 {
		t.Fatalf("true-sharing misses = %v", s.St.ReadMisses)
	}
}

func TestScalarVersioning(t *testing.T) {
	s, p := newSys(t)
	sc := p.Scalars["s"]
	s.EpochBoundary(1)
	s.Write(0, sc.Addr, 3.0, false)
	barrier(s, []string{"s"}, 2)
	if v, lat := s.Read(0, sc.Addr, memsys.ReadRegular, 0); v != 3.0 || lat != s.Cfg.HitCycles {
		t.Fatalf("own scalar write must hit next epoch: v=%v lat=%d", v, lat)
	}
	if s.CVN("nope") != -1 {
		t.Fatal("unknown variable CVN must be -1")
	}
}

func TestCriticalWritesSelfInvalidate(t *testing.T) {
	s, p := newSys(t)
	sc := p.Scalars["s"]
	s.EpochBoundary(1)
	s.Write(0, sc.Addr, 1.0, false)
	s.Write(0, sc.Addr, 2.0, true)
	// The critical store is eager and withdraws the buffered regular
	// store; a same-epoch bypass read sees it immediately.
	v, _ := s.Read(0, sc.Addr, memsys.ReadBypass, 0)
	if v != 2.0 {
		t.Fatalf("bypass read = %v", v)
	}
}

// TestBufferedDeferralUntilBarrier pins the always-buffered model: a
// regular store is invisible to other processors' bypass reads until
// the lanes merge at the barrier.
func TestBufferedDeferralUntilBarrier(t *testing.T) {
	s, p := newSys(t)
	a := p.Arrays["A"]
	s.EpochBoundary(1)
	s.Write(0, a.Base, 5.0, false)
	if v, _ := s.Read(1, a.Base, memsys.ReadBypass, 0); v != 0 {
		t.Fatalf("mid-epoch cross-processor bypass read = %v, want pre-epoch 0", v)
	}
	barrier(s, []string{"A"}, 2)
	if v, _ := s.Read(1, a.Base, memsys.ReadBypass, 0); v != 5.0 {
		t.Fatalf("post-barrier bypass read = %v, want 5.0", v)
	}
}

// VC must satisfy the full scheme surface: versioned, host-shardable,
// always-buffered, stream-capable, and poolable.
var (
	_ memsys.System    = (*System)(nil)
	_ memsys.Versioned = (*System)(nil)
	_ memsys.Sharded   = (*System)(nil)
	_ memsys.Buffered  = (*System)(nil)
	_ memsys.Streamer  = (*System)(nil)
	_ memsys.Releaser  = (*System)(nil)
)
