package vc

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/pfl"
	"repro/internal/prog"
	"repro/internal/stats"
)

func buildProg(t *testing.T) *prog.Prog {
	t.Helper()
	ast, err := pfl.Parse(`
program p
param n = 16
scalar s
array A[n]
array B[n]
proc main() { A[0] = s  B[0] = A[0] }
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := pfl.Check(ast)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prog.Build(info, 4)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newSys(t *testing.T) (*System, *prog.Prog) {
	t.Helper()
	p := buildProg(t)
	cfg := machine.Default(machine.SchemeVC)
	cfg.Procs = 2
	cfg.CacheWords = 64
	return New(cfg, p), p
}

func TestVersionHitAndAging(t *testing.T) {
	s, p := newSys(t)
	a := p.Arrays["A"]
	s.EpochBoundary(1)
	s.Write(0, a.Base, 1.5, false) // BVN = CVN+1 = 1

	// same variable unmodified across the boundary: still a hit
	s.EpochMods([]string{"A"}) // the write's epoch modified A: CVN -> 1
	s.EpochBoundary(2)
	v, lat := s.Read(0, a.Base, memsys.ReadRegular, 0)
	if v != 1.5 || lat != s.Cfg.HitCycles {
		t.Fatalf("own write should still hit: v=%v lat=%d", v, lat)
	}

	// another epoch modifies A ANYWHERE: every cached element of A ages
	s.Write(1, a.Base+5, 9.0, false)
	s.EpochMods([]string{"A"}) // CVN -> 2
	s.EpochBoundary(3)
	misses := s.St.TotalReadMisses()
	v, _ = s.Read(0, a.Base, memsys.ReadRegular, 0)
	if v != 1.5 {
		t.Fatalf("refetched value = %v", v)
	}
	if s.St.TotalReadMisses() != misses+1 {
		t.Fatal("aged version must miss")
	}
	// word a.Base was NOT actually rewritten: conservative miss (the
	// per-variable granularity at work — TPI would have hit here).
	if s.St.ReadMisses[stats.MissConservative] != 1 {
		t.Fatalf("conservative misses = %v", s.St.ReadMisses)
	}
}

func TestUnmodifiedVariableKeepsLocality(t *testing.T) {
	s, p := newSys(t)
	b := p.Arrays["B"]
	s.EpochBoundary(1)
	s.Read(0, b.Base, memsys.ReadRegular, 0) // fill, BVN = 0
	// many epochs pass; B never modified
	for e := int64(2); e < 10; e++ {
		s.EpochMods([]string{"A"})
		s.EpochBoundary(e)
	}
	_, lat := s.Read(0, b.Base, memsys.ReadRegular, 0)
	if lat != s.Cfg.HitCycles {
		t.Fatal("unmodified variable must stay cached (VC's advantage over SC)")
	}
}

func TestPerVariableGranularity(t *testing.T) {
	s, p := newSys(t)
	a, b := p.Arrays["A"], p.Arrays["B"]
	s.EpochBoundary(1)
	s.Read(0, a.Base, memsys.ReadRegular, 0)
	s.Read(0, b.Base, memsys.ReadRegular, 0)
	s.EpochMods([]string{"A"}) // only A modified
	s.EpochBoundary(2)
	if _, lat := s.Read(0, b.Base, memsys.ReadRegular, 0); lat != s.Cfg.HitCycles {
		t.Fatal("B must still hit: only A was modified")
	}
	if s.CVN("A") != 1 || s.CVN("B") != 0 {
		t.Fatalf("CVNs: A=%d B=%d", s.CVN("A"), s.CVN("B"))
	}
}

func TestTrueSharingDetected(t *testing.T) {
	s, p := newSys(t)
	a := p.Arrays["A"]
	s.EpochBoundary(1)
	s.Read(0, a.Base, memsys.ReadRegular, 0) // P0 caches old value
	s.Write(1, a.Base, 7.0, false)           // P1 rewrites the same word
	s.EpochMods([]string{"A"})
	s.EpochBoundary(2)
	v, _ := s.Read(0, a.Base, memsys.ReadRegular, 0)
	if v != 7.0 {
		t.Fatalf("read %v, want 7.0", v)
	}
	if s.St.ReadMisses[stats.MissTrueSharing] != 1 {
		t.Fatalf("true-sharing misses = %v", s.St.ReadMisses)
	}
}

func TestScalarVersioning(t *testing.T) {
	s, p := newSys(t)
	sc := p.Scalars["s"]
	s.EpochBoundary(1)
	s.Write(0, sc.Addr, 3.0, false)
	s.EpochMods([]string{"s"})
	s.EpochBoundary(2)
	if v, lat := s.Read(0, sc.Addr, memsys.ReadRegular, 0); v != 3.0 || lat != s.Cfg.HitCycles {
		t.Fatalf("own scalar write must hit next epoch: v=%v lat=%d", v, lat)
	}
	if s.CVN("nope") != -1 {
		t.Fatal("unknown variable CVN must be -1")
	}
}

func TestCriticalWritesSelfInvalidate(t *testing.T) {
	s, p := newSys(t)
	sc := p.Scalars["s"]
	s.EpochBoundary(1)
	s.Write(0, sc.Addr, 1.0, false)
	s.Write(0, sc.Addr, 2.0, true)
	v, _ := s.Read(0, sc.Addr, memsys.ReadBypass, 0)
	if v != 2.0 {
		t.Fatalf("bypass read = %v", v)
	}
}

// VC must satisfy both the System and the Versioned interfaces.
var (
	_ memsys.System    = (*System)(nil)
	_ memsys.Versioned = (*System)(nil)
)
