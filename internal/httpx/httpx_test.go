package httpx

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastOpts keeps test backoffs in the millisecond range.
func fastOpts() Options {
	return Options{
		Timeout:     2 * time.Second,
		Retries:     3,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	}
}

func TestRetryOn5xxThenSuccess(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer hs.Close()

	c := New(fastOpts())
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.GetJSON(context.Background(), hs.URL, &out); err != nil {
		t.Fatalf("GetJSON: %v", err)
	}
	if !out.OK {
		t.Fatal("decoded body lost")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 retried 503s + success)", got)
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad"}`, http.StatusBadRequest)
	}))
	defer hs.Close()

	c := New(fastOpts())
	status, body, err := c.Get(context.Background(), hs.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
	if len(body) == 0 {
		t.Fatal("error body not preserved")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (4xx must not retry)", got)
	}
}

func TestRetriesExhaustedReturnsLastStatus(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer hs.Close()

	c := New(fastOpts())
	status, _, err := c.Get(context.Background(), hs.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 after exhausting retries", status)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("server saw %d calls, want 4 (1 + 3 retries)", got)
	}
}

func TestPostBodyReplayedOnRetry(t *testing.T) {
	type payload struct {
		Name string `json:"name"`
	}
	var calls atomic.Int32
	var lastBody atomic.Value
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var p payload
		if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
			t.Errorf("attempt %d: decode: %v", calls.Load(), err)
		}
		lastBody.Store(p.Name)
		if calls.Add(1) <= 1 {
			http.Error(w, "flaky", http.StatusBadGateway)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer hs.Close()

	c := New(fastOpts())
	status, _, err := c.PostJSON(context.Background(), hs.URL, payload{Name: "ocean"})
	if err != nil || status != http.StatusOK {
		t.Fatalf("PostJSON: status %d err %v", status, err)
	}
	if got := lastBody.Load(); got != "ocean" {
		t.Fatalf("retried attempt saw body %q, want %q", got, "ocean")
	}
}

func TestConnectionErrorRetriesThenFails(t *testing.T) {
	// A server that is immediately closed leaves a port that refuses
	// connections — every attempt fails at the transport level.
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := hs.URL
	hs.Close()

	c := New(Options{Timeout: time.Second, Retries: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	if _, _, err := c.Get(context.Background(), url); err == nil {
		t.Fatal("expected a transport error against a closed port")
	}
}

func TestPerRequestDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer hs.Close()

	c := New(Options{Timeout: 50 * time.Millisecond, Retries: -1})
	start := time.Now()
	if _, _, err := c.Get(context.Background(), hs.URL); err == nil {
		t.Fatal("expected a deadline error from a hung server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v, want ~50ms", elapsed)
	}
}

func TestContextCancelStopsBackoff(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(Options{Timeout: time.Second, Retries: 3, BackoffBase: time.Hour, BackoffMax: time.Hour})
	start := time.Now()
	if _, _, err := c.Get(ctx, hs.URL); err == nil {
		t.Fatal("expected a context error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled backoff took %v", elapsed)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	c := New(Options{BackoffBase: 100 * time.Millisecond, BackoffMax: 2 * time.Second})
	for attempt := 0; attempt < 8; attempt++ {
		want := 100 * time.Millisecond << attempt
		if want > 2*time.Second {
			want = 2 * time.Second
		}
		for i := 0; i < 50; i++ {
			d := c.backoff(attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}
