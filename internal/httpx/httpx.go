// Package httpx is the shared HTTP client for the fleet tools: the load
// generator (cmd/tpiload), the sweep coordinator (internal/sweep), and
// the job server's peer-cache probes (internal/svc) all talk to
// tpiserved workers through it. One Client holds a keep-alive connection
// pool, applies a per-request deadline to every attempt, and retries
// transport errors and 5xx responses a bounded number of times with
// jittered exponential backoff — the retry/backoff policy lives here
// once instead of being reimplemented per caller.
//
// Retrying POSTs is safe against this API: every mutation is
// content-addressed (a resubmitted run request lands on the same result
// key, where the server's cache and singleflight dedup collapse it), so
// all verbs are treated as idempotent.
package httpx

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"
)

// Options sizes a Client. Zero values select the defaults noted on each
// field.
type Options struct {
	// Timeout bounds each request attempt, connection time included
	// (default 2m; <0 disables).
	Timeout time.Duration
	// Retries is how many times a failed attempt is retried — transport
	// errors and 5xx/429 responses only, never other 4xx (default 3;
	// <0 disables retrying).
	Retries int
	// BackoffBase seeds the exponential backoff between attempts
	// (default 100ms). The k-th retry sleeps a uniformly jittered
	// duration in [b/2, b] for b = min(BackoffBase<<k, BackoffMax), so a
	// fleet of clients hammering one recovering worker spreads out.
	BackoffBase time.Duration
	// BackoffMax caps the backoff (default 2s).
	BackoffMax time.Duration
	// MaxIdleConnsPerHost sizes the keep-alive pool per worker
	// (default 16).
	MaxIdleConnsPerHost int
}

func (o Options) withDefaults() Options {
	if o.Timeout == 0 {
		o.Timeout = 2 * time.Minute
	}
	if o.Timeout < 0 {
		o.Timeout = 0
	}
	if o.Retries == 0 {
		o.Retries = 3
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.MaxIdleConnsPerHost <= 0 {
		o.MaxIdleConnsPerHost = 16
	}
	return o
}

// Client is a retrying JSON HTTP client over a shared keep-alive pool.
// It is safe for concurrent use.
type Client struct {
	hc   *http.Client
	opts Options
}

// New builds a Client. The underlying transport clones the defaults
// (HTTP/2, proxy env) but widens the per-host idle pool so a sweep's
// bounded in-flight window reuses connections instead of re-dialing.
func New(opts Options) *Client {
	opts = opts.withDefaults()
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = opts.MaxIdleConnsPerHost
	if tr.MaxIdleConns < opts.MaxIdleConnsPerHost {
		tr.MaxIdleConns = opts.MaxIdleConnsPerHost * 4
	}
	return &Client{hc: &http.Client{Transport: tr}, opts: opts}
}

// StatusError is returned by GetJSON when the response is not 2xx; the
// body is preserved so callers can surface the server's error document.
type StatusError struct {
	Status int
	Body   []byte
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("httpx: HTTP %d: %s", e.Status, truncate(e.Body))
}

// retryable reports whether a response status is worth retrying: the
// server-side failures (5xx) and backpressure (429), never other 4xx —
// a bad request stays bad on retry.
func retryable(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// Do issues one request with the retry/backoff policy applied. body may
// be nil; it is replayed verbatim on each attempt. The response body is
// fully read and returned, so the connection always goes back to the
// pool. Do returns the final status and body even for non-2xx responses
// (err is nil then); err is non-nil only when every attempt failed at
// the transport level or the context ended.
func (c *Client) Do(ctx context.Context, method, url, contentType string, body []byte) (status int, respBody []byte, err error) {
	for attempt := 0; ; attempt++ {
		status, respBody, err = c.once(ctx, method, url, contentType, body)
		if err == nil && !retryable(status) {
			return status, respBody, nil
		}
		if attempt >= c.opts.Retries {
			if err != nil {
				return 0, nil, fmt.Errorf("httpx: %s %s: %w (after %d attempts)", method, url, err, attempt+1)
			}
			return status, respBody, nil
		}
		if serr := sleep(ctx, c.backoff(attempt)); serr != nil {
			return 0, nil, fmt.Errorf("httpx: %s %s: %w", method, url, serr)
		}
	}
}

// once runs a single attempt under the per-request deadline.
func (c *Client) once(ctx context.Context, method, url, contentType string, body []byte) (int, []byte, error) {
	if c.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.Timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fmt.Errorf("HTTP %d: reading body: %w", resp.StatusCode, err)
	}
	return resp.StatusCode, b, nil
}

// PostJSON marshals in and POSTs it. Non-2xx responses are returned with
// their body and a nil error, mirroring Do.
func (c *Client) PostJSON(ctx context.Context, url string, in any) (status int, body []byte, err error) {
	b, err := json.Marshal(in)
	if err != nil {
		return 0, nil, fmt.Errorf("httpx: marshal request: %w", err)
	}
	return c.Do(ctx, http.MethodPost, url, "application/json", b)
}

// Get fetches url under the retry policy, returning status and body.
func (c *Client) Get(ctx context.Context, url string) (status int, body []byte, err error) {
	return c.Do(ctx, http.MethodGet, url, "", nil)
}

// GetJSON fetches url and decodes a 2xx body into out. Non-2xx becomes a
// *StatusError carrying the body.
func (c *Client) GetJSON(ctx context.Context, url string, out any) error {
	status, body, err := c.Get(ctx, url)
	if err != nil {
		return err
	}
	if status < 200 || status > 299 {
		return &StatusError{Status: status, Body: body}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("httpx: GET %s: decode body: %w", url, err)
	}
	return nil
}

// Stream issues a GET without retries, buffering, or a per-request
// deadline — the SSE follower owns the response lifetime. The caller
// must close the response body.
func (c *Client) Stream(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.hc.Do(req)
}

// backoff computes the jittered delay before retry number attempt.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BackoffBase
	for i := 0; i < attempt && d < c.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	half := d / 2
	return half + rand.N(half+1)
}

// sleep waits for d or until ctx ends.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func truncate(b []byte) string {
	const max = 256
	s := string(bytes.TrimSpace(b))
	if len(s) > max {
		return s[:max] + "...(truncated)"
	}
	return s
}
