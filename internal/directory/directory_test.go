package directory

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/stats"
)

func cfg() machine.Config {
	c := machine.Default(machine.SchemeHW)
	c.Procs = 4
	c.CacheWords = 64
	c.LineWords = 4
	return c
}

func newSys(t *testing.T, c machine.Config) *System {
	t.Helper()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return New(c, 256)
}

// barrier ends the current epoch (lane merge + directory replay), checks
// the protocol invariants — they only hold at barriers — and enters the
// next epoch. Counters in s.St are only current after a barrier.
func barrier(t *testing.T, s *System, next int64) {
	t.Helper()
	s.FlushEpoch()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s.EpochBoundary(next)
}

func TestReadSharedThenUpgrade(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	// Two readers share the line.
	s.Read(0, 8, memsys.ReadRegular, 0)
	s.Read(1, 8, memsys.ReadRegular, 0)
	barrier(t, s, 2)
	// P0 writes: the upgrade is eager locally, P1's invalidation replays
	// at the barrier.
	inv := s.St.Invalidations
	s.Write(0, 8, 42, false)
	barrier(t, s, 3)
	if s.St.Invalidations != inv+1 {
		t.Fatalf("invalidations = %d, want %d", s.St.Invalidations, inv+1)
	}
	// P1 re-reads: true-sharing miss (it had used the written word) and
	// sees the new value.
	v, _ := s.Read(1, 8, memsys.ReadRegular, 0)
	if v != 42 {
		t.Fatalf("read after invalidation = %v, want 42", v)
	}
	barrier(t, s, 4)
	if s.St.ReadMisses[stats.MissTrueSharing] != 1 {
		t.Fatalf("true-sharing misses = %d (%v)", s.St.ReadMisses[stats.MissTrueSharing], s.St.ReadMisses)
	}
}

func TestFalseSharingClassification(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	s.Read(1, 9, memsys.ReadRegular, 0) // P1 uses word 9 of line 8..11
	barrier(t, s, 2)
	s.Write(0, 8, 1.0, false) // P0 writes word 8: P1 never used it
	barrier(t, s, 3)
	s.Read(1, 9, memsys.ReadRegular, 0)
	barrier(t, s, 4)
	if s.St.ReadMisses[stats.MissFalseSharing] != 1 {
		t.Fatalf("false-sharing misses = %d (%v)", s.St.ReadMisses[stats.MissFalseSharing], s.St.ReadMisses)
	}
}

func TestRemoteDirtyReadPaysExtraLatency(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	// P0 makes the line dirty-exclusive.
	s.Write(0, 16, 7.5, false)
	barrier(t, s, 2)
	// P1 read miss must fetch through the owner: compare with a clean miss.
	_, latDirty := s.Read(1, 16, memsys.ReadRegular, 0)
	_, latClean := s.Read(2, 32, memsys.ReadRegular, 0)
	if latDirty <= latClean {
		t.Fatalf("remote-dirty latency %d must exceed clean-miss latency %d", latDirty, latClean)
	}
	barrier(t, s, 3)
	// Owner's copy was downgraded at the barrier; both remain readable.
	v, _ := s.Read(0, 16, memsys.ReadRegular, 0)
	if v != 7.5 {
		t.Fatalf("owner copy = %v", v)
	}
	if v, _ := s.Read(1, 16, memsys.ReadRegular, 0); v != 7.5 {
		t.Fatalf("forwarded copy = %v", v)
	}
	barrier(t, s, 4)
}

func TestWritebackOnEviction(t *testing.T) {
	s := newSys(t, cfg()) // 64-word cache, direct-mapped: 16 sets
	s.EpochBoundary(1)
	s.Write(0, 0, 1.0, false) // dirty line at set 0
	barrier(t, s, 2)
	wt := s.St.WriteTrafficWords
	s.Read(0, 64, memsys.ReadRegular, 0) // conflicting fill evicts dirty line
	barrier(t, s, 3)
	if s.St.WriteTrafficWords != wt+int64(s.Cfg.LineWords) {
		t.Fatalf("eviction writeback traffic = %d, want +%d", s.St.WriteTrafficWords-wt, s.Cfg.LineWords)
	}
	// The value survives in memory.
	v, _ := s.Read(1, 0, memsys.ReadRegular, 0)
	if v != 1.0 {
		t.Fatalf("value after writeback = %v", v)
	}
}

func TestWriteMissInvalidatesAllSharers(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	s.Read(1, 24, memsys.ReadRegular, 0)
	s.Read(2, 24, memsys.ReadRegular, 0)
	s.Read(3, 24, memsys.ReadRegular, 0)
	barrier(t, s, 2)
	s.Write(0, 24, 5.0, false) // write miss: all three sharers swept at the barrier
	barrier(t, s, 3)
	if s.St.Invalidations != 3 {
		t.Fatalf("invalidations = %d, want 3", s.St.Invalidations)
	}
	for q := 1; q <= 3; q++ {
		if line, w, ok := s.caches[q].Lookup(24); ok && line.ValidWord(w) {
			t.Fatalf("P%d still holds an invalidated line", q)
		}
	}
}

func TestExclusiveWriteHitIsSilent(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	s.Write(0, 40, 1.0, false)
	barrier(t, s, 2)
	tr := s.St.TotalTraffic()
	msgs := s.St.CoherenceMsgs
	for i := 0; i < 10; i++ {
		s.Write(0, 40, float64(i), false)
	}
	barrier(t, s, 3)
	if s.St.TotalTraffic() != tr || s.St.CoherenceMsgs != msgs {
		t.Fatal("writes to an exclusive line must be free of traffic")
	}
}

func TestEpochBoundaryKeepsCacheContents(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	s.Write(0, 48, 3.0, false)
	barrier(t, s, 2)
	hits := s.St.ReadHits
	v, _ := s.Read(0, 48, memsys.ReadRegular, 0)
	barrier(t, s, 3)
	if v != 3.0 || s.St.ReadHits != hits+1 {
		t.Fatal("write-back caches must keep dirty data across epochs")
	}
}

func TestUsedBitsResetOnRefill(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	s.Read(1, 8, memsys.ReadRegular, 0) // P1 uses word 8
	barrier(t, s, 2)
	s.Write(0, 8, 1.0, false) // true-sharing invalidation for P1
	barrier(t, s, 3)
	s.Read(1, 10, memsys.ReadRegular, 0) // P1 refills the line, uses word 10 only
	barrier(t, s, 4)
	s.Write(0, 8, 2.0, false) // invalidation: word 8 not used since refill
	barrier(t, s, 5)
	r, _ := s.trackers[1].Lost(10)
	if r != cache.LostInvalFalse {
		t.Fatalf("second invalidation should be false sharing for P1, got %v", r)
	}
}

// TestDeferredInvalidationUntilBarrier pins the deferred model itself: a
// sharer keeps hitting its copy for the remainder of the epoch in which
// another processor claimed the line, and loses it exactly at the
// barrier.
func TestDeferredInvalidationUntilBarrier(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	s.Read(1, 8, memsys.ReadRegular, 0)
	barrier(t, s, 2)
	s.Write(0, 8, 9.0, false)
	// Same epoch: P1 still hits its (now stale-to-be) copy — invalidations
	// deliver at the synchronization point, and P1's lane-visible value is
	// the pre-epoch one, which is exactly what a data-race-free program
	// may observe.
	if s.St.Invalidations != 0 {
		t.Fatalf("mid-epoch invalidations = %d, want 0", s.St.Invalidations)
	}
	if line, w, ok := s.caches[1].Lookup(8); !ok || !line.ValidWord(w) {
		t.Fatal("P1's copy must survive until the barrier")
	}
	barrier(t, s, 3)
	if s.St.Invalidations != 1 {
		t.Fatalf("post-barrier invalidations = %d, want 1", s.St.Invalidations)
	}
	if _, _, ok := s.caches[1].Lookup(8); ok {
		t.Fatal("P1's copy must be gone after the barrier")
	}
	if v, _ := s.Read(1, 8, memsys.ReadRegular, 0); v != 9.0 {
		t.Fatalf("P1 re-read = %v, want 9.0", v)
	}
	barrier(t, s, 4)
}

// TestCriticalStoreEager pins the one eager path: critical-section
// stores write through immediately and invalidate every cached copy on
// the spot, so a same-epoch bypass read observes the new value.
func TestCriticalStoreEager(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	s.Read(1, 8, memsys.ReadRegular, 0)
	barrier(t, s, 2)
	s.Write(0, 8, 4.0, true)
	if _, _, ok := s.caches[1].Lookup(8); ok {
		t.Fatal("critical store must invalidate sharers eagerly")
	}
	if v, _ := s.Read(1, 8, memsys.ReadBypass, 0); v != 4.0 {
		t.Fatalf("same-epoch read after critical store = %v, want 4.0", v)
	}
	barrier(t, s, 3)
}
