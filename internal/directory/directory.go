// Package directory implements the paper's hardware comparison point: a
// full-map, three-state (invalid / read-shared / write-exclusive)
// invalidation-based directory protocol with write-back caches, after
// Censier–Feautrier. Coherence is enforced per cache line, so the scheme
// pays false-sharing misses where TPI pays conservative misses.
//
// Under the weak consistency model writes never stall the processor:
// ownership acquisition, invalidations, and write-backs are charged as
// network traffic and coherence transactions, and read misses that hit
// dirty remote copies pay the extra ownership-forwarding latency.
package directory

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/prog"
	"repro/internal/stats"
)

// dirState is the memory-side state of one line.
type dirState uint8

const (
	dirUncached dirState = iota
	dirShared
	dirExclusive
)

// entry is one full-map directory entry.
type entry struct {
	state    dirState
	presence uint64 // bit per processor (P <= 64)
	owner    int16
}

// System is the full-map directory memory system.
type System struct {
	*memsys.Core
	caches   []*cache.Cache
	trackers []*cache.Tracker
	dir      []entry // one per memory line
}

// New builds an HW directory system.
func New(cfg machine.Config, memWords int64) *System {
	if cfg.Procs > 64 {
		panic(fmt.Sprintf("directory: full-map presence limited to 64 processors, got %d", cfg.Procs))
	}
	s := &System{
		Core: memsys.NewCore(cfg, memWords),
	}
	s.dir = make([]entry, s.Memory.Size()/int64(cfg.LineWords))
	for p := 0; p < cfg.Procs; p++ {
		s.caches = append(s.caches, cache.New(cfg.CacheWords, cfg.LineWords, cfg.Assoc))
		s.trackers = append(s.trackers, cache.NewTracker(s.Memory.Size()))
	}
	return s
}

// Name implements memsys.System.
func (s *System) Name() string { return "HW" }

// ReleaseCaches implements memsys.Releaser. The fields are nilled so any
// use after release fails loudly instead of corrupting a pooled cache.
func (s *System) ReleaseCaches() {
	for p, cc := range s.caches {
		cache.Release(cc)
		cache.ReleaseTracker(s.trackers[p])
	}
	s.caches, s.trackers = nil, nil
}

// Read implements memsys.System. The compiler marking is ignored: the
// hardware enforces coherence by itself.
func (s *System) Read(p int, addr prog.Word, kind memsys.ReadKind, window int) (float64, int64) {
	s.St.Reads++
	cc, tr := s.caches[p], s.trackers[p]

	if line, w, ok := cc.Lookup(addr); ok {
		s.St.ReadHits++
		line.Used[w] = true
		cc.Touch(line)
		s.Memory.CheckFresh(addr, line.Vals[w], p, "hw read hit")
		return line.Vals[w], s.Cfg.HitCycles
	}

	s.St.ReadMisses[s.ClassifyMiss(tr, addr)]++
	tag, _ := cc.Split(addr)
	e := &s.dir[tag]

	var extra int64
	if e.state == dirExclusive && int(e.owner) != p {
		// Remote dirty copy: the request is forwarded from the home node
		// to the owner, and the data comes back from the owner.
		owner := int(e.owner)
		s.downgradeOwner(owner, tag)
		e.state = dirShared
		home := s.HomeOf(addr)
		extra = s.Netw.DelayBetween(home, owner, 1) + s.Netw.DelayBetween(owner, p, s.Cfg.LineWords)
		s.St.CoherenceTrafficWords += int64(s.Cfg.LineWords) + 2
		s.St.CoherenceMsgs++
		s.Netw.Inject(int64(s.Cfg.LineWords) + 2)
	}

	s.reservePointer(e, p, tag, addr)
	nl, nw := s.fill(p, addr, false)
	e.presence |= 1 << uint(p)
	if e.state == dirUncached {
		e.state = dirShared
	}
	s.St.ReadTrafficWords += int64(s.Cfg.LineWords)
	s.Netw.Inject(int64(s.Cfg.LineWords) + 1)
	lat := s.LineMissLatencyFor(p, addr) + extra
	s.St.MissLatencySum += lat
	return nl.Vals[nw], lat
}

// Write implements memsys.System: invalidation-based MSI. The processor
// does not stall (weak consistency); all costs are traffic-side.
func (s *System) Write(p int, addr prog.Word, val float64, crit bool) int64 {
	s.St.Writes++
	s.Memory.Write(addr, val, p, s.Epoch) // authoritative shadow
	cc := s.caches[p]
	tag, _ := cc.Split(addr)
	e := &s.dir[tag]

	if line, w, ok := cc.Lookup(addr); ok {
		s.St.WriteHits++
		if line.State == cache.Exclusive {
			line.Vals[w] = val
			line.Dirty = true
			line.Used[w] = true
			cc.Touch(line)
			return 0
		}
		// Shared hit: upgrade. Invalidate all other sharers.
		s.invalidateSharers(e, p, tag, addr)
		e.state = dirExclusive
		e.owner = int16(p)
		e.presence = 1 << uint(p)
		line.State = cache.Exclusive
		line.Vals[w] = val
		line.Dirty = true
		line.Used[w] = true
		cc.Touch(line)
		s.St.CoherenceMsgs++ // upgrade request
		s.St.CoherenceTrafficWords++
		s.Netw.Inject(1)
		if s.Cfg.SeqConsistency {
			// the upgrade must be acknowledged before the write retires
			return s.Netw.RoundTripBetween(p, s.HomeOf(addr), 1)
		}
		return 0
	}

	// Write miss: fetch the line with ownership. Classify from p's tracker
	// history before the fill below records the new residency (sharer
	// invalidations only touch other processors' trackers).
	s.St.WriteMisses[s.ClassifyMiss(s.trackers[p], addr)]++
	if e.state == dirExclusive && int(e.owner) != p {
		s.downgradeOwner(int(e.owner), tag)
		s.invalidateSharers(e, p, tag, addr)
		s.St.CoherenceTrafficWords += int64(s.Cfg.LineWords) + 2
		s.St.CoherenceMsgs++
		s.Netw.Inject(int64(s.Cfg.LineWords) + 2)
	} else {
		s.invalidateSharers(e, p, tag, addr)
	}
	nl, nw := s.fill(p, addr, true)
	e.state = dirExclusive
	e.owner = int16(p)
	e.presence = 1 << uint(p)
	nl.Vals[nw] = val
	nl.Dirty = true
	s.St.ReadTrafficWords += int64(s.Cfg.LineWords) // ownership fetch
	s.Netw.Inject(int64(s.Cfg.LineWords) + 1)
	if s.Cfg.SeqConsistency {
		// the ownership fetch must complete before the write retires
		lat := s.LineMissLatencyFor(p, addr)
		s.St.WriteMissLatencySum += lat
		return lat
	}
	return 0
}

// reservePointer enforces the limited-pointer directory variant
// (DIR_NB(i)): when adding sharer p would exceed the pointer budget, an
// existing sharer is invalidated to free a pointer. Such invalidations
// are a directory-capacity artifact and are recorded as replacements at
// the victim.
func (s *System) reservePointer(e *entry, p int, tag int64, addr prog.Word) {
	limit := s.Cfg.DirPointers
	if limit <= 0 || e.presence&(1<<uint(p)) != 0 {
		return
	}
	for popcount(e.presence) >= limit {
		victim := -1
		for q := 0; q < s.Cfg.Procs; q++ {
			if q != p && e.presence&(1<<uint(q)) != 0 {
				victim = q
				break
			}
		}
		if victim < 0 {
			return
		}
		cc, tr := s.caches[victim], s.trackers[victim]
		base := prog.Word(tag * int64(cc.LineWords()))
		if line, _, ok := cc.Lookup(base); ok && line.Tag == tag {
			for i := 0; i < cc.LineWords(); i++ {
				if line.TT[i] != cache.TTInvalid {
					tr.NoteLost(base+prog.Word(i), cache.LostReplaced, line.TT[i])
				}
			}
			if line.Dirty {
				s.St.WriteTrafficWords += int64(s.Cfg.LineWords)
				s.Netw.Inject(int64(s.Cfg.LineWords))
			}
			line.InvalidateLine()
		}
		if s.Probe != nil {
			s.Probe.Invalidation(p, victim, addr, stats.MissReplace)
		}
		e.presence &^= 1 << uint(victim)
		s.St.PointerEvictions++
		s.St.Invalidations++
		s.St.CoherenceMsgs++
		s.St.CoherenceTrafficWords += 2
		s.Netw.Inject(2)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// fill installs the line containing addr in p's cache (evicting with
// directory bookkeeping) and returns it.
func (s *System) fill(p int, addr prog.Word, exclusive bool) (*cache.Line, int) {
	cc, tr := s.caches[p], s.trackers[p]
	v := cc.Victim(addr)
	if v.State != cache.Invalid {
		s.evict(p, v)
	}
	nl, nw := s.MissFill(cc, tr, addr, s.Epoch, s.Epoch)
	if exclusive {
		nl.State = cache.Exclusive
	}
	return nl, nw
}

// evict removes a victim line with write-back and directory bookkeeping.
func (s *System) evict(p int, v *cache.Line) {
	cc, tr := s.caches[p], s.trackers[p]
	e := &s.dir[v.Tag]
	e.presence &^= 1 << uint(p)
	if v.State == cache.Exclusive && int(e.owner) == p {
		if v.Dirty {
			s.St.WriteTrafficWords += int64(s.Cfg.LineWords)
			s.Netw.Inject(int64(s.Cfg.LineWords))
		}
		e.state = dirUncached
		e.owner = 0
	} else if e.presence == 0 && e.state == dirShared {
		e.state = dirUncached
	}
	base := prog.Word(v.Tag * int64(cc.LineWords()))
	for i := 0; i < cc.LineWords(); i++ {
		if v.TT[i] != cache.TTInvalid {
			tr.NoteLost(base+prog.Word(i), cache.LostReplaced, v.TT[i])
		}
	}
	v.InvalidateLine()
}

// downgradeOwner makes the exclusive owner's copy clean/shared
// (write-back of dirty data is charged by the caller).
func (s *System) downgradeOwner(owner int, tag int64) {
	cc := s.caches[owner]
	base := prog.Word(tag * int64(cc.LineWords()))
	if line, _, ok := cc.Lookup(base); ok && line.Tag == tag {
		line.State = cache.Shared
		line.Dirty = false
	}
}

// invalidateSharers invalidates every other cached copy of the line,
// classifying each invalidation as true or false sharing by the
// Tullsen–Eggers rule: it is true sharing only if the invalidated
// processor had used the written word since filling the line.
func (s *System) invalidateSharers(e *entry, writer int, tag int64, addr prog.Word) {
	if e.presence == 0 {
		return
	}
	for q := 0; q < s.Cfg.Procs; q++ {
		if q == writer || e.presence&(1<<uint(q)) == 0 {
			continue
		}
		cc, tr := s.caches[q], s.trackers[q]
		base := prog.Word(tag * int64(cc.LineWords()))
		line, w, ok := cc.Lookup(base + prog.Word(int(int64(addr))%cc.LineWords()))
		if !ok || line.Tag != tag {
			e.presence &^= 1 << uint(q)
			continue
		}
		reason := cache.LostInvalFalse
		if line.Used[w] {
			reason = cache.LostInvalTrue
		}
		if s.Probe != nil {
			class := stats.MissFalseSharing
			if reason == cache.LostInvalTrue {
				class = stats.MissTrueSharing
			}
			s.Probe.Invalidation(writer, q, addr, class)
		}
		for i := 0; i < cc.LineWords(); i++ {
			if line.TT[i] != cache.TTInvalid {
				tr.NoteLost(base+prog.Word(i), reason, line.TT[i])
			}
		}
		if line.Dirty {
			s.St.WriteTrafficWords += int64(s.Cfg.LineWords)
			s.Netw.Inject(int64(s.Cfg.LineWords))
		}
		line.InvalidateLine()
		e.presence &^= 1 << uint(q)
		s.St.Invalidations++
		s.St.CoherenceMsgs++
		s.St.CoherenceTrafficWords += 2 // invalidate + ack
		s.Netw.Inject(2)
	}
}

// EpochBoundary implements memsys.System: write-back caches keep their
// contents across epochs (the directory scheme's key advantage).
func (s *System) EpochBoundary(epoch int64) int64 {
	s.Epoch = epoch
	return 0
}

// CheckInvariants verifies the protocol's global invariants: at most one
// exclusive owner per line, presence bits consistent with cache contents,
// and no dirty copy without exclusive state. Tests call it after runs.
func (s *System) CheckInvariants() error {
	for tag := range s.dir {
		e := &s.dir[tag]
		holders, dirty := 0, 0
		var exclusiveHolder = -1
		for p := 0; p < s.Cfg.Procs; p++ {
			cc := s.caches[p]
			base := prog.Word(int64(tag) * int64(cc.LineWords()))
			line, _, ok := cc.Lookup(base)
			if !ok || line.Tag != int64(tag) {
				if e.presence&(1<<uint(p)) != 0 {
					return fmt.Errorf("directory: line %d: presence bit set for P%d without a copy", tag, p)
				}
				continue
			}
			holders++
			if e.presence&(1<<uint(p)) == 0 {
				return fmt.Errorf("directory: line %d: P%d holds a copy without a presence bit", tag, p)
			}
			if line.State == cache.Exclusive {
				exclusiveHolder = p
			}
			if line.Dirty {
				dirty++
				if line.State != cache.Exclusive {
					return fmt.Errorf("directory: line %d: dirty non-exclusive copy at P%d", tag, p)
				}
			}
		}
		if exclusiveHolder >= 0 && holders > 1 {
			return fmt.Errorf("directory: line %d: exclusive copy at P%d alongside %d holders",
				tag, exclusiveHolder, holders)
		}
		if e.state == dirExclusive && exclusiveHolder != int(e.owner) {
			return fmt.Errorf("directory: line %d: owner %d has no exclusive copy", tag, e.owner)
		}
	}
	return nil
}
