// Package directory implements the paper's hardware comparison point: a
// full-map, three-state (invalid / read-shared / write-exclusive)
// invalidation-based directory protocol with write-back caches, after
// Censier–Feautrier. Coherence is enforced per cache line, so the scheme
// pays false-sharing misses where TPI pays conservative misses.
//
// Under the weak consistency model writes never stall the processor:
// ownership acquisition, invalidations, and write-backs are charged as
// network traffic and coherence transactions, and read misses that hit
// dirty remote copies pay the extra ownership-forwarding latency.
//
// # Barrier-deferred coherence
//
// The directory itself — sharer lists, owner pointers, line states — is
// the one piece of genuinely cross-processor mid-epoch state in the
// simulator. To put HW on the host-parallel and stream fast paths, the
// protocol is executed in two phases that are identical in sequential
// and host-parallel runs:
//
//   - Mid-epoch, the directory is FROZEN. A reference only touches the
//     issuing processor's own cache, tracker, and lane; decisions that
//     need the directory (forwarding latency for a read of a remote
//     exclusive line, the coherence-transfer charge of a write miss)
//     read the frozen entry. Every directory mutation a reference would
//     have made is appended to the processor's private action log:
//     read fills (actFill / actFillFromOwner), ownership claims — a
//     shared-hit upgrade or a write-miss fill-exclusive — (actClaim),
//     and evictions (actEvict).
//   - At the epoch barrier (FlushEpoch), after the lanes have drained
//     into memory, the logs replay single-threaded in (processor,
//     sequence) order. Claims sweep every OTHER processor's cache for
//     surviving copies of the written line — invalidating, classifying
//     (true/false sharing via the victim's used bit for the written
//     word), and charging write-backs and invalidation traffic — then
//     register the claimant as exclusive owner. Fills and evictions
//     register/clear presence bits against the processor's cache state
//     as it stands at the barrier, so a copy filled and later evicted
//     in the same epoch never leaves a stale presence bit.
//
// Replay order is deterministic and mode-independent, so stats, memory,
// and observation output are bit-identical between sequential and
// host-parallel execution by construction. Relative to an eager
// protocol the model shifts invalidation delivery to the barrier —
// victims keep hitting their copies until the epoch ends, mirroring how
// a relaxed machine may buffer invalidations until the next
// synchronization point. Values stay exact: the only copies that can
// hold words another processor wrote in the same epoch are the claimant
// itself and readers that filled from a remote exclusive owner, and
// replay refreshes both from barrier-final memory.
//
// Critical-section stores are the one mid-epoch communication channel
// (same-epoch bypass readers must observe them). Epochs containing them
// always execute sequentially in every mode, so the crit store applies
// eagerly: memory via Lane.WriteThrough and an immediate sweep that
// invalidates every cached copy of the line, including the writer's own.
package directory

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/prog"
	"repro/internal/stats"
)

// dirState is the memory-side state of one line.
type dirState uint8

const (
	dirUncached dirState = iota
	dirShared
	dirExclusive
)

// entry is one full-map directory entry. For machines with P <= 64 the
// sharer list is the inline presence word; larger machines keep presence
// in the System's flat multi-word backing (see presence.go) and leave
// the inline word zero.
type entry struct {
	state    dirState
	presence uint64 // bit per processor (narrow path, P <= 64)
	owner    int16
}

// actKind is a deferred directory mutation's type.
type actKind uint8

const (
	// actFill registers a read fill of a line the frozen directory held
	// uncached or shared.
	actFill actKind = iota
	// actFillFromOwner registers a read fill that found the frozen
	// directory exclusive at a remote owner: replay downgrades the owner
	// and refreshes the filler from barrier-final memory.
	actFillFromOwner
	// actClaim registers an ownership claim (shared-hit upgrade or
	// write-miss fill-exclusive): replay sweeps all other copies.
	actClaim
	// actEvict clears the evicting processor's presence bit.
	actEvict
)

// action is one deferred directory mutation.
type action struct {
	kind actKind
	tag  int64
	addr prog.Word // the referenced word (claims classify victims by it)
}

// System is the full-map directory memory system.
type System struct {
	*memsys.Core
	// caches and trackers are built lazily on a processor's first
	// reference (procState): a large-P run where most processors stay
	// idle pays nothing for them. The slices themselves are sized to
	// Procs at construction, so concurrent first-touches from distinct
	// host-parallel workers write distinct elements.
	caches   []*cache.Cache
	trackers []*cache.Tracker
	dir      []entry // one per memory line; frozen mid-epoch
	// Multi-word presence backing for P > 64 (nil on the narrow path):
	// wps words per line, sliced per entry by pres(). pend/pendMark/
	// touched carry the replay prepass (see buildPend).
	wide     []uint64
	wps      int
	pend     []uint64
	pendMark []bool
	touched  []int64
	logs     [][]action // per-processor deferred mutations
}

// logsPool recycles the per-processor action-log slices across runs so
// their grown capacity is reused instead of reallocated (systems are
// built per simulated run; see memsys.Releaser).
var logsPool sync.Pool

// New builds an HW directory system.
func New(cfg machine.Config, memWords int64) *System {
	s := &System{
		Core: memsys.NewCore(cfg, memWords),
	}
	s.EnableAlwaysBuffered()
	s.dir = make([]entry, s.Memory.Size()/int64(cfg.LineWords))
	if cfg.Procs > 64 || forceWide {
		lines := int64(len(s.dir))
		s.wps = setWords(cfg.Procs)
		s.wide = make([]uint64, lines*int64(s.wps))
		s.pend = make([]uint64, lines*int64(s.wps))
		s.pendMark = make([]bool, lines)
	}
	s.caches = make([]*cache.Cache, cfg.Procs)
	s.trackers = make([]*cache.Tracker, cfg.Procs)
	if v := logsPool.Get(); v != nil {
		if ls, ok := v.([][]action); ok && len(ls) >= cfg.Procs {
			s.logs = ls[:cfg.Procs]
			for p := range s.logs {
				s.logs[p] = s.logs[p][:0]
			}
		}
	}
	if s.logs == nil {
		s.logs = make([][]action, cfg.Procs)
	}
	return s
}

// Name implements memsys.System.
func (s *System) Name() string { return "HW" }

// procState returns p's cache and tracker, building them on first use.
// Safe under host parallelism: each processor is owned by exactly one
// worker, so concurrent first-touches write distinct slice elements.
func (s *System) procState(p int) (*cache.Cache, *cache.Tracker) {
	if cc := s.caches[p]; cc != nil {
		return cc, s.trackers[p]
	}
	cc := cache.New(s.Cfg.CacheWords, s.Cfg.LineWords, s.Cfg.Assoc)
	tr := cache.NewTracker(s.Memory.Size())
	s.caches[p], s.trackers[p] = cc, tr
	return cc, tr
}

// HostShardable implements memsys.Sharded: with the directory frozen
// mid-epoch, references touch only per-processor state plus the lane,
// and all cross-processor mutations replay at the barrier.
func (s *System) HostShardable() bool { return true }

// FlushEpoch implements memsys.Buffered: the lanes drain first so the
// replay (which refreshes surviving claimant/filler copies and charges
// dirty write-backs) reads barrier-final memory.
func (s *System) FlushEpoch() {
	s.FlushEpochLanes()
	s.replayEpoch()
}

// ReleaseCaches implements memsys.Releaser. The fields are nilled so any
// use after release fails loudly instead of corrupting a pooled cache.
func (s *System) ReleaseCaches() {
	for p, cc := range s.caches {
		if cc == nil {
			continue
		}
		cache.Release(cc)
		cache.ReleaseTracker(s.trackers[p])
	}
	s.caches, s.trackers = nil, nil
	for p := range s.logs {
		s.logs[p] = s.logs[p][:0]
	}
	logsPool.Put(s.logs)
	s.logs = nil
	s.ReleaseLanes()
}

// Read implements memsys.System. The compiler marking is ignored: the
// hardware enforces coherence by itself.
func (s *System) Read(p int, addr prog.Word, kind memsys.ReadKind, window int) (float64, int64) {
	ln := s.LaneFor(p)
	ln.St.Reads++
	cc, tr := s.procState(p)

	if line, w, ok := cc.Lookup(addr); ok {
		ln.St.ReadHits++
		line.Used[w] = true
		cc.Touch(line)
		ln.CheckFresh(addr, line.Vals[w], p, "hw read hit")
		return line.Vals[w], s.Cfg.HitCycles
	}

	ln.St.ReadMisses[s.ClassifyMissLane(ln, tr, addr)]++
	tag, _ := cc.Split(addr)
	e := &s.dir[tag] // frozen: read-only until the barrier replay

	var extra int64
	act := actFill
	if e.state == dirExclusive && int(e.owner) != p {
		// Remote possibly-dirty copy: the request is forwarded from the
		// home node to the owner, and the data comes back from the owner.
		// The downgrade itself replays at the barrier.
		owner := int(e.owner)
		home := s.HomeOf(addr)
		extra = s.Netw.DelayBetween(home, owner, 1) + s.Netw.DelayBetween(owner, p, s.Cfg.LineWords)
		ln.St.CoherenceTrafficWords += int64(s.Cfg.LineWords) + 2
		ln.St.CoherenceMsgs++
		ln.Inject(int64(s.Cfg.LineWords) + 2)
		act = actFillFromOwner
	}

	nl, nw := s.fillLocal(p, ln, addr, false)
	s.logs[p] = append(s.logs[p], action{kind: act, tag: tag, addr: addr})
	ln.St.ReadTrafficWords += int64(s.Cfg.LineWords)
	ln.Inject(int64(s.Cfg.LineWords) + 1)
	lat := s.LineMissLatencyFor(p, addr) + extra
	ln.St.MissLatencySum += lat
	return nl.Vals[nw], lat
}

// Write implements memsys.System: invalidation-based MSI with the
// directory transfer deferred to the barrier. The processor does not
// stall (weak consistency); all costs are traffic-side.
func (s *System) Write(p int, addr prog.Word, val float64, crit bool) int64 {
	ln := s.LaneFor(p)
	cc, _ := s.procState(p)
	tag, _ := cc.Split(addr)
	e := &s.dir[tag]

	if crit {
		return s.writeCritical(p, ln, e, tag, addr, val)
	}
	ln.St.Writes++

	if line, w, ok := cc.Lookup(addr); ok {
		ln.St.WriteHits++
		ln.Write(addr, val, p, s.Epoch)
		if line.State == cache.Exclusive {
			line.Vals[w] = val
			line.Dirty = true
			line.Used[w] = true
			cc.Touch(line)
			return 0
		}
		// Shared hit: upgrade the local copy eagerly (later same-epoch
		// stores hit exclusive); the sharer sweep replays at the barrier.
		line.State = cache.Exclusive
		line.Vals[w] = val
		line.Dirty = true
		line.Used[w] = true
		cc.Touch(line)
		s.logs[p] = append(s.logs[p], action{kind: actClaim, tag: tag, addr: addr})
		ln.St.CoherenceMsgs++ // upgrade request
		ln.St.CoherenceTrafficWords++
		ln.Inject(1)
		if s.Cfg.SeqConsistency {
			// the upgrade must be acknowledged before the write retires
			return s.Netw.RoundTripBetween(p, s.HomeOf(addr), 1)
		}
		return 0
	}

	// Write miss: fetch the line with ownership. Classify from p's tracker
	// history before the fill below records the new residency (sharer
	// invalidations only touch other processors' trackers).
	ln.St.WriteMisses[s.ClassifyMissLane(ln, s.trackers[p], addr)]++
	if e.state == dirExclusive && int(e.owner) != p {
		// The frozen directory shows a remote owner: charge the ownership
		// transfer; the owner's invalidation replays at the barrier.
		ln.St.CoherenceTrafficWords += int64(s.Cfg.LineWords) + 2
		ln.St.CoherenceMsgs++
		ln.Inject(int64(s.Cfg.LineWords) + 2)
	}
	ln.Write(addr, val, p, s.Epoch)
	nl, nw := s.fillLocal(p, ln, addr, true)
	nl.Vals[nw] = val
	nl.Dirty = true
	s.logs[p] = append(s.logs[p], action{kind: actClaim, tag: tag, addr: addr})
	ln.St.ReadTrafficWords += int64(s.Cfg.LineWords) // ownership fetch
	ln.Inject(int64(s.Cfg.LineWords) + 1)
	if s.Cfg.SeqConsistency {
		// the ownership fetch must complete before the write retires
		lat := s.LineMissLatencyFor(p, addr)
		ln.St.WriteMissLatencySum += lat
		return lat
	}
	return 0
}

// writeCritical applies a critical-section store eagerly: epochs holding
// critical/ordered sections run sequentially in every execution mode, so
// the store writes through to memory (withdrawing any buffered same-epoch
// entry) and every cached copy of the line — the writer's own included —
// is invalidated on the spot. Same-epoch bypass readers then miss and
// fetch the fresh value from memory.
func (s *System) writeCritical(p int, ln *memsys.Lane, e *entry, tag int64, addr prog.Word, val float64) int64 {
	ln.St.Writes++
	ln.St.WriteMisses[stats.MissBypass]++
	ln.WriteThrough(addr, val, p, s.Epoch)

	lw := s.Cfg.LineWords
	base := prog.Word(tag * int64(lw))
	woff := int(int64(addr) % int64(lw))
	for q := 0; q < s.Cfg.Procs; q++ {
		cc, tr := s.caches[q], s.trackers[q]
		if cc == nil { // never referenced anything: no copy to invalidate
			continue
		}
		line, w, ok := cc.Lookup(base + prog.Word(woff))
		if !ok || line.Tag != tag {
			continue
		}
		if q != p {
			reason := cache.LostInvalFalse
			if line.Used[w] {
				reason = cache.LostInvalTrue
			}
			if s.Probe != nil {
				class := stats.MissFalseSharing
				if reason == cache.LostInvalTrue {
					class = stats.MissTrueSharing
				}
				s.Probe.Invalidation(p, q, addr, class)
			}
			noteLineLost(tr, line, base, lw, reason)
		} else {
			noteLineLost(tr, line, base, lw, cache.LostInvalTrue)
		}
		if line.Dirty {
			ln.St.WriteTrafficWords += int64(lw)
			ln.Inject(int64(lw))
		}
		line.InvalidateLine()
		ln.St.Invalidations++
		ln.St.CoherenceMsgs++
		ln.St.CoherenceTrafficWords += 2
		ln.Inject(2)
	}
	e.state, e.owner = dirUncached, 0
	s.presReset(e, tag)
	ln.St.WriteTrafficWords++
	ln.Inject(1)
	return 0
}

// noteLineLost records the loss of every valid word of a line.
func noteLineLost(tr *cache.Tracker, line *cache.Line, base prog.Word, lw int, reason cache.LostReason) {
	for i := 0; i < lw; i++ {
		if line.TT[i] != cache.TTInvalid {
			tr.NoteLost(base+prog.Word(i), reason, line.TT[i])
		}
	}
}

// fillLocal installs the line containing addr in p's cache, evicting with
// local bookkeeping only (the directory learns at the barrier replay).
func (s *System) fillLocal(p int, ln *memsys.Lane, addr prog.Word, exclusive bool) (*cache.Line, int) {
	cc, tr := s.caches[p], s.trackers[p]
	v := cc.Victim(addr)
	if v.State != cache.Invalid {
		if v.Dirty {
			ln.St.WriteTrafficWords += int64(s.Cfg.LineWords)
			ln.Inject(int64(s.Cfg.LineWords))
		}
		s.logs[p] = append(s.logs[p], action{kind: actEvict, tag: v.Tag})
		base := prog.Word(v.Tag * int64(cc.LineWords()))
		noteLineLost(tr, v, base, cc.LineWords(), cache.LostReplaced)
		v.InvalidateLine()
	}
	nl, nw := s.FillLane(ln, cc, tr, addr, s.Epoch, s.Epoch)
	if exclusive {
		nl.State = cache.Exclusive
	}
	return nl, nw
}

// replayEpoch applies the deferred directory mutations in (processor,
// sequence) order. It runs single-threaded at the barrier, after the
// lanes drained, so stats and traffic go straight to the shared sinks
// and value refreshes read barrier-final memory.
func (s *System) replayEpoch() {
	if s.wide != nil {
		s.buildPend()
	}
	for p := range s.logs {
		log := s.logs[p]
		for i := range log {
			a := &log[i]
			e := &s.dir[a.tag]
			switch a.kind {
			case actFill, actFillFromOwner:
				s.replayFill(p, e, a, a.kind == actFillFromOwner)
			case actClaim:
				s.replayClaim(p, e, a)
			case actEvict:
				s.clearPresence(e, a.tag, p)
			}
		}
		s.logs[p] = log[:0]
	}
	if s.wide != nil {
		s.clearPend()
	}
}

// buildPend marks, for every line a fill or claim touched this epoch,
// the processors that logged one. A processor can hold a copy of a line
// at the barrier only if its presence bit was set when the directory
// froze or it filled the line this epoch — and every fill is logged —
// so replayClaim's sweep on the wide path visits presence ∪ pend
// instead of all P processors. Visiting a candidate without a copy is
// harmless (the sweep re-checks the cache), so the prepass may safely
// over-approximate across the whole epoch's logs.
func (s *System) buildPend() {
	for p := range s.logs {
		log := s.logs[p]
		for i := range log {
			a := &log[i]
			if a.kind == actEvict {
				continue
			}
			if !s.pendMark[a.tag] {
				s.pendMark[a.tag] = true
				s.touched = append(s.touched, a.tag)
			}
			s.pendSet(a.tag).Add(p)
		}
	}
}

// clearPend resets the candidate sets the prepass marked, touching only
// the lines this epoch used.
func (s *System) clearPend() {
	for _, tag := range s.touched {
		s.pendSet(tag).Reset()
		s.pendMark[tag] = false
	}
	s.touched = s.touched[:0]
}

// replayFill registers a read fill: the frozen-exclusive owner (if the
// fill was forwarded) downgrades to shared, and the filler's presence bit
// is set only if its copy still exists at the barrier — a copy filled and
// evicted within the epoch leaves no trace.
func (s *System) replayFill(p int, e *entry, a *action, fromOwner bool) {
	if fromOwner && e.state == dirExclusive {
		s.downgradeOwner(int(e.owner), a.tag)
		e.state = dirShared
		e.owner = 0
	}
	cc := s.caches[p]
	base := prog.Word(a.tag * int64(cc.LineWords()))
	line, _, ok := cc.Lookup(base)
	if !ok || line.Tag != a.tag {
		s.clearPresence(e, a.tag, p)
		return
	}
	if fromOwner {
		// The mid-epoch fill read through the lane, which cannot see the
		// owner's buffered same-epoch stores; memory is final now.
		s.refreshFromMemory(line, cc)
	}
	s.reservePointer(e, p, a.tag, a.addr)
	s.presAdd(e, a.tag, p)
	if e.state == dirUncached {
		e.state = dirShared
	}
}

// replayClaim performs the deferred ownership transfer: sweep every other
// processor's cache for surviving copies of the line (presence bits may
// lag same-epoch fills, so the caches are authoritative), then register
// the claimant against its own barrier-time cache state.
func (s *System) replayClaim(p int, e *entry, a *action) {
	lw := s.Cfg.LineWords
	base := prog.Word(a.tag * int64(lw))
	woff := int(int64(a.addr) % int64(lw))
	if s.wide == nil {
		for q := 0; q < s.Cfg.Procs; q++ {
			if q != p {
				s.claimVictim(p, q, e, a, base, lw, woff)
			}
		}
	} else {
		// Wide path: only presence members and this epoch's fill/claim
		// candidates (see buildPend) can hold a copy; sweep the union in
		// the same ascending processor order as the narrow loop.
		pres, pend := s.pres(a.tag), s.pendSet(a.tag)
		for i := range pres {
			w := pres[i] | pend[i]
			if i == p>>6 {
				w &^= 1 << uint(p&63)
			}
			for w != 0 {
				q := i<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				s.claimVictim(p, q, e, a, base, lw, woff)
			}
		}
	}
	// After the sweep only the claimant can hold a copy. Register by what
	// its cache holds NOW: the claimed line may itself have been evicted
	// (and possibly re-filled shared by a later read) within the epoch.
	cc := s.caches[p]
	line, _, ok := cc.Lookup(base)
	switch {
	case ok && line.Tag == a.tag && line.State == cache.Exclusive:
		s.refreshFromMemory(line, cc)
		e.state, e.owner = dirExclusive, int16(p)
		s.presSetOnly(e, a.tag, p)
	case ok && line.Tag == a.tag:
		s.refreshFromMemory(line, cc)
		e.state, e.owner = dirShared, 0
		s.presSetOnly(e, a.tag, p)
	default:
		e.state, e.owner = dirUncached, 0
		s.presReset(e, a.tag)
	}
}

// claimVictim processes one processor q under p's deferred claim: if q
// still holds a copy of the line, it is classified (true/false sharing
// by the written word's used bit), invalidated, and charged; either way
// q's presence bit ends clear.
func (s *System) claimVictim(p, q int, e *entry, a *action, base prog.Word, lw, woff int) {
	cc, tr := s.caches[q], s.trackers[q]
	if cc == nil { // never referenced anything: no copy, no bit
		return
	}
	line, w, ok := cc.Lookup(base + prog.Word(woff))
	if !ok || line.Tag != a.tag {
		s.presRemove(e, a.tag, q)
		return
	}
	reason := cache.LostInvalFalse
	if line.Used[w] {
		reason = cache.LostInvalTrue
	}
	if s.Probe != nil {
		class := stats.MissFalseSharing
		if reason == cache.LostInvalTrue {
			class = stats.MissTrueSharing
		}
		s.Probe.Invalidation(p, q, a.addr, class)
	}
	noteLineLost(tr, line, base, lw, reason)
	if line.Dirty {
		s.St.WriteTrafficWords += int64(lw)
		s.Netw.Inject(int64(lw))
	}
	line.InvalidateLine()
	s.presRemove(e, a.tag, q)
	s.St.Invalidations++
	s.St.CoherenceMsgs++
	s.St.CoherenceTrafficWords += 2 // invalidate + ack
	s.Netw.Inject(2)
}

// clearPresence drops p's presence bit and normalizes an emptied entry.
func (s *System) clearPresence(e *entry, tag int64, p int) {
	s.presRemove(e, tag, p)
	if s.presEmpty(e, tag) {
		e.state = dirUncached
		e.owner = 0
	}
}

// refreshFromMemory overwrites a line's valid words with barrier-final
// memory: the copies replay leaves alive (claimants, forwarded fillers)
// may hold words other processors wrote this epoch through their lanes.
func (s *System) refreshFromMemory(line *cache.Line, cc *cache.Cache) {
	base := prog.Word(line.Tag * int64(cc.LineWords()))
	for i := 0; i < cc.LineWords(); i++ {
		if line.TT[i] != cache.TTInvalid {
			line.Vals[i] = s.Memory.Read(base + prog.Word(i))
		}
	}
}

// reservePointer enforces the limited-pointer directory variant
// (DIR_NB(i)): when adding sharer p would exceed the pointer budget, an
// existing sharer is invalidated to free a pointer. Such invalidations
// are a directory-capacity artifact and are recorded as replacements at
// the victim. Runs at barrier replay (registration time), so its charges
// go to the shared sinks.
func (s *System) reservePointer(e *entry, p int, tag int64, addr prog.Word) {
	limit := s.Cfg.DirPointers
	if limit <= 0 || s.presHas(e, tag, p) {
		return
	}
	for s.presCount(e, tag) >= limit {
		victim := s.presFirstOther(e, tag, p)
		if victim < 0 {
			return
		}
		cc, tr := s.caches[victim], s.trackers[victim]
		if cc != nil {
			base := prog.Word(tag * int64(cc.LineWords()))
			if line, _, ok := cc.Lookup(base); ok && line.Tag == tag {
				noteLineLost(tr, line, base, cc.LineWords(), cache.LostReplaced)
				if line.Dirty {
					s.St.WriteTrafficWords += int64(s.Cfg.LineWords)
					s.Netw.Inject(int64(s.Cfg.LineWords))
				}
				line.InvalidateLine()
			}
		}
		if s.Probe != nil {
			s.Probe.Invalidation(p, victim, addr, stats.MissReplace)
		}
		s.presRemove(e, tag, victim)
		s.St.PointerEvictions++
		s.St.Invalidations++
		s.St.CoherenceMsgs++
		s.St.CoherenceTrafficWords += 2
		s.Netw.Inject(2)
	}
}

// downgradeOwner makes the exclusive owner's copy clean/shared
// (write-back of dirty data is charged by the caller).
func (s *System) downgradeOwner(owner int, tag int64) {
	cc := s.caches[owner]
	if cc == nil { // an owner without a cache cannot exist; be defensive
		return
	}
	base := prog.Word(tag * int64(cc.LineWords()))
	if line, _, ok := cc.Lookup(base); ok && line.Tag == tag {
		line.State = cache.Shared
		line.Dirty = false
	}
}

// EpochBoundary implements memsys.System: write-back caches keep their
// contents across epochs (the directory scheme's key advantage).
func (s *System) EpochBoundary(epoch int64) int64 {
	s.Epoch = epoch
	s.SetLaneEpoch(epoch)
	return 0
}

// StreamCapable implements memsys.Streamer.
func (s *System) StreamCapable() bool { return true }

// InitReadCursor implements memsys.Streamer: an HW read hit is any valid
// word (MSI keeps whole lines valid), so the cut is the minimum timetag;
// the compiler marking is ignored as in the scalar path.
func (s *System) InitReadCursor(c *memsys.ReadCursor, p int, kind memsys.ReadKind, window int, addr0 prog.Word) {
	ln := s.LaneFor(p)
	cc, _ := s.procState(p)
	*c = memsys.ReadCursor{
		Mode: memsys.StreamCached, Sys: s, Core: s.Core, Ln: ln, CC: cc,
		Proc: p, Kind: kind, Window: window, Cut: math.MinInt64,
		Epoch: s.Epoch, HitCycles: s.Cfg.HitCycles, HitCtx: "hw read hit",
		Fresh: ln.FreshWords(),
	}
}

// InitWriteCursor implements memsys.Streamer: the exclusive-hit store is
// inlined (silent under the frozen directory); shared hits and misses
// take the scalar path, which logs the deferred claim.
func (s *System) InitWriteCursor(c *memsys.WriteCursor, p int, addr0 prog.Word) {
	cc, _ := s.procState(p)
	*c = memsys.WriteCursor{
		Mode: memsys.StreamHW, Sys: s, Core: s.Core, Ln: s.LaneFor(p),
		CC: cc, Proc: p, Epoch: s.Epoch,
	}
}

// CheckInvariants verifies the protocol's global invariants: at most one
// exclusive owner per line, presence bits consistent with cache contents,
// and no dirty copy without exclusive state. Valid only at epoch
// barriers (after FlushEpoch); tests call it after runs.
func (s *System) CheckInvariants() error {
	// Two passes keep the check O(cached lines + presence bits) instead of
	// O(lines × P), which matters at P in the thousands. The first pass
	// walks every cache and accumulates per-line holder counts; the second
	// walks the directory and reconciles them against the presence sets.
	holders := make([]int32, len(s.dir))
	excl := make([]int32, len(s.dir))
	for i := range excl {
		excl[i] = -1
	}
	for p := 0; p < s.Cfg.Procs; p++ {
		cc := s.caches[p]
		if cc == nil {
			continue
		}
		var err error
		cc.ForEachValidLine(func(line *cache.Line) {
			if err != nil {
				return
			}
			tag := line.Tag
			e := &s.dir[tag]
			if !s.presHas(e, tag, p) {
				err = fmt.Errorf("directory: line %d: P%d holds a copy without a presence bit", tag, p)
				return
			}
			holders[tag]++
			if line.State == cache.Exclusive {
				excl[tag] = int32(p)
			}
			if line.Dirty && line.State != cache.Exclusive {
				err = fmt.Errorf("directory: line %d: dirty non-exclusive copy at P%d", tag, p)
			}
		})
		if err != nil {
			return err
		}
	}
	for tag := range s.dir {
		e := &s.dir[tag]
		// Every holder has its bit (pass 1), so a count mismatch means a
		// presence bit without a copy; find the member to name it.
		if n := s.presCount(e, int64(tag)); n != int(holders[tag]) {
			bad := s.findStalePresence(e, int64(tag))
			return fmt.Errorf("directory: line %d: presence bit set for P%d without a copy", tag, bad)
		}
		if excl[tag] >= 0 && holders[tag] > 1 {
			return fmt.Errorf("directory: line %d: exclusive copy at P%d alongside %d holders",
				tag, excl[tag], holders[tag])
		}
		if e.state == dirExclusive && excl[tag] != int32(e.owner) {
			return fmt.Errorf("directory: line %d: owner %d has no exclusive copy", tag, e.owner)
		}
	}
	return nil
}

// findStalePresence returns the lowest presence member that holds no
// copy of the line, or -1 if all members check out.
func (s *System) findStalePresence(e *entry, tag int64) int {
	bad := -1
	check := func(q int) {
		if bad >= 0 {
			return
		}
		cc := s.caches[q]
		if cc == nil {
			bad = q
			return
		}
		base := prog.Word(tag * int64(cc.LineWords()))
		if line, _, ok := cc.Lookup(base); !ok || line.Tag != tag {
			bad = q
		}
	}
	if s.wide == nil {
		for q := 0; q < s.Cfg.Procs; q++ {
			if e.presence&(1<<uint(q)) != 0 {
				check(q)
			}
		}
		return bad
	}
	s.pres(tag).ForEach(check)
	return bad
}
