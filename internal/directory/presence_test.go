package directory

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
)

// refSet is the oracle: a plain map of members.
type refSet map[int]bool

func (r refSet) count() int { return len(r) }

func (r refSet) firstOther(p, procs int) int {
	for q := 0; q < procs; q++ {
		if q != p && r[q] {
			return q
		}
	}
	return -1
}

// TestSetAgainstReference drives the multi-word presence set and a
// map-based reference model through the same randomized operation
// stream at widths spanning the narrow/wide boundary, checking every
// observable (membership, popcount, emptiness, ascending iteration,
// and the limited-pointer eviction scan) after each step.
func TestSetAgainstReference(t *testing.T) {
	for _, procs := range []int{16, 64, 65, 1024} {
		procs := procs
		t.Run(fmtProcs(procs), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(procs)))
			s := make(Set, setWords(procs))
			ref := refSet{}
			for step := 0; step < 4000; step++ {
				p := rng.Intn(procs)
				switch rng.Intn(6) {
				case 0, 1: // add dominates, like fills do
					s.Add(p)
					ref[p] = true
				case 2:
					s.Remove(p)
					delete(ref, p)
				case 3: // eviction: clear everything (writeCritical, claims)
					if rng.Intn(8) == 0 {
						s.Reset()
						ref = refSet{}
					}
				case 4: // claim registration: sole member
					if rng.Intn(8) == 0 {
						s.Reset()
						s.Add(p)
						ref = refSet{p: true}
					}
				case 5: // pointer eviction: drop the first other member
					if v := s.FirstOther(p); v >= 0 {
						s.Remove(v)
						delete(ref, v)
					}
				}
				if got, want := s.Has(p), ref[p]; got != want {
					t.Fatalf("step %d: Has(%d) = %v, want %v", step, p, got, want)
				}
				if got, want := s.Count(), ref.count(); got != want {
					t.Fatalf("step %d: Count = %d, want %d", step, got, want)
				}
				if got, want := s.Empty(), ref.count() == 0; got != want {
					t.Fatalf("step %d: Empty = %v, want %v", step, got, want)
				}
				if got, want := s.FirstOther(p), ref.firstOther(p, procs); got != want {
					t.Fatalf("step %d: FirstOther(%d) = %d, want %d", step, p, got, want)
				}
				if step%97 == 0 { // iteration order: ascending, complete
					var got []int
					s.ForEach(func(q int) { got = append(got, q) })
					if len(got) != ref.count() {
						t.Fatalf("step %d: ForEach visited %d members, want %d", step, len(got), ref.count())
					}
					for i, q := range got {
						if !ref[q] {
							t.Fatalf("step %d: ForEach visited non-member %d", step, q)
						}
						if i > 0 && got[i-1] >= q {
							t.Fatalf("step %d: ForEach out of order: %v", step, got)
						}
					}
				}
			}
		})
	}
}

func fmtProcs(p int) string {
	const digits = "0123456789"
	if p == 0 {
		return "P0"
	}
	var buf [8]byte
	i := len(buf)
	for p > 0 {
		i--
		buf[i] = digits[p%10]
		p /= 10
	}
	return "P" + string(buf[i:])
}

func cfgForTest(procs int) machine.Config {
	c := machine.Default(machine.SchemeHW)
	c.Procs = procs
	c.CacheWords = 64
	c.LineWords = 4
	return c
}

// TestForceWidePresenceHook exercises the test hook itself: flipping it
// makes New build the wide backing even at small P, and restoring it
// returns to the inline word.
func TestForceWidePresenceHook(t *testing.T) {
	prev := ForceWidePresence(true)
	defer ForceWidePresence(prev)
	s := New(cfgForTest(8), 1024)
	defer s.ReleaseCaches()
	if s.wide == nil {
		t.Fatal("forceWide on: New built the narrow path")
	}
	ForceWidePresence(false)
	s2 := New(cfgForTest(8), 1024)
	defer s2.ReleaseCaches()
	if s2.wide != nil {
		t.Fatal("forceWide off: New built the wide path at P=8")
	}
	if s3 := New(cfgForTest(65), 1024); s3.wide == nil {
		t.Fatal("P=65: New must take the wide path")
	} else {
		s3.ReleaseCaches()
	}
}
