package directory

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/memsys"
)

func limitedCfg(ptrs int) machine.Config {
	c := cfg()
	c.DirPointers = ptrs
	return c
}

func TestPointerEvictionOnOverflow(t *testing.T) {
	s := newSys(t, limitedCfg(2))
	s.EpochBoundary(1)
	// Three readers of one line with a 2-pointer directory: registering
	// the third (at its barrier) must evict one existing sharer.
	s.Read(0, 8, memsys.ReadRegular, 0)
	s.Read(1, 8, memsys.ReadRegular, 0)
	barrier(t, s, 2)
	if s.St.PointerEvictions != 0 {
		t.Fatalf("premature evictions: %d", s.St.PointerEvictions)
	}
	s.Read(2, 8, memsys.ReadRegular, 0)
	barrier(t, s, 3)
	if s.St.PointerEvictions != 1 {
		t.Fatalf("pointer evictions = %d, want 1", s.St.PointerEvictions)
	}
	// The evicted sharer re-reads: correct value, another eviction.
	v, _ := s.Read(0, 8, memsys.ReadRegular, 0)
	if v != 0 {
		t.Fatalf("value = %v", v)
	}
	barrier(t, s, 4)
	if s.St.PointerEvictions != 2 {
		t.Fatalf("pointer evictions = %d, want 2", s.St.PointerEvictions)
	}
}

func TestFullMapNeverEvictsPointers(t *testing.T) {
	s := newSys(t, limitedCfg(0))
	s.EpochBoundary(1)
	for p := 0; p < s.Cfg.Procs; p++ {
		s.Read(p, 8, memsys.ReadRegular, 0)
	}
	barrier(t, s, 2)
	if s.St.PointerEvictions != 0 {
		t.Fatalf("full map evicted %d pointers", s.St.PointerEvictions)
	}
}

func TestLimitedPointerWriteStillCoherent(t *testing.T) {
	s := newSys(t, limitedCfg(1))
	s.EpochBoundary(1)
	s.Read(0, 16, memsys.ReadRegular, 0)
	barrier(t, s, 2)
	s.Read(1, 16, memsys.ReadRegular, 0) // registration evicts P0's pointer+copy
	barrier(t, s, 3)
	s.Write(2, 16, 5.0, false) // sweep invalidates the tracked sharer (P1)
	barrier(t, s, 4)
	for p := 0; p < 3; p++ {
		if v, _ := s.Read(p, 16, memsys.ReadRegular, 0); v != 5.0 {
			t.Fatalf("P%d read %v, want 5.0", p, v)
		}
	}
	barrier(t, s, 5)
}

func TestSeqConsistencyWriteStalls(t *testing.T) {
	c := cfg()
	c.SeqConsistency = true
	s := newSys(t, c)
	s.EpochBoundary(1)
	// write miss: must stall for the ownership fetch
	if stall := s.Write(0, 24, 1.0, false); stall == 0 {
		t.Fatal("SC write miss must stall")
	}
	barrier(t, s, 2)
	// exclusive hit: silent
	if stall := s.Write(0, 24, 2.0, false); stall != 0 {
		t.Fatalf("SC exclusive write hit stalled %d", stall)
	}
	barrier(t, s, 3)
	s.Read(1, 24, memsys.ReadRegular, 0) // fetches a shared copy, downgrading P0
	barrier(t, s, 4)
	// shared upgrade: stall for the acknowledgement
	if stall := s.Write(1, 24, 3.0, false); stall == 0 {
		t.Fatal("SC upgrade must stall")
	}
	barrier(t, s, 5)
}

// Interface conformance.
var (
	_ memsys.System   = (*System)(nil)
	_ memsys.Sharded  = (*System)(nil)
	_ memsys.Buffered = (*System)(nil)
	_ memsys.Streamer = (*System)(nil)
	_ memsys.Releaser = (*System)(nil)
)
