package directory

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/memsys"
)

func limitedCfg(ptrs int) machine.Config {
	c := cfg()
	c.DirPointers = ptrs
	return c
}

func TestPointerEvictionOnOverflow(t *testing.T) {
	s := newSys(t, limitedCfg(2))
	s.EpochBoundary(1)
	// Three readers of one line with a 2-pointer directory: the third
	// fill must evict one existing sharer.
	s.Read(0, 8, memsys.ReadRegular, 0)
	s.Read(1, 8, memsys.ReadRegular, 0)
	if s.St.PointerEvictions != 0 {
		t.Fatalf("premature evictions: %d", s.St.PointerEvictions)
	}
	s.Read(2, 8, memsys.ReadRegular, 0)
	if s.St.PointerEvictions != 1 {
		t.Fatalf("pointer evictions = %d, want 1", s.St.PointerEvictions)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The evicted sharer re-reads: correct value, another eviction.
	v, _ := s.Read(0, 8, memsys.ReadRegular, 0)
	if v != 0 {
		t.Fatalf("value = %v", v)
	}
	if s.St.PointerEvictions != 2 {
		t.Fatalf("pointer evictions = %d, want 2", s.St.PointerEvictions)
	}
}

func TestFullMapNeverEvictsPointers(t *testing.T) {
	s := newSys(t, limitedCfg(0))
	s.EpochBoundary(1)
	for p := 0; p < s.Cfg.Procs; p++ {
		s.Read(p, 8, memsys.ReadRegular, 0)
	}
	if s.St.PointerEvictions != 0 {
		t.Fatalf("full map evicted %d pointers", s.St.PointerEvictions)
	}
}

func TestLimitedPointerWriteStillCoherent(t *testing.T) {
	s := newSys(t, limitedCfg(1))
	s.EpochBoundary(1)
	s.Read(0, 16, memsys.ReadRegular, 0)
	s.Read(1, 16, memsys.ReadRegular, 0) // evicts P0's pointer+copy
	s.Write(2, 16, 5.0, false)           // invalidates the tracked sharer (P1)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if v, _ := s.Read(p, 16, memsys.ReadRegular, 0); v != 5.0 {
			t.Fatalf("P%d read %v, want 5.0", p, v)
		}
	}
}

func TestSeqConsistencyWriteStalls(t *testing.T) {
	c := cfg()
	c.SeqConsistency = true
	s := newSys(t, c)
	s.EpochBoundary(1)
	// write miss: must stall for the ownership fetch
	if stall := s.Write(0, 24, 1.0, false); stall == 0 {
		t.Fatal("SC write miss must stall")
	}
	// exclusive hit: silent
	if stall := s.Write(0, 24, 2.0, false); stall != 0 {
		t.Fatalf("SC exclusive write hit stalled %d", stall)
	}
	// shared upgrade: stall for the acknowledgement
	s.Read(1, 24, memsys.ReadRegular, 0) // downgrade owner? (read miss fetches shared copy)
	if stall := s.Write(1, 24, 3.0, false); stall == 0 {
		t.Fatal("SC upgrade must stall")
	}
}

// Interface conformance.
var _ memsys.System = (*System)(nil)
