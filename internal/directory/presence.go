package directory

import "math/bits"

// The full-map presence representation is two-tier. Machines with P <= 64
// keep the historical inline uint64 in each directory entry: the hot
// paths are branch-for-branch the ones the bit-identical equivalence
// suites were written against, and a directory entry stays a single
// cache-line-friendly struct. Above 64 processors the entries' inline
// words go unused and presence lives in one flat []uint64 backing array,
// setWords(P) words per line, sliced per entry on demand. All protocol
// code goes through the System pres* helpers, which branch on the mode
// once; Set carries the multi-word operations.

// forceWide makes New take the multi-word presence path even at P <= 64.
// Tests flip it to prove the two representations produce bit-identical
// statistics on the same configuration.
var forceWide bool

// ForceWidePresence is a test hook: it turns the multi-word presence
// path on or off for subsequently constructed Systems and returns the
// previous setting. Not safe to flip while systems are being built
// concurrently; tests that use it must not run in parallel with other
// system constructions.
func ForceWidePresence(on bool) (prev bool) {
	prev, forceWide = forceWide, on
	return prev
}

// setWords returns the number of 64-bit words a presence set over procs
// processors occupies.
func setWords(procs int) int { return (procs + 63) / 64 }

// Set is a multi-word presence bitset over processor IDs. It is a view
// into the System's flat backing array, not an owning allocation.
type Set []uint64

// Add sets p's bit.
func (s Set) Add(p int) { s[p>>6] |= 1 << uint(p&63) }

// Remove clears p's bit.
func (s Set) Remove(p int) { s[p>>6] &^= 1 << uint(p&63) }

// Has reports whether p's bit is set.
func (s Set) Has(p int) bool { return s[p>>6]&(1<<uint(p&63)) != 0 }

// Count returns the number of members.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Reset clears every member.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// FirstOther returns the lowest member other than p, or -1 if none. The
// limited-pointer eviction scan uses it to pick the same victim the
// ascending 0..P-1 sweep would.
func (s Set) FirstOther(p int) int {
	for i, w := range s {
		for w != 0 {
			q := i<<6 + bits.TrailingZeros64(w)
			if q != p {
				return q
			}
			w &= w - 1
		}
	}
	return -1
}

// ForEach visits the members in ascending order.
func (s Set) ForEach(fn func(p int)) {
	for i, w := range s {
		for w != 0 {
			fn(i<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// wideOn reports whether this System uses the multi-word presence path.
func (s *System) wideOn() bool { return s.wide != nil }

// pres returns the wide presence set for a line. Valid only when wideOn.
func (s *System) pres(tag int64) Set {
	w := int64(s.wps)
	return Set(s.wide[tag*w : (tag+1)*w])
}

// pendSet returns the per-epoch replay-candidate set for a line (procs
// that logged a fill or claim against it this epoch). Valid only when
// wideOn; maintained by replayEpoch's prepass.
func (s *System) pendSet(tag int64) Set {
	w := int64(s.wps)
	return Set(s.pend[tag*w : (tag+1)*w])
}

// The pres* helpers below are the only presence accessors the protocol
// code uses. On the narrow path they compile to the original single-word
// bit operations against entry.presence.

func (s *System) presAdd(e *entry, tag int64, p int) {
	if s.wide == nil {
		e.presence |= 1 << uint(p)
		return
	}
	s.pres(tag).Add(p)
}

func (s *System) presRemove(e *entry, tag int64, p int) {
	if s.wide == nil {
		e.presence &^= 1 << uint(p)
		return
	}
	s.pres(tag).Remove(p)
}

func (s *System) presHas(e *entry, tag int64, p int) bool {
	if s.wide == nil {
		return e.presence&(1<<uint(p)) != 0
	}
	return s.pres(tag).Has(p)
}

func (s *System) presCount(e *entry, tag int64) int {
	if s.wide == nil {
		return bits.OnesCount64(e.presence)
	}
	return s.pres(tag).Count()
}

func (s *System) presEmpty(e *entry, tag int64) bool {
	if s.wide == nil {
		return e.presence == 0
	}
	return s.pres(tag).Empty()
}

// presSetOnly makes p the sole member.
func (s *System) presSetOnly(e *entry, tag int64, p int) {
	if s.wide == nil {
		e.presence = 1 << uint(p)
		return
	}
	set := s.pres(tag)
	set.Reset()
	set.Add(p)
}

// presReset empties the set.
func (s *System) presReset(e *entry, tag int64) {
	if s.wide == nil {
		e.presence = 0
		return
	}
	s.pres(tag).Reset()
}

// presFirstOther returns the lowest member other than p, or -1.
func (s *System) presFirstOther(e *entry, tag int64, p int) int {
	if s.wide == nil {
		for q := 0; q < s.Cfg.Procs; q++ {
			if q != p && e.presence&(1<<uint(q)) != 0 {
				return q
			}
		}
		return -1
	}
	return s.pres(tag).FirstOther(p)
}
