// Package core is the library's public entry point: it ties the compiler
// pipeline (parse → check → epoch flow graphs → section analysis →
// reference marking) to the machine model and the execution-driven
// simulator, and provides the scheme factory used by the benchmarks,
// examples, and command-line tools.
//
// Typical use:
//
//	c, err := core.Compile(src, core.DefaultCompileOptions())
//	cfg := machine.Default(machine.SchemeTPI)
//	st, err := core.Run(c, cfg)
//	fmt.Println(st)
package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"repro/internal/machine"
	"repro/internal/marking"
	"repro/internal/memsys"
	"repro/internal/pfl"
	"repro/internal/prog"
	"repro/internal/sections"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/swschemes"
	"repro/internal/tardis"
	"repro/internal/tpi"
	"repro/internal/vc"

	hwdir "repro/internal/directory"
)

// CompileOptions configures the compiler pipeline.
type CompileOptions struct {
	// Interproc enables interprocedural section analysis and entry
	// freshness (on by default; the off state is the paper's ablation).
	Interproc bool
	// FirstReadReuse enables the intra-task reuse (first-read) analysis.
	FirstReadReuse bool
	// AlignWords is the array alignment in words (use the line size).
	AlignWords int64
	// PadScalars places every scalar on its own cache line instead of
	// packing them: the classic false-sharing mitigation (ablation E24).
	PadScalars bool
}

// DefaultCompileOptions enables all analyses with 4-word alignment.
func DefaultCompileOptions() CompileOptions {
	return CompileOptions{Interproc: true, FirstReadReuse: true, AlignWords: 4}
}

// Compiled is a fully analyzed, executable program.
//
// A Compiled is immutable after Compile returns: every field is written
// once by the pipeline and only read afterwards, and the lazily-lowered
// closure IR is guarded by a sync.Once. One Compiled may therefore be
// shared freely across concurrent Run*/RunObserved* calls — the contract
// the exper sweep executor and the svc compile cache depend on (see
// TestConcurrentRun).
type Compiled struct {
	Source   string
	AST      *pfl.Program
	Info     *pfl.Info
	Prog     *prog.Prog
	Analysis *sections.Analysis
	Marks    *marking.Result

	// Key is the content address of this compilation: hex
	// sha256(source, canonical CompileOptions), set by Compile. Equal
	// keys mean byte-equal source compiled under equivalent options, so
	// Key is a safe cache/dedup identity for the compile artifact.
	Key string

	lowerOnce sync.Once
	lowered   *sim.Program
	lowerErr  error
}

// CompileKey is the content address Compile assigns to (src, opts)
// without running the pipeline: cache lookups hash first and compile
// only on miss. Options are canonicalized (AlignWords <= 0 means 4, as
// Compile applies) so equivalent spellings collide.
func CompileKey(src string, opts CompileOptions) string {
	if opts.AlignWords <= 0 {
		opts.AlignWords = 4
	}
	h := sha256.New()
	fmt.Fprintf(h, "interproc=%t firstread=%t align=%d pad=%t\n%d\n",
		opts.Interproc, opts.FirstReadReuse, opts.AlignWords, opts.PadScalars, len(src))
	io.WriteString(h, src)
	return hex.EncodeToString(h.Sum(nil))
}

// Lowered returns the program's slot-addressed closure IR, lowering on
// first use and caching the result (safe for concurrent runs, e.g. the
// exper sweep executor sharing one Compiled across goroutines).
func (c *Compiled) Lowered() (*sim.Program, error) {
	c.lowerOnce.Do(func() {
		c.lowered, c.lowerErr = sim.Lower(c.Prog, c.Marks)
	})
	return c.lowered, c.lowerErr
}

// Compile runs the whole compiler pipeline on PFL source.
func Compile(src string, opts CompileOptions) (*Compiled, error) {
	ast, err := pfl.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := pfl.Check(ast)
	if err != nil {
		return nil, err
	}
	align := opts.AlignWords
	if align <= 0 {
		align = 4
	}
	p, err := prog.BuildPadded(info, align, opts.PadScalars)
	if err != nil {
		return nil, err
	}
	a := sections.Analyze(p, sections.Options{Interproc: opts.Interproc})
	m := marking.Compute(a, marking.Options{FirstReadReuse: opts.FirstReadReuse})
	return &Compiled{Source: src, AST: ast, Info: info, Prog: p, Analysis: a, Marks: m,
		Key: CompileKey(src, opts)}, nil
}

// CompileForConfig compiles with the analysis toggles and alignment that
// a machine configuration implies.
func CompileForConfig(src string, cfg machine.Config) (*Compiled, error) {
	return Compile(src, CompileOptions{
		Interproc:      cfg.Interproc,
		FirstReadReuse: cfg.FirstReadReuse,
		AlignWords:     int64(cfg.LineWords),
	})
}

// NewSystem builds the memory system for cfg.Scheme over a program's
// memory layout.
func NewSystem(cfg machine.Config, p *prog.Prog) (memsys.System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Scheme {
	case machine.SchemeBase:
		return swschemes.NewBase(cfg, p.MemWords), nil
	case machine.SchemeSC:
		return swschemes.NewSC(cfg, p.MemWords), nil
	case machine.SchemeTPI:
		if cfg.L1Words > 0 {
			return tpi.NewTwoLevel(cfg, p.MemWords), nil
		}
		return tpi.New(cfg, p.MemWords), nil
	case machine.SchemeHW:
		return hwdir.New(cfg, p.MemWords), nil
	case machine.SchemeVC:
		return vc.New(cfg, p), nil
	case machine.SchemeTardis, machine.SchemeTardis2:
		return tardis.New(cfg, p.MemWords), nil
	default:
		return nil, fmt.Errorf("core: unknown scheme %v", cfg.Scheme)
	}
}

// RunOptions carries the optional per-run controls shared by the Run*
// variants. The zero value reproduces the plain Run behavior.
type RunOptions struct {
	// Ctx, when non-nil, aborts the run at the next epoch barrier once
	// the context is cancelled or past its deadline: the run returns an
	// error wrapping ctx.Err() (errors.Is-able against context.Canceled
	// and context.DeadlineExceeded) and the system's pooled caches are
	// still released. Epoch barriers are the natural abort point — no
	// task is mid-reference, so the memory system is consistent.
	Ctx context.Context

	// Progress, when non-nil, receives run-progress snapshots sampled
	// at epoch barriers — at most one per ProgressEvery epochs, plus a
	// final Done snapshot when the run completes or aborts. The
	// callback runs on the simulating goroutine between epochs: keep it
	// to atomic updates or non-blocking sends. Sampling never touches
	// the per-reference hot path, so statistics are bit-identical with
	// or without a callback.
	Progress sim.ProgressFunc
	// ProgressEvery is the epoch stride between Progress samples
	// (minimum and default 1).
	ProgressEvery int64
}

// Run simulates the compiled program on a fresh memory system for cfg and
// returns the run statistics. Unlike RunWithMemory, no memory snapshot is
// taken (the sweep executors and benchmarks discard it).
func Run(c *Compiled, cfg machine.Config) (*stats.Stats, error) {
	return RunWithOptions(c, cfg, RunOptions{})
}

// RunWithOptions is Run with per-run controls (cancellation).
func RunWithOptions(c *Compiled, cfg machine.Config, opts RunOptions) (*stats.Stats, error) {
	st, sys, err := runSystem(c, cfg, opts)
	if err != nil {
		return nil, err
	}
	releaseSystem(sys)
	return st, nil
}

// RunWithMemory is Run plus the final memory image (for result checks).
func RunWithMemory(c *Compiled, cfg machine.Config) (*stats.Stats, []float64, error) {
	st, sys, err := runSystem(c, cfg, RunOptions{})
	if err != nil {
		return nil, nil, err
	}
	mem := sys.Mem().Snapshot()
	releaseSystem(sys)
	return st, mem, nil
}

// runSystem builds the memory system, runs the simulation, and checks
// the directory invariants. The caller extracts what it needs from the
// returned system and then releases it. On error the system has already
// been released: every failure path — lowering, a runtime fault inside
// the simulation, a cancelled context, a failed invariant check —
// returns its pooled caches, so an aborted run never leaks pool
// capacity (and never poisons it: pooled structures are reset to the
// fresh-construction state on reacquire).
func runSystem(c *Compiled, cfg machine.Config, opts RunOptions) (*stats.Stats, memsys.System, error) {
	lp, err := c.Lowered()
	if err != nil {
		return nil, nil, err
	}
	sys, err := NewSystem(cfg, c.Prog)
	if err != nil {
		return nil, nil, err
	}
	r := sim.NewLowered(lp, sys, cfg)
	if opts.Ctx != nil {
		r.SetContext(opts.Ctx)
	}
	if opts.Progress != nil {
		r.SetProgress(opts.Progress, opts.ProgressEvery)
	}
	st, err := r.Run()
	if err != nil {
		releaseSystem(sys)
		return nil, nil, err
	}
	if err := checkInvariants(sys); err != nil {
		releaseSystem(sys)
		return nil, nil, err
	}
	return st, sys, nil
}

// invariantChecked is implemented by schemes with end-of-run protocol
// invariants (the HW directory's sharer-set consistency, the Tardis home
// timestamp ordering).
type invariantChecked interface {
	CheckInvariants() error
}

// checkInvariants runs a scheme's protocol invariant check, if it has one.
func checkInvariants(sys memsys.System) error {
	if c, ok := sys.(invariantChecked); ok {
		return c.CheckInvariants()
	}
	return nil
}

// releaseSystem returns a run's per-processor cache structures to their
// construction pools. Call only after everything the caller needs —
// stats, memory snapshot, invariant checks — has been extracted.
func releaseSystem(sys memsys.System) {
	if r, ok := sys.(memsys.Releaser); ok {
		r.ReleaseCaches()
	}
}

// FastPathStatus reports, for one run, every site that left the fast
// paths: the static per-loop stream recognition verdicts (scheme- and
// run-independent) and the deduplicated runtime fallbacks (recognized
// loops that executed scalar, DOALL epochs that executed sequentially
// while host parallelism was requested).
type FastPathStatus struct {
	StreamDiags []sim.StreamDiag
	Misses      []sim.FastPathMiss
}

// Clean reports whether the run stayed on the fast paths everywhere it
// could: no recognized stream loop fell back to the scalar path at
// runtime, and no shardable DOALL epoch fell back to sequential
// dispatch while host parallelism was requested. Structural
// non-candidates — loops the recognizer rejected (a non-OK StreamDiag)
// and seqOnly doalls — don't count against cleanliness; they can never
// take the fast paths under any configuration.
func (f *FastPathStatus) Clean() bool { return len(f.Misses) == 0 }

// RunFastPathAudit is Run with fast-path fallback tracking enabled: it
// returns the statistics plus a FastPathStatus describing every site
// that left the stream or host-parallel fast path and why. Tracking
// costs one predictable branch per fallback, so the statistics are
// identical to a plain Run's.
func RunFastPathAudit(c *Compiled, cfg machine.Config) (*stats.Stats, *FastPathStatus, error) {
	lp, err := c.Lowered()
	if err != nil {
		return nil, nil, err
	}
	sys, err := NewSystem(cfg, c.Prog)
	if err != nil {
		return nil, nil, err
	}
	r := sim.NewLowered(lp, sys, cfg)
	r.EnableFastPathTracking()
	st, err := r.Run()
	if err != nil {
		releaseSystem(sys)
		return nil, nil, err
	}
	if err := checkInvariants(sys); err != nil {
		releaseSystem(sys)
		return nil, nil, err
	}
	releaseSystem(sys)
	return st, &FastPathStatus{StreamDiags: lp.StreamDiags(), Misses: r.FastPathMisses()}, nil
}

// RunTraced is Run with a memory-event trace written to w (see
// sim.Runner.SetTrace for the line format).
func RunTraced(c *Compiled, cfg machine.Config, w io.Writer) (*stats.Stats, error) {
	lp, err := c.Lowered()
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(cfg, c.Prog)
	if err != nil {
		return nil, err
	}
	r := sim.NewLowered(lp, sys, cfg)
	r.SetTrace(w)
	st, err := r.Run()
	releaseSystem(sys) // on error too: nothing is extracted from sys after this
	if err != nil {
		return nil, err
	}
	return st, nil
}

// RunOracle executes the program with the sequential reference semantics
// (no caches, direct memory) and returns the authoritative final memory.
func RunOracle(c *Compiled) ([]float64, error) {
	lp, err := c.Lowered()
	if err != nil {
		return nil, err
	}
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = 1
	sys := memsys.NewOracle(cfg, c.Prog.MemWords)
	r := sim.NewLowered(lp, sys, cfg)
	if _, err := r.Run(); err != nil {
		return nil, err
	}
	return sys.Mem().Snapshot(), nil
}

// VerifyAgainstOracle runs the program under cfg and compares the final
// memory image with the sequential oracle bit-for-bit. It returns the run
// statistics; a mismatch is an error naming the first differing word.
func VerifyAgainstOracle(c *Compiled, cfg machine.Config) (*stats.Stats, error) {
	want, err := RunOracle(c)
	if err != nil {
		return nil, fmt.Errorf("core: oracle run failed: %w", err)
	}
	st, got, err := RunWithMemory(c, cfg)
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < c.Prog.MemWords; i++ {
		if got[i] != want[i] {
			return nil, fmt.Errorf("core: %s result diverges from sequential oracle at word %d: got %v, want %v",
				cfg.Scheme, i, got[i], want[i])
		}
	}
	return st, nil
}
