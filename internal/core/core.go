// Package core is the library's public entry point: it ties the compiler
// pipeline (parse → check → epoch flow graphs → section analysis →
// reference marking) to the machine model and the execution-driven
// simulator, and provides the scheme factory used by the benchmarks,
// examples, and command-line tools.
//
// Typical use:
//
//	c, err := core.Compile(src, core.DefaultCompileOptions())
//	cfg := machine.Default(machine.SchemeTPI)
//	st, err := core.Run(c, cfg)
//	fmt.Println(st)
package core

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/machine"
	"repro/internal/marking"
	"repro/internal/memsys"
	"repro/internal/pfl"
	"repro/internal/prog"
	"repro/internal/sections"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/swschemes"
	"repro/internal/tpi"
	"repro/internal/vc"

	hwdir "repro/internal/directory"
)

// CompileOptions configures the compiler pipeline.
type CompileOptions struct {
	// Interproc enables interprocedural section analysis and entry
	// freshness (on by default; the off state is the paper's ablation).
	Interproc bool
	// FirstReadReuse enables the intra-task reuse (first-read) analysis.
	FirstReadReuse bool
	// AlignWords is the array alignment in words (use the line size).
	AlignWords int64
	// PadScalars places every scalar on its own cache line instead of
	// packing them: the classic false-sharing mitigation (ablation E24).
	PadScalars bool
}

// DefaultCompileOptions enables all analyses with 4-word alignment.
func DefaultCompileOptions() CompileOptions {
	return CompileOptions{Interproc: true, FirstReadReuse: true, AlignWords: 4}
}

// Compiled is a fully analyzed, executable program.
type Compiled struct {
	Source   string
	AST      *pfl.Program
	Info     *pfl.Info
	Prog     *prog.Prog
	Analysis *sections.Analysis
	Marks    *marking.Result

	lowerOnce sync.Once
	lowered   *sim.Program
	lowerErr  error
}

// Lowered returns the program's slot-addressed closure IR, lowering on
// first use and caching the result (safe for concurrent runs, e.g. the
// exper sweep executor sharing one Compiled across goroutines).
func (c *Compiled) Lowered() (*sim.Program, error) {
	c.lowerOnce.Do(func() {
		c.lowered, c.lowerErr = sim.Lower(c.Prog, c.Marks)
	})
	return c.lowered, c.lowerErr
}

// Compile runs the whole compiler pipeline on PFL source.
func Compile(src string, opts CompileOptions) (*Compiled, error) {
	ast, err := pfl.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := pfl.Check(ast)
	if err != nil {
		return nil, err
	}
	align := opts.AlignWords
	if align <= 0 {
		align = 4
	}
	p, err := prog.BuildPadded(info, align, opts.PadScalars)
	if err != nil {
		return nil, err
	}
	a := sections.Analyze(p, sections.Options{Interproc: opts.Interproc})
	m := marking.Compute(a, marking.Options{FirstReadReuse: opts.FirstReadReuse})
	return &Compiled{Source: src, AST: ast, Info: info, Prog: p, Analysis: a, Marks: m}, nil
}

// CompileForConfig compiles with the analysis toggles and alignment that
// a machine configuration implies.
func CompileForConfig(src string, cfg machine.Config) (*Compiled, error) {
	return Compile(src, CompileOptions{
		Interproc:      cfg.Interproc,
		FirstReadReuse: cfg.FirstReadReuse,
		AlignWords:     int64(cfg.LineWords),
	})
}

// NewSystem builds the memory system for cfg.Scheme over a program's
// memory layout.
func NewSystem(cfg machine.Config, p *prog.Prog) (memsys.System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Scheme {
	case machine.SchemeBase:
		return swschemes.NewBase(cfg, p.MemWords), nil
	case machine.SchemeSC:
		return swschemes.NewSC(cfg, p.MemWords), nil
	case machine.SchemeTPI:
		if cfg.L1Words > 0 {
			return tpi.NewTwoLevel(cfg, p.MemWords), nil
		}
		return tpi.New(cfg, p.MemWords), nil
	case machine.SchemeHW:
		return hwdir.New(cfg, p.MemWords), nil
	case machine.SchemeVC:
		return vc.New(cfg, p), nil
	default:
		return nil, fmt.Errorf("core: unknown scheme %v", cfg.Scheme)
	}
}

// Run simulates the compiled program on a fresh memory system for cfg and
// returns the run statistics. Unlike RunWithMemory, no memory snapshot is
// taken (the sweep executors and benchmarks discard it).
func Run(c *Compiled, cfg machine.Config) (*stats.Stats, error) {
	st, sys, err := runSystem(c, cfg)
	if err != nil {
		return nil, err
	}
	releaseSystem(sys)
	return st, nil
}

// RunWithMemory is Run plus the final memory image (for result checks).
func RunWithMemory(c *Compiled, cfg machine.Config) (*stats.Stats, []float64, error) {
	st, sys, err := runSystem(c, cfg)
	if err != nil {
		return nil, nil, err
	}
	mem := sys.Mem().Snapshot()
	releaseSystem(sys)
	return st, mem, nil
}

// runSystem builds the memory system, runs the simulation, and checks
// the directory invariants. The caller extracts what it needs from the
// returned system and then releases it.
func runSystem(c *Compiled, cfg machine.Config) (*stats.Stats, memsys.System, error) {
	lp, err := c.Lowered()
	if err != nil {
		return nil, nil, err
	}
	sys, err := NewSystem(cfg, c.Prog)
	if err != nil {
		return nil, nil, err
	}
	r := sim.NewLowered(lp, sys, cfg)
	st, err := r.Run()
	if err != nil {
		return nil, nil, err
	}
	if hw, ok := sys.(*hwdir.System); ok {
		if err := hw.CheckInvariants(); err != nil {
			return nil, nil, err
		}
	}
	return st, sys, nil
}

// releaseSystem returns a run's per-processor cache structures to their
// construction pools. Call only after everything the caller needs —
// stats, memory snapshot, invariant checks — has been extracted.
func releaseSystem(sys memsys.System) {
	if r, ok := sys.(memsys.Releaser); ok {
		r.ReleaseCaches()
	}
}

// RunTraced is Run with a memory-event trace written to w (see
// sim.Runner.SetTrace for the line format).
func RunTraced(c *Compiled, cfg machine.Config, w io.Writer) (*stats.Stats, error) {
	lp, err := c.Lowered()
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(cfg, c.Prog)
	if err != nil {
		return nil, err
	}
	r := sim.NewLowered(lp, sys, cfg)
	r.SetTrace(w)
	st, err := r.Run()
	if err != nil {
		return nil, err
	}
	releaseSystem(sys)
	return st, nil
}

// RunOracle executes the program with the sequential reference semantics
// (no caches, direct memory) and returns the authoritative final memory.
func RunOracle(c *Compiled) ([]float64, error) {
	lp, err := c.Lowered()
	if err != nil {
		return nil, err
	}
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = 1
	sys := memsys.NewOracle(cfg, c.Prog.MemWords)
	r := sim.NewLowered(lp, sys, cfg)
	if _, err := r.Run(); err != nil {
		return nil, err
	}
	return sys.Mem().Snapshot(), nil
}

// VerifyAgainstOracle runs the program under cfg and compares the final
// memory image with the sequential oracle bit-for-bit. It returns the run
// statistics; a mismatch is an error naming the first differing word.
func VerifyAgainstOracle(c *Compiled, cfg machine.Config) (*stats.Stats, error) {
	want, err := RunOracle(c)
	if err != nil {
		return nil, fmt.Errorf("core: oracle run failed: %w", err)
	}
	st, got, err := RunWithMemory(c, cfg)
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < c.Prog.MemWords; i++ {
		if got[i] != want[i] {
			return nil, fmt.Errorf("core: %s result diverges from sequential oracle at word %d: got %v, want %v",
				cfg.Scheme, i, got[i], want[i])
		}
	}
	return st, nil
}
