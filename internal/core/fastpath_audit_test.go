package core

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

// TestRunFastPathAudit pins the -require-fastpath contract at the
// library level: a fully-affine program stays on both fast paths under
// every scheme (including two-level TPI) with host parallelism and the
// stream fast path engaged; the kill switch and dynamic scheduling each
// surface a deduplicated, reasoned miss; and tracking never perturbs
// the simulated statistics.
func TestRunFastPathAudit(t *testing.T) {
	c := compileT(t, stencilSrc)

	variants := []struct {
		name    string
		scheme  machine.Scheme
		l1Words int64
	}{
		{"BASE", machine.SchemeBase, 0},
		{"SC", machine.SchemeSC, 0},
		{"TPI", machine.SchemeTPI, 0},
		{"TPI2L", machine.SchemeTPI, 64},
		{"HW", machine.SchemeHW, 0},
		{"VC", machine.SchemeVC, 0},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := machine.Default(v.scheme)
			cfg.L1Words = v.l1Words
			cfg.Procs = 8
			cfg.HostParallel = 4

			plain, err := Run(c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			st, fps, err := RunFastPathAudit(c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !fps.Clean() {
				t.Fatalf("misses on a fully-affine program: %+v", fps.Misses)
			}
			streamed := 0
			for _, d := range fps.StreamDiags {
				if d.OK {
					streamed++
				}
			}
			if streamed == 0 {
				t.Fatal("no stream loops recognized in the stencil")
			}
			if snapshotKey(t, st.Snapshot()) != snapshotKey(t, plain.Snapshot()) {
				t.Fatal("fast-path tracking perturbed the statistics")
			}
		})
	}

	t.Run("kill-switch", func(t *testing.T) {
		cfg := machine.Default(machine.SchemeTPI)
		cfg.Procs = 8
		cfg.FastPath = false
		_, fps, err := RunFastPathAudit(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fps.Clean() {
			t.Fatal("kill switch must surface stream-loop misses")
		}
		for _, m := range fps.Misses {
			if m.Kind != "stream-loop" || !strings.Contains(m.Reason, "disabled") {
				t.Fatalf("unexpected miss: %+v", m)
			}
			if m.Pos == "" || m.Var == "" {
				t.Fatalf("miss lacks a source site: %+v", m)
			}
		}
	})

	t.Run("dynamic-sched", func(t *testing.T) {
		cfg := machine.Default(machine.SchemeTPI)
		cfg.Procs = 8
		cfg.HostParallel = 4
		cfg.DynamicSched = true
		_, fps, err := RunFastPathAudit(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range fps.Misses {
			if m.Kind == "doall-epoch" {
				found = true
				if !strings.Contains(m.Reason, "dynamic") {
					t.Fatalf("doall miss reason = %q", m.Reason)
				}
			}
		}
		if !found {
			t.Fatal("dynamic scheduling under -hostpar must surface doall-epoch misses")
		}
	})

	t.Run("hostpar-off-is-not-a-miss", func(t *testing.T) {
		// Sequential dispatch is the configured behavior at hostpar<=1,
		// not a fallback; only stream coverage is audited.
		cfg := machine.Default(machine.SchemeTPI)
		cfg.Procs = 8
		_, fps, err := RunFastPathAudit(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !fps.Clean() {
			t.Fatalf("misses at hostpar=1: %+v", fps.Misses)
		}
	})
}
