package core

// Randomized whole-pipeline property test: generate random — but
// DOALL-independent by construction — PFL programs and demand that every
// coherence scheme produces results bit-identical to the sequential
// oracle under a variety of machine configurations. This exercises the
// parser, checker, epoch graphs, section analysis, marking, all four
// memory systems, and the simulator against each other.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/machine"
)

// progGen builds random PFL programs whose DOALLs are independent by
// construction: inside a doall over i, writes target subscript [i] (or
// [i][j] for an inner serial loop), and reads of any array written in
// the same doall use exactly the written subscript.
type progGen struct {
	r       *rand.Rand
	n       int
	arrays  []genArray
	scalars []string
	b       strings.Builder
}

type genArray struct {
	name string
	rank int
}

func newProgGen(seed int64) *progGen {
	g := &progGen{r: rand.New(rand.NewSource(seed)), n: 16}
	na := 3 + g.r.Intn(3)
	for i := 0; i < na; i++ {
		g.arrays = append(g.arrays, genArray{
			name: fmt.Sprintf("A%d", i),
			rank: 1 + g.r.Intn(2),
		})
	}
	ns := 1 + g.r.Intn(2)
	for i := 0; i < ns; i++ {
		g.scalars = append(g.scalars, fmt.Sprintf("s%d", i))
	}
	return g
}

func (g *progGen) pick() genArray { return g.arrays[g.r.Intn(len(g.arrays))] }

// subscript for a READ of an array not written in this doall.
func (g *progGen) freeSub(loopVar string) string {
	switch g.r.Intn(5) {
	case 0:
		return loopVar
	case 1:
		return fmt.Sprintf("(%s + 1) %% n", loopVar)
	case 2:
		return fmt.Sprintf("n - 1 - %s", loopVar)
	case 3:
		return fmt.Sprintf("%d", g.r.Intn(g.n))
	default:
		return fmt.Sprintf("(%s * %d) %% n", loopVar, 1+g.r.Intn(4))
	}
}

// readRef renders a read of array a; if selfOnly, the subscripts must be
// exactly the written ones (idx).
func (g *progGen) readRef(a genArray, idx []string, selfOnly bool, loopVars []string) string {
	subs := make([]string, a.rank)
	for d := 0; d < a.rank; d++ {
		if selfOnly {
			subs[d] = idx[d]
		} else {
			subs[d] = g.freeSub(loopVars[g.r.Intn(len(loopVars))])
		}
	}
	return a.name + "[" + strings.Join(subs, "][") + "]"
}

// expr renders a RHS over the given readable terms.
func (g *progGen) expr(terms []string) string {
	t := terms[g.r.Intn(len(terms))]
	for i := 0; i < g.r.Intn(3); i++ {
		op := []string{"+", "-", "*"}[g.r.Intn(3)]
		u := terms[g.r.Intn(len(terms))]
		if op == "*" {
			// keep magnitudes bounded
			u = fmt.Sprintf("%.2f", 0.25+g.r.Float64()*0.5)
		}
		t = fmt.Sprintf("(%s %s %s)", t, op, u)
	}
	// occasionally wrap in a bounded intrinsic
	switch g.r.Intn(6) {
	case 0:
		t = fmt.Sprintf("sin(%s)", t)
	case 1:
		t = fmt.Sprintf("min(%s, 8.0)", t)
	case 2:
		t = fmt.Sprintf("abs(%s)", t)
	}
	return t
}

// doall emits one parallel epoch.
func (g *progGen) doall(depth int) {
	target := g.pick()
	loopVars := []string{"i"}
	idx := []string{"i"}
	inner := target.rank == 2
	if inner {
		loopVars = append(loopVars, "j")
		idx = append(idx, "j")
	}

	// readable terms: own element of target, any other arrays, literals
	var terms []string
	terms = append(terms, fmt.Sprintf("%.2f", g.r.Float64()*2))
	terms = append(terms, g.readRef(target, idx, true, loopVars))
	for _, a := range g.arrays {
		if a.name != target.name {
			terms = append(terms, g.readRef(a, nil, false, loopVars))
		}
	}

	fmt.Fprintf(&g.b, "%sdoall i = 0 to n-1 {\n", indent(depth))
	if inner {
		fmt.Fprintf(&g.b, "%sfor j = 0 to n-1 {\n", indent(depth+1))
		fmt.Fprintf(&g.b, "%s%s[i][j] = %s\n", indent(depth+2), target.name, g.expr(terms))
		fmt.Fprintf(&g.b, "%s}\n", indent(depth+1))
	} else {
		fmt.Fprintf(&g.b, "%s%s[i] = %s\n", indent(depth+1), target.name, g.expr(terms))
		if g.r.Intn(3) == 0 {
			fmt.Fprintf(&g.b, "%s%s[i] = %s[i] * 0.5\n", indent(depth+1), target.name, target.name)
		}
	}
	if g.r.Intn(3) == 0 {
		sc := g.scalars[g.r.Intn(len(g.scalars))]
		src := g.readRef(target, idx[:1], target.rank == 1, []string{"i"})
		if target.rank == 2 {
			src = target.name + "[i][0]"
		}
		kw := "critical"
		if g.r.Intn(2) == 0 {
			kw = "ordered"
		}
		fmt.Fprintf(&g.b, "%s%s {\n%s%s = %s + %s\n%s}\n",
			indent(depth+1), kw, indent(depth+2), sc, sc, src, indent(depth+1))
	}
	fmt.Fprintf(&g.b, "%s}\n", indent(depth))
}

// doacross emits a pipelined prefix epoch over a rank-1 array: iteration
// i's ordered section reads iteration i-1's result within the same epoch.
func (g *progGen) doacross(depth int) {
	var target genArray
	found := false
	for _, a := range g.arrays {
		if a.rank == 1 {
			target = a
			found = true
			break
		}
	}
	if !found {
		g.doall(depth)
		return
	}
	fmt.Fprintf(&g.b, "%sdoall i = 1 to n-1 {\n", indent(depth))
	fmt.Fprintf(&g.b, "%sordered {\n", indent(depth+1))
	fmt.Fprintf(&g.b, "%s%s[i] = %s[i-1] * 0.5 + %s[i] * 0.5 + %.2f\n",
		indent(depth+2), target.name, target.name, target.name, g.r.Float64())
	fmt.Fprintf(&g.b, "%s}\n", indent(depth+1))
	fmt.Fprintf(&g.b, "%s}\n", indent(depth))
}

// serialStmt emits a serial epoch statement.
func (g *progGen) serialStmt(depth int) {
	a := g.pick()
	subs := make([]string, a.rank)
	for d := range subs {
		subs[d] = fmt.Sprintf("%d", g.r.Intn(g.n))
	}
	lhs := a.name + "[" + strings.Join(subs, "][") + "]"
	rhs := fmt.Sprintf("%s + %.2f", lhs, g.r.Float64())
	if g.r.Intn(2) == 0 {
		sc := g.scalars[g.r.Intn(len(g.scalars))]
		rhs = fmt.Sprintf("%s * 0.9 + %.2f", sc, g.r.Float64())
		fmt.Fprintf(&g.b, "%s%s = %s\n", indent(depth), sc, rhs)
		return
	}
	fmt.Fprintf(&g.b, "%s%s = %s\n", indent(depth), lhs, rhs)
}

func indent(d int) string { return strings.Repeat("  ", d) }

// generate renders the whole program.
func (g *progGen) generate() string {
	g.b.Reset()
	fmt.Fprintf(&g.b, "program rnd\nparam n = %d\n", g.n)
	for _, s := range g.scalars {
		fmt.Fprintf(&g.b, "scalar %s = %.2f\n", s, g.r.Float64())
	}
	for _, a := range g.arrays {
		g.b.WriteString("array " + a.name)
		for d := 0; d < a.rank; d++ {
			g.b.WriteString("[n]")
		}
		g.b.WriteByte('\n')
	}
	g.b.WriteString("\nproc main() {\n")
	// initialization epoch for every array
	for _, a := range g.arrays {
		if a.rank == 1 {
			fmt.Fprintf(&g.b, "  doall i = 0 to n-1 { %s[i] = i * %.2f }\n", a.name, 0.1+g.r.Float64())
		} else {
			fmt.Fprintf(&g.b, "  doall i = 0 to n-1 { for j = 0 to n-1 { %s[i][j] = (i * n + j) * %.2f } }\n",
				a.name, 0.01+g.r.Float64()*0.1)
		}
	}
	// random construct sequence
	nc := 3 + g.r.Intn(5)
	for c := 0; c < nc; c++ {
		switch g.r.Intn(5) {
		case 4:
			g.doacross(1)
		case 0:
			g.serialStmt(1)
		case 1:
			// serial loop around doalls
			fmt.Fprintf(&g.b, "  for t = 0 to %d {\n", 1+g.r.Intn(2))
			nd := 1 + g.r.Intn(2)
			for k := 0; k < nd; k++ {
				g.doall(2)
			}
			g.b.WriteString("  }\n")
		case 2:
			// branch on a scalar
			sc := g.scalars[g.r.Intn(len(g.scalars))]
			fmt.Fprintf(&g.b, "  if (%s > 0.5) {\n", sc)
			g.doall(2)
			g.b.WriteString("  } else {\n")
			g.doall(2)
			g.b.WriteString("  }\n")
		default:
			g.doall(1)
		}
	}
	g.b.WriteString("}\n")
	return g.b.String()
}

func TestRandomProgramsAllSchemesMatchOracle(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := newProgGen(seed).generate()
			// Stress unaligned layouts too: with AlignWords 1 arrays share
			// cache lines with scalars and each other, exercising the
			// neighbour-fill rule and false-sharing paths hard.
			opts := DefaultCompileOptions()
			opts.AlignWords = []int64{1, 4}[seed%2]
			c, err := Compile(src, opts)
			if err != nil {
				t.Fatalf("generated program does not compile: %v\n%s", err, src)
			}
			for _, s := range machine.AllSchemes {
				cfg := machine.Default(s)
				cfg.Procs = 4 + int(seed%3)*2
				cfg.CacheWords = 256 << (seed % 3) // small caches force evictions
				cfg.Assoc = []int{1, 2, 4}[seed%3]
				if seed%4 == 3 {
					cfg.Topology = "torus"
				}
				cfg.MigrateSerial = seed%2 == 1
				cfg.CyclicSched = seed%3 == 1
				if s == machine.SchemeTPI {
					cfg.TimetagBits = []int{2, 4, 8}[seed%3] // force resets sometimes
					cfg.LineTimetags = seed%5 == 0
					cfg.TPIWriteBack = seed%7 == 0
				}
				if _, err := VerifyAgainstOracle(c, cfg); err != nil {
					t.Fatalf("seed %d scheme %s: %v\nprogram:\n%s", seed, s, err, src)
				}
			}
		})
	}
}

func TestRandomProgramsAblatedCompilerStillSound(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(100); seed < int64(100+seeds); seed++ {
		src := newProgGen(seed).generate()
		c, err := Compile(src, CompileOptions{Interproc: false, FirstReadReuse: false, AlignWords: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := machine.Default(machine.SchemeTPI)
		cfg.Procs = 8
		cfg.Interproc = false
		cfg.FirstReadReuse = false
		if _, err := VerifyAgainstOracle(c, cfg); err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
	}
}
