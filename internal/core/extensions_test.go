package core

import (
	"testing"

	"repro/internal/machine"
)

// The extension modes (limited-pointer directory, sequential consistency,
// dynamic scheduling) must never affect results — only performance.

func TestLimitedPointerDirectoryCorrect(t *testing.T) {
	c := compileT(t, stencilSrc)
	for _, ptrs := range []int{1, 2, 4} {
		cfg := machine.Default(machine.SchemeHW)
		cfg.Procs = 8
		cfg.DirPointers = ptrs
		st, err := VerifyAgainstOracle(c, cfg)
		if err != nil {
			t.Fatalf("DIR_NB(%d): %v", ptrs, err)
		}
		if ptrs == 1 && st.PointerEvictions == 0 {
			t.Error("DIR_NB(1) must evict pointers on this workload")
		}
	}
}

func TestSequentialConsistencyCorrectAndSlower(t *testing.T) {
	c := compileT(t, stencilSrc)
	for _, s := range machine.Schemes {
		wcCfg := machine.Default(s)
		wcCfg.Procs = 8
		wc, err := VerifyAgainstOracle(c, wcCfg)
		if err != nil {
			t.Fatalf("%s WC: %v", s, err)
		}
		scCfg := wcCfg
		scCfg.SeqConsistency = true
		sc, err := VerifyAgainstOracle(c, scCfg)
		if err != nil {
			t.Fatalf("%s SC: %v", s, err)
		}
		if sc.Cycles < wc.Cycles {
			t.Errorf("%s: sequential consistency (%d cycles) cannot beat weak (%d)",
				s, sc.Cycles, wc.Cycles)
		}
	}
}

func TestSeqConsistencyHurtsWriteThroughMore(t *testing.T) {
	c := compileT(t, stencilSrc)
	slowdown := func(s machine.Scheme) float64 {
		wcCfg := machine.Default(s)
		wcCfg.Procs = 8
		wc, err := Run(c, wcCfg)
		if err != nil {
			t.Fatal(err)
		}
		scCfg := wcCfg
		scCfg.SeqConsistency = true
		sc, err := Run(c, scCfg)
		if err != nil {
			t.Fatal(err)
		}
		return float64(sc.Cycles) / float64(wc.Cycles)
	}
	tpi, hw := slowdown(machine.SchemeTPI), slowdown(machine.SchemeHW)
	if !(tpi > hw) {
		t.Errorf("write-through TPI slowdown (%.2f) should exceed write-back HW's (%.2f)", tpi, hw)
	}
}

func TestDynamicSchedulingCorrect(t *testing.T) {
	c := compileT(t, stencilSrc)
	for _, s := range machine.Schemes {
		cfg := machine.Default(s)
		cfg.Procs = 8
		cfg.DynamicSched = true
		if _, err := VerifyAgainstOracle(c, cfg); err != nil {
			t.Fatalf("%s dynamic: %v", s, err)
		}
	}
}

func TestWriteBackPolicyCorrect(t *testing.T) {
	c := compileT(t, stencilSrc)
	cfg := machine.Default(machine.SchemeTPI)
	cfg.Procs = 8
	cfg.TPIWriteBack = true
	st, err := VerifyAgainstOracle(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.FlushedWords == 0 || st.FlushStallCycles == 0 {
		t.Fatalf("write-back run recorded no flushes: %+v", st)
	}
}

func TestTwoLevelTPICorrect(t *testing.T) {
	c := compileT(t, stencilSrc)
	cfg := machine.Default(machine.SchemeTPI)
	cfg.Procs = 8
	cfg.L1Words = 1024
	st, err := VerifyAgainstOracle(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The two-level design must not change WHAT misses, only what hits cost.
	base := machine.Default(machine.SchemeTPI)
	base.Procs = 8
	st1, err := Run(c, base)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalReadMisses() != st1.TotalReadMisses() {
		t.Errorf("two-level misses %d != integrated %d", st.TotalReadMisses(), st1.TotalReadMisses())
	}
	if st.Cycles <= st1.Cycles {
		t.Errorf("off-the-shelf design (%d cycles) must be slower than integrated (%d)", st.Cycles, st1.Cycles)
	}
}

func TestTwoLevelTinyTagsAndDoacross(t *testing.T) {
	c := compileT(t, doacrossSrc)
	cfg := machine.Default(machine.SchemeTPI)
	cfg.Procs = 8
	cfg.L1Words = 512
	cfg.TimetagBits = 2
	if _, err := VerifyAgainstOracle(c, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTorusTopologyCorrect(t *testing.T) {
	c := compileT(t, stencilSrc)
	for _, s := range machine.AllSchemes {
		cfg := machine.Default(s)
		cfg.Procs = 8
		cfg.Topology = "torus"
		if _, err := VerifyAgainstOracle(c, cfg); err != nil {
			t.Fatalf("%s on torus: %v", s, err)
		}
	}
}

func TestLineTimetagsCorrect(t *testing.T) {
	c := compileT(t, stencilSrc)
	cfg := machine.Default(machine.SchemeTPI)
	cfg.Procs = 8
	cfg.LineTimetags = true
	st, err := VerifyAgainstOracle(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := cfg
	base.LineTimetags = false
	stW, err := Run(c, base)
	if err != nil {
		t.Fatal(err)
	}
	if st.MissRate() < stW.MissRate()-0.001 {
		t.Errorf("line tags (%.4f) cannot beat per-word tags (%.4f)", st.MissRate(), stW.MissRate())
	}
}

func TestPrefetchCorrectAndTraded(t *testing.T) {
	c := compileT(t, stencilSrc)
	cfg := machine.Default(machine.SchemeTPI)
	cfg.Procs = 8
	cfg.Prefetch = true
	st, err := VerifyAgainstOracle(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.PrefetchedLines == 0 {
		t.Fatal("no prefetches issued")
	}
	base := cfg
	base.Prefetch = false
	st0, err := Run(c, base)
	if err != nil {
		t.Fatal(err)
	}
	if st.ReadTrafficWords <= st0.ReadTrafficWords {
		t.Error("prefetching must add read traffic")
	}
	if st.TotalReadMisses() >= st0.TotalReadMisses() {
		t.Error("prefetching should remove some misses on a streaming stencil")
	}
}

func TestScalarPaddingCorrect(t *testing.T) {
	c, err := Compile(stencilSrc, CompileOptions{
		Interproc: true, FirstReadReuse: true, AlignWords: 4, PadScalars: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range machine.AllSchemes {
		cfg := machine.Default(s)
		cfg.Procs = 8
		if _, err := VerifyAgainstOracle(c, cfg); err != nil {
			t.Fatalf("%s padded: %v", s, err)
		}
	}
}
