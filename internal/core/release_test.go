package core

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/stats"
)

// faultySrc caches plenty of state in its first epoch, then faults
// mid-run: IDX holds values up to 3*(n-1), so the gather's runtime
// subscript walks out of X's bounds partway through the second doall.
const faultySrc = `
program faulty
param n = 24
array IDX[n]
array X[n]
proc main() {
  doall i = 0 to n-1 {
    IDX[i] = i * 3
    X[i] = i
  }
  doall i = 0 to n-1 {
    X[i] = X[IDX[i]]
  }
}
`

// TestMidRunFaultReleasesPooledState forces a runtime fault in the middle
// of a simulation and asserts that (a) the fault surfaces as an error,
// not a panic, and (b) pooled cache structures handed back by the failed
// run come back fresh: a subsequent good run over the same cache
// geometry is bit-identical to the same run before the fault ever
// happened. This covers the release-on-error paths of Run, RunTraced,
// and RunObserved.
func TestMidRunFaultReleasesPooledState(t *testing.T) {
	good := compileT(t, stencilSrc)
	bad := compileT(t, faultySrc)

	for _, s := range machine.AllSchemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := machine.Default(s)
			cfg.Procs = 8

			before, err := Run(good, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := before.Snapshot()

			if _, err := Run(bad, cfg); err == nil {
				t.Fatal("faulty program ran to completion")
			} else if !strings.Contains(err.Error(), "subscript") && !strings.Contains(err.Error(), "out of range") {
				t.Fatalf("unexpected fault: %v", err)
			}
			if _, _, err := RunObservedWithOptions(bad, cfg, obs.LevelCounters, nil, RunOptions{}); err == nil {
				t.Fatal("faulty program ran to completion under observation")
			}
			if _, err := RunTraced(bad, cfg, discard{}); err == nil {
				t.Fatal("faulty program ran to completion under tracing")
			}

			after, err := Run(good, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if snapshotKey(t, after.Snapshot()) != snapshotKey(t, want) {
				t.Fatalf("pooled state leaked across a failed run:\nbefore %s\nafter  %s",
					snapshotKey(t, want), snapshotKey(t, after.Snapshot()))
			}
		})
	}
}

// TestLanePoolFreshness: the buffered schemes pool their per-processor
// lane structures (and HW its per-epoch directory action logs) across
// runs. A run must see fresh pool state regardless of what earlier runs
// — other schemes, host-parallel workers, a mid-run fault — handed back:
// back-to-back runs through the pooled path must be bit-identical.
func TestLanePoolFreshness(t *testing.T) {
	good := compileT(t, stencilSrc)
	bad := compileT(t, faultySrc)
	buffered := []machine.Scheme{
		machine.SchemeHW, machine.SchemeVC,
		machine.SchemeTardis, machine.SchemeTardis2,
	}

	for _, s := range buffered {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := machine.Default(s)
			cfg.Procs = 8

			before, err := Run(good, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotKey(t, before.Snapshot())

			// Churn the pools: host-parallel runs of both buffered schemes
			// (their workers draw lanes and merge logs), stream fast-path
			// runs, and a faulting run that releases mid-simulation.
			for _, churn := range buffered {
				ccfg := machine.Default(churn)
				ccfg.Procs = 8
				ccfg.HostParallel = 4
				if _, err := Run(good, ccfg); err != nil {
					t.Fatal(err)
				}
				if _, err := Run(bad, ccfg); err == nil {
					t.Fatal("faulty program ran to completion")
				}
			}

			after, err := Run(good, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := snapshotKey(t, after.Snapshot()); got != want {
				t.Fatalf("pooled lane state leaked across runs:\nbefore %s\nafter  %s", want, got)
			}
		})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// snapshotKey is a snapshot's bit-exact identity for equality checks.
func snapshotKey(t *testing.T, s stats.Snapshot) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunContextCancellation: an already-cancelled context aborts before
// the first epoch; a deadline mid-run aborts at the next epoch barrier,
// promptly, with a context-classifiable error, and without poisoning the
// pools for the next run.
func TestRunContextCancellation(t *testing.T) {
	c := compileT(t, stencilSrc)
	cfg := machine.Default(machine.SchemeTPI)
	cfg.Procs = 8

	want, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunWithOptions(c, cfg, RunOptions{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	// A long run (many epochs) against a short deadline: the abort must
	// land at an epoch barrier within moments of the deadline.
	long := compileT(t, `
program longrun
param n = 16
array A[n]
proc main() {
  doall i = 0 to n-1 { A[i] = i }
  for t = 0 to 200000 {
    doall i = 0 to n-1 { A[i] = A[i] + 1.0 }
  }
}
`)
	const deadline = 50 * time.Millisecond
	dctx, dcancel := context.WithTimeout(context.Background(), deadline)
	defer dcancel()
	start := time.Now()
	_, err = RunWithOptions(long, cfg, RunOptions{Ctx: dctx})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v (after %v)", err, elapsed)
	}
	if elapsed > deadline+100*time.Millisecond {
		t.Fatalf("deadline abort took %v (deadline %v + 100ms grace)", elapsed, deadline)
	}

	// The aborted runs released their systems; the pools still serve
	// fresh state.
	again, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if snapshotKey(t, again.Snapshot()) != snapshotKey(t, want.Snapshot()) {
		t.Fatal("run after cancelled runs diverges: pooled state leaked")
	}
}
