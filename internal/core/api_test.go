package core

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"", "expected"},
		{"program p\nproc main() { x = 1 }", "not a scalar"},
		{"program p\narray A[0]\nproc main() { A[0] = 1 }", "non-positive"},
	}
	for _, c := range cases {
		if _, err := Compile(c.src, DefaultCompileOptions()); err == nil ||
			!strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q) error = %v, want substring %q", c.src, err, c.want)
		}
	}
}

func TestNewSystemValidation(t *testing.T) {
	c := compileT(t, "program p\nscalar s\nproc main() { s = 1.0 }")
	cfg := machine.Default(machine.SchemeTPI)
	cfg.Procs = 0
	if _, err := NewSystem(cfg, c.Prog); err == nil {
		t.Fatal("invalid config must be rejected")
	}
	cfg = machine.Default(machine.Scheme(42))
	if _, err := NewSystem(cfg, c.Prog); err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Fatalf("unknown scheme error = %v", err)
	}
}

func TestAllSchemeFactories(t *testing.T) {
	c := compileT(t, "program p\nparam n = 8\narray A[n]\nproc main() { doall i = 0 to n-1 { A[i] = i } }")
	for _, s := range machine.AllSchemes {
		sys, err := NewSystem(machine.Default(s), c.Prog)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if sys.Name() == "" {
			t.Fatalf("%s: empty name", s)
		}
		if sys.Mem() == nil || sys.Stats() == nil || sys.Net() == nil {
			t.Fatalf("%s: nil accessors", s)
		}
	}
}

func TestCompileForConfigRespectsToggles(t *testing.T) {
	src := `
program p
param n = 8
array A[n]
array B[n]
proc main() {
  doall i = 0 to n-1 { A[i] = i }
  call f(A, B)
}
proc f(X[], Y[]) {
  doall i = 0 to n-1 { Y[i] = X[i] }
}
`
	on := machine.Default(machine.SchemeTPI)
	off := on
	off.Interproc = false
	cOn, err := CompileForConfig(src, on)
	if err != nil {
		t.Fatal(err)
	}
	cOff, err := CompileForConfig(src, off)
	if err != nil {
		t.Fatal(err)
	}
	if cOn.Analysis.Interproc == cOff.Analysis.Interproc {
		t.Fatal("Interproc toggle not honored")
	}
}

func TestRunTraced(t *testing.T) {
	c := compileT(t, "program p\nparam n = 8\narray A[n]\nproc main() { doall i = 0 to n-1 { A[i] = i } }")
	var buf strings.Builder
	st, err := RunTraced(c, machine.Default(machine.SchemeTPI), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes == 0 {
		t.Fatal("no writes recorded")
	}
	if !strings.Contains(buf.String(), "W ") || !strings.Contains(buf.String(), "E ") {
		t.Fatalf("trace missing events:\n%s", buf.String())
	}
}

func TestVerifyReportsDivergence(t *testing.T) {
	// Sanity: a correct run does not report divergence (the failure path
	// is exercised by construction in development, not reachable with
	// sound schemes; this pins the success path returning stats).
	c := compileT(t, "program p\nparam n = 8\narray A[n]\nproc main() { doall i = 0 to n-1 { A[i] = i } }")
	st, err := VerifyAgainstOracle(c, machine.Default(machine.SchemeHW))
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Cycles == 0 {
		t.Fatal("stats missing")
	}
}
