package core

import (
	"io"
	"sort"

	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// BuildObsMeta assembles the instrumentation metadata for a compiled
// program under cfg: the variable address map (arrays and scalars) and
// the static source-reference table, indexed by the checker's dense
// RefIDs and annotated with the compiler marks.
func BuildObsMeta(c *Compiled, cfg machine.Config) obs.Meta {
	m := obs.Meta{
		Scheme:    cfg.Scheme.String(),
		Procs:     cfg.Procs,
		LineWords: cfg.LineWords,
		MemWords:  c.Prog.MemWords,
	}
	for _, a := range c.Prog.Arrays {
		m.Arrays = append(m.Arrays, obs.ArraySpan{Name: a.Name, Base: int64(a.Base), Size: a.Size})
	}
	for _, s := range c.Prog.Scalars {
		m.Arrays = append(m.Arrays, obs.ArraySpan{Name: s.Name, Base: int64(s.Addr), Size: 1})
	}
	sort.Slice(m.Arrays, func(i, j int) bool { return m.Arrays[i].Base < m.Arrays[j].Base })

	m.Refs = make([]obs.RefInfo, c.Info.NumRefs)
	for _, ps := range c.Analysis.Procs {
		for _, ns := range ps.Nodes {
			if ns == nil {
				continue
			}
			for _, ref := range ns.Refs {
				if ref.RefID < 0 || ref.RefID >= len(m.Refs) {
					continue
				}
				mk := c.Marks.MarkOf(ref.RefID)
				m.Refs[ref.RefID] = obs.RefInfo{
					Pos:    ref.Pos.String(),
					Proc:   ps.Proc.Name,
					Array:  ref.Array,
					Mark:   mk.Kind.String(),
					Window: mk.Window,
					Write:  ref.Write,
				}
			}
		}
	}
	return m
}

// RunObserved is Run with the instrumentation layer attached at the
// given level; traceW, when non-nil, receives the binary event trace
// (see package obs for the format and decoder). It returns the run
// statistics and the attributed report. With level off and no trace
// writer it degrades to a plain Run and a nil report.
func RunObserved(c *Compiled, cfg machine.Config, level obs.Level, traceW io.Writer) (*stats.Stats, *obs.Report, error) {
	return RunObservedWithOptions(c, cfg, level, traceW, RunOptions{})
}

// RunObservedWithOptions is RunObserved with per-run controls
// (cancellation). Like runSystem, every error path releases the
// system's pooled caches.
func RunObservedWithOptions(c *Compiled, cfg machine.Config, level obs.Level, traceW io.Writer, opts RunOptions) (*stats.Stats, *obs.Report, error) {
	if level == obs.LevelOff && traceW == nil {
		st, err := RunWithOptions(c, cfg, opts)
		return st, nil, err
	}
	lp, err := c.Lowered()
	if err != nil {
		return nil, nil, err
	}
	sys, err := NewSystem(cfg, c.Prog)
	if err != nil {
		return nil, nil, err
	}
	rec, err := obs.NewRecorder(level, BuildObsMeta(c, cfg), traceW)
	if err != nil {
		releaseSystem(sys)
		return nil, nil, err
	}
	r := sim.NewLowered(lp, sys, cfg)
	r.SetObserver(rec)
	if opts.Ctx != nil {
		r.SetContext(opts.Ctx)
	}
	if opts.Progress != nil {
		r.SetProgress(opts.Progress, opts.ProgressEvery)
	}
	if ps, ok := sys.(memsys.Probed); ok {
		ps.SetProbe(rec)
	}
	st, err := r.Run()
	if err != nil {
		releaseSystem(sys)
		return nil, nil, err
	}
	rep, err := rec.Finish(st)
	releaseSystem(sys) // stats and report are extracted; error or not, sys is done
	if err != nil {
		return st, rep, err
	}
	return st, rep, nil
}

// RunResult is the machine-readable run output serialized by
// `tpisim -json`: the full attributed stats schema plus, when
// instrumentation was on, the per-epoch/per-array/per-reference report.
type RunResult struct {
	Program string         `json:"program,omitempty"`
	Scheme  string         `json:"scheme"`
	Procs   int            `json:"procs"`
	Stats   stats.Snapshot `json:"stats"`
	Obs     *obs.Report    `json:"obs,omitempty"`
}

// NewRunResult bundles a run's outputs into the JSON schema.
func NewRunResult(program string, cfg machine.Config, st *stats.Stats, rep *obs.Report) RunResult {
	return RunResult{
		Program: program,
		Scheme:  cfg.Scheme.String(),
		Procs:   cfg.Procs,
		Stats:   st.Snapshot(),
		Obs:     rep,
	}
}
