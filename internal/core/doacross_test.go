package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/marking"
)

// doacrossSrc is a pipelined prefix computation: each iteration's ordered
// section consumes the previous iteration's result within the same epoch
// — the paper's "threads with inter-thread communication" scenario.
const doacrossSrc = `
program pipeline
param n = 64
scalar total = 0.0
array A[n]
array S[n]

proc main() {
  doall i = 0 to n-1 {
    A[i] = 1.0 + (i * 13 % 7) * 0.125
    S[i] = 0.0
  }
  doall i = 1 to n-1 {
    ordered {
      S[i] = S[i-1] + A[i]
    }
  }
  doall i = 0 to n-1 {
    critical {
      total = total + S[i]
    }
  }
}
`

func TestDoacrossOrderedSectionsCorrect(t *testing.T) {
	c := compileT(t, doacrossSrc)
	for _, s := range machine.AllSchemes {
		cfg := machine.Default(s)
		cfg.Procs = 8
		if _, err := VerifyAgainstOracle(c, cfg); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}

func TestDoacrossMarkedBypass(t *testing.T) {
	c := compileT(t, doacrossSrc)
	// Every reference to S inside the ordered section must bypass: the
	// cross-iteration flow happens within one epoch, below timetag
	// granularity.
	bypasses := 0
	for _, name := range []string{"main"} {
		ps := c.Analysis.Procs[name]
		for _, ns := range ps.Nodes {
			for _, r := range ns.Refs {
				if r.InOrdered && !r.Write {
					if c.Marks.MarkOf(r.RefID).Kind != marking.Bypass {
						t.Errorf("ordered read of %s marked %v, want Bypass",
							r.Array, c.Marks.MarkOf(r.RefID).Kind)
					}
					bypasses++
				}
			}
		}
	}
	if bypasses == 0 {
		t.Fatal("no ordered reads found")
	}
}

func TestDoacrossUnderMigrationAndTinyTags(t *testing.T) {
	c := compileT(t, doacrossSrc)
	cfg := machine.Default(machine.SchemeTPI)
	cfg.Procs = 8
	cfg.MigrateSerial = true
	cfg.CyclicSched = true
	cfg.TimetagBits = 2
	if _, err := VerifyAgainstOracle(c, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIntrinsicsCorrect(t *testing.T) {
	src := `
program trig
param n = 32
scalar norm = 0.0
array X[n]
array Y[n]

proc main() {
  doall i = 0 to n-1 {
    X[i] = sin(i * 0.1) + cos(i * 0.2)
    Y[i] = 0.0
  }
  doall i = 0 to n-1 {
    Y[i] = sqrt(abs(X[i])) + exp(min(X[i], 1.0)) * 0.5 + max(X[i], 0.0)
    Y[i] = Y[i] + floor(X[i] * 4.0) * 0.0625
  }
  doall i = 0 to n-1 {
    critical {
      norm = norm + Y[i] * Y[i]
    }
  }
}
`
	c := compileT(t, src)
	for _, s := range machine.AllSchemes {
		cfg := machine.Default(s)
		cfg.Procs = 4
		if _, err := VerifyAgainstOracle(c, cfg); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}

func TestIntrinsicErrors(t *testing.T) {
	for _, src := range []string{
		`program p
scalar s
proc main() { s = nosuch(1.0) }`,
		`program p
scalar s
proc main() { s = min(1.0) }`,
	} {
		if _, err := Compile(src, DefaultCompileOptions()); err == nil {
			t.Errorf("want compile error for:\n%s", src)
		}
	}
}

func TestIntrinsicDomainErrorsSurface(t *testing.T) {
	src := `
program p
scalar s = -1.0
scalar r
proc main() { r = sqrt(s) }
`
	c := compileT(t, src)
	cfg := machine.Default(machine.SchemeTPI)
	if _, err := Run(c, cfg); err == nil {
		t.Fatal("sqrt(-1) must be a runtime error")
	}
}
