package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/stats"
)

func oceanCompiled(t *testing.T, cfg machine.Config) *Compiled {
	t.Helper()
	k, err := bench.Get("ocean", bench.Params{N: 16, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompileForConfig(k.Source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// observedConfigs are the memory-system variants the instrumentation
// cross-check runs against: every scheme plus the two-level TPI build.
func observedConfigs() []machine.Config {
	var cfgs []machine.Config
	for _, s := range machine.AllSchemes {
		cfg := machine.Default(s)
		cfg.Procs = 8
		cfgs = append(cfgs, cfg)
	}
	two := machine.Default(machine.SchemeTPI)
	two.Procs = 8
	two.L1Words = 1024
	cfgs = append(cfgs, two)
	return cfgs
}

// TestObservedCrossCheck is the acceptance check: the per-epoch
// miss-class counts in the attributed report (and in a decoded binary
// trace of the same run) sum exactly to the run's stats.Stats totals,
// for every scheme.
func TestObservedCrossCheck(t *testing.T) {
	for _, cfg := range observedConfigs() {
		name := cfg.Scheme.String()
		if cfg.L1Words > 0 {
			name += "+L1"
		}
		t.Run(name, func(t *testing.T) {
			c := oceanCompiled(t, cfg)
			var buf bytes.Buffer
			st, rep, err := RunObserved(c, cfg, obs.LevelTrace, &buf)
			if err != nil {
				t.Fatal(err)
			}
			if rep == nil {
				t.Fatal("no report")
			}
			checkReportAgainstStats(t, rep, st)

			// The decoded binary trace must replay to the identical report.
			replayed, err := obs.Replay(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if !reflect.DeepEqual(replayed, rep) {
				t.Errorf("replayed report differs from live report")
			}
			checkReportAgainstStats(t, replayed, st)
		})
	}
}

func checkReportAgainstStats(t *testing.T, rep *obs.Report, st *stats.Stats) {
	t.Helper()
	if got, want := rep.ReadMissTotals(), stats.CountsOf(st.ReadMisses); got != want {
		t.Errorf("per-epoch read-miss totals = %+v, stats say %+v", got, want)
	}
	if got, want := rep.WriteMissTotals(), stats.CountsOf(st.WriteMisses); got != want {
		t.Errorf("per-epoch write-miss totals = %+v, stats say %+v", got, want)
	}
	var reads, writes, readHits, writeHits, stall int64
	for _, e := range rep.Epochs {
		reads += e.Reads
		writes += e.Writes
		readHits += e.ReadHits
		writeHits += e.WriteHits
		stall += e.ReadStallCycles
	}
	if reads != st.Reads || writes != st.Writes {
		t.Errorf("per-epoch reference totals %d/%d, stats say %d/%d", reads, writes, st.Reads, st.Writes)
	}
	if readHits != st.ReadHits || writeHits != st.WriteHits {
		t.Errorf("per-epoch hit totals %d/%d, stats say %d/%d", readHits, writeHits, st.ReadHits, st.WriteHits)
	}
	if stall != st.MissLatencySum {
		t.Errorf("per-epoch read stall %d, stats MissLatencySum %d", stall, st.MissLatencySum)
	}
	// Per-processor attribution must also cover every read.
	var procReads int64
	for _, p := range rep.Procs {
		procReads += p.Reads
	}
	if procReads != st.Reads {
		t.Errorf("per-proc reads %d, stats say %d", procReads, st.Reads)
	}
	// The latency histogram holds exactly one entry per read miss.
	var hist int64
	for _, b := range rep.Latency {
		hist += b.Count
	}
	if hist != st.TotalReadMisses() {
		t.Errorf("latency histogram holds %d misses, stats say %d", hist, st.TotalReadMisses())
	}
	// Every reference carries a static RefID, so per-reference miss
	// attribution must cover every classified miss.
	var refMisses int64
	for _, r := range rep.Refs {
		refMisses += r.Misses.Total()
	}
	if want := st.TotalReadMisses() + st.TotalWriteMisses(); refMisses != want {
		t.Errorf("per-ref misses %d, stats say %d", refMisses, want)
	}
}

// TestObservedDoesNotPerturb: instrumentation must not change the
// simulation — identical stats with and without the recorder.
func TestObservedDoesNotPerturb(t *testing.T) {
	cfg := machine.Default(machine.SchemeTPI)
	cfg.Procs = 8
	c := oceanCompiled(t, cfg)
	plain, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	observed, _, err := RunObserved(c, cfg, obs.LevelCounters, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Snapshot(), observed.Snapshot()) {
		t.Errorf("observed run diverges from plain run:\nplain    %+v\nobserved %+v",
			plain.Snapshot(), observed.Snapshot())
	}
}

// TestRunResultJSONSchema: the `tpisim -json` payload round-trips
// through the exported schema for every scheme (the golden shape check).
func TestRunResultJSONSchema(t *testing.T) {
	for _, cfg := range observedConfigs() {
		c := oceanCompiled(t, cfg)
		st, rep, err := RunObserved(c, cfg, obs.LevelCounters, nil)
		if err != nil {
			t.Fatal(err)
		}
		res := NewRunResult("ocean", cfg, st, rep)
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("%s: marshal: %v", cfg.Scheme, err)
		}
		var back RunResult
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", cfg.Scheme, err)
		}
		if !reflect.DeepEqual(res, back) {
			t.Errorf("%s: JSON round-trip changed the result", cfg.Scheme)
		}
		if back.Stats.Reads != st.Reads || back.Stats.ReadMisses.Array() != st.ReadMisses {
			t.Errorf("%s: stats schema dropped counters", cfg.Scheme)
		}
		if back.Stats.WriteMisses.Total() != st.TotalWriteMisses() {
			t.Errorf("%s: write-miss decomposition lost in JSON", cfg.Scheme)
		}
	}
}

// TestObsMetaRefs: the meta table is dense over the checker's RefIDs and
// carries marks and positions.
func TestObsMetaRefs(t *testing.T) {
	cfg := machine.Default(machine.SchemeTPI)
	c := oceanCompiled(t, cfg)
	m := BuildObsMeta(c, cfg)
	if len(m.Refs) != c.Info.NumRefs {
		t.Fatalf("meta has %d refs, checker assigned %d", len(m.Refs), c.Info.NumRefs)
	}
	missing := 0
	for _, r := range m.Refs {
		if r.Pos == "" {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d of %d refs missing source positions", missing, len(m.Refs))
	}
	if len(m.Arrays) == 0 {
		t.Fatal("meta has no array spans")
	}
	for i := 1; i < len(m.Arrays); i++ {
		prev, cur := m.Arrays[i-1], m.Arrays[i]
		if cur.Base < prev.Base+prev.Size {
			t.Errorf("array spans overlap: %+v then %+v", prev, cur)
		}
	}
}
