package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/parallelize"
	"repro/internal/pfl"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestMarkingReportGolden pins the complete compiler output (epoch flow
// graph shapes, reference marking, windows, reasons) for the Figure-1
// example. Any analysis change that alters a single mark or window shows
// up as a diff here; regenerate deliberately with `go test -run Golden
// -update ./internal/core/`.
func TestMarkingReportGolden(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "figure1.pfl"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(string(src), DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := c.Marks.Report()

	golden := filepath.Join("testdata", "figure1.marks.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("marking report changed; run `go test -run Golden -update ./internal/core/` if intended.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestAutoparMarkingGolden pins the toolchain output for the sequential
// example: the auto-parallelizer's decisions and the resulting marking.
func TestAutoparMarkingGolden(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "sequential.pfl"))
	if err != nil {
		t.Fatal(err)
	}
	ast, err := pfl.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pfl.Check(ast); err != nil {
		t.Fatal(err)
	}
	rep, err := parallelize.Run(ast)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(pfl.Format(ast), DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := rep.String() + "\n" + c.Marks.Report()

	golden := filepath.Join("testdata", "sequential.toolchain.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("toolchain output changed; regenerate with -update if intended.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
