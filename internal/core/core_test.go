package core

import (
	"testing"

	"repro/internal/machine"
)

// stencilSrc exercises producer/consumer flow, stencils with false
// sharing, serial reductions, a time-stepping loop, and a procedure call.
const stencilSrc = `
program stencil
param n = 32
scalar resid = 0.0
array A[n][n]
array B[n][n]
array W[n]

proc main() {
  doall i = 0 to n-1 {
    W[i] = 1.0 + i * 0.001
    for j = 0 to n-1 {
      A[i][j] = i * n + j
      B[i][j] = 0.0
    }
  }
  for t = 0 to 3 {
    doall i = 1 to n-2 {
      for j = 1 to n-2 {
        B[i][j] = (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]) * 0.25 * W[i]
      }
    }
    doall i = 1 to n-2 {
      for j = 1 to n-2 {
        A[i][j] = B[i][j] * W[i]
        A[i][j] = A[i][j] + B[i][j] * 0.0625
      }
    }
  }
  call accumulate(A)
}

proc accumulate(X[][]) {
  doall i = 0 to n-1 {
    critical {
      resid = resid + X[i][i]
    }
  }
}
`

func compileT(t *testing.T, src string) *Compiled {
	t.Helper()
	c, err := Compile(src, DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAllSchemesMatchOracle(t *testing.T) {
	c := compileT(t, stencilSrc)
	for _, s := range machine.AllSchemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := machine.Default(s)
			cfg.Procs = 8
			st, err := VerifyAgainstOracle(c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if st.Reads == 0 || st.Writes == 0 {
				t.Fatalf("no traffic recorded: %+v", st)
			}
			t.Logf("%s", st)
		})
	}
}

func TestSchemesMatchOracleUnderMigration(t *testing.T) {
	c := compileT(t, stencilSrc)
	for _, s := range machine.AllSchemes {
		cfg := machine.Default(s)
		cfg.Procs = 8
		cfg.MigrateSerial = true
		cfg.CyclicSched = true
		if _, err := VerifyAgainstOracle(c, cfg); err != nil {
			t.Fatalf("%s with migration: %v", s, err)
		}
	}
}

func TestTinyTimetagStillCorrect(t *testing.T) {
	// 2-bit timetags force constant resets; correctness must survive.
	c := compileT(t, stencilSrc)
	cfg := machine.Default(machine.SchemeTPI)
	cfg.Procs = 8
	cfg.TimetagBits = 2
	st, err := VerifyAgainstOracle(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.TimetagResets == 0 {
		t.Fatal("2-bit timetags must trigger resets on this workload")
	}
}

func TestFlashResetAblationCorrect(t *testing.T) {
	c := compileT(t, stencilSrc)
	cfg := machine.Default(machine.SchemeTPI)
	cfg.Procs = 8
	cfg.TimetagBits = 4
	cfg.FlashReset = true
	if _, err := VerifyAgainstOracle(c, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMissRateOrdering(t *testing.T) {
	// The paper's headline: TPI and HW are comparable; both far better
	// than SC and BASE on miss rate.
	c := compileT(t, stencilSrc)
	rates := map[machine.Scheme]float64{}
	for _, s := range machine.AllSchemes {
		cfg := machine.Default(s)
		cfg.Procs = 8
		st, err := Run(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rates[s] = st.MissRate()
	}
	t.Logf("miss rates: %v", rates)
	if !(rates[machine.SchemeBase] > rates[machine.SchemeSC]) {
		t.Errorf("BASE (%f) should miss more than SC (%f): SC keeps intra-task reuse",
			rates[machine.SchemeBase], rates[machine.SchemeSC])
	}
	if !(rates[machine.SchemeSC] > rates[machine.SchemeTPI]) {
		t.Errorf("SC (%f) should miss more than TPI (%f)", rates[machine.SchemeSC], rates[machine.SchemeTPI])
	}
	// TPI within a small factor of HW.
	if rates[machine.SchemeTPI] > 5*rates[machine.SchemeHW]+0.01 {
		t.Errorf("TPI (%f) should be comparable to HW (%f)", rates[machine.SchemeTPI], rates[machine.SchemeHW])
	}
}

func TestAnalysisAblationsStillCorrect(t *testing.T) {
	// Disabling the compiler analyses must never break correctness — only
	// performance.
	for _, interproc := range []bool{true, false} {
		for _, reuse := range []bool{true, false} {
			c, err := Compile(stencilSrc, CompileOptions{
				Interproc:      interproc,
				FirstReadReuse: reuse,
				AlignWords:     4,
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg := machine.Default(machine.SchemeTPI)
			cfg.Procs = 8
			cfg.Interproc = interproc
			cfg.FirstReadReuse = reuse
			if _, err := VerifyAgainstOracle(c, cfg); err != nil {
				t.Fatalf("interproc=%v reuse=%v: %v", interproc, reuse, err)
			}
		}
	}
}

func TestNonAffineSubscriptsCorrect(t *testing.T) {
	// The paper's Figure-1 motivation: X(f(i)) with a runtime index
	// cannot be analyzed; the compiler must fall back to conservative
	// Time-Reads and the result must still match the oracle.
	src := `
program gather
param n = 24
array IDX[n]
array X[n]
array Y[n]
proc main() {
  doall i = 0 to n-1 {
    IDX[i] = (i * 7) % n
    X[i] = i
  }
  doall i = 0 to n-1 {
    Y[i] = X[IDX[i]]
  }
  doall i = 0 to n-1 {
    X[i] = X[i] + Y[(i + IDX[i]) % n]
  }
}
`
	c := compileT(t, src)
	for _, s := range machine.AllSchemes {
		cfg := machine.Default(s)
		cfg.Procs = 4
		if _, err := VerifyAgainstOracle(c, cfg); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}

func TestConditionalFlowCorrect(t *testing.T) {
	src := `
program branchy
param n = 16
scalar phase = 1.0
array A[n]
array B[n]
proc main() {
  doall i = 0 to n-1 { A[i] = i }
  if (phase > 0.0) {
    doall i = 0 to n-1 { B[i] = A[i] * 2.0 }
  } else {
    doall i = 0 to n-1 { B[i] = 0.0 - A[i] }
  }
  phase = 0.0 - phase
  if (phase > 0.0) {
    doall i = 0 to n-1 { A[i] = B[i] + 1.0 }
  } else {
    doall i = 0 to n-1 { A[i] = B[i] - 1.0 }
  }
}
`
	c := compileT(t, src)
	for _, s := range machine.AllSchemes {
		cfg := machine.Default(s)
		cfg.Procs = 4
		if _, err := VerifyAgainstOracle(c, cfg); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}

func TestExecutionTimeOrdering(t *testing.T) {
	c := compileT(t, stencilSrc)
	cycles := map[machine.Scheme]int64{}
	for _, s := range machine.AllSchemes {
		cfg := machine.Default(s)
		cfg.Procs = 8
		st, err := Run(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cycles[s] = st.Cycles
	}
	t.Logf("cycles: %v", cycles)
	if !(cycles[machine.SchemeBase] > cycles[machine.SchemeTPI]) {
		t.Errorf("BASE (%d cycles) must be slower than TPI (%d)", cycles[machine.SchemeBase], cycles[machine.SchemeTPI])
	}
	if !(cycles[machine.SchemeSC] > cycles[machine.SchemeTPI]) {
		t.Errorf("SC (%d cycles) must be slower than TPI (%d)", cycles[machine.SchemeSC], cycles[machine.SchemeTPI])
	}
}
