package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/parallelize"
	"repro/internal/pfl"
)

// sequentialStencil is the stencil benchmark written as plain sequential
// code — the form the paper's toolchain starts from before Polaris.
const sequentialStencil = `
program seqstencil
param n = 24
array A[n][n]
array B[n][n]
array W[n]

proc main() {
  for i = 0 to n-1 {
    W[i] = 1.0 + i * 0.001
    for j = 0 to n-1 {
      A[i][j] = i * n + j
      B[i][j] = 0.0
    }
  }
  for t = 0 to 2 {
    for i = 1 to n-2 {
      for j = 1 to n-2 {
        B[i][j] = (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]) * 0.25 * W[i]
      }
    }
    for i = 1 to n-2 {
      for j = 1 to n-2 {
        A[i][j] = B[i][j]
      }
    }
  }
}
`

// compileParallelized runs the auto-parallelizer then the full pipeline.
func compileParallelized(t *testing.T, src string) (*Compiled, *parallelize.Report) {
	t.Helper()
	ast, err := pfl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pfl.Check(ast); err != nil {
		t.Fatal(err)
	}
	rep, err := parallelize.Run(ast)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(pfl.Format(ast), DefaultCompileOptions())
	if err != nil {
		t.Fatalf("parallelized program does not compile: %v\n%s", err, pfl.Format(ast))
	}
	return c, rep
}

func TestAutoParallelizePipeline(t *testing.T) {
	c, rep := compileParallelized(t, sequentialStencil)
	// The two interior sweeps and the init loop must parallelize; the
	// time loop must not.
	if got := rep.NumParallelized(); got != 3 {
		t.Fatalf("parallelized %d loops, want 3:\n%s", got, rep)
	}
	if c.Info.NumDoalls != 3 {
		t.Fatalf("NumDoalls = %d, want 3", c.Info.NumDoalls)
	}

	// The parallelized program must compute exactly what the sequential
	// original computes.
	orig, err := Compile(sequentialStencil, DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantMem, err := RunOracle(orig)
	if err != nil {
		t.Fatal(err)
	}
	gotMem, err := RunOracle(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantMem) != len(gotMem) {
		t.Fatalf("layout changed: %d vs %d words", len(wantMem), len(gotMem))
	}
	for i := range wantMem {
		if wantMem[i] != gotMem[i] {
			t.Fatalf("parallelization changed results at word %d: %v vs %v", i, wantMem[i], gotMem[i])
		}
	}

	// And every coherence scheme agrees with the oracle on it.
	for _, s := range machine.AllSchemes {
		cfg := machine.Default(s)
		cfg.Procs = 8
		if _, err := VerifyAgainstOracle(c, cfg); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}

	// Parallel execution must actually be faster than the serial form.
	cfgT := machine.Default(machine.SchemeTPI)
	stPar, err := Run(c, cfgT)
	if err != nil {
		t.Fatal(err)
	}
	stSer, err := Run(orig, cfgT)
	if err != nil {
		t.Fatal(err)
	}
	if stPar.Cycles*2 > stSer.Cycles {
		t.Errorf("auto-parallelized run (%d cycles) should be much faster than serial (%d)",
			stPar.Cycles, stSer.Cycles)
	}
}

func TestAutoParallelizeIsIdempotent(t *testing.T) {
	ast, err := pfl.Parse(sequentialStencil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pfl.Check(ast); err != nil {
		t.Fatal(err)
	}
	if _, err := parallelize.Run(ast); err != nil {
		t.Fatal(err)
	}
	first := pfl.Format(ast)
	rep2, err := parallelize.Run(ast)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.NumParallelized() != 0 {
		t.Fatalf("second pass parallelized %d more loops", rep2.NumParallelized())
	}
	if pfl.Format(ast) != first {
		t.Fatal("second pass changed the program")
	}
}

// randomSequential emits a random sequential program from a mix of
// parallelizable patterns (maps, stencils, reductions) and inherently
// serial ones (recurrences, scalar overwrites).
func randomSequential(seed int64) string {
	r := newDetRand(seed)
	var b strings.Builder
	b.WriteString("program seq\nparam n = 16\nscalar acc = 0.0\nscalar tmp = 0.0\n")
	b.WriteString("array A[n]\narray B[n]\narray C[n][n]\n\nproc main() {\n")
	b.WriteString("  for i = 0 to n-1 { A[i] = i * 0.5  B[i] = 1.0 }\n")
	b.WriteString("  for i = 0 to n-1 { for j = 0 to n-1 { C[i][j] = (i + j) * 0.01 } }\n")
	nc := 3 + r.Intn(4)
	for k := 0; k < nc; k++ {
		switch r.Intn(6) {
		case 0: // independent map
			fmt.Fprintf(&b, "  for i = 0 to n-1 { A[i] = B[i] * %.2f + %.2f }\n", 0.3+r.Float64(), r.Float64())
		case 1: // stencil into the other array
			b.WriteString("  for i = 1 to n-2 { B[i] = A[i-1] + A[i+1] }\n")
		case 2: // reduction
			b.WriteString("  for i = 0 to n-1 { acc = acc + A[i] * 0.125 }\n")
		case 3: // recurrence (must stay serial)
			b.WriteString("  for i = 1 to n-1 { A[i] = A[i-1] * 0.5 + B[i] }\n")
		case 4: // 2-D row sweep
			fmt.Fprintf(&b, "  for i = 0 to n-1 { for j = 0 to n-1 { C[i][j] = C[i][j] * %.2f } }\n", 0.4+r.Float64()*0.4)
		case 5: // scalar pipeline (serial)
			b.WriteString("  for i = 0 to n-1 { tmp = tmp * 0.9 + A[i]  B[i] = tmp }\n")
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// newDetRand avoids importing math/rand twice with different names.
func newDetRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestAutoParallelizeRandomProgramsPreserveSemantics(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := randomSequential(seed)
		orig, err := Compile(src, DefaultCompileOptions())
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		want, err := RunOracle(orig)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		ast, err := pfl.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pfl.Check(ast); err != nil {
			t.Fatal(err)
		}
		rep, err := parallelize.Run(ast)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		par, err := Compile(pfl.Format(ast), DefaultCompileOptions())
		if err != nil {
			t.Fatalf("seed %d: parallelized does not compile: %v\n%s", seed, err, pfl.Format(ast))
		}
		got, err := RunOracle(par)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("seed %d: semantics changed at word %d (%v vs %v); %d loops parallelized\n%s",
					seed, i, want[i], got[i], rep.NumParallelized(), pfl.Format(ast))
			}
		}
		// Every scheme must agree with the oracle on the parallel form.
		for _, s := range []machine.Scheme{machine.SchemeTPI, machine.SchemeHW} {
			cfg := machine.Default(s)
			cfg.Procs = 4
			if _, err := VerifyAgainstOracle(par, cfg); err != nil {
				t.Fatalf("seed %d %s: %v\n%s", seed, s, err, pfl.Format(ast))
			}
		}
	}
}
