package core

import (
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/machine"
)

// TestConcurrentRun is the safety contract the svc compile cache depends
// on: one Compiled shared by many goroutines (each running its own
// simulation, across every scheme) must produce bit-identical statistics
// — Compiled is immutable after Compile, and all mutable run state is
// per-Run. Run under -race in CI.
func TestConcurrentRun(t *testing.T) {
	c := compileT(t, stencilSrc)
	const goroutines = 8
	for _, s := range machine.AllSchemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel() // schemes also overlap, sharing the same Compiled
			cfg := machine.Default(s)
			cfg.Procs = 8

			snaps := make([][]byte, goroutines)
			errs := make([]error, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					st, err := Run(c, cfg)
					if err != nil {
						errs[g] = err
						return
					}
					snaps[g], errs[g] = json.Marshal(st.Snapshot())
				}(g)
			}
			wg.Wait()
			for g := 0; g < goroutines; g++ {
				if errs[g] != nil {
					t.Fatalf("goroutine %d: %v", g, errs[g])
				}
				if string(snaps[g]) != string(snaps[0]) {
					t.Fatalf("goroutine %d snapshot diverges:\n%s\nvs\n%s", g, snaps[g], snaps[0])
				}
			}
		})
	}
}
