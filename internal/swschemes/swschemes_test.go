package swschemes

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/stats"
)

func baseCfg(s machine.Scheme) machine.Config {
	c := machine.Default(s)
	c.Procs = 2
	c.CacheWords = 64
	return c
}

func TestBaseNeverCaches(t *testing.T) {
	s := NewBase(baseCfg(machine.SchemeBase), 256)
	s.EpochBoundary(1)
	s.Write(0, 10, 2.5, false)
	for i := 0; i < 5; i++ {
		v, lat := s.Read(0, 10, memsys.ReadRegular, 0)
		if v != 2.5 {
			t.Fatalf("read %d = %v", i, v)
		}
		if lat <= s.Cfg.HitCycles {
			t.Fatal("BASE reads are always remote")
		}
	}
	if s.St.ReadHits != 0 {
		t.Fatal("BASE must record no hits")
	}
	if s.St.ReadMisses[stats.MissBypass] != 5 {
		t.Fatalf("bypass misses = %d, want 5", s.St.ReadMisses[stats.MissBypass])
	}
	if s.St.ReadTrafficWords != 5 || s.St.WriteTrafficWords != 1 {
		t.Fatalf("traffic = %d/%d", s.St.ReadTrafficWords, s.St.WriteTrafficWords)
	}
}

func TestSCRegularReadsCache(t *testing.T) {
	s := NewSC(baseCfg(machine.SchemeSC), 256)
	s.EpochBoundary(1)
	s.Memory.InitWord(8, 4.5)
	if v, _ := s.Read(0, 8, memsys.ReadRegular, 0); v != 4.5 {
		t.Fatal("miss fill")
	}
	v, lat := s.Read(0, 8, memsys.ReadRegular, 0)
	if v != 4.5 || lat != s.Cfg.HitCycles {
		t.Fatalf("regular re-read must hit: v=%v lat=%d", v, lat)
	}
	// spatial locality: the fill brought the whole line, so a neighbour
	// word hits at hit latency with the line's fill-time contents.
	if v, lat := s.Read(0, 9, memsys.ReadRegular, 0); v != 0 || lat != s.Cfg.HitCycles {
		t.Fatalf("neighbour read v=%v lat=%d (want cached 0, hit)", v, lat)
	}
}

func TestSCTimeReadsBypass(t *testing.T) {
	s := NewSC(baseCfg(machine.SchemeSC), 256)
	s.EpochBoundary(1)
	s.Write(0, 16, 1.0, false) // cached
	s.Memory.Write(16, 9.0, 1, 1)
	v, lat := s.Read(0, 16, memsys.ReadTime, 5)
	if v != 9.0 {
		t.Fatalf("bypass read = %v, want memory value 9.0", v)
	}
	if lat <= s.Cfg.HitCycles {
		t.Fatal("bypass always pays the remote latency")
	}
	// ... and refreshes the stale cached copy in place so later covered
	// (regular) reads are sound.
	v, lat = s.Read(0, 16, memsys.ReadRegular, 0)
	if v != 9.0 || lat != s.Cfg.HitCycles {
		t.Fatalf("covered read after bypass: v=%v lat=%d", v, lat)
	}
}

func TestSCCriticalWriteSelfInvalidates(t *testing.T) {
	s := NewSC(baseCfg(machine.SchemeSC), 256)
	s.EpochBoundary(1)
	s.Write(0, 24, 1.0, false)
	s.Write(0, 24, 2.0, true)
	if line, w, ok := s.caches[0].Lookup(24); ok && line.ValidWord(w) {
		t.Fatal("critical store must drop the writer's cached word")
	}
	if s.Memory.Read(24) != 2.0 {
		t.Fatal("critical store must reach memory")
	}
}

func TestSCWriteCoalescing(t *testing.T) {
	s := NewSC(baseCfg(machine.SchemeSC), 256)
	s.EpochBoundary(1)
	for i := 0; i < 4; i++ {
		s.Write(0, 32, float64(i), false)
	}
	if s.St.WriteTrafficWords != 1 || s.St.WritesCoalesced != 3 {
		t.Fatalf("traffic=%d coalesced=%d", s.St.WriteTrafficWords, s.St.WritesCoalesced)
	}
}

func TestSchemeNames(t *testing.T) {
	if NewBase(baseCfg(machine.SchemeBase), 64).Name() != "BASE" {
		t.Fatal("BASE name")
	}
	if NewSC(baseCfg(machine.SchemeSC), 64).Name() != "SC" {
		t.Fatal("SC name")
	}
}
