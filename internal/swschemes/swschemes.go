// Package swschemes implements the paper's two software-side comparison
// schemes:
//
//   - BASE: no caching of shared data at all. Every shared reference is a
//     remote memory access. This is the "rely on the user" baseline of
//     machines like the Cray T3D.
//   - SC: software cache-bypass. Compiler-identified potentially-stale
//     references bypass the cache and fetch from memory; everything else
//     caches with write-through. SC keeps intra-task reuse but no
//     intertask locality.
package swschemes

import (
	"math"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/prog"
	"repro/internal/stats"
)

// Base is the uncached-shared-data scheme.
type Base struct {
	*memsys.Core
}

// NewBase builds a BASE system.
func NewBase(cfg machine.Config, memWords int64) *Base {
	return &Base{Core: memsys.NewCore(cfg, memWords)}
}

// Name implements memsys.System.
func (s *Base) Name() string { return "BASE" }

// HostShardable implements memsys.Sharded: BASE keeps no per-reference
// cross-processor state at all, so the reference paths shard trivially.
func (s *Base) HostShardable() bool { return true }

// Read implements memsys.System: every read is a remote word fetch.
func (s *Base) Read(p int, addr prog.Word, kind memsys.ReadKind, window int) (float64, int64) {
	ln := s.LaneFor(p)
	ln.St.Reads++
	ln.St.ReadMisses[stats.MissBypass]++
	ln.St.ReadTrafficWords++
	ln.Inject(2)
	lat := s.WordMissLatencyFor(p, addr)
	ln.St.MissLatencySum += lat
	return ln.Value(addr), lat
}

// Write implements memsys.System: every write is a remote word store; the
// write buffer hides the latency.
func (s *Base) Write(p int, addr prog.Word, val float64, crit bool) int64 {
	ln := s.LaneFor(p)
	ln.St.Writes++
	ln.St.WriteMisses[stats.MissBypass]++
	ln.Write(addr, val, p, s.Epoch)
	ln.St.WriteTrafficWords++
	ln.Inject(1)
	if s.Cfg.SeqConsistency {
		lat := s.WordMissLatencyFor(p, addr)
		ln.St.WriteMissLatencySum += lat
		return lat
	}
	return 0
}

// EpochBoundary implements memsys.System.
func (s *Base) EpochBoundary(epoch int64) int64 {
	s.Epoch = epoch
	return 0
}

// StreamCapable implements memsys.Streamer.
func (s *Base) StreamCapable() bool { return true }

// InitReadCursor implements memsys.Streamer: every BASE read is the
// inlined uncached remote word fetch.
func (s *Base) InitReadCursor(c *memsys.ReadCursor, p int, kind memsys.ReadKind, window int, addr0 prog.Word) {
	*c = memsys.ReadCursor{Mode: memsys.StreamBase, Core: s.Core, Ln: s.LaneFor(p), Proc: p}
}

// InitWriteCursor implements memsys.Streamer.
func (s *Base) InitWriteCursor(c *memsys.WriteCursor, p int, addr0 prog.Word) {
	*c = memsys.WriteCursor{
		Mode: memsys.StreamBase, Core: s.Core, Ln: s.LaneFor(p),
		Proc: p, Epoch: s.Epoch, SeqC: s.Cfg.SeqConsistency,
	}
}

// SC is the software cache-bypass scheme.
type SC struct {
	*memsys.Core
	caches   []*cache.Cache
	trackers []*cache.Tracker
	wbufs    []*cache.WriteBuffer
}

// NewSC builds an SC system.
func NewSC(cfg machine.Config, memWords int64) *SC {
	s := &SC{Core: memsys.NewCore(cfg, memWords)}
	s.caches = make([]*cache.Cache, cfg.Procs)
	s.trackers = make([]*cache.Tracker, cfg.Procs)
	s.wbufs = make([]*cache.WriteBuffer, cfg.Procs)
	return s
}

// procState returns p's cache and tracker (building them, and the write
// buffer, on first use). Safe under host parallelism: each processor is
// owned by exactly one worker, so concurrent first-touches write
// distinct slice elements.
func (s *SC) procState(p int) (*cache.Cache, *cache.Tracker) {
	if cc := s.caches[p]; cc != nil {
		return cc, s.trackers[p]
	}
	cc := cache.New(s.Cfg.CacheWords, s.Cfg.LineWords, s.Cfg.Assoc)
	s.caches[p] = cc
	s.trackers[p] = cache.NewTracker(s.Memory.Size())
	s.wbufs[p] = cache.NewWriteBuffer(s.Cfg.WriteBufferCache)
	return cc, s.trackers[p]
}

// Name implements memsys.System.
func (s *SC) Name() string { return "SC" }

// ReleaseCaches implements memsys.Releaser. The fields are nilled so any
// use after release fails loudly instead of corrupting a pooled cache.
func (s *SC) ReleaseCaches() {
	for p, cc := range s.caches {
		if cc == nil {
			continue
		}
		cache.Release(cc)
		cache.ReleaseTracker(s.trackers[p])
		cache.ReleaseWriteBuffer(s.wbufs[p])
	}
	s.caches, s.trackers, s.wbufs = nil, nil, nil
}

// HostShardable implements memsys.Sharded: SC's caches, trackers, and
// write buffers are strictly per-processor; everything shared flows
// through the lane.
func (s *SC) HostShardable() bool { return true }

// Read implements memsys.System. Potentially-stale reads (Time-Read or
// bypass marks) fetch the word from memory without validating the cache;
// a present copy is refreshed in place so later covered reads of the same
// task stay correct. Regular reads cache normally.
func (s *SC) Read(p int, addr prog.Word, kind memsys.ReadKind, window int) (float64, int64) {
	ln := s.LaneFor(p)
	ln.St.Reads++
	cc, tr := s.procState(p)

	if kind != memsys.ReadRegular {
		v := ln.Value(addr)
		if line, w, ok := cc.Lookup(addr); ok && line.ValidWord(w) {
			line.Vals[w] = v
		}
		ln.St.ReadMisses[stats.MissBypass]++
		ln.St.ReadTrafficWords++
		ln.Inject(2)
		lat := s.WordMissLatencyFor(p, addr)
		ln.St.MissLatencySum += lat
		return v, lat
	}

	if line, w, ok := cc.Lookup(addr); ok && line.ValidWord(w) {
		ln.St.ReadHits++
		line.Used[w] = true
		cc.Touch(line)
		ln.CheckFresh(addr, line.Vals[w], p, "sc regular hit")
		return line.Vals[w], s.Cfg.HitCycles
	}
	ln.St.ReadMisses[s.ClassifyMissLane(ln, tr, addr)]++
	nl, nw := s.FillLane(ln, cc, tr, addr, s.Epoch, s.Epoch)
	ln.St.ReadTrafficWords += int64(s.Cfg.LineWords)
	ln.Inject(int64(s.Cfg.LineWords) + 1)
	lat := s.LineMissLatencyFor(p, addr)
	ln.St.MissLatencySum += lat
	return nl.Vals[nw], lat
}

// Write implements memsys.System: write-through, write-validate allocate.
// Critical stores self-invalidate like TPI's.
func (s *SC) Write(p int, addr prog.Word, val float64, crit bool) int64 {
	ln := s.LaneFor(p)
	ln.St.Writes++
	ln.Write(addr, val, p, s.Epoch)
	cc, tr := s.procState(p)
	if crit {
		ln.St.WriteMisses[stats.MissBypass]++
		if line, w, ok := cc.Lookup(addr); ok && line.ValidWord(w) {
			tr.NoteLost(addr, cache.LostInvalTrue, line.TT[w])
			line.InvalidateWord(w)
		}
		ln.St.WriteTrafficWords++
		ln.Inject(1)
		return 0
	}
	line, w, ok := cc.Lookup(addr)
	hit := ok && line.ValidWord(w)
	if hit {
		ln.St.WriteHits++
	} else {
		// Classify before the tracker below records the new residency.
		ln.St.WriteMisses[s.ClassifyMissLane(ln, tr, addr)]++
	}
	if ok {
		line.Vals[w] = val
		line.TT[w] = s.Epoch
		line.Used[w] = true
		cc.Touch(line)
		tr.NoteCached(addr)
	} else {
		v := cc.Victim(addr)
		if v.State != cache.Invalid {
			base := prog.Word(v.Tag * int64(cc.LineWords()))
			for i := 0; i < cc.LineWords(); i++ {
				if v.TT[i] != cache.TTInvalid {
					tr.NoteLost(base+prog.Word(i), cache.LostReplaced, v.TT[i])
				}
			}
			v.InvalidateLine()
		}
		tag, w := cc.Split(addr)
		v.Tag = tag
		v.State = cache.Shared
		v.Vals[w] = val
		v.TT[w] = s.Epoch
		v.Used[w] = true
		cc.Touch(v)
		tr.NoteCached(addr)
	}
	if s.wbufs[p].Write(addr) {
		ln.St.WriteTrafficWords++
		ln.Inject(1)
	} else {
		ln.St.WritesCoalesced++
	}
	if s.Cfg.SeqConsistency {
		lat := s.WordMissLatencyFor(p, addr)
		if !hit {
			ln.St.WriteMissLatencySum += lat
		}
		return lat
	}
	return 0
}

// EpochBoundary implements memsys.System.
func (s *SC) EpochBoundary(epoch int64) int64 {
	s.Epoch = epoch
	for _, wb := range s.wbufs {
		if wb != nil {
			wb.Flush()
		}
	}
	return 0
}

// StreamCapable implements memsys.Streamer.
func (s *SC) StreamCapable() bool { return true }

// InitReadCursor implements memsys.Streamer: regular reads inline the
// cache hit (any valid word hits, so the cut is the minimum timetag);
// marked reads always take SC's bypass path.
func (s *SC) InitReadCursor(c *memsys.ReadCursor, p int, kind memsys.ReadKind, window int, addr0 prog.Word) {
	if kind != memsys.ReadRegular {
		*c = memsys.ReadCursor{Mode: memsys.StreamUncached, Sys: s, Proc: p, Kind: kind, Window: window}
		return
	}
	ln := s.LaneFor(p)
	cc, _ := s.procState(p)
	*c = memsys.ReadCursor{
		Mode: memsys.StreamCached, Sys: s, Core: s.Core, Ln: ln, CC: cc,
		Proc: p, Kind: kind, Window: window, Cut: math.MinInt64,
		Epoch: s.Epoch, HitCycles: s.Cfg.HitCycles, HitCtx: "sc regular hit",
		Fresh: ln.FreshWords(),
	}
}

// InitWriteCursor implements memsys.Streamer: write-through with the
// unconditional tag assignment (PromoteTT false).
func (s *SC) InitWriteCursor(c *memsys.WriteCursor, p int, addr0 prog.Word) {
	cc, tr := s.procState(p)
	*c = memsys.WriteCursor{
		Mode: memsys.StreamCached, Sys: s, Core: s.Core, Ln: s.LaneFor(p),
		CC: cc, Tr: tr, WB: s.wbufs[p],
		Proc: p, Epoch: s.Epoch, WTT: s.Epoch,
		SeqC: s.Cfg.SeqConsistency,
	}
}
