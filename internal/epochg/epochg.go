// Package epochg builds the epoch flow graph (EFG) of a PFL procedure.
//
// The EFG is the paper's "modified flow graph ... [that] contains the
// epoch boundary information as well as the control flows of the
// program". Nodes are epochs: serial sections, DOALL loops, loop headers,
// branches, and procedure calls. Every node entry at runtime increments
// the processors' epoch counters by exactly one, so the static minimum
// path distance between two nodes is a guaranteed lower bound on the
// dynamic epoch-counter distance — the property the Time-Read windows
// rely on for correctness.
//
// The same graph is executable: the simulator walks it node by node, so
// static analysis and dynamic epoch numbering can never diverge.
package epochg

import (
	"fmt"
	"strings"

	"repro/internal/pfl"
)

// Kind classifies EFG nodes.
type Kind int

const (
	// KindEntry is the unique procedure entry node.
	KindEntry Kind = iota
	// KindExit is the unique procedure exit node.
	KindExit
	// KindSerial is a serial section: a statement list executed by one task.
	KindSerial
	// KindHeader is a serial loop header controlling a loop whose body
	// contains epoch boundaries; it evaluates the loop control only.
	KindHeader
	// KindBranch evaluates a condition and transfers to one of two arms.
	KindBranch
	// KindDoall is a parallel loop: its iterations are the epoch's tasks.
	KindDoall
	// KindCall invokes another procedure (whose EFG is entered at runtime).
	KindCall
)

func (k Kind) String() string {
	switch k {
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	case KindSerial:
		return "serial"
	case KindHeader:
		return "header"
	case KindBranch:
		return "branch"
	case KindDoall:
		return "doall"
	case KindCall:
		return "call"
	default:
		return "?"
	}
}

// LoopCtl is the control payload of a KindHeader node.
type LoopCtl struct {
	Var          string
	Lo, Hi, Step pfl.Expr // Step nil means 1
	Body, Exit   *Node
}

// BranchCtl is the control payload of a KindBranch node.
type BranchCtl struct {
	Cond       pfl.Expr
	Then, Else *Node // Else may equal the join node when no else-arm exists
}

// Counts reports whether entering the node advances the epoch counter.
// Only real epochs count: DOALL loops and non-empty serial sections.
// Structural nodes (entry/exit, loop headers, branches, empty serial
// joins) are control bookkeeping executed inside the surrounding epoch,
// matching the paper's model where epochs are parallel loops and serial
// program sections. Static distances and the simulator use the same
// rule, which is what keeps Time-Read windows sound.
func (n *Node) Counts() bool {
	switch n.Kind {
	case KindDoall, KindCall:
		return true
	case KindSerial:
		return len(n.Stmts) > 0
	default:
		return false
	}
}

// Node is one epoch in the EFG.
type Node struct {
	ID   int
	Kind Kind

	// Stmts is the serial payload (KindSerial only): statements that
	// contain no epoch boundary, executed in order by a single task.
	Stmts []pfl.Stmt

	Loop   *LoopCtl       // KindHeader
	Branch *BranchCtl     // KindBranch
	Doall  *pfl.DoallStmt // KindDoall
	Call   *pfl.CallStmt  // KindCall

	Succs []*Node
	Preds []*Node
}

// Graph is the EFG of one procedure.
type Graph struct {
	Proc  *pfl.Proc
	Entry *Node
	Exit  *Node
	Nodes []*Node
}

// ContainsBoundary reports whether a statement contains an epoch boundary
// (a DOALL or a procedure call) anywhere inside.
func ContainsBoundary(s pfl.Stmt) bool {
	switch st := s.(type) {
	case *pfl.DoallStmt, *pfl.CallStmt:
		return true
	case *pfl.ForStmt:
		return blockHasBoundary(st.Body)
	case *pfl.IfStmt:
		if blockHasBoundary(st.Then) {
			return true
		}
		return st.Else != nil && blockHasBoundary(st.Else)
	default:
		return false
	}
}

func blockHasBoundary(b *pfl.Block) bool {
	for _, s := range b.Stmts {
		if ContainsBoundary(s) {
			return true
		}
	}
	return false
}

// Build constructs the EFG for proc.
func Build(proc *pfl.Proc) *Graph {
	g := &Graph{Proc: proc}
	b := &builder{g: g}
	g.Entry = b.newNode(KindEntry)
	frontier := []*Node{g.Entry}
	frontier = b.block(proc.Body, frontier)
	g.Exit = b.newNode(KindExit)
	b.linkAll(frontier, g.Exit)
	return g
}

type builder struct {
	g          *Graph
	openSerial *Node // serial node accepting more statements, or nil
}

func (b *builder) newNode(k Kind) *Node {
	n := &Node{ID: len(b.g.Nodes), Kind: k}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *builder) link(from, to *Node) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) linkAll(from []*Node, to *Node) {
	for _, f := range from {
		b.link(f, to)
	}
}

// serialTarget returns a serial node that can accept more statements,
// creating one if the frontier is not an open serial node.
func (b *builder) serialTarget(frontier []*Node) (*Node, []*Node) {
	if b.openSerial != nil && len(frontier) == 1 && frontier[0] == b.openSerial {
		return b.openSerial, frontier
	}
	n := b.newNode(KindSerial)
	b.linkAll(frontier, n)
	b.openSerial = n
	return n, []*Node{n}
}

// block threads the statements of blk through the graph starting from
// frontier, returning the new frontier.
func (b *builder) block(blk *pfl.Block, frontier []*Node) []*Node {
	for _, s := range blk.Stmts {
		frontier = b.stmt(s, frontier)
	}
	return frontier
}

func (b *builder) stmt(s pfl.Stmt, frontier []*Node) []*Node {
	if !ContainsBoundary(s) {
		n, fr := b.serialTarget(frontier)
		n.Stmts = append(n.Stmts, s)
		return fr
	}
	b.openSerial = nil
	switch st := s.(type) {
	case *pfl.DoallStmt:
		n := b.newNode(KindDoall)
		n.Doall = st
		b.linkAll(frontier, n)
		return []*Node{n}
	case *pfl.CallStmt:
		n := b.newNode(KindCall)
		n.Call = st
		b.linkAll(frontier, n)
		return []*Node{n}
	case *pfl.ForStmt:
		h := b.newNode(KindHeader)
		h.Loop = &LoopCtl{Var: st.Var, Lo: st.Lo, Hi: st.Hi, Step: st.Step}
		b.linkAll(frontier, h)
		// Dedicated body-entry serial node so the header's body target is
		// unambiguous even when the body starts with a boundary statement.
		bodyEntry := b.newNode(KindSerial)
		b.link(h, bodyEntry)
		b.openSerial = bodyEntry
		bodyFr := b.block(st.Body, []*Node{bodyEntry})
		h.Loop.Body = bodyEntry
		b.openSerial = nil
		b.linkAll(bodyFr, h) // back edge
		// Loop exit: control leaves from the header (Loop.Exit is resolved
		// by the next link out of the header).
		return []*Node{h}
	case *pfl.IfStmt:
		br := b.newNode(KindBranch)
		br.Branch = &BranchCtl{Cond: st.Cond}
		b.linkAll(frontier, br)
		thenEntry := b.newNode(KindSerial)
		b.link(br, thenEntry)
		b.openSerial = thenEntry
		thenFr := b.block(st.Then, []*Node{thenEntry})
		br.Branch.Then = thenEntry
		b.openSerial = nil
		elseEntry := b.newNode(KindSerial)
		b.link(br, elseEntry)
		b.openSerial = elseEntry
		elseFr := []*Node{elseEntry}
		if st.Else != nil {
			elseFr = b.block(st.Else, []*Node{elseEntry})
		}
		br.Branch.Else = elseEntry
		b.openSerial = nil
		out := append(append([]*Node{}, thenFr...), elseFr...)
		return out
	default:
		panic(fmt.Sprintf("epochg: statement %T claims boundary but has no expansion", s))
	}
}

// weight is the epoch-counter cost of entering a node.
func weight(n *Node) int {
	if n.Counts() {
		return 1
	}
	return 0
}

// Dist returns the minimum number of epoch-counter increments that occur
// strictly after leaving `from` up to and including entering `to`. Only
// counting nodes (see Counts) contribute. It returns -1 if `to` is
// unreachable from `from`. Dist(n, n) follows cycles through n and can
// legitimately be 0 when a cycle crosses no counting node.
func (g *Graph) Dist(from, to *Node) int {
	// 0/1-weight shortest path (deque BFS).
	const unseen = -1
	dist := make([]int, len(g.Nodes))
	for i := range dist {
		dist[i] = unseen
	}
	type item struct {
		n *Node
		d int
	}
	dq := make([]item, 0, len(g.Nodes))
	push := func(front bool, it item) {
		if front {
			dq = append([]item{it}, dq...)
		} else {
			dq = append(dq, it)
		}
	}
	best := -1
	relax := func(n *Node, d int) {
		if n == to {
			if best == -1 || d < best {
				best = d
			}
			return
		}
		if dist[n.ID] == unseen || d < dist[n.ID] {
			dist[n.ID] = d
			push(weight(n) == 0, item{n, d})
		}
	}
	for _, s := range from.Succs {
		relax(s, weight(s))
	}
	for len(dq) > 0 {
		it := dq[0]
		dq = dq[1:]
		if dist[it.n.ID] != it.d {
			continue
		}
		for _, s := range it.n.Succs {
			relax(s, it.d+weight(s))
		}
	}
	return best
}

// DistFromEntry returns, for every node, the minimum number of increments
// accumulated when entering it from procedure entry (the entry node
// itself at distance 0; only counting nodes add increments).
func (g *Graph) DistFromEntry() []int {
	d := make([]int, len(g.Nodes))
	for i := range d {
		d[i] = -1
	}
	d[g.Entry.ID] = 0
	type item struct {
		n *Node
		c int
	}
	dq := []item{{g.Entry, 0}}
	for len(dq) > 0 {
		it := dq[0]
		dq = dq[1:]
		if d[it.n.ID] != it.c {
			continue
		}
		for _, s := range it.n.Succs {
			nd := it.c + weight(s)
			if d[s.ID] == -1 || nd < d[s.ID] {
				d[s.ID] = nd
				if weight(s) == 0 {
					dq = append([]item{{s, nd}}, dq...)
				} else {
					dq = append(dq, item{s, nd})
				}
			}
		}
	}
	return d
}

// String renders the graph structure for debugging and golden tests.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "efg %s:\n", g.Proc.Name)
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "  n%d %s", n.ID, n.Kind)
		switch n.Kind {
		case KindSerial:
			fmt.Fprintf(&b, " (%d stmts)", len(n.Stmts))
		case KindHeader:
			fmt.Fprintf(&b, " (%s)", n.Loop.Var)
		case KindDoall:
			fmt.Fprintf(&b, " (%s)", n.Doall.Var)
		case KindCall:
			fmt.Fprintf(&b, " (%s)", n.Call.Name)
		}
		b.WriteString(" ->")
		for _, s := range n.Succs {
			fmt.Fprintf(&b, " n%d", s.ID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
