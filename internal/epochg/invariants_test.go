package epochg

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/pfl"
)

// genProgram emits a random structurally-valid PFL program exercising
// nested for/if around doalls.
func genProgram(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("program g\nparam n = 8\nscalar s\narray A[n]\narray B[n]\n\nproc main() {\n")
	var emit func(depth, budget int) int
	emit = func(depth, budget int) int {
		for budget > 0 {
			switch r.Intn(5) {
			case 0:
				fmt.Fprintf(&b, "%sA[%d] = s + %d.0\n", strings.Repeat(" ", depth), r.Intn(8), r.Intn(9))
				budget--
			case 1:
				fmt.Fprintf(&b, "%sdoall i = 0 to n-1 { B[i] = A[i] * 0.5 }\n", strings.Repeat(" ", depth))
				budget--
			case 2:
				if depth > 6 {
					continue
				}
				fmt.Fprintf(&b, "%sfor t%d = 0 to 2 {\n", strings.Repeat(" ", depth), depth)
				budget = emit(depth+1, budget-1)
				fmt.Fprintf(&b, "%s}\n", strings.Repeat(" ", depth))
			case 3:
				if depth > 6 {
					continue
				}
				fmt.Fprintf(&b, "%sif (s > 0.5) {\n", strings.Repeat(" ", depth))
				budget = emit(depth+1, budget-1)
				fmt.Fprintf(&b, "%s} else {\n", strings.Repeat(" ", depth))
				budget = emit(depth+1, budget)
				fmt.Fprintf(&b, "%s}\n", strings.Repeat(" ", depth))
			case 4:
				fmt.Fprintf(&b, "%ss = s * 0.5 + %d.0\n", strings.Repeat(" ", depth), r.Intn(5))
				budget--
			}
		}
		return budget
	}
	emit(1, 6+r.Intn(8))
	b.WriteString("}\n")
	return b.String()
}

func buildGraph(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := pfl.Parse(src)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	if _, err := pfl.Check(prog); err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	return Build(prog.Proc("main"))
}

// TestGraphInvariants checks structural invariants over random programs:
// unique entry/exit, predecessor/successor symmetry, exit reachable from
// every node, every node reachable from entry, and loop headers with a
// body target among their successors.
func TestGraphInvariants(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := buildGraph(t, genProgram(seed))

		// edge symmetry
		for _, n := range g.Nodes {
			for _, s := range n.Succs {
				if !containsNode(s.Preds, n) {
					t.Fatalf("seed %d: edge %d->%d missing pred backlink", seed, n.ID, s.ID)
				}
			}
			for _, p := range n.Preds {
				if !containsNode(p.Succs, n) {
					t.Fatalf("seed %d: pred %d of %d missing succ link", seed, p.ID, n.ID)
				}
			}
		}

		// reachability: every node from entry; exit from every node
		for _, n := range g.Nodes {
			if n == g.Entry {
				continue
			}
			if g.Dist(g.Entry, n) < 0 {
				t.Fatalf("seed %d: node %d (%s) unreachable from entry:\n%s", seed, n.ID, n.Kind, g)
			}
			if n != g.Exit && g.Dist(n, g.Exit) < 0 {
				t.Fatalf("seed %d: exit unreachable from node %d (%s):\n%s", seed, n.ID, n.Kind, g)
			}
		}

		// structural payload consistency
		for _, n := range g.Nodes {
			switch n.Kind {
			case KindHeader:
				if n.Loop == nil || n.Loop.Body == nil || !containsNode(n.Succs, n.Loop.Body) {
					t.Fatalf("seed %d: header %d lacks body successor", seed, n.ID)
				}
			case KindBranch:
				if n.Branch == nil || !containsNode(n.Succs, n.Branch.Then) || !containsNode(n.Succs, n.Branch.Else) {
					t.Fatalf("seed %d: branch %d arm targets missing", seed, n.ID)
				}
			case KindExit:
				if len(n.Succs) != 0 {
					t.Fatalf("seed %d: exit has successors", seed)
				}
			}
		}
	}
}

// TestDistanceProperties checks metric-like properties of the 0/1 distance
// on random graphs: entry distances obey the triangle inequality via any
// sampled midpoint, and Dist is consistent with DistFromEntry.
func TestDistanceProperties(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		g := buildGraph(t, genProgram(seed))
		de := g.DistFromEntry()
		for _, n := range g.Nodes {
			if n == g.Entry {
				continue
			}
			d := g.Dist(g.Entry, n)
			// Dist counts from AFTER leaving entry; DistFromEntry counts
			// entering nodes from entry at 0 — both count the same node
			// entries, so they must agree.
			if d != de[n.ID] {
				t.Fatalf("seed %d: Dist(entry,%d)=%d but DistFromEntry=%d", seed, n.ID, d, de[n.ID])
			}
		}
		// Triangle inequality over sampled triples.
		r := rand.New(rand.NewSource(seed))
		for k := 0; k < 20; k++ {
			a := g.Nodes[r.Intn(len(g.Nodes))]
			b := g.Nodes[r.Intn(len(g.Nodes))]
			c := g.Nodes[r.Intn(len(g.Nodes))]
			ab, bc, ac := g.Dist(a, b), g.Dist(b, c), g.Dist(a, c)
			if ab >= 0 && bc >= 0 && ac >= 0 && ac > ab+bc {
				t.Fatalf("seed %d: triangle violated: d(%d,%d)=%d > %d+%d",
					seed, a.ID, c.ID, ac, ab, bc)
			}
		}
	}
}

// TestCountsSemantics: only doalls, calls, and non-empty serial nodes count.
func TestCountsSemantics(t *testing.T) {
	g := buildGraph(t, `
program p
param n = 4
scalar s
array A[n]
proc main() {
  A[0] = 1.0
  for t = 0 to 2 {
    doall i = 0 to n-1 { A[i] = t }
  }
  if (s > 0.0) {
    doall i = 0 to n-1 { A[i] = 0.0 }
  }
}
`)
	for _, n := range g.Nodes {
		got := n.Counts()
		switch n.Kind {
		case KindDoall, KindCall:
			if !got {
				t.Errorf("node %d (%s) must count", n.ID, n.Kind)
			}
		case KindEntry, KindExit, KindHeader, KindBranch:
			if got {
				t.Errorf("node %d (%s) must not count", n.ID, n.Kind)
			}
		case KindSerial:
			if got != (len(n.Stmts) > 0) {
				t.Errorf("serial node %d: Counts=%v with %d stmts", n.ID, got, len(n.Stmts))
			}
		}
	}
}

func containsNode(ns []*Node, x *Node) bool {
	for _, n := range ns {
		if n == x {
			return true
		}
	}
	return false
}
