package epochg

import (
	"strings"
	"testing"

	"repro/internal/pfl"
)

func mustParse(t *testing.T, src string) *pfl.Program {
	t.Helper()
	prog, err := pfl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pfl.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestBuildStraightLine(t *testing.T) {
	prog := mustParse(t, `
program p
param n = 4
array A[n]
array B[n]
proc main() {
  A[0] = 1
  doall i = 0 to n-1 { B[i] = A[0] }
  A[1] = B[0]
}
`)
	g := Build(prog.Proc("main"))
	// entry -> serial -> doall -> serial -> exit
	kinds := []Kind{}
	n := g.Entry
	for {
		kinds = append(kinds, n.Kind)
		if n.Kind == KindExit {
			break
		}
		if len(n.Succs) != 1 {
			t.Fatalf("node %d has %d succs", n.ID, len(n.Succs))
		}
		n = n.Succs[0]
	}
	want := []Kind{KindEntry, KindSerial, KindDoall, KindSerial, KindExit}
	if len(kinds) != len(want) {
		t.Fatalf("chain = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("chain = %v, want %v", kinds, want)
		}
	}
}

func TestBuildLoopWithDoall(t *testing.T) {
	prog := mustParse(t, `
program p
param n = 4
array A[n]
proc main() {
  for t = 0 to 9 {
    doall i = 0 to n-1 { A[i] = t }
  }
}
`)
	g := Build(prog.Proc("main"))
	var header *Node
	var doall *Node
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindHeader:
			header = n
		case KindDoall:
			doall = n
		}
	}
	if header == nil || doall == nil {
		t.Fatalf("missing header or doall:\n%s", g)
	}
	if header.Loop.Body == nil {
		t.Fatal("loop body target unset")
	}
	// back edge: doall (last body node) -> header
	found := false
	for _, s := range doall.Succs {
		if s == header {
			found = true
		}
	}
	if !found {
		t.Fatalf("no back edge from doall to header:\n%s", g)
	}
	// self-distance of the doall around the loop: the header and
	// body-entry nodes are structural (weight 0), so consecutive dynamic
	// instances of the doall are exactly one epoch apart.
	d := g.Dist(doall, doall)
	if d != 1 {
		t.Fatalf("self distance = %d, want 1 (structural nodes are weightless)", d)
	}
}

func TestBuildIfWithDoall(t *testing.T) {
	prog := mustParse(t, `
program p
param n = 4
scalar s
array A[n]
proc main() {
  if (s > 0) {
    doall i = 0 to n-1 { A[i] = 1 }
  } else {
    A[0] = 2
  }
  A[1] = 3
}
`)
	g := Build(prog.Proc("main"))
	var br *Node
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			br = n
		}
	}
	if br == nil {
		t.Fatalf("no branch node:\n%s", g)
	}
	if br.Branch.Then == nil || br.Branch.Else == nil {
		t.Fatal("branch targets unset")
	}
	if br.Branch.Then == br.Branch.Else {
		t.Fatal("then and else must be distinct entry nodes")
	}
	// both arms must reach the exit
	if g.Dist(br.Branch.Then, g.Exit) < 0 || g.Dist(br.Branch.Else, g.Exit) < 0 {
		t.Fatalf("arms do not reach exit:\n%s", g)
	}
}

func TestDistances(t *testing.T) {
	prog := mustParse(t, `
program p
param n = 4
array A[n]
array B[n]
proc main() {
  doall i = 0 to n-1 { A[i] = i }
  doall i = 0 to n-1 { B[i] = A[i] }
}
`)
	g := Build(prog.Proc("main"))
	var d1, d2 *Node
	for _, n := range g.Nodes {
		if n.Kind == KindDoall {
			if d1 == nil {
				d1 = n
			} else {
				d2 = n
			}
		}
	}
	if got := g.Dist(d1, d2); got != 1 {
		t.Fatalf("Dist(d1,d2) = %d, want 1 (adjacent epochs)", got)
	}
	if got := g.Dist(d2, d1); got != -1 {
		t.Fatalf("Dist(d2,d1) = %d, want -1 (unreachable)", got)
	}
	de := g.DistFromEntry()
	if de[g.Entry.ID] != 0 {
		t.Fatalf("entry distance = %d", de[g.Entry.ID])
	}
	if de[d1.ID] != 1 {
		t.Fatalf("first doall entry distance = %d, want 1", de[d1.ID])
	}
	if de[d2.ID] != 2 {
		t.Fatalf("second doall entry distance = %d, want 2", de[d2.ID])
	}
}

func TestContainsBoundary(t *testing.T) {
	prog := mustParse(t, `
program p
param n = 4
array A[n]
proc main() {
  A[0] = 1
  for i = 0 to n-1 { A[i] = 2 }
  call f(A)
}
proc f(X[]) {
  doall i = 0 to n-1 { X[i] = 3 }
}
`)
	body := prog.Proc("main").Body.Stmts
	if ContainsBoundary(body[0]) {
		t.Error("assignment is not a boundary")
	}
	if ContainsBoundary(body[1]) {
		t.Error("serial for without doall is not a boundary")
	}
	if !ContainsBoundary(body[2]) {
		t.Error("call is a boundary")
	}
}

func TestSerialMerging(t *testing.T) {
	// consecutive serial statements must share one node
	prog := mustParse(t, `
program p
array A[8]
proc main() {
  A[0] = 1
  A[1] = 2
  A[2] = 3
}
`)
	g := Build(prog.Proc("main"))
	serials := 0
	for _, n := range g.Nodes {
		if n.Kind == KindSerial {
			serials++
			if len(n.Stmts) != 3 {
				t.Fatalf("serial node has %d stmts, want 3", len(n.Stmts))
			}
		}
	}
	if serials != 1 {
		t.Fatalf("%d serial nodes, want 1", serials)
	}
}

func TestGraphString(t *testing.T) {
	prog := mustParse(t, `
program p
param n = 4
array A[n]
proc main() {
  A[0] = 1
  doall i = 0 to n-1 { A[i] = i }
}
`)
	g := Build(prog.Proc("main"))
	out := g.String()
	for _, want := range []string{"efg main:", "entry", "serial (1 stmts)", "doall (i)", "exit"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}
