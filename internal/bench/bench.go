// Package bench provides the six benchmark kernels used throughout the
// evaluation. Each is a PFL program whose computational skeleton and —
// more importantly — whose *sharing pattern* models one of the Perfect
// Club codes the paper simulates:
//
//	SPEC77  spectral weather: transform passes over rows with read-only
//	        trigonometric tables, plus transposes that move every element
//	        across processors (cross-epoch producer/consumer).
//	OCEAN   ocean circulation: red/black relaxation sweeps with stencil
//	        neighbours (line-grain false sharing for HW) and a residual
//	        reduction through a critical section.
//	FLO52   transonic flow (Euler): multi-stage smoothing on a fine grid
//	        with strided injection to a coarse grid and prolongation back
//	        (stride-2 sections).
//	QCD2    lattice gauge: link updates gathered through a precomputed
//	        neighbour table (non-affine subscripts force conservative
//	        marking; scattered reads hit remote-dirty lines under HW).
//	TRFD    two-electron integral transform: chained matrix products with
//	        in-place k-accumulation — the paper's redundant-write storm
//	        that floods TPI's write-through traffic unless the write
//	        buffer is organized as a cache.
//	ARC2D   implicit finite difference (ADI): row sweeps then column
//	        sweeps with serial recurrences, so each half-step consumes
//	        data the other half-step produced across all processors.
//
// Array sizes are parameters so tests run in milliseconds while
// cmd/experiments uses fuller sizes.
package bench

import (
	"fmt"
	"sort"
)

// Params sizes a kernel.
type Params struct {
	// N is the principal grid dimension.
	N int
	// Steps is the number of outer time steps.
	Steps int
}

// DefaultParams is small and fast (unit tests).
func DefaultParams() Params { return Params{N: 24, Steps: 2} }

// PaperParams is the fuller size used by the experiment harness.
func PaperParams() Params { return Params{N: 48, Steps: 3} }

// Kernel is one benchmark program.
type Kernel struct {
	Name        string
	Description string
	Source      string
}

// Names lists the kernels in the paper's reporting order.
var Names = []string{"spec77", "ocean", "flo52", "qcd2", "trfd", "arc2d"}

// Kernels returns all six kernels at the given size.
func Kernels(p Params) []Kernel {
	ks := []Kernel{
		{"spec77", "spectral transform + transpose, read-only tables", spec77(p)},
		{"ocean", "red/black relaxation with critical reduction", ocean(p)},
		{"flo52", "multi-stage Euler smoothing with coarse-grid transfer", flo52(p)},
		{"qcd2", "lattice link update through a neighbour table", qcd2(p)},
		{"trfd", "integral transform with in-place accumulation", trfd(p)},
		{"arc2d", "ADI row/column sweeps with serial recurrences", arc2d(p)},
	}
	return ks
}

// Get returns one kernel by name.
func Get(name string, p Params) (Kernel, error) {
	for _, k := range Kernels(p) {
		if k.Name == name {
			return k, nil
		}
	}
	known := append([]string(nil), Names...)
	sort.Strings(known)
	return Kernel{}, fmt.Errorf("bench: unknown kernel %q (known: %v)", name, known)
}

func spec77(p Params) string {
	return fmt.Sprintf(`
program spec77
param n = %d
param steps = %d
scalar norm = 0.0
array GRID[n][n]
array SPEC[n][n]
array TRIG[n]

proc main() {
  doall i = 0 to n-1 {
    TRIG[i] = 1.0 + (i * 37 %% 19) * 0.01
    for j = 0 to n-1 {
      GRID[i][j] = (i * n + j) * 0.001
      SPEC[i][j] = 0.0
    }
  }
  for t = 1 to steps {
    call transform(GRID, SPEC)
    call transpose(SPEC, GRID)
    call transform(GRID, SPEC)
    call transpose(SPEC, GRID)
    doall i = 0 to n-1 {
      critical {
        norm = norm + GRID[i][0]
      }
    }
  }
}

proc transform(X[][], Y[][]) {
  doall i = 0 to n-1 {
    for j = 1 to n-2 {
      Y[i][j] = X[i][j-1] * TRIG[j] + X[i][j+1] * TRIG[j-1] + X[i][j] * 0.5
    }
    Y[i][0] = X[i][0] * TRIG[0]
    Y[i][n-1] = X[i][n-1] * TRIG[n-1]
  }
}

proc transpose(X[][], Y[][]) {
  doall i = 0 to n-1 {
    for j = 0 to n-1 {
      Y[i][j] = X[j][i]
    }
  }
}
`, p.N, p.Steps)
}

func ocean(p Params) string {
	return fmt.Sprintf(`
program ocean
param n = %d
param steps = %d
scalar resid = 0.0
array U[n][n]
array V[n][n]
array F[n][n]

proc main() {
  doall i = 0 to n-1 {
    for j = 0 to n-1 {
      U[i][j] = (i + j) * 0.01
      V[i][j] = 0.0
      F[i][j] = (i * j %% 13) * 0.001
    }
  }
  for t = 1 to steps {
    doall i = 1 to n-2 {
      for j = 1 to n-2 {
        V[i][j] = (U[i-1][j] + U[i+1][j] + U[i][j-1] + U[i][j+1]) * 0.25 + F[i][j]
      }
    }
    doall i = 1 to n-2 {
      for j = 1 to n-2 {
        U[i][j] = (V[i-1][j] + V[i+1][j] + V[i][j-1] + V[i][j+1]) * 0.25 + F[i][j]
      }
    }
    doall i = 1 to n-2 {
      critical {
        resid = resid + (U[i][i] - V[i][i])
      }
    }
  }
}
`, p.N, p.Steps)
}

func flo52(p Params) string {
	// nc = n/2 coarse grid.
	return fmt.Sprintf(`
program flo52
param n = %d
param nc = %d
param steps = %d
array W[n][n]
array R[n][n]
array WC[nc][nc]
array RC[nc][nc]

proc main() {
  doall i = 0 to n-1 {
    for j = 0 to n-1 {
      W[i][j] = (i - j) * 0.002
      R[i][j] = 0.0
    }
  }
  doall i = 0 to nc-1 {
    for j = 0 to nc-1 {
      WC[i][j] = 0.0
      RC[i][j] = 0.0
    }
  }
  for t = 1 to steps {
    call smooth(W, R)
    call inject(R, RC)
    call smooth_coarse(RC, WC)
    call prolong(WC, W)
    call smooth(W, R)
  }
}

proc smooth(X[][], Y[][]) {
  doall i = 1 to n-2 {
    for j = 1 to n-2 {
      Y[i][j] = X[i][j] + (X[i-1][j] + X[i+1][j] - 2.0 * X[i][j]) * 0.2
    }
  }
  doall i = 1 to n-2 {
    for j = 1 to n-2 {
      X[i][j] = Y[i][j]
    }
  }
}

proc inject(X[][], Y[][]) {
  doall i = 0 to nc-1 {
    for j = 0 to nc-1 {
      Y[i][j] = X[2*i][2*j]
    }
  }
}

proc smooth_coarse(X[][], Y[][]) {
  doall i = 1 to nc-2 {
    for j = 1 to nc-2 {
      Y[i][j] = (X[i-1][j] + X[i+1][j] + X[i][j-1] + X[i][j+1]) * 0.25
    }
  }
}

proc prolong(X[][], Y[][]) {
  doall i = 1 to nc-2 {
    for j = 1 to nc-2 {
      Y[2*i][2*j] = Y[2*i][2*j] + X[i][j] * 0.5
    }
  }
}
`, p.N, p.N/2, p.Steps)
}

func qcd2(p Params) string {
	// sites = N*N lattice points flattened; links = 4 directions.
	return fmt.Sprintf(`
program qcd2
param sites = %d
param links = 4
param steps = %d
scalar action = 0.0
array G[sites][links]
array GNEW[sites][links]
array NBR[sites]

proc main() {
  doall s = 0 to sites-1 {
    NBR[s] = (s * 31 + 17) %% sites
    for m = 0 to links-1 {
      G[s][m] = 1.0 + (s + m) * 0.0001
      GNEW[s][m] = 0.0
    }
  }
  for t = 1 to steps {
    doall s = 0 to sites-1 {
      for m = 0 to links-1 {
        GNEW[s][m] = G[s][m] * 0.5 + G[NBR[s]][m] * 0.25 + G[NBR[NBR[s]]][m] * 0.25
      }
    }
    doall s = 0 to sites-1 {
      for m = 0 to links-1 {
        G[s][m] = GNEW[s][m]
      }
    }
    doall s = 0 to sites-1 {
      critical {
        action = action + G[s][0]
      }
    }
  }
}
`, p.N*p.N/2, p.Steps)
}

func trfd(p Params) string {
	return fmt.Sprintf(`
program trfd
param n = %d
param steps = %d
array A[n][n]
array B[n][n]
array X[n][n]
array Y[n][n]

proc main() {
  doall i = 0 to n-1 {
    for j = 0 to n-1 {
      A[i][j] = (i * 3 + j) * 0.001
      B[i][j] = (i - 2 * j) * 0.001
      X[i][j] = 0.0
      Y[i][j] = 0.0
    }
  }
  for t = 1 to steps {
    call matmul(A, B, X)
    call matmul(X, A, Y)
    call rescale(Y, B)
  }
}

proc matmul(P[][], Q[][], Z[][]) {
  doall i = 0 to n-1 {
    for j = 0 to n-1 {
      Z[i][j] = 0.0
    }
    for k = 0 to n-1 {
      for j = 0 to n-1 {
        Z[i][j] = Z[i][j] + P[i][k] * Q[k][j]
      }
    }
  }
}

proc rescale(P[][], Q[][]) {
  doall i = 0 to n-1 {
    for j = 0 to n-1 {
      Q[i][j] = P[i][j] * 0.001 + Q[i][j] * 0.5
    }
  }
}
`, p.N, p.Steps)
}

func arc2d(p Params) string {
	return fmt.Sprintf(`
program arc2d
param n = %d
param steps = %d
array U[n][n]
array L[n][n]
array D[n][n]

proc main() {
  doall i = 0 to n-1 {
    for j = 0 to n-1 {
      U[i][j] = (i + 2 * j) * 0.001
      L[i][j] = 0.1
      D[i][j] = 1.0 + (i %% 5) * 0.01
    }
  }
  for t = 1 to steps {
    doall i = 0 to n-1 {
      for j = 1 to n-1 {
        U[i][j] = U[i][j] - L[i][j] * U[i][j-1]
      }
      for j = 0 to n-1 {
        U[i][j] = U[i][j] / D[i][j]
      }
    }
    doall j = 0 to n-1 {
      for i = 1 to n-1 {
        U[i][j] = U[i][j] - L[i][j] * U[i-1][j]
      }
      for i = 0 to n-1 {
        U[i][j] = U[i][j] / D[i][j]
      }
    }
  }
}
`, p.N, p.Steps)
}

// SequentialKernels returns sequential (pre-Polaris) variants of two
// kernels for the whole-toolchain experiment: the auto-parallelizer must
// recover the DOALL structure (including reductions) before marking and
// simulation.
func SequentialKernels(p Params) []Kernel {
	return []Kernel{
		{"ocean-seq", "sequential red/black relaxation with a residual reduction", oceanSeq(p)},
		{"trfd-seq", "sequential integral transform", trfdSeq(p)},
	}
}

func oceanSeq(p Params) string {
	return fmt.Sprintf(`
program oceanseq
param n = %d
param steps = %d
scalar resid = 0.0
array U[n][n]
array V[n][n]
array F[n][n]

proc main() {
  for i = 0 to n-1 {
    for j = 0 to n-1 {
      U[i][j] = (i + j) * 0.01
      V[i][j] = 0.0
      F[i][j] = (i * j %% 13) * 0.001
    }
  }
  for t = 1 to steps {
    for i = 1 to n-2 {
      for j = 1 to n-2 {
        V[i][j] = (U[i-1][j] + U[i+1][j] + U[i][j-1] + U[i][j+1]) * 0.25 + F[i][j]
      }
    }
    for i = 1 to n-2 {
      for j = 1 to n-2 {
        U[i][j] = (V[i-1][j] + V[i+1][j] + V[i][j-1] + V[i][j+1]) * 0.25 + F[i][j]
      }
    }
    for i = 1 to n-2 {
      resid = resid + (U[i][i] - V[i][i])
    }
  }
}
`, p.N, p.Steps)
}

func trfdSeq(p Params) string {
	return fmt.Sprintf(`
program trfdseq
param n = %d
param steps = %d
array A[n][n]
array B[n][n]
array X[n][n]
array Y[n][n]

proc main() {
  for i = 0 to n-1 {
    for j = 0 to n-1 {
      A[i][j] = (i * 3 + j) * 0.001
      B[i][j] = (i - 2 * j) * 0.001
      X[i][j] = 0.0
      Y[i][j] = 0.0
    }
  }
  for t = 1 to steps {
    call matmulseq(A, B, X)
    call matmulseq(X, A, Y)
    for i = 0 to n-1 {
      for j = 0 to n-1 {
        B[i][j] = Y[i][j] * 0.001 + B[i][j] * 0.5
      }
    }
  }
}

proc matmulseq(P[][], Q[][], Z[][]) {
  for i = 0 to n-1 {
    for j = 0 to n-1 {
      Z[i][j] = 0.0
    }
    for k = 0 to n-1 {
      for j = 0 to n-1 {
        Z[i][j] = Z[i][j] + P[i][k] * Q[k][j]
      }
    }
  }
}
`, p.N, p.Steps)
}
