package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

func TestAllKernelsCompile(t *testing.T) {
	for _, k := range Kernels(DefaultParams()) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			c, err := core.Compile(k.Source, core.DefaultCompileOptions())
			if err != nil {
				t.Fatalf("%s does not compile: %v", k.Name, err)
			}
			if c.Marks.NumTimeRead == 0 {
				t.Errorf("%s produced no Time-Reads; it cannot exercise the coherence scheme", k.Name)
			}
		})
	}
}

func TestAllKernelsAllSchemesMatchOracle(t *testing.T) {
	for _, k := range Kernels(DefaultParams()) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			c, err := core.Compile(k.Source, core.DefaultCompileOptions())
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range machine.AllSchemes {
				cfg := machine.Default(s)
				cfg.Procs = 8
				if _, err := core.VerifyAgainstOracle(c, cfg); err != nil {
					t.Fatalf("%s under %s: %v", k.Name, s, err)
				}
			}
		})
	}
}

func TestGet(t *testing.T) {
	if _, err := Get("trfd", DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("nonesuch", DefaultParams()); err == nil {
		t.Fatal("want error for unknown kernel")
	}
}

func TestTRFDRedundantWrites(t *testing.T) {
	// The paper's TRFD claim: heavy redundant write traffic under plain
	// write-through, eliminated by the write-buffer-as-cache.
	k, err := Get("trfd", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(k.Source, core.DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	plain := machine.Default(machine.SchemeTPI)
	plain.Procs = 8
	plain.WriteBufferCache = false
	stPlain, err := core.Run(c, plain)
	if err != nil {
		t.Fatal(err)
	}
	wbc := plain
	wbc.WriteBufferCache = true
	stWbc, err := core.Run(c, wbc)
	if err != nil {
		t.Fatal(err)
	}
	if stWbc.WritesCoalesced == 0 {
		t.Fatal("TRFD must coalesce redundant writes")
	}
	if stWbc.WriteTrafficWords >= stPlain.WriteTrafficWords {
		t.Fatalf("wb-cache write traffic %d must undercut plain %d",
			stWbc.WriteTrafficWords, stPlain.WriteTrafficWords)
	}
	// The accumulation loop writes each Z word ~n times per epoch: the
	// reduction should be substantial, not marginal.
	if float64(stWbc.WriteTrafficWords) > 0.5*float64(stPlain.WriteTrafficWords) {
		t.Errorf("expected >2x write-traffic reduction, got %d -> %d",
			stPlain.WriteTrafficWords, stWbc.WriteTrafficWords)
	}
}

func TestQCD2RemoteDirtyLatency(t *testing.T) {
	// The paper's miss-latency table: HW's average miss latency rises on
	// QCD2-like codes (remote dirty lines) while TPI's stays flat.
	k, err := Get("qcd2", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(k.Source, core.DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfgT := machine.Default(machine.SchemeTPI)
	cfgT.Procs = 8
	stT, err := core.Run(c, cfgT)
	if err != nil {
		t.Fatal(err)
	}
	cfgH := machine.Default(machine.SchemeHW)
	cfgH.Procs = 8
	stH, err := core.Run(c, cfgH)
	if err != nil {
		t.Fatal(err)
	}
	if !(stH.AvgMissLatency() > stT.AvgMissLatency()) {
		t.Errorf("HW avg miss latency (%.1f) should exceed TPI's (%.1f) on qcd2",
			stH.AvgMissLatency(), stT.AvgMissLatency())
	}
}

func TestSequentialKernelsSoak(t *testing.T) {
	// Paper-size front-to-back toolchain soak; the quick variant runs in
	// the E21 experiment tests.
	if testing.Short() {
		t.Skip("paper-size soak")
	}
	for _, k := range SequentialKernels(PaperParams()) {
		c, err := core.Compile(k.Source, core.DefaultCompileOptions())
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		cfg := machine.Default(machine.SchemeTPI)
		if _, err := core.VerifyAgainstOracle(c, cfg); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
	}
}

func TestPaperSizeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size soak")
	}
	for _, name := range []string{"ocean", "trfd"} {
		k, err := Get(name, PaperParams())
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.Compile(k.Source, core.DefaultCompileOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range machine.AllSchemes {
			cfg := machine.Default(s)
			if _, err := core.VerifyAgainstOracle(c, cfg); err != nil {
				t.Fatalf("%s under %s: %v", name, s, err)
			}
		}
	}
}
