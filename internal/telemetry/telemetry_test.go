package telemetry

import (
	"io"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.", Labels{"outcome": "done"})
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value %d, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "Depth.", nil)
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge value %v, want 1.5", got)
	}
}

// TestHistogramBuckets pins the boundary semantics: an observation equal
// to an upper bound lands in that bucket (le is inclusive), and values
// beyond the last bound land in +Inf.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{1, 2, 5}, nil)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1, 1} // le=1, le=2, le=5, +Inf (non-cumulative)
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d count %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 6 {
		t.Errorf("count %d, want 6", got)
	}
	if got := h.Sum(); got != 18 {
		t.Errorf("sum %v, want 18", got)
	}
}

func TestHistogramBucketValidation(t *testing.T) {
	r := NewRegistry()
	// Unsorted input is sorted; a trailing +Inf is stripped (implicit).
	h := r.Histogram("a", "", []float64{5, 1}, nil)
	if len(h.upper) != 2 || h.upper[0] != 1 || h.upper[1] != 5 {
		t.Fatalf("upper bounds %v, want [1 5]", h.upper)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate bucket did not panic")
		}
	}()
	r.Histogram("b", "", []float64{1, 1, 2}, nil)
}

func TestVecIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "Requests.", "method")
	a := v.With("GET")
	b := v.With("GET")
	if a != b {
		t.Fatal("same label values returned distinct counters")
	}
	if v.With("POST") == a {
		t.Fatal("different label values shared a counter")
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9leading", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "", nil)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("label name with colon did not panic")
			}
		}()
		r.Counter("ok_name", "", Labels{"a:b": "x"})
	}()
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("type conflict did not panic")
			}
		}()
		r.Gauge("x_total", "", nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate label set did not panic")
			}
		}()
		r.Counter("x_total", "", nil)
	}()
}

// TestConcurrentScrape hammers every metric kind from 8 goroutines while
// another scrapes the registry; run with -race this is the data-race
// proof for the lock-free update paths.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", nil)
	g := r.Gauge("g", "", nil)
	h := r.Histogram("h", "", nil, nil)
	v := r.CounterVec("v_total", "", "k")

	const goroutines = 8
	const iters = 2000
	var workers, scraper sync.WaitGroup
	stop := make(chan struct{})
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}
	}()
	for i := 0; i < goroutines; i++ {
		i := i
		workers.Add(1)
		go func() {
			defer workers.Done()
			for n := 0; n < iters; n++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(n%7) * 0.01)
				v.With(string(rune('a' + i))).Inc()
			}
		}()
	}
	workers.Wait()
	close(stop)
	scraper.Wait()

	if got := c.Value(); got != goroutines*iters {
		t.Fatalf("counter %d, want %d", got, goroutines*iters)
	}
	if got := h.Count(); got != goroutines*iters {
		t.Fatalf("histogram count %d, want %d", got, goroutines*iters)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	p, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("final scrape does not parse: %v", err)
	}
	got, err := p.Value("c_total", nil)
	if err != nil || got != goroutines*iters {
		t.Fatalf("parsed c_total %v (err %v), want %d", got, err, goroutines*iters)
	}
}
