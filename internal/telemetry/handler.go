package telemetry

import "net/http"

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format — the one-liner auxiliary listeners (tpiserved
// -debug-addr, tpisweep -metrics-addr) mount instead of hand-writing
// the header dance.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}
