package telemetry

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition byte-for-byte: families
// sorted by name, samples sorted by label set, HELP/TYPE comments,
// cumulative histogram buckets with the implicit +Inf.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs.", Labels{"outcome": "done"}).Add(3)
	r.Counter("jobs_total", "Jobs.", Labels{"outcome": "failed"})
	r.Gauge("queue_depth", "Depth.", nil).Set(2)
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.5, 2}, nil)
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(4)

	const want = `# HELP jobs_total Jobs.
# TYPE jobs_total counter
jobs_total{outcome="done"} 3
jobs_total{outcome="failed"} 0
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.5"} 2
latency_seconds_bucket{le="2"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 4.75
latency_seconds_count 3
# HELP queue_depth Depth.
# TYPE queue_depth gauge
queue_depth 2
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestParseRoundTrip feeds the writer's output back through the parser
// and checks types, help, and individual sample lookups.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("reqs_total", "Requests by method.", "method").With("GET").Add(7)
	r.GaugeFunc("uptime_seconds", "Uptime.", nil, func() float64 { return 12.5 })
	h := r.Histogram("dur", "", []float64{1}, Labels{"op": "run"})
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	p, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Types["reqs_total"] != "counter" || p.Types["uptime_seconds"] != "gauge" || p.Types["dur"] != "histogram" {
		t.Fatalf("types %v", p.Types)
	}
	if p.Help["reqs_total"] != "Requests by method." {
		t.Fatalf("help %q", p.Help["reqs_total"])
	}
	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"reqs_total", map[string]string{"method": "GET"}, 7},
		{"uptime_seconds", nil, 12.5},
		{"dur_bucket", map[string]string{"op": "run", "le": "1"}, 1},
		{"dur_bucket", map[string]string{"op": "run", "le": "+Inf"}, 2},
		{"dur_sum", map[string]string{"op": "run"}, 3.5},
		{"dur_count", map[string]string{"op": "run"}, 2},
	}
	for _, c := range checks {
		got, err := p.Value(c.name, c.labels)
		if err != nil {
			t.Errorf("%s%v: %v", c.name, c.labels, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s%v = %v, want %v", c.name, c.labels, got, c.want)
		}
	}
}

// TestLabelEscaping round-trips label values containing quotes,
// backslashes, and newlines.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	val := `sp"am\eggs` + "\nham"
	r.Counter("esc_total", "", Labels{"v": val}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	p, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse: %v\nexposition:\n%s", err, b.String())
	}
	got, err := p.Value("esc_total", map[string]string{"v": val})
	if err != nil || got != 1 {
		t.Fatalf("escaped label lookup: %v (err %v)\nexposition:\n%s", got, err, b.String())
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		`x{le="1"`,
		"x{a=unquoted} 1\n",
		"x 1e\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted malformed input", bad)
		}
	}
}
