// Prometheus text-format exposition (version 0.0.4) and a minimal
// hand-rolled parser for it. The parser exists so tests and smoke checks
// can verify the exposition without importing a Prometheus client: it
// accepts exactly the subset the writer emits (HELP/TYPE comments,
// `name{labels} value` samples) plus unlabeled samples from other
// writers of the same subset.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the scrape response Content-Type for the text format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus
// text format, families sorted by name, samples sorted by label set —
// deterministic output for golden tests and clean diffs between scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		metrics := append([]sampler(nil), f.metrics...)
		f.mu.Unlock()
		if len(metrics) == 0 {
			continue
		}
		sort.SliceStable(metrics, func(i, j int) bool {
			return metrics[i].labelString() < metrics[j].labelString()
		})
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, m := range metrics {
			m.sampleLines(&b, f.name)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one `name{labels} value` line.
func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Sample is one parsed exposition line.
type Sample struct {
	Name   string            // family name including _bucket/_sum/_count suffixes
	Labels map[string]string // nil when unlabeled
	Value  float64
}

// Parsed is the result of ParseText: family types plus every sample.
type Parsed struct {
	// Types maps family name → "counter"/"gauge"/"histogram".
	Types map[string]string
	// Help maps family name → HELP text.
	Help map[string]string
	// Samples in exposition order.
	Samples []Sample
}

// Value returns the single sample matching name and the given label
// pairs exactly (order-insensitive), or an error naming the miss.
func (p *Parsed) Value(name string, labels map[string]string) (float64, error) {
	for _, s := range p.Samples {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, nil
		}
	}
	return 0, fmt.Errorf("telemetry: no sample %s%v", name, labels)
}

// ParseText parses Prometheus text-format exposition. It is strict
// about line shape (a malformed line is an error, not a skip) so the
// golden tests actually verify the writer.
func ParseText(r io.Reader) (*Parsed, error) {
	p := &Parsed{Types: make(map[string]string), Help: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE comment", lineNo)
				}
				p.Types[fields[2]] = fields[3]
			} else if len(fields) >= 3 && fields[1] == "HELP" {
				help := ""
				if len(fields) == 4 {
					help = fields[3]
				}
				p.Help[fields[2]] = help
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		p.Samples = append(p.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		s.Name = rest[:brace]
		end := strings.IndexByte(rest, '}')
		if end < brace {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[brace+1 : end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return s, fmt.Errorf("no value in %q", line)
		}
		s.Name = rest[:sp]
		rest = strings.TrimSpace(rest[sp+1:])
	}
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %w", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		name := s[:eq]
		if !validLabelName(name) && name != "le" {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", name)
		}
		// Scan the quoted value honoring backslash escapes.
		val, rest, err := scanQuoted(s)
		if err != nil {
			return nil, fmt.Errorf("label %q: %w", name, err)
		}
		labels[name] = val
		s = rest
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' after label %q", name)
			}
			s = s[1:]
		}
	}
	return labels, nil
}

// scanQuoted consumes a leading double-quoted string with \\, \", and
// \n escapes, returning the unescaped value and the remainder.
func scanQuoted(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}
