package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches runtime.ReadMemStats between scrapes: ReadMemStats
// briefly stops the world, so back-to-back gauge evaluations inside one
// scrape (and aggressive scrapers) share a sample no older than the
// refresh interval.
type memSampler struct {
	mu    sync.Mutex
	every time.Duration
	last  time.Time
	ms    runtime.MemStats
	clock func() time.Time
}

func (s *memSampler) get() *runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	if s.last.IsZero() || now.Sub(s.last) >= s.every {
		runtime.ReadMemStats(&s.ms)
		s.last = now
	}
	return &s.ms
}

// RegisterRuntimeMetrics registers Go runtime health gauges (goroutines,
// heap, GC) on the registry, evaluated at scrape time. refresh bounds
// how often the memory stats are re-sampled (0 selects 1s); the
// goroutine count is always live.
func RegisterRuntimeMetrics(r *Registry, refresh time.Duration) {
	if refresh <= 0 {
		refresh = time.Second
	}
	s := &memSampler{every: refresh, clock: time.Now}
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
		func() float64 { return float64(s.get().HeapAlloc) })
	r.GaugeFunc("go_memstats_heap_sys_bytes", "Bytes of heap obtained from the OS.", nil,
		func() float64 { return float64(s.get().HeapSys) })
	r.GaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.", nil,
		func() float64 { return float64(s.get().HeapObjects) })
	r.GaugeFunc("go_memstats_next_gc_bytes", "Heap size target of the next GC cycle.", nil,
		func() float64 { return float64(s.get().NextGC) })
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.", nil,
		func() float64 { return float64(s.get().NumGC) })
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", nil,
		func() float64 { return float64(s.get().PauseTotalNs) / 1e9 })
}
