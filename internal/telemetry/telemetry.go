// Package telemetry is the live-observability registry: a
// zero-dependency set of atomic counters, gauges, and fixed-bucket
// histograms with Prometheus text-format exposition (see prometheus.go).
// It is the operational complement to package obs — obs attributes one
// run's misses after the fact; telemetry answers "what is the server and
// simulator doing right now" in a format fleet tooling can scrape.
//
// All metric updates are lock-free atomics, safe to call from the
// simulator's epoch barrier and the job server's worker pool while a
// scraper walks the registry. Registration (Counter, GaugeFunc,
// HistogramVec, ...) panics on an invalid or conflicting name: metric
// wiring is program structure, and a bad name is a bug, not an input
// error.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are constant name→value pairs attached at registration time
// (rendered sorted by name). For per-call label values use a Vec type.
type Labels map[string]string

// Registry holds metric families. The zero value is not usable; build
// with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one exposition block: all samples sharing a metric name.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"

	mu      sync.Mutex
	metrics []sampler
	seen    map[string]struct{} // rendered label sets, to reject duplicates
}

// sampler is anything that can contribute sample lines to a family.
type sampler interface {
	labelString() string
	// sampleLines appends "name{labels} value" lines; name is the family
	// name (histograms derive _bucket/_sum/_count from it).
	sampleLines(b *strings.Builder, name string)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family for (name, typ, help), creating it on first
// use and panicking on a conflicting re-registration.
func (r *Registry) lookup(name, help, typ string) *family {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, seen: make(map[string]struct{})}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	return f
}

// add attaches a sampler to the family, rejecting duplicate label sets.
func (f *family) add(s sampler) {
	ls := s.labelString()
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.seen[ls]; dup {
		panic(fmt.Sprintf("telemetry: metric %s%s registered twice", f.name, ls))
	}
	f.seen[ls] = struct{}{}
	f.metrics = append(f.metrics, s)
}

// ---- Counter ----

// Counter is a monotonically increasing integer metric.
type Counter struct {
	labels string
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are a programming error and panic.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("telemetry: counter decremented by %d", n))
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) labelString() string { return c.labels }

func (c *Counter) sampleLines(b *strings.Builder, name string) {
	writeSample(b, name, c.labels, float64(c.v.Load()))
}

// Counter registers (or extends) a counter family and returns the
// handle for the given constant labels.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	f := r.lookup(name, help, "counter")
	c := &Counter{labels: renderLabels(labels)}
	f.add(c)
	return c
}

// CounterFunc registers a counter whose value is read at scrape time
// (e.g. mirroring a counter owned by another subsystem). fn must be
// monotonic non-decreasing and safe for concurrent calls.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	f := r.lookup(name, help, "counter")
	f.add(&funcMetric{labels: renderLabels(labels), fn: fn})
}

// ---- Gauge ----

// Gauge is a float-valued metric that can go up and down.
type Gauge struct {
	labels string
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (atomically, CAS loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) labelString() string { return g.labels }

func (g *Gauge) sampleLines(b *strings.Builder, name string) {
	writeSample(b, name, g.labels, g.Value())
}

// Gauge registers a gauge and returns its handle.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	f := r.lookup(name, help, "gauge")
	g := &Gauge{labels: renderLabels(labels)}
	f.add(g)
	return g
}

// GaugeFunc registers a gauge evaluated at scrape time. fn must be safe
// for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	f := r.lookup(name, help, "gauge")
	f.add(&funcMetric{labels: renderLabels(labels), fn: fn})
}

// funcMetric backs CounterFunc and GaugeFunc.
type funcMetric struct {
	labels string
	fn     func() float64
}

func (m *funcMetric) labelString() string { return m.labels }

func (m *funcMetric) sampleLines(b *strings.Builder, name string) {
	writeSample(b, name, m.labels, m.fn())
}

// ---- Histogram ----

// DefBuckets are latency buckets in seconds, spanning sub-millisecond
// cache hits to minute-scale sweeps.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram counts observations into fixed buckets (upper bounds,
// cumulative at exposition, +Inf implicit).
type Histogram struct {
	labels  string
	upper   []float64 // sorted, strictly increasing, +Inf excluded
	counts  []atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCount returns the non-cumulative count of bucket i (the +Inf
// overflow bucket is index len(buckets)).
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i].Load() }

func (h *Histogram) labelString() string { return h.labels }

func (h *Histogram) sampleLines(b *strings.Builder, name string) {
	var cum int64
	for i, u := range h.upper {
		cum += h.counts[i].Load()
		writeSample(b, name+"_bucket", mergeLE(h.labels, formatFloat(u)), float64(cum))
	}
	cum += h.counts[len(h.upper)].Load()
	writeSample(b, name+"_bucket", mergeLE(h.labels, "+Inf"), float64(cum))
	writeSample(b, name+"_sum", h.labels, h.Sum())
	writeSample(b, name+"_count", h.labels, float64(cum))
}

func newHistogram(labels string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	for i := 1; i < len(upper); i++ {
		if upper[i] == upper[i-1] {
			panic(fmt.Sprintf("telemetry: duplicate histogram bucket %v", upper[i]))
		}
	}
	if math.IsInf(upper[len(upper)-1], +1) {
		upper = upper[:len(upper)-1] // +Inf is implicit
	}
	return &Histogram{labels: labels, upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
}

// Histogram registers a histogram with the given bucket upper bounds
// (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	f := r.lookup(name, help, "histogram")
	h := newHistogram(renderLabels(labels), buckets)
	f.add(h)
	return h
}

// ---- Vecs ----

// vec is the shared child-map machinery of the *Vec types.
type vec[M sampler] struct {
	fam        *family
	labelNames []string
	mu         sync.Mutex
	children   map[string]M
	make       func(labels string) M
}

func newVec[M sampler](f *family, labelNames []string, mk func(labels string) M) *vec[M] {
	for _, n := range labelNames {
		mustValidLabel(n)
	}
	return &vec[M]{fam: f, labelNames: labelNames, children: make(map[string]M), make: mk}
}

// with returns the child for the given label values, creating it on
// first use.
func (v *vec[M]) with(values ...string) M {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d",
			v.fam.name, len(v.labelNames), len(values)))
	}
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	if m, ok := v.children[key]; ok {
		return m
	}
	ls := Labels{}
	for i, n := range v.labelNames {
		ls[n] = values[i]
	}
	m := v.make(renderLabels(ls))
	v.children[key] = m
	v.fam.add(m)
	return m
}

// CounterVec is a counter family with per-call label values.
type CounterVec struct{ *vec[*Counter] }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return v.with(values...) }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	f := r.lookup(name, help, "counter")
	return &CounterVec{newVec(f, labelNames, func(ls string) *Counter { return &Counter{labels: ls} })}
}

// GaugeVec is a gauge family with per-call label values.
type GaugeVec struct{ *vec[*Gauge] }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.with(values...) }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	f := r.lookup(name, help, "gauge")
	return &GaugeVec{newVec(f, labelNames, func(ls string) *Gauge { return &Gauge{labels: ls} })}
}

// HistogramVec is a histogram family with per-call label values.
type HistogramVec struct{ *vec[*Histogram] }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.with(values...) }

// HistogramVec registers a labeled histogram family (nil buckets selects
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	f := r.lookup(name, help, "histogram")
	return &HistogramVec{newVec(f, labelNames, func(ls string) *Histogram { return newHistogram(ls, buckets) })}
}

// ---- name validation and label rendering ----

func mustValidName(name string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
}

func mustValidLabel(name string) {
	if !validLabelName(name) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", name))
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validMetricName(s)
}

// renderLabels renders a constant label set as `{a="x",b="y"}`, sorted
// by name, or "" when empty.
func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	names := make([]string, 0, len(ls))
	for n := range ls {
		mustValidLabel(n)
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, ls[n])
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLE splices `le="bound"` into an already-rendered label string.
func mergeLE(labels, bound string) string {
	le := fmt.Sprintf("le=%q", bound)
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}
