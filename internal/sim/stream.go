// The affine reference-stream fast path.
//
// Almost all simulated traffic comes from innermost serial loops whose
// bodies are straight-line assignments over affine array references —
// unit- or constant-stride streams. The scalar path pays, per reference,
// a closure call, an addrFn evaluation, and a full set-associative
// cache.Lookup. This file recognizes such loops at lower time and
// compiles them to stream ops: per-reference (base, stride, count,
// kind, mark) descriptors plus a postfix program for each assignment,
// executed by a tight driver that walks every stream through a
// per-scheme memsys cursor (see internal/memsys/stream.go) with no
// closure dispatch and a cached line pointer instead of a Lookup per
// word.
//
// Recognition preconditions (anything else falls back to the scalar
// closures, with the blocking reason recorded for -explain-fastpath):
//
//   - the body is straight-line assignments: no nested loops,
//     conditionals, critical/ordered sections, or calls;
//   - every subscript is affine in the loop variable: built from the
//     loop variable, enclosing loop variables, parameters, and integer
//     literals with + - * and unary minus, no product of two
//     loop-variable-dependent terms, and — the classic blocker — no
//     memory reads (a subscript reading a scalar or array is a dynamic
//     subscript);
//   - right-hand sides use only arithmetic, comparisons, and intrinsics
//     over those same building blocks plus memory reads; && and || are
//     rejected because their short-circuit evaluation makes the cycle
//     charge data-dependent;
//   - reference marks (Time-Read windows, bypass) are static per
//     reference, hence loop-invariant by construction.
//
// Equivalence with the scalar path: the postfix programs evaluate the
// same IEEE operations in the same order as the scalar closures (no
// constant folding is applied, and the scalar lowering's folding uses
// the identical operations, so values agree bit-for-bit); cycle charges
// per iteration are a static sum bulk-charged per loop entry, which is
// observably identical because procWork is only read at epoch ends (and
// between DOALL iterations, never inside a body); memory effects go
// through the scheme cursors, which inline the scalar hit path verbatim
// and delegate everything else to the scheme's own Read/Write. Affine
// coefficients are recovered by sampling the charge-free float
// evaluator of the subscript tree (the same arithmetic the scalar path
// runs) at the first, second, and last iteration, so even
// rounding-degenerate subscripts reproduce the scalar addresses; an
// entry-time guard verifies the sampled endpoints agree with the affine
// model and lie in bounds, magnitudes stay within exact-float64-integer
// range, and falls back to the scalar iteration otherwise — including
// for subscript range violations, which then fail with the exact scalar
// diagnostic.

package sim

import (
	"fmt"
	"math"

	"repro/internal/memsys"
	"repro/internal/pfl"
	"repro/internal/prog"
)

// StreamDiag is one lower-time fast-path recognition decision, surfaced
// by tpisim -explain-fastpath so kernel authors can see why a loop did
// (or did not) engage the fast path.
type StreamDiag struct {
	Proc string
	Pos  pfl.Pos
	Var  string // loop variable
	OK   bool
	// Reads/Writes count the loop's streams (OK only).
	Reads, Writes int
	// Reason/ReasonPos describe the blocking construct (non-OK only).
	Reason    string
	ReasonPos pfl.Pos
	// Outer marks a loop that directly contains another loop: only
	// innermost loops can stream, so a non-OK Outer diag is structural,
	// not a coverage gap (-require-fastpath ignores it; the inner loop
	// has its own diag).
	Outer bool
}

// streamBlock is a recognition failure: the construct at pos blocks
// streaming for the enclosing loop.
type streamBlock struct {
	pos    pfl.Pos
	reason string
	outer  bool // the blocker is a nested loop (the loop is not innermost)
}

// subFn evaluates one subscript dimension at loop value j, charge-free,
// with the exact float arithmetic of the scalar closure.
type subFn func(t *task, j int64) float64

// streamRef is one reference stream: a scalar (stride 0) or an affine
// array reference walked by the driver.
type streamRef struct {
	src    arraySrc
	scalar bool
	addr   prog.Word // scalar address
	kind   memsys.ReadKind
	window int
	ref    int32
	subs   []subFn // per-dimension evaluators (arrays only)
}

// Postfix opcodes for stream statement bodies.
const (
	opConst uint8 = iota
	opSlot        // enclosing loop variable (frame slot a)
	opLoopVar     // the stream loop's own variable
	opLoad        // read stream a
	opNeg
	opNot
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opLT
	opLE
	opGT
	opGE
	opEQ
	opNE
	opAbs
	opSqrt
	opExp
	opLog
	opSin
	opCos
	opFloor
	opMin
	opMax
)

// sop is one postfix operation.
type sop struct {
	op  uint8
	a   int32   // slot index (opSlot) or read-stream index (opLoad)
	val float64 // opConst
	pos pfl.Pos // ops that can fail (div, mod, sqrt, log)
}

// streamStmt is one assignment's RHS as a postfix program; its write
// stream is writes[i] for stmts[i].
type streamStmt struct {
	ops []sop
}

// streamLoop is the lowered form of a streamable innermost loop.
type streamLoop struct {
	varSlot     int
	reads       []streamRef
	writes      []streamRef // one per statement, in statement order
	stmts       []streamStmt
	perIterCost int64 // static cycles per iteration (loop bookkeeping + ops)
	maxStack    int
	body        []stmtFn // the exact scalar lowering, for fallbacks
	diag        int      // index into Program.streamDiags (for fallback accounting)
}

// runScalarIters is the classic per-iteration execution over already
// evaluated bounds: the scalar loop closure's body, shared with the
// stream fallbacks so bounds never evaluate twice.
func runScalarIters(t *task, slot int, body []stmtFn, lo, hi, s int64) {
	for v := lo; (s > 0 && v <= hi) || (s < 0 && v >= hi); v += s {
		t.slots[slot] = v
		t.charge(2)
		for _, b := range body {
			b(t)
		}
	}
}

// tryStream recognizes a streamable loop over its already-lowered body.
func (pl *procLowerer) tryStream(st *pfl.ForStmt, slot int, body []stmtFn) (*streamLoop, *streamBlock) {
	sl := &streamLoop{varSlot: slot, body: body, perIterCost: 2}
	if len(st.Body.Stmts) == 0 {
		return nil, &streamBlock{pos: st.Pos, reason: "empty loop body"}
	}
	for _, s := range st.Body.Stmts {
		as, ok := s.(*pfl.AssignStmt)
		if !ok {
			_, isFor := s.(*pfl.ForStmt)
			return nil, &streamBlock{pos: s.Position(), reason: "body contains a " + streamStmtName(s), outer: isFor}
		}
		var ops []sop
		depth, maxDepth := 0, 0
		rhsCost, blk := pl.streamExpr(as.RHS, slot, sl, &ops, &depth, &maxDepth)
		if blk != nil {
			return nil, blk
		}
		var wref streamRef
		var lhsCost int64
		switch lhs := as.LHS.(type) {
		case *pfl.VarRef:
			// The scalar lowering of this statement succeeded, so the
			// name is a global scalar.
			wref = streamRef{scalar: true, addr: pl.l.p.Scalars[lhs.Name].Addr, ref: int32(lhs.RefID)}
		case *pfl.IndexRef:
			wref, lhsCost, blk = pl.streamIndex(lhs, slot)
			if blk != nil {
				return nil, blk
			}
		default:
			return nil, &streamBlock{pos: as.Pos, reason: fmt.Sprintf("assignment target %T", as.LHS)}
		}
		// Per iteration the scalar path charges rhs ops + 1 (assign) +
		// lhs subscript ops + 1 (write issue); stalls stay dynamic.
		sl.perIterCost += rhsCost + 1 + lhsCost + 1
		sl.writes = append(sl.writes, wref)
		sl.stmts = append(sl.stmts, streamStmt{ops: ops})
		if maxDepth > sl.maxStack {
			sl.maxStack = maxDepth
		}
	}
	return sl, nil
}

// streamStmtName names a blocking statement kind for diagnostics.
func streamStmtName(s pfl.Stmt) string {
	switch s.(type) {
	case *pfl.ForStmt:
		return "nested loop (only innermost loops stream)"
	case *pfl.IfStmt:
		return "conditional"
	case *pfl.CriticalStmt:
		return "critical section"
	case *pfl.OrderedStmt:
		return "ordered section"
	default:
		return fmt.Sprintf("%T", s)
	}
}

// streamIndex analyzes an array reference's subscripts (read or write
// side). kind/window/ref are filled by the caller for reads.
func (pl *procLowerer) streamIndex(e *pfl.IndexRef, jslot int) (streamRef, int64, *streamBlock) {
	src, err := pl.arraySrc(e.Name)
	if err != nil {
		return streamRef{}, 0, &streamBlock{pos: e.Pos, reason: err.Error()}
	}
	r := streamRef{src: src, ref: int32(e.RefID)}
	var cost int64
	for _, sub := range e.Subs {
		fn, c, _, blk := pl.subLin(sub, jslot)
		if blk != nil {
			return streamRef{}, 0, blk
		}
		cost += c
		r.subs = append(r.subs, fn)
	}
	return r, cost, nil
}

// subLin analyzes one subscript dimension: affine in the loop variable,
// no memory reads, no dynamically-charged or non-affine operators. It
// returns a charge-free evaluator mirroring the scalar float arithmetic,
// the static cycle cost the scalar path charges for the expression, and
// whether the subtree depends on the loop variable.
func (pl *procLowerer) subLin(e pfl.Expr, jslot int) (subFn, int64, bool, *streamBlock) {
	switch ex := e.(type) {
	case *pfl.NumLit:
		v := ex.Val
		if v != math.Trunc(v) || math.Abs(v) > 1<<31 {
			return nil, 0, false, &streamBlock{pos: ex.Pos,
				reason: fmt.Sprintf("non-integral or oversized constant %v in subscript", v)}
		}
		return func(*task, int64) float64 { return v }, 0, false, nil

	case *pfl.VarRef:
		if slot, ok := pl.slots[ex.Name]; ok {
			if slot == jslot {
				return func(_ *task, j int64) float64 { return float64(j) }, 0, true, nil
			}
			return func(t *task, _ int64) float64 { return float64(t.slots[slot]) }, 0, false, nil
		}
		if pv, ok := pl.l.p.Params[ex.Name]; ok {
			v := float64(pv)
			if math.Abs(v) > 1<<31 {
				return nil, 0, false, &streamBlock{pos: ex.Pos,
					reason: fmt.Sprintf("oversized parameter %s=%d in subscript", ex.Name, pv)}
			}
			return func(*task, int64) float64 { return v }, 0, false, nil
		}
		return nil, 0, false, &streamBlock{pos: ex.Pos,
			reason: fmt.Sprintf("dynamic subscript: reads scalar %q", ex.Name)}

	case *pfl.IndexRef:
		return nil, 0, false, &streamBlock{pos: ex.Pos,
			reason: fmt.Sprintf("dynamic subscript: reads array %q", ex.Name)}

	case *pfl.UnExpr:
		if ex.Op != "-" {
			return nil, 0, false, &streamBlock{pos: ex.Pos,
				reason: fmt.Sprintf("non-affine operator %q in subscript", ex.Op)}
		}
		xf, c, hj, blk := pl.subLin(ex.X, jslot)
		if blk != nil {
			return nil, 0, false, blk
		}
		return func(t *task, j int64) float64 { return -xf(t, j) }, c + 1, hj, nil

	case *pfl.BinExpr:
		switch ex.Op {
		case "+", "-", "*":
		default:
			return nil, 0, false, &streamBlock{pos: ex.Pos,
				reason: fmt.Sprintf("non-affine operator %q in subscript", ex.Op)}
		}
		xf, cx, hx, blk := pl.subLin(ex.X, jslot)
		if blk != nil {
			return nil, 0, false, blk
		}
		yf, cy, hy, blk := pl.subLin(ex.Y, jslot)
		if blk != nil {
			return nil, 0, false, blk
		}
		var fn subFn
		switch ex.Op {
		case "+":
			fn = func(t *task, j int64) float64 { return xf(t, j) + yf(t, j) }
		case "-":
			fn = func(t *task, j int64) float64 { return xf(t, j) - yf(t, j) }
		case "*":
			if hx && hy {
				return nil, 0, false, &streamBlock{pos: ex.Pos,
					reason: "product of two loop-variable-dependent terms in subscript"}
			}
			fn = func(t *task, j int64) float64 { return xf(t, j) * yf(t, j) }
		}
		return fn, cx + cy + 1, hx || hy, nil

	case *pfl.CallExpr:
		return nil, 0, false, &streamBlock{pos: ex.Pos,
			reason: fmt.Sprintf("intrinsic %q in subscript", ex.Name)}

	default:
		return nil, 0, false, &streamBlock{pos: e.Position(),
			reason: fmt.Sprintf("unsupported expression %T in subscript", e)}
	}
}

// streamExpr compiles an RHS expression to postfix, registering read
// streams as it encounters them (in scalar evaluation order). It
// returns the static cycle cost of the expression.
func (pl *procLowerer) streamExpr(e pfl.Expr, jslot int, sl *streamLoop, ops *[]sop, depth, maxDepth *int) (int64, *streamBlock) {
	push := func(op sop) {
		*ops = append(*ops, op)
		*depth++
		if *depth > *maxDepth {
			*maxDepth = *depth
		}
	}
	switch ex := e.(type) {
	case *pfl.NumLit:
		push(sop{op: opConst, val: ex.Val})
		return 0, nil

	case *pfl.VarRef:
		if slot, ok := pl.slots[ex.Name]; ok {
			if slot == jslot {
				push(sop{op: opLoopVar})
			} else {
				push(sop{op: opSlot, a: int32(slot)})
			}
			return 0, nil
		}
		if pv, ok := pl.l.p.Params[ex.Name]; ok {
			push(sop{op: opConst, val: float64(pv)})
			return 0, nil
		}
		if sc := pl.l.p.Scalars[ex.Name]; sc != nil {
			kind, window := pl.l.premark(ex.RefID)
			sl.reads = append(sl.reads, streamRef{
				scalar: true, addr: sc.Addr, kind: kind, window: window, ref: int32(ex.RefID),
			})
			push(sop{op: opLoad, a: int32(len(sl.reads) - 1)})
			return 0, nil
		}
		return 0, &streamBlock{pos: ex.Pos, reason: fmt.Sprintf("unbound name %q", ex.Name)}

	case *pfl.IndexRef:
		r, cost, blk := pl.streamIndex(ex, jslot)
		if blk != nil {
			return 0, blk
		}
		r.kind, r.window = pl.l.premark(ex.RefID)
		sl.reads = append(sl.reads, r)
		push(sop{op: opLoad, a: int32(len(sl.reads) - 1)})
		return cost, nil

	case *pfl.UnExpr:
		cost, blk := pl.streamExpr(ex.X, jslot, sl, ops, depth, maxDepth)
		if blk != nil {
			return 0, blk
		}
		switch ex.Op {
		case "-":
			*ops = append(*ops, sop{op: opNeg})
		case "!":
			*ops = append(*ops, sop{op: opNot})
		default:
			return 0, &streamBlock{pos: ex.Pos, reason: fmt.Sprintf("unknown unary op %q", ex.Op)}
		}
		return cost + 1, nil

	case *pfl.BinExpr:
		var op uint8
		switch ex.Op {
		case "&&", "||":
			// Short-circuit evaluation skips the right operand's charges
			// (and any reads) data-dependently: not a static stream.
			return 0, &streamBlock{pos: ex.Pos,
				reason: fmt.Sprintf("short-circuit operator %q (data-dependent charge)", ex.Op)}
		case "+":
			op = opAdd
		case "-":
			op = opSub
		case "*":
			op = opMul
		case "/":
			op = opDiv
		case "%":
			op = opMod
		case "<":
			op = opLT
		case "<=":
			op = opLE
		case ">":
			op = opGT
		case ">=":
			op = opGE
		case "==":
			op = opEQ
		case "!=":
			op = opNE
		default:
			return 0, &streamBlock{pos: ex.Pos, reason: fmt.Sprintf("unknown op %q", ex.Op)}
		}
		cx, blk := pl.streamExpr(ex.X, jslot, sl, ops, depth, maxDepth)
		if blk != nil {
			return 0, blk
		}
		cy, blk := pl.streamExpr(ex.Y, jslot, sl, ops, depth, maxDepth)
		if blk != nil {
			return 0, blk
		}
		*ops = append(*ops, sop{op: op, pos: ex.Pos})
		*depth--
		return cx + cy + 1, nil

	case *pfl.CallExpr:
		var op uint8
		switch ex.Name {
		case "abs":
			op = opAbs
		case "sqrt":
			op = opSqrt
		case "exp":
			op = opExp
		case "log":
			op = opLog
		case "sin":
			op = opSin
		case "cos":
			op = opCos
		case "floor":
			op = opFloor
		case "min":
			op = opMin
		case "max":
			op = opMax
		default:
			return 0, &streamBlock{pos: ex.Pos, reason: fmt.Sprintf("unknown intrinsic %q", ex.Name)}
		}
		var cost int64
		for _, a := range ex.Args {
			c, blk := pl.streamExpr(a, jslot, sl, ops, depth, maxDepth)
			if blk != nil {
				return 0, blk
			}
			cost += c
		}
		*ops = append(*ops, sop{op: op, pos: ex.Pos})
		if len(ex.Args) == 2 {
			*depth--
		}
		return cost + 4, nil

	default:
		return 0, &streamBlock{pos: e.Position(), reason: fmt.Sprintf("unknown expression %T", e)}
	}
}

// streamScratch is a task's reusable stream-execution state: cursors,
// per-stream address walkers, and the postfix value stack. One task is
// touched by one goroutine at a time (hostpar gives each worker its own
// task), so the scratch is race-free.
type streamScratch struct {
	rc    []memsys.ReadCursor
	wc    []memsys.WriteCursor
	raddr []prog.Word
	rstep []int64
	waddr []prog.Word
	wstep []int64
	stack []float64
	// stall accumulates the loop's reference stalls; runStream charges
	// the sum once at loop exit (procWork is only read at epoch ends, so
	// batching the adds is unobservable, like the bulk perIterCost
	// charge).
	stall int64
}

// streamScratch sizes (lazily allocating) the task's scratch.
func (t *task) streamScratch(nr, nw, stackN int) *streamScratch {
	sc := t.ss
	if sc == nil {
		sc = &streamScratch{}
		t.ss = sc
	}
	if cap(sc.rc) < nr {
		sc.rc = make([]memsys.ReadCursor, nr)
		sc.raddr = make([]prog.Word, nr)
		sc.rstep = make([]int64, nr)
	}
	sc.rc, sc.raddr, sc.rstep = sc.rc[:nr], sc.raddr[:nr], sc.rstep[:nr]
	if cap(sc.wc) < nw {
		sc.wc = make([]memsys.WriteCursor, nw)
		sc.waddr = make([]prog.Word, nw)
		sc.wstep = make([]int64, nw)
	}
	sc.wc, sc.waddr, sc.wstep = sc.wc[:nw], sc.waddr[:nw], sc.wstep[:nw]
	if cap(sc.stack) < stackN {
		sc.stack = make([]float64, stackN)
	}
	sc.stack = sc.stack[:cap(sc.stack)]
	return sc
}

// streamRefInit resolves one stream's base address and word stride at
// loop entry by sampling the subscript evaluators at the first, second,
// and last iteration. It reports false when the stream cannot be proven
// exact-and-in-bounds, in which case the caller falls back to scalar
// iteration (which reproduces any range fault exactly).
func streamRefInit(t *task, r *streamRef, lo, step, last, count int64) (prog.Word, int64, bool) {
	if r.scalar {
		return r.addr, 0, true
	}
	ai := r.src.fixed
	if ai == nil {
		ai = t.arrays[r.src.formal]
	}
	if len(r.subs) != len(ai.Dims) {
		return 0, 0, false
	}
	var lin, strideW int64
	for d, f := range r.subs {
		v0f := f(t, lo)
		vLf, cf := v0f, 0.0
		if count > 1 {
			cf = f(t, lo+step) - v0f
			vLf = f(t, last)
		}
		// Exactness guards: sampled values must be integral, small enough
		// for exact float64 integer arithmetic, and consistent with the
		// affine model at the far endpoint; a linear function is monotone,
		// so in-bounds endpoints bound every iteration.
		if v0f != math.Trunc(v0f) || cf != math.Trunc(cf) ||
			math.Abs(v0f) > 1<<31 || math.Abs(vLf) > 1<<31 || math.Abs(cf) > 1<<31 {
			return 0, 0, false
		}
		v0, vL, c := int64(v0f), int64(vLf), int64(cf)
		if vL != v0+c*(count-1) {
			return 0, 0, false
		}
		minV, maxV := v0, vL
		if minV > maxV {
			minV, maxV = maxV, minV
		}
		if minV < 0 || maxV >= ai.Dims[d] {
			return 0, 0, false
		}
		lin += v0 * ai.Strides[d]
		strideW += c * ai.Strides[d]
	}
	return ai.Base + prog.Word(lin), strideW, true
}

// runStream executes a recognized loop through the scheme's stream
// cursors. Bounds and step are already evaluated (and charged) by the
// enclosing closure. It reports false — before any observable effect —
// when an entry-time guard fails and the scalar fallback must run.
func runStream(t *task, ssys memsys.Streamer, sl *streamLoop, lo, hi, step int64) bool {
	if step == math.MinInt64 {
		return false
	}
	var count int64
	if step > 0 {
		if lo > hi {
			return true // zero iterations: no charges, slot untouched
		}
		count = (hi-lo)/step + 1
	} else {
		if lo < hi {
			return true
		}
		count = (lo-hi)/(-step) + 1
	}
	last := lo + (count-1)*step

	sc := t.streamScratch(len(sl.reads), len(sl.writes), sl.maxStack)
	for i := range sl.reads {
		a0, stw, ok := streamRefInit(t, &sl.reads[i], lo, step, last, count)
		if !ok {
			return false
		}
		sc.raddr[i], sc.rstep[i] = a0, stw
	}
	for i := range sl.writes {
		a0, stw, ok := streamRefInit(t, &sl.writes[i], lo, step, last, count)
		if !ok {
			return false
		}
		sc.waddr[i], sc.wstep[i] = a0, stw
	}

	// All static cycles of the whole loop in one charge: procWork is
	// only read at epoch ends, never mid-body, so bulk-charging is
	// unobservable. Stalls are charged per reference below.
	t.charge(count * sl.perIterCost)
	for i := range sl.reads {
		ssys.InitReadCursor(&sc.rc[i], t.proc, sl.reads[i].kind, sl.reads[i].window, sc.raddr[i])
	}
	for i := range sl.writes {
		ssys.InitWriteCursor(&sc.wc[i], t.proc, sc.waddr[i])
	}

	sc.stall = 0
	j := lo
	for k := int64(0); k < count; k++ {
		for si := range sl.stmts {
			v := streamEval(t, sl, sc, sl.stmts[si].ops, j)
			wr := &sl.writes[si]
			addr := sc.waddr[si]
			stall, class := sc.wc[si].Write(addr, v)
			sc.stall += stall
			if t.rec != nil {
				t.rec.Write(t.proc, addr, wr.ref, false, class, stall)
			}
		}
		j += step
		for i := range sc.raddr {
			sc.raddr[i] += prog.Word(sc.rstep[i])
		}
		for i := range sc.waddr {
			sc.waddr[i] += prog.Word(sc.wstep[i])
		}
	}
	for i := range sc.rc {
		sc.rc[i].Flush()
	}
	for i := range sc.wc {
		sc.wc[i].Flush()
	}
	t.charge(sc.stall)
	t.slots[sl.varSlot] = last
	return true
}

// streamEval runs one postfix program at loop value j. Loads go through
// the read cursors; runtime faults (division by zero, sqrt/log domain)
// abort with the exact scalar diagnostics.
func streamEval(t *task, sl *streamLoop, sc *streamScratch, ops []sop, j int64) float64 {
	stack := sc.stack
	sp := 0
	for i := range ops {
		op := &ops[i]
		switch op.op {
		case opConst:
			stack[sp] = op.val
			sp++
		case opSlot:
			stack[sp] = float64(t.slots[op.a])
			sp++
		case opLoopVar:
			stack[sp] = float64(j)
			sp++
		case opLoad:
			cur := &sc.rc[op.a]
			addr := sc.raddr[op.a]
			v, stall, class := cur.Read(addr)
			sc.stall += stall
			if t.rec != nil {
				r := &sl.reads[op.a]
				t.rec.Read(t.proc, addr, r.ref, uint8(r.kind), class, stall)
			}
			stack[sp] = v
			sp++
		case opNeg:
			stack[sp-1] = -stack[sp-1]
		case opNot:
			stack[sp-1] = boolVal(stack[sp-1] == 0)
		case opAdd:
			sp--
			stack[sp-1] += stack[sp]
		case opSub:
			sp--
			stack[sp-1] -= stack[sp]
		case opMul:
			sp--
			stack[sp-1] *= stack[sp]
		case opDiv:
			sp--
			if stack[sp] == 0 {
				fail("sim: %s: division by zero", op.pos)
			}
			stack[sp-1] /= stack[sp]
		case opMod:
			sp--
			ib := int64(stack[sp])
			if ib == 0 {
				fail("sim: %s: modulo by zero", op.pos)
			}
			m := int64(stack[sp-1]) % ib
			if m < 0 {
				m += absI64(ib)
			}
			stack[sp-1] = float64(m)
		case opLT:
			sp--
			stack[sp-1] = boolVal(stack[sp-1] < stack[sp])
		case opLE:
			sp--
			stack[sp-1] = boolVal(stack[sp-1] <= stack[sp])
		case opGT:
			sp--
			stack[sp-1] = boolVal(stack[sp-1] > stack[sp])
		case opGE:
			sp--
			stack[sp-1] = boolVal(stack[sp-1] >= stack[sp])
		case opEQ:
			sp--
			stack[sp-1] = boolVal(stack[sp-1] == stack[sp])
		case opNE:
			sp--
			stack[sp-1] = boolVal(stack[sp-1] != stack[sp])
		case opAbs:
			stack[sp-1] = math.Abs(stack[sp-1])
		case opSqrt:
			v := stack[sp-1]
			if v < 0 {
				fail("sim: %s: sqrt of negative value %v", op.pos, v)
			}
			stack[sp-1] = math.Sqrt(v)
		case opExp:
			stack[sp-1] = math.Exp(stack[sp-1])
		case opLog:
			v := stack[sp-1]
			if v <= 0 {
				fail("sim: %s: log of non-positive value %v", op.pos, v)
			}
			stack[sp-1] = math.Log(v)
		case opSin:
			stack[sp-1] = math.Sin(stack[sp-1])
		case opCos:
			stack[sp-1] = math.Cos(stack[sp-1])
		case opFloor:
			stack[sp-1] = math.Floor(stack[sp-1])
		case opMin:
			sp--
			stack[sp-1] = math.Min(stack[sp-1], stack[sp])
		case opMax:
			sp--
			stack[sp-1] = math.Max(stack[sp-1], stack[sp])
		}
	}
	return stack[0]
}
