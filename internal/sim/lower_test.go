package sim

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/memsys"
)

// TestLowerDiagnosesConstZeroStep: a statically-zero loop step is a
// lower-time error (the interpreter only found it on execution).
func TestLowerDiagnosesConstZeroStep(t *testing.T) {
	p, m := compileSrc(t, `
program p
scalar s = 0
proc main() {
  for i = 0 to 3 step 0 { s = i }
}
`)
	if _, err := Lower(p, m); err == nil || !strings.Contains(err.Error(), "loop step is zero") {
		t.Fatalf("err = %v, want zero-step diagnostic", err)
	}
}

// TestLowerDiagnosesConstZeroStepInDeadCode: lowering is eager, so the
// diagnostic fires even when the loop could never execute.
func TestLowerDiagnosesConstZeroStepInDeadCode(t *testing.T) {
	p, m := compileSrc(t, `
program p
scalar s = 0
proc main() {
  if (0) {
    for i = 0 to 3 step 0 { s = i }
  }
}
`)
	if _, err := Lower(p, m); err == nil || !strings.Contains(err.Error(), "loop step is zero") {
		t.Fatalf("err = %v, want zero-step diagnostic", err)
	}
}

// TestLowerErrorSurfacesFromRun: New defers lowering diagnostics to Run,
// preserving the interpreter-era error flow for existing callers.
func TestLowerErrorSurfacesFromRun(t *testing.T) {
	p, m := compileSrc(t, `
program p
scalar s = 0
proc main() {
  for i = 0 to 3 step 0 { s = i }
}
`)
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = 2
	r := New(p, m, memsys.NewOracle(cfg, p.MemWords), cfg)
	if _, err := r.Run(); err == nil || !strings.Contains(err.Error(), "loop step is zero") {
		t.Fatalf("Run err = %v, want zero-step diagnostic", err)
	}
}

// TestLoweredProgramReusable: one lowered Program drives many runners;
// every run must produce identical results and timing (execute-many is
// the whole point of lowering).
func TestLoweredProgramReusable(t *testing.T) {
	src := `
program p
param n = 8
array A[n][n]
scalar acc = 0
proc main() {
  doall i = 0 to n-1 {
    for j = 0 to n-1 { A[i][j] = i*n + j }
  }
  for i = 0 to n-1 {
    for j = 0 to n-1 { acc = acc + A[i][j] }
  }
}
`
	p, m := compileSrc(t, src)
	lp, err := Lower(p, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = 4

	var cycles, epochs int64
	var acc float64
	for run := 0; run < 3; run++ {
		sys := memsys.NewOracle(cfg, p.MemWords)
		st, err := NewLowered(lp, sys, cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		got := scalarVal(t, p, sys, "acc")
		if run == 0 {
			cycles, epochs, acc = st.Cycles, st.Epochs, got
			if acc != 2016 { // sum of 0..63
				t.Fatalf("acc = %v, want 2016", acc)
			}
			continue
		}
		if st.Cycles != cycles || st.Epochs != epochs || got != acc {
			t.Fatalf("run %d diverged: cycles %d/%d epochs %d/%d acc %v/%v",
				run, st.Cycles, cycles, st.Epochs, epochs, got, acc)
		}
	}
}

// TestLoweredMatchesInterpreterSemantics pins the behaviors the closure
// IR must not change: parameter folding keeps operator charges, runtime
// division by zero still aborts with the interpreter's message, and
// intrinsic folding refuses erroring applications.
func TestLoweredRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"div-by-zero", `
program p
scalar s = 0
scalar z = 0
proc main() {
  s = 1 / z
}
`, "division by zero"},
		{"sqrt-negative-const", `
program p
scalar s = 0
proc main() {
  s = sqrt(0 - 1)
}
`, "sqrt of negative value"},
		{"runtime-zero-step", `
program p
scalar s = 0
scalar z = 0
proc main() {
  for i = 0 to 3 step z { s = i }
}
`, "loop step is zero"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, m := compileSrc(t, tc.src)
			lp, err := Lower(p, m)
			if err != nil {
				t.Fatalf("Lower must not fail (runtime error): %v", err)
			}
			cfg := machine.Default(machine.SchemeBase)
			cfg.Procs = 2
			_, err = NewLowered(lp, memsys.NewOracle(cfg, p.MemWords), cfg).Run()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Run err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestConstFoldingPreservesCharges: an expression over params folds to a
// constant but must charge the same operator cycles as the unfolded
// tree, so timing results are invariant under folding.
func TestConstFoldingPreservesCharges(t *testing.T) {
	// s = n*n + n  (params: 2 mults-adds charged even when folded)
	folded := `
program p
param n = 4
scalar s = 0
proc main() {
  s = n*n + n
}
`
	// Same shape with a runtime scalar forced to the same values would
	// add load stalls, so instead compare against the literal tree
	// 4*4 + 4, which the interpreter charged identically (3 operators).
	literal := `
program p
scalar s = 0
proc main() {
  s = 4*4 + 4
}
`
	run := func(src string) (int64, float64) {
		p, m := compileSrc(t, src)
		cfg := machine.Default(machine.SchemeBase)
		cfg.Procs = 2
		sys := memsys.NewOracle(cfg, p.MemWords)
		st, err := New(p, m, sys, cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles, scalarVal(t, p, sys, "s")
	}
	fc, fv := run(folded)
	lc, lv := run(literal)
	if fv != 20 || lv != 20 {
		t.Fatalf("values: folded %v literal %v, want 20", fv, lv)
	}
	if fc != lc {
		t.Fatalf("cycles diverge under folding: param-folded %d, literal %d", fc, lc)
	}
}
