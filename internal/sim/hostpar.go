// Host-parallel DOALL execution: shard the simulated processors of one
// epoch across host goroutines, then re-serialize deterministically at
// the barrier.
//
// Why this is sound: a DOALL epoch has no cross-iteration dependences
// and the shardable schemes' coherence decisions are processor-local
// (memsys.Sharded), so per-processor simulation state — cache, tracker,
// write buffer, and the per-processor Lane (stats shard, buffered write
// log, injection counter) plus the obs/trace shards here — is touched by
// exactly one goroutine, and shared state (memory, network, epoch
// counter) is only read. The barrier merge fixes one serialization:
// everything folds in (processor, sequence) order, which under static
// block scheduling is exactly ascending-iteration order, i.e. the
// sequential runner's order. Counters are integer sums (order-free), so
// stats and obs reports are bit-identical to sequential execution under
// BOTH schedulings; the trace byte stream is identical under static
// scheduling and deterministically processor-major under cyclic.
//
// Fallbacks (the sequential path runs instead, transparently):
//   - schemes that are not memsys.Sharded (the oracle) — BASE, SC, TPI,
//     two-level TPI, HW, and VC all shard (HW and VC via always-buffered
//     lanes with barrier-deferred coherence replay);
//   - DynamicSched: the least-loaded argmin serializes scheduling;
//   - doalls whose body contains critical/ordered sections (seqOnly):
//     those communicate between iterations mid-epoch.
package sim

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/memsys"
	"repro/internal/obs"
)

// hostPar is the per-run host-parallel execution state.
type hostPar struct {
	r       *Runner
	sys     memsys.Sharded
	workers int

	tasks     []*task              // one reusable task per worker
	obsShards []*obs.ShardRecorder // per simulated processor; nil when no recorder
	traceBufs []*bytes.Buffer      // per simulated processor; nil when no trace

	panics []panicked // one slot per worker
}

// panicked records a worker goroutine's recovered panic.
type panicked struct {
	proc int
	val  any
}

// setupHostParallel decides once per Run whether DOALL epochs may shard,
// and builds the worker state if so.
func (r *Runner) setupHostParallel() {
	r.hostpar, r.hostparOff = nil, ""
	if r.cfg.HostParallel <= 1 || r.cfg.Procs <= 1 || r.cfg.DynamicSched {
		switch {
		case r.cfg.HostParallel <= 1:
			r.hostparOff = "host parallelism is disabled (-hostpar<=1)"
		case r.cfg.Procs <= 1:
			r.hostparOff = "a single simulated processor leaves nothing to shard"
		default:
			r.hostparOff = "dynamic self-scheduling serializes epoch dispatch"
		}
		return
	}
	ss, ok := r.sys.(memsys.Sharded)
	if !ok || !ss.HostShardable() {
		r.hostparOff = fmt.Sprintf("scheme %s is not host-shardable", r.sys.Name())
		return
	}
	w := r.cfg.HostParallel
	if w > r.cfg.Procs {
		w = r.cfg.Procs
	}
	hp := &hostPar{r: r, sys: ss, workers: w, panics: make([]panicked, w)}
	hp.tasks = make([]*task, w)
	for i := range hp.tasks {
		hp.tasks[i] = &task{r: r}
	}
	if r.rec != nil {
		hp.obsShards = make([]*obs.ShardRecorder, r.cfg.Procs)
		for p := range hp.obsShards {
			hp.obsShards[p] = &obs.ShardRecorder{}
		}
	}
	if r.trace != nil {
		hp.traceBufs = make([]*bytes.Buffer, r.cfg.Procs)
		for p := range hp.traceBufs {
			hp.traceBufs[p] = &bytes.Buffer{}
		}
	}
	r.hostpar = hp
}

// run executes one DOALL epoch's iterations across the host workers and
// performs the deterministic barrier merge. t is the scheduling task
// (bounds already evaluated, dispatch already charged).
func (hp *hostPar) run(ld *loweredDoall, t *task, lo, hi int64) {
	r := hp.r
	procs := int64(r.cfg.Procs)
	chunk := (hi - lo + 1 + procs - 1) / procs
	cyclic := r.cfg.CyclicSched

	hp.sys.BeginParallelEpoch(r.epoch)
	var wg sync.WaitGroup
	for w := 0; w < hp.workers; w++ {
		wt := hp.tasks[w]
		// Fresh frame per epoch: the workers read enclosing loop-variable
		// slots, so each needs its own copy of the scheduler's frame.
		wt.slots = append(wt.slots[:0], t.slots...)
		wt.arrays = t.arrays
		wt.inCrit = false
		wg.Add(1)
		go func(w int, wt *task) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					hp.panics[w] = panicked{proc: wt.proc, val: v}
				}
			}()
			// Worker w simulates processors w, w+W, w+2W, ... Each
			// processor's slice of the iteration space matches the
			// sequential scheduler exactly.
			for p := int64(w); p < procs; p += int64(hp.workers) {
				wt.proc = int(p)
				wt.st = hp.sys.LaneStats(int(p))
				if hp.obsShards != nil {
					wt.rec = hp.obsShards[p]
				}
				if hp.traceBufs != nil {
					wt.trace = hp.traceBufs[p]
				}
				it, step, last := lo+p*chunk, int64(1), lo+(p+1)*chunk-1
				if cyclic {
					it, step, last = lo+p, procs, hi
				} else if last > hi {
					last = hi
				}
				for ; it <= last; it += step {
					wt.slots[ld.varSlot] = it
					wt.charge(2) // per-task scheduling overhead
					for _, s := range ld.body {
						s(wt)
					}
				}
			}
		}(w, wt)
	}
	wg.Wait()

	// Re-raise one panic deterministically: the lowest simulated
	// processor wins, so a failing run fails identically at any worker
	// count. Merge first — runError recovery in Run still reports stats
	// consistent with the work that completed.
	hp.sys.EndParallelEpoch()
	if hp.obsShards != nil {
		rec := r.rec
		for _, sh := range hp.obsShards {
			rec.Drain(sh)
		}
	}
	if hp.traceBufs != nil {
		for _, buf := range hp.traceBufs {
			if buf.Len() > 0 {
				if _, err := r.trace.Write(buf.Bytes()); err != nil {
					fail("sim: trace write: %v", err)
				}
				buf.Reset()
			}
		}
	}
	var pk *panicked
	for i := range hp.panics {
		pv := &hp.panics[i]
		if pv.val == nil {
			continue
		}
		if pk == nil || pv.proc < pk.proc {
			pk = pv
		}
	}
	if pk != nil {
		val := pk.val
		for i := range hp.panics {
			hp.panics[i] = panicked{}
		}
		panic(val)
	}
}
