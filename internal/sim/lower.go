// Lowering: the compile-once / execute-many half of the simulator.
//
// Walking the PFL AST per statement per iteration made the interpreter
// spend its cycles on name lookups (map[string]int64 frames), per-node
// interface dispatch, and a fresh []int64 per array reference. Lower
// translates each procedure body into a slot-addressed closure IR
// exactly once per compiled program:
//
//   - loop variables resolve to integer slots in a flat []int64 frame;
//   - prog.Params constants fold in place (keeping their operator cycle
//     charges, so timing is unchanged);
//   - scalar and array references pre-resolve to *prog.ScalarInfo /
//     *prog.ArrayInfo with precomputed row-major strides, so subscript
//     linearization allocates nothing;
//   - compiler marks (Time-Read windows, bypass) resolve per reference
//     at lower time instead of per executed load;
//   - statements and expressions become pre-bound func(*task) closures,
//     removing the per-node type switch and error-return ladder from
//     the inner loop.
//
// Static errors (unbound names, unknown operators or intrinsics,
// constant zero loop steps) are diagnosed once here. Genuinely dynamic
// errors (subscripts out of range, division by zero, runtime zero
// steps) keep their interpreter messages and abort the run via a typed
// panic recovered in Runner.Run.
//
// The lowering invariant: for any run that completes, the sequence of
// memory references (address, kind, processor, epoch) and the cycle
// charges are identical to the tree-walking interpreter's, so results
// stay bit-for-bit equal to the sequential oracle and all timing
// figures are unchanged.
package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/epochg"
	"repro/internal/marking"
	"repro/internal/memsys"
	"repro/internal/pfl"
	"repro/internal/prog"
	"repro/internal/sections"
)

// Program is a compiled program lowered to the closure IR, ready to be
// executed any number of times (it is immutable after Lower and safe
// for concurrent Runners).
type Program struct {
	prog        *prog.Prog
	marks       *marking.Result
	procs       map[string]*loweredProc
	streamDiags []StreamDiag
}

// Prog exposes the underlying program model (memory layout, scalars).
func (lp *Program) Prog() *prog.Prog { return lp.prog }

// StreamDiags reports every innermost-loop fast-path recognition
// decision, in lowering order (procedures sorted by name). Recognition
// is config-independent; whether a recognized loop actually streams at
// run time depends on the scheme and observation level (see Runner.Run).
func (lp *Program) StreamDiags() []StreamDiag { return lp.streamDiags }

// evalFn evaluates an expression in a task context, charging operator
// cycles and driving memory references through the coherence scheme.
type evalFn func(*task) float64

// stmtFn executes one statement in a task context.
type stmtFn func(*task)

// addrFn computes the word address of an array element reference.
type addrFn func(*task) prog.Word

// loweredProc is one procedure's executable form.
type loweredProc struct {
	name     string
	graph    *epochg.Graph
	numSlots int           // frame size in loop-variable slots
	nodes    []loweredNode // indexed by EFG node ID
}

// modRef names one may-written variable of an epoch node: either a
// formal array binding (resolved through the frame at runtime) or a
// global name.
type modRef struct {
	formal int // binding index, or -1 for a global
	name   string
}

// arraySrc resolves an array name: fixed at lower time for globals,
// through the frame's formal bindings otherwise.
type arraySrc struct {
	fixed  *prog.ArrayInfo
	formal int
}

// loweredDoall is a parallel loop's executable payload.
type loweredDoall struct {
	varSlot int
	lo, hi  evalFn
	body    []stmtFn

	// pos and varName identify the source DOALL for fast-path fallback
	// reporting (-require-fastpath).
	pos     pfl.Pos
	varName string

	// seqOnly forces sequential execution under host parallelism: the
	// body contains a critical or ordered section, whose stores must be
	// visible to other iterations' bypass reads mid-epoch (and whose
	// lock/ordering semantics assume one iteration at a time).
	seqOnly bool
}

// loweredNode is the executable payload of one EFG node.
type loweredNode struct {
	serial []stmtFn // KindSerial

	// KindHeader: loop control. step == nil means step 1.
	loopVarSlot  int
	lo, hi, step evalFn
	stepPos      pfl.Pos

	cond evalFn // KindBranch

	doall *loweredDoall // KindDoall

	callee   *loweredProc // KindCall
	callArgs []arraySrc

	mods []modRef // may-written variables (counting nodes only)
}

// runError carries a runtime diagnostic out of the closure IR;
// Runner.Run recovers it into an ordinary error.
type runError struct{ err error }

// fail aborts the run with a formatted runtime error.
func fail(format string, args ...any) {
	panic(runError{fmt.Errorf(format, args...)})
}

// failAddr aborts with the interpreter's subscript-range diagnostic.
func failAddr(pos pfl.Pos, ai *prog.ArrayInfo, d int, i int64) {
	panic(runError{fmt.Errorf("sim: %s: %v", pos, ai.SubscriptErr(d, i))})
}

// Lower translates every analyzed procedure of a compiled program into
// the closure IR. All static diagnostics surface here, once.
func Lower(p *prog.Prog, marks *marking.Result) (*Program, error) {
	l := &lowerer{p: p, marks: marks, procs: map[string]*loweredProc{}}
	names := make([]string, 0, len(marks.Analysis.Procs))
	for name := range marks.Analysis.Procs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := l.proc(name); err != nil {
			return nil, err
		}
	}
	if l.procs["main"] == nil {
		return nil, fmt.Errorf("sim: no analysis for proc %q", "main")
	}
	return &Program{prog: p, marks: marks, procs: l.procs, streamDiags: l.streamDiags}, nil
}

type lowerer struct {
	p           *prog.Prog
	marks       *marking.Result
	procs       map[string]*loweredProc
	streamDiags []StreamDiag
}

// premark resolves a reference's compiler mark to the memory-system
// read kind and Time-Read window, once.
func (l *lowerer) premark(refID int) (memsys.ReadKind, int) {
	mk := l.marks.MarkOf(refID)
	switch mk.Kind {
	case marking.TimeRead:
		return memsys.ReadTime, mk.Window
	case marking.Bypass:
		return memsys.ReadBypass, 0
	default:
		return memsys.ReadRegular, 0
	}
}

// proc lowers one procedure (memoized; the call graph is acyclic).
func (l *lowerer) proc(name string) (*loweredProc, error) {
	if lp, ok := l.procs[name]; ok {
		return lp, nil
	}
	ps := l.marks.Analysis.Procs[name]
	if ps == nil {
		return nil, fmt.Errorf("sim: no analysis for proc %q", name)
	}
	ast := l.p.AST.Proc(name)
	lp := &loweredProc{name: name, graph: ps.Graph}
	l.procs[name] = lp

	pl := &procLowerer{l: l, procName: name, slots: map[string]int{}, formals: map[string]int{}}
	for i, f := range ast.Formals {
		pl.formals[f.Name] = i
	}
	// Pre-assign a frame slot per loop-variable name. The checker bans
	// all shadowing, so a name identifies at most one simultaneously
	// live loop variable; sequential same-named loops share a slot.
	collectLoopVars(ast.Body, func(v string) {
		if _, ok := pl.slots[v]; !ok {
			pl.slots[v] = len(pl.slots)
		}
	})

	lp.nodes = make([]loweredNode, len(ps.Graph.Nodes))
	for _, n := range ps.Graph.Nodes {
		if err := pl.node(n, &lp.nodes[n.ID], ps.Nodes[n.ID]); err != nil {
			return nil, err
		}
	}
	lp.numSlots = len(pl.slots)
	return lp, nil
}

// blockNeedsSequential reports whether a DOALL body contains a critical
// or ordered section anywhere inside it. Such sections communicate
// between iterations mid-epoch (bypass reads must see other iterations'
// eager stores), so the doall cannot shard across host goroutines.
func blockNeedsSequential(b *pfl.Block) bool {
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *pfl.CriticalStmt, *pfl.OrderedStmt:
			return true
		case *pfl.ForStmt:
			if blockNeedsSequential(st.Body) {
				return true
			}
		case *pfl.IfStmt:
			if blockNeedsSequential(st.Then) {
				return true
			}
			if st.Else != nil && blockNeedsSequential(st.Else) {
				return true
			}
		case *pfl.DoallStmt:
			if blockNeedsSequential(st.Body) {
				return true
			}
		}
	}
	return false
}

// collectLoopVars visits every loop binder in a block, outermost first.
func collectLoopVars(b *pfl.Block, add func(string)) {
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *pfl.ForStmt:
			add(st.Var)
			collectLoopVars(st.Body, add)
		case *pfl.DoallStmt:
			add(st.Var)
			collectLoopVars(st.Body, add)
		case *pfl.IfStmt:
			collectLoopVars(st.Then, add)
			if st.Else != nil {
				collectLoopVars(st.Else, add)
			}
		case *pfl.CriticalStmt:
			collectLoopVars(st.Body, add)
		case *pfl.OrderedStmt:
			collectLoopVars(st.Body, add)
		}
	}
}

// procLowerer lowers statements and expressions of one procedure.
type procLowerer struct {
	l        *lowerer
	procName string
	slots    map[string]int // loop-variable name -> frame slot
	formals  map[string]int // formal array name -> binding index
	inCrit   bool           // lowering inside a critical/ordered body
}

// node lowers one EFG node's payload. Epoch-mod lists are precomputed
// only where the interpreter reported them: serial and doall nodes.
func (pl *procLowerer) node(n *epochg.Node, ln *loweredNode, summary *sections.NodeSummary) error {
	var err error
	switch n.Kind {
	case epochg.KindSerial:
		ln.serial = make([]stmtFn, len(n.Stmts))
		for i, s := range n.Stmts {
			if ln.serial[i], err = pl.stmt(s); err != nil {
				return err
			}
		}
		ln.mods = pl.modRefs(summary)

	case epochg.KindHeader:
		ln.loopVarSlot = pl.slots[n.Loop.Var]
		ln.stepPos = n.Loop.Lo.Position()
		if ln.lo, err = pl.evalFn(n.Loop.Lo); err != nil {
			return err
		}
		if ln.hi, err = pl.evalFn(n.Loop.Hi); err != nil {
			return err
		}
		if n.Loop.Step != nil {
			le, err := pl.expr(n.Loop.Step)
			if err != nil {
				return err
			}
			if le.isConst() && int64(le.val) == 0 {
				return fmt.Errorf("sim: %s: loop step is zero", ln.stepPos)
			}
			ln.step = le.materialize()
		}

	case epochg.KindBranch:
		if ln.cond, err = pl.evalFn(n.Branch.Cond); err != nil {
			return err
		}

	case epochg.KindDoall:
		d := n.Doall
		ld := &loweredDoall{
			varSlot: pl.slots[d.Var],
			seqOnly: blockNeedsSequential(d.Body),
			pos:     d.Pos,
			varName: d.Var,
		}
		if ld.lo, err = pl.evalFn(d.Lo); err != nil {
			return err
		}
		if ld.hi, err = pl.evalFn(d.Hi); err != nil {
			return err
		}
		if ld.body, err = pl.block(d.Body); err != nil {
			return err
		}
		ln.doall = ld
		ln.mods = pl.modRefs(summary)

	case epochg.KindCall:
		ln.callArgs = make([]arraySrc, len(n.Call.Args))
		for i, arg := range n.Call.Args {
			if ln.callArgs[i], err = pl.arraySrc(arg); err != nil {
				return err
			}
		}
		if ln.callee, err = pl.l.proc(n.Call.Name); err != nil {
			return err
		}
	}

	return nil
}

// modRefs pre-translates a node's may-written variable names: formal
// array names become binding indices resolved at runtime.
func (pl *procLowerer) modRefs(summary *sections.NodeSummary) []modRef {
	if summary == nil {
		return nil
	}
	var mods []modRef
	for _, name := range summary.Mod.Names() {
		if fi, ok := pl.formals[name]; ok {
			mods = append(mods, modRef{formal: fi})
		} else {
			mods = append(mods, modRef{formal: -1, name: name})
		}
	}
	return mods
}

// arraySrc resolves an array name through the formal bindings.
func (pl *procLowerer) arraySrc(name string) (arraySrc, error) {
	if i, ok := pl.formals[name]; ok {
		return arraySrc{formal: i}, nil
	}
	if ai, ok := pl.l.p.Arrays[name]; ok {
		return arraySrc{fixed: ai}, nil
	}
	return arraySrc{}, fmt.Errorf("sim: unknown array %q", name)
}

// block lowers a statement block.
func (pl *procLowerer) block(b *pfl.Block) ([]stmtFn, error) {
	fns := make([]stmtFn, len(b.Stmts))
	for i, s := range b.Stmts {
		var err error
		if fns[i], err = pl.stmt(s); err != nil {
			return nil, err
		}
	}
	return fns, nil
}

// stmt lowers one statement into a pre-bound closure.
func (pl *procLowerer) stmt(s pfl.Stmt) (stmtFn, error) {
	switch st := s.(type) {
	case *pfl.AssignStmt:
		rhs, err := pl.evalFn(st.RHS)
		if err != nil {
			return nil, err
		}
		switch lhs := st.LHS.(type) {
		case *pfl.VarRef:
			sc := pl.l.p.Scalars[lhs.Name]
			if sc == nil {
				return nil, fmt.Errorf("sim: %s: assignment to non-scalar %q", lhs.Pos, lhs.Name)
			}
			addr := sc.Addr
			ref := int32(lhs.RefID)
			return func(t *task) {
				v := rhs(t)
				t.charge(1)
				t.r.write(t, addr, v, ref)
			}, nil
		case *pfl.IndexRef:
			af, err := pl.addrFn(lhs)
			if err != nil {
				return nil, err
			}
			ref := int32(lhs.RefID)
			return func(t *task) {
				v := rhs(t)
				t.charge(1)
				t.r.write(t, af(t), v, ref)
			}, nil
		default:
			return nil, fmt.Errorf("sim: invalid assignment target %T", st.LHS)
		}

	case *pfl.ForStmt:
		lo, err := pl.evalFn(st.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := pl.evalFn(st.Hi)
		if err != nil {
			return nil, err
		}
		var step evalFn
		if st.Step != nil {
			le, err := pl.expr(st.Step)
			if err != nil {
				return nil, err
			}
			if le.isConst() && int64(le.val) == 0 {
				return nil, fmt.Errorf("sim: %s: loop step is zero", st.Pos)
			}
			step = le.materialize()
		}
		slot := pl.slots[st.Var]
		body, err := pl.block(st.Body)
		if err != nil {
			return nil, err
		}
		pos := st.Pos
		// Stream recognition (see stream.go). Recognition is static and
		// config-independent: whether a recognized loop actually streams is
		// decided per run (scheme capability, text trace) and per entry
		// (affine guards), with runScalarIters as the always-correct
		// fallback. Loops inside critical/ordered sections never stream:
		// their references take the critical coherence path.
		var sl *streamLoop
		var blk *streamBlock
		if pl.inCrit {
			blk = &streamBlock{pos: st.Pos, reason: "inside a critical/ordered section"}
		} else {
			sl, blk = pl.tryStream(st, slot, body)
		}
		diagIdx := len(pl.l.streamDiags)
		diag := StreamDiag{Proc: pl.procName, Pos: st.Pos, Var: st.Var}
		if sl != nil {
			sl.diag = diagIdx
			diag.OK = true
			diag.Reads, diag.Writes = len(sl.reads), len(sl.writes)
		} else {
			diag.Reason, diag.ReasonPos, diag.Outer = blk.reason, blk.pos, blk.outer
		}
		pl.l.streamDiags = append(pl.l.streamDiags, diag)
		return func(t *task) {
			lo, hi := int64(lo(t)), int64(hi(t))
			s := int64(1)
			if step != nil {
				s = int64(step(t))
				if s == 0 {
					fail("sim: %s: loop step is zero", pos)
				}
			}
			if sl != nil && !t.inCrit {
				if ss := t.r.streamSys; ss != nil {
					if runStream(t, ss, sl, lo, hi, s) {
						t.r.noteStreamRun()
						return
					}
					t.r.noteStreamFallback(diagIdx, "an entry guard failed (non-affine addresses or out-of-model layout this entry)")
				} else {
					t.r.noteStreamFallback(diagIdx, t.r.streamOff)
				}
			}
			runScalarIters(t, slot, body, lo, hi, s)
		}, nil

	case *pfl.IfStmt:
		cond, err := pl.evalFn(st.Cond)
		if err != nil {
			return nil, err
		}
		then, err := pl.block(st.Then)
		if err != nil {
			return nil, err
		}
		var els []stmtFn
		if st.Else != nil {
			if els, err = pl.block(st.Else); err != nil {
				return nil, err
			}
		}
		return func(t *task) {
			v := cond(t)
			t.charge(1)
			if v != 0 {
				for _, b := range then {
					b(t)
				}
			} else {
				for _, b := range els {
					b(t)
				}
			}
		}, nil

	case *pfl.CriticalStmt:
		return pl.criticalBody(st.Body)

	case *pfl.OrderedStmt:
		// The simulator executes DOALL iterations in ascending order, so
		// the doacross ordering holds by construction; the cost and the
		// critical coherence path match CriticalStmt.
		return pl.criticalBody(st.Body)

	default:
		return nil, fmt.Errorf("sim: %s: unexpected statement %T in task body", s.Position(), s)
	}
}

// criticalBody lowers a critical or ordered section body: lock cost,
// then the body with every reference on the critical coherence path.
func (pl *procLowerer) criticalBody(b *pfl.Block) (stmtFn, error) {
	prevCrit := pl.inCrit
	pl.inCrit = true
	body, err := pl.block(b)
	pl.inCrit = prevCrit
	if err != nil {
		return nil, err
	}
	return func(t *task) {
		t.charge(t.r.cfg.LockCycles)
		t.inCrit = true
		for _, s := range body {
			s(t)
		}
		t.inCrit = false
	}, nil
}

// lexpr is a lowered expression: either a pre-bound closure or a folded
// constant with its accumulated operator-cycle cost (folding must not
// change timing, so the charges survive the fold).
type lexpr struct {
	fn   evalFn
	val  float64
	cost int64
}

func (le lexpr) isConst() bool { return le.fn == nil }

func constExpr(v float64, cost int64) lexpr { return lexpr{val: v, cost: cost} }

// materialize turns a lowered expression into an executable closure.
func (le lexpr) materialize() evalFn {
	if le.fn != nil {
		return le.fn
	}
	v := le.val
	if le.cost == 0 {
		return func(*task) float64 { return v }
	}
	c := le.cost
	return func(t *task) float64 { t.charge(c); return v }
}

// evalFn lowers and materializes in one step.
func (pl *procLowerer) evalFn(e pfl.Expr) (evalFn, error) {
	le, err := pl.expr(e)
	if err != nil {
		return nil, err
	}
	return le.materialize(), nil
}

// expr lowers one expression.
func (pl *procLowerer) expr(e pfl.Expr) (lexpr, error) {
	switch ex := e.(type) {
	case *pfl.NumLit:
		return constExpr(ex.Val, 0), nil

	case *pfl.VarRef:
		if slot, ok := pl.slots[ex.Name]; ok {
			return lexpr{fn: func(t *task) float64 { return float64(t.slots[slot]) }}, nil
		}
		if pv, ok := pl.l.p.Params[ex.Name]; ok {
			return constExpr(float64(pv), 0), nil
		}
		if sc := pl.l.p.Scalars[ex.Name]; sc != nil {
			addr := sc.Addr
			kind, window := pl.l.premark(ex.RefID)
			ref := int32(ex.RefID)
			return lexpr{fn: func(t *task) float64 {
				k, w := kind, window
				if t.inCrit {
					k, w = memsys.ReadBypass, 0
				}
				return t.r.read(t, addr, k, w, ref)
			}}, nil
		}
		return lexpr{}, fmt.Errorf("sim: %s: unbound name %q", ex.Pos, ex.Name)

	case *pfl.IndexRef:
		af, err := pl.addrFn(ex)
		if err != nil {
			return lexpr{}, err
		}
		kind, window := pl.l.premark(ex.RefID)
		ref := int32(ex.RefID)
		return lexpr{fn: func(t *task) float64 {
			addr := af(t)
			k, w := kind, window
			if t.inCrit {
				k, w = memsys.ReadBypass, 0
			}
			return t.r.read(t, addr, k, w, ref)
		}}, nil

	case *pfl.UnExpr:
		x, err := pl.expr(ex.X)
		if err != nil {
			return lexpr{}, err
		}
		switch ex.Op {
		case "-":
			if x.isConst() {
				return constExpr(-x.val, x.cost+1), nil
			}
			xf := x.fn
			return lexpr{fn: func(t *task) float64 {
				v := xf(t)
				t.charge(1)
				return -v
			}}, nil
		case "!":
			if x.isConst() {
				return constExpr(boolVal(x.val == 0), x.cost+1), nil
			}
			xf := x.fn
			return lexpr{fn: func(t *task) float64 {
				v := xf(t)
				t.charge(1)
				return boolVal(v == 0)
			}}, nil
		}
		return lexpr{}, fmt.Errorf("sim: %s: unknown unary op %q", ex.Pos, ex.Op)

	case *pfl.CallExpr:
		return pl.intrinsic(ex)

	case *pfl.BinExpr:
		return pl.binary(ex)

	default:
		return lexpr{}, fmt.Errorf("sim: unknown expression %T", e)
	}
}

// binary lowers a binary operation, folding constant subtrees.
func (pl *procLowerer) binary(ex *pfl.BinExpr) (lexpr, error) {
	x, err := pl.expr(ex.X)
	if err != nil {
		return lexpr{}, err
	}
	y, err := pl.expr(ex.Y)
	if err != nil {
		return lexpr{}, err
	}

	// Short-circuit boolean operators: the right operand must not
	// evaluate (or charge) when the left decides.
	switch ex.Op {
	case "&&":
		if x.isConst() {
			if x.val == 0 {
				return constExpr(0, x.cost+1), nil
			}
			if y.isConst() {
				return constExpr(boolVal(y.val != 0), x.cost+1+y.cost), nil
			}
			pre, yf := x.cost+1, y.fn
			return lexpr{fn: func(t *task) float64 {
				t.charge(pre)
				return boolVal(yf(t) != 0)
			}}, nil
		}
		xf, yf := x.fn, y.materialize()
		return lexpr{fn: func(t *task) float64 {
			v := xf(t)
			t.charge(1)
			if v == 0 {
				return 0
			}
			return boolVal(yf(t) != 0)
		}}, nil
	case "||":
		if x.isConst() {
			if x.val != 0 {
				return constExpr(1, x.cost+1), nil
			}
			if y.isConst() {
				return constExpr(boolVal(y.val != 0), x.cost+1+y.cost), nil
			}
			pre, yf := x.cost+1, y.fn
			return lexpr{fn: func(t *task) float64 {
				t.charge(pre)
				return boolVal(yf(t) != 0)
			}}, nil
		}
		xf, yf := x.fn, y.materialize()
		return lexpr{fn: func(t *task) float64 {
			v := xf(t)
			t.charge(1)
			if v != 0 {
				return 1
			}
			return boolVal(yf(t) != 0)
		}}, nil
	}

	if x.isConst() && y.isConst() {
		if v, ok := foldBin(ex.Op, x.val, y.val); ok {
			return constExpr(v, x.cost+y.cost+1), nil
		}
	}
	xf, yf := x.materialize(), y.materialize()
	pos := ex.Pos
	var fn evalFn
	switch ex.Op {
	case "+":
		fn = func(t *task) float64 { a, b := xf(t), yf(t); t.charge(1); return a + b }
	case "-":
		fn = func(t *task) float64 { a, b := xf(t), yf(t); t.charge(1); return a - b }
	case "*":
		fn = func(t *task) float64 { a, b := xf(t), yf(t); t.charge(1); return a * b }
	case "/":
		fn = func(t *task) float64 {
			a, b := xf(t), yf(t)
			t.charge(1)
			if b == 0 {
				fail("sim: %s: division by zero", pos)
			}
			return a / b
		}
	case "%":
		fn = func(t *task) float64 {
			a, b := xf(t), yf(t)
			t.charge(1)
			ib := int64(b)
			if ib == 0 {
				fail("sim: %s: modulo by zero", pos)
			}
			m := int64(a) % ib
			if m < 0 {
				m += absI64(ib)
			}
			return float64(m)
		}
	case "<":
		fn = func(t *task) float64 { a, b := xf(t), yf(t); t.charge(1); return boolVal(a < b) }
	case "<=":
		fn = func(t *task) float64 { a, b := xf(t), yf(t); t.charge(1); return boolVal(a <= b) }
	case ">":
		fn = func(t *task) float64 { a, b := xf(t), yf(t); t.charge(1); return boolVal(a > b) }
	case ">=":
		fn = func(t *task) float64 { a, b := xf(t), yf(t); t.charge(1); return boolVal(a >= b) }
	case "==":
		fn = func(t *task) float64 { a, b := xf(t), yf(t); t.charge(1); return boolVal(a == b) }
	case "!=":
		fn = func(t *task) float64 { a, b := xf(t), yf(t); t.charge(1); return boolVal(a != b) }
	default:
		return lexpr{}, fmt.Errorf("sim: %s: unknown op %q", ex.Pos, ex.Op)
	}
	return lexpr{fn: fn}, nil
}

// foldBin evaluates a non-shortcircuit binary op over constants. The
// error cases (division and modulo by zero) refuse to fold so the
// runtime closure reports them exactly as the interpreter did.
func foldBin(op string, x, y float64) (float64, bool) {
	switch op {
	case "+":
		return x + y, true
	case "-":
		return x - y, true
	case "*":
		return x * y, true
	case "/":
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case "%":
		iy := int64(y)
		if iy == 0 {
			return 0, false
		}
		m := int64(x) % iy
		if m < 0 {
			m += absI64(iy)
		}
		return float64(m), true
	case "<":
		return boolVal(x < y), true
	case "<=":
		return boolVal(x <= y), true
	case ">":
		return boolVal(x > y), true
	case ">=":
		return boolVal(x >= y), true
	case "==":
		return boolVal(x == y), true
	case "!=":
		return boolVal(x != y), true
	default:
		return 0, false
	}
}

// intrinsic lowers a builtin application, folding constant arguments
// when the application cannot error.
func (pl *procLowerer) intrinsic(ex *pfl.CallExpr) (lexpr, error) {
	args := make([]lexpr, len(ex.Args))
	allConst := true
	var cost int64
	for i, a := range ex.Args {
		le, err := pl.expr(a)
		if err != nil {
			return lexpr{}, err
		}
		args[i] = le
		allConst = allConst && le.isConst()
		cost += le.cost
	}
	if _, ok := pfl.Intrinsics[ex.Name]; !ok {
		return lexpr{}, fmt.Errorf("sim: %s: unknown intrinsic %q", ex.Pos, ex.Name)
	}
	if allConst {
		vals := make([]float64, len(args))
		for i, a := range args {
			vals[i] = a.val
		}
		if v, err := evalIntrinsic(ex, vals); err == nil {
			return constExpr(v, cost+4), nil
		}
		// Erroring applications (sqrt of a negative constant, ...) stay
		// unfolded: the diagnostic fires if and when the site executes.
	}
	pos := ex.Pos
	a0 := args[0].materialize()
	var fn evalFn
	switch ex.Name {
	case "abs":
		fn = func(t *task) float64 { v := a0(t); t.charge(4); return math.Abs(v) }
	case "sqrt":
		fn = func(t *task) float64 {
			v := a0(t)
			t.charge(4)
			if v < 0 {
				fail("sim: %s: sqrt of negative value %v", pos, v)
			}
			return math.Sqrt(v)
		}
	case "exp":
		fn = func(t *task) float64 { v := a0(t); t.charge(4); return math.Exp(v) }
	case "log":
		fn = func(t *task) float64 {
			v := a0(t)
			t.charge(4)
			if v <= 0 {
				fail("sim: %s: log of non-positive value %v", pos, v)
			}
			return math.Log(v)
		}
	case "sin":
		fn = func(t *task) float64 { v := a0(t); t.charge(4); return math.Sin(v) }
	case "cos":
		fn = func(t *task) float64 { v := a0(t); t.charge(4); return math.Cos(v) }
	case "floor":
		fn = func(t *task) float64 { v := a0(t); t.charge(4); return math.Floor(v) }
	case "min":
		a1 := args[1].materialize()
		fn = func(t *task) float64 { v0, v1 := a0(t), a1(t); t.charge(4); return math.Min(v0, v1) }
	case "max":
		a1 := args[1].materialize()
		fn = func(t *task) float64 { v0, v1 := a0(t), a1(t); t.charge(4); return math.Max(v0, v1) }
	}
	return lexpr{fn: fn}, nil
}

// addrFn lowers an array element reference to an allocation-free
// address computation over precomputed strides. Ranks 1 and 2 (the
// kernels' shapes) get dedicated closures; higher ranks and formal
// bindings share the generic path.
func (pl *procLowerer) addrFn(e *pfl.IndexRef) (addrFn, error) {
	src, err := pl.arraySrc(e.Name)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %v", e.Pos, err)
	}
	subs := make([]evalFn, len(e.Subs))
	for i, s := range e.Subs {
		if subs[i], err = pl.evalFn(s); err != nil {
			return nil, err
		}
	}
	pos := e.Pos
	if ai := src.fixed; ai != nil {
		if len(subs) != len(ai.Dims) {
			return nil, fmt.Errorf("sim: %s: prog: array %s: got %d subscripts, want %d",
				pos, ai.Name, len(subs), len(ai.Dims))
		}
		switch len(subs) {
		case 1:
			s0, d0, base := subs[0], ai.Dims[0], ai.Base
			return func(t *task) prog.Word {
				i := int64(s0(t))
				if i < 0 || i >= d0 {
					failAddr(pos, ai, 0, i)
				}
				return base + prog.Word(i)
			}, nil
		case 2:
			s0, s1 := subs[0], subs[1]
			d0, d1, stride0, base := ai.Dims[0], ai.Dims[1], ai.Strides[0], ai.Base
			return func(t *task) prog.Word {
				i := int64(s0(t))
				j := int64(s1(t))
				if i < 0 || i >= d0 {
					failAddr(pos, ai, 0, i)
				}
				if j < 0 || j >= d1 {
					failAddr(pos, ai, 1, j)
				}
				return base + prog.Word(i*stride0+j)
			}, nil
		default:
			return func(t *task) prog.Word { return addrGeneric(t, pos, ai, subs) }, nil
		}
	}
	fi := src.formal
	return func(t *task) prog.Word { return addrGeneric(t, pos, t.arrays[fi], subs) }, nil
}

// addrGeneric linearizes a reference of any rank against a (possibly
// runtime-bound) array without allocating.
func addrGeneric(t *task, pos pfl.Pos, ai *prog.ArrayInfo, subs []evalFn) prog.Word {
	var lin int64
	for d, sf := range subs {
		i := int64(sf(t))
		if i < 0 || i >= ai.Dims[d] {
			failAddr(pos, ai, d, i)
		}
		lin += i * ai.Strides[d]
	}
	return ai.Base + prog.Word(lin)
}
