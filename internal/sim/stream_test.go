package sim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/swschemes"
	"repro/internal/tpi"
)

// streamSystems builds the Streamer-capable schemes (plus a non-capable
// one) for equivalence runs.
func streamSystems(cfg machine.Config, memWords int64) map[string]memsys.System {
	return map[string]memsys.System{
		"BASE": swschemes.NewBase(cfg, memWords),
		"SC":   swschemes.NewSC(cfg, memWords),
		"TPI":  tpi.New(cfg, memWords),
	}
}

// runStreamCase runs src on one fresh system with FastPath set, and
// returns (cycles, snapshot, memory image).
func runStreamCase(t *testing.T, src, scheme string, fast bool, mut func(*machine.Config)) (int64, any, []float64) {
	t.Helper()
	p, m := compileSrc(t, src)
	cfg := machine.Default(machine.SchemeTPI)
	cfg.Procs = 4
	cfg.FastPath = fast
	if mut != nil {
		mut(&cfg)
	}
	sys := streamSystems(cfg, p.MemWords)[scheme]
	st, err := New(p, m, sys, cfg).Run()
	if err != nil {
		t.Fatalf("%s fast=%v: %v", scheme, fast, err)
	}
	return st.Cycles, st.Snapshot(), sys.Mem().Snapshot()
}

// streamEquivSrc exercises the recognizer's full surface: 1D and 2D
// affine subscripts (including reversed and strided), stride-0 scalar
// read and write streams (a reduction), multi-statement bodies,
// intrinsics and mod in the RHS, and enclosing-loop variables in
// subscripts.
const streamEquivSrc = `
program p
param n = 24
array A[n][n]
array Anew[n][n]
array B[n]
scalar acc = 0
scalar lastj = 0
proc main() {
  doall i = 0 to n-1 {
    for j = 0 to n-1 {
      A[i][j] = i*n + j
      B[j] = j % 5
    }
  }
  doall i = 1 to n-2 {
    for j = n-2 to 1 step 0-1 {
      Anew[i][j] = (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]) / 4 + sqrt(B[j])
    }
  }
  for i = 0 to n-1 {
    for j = 0 to n-1 step 3 {
      acc = acc + Anew[i][j] + min(B[j], 2)
      lastj = j
    }
  }
}
`

// TestStreamFastPathEquivalence is the tentpole's oracle at the sim
// level: the fast path must produce bit-identical cycles, stats
// snapshots, and final memory images on every stream-capable scheme,
// under weak and sequential consistency, static and dynamic scheduling,
// and TPI write-back.
func TestStreamFastPathEquivalence(t *testing.T) {
	muts := map[string]func(*machine.Config){
		"default":   nil,
		"seqc":      func(c *machine.Config) { c.SeqConsistency = true },
		"dynamic":   func(c *machine.Config) { c.DynamicSched = true },
		"cyclic":    func(c *machine.Config) { c.CyclicSched = true },
		"writeback": func(c *machine.Config) { c.TPIWriteBack = true },
		"linett":    func(c *machine.Config) { c.LineTimetags = true },
	}
	for _, scheme := range []string{"BASE", "SC", "TPI"} {
		for name, mut := range muts {
			t.Run(scheme+"/"+name, func(t *testing.T) {
				onC, onS, onM := runStreamCase(t, streamEquivSrc, scheme, true, mut)
				offC, offS, offM := runStreamCase(t, streamEquivSrc, scheme, false, mut)
				if onC != offC {
					t.Errorf("cycles diverge: fast %d, scalar %d", onC, offC)
				}
				if !reflect.DeepEqual(onS, offS) {
					t.Errorf("snapshots diverge:\nfast   %+v\nscalar %+v", onS, offS)
				}
				if !reflect.DeepEqual(onM, offM) {
					t.Errorf("final memory images diverge")
				}
			})
		}
	}
}

// TestStreamDiags pins the recognition report: which loops stream, and
// the reason (with position) for the ones that do not.
func TestStreamDiags(t *testing.T) {
	p, m := compileSrc(t, `
program p
param n = 8
array A[n]
array IDX[n]
scalar s = 0
proc main() {
  doall i = 0 to n-1 {
    for j = 0 to n-1 { A[j] = j }
    for j = 0 to n-1 { s = s + A[IDX[j]] }
    for j = 0 to n-1 {
      for k = 0 to n-1 { s = s + 1 }
    }
    for j = 0 to n-1 {
      if (j) { s = s + 1 }
    }
  }
}
`)
	lp, err := Lower(p, m)
	if err != nil {
		t.Fatal(err)
	}
	diags := lp.StreamDiags()
	// Four "for j" loops plus the nested "for k" (lowered within its
	// parent's body, so it reports too).
	byReason := map[string]int{}
	ok := 0
	for _, d := range diags {
		if d.OK {
			ok++
		} else {
			byReason[d.Reason]++
		}
	}
	if ok != 2 { // A[j]=j and the innermost k loop
		t.Errorf("streamable loops = %d, want 2 (diags: %+v)", ok, diags)
	}
	wantReasons := []string{
		`dynamic subscript: reads array "IDX"`,
		"nested loop",
		"conditional",
	}
	for _, want := range wantReasons {
		found := false
		for r := range byReason {
			if strings.Contains(r, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic mentioning %q (got %v)", want, byReason)
		}
	}
}

// TestStreamRuntimeErrors: a fault inside a streamed loop must abort
// with the exact scalar diagnostic — division by zero from the postfix
// interpreter, and a subscript range fault via the guard's fallback to
// the scalar iteration.
func TestStreamRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"div-by-zero", `
program p
param n = 8
array A[n]
scalar z = 0
proc main() {
  doall i = 0 to 0 {
    for j = 0 to n-1 { A[j] = 1 / z }
  }
}
`, "division by zero"},
		{"subscript-range", `
program p
param n = 8
array A[n]
proc main() {
  doall i = 0 to 0 {
    for j = 0 to n-1 { A[j+1] = j }
  }
}
`, "subscript"},
		{"sqrt-negative", `
program p
param n = 8
array A[n]
array B[n]
proc main() {
  doall i = 0 to 0 {
    for j = 0 to n-1 { B[j] = 0 - j }
  }
  doall i = 0 to 0 {
    for j = 0 to n-1 { A[j] = sqrt(B[j]) }
  }
}
`, "sqrt of negative value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, m := compileSrc(t, tc.src)
			var msgs []string
			for _, fast := range []bool{true, false} {
				cfg := machine.Default(machine.SchemeTPI)
				cfg.Procs = 2
				cfg.FastPath = fast
				sys := tpi.New(cfg, p.MemWords)
				_, err := New(p, m, sys, cfg).Run()
				if err == nil || !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("fast=%v: err = %v, want %q", fast, err, tc.want)
				}
				msgs = append(msgs, err.Error())
			}
			if msgs[0] != msgs[1] {
				t.Errorf("diagnostics diverge:\nfast   %s\nscalar %s", msgs[0], msgs[1])
			}
		})
	}
}

// TestStreamZeroAndSingleIteration: degenerate trip counts must leave
// the loop-variable slot and the cycle count exactly as the scalar loop
// does (zero iterations touch nothing; the slot holds the last executed
// value afterwards).
func TestStreamZeroAndSingleIteration(t *testing.T) {
	src := `
program p
param n = 8
array A[n]
scalar seen = 0
proc main() {
  doall i = 0 to 0 {
    for j = 5 to 2 { A[j] = j }
    for j = 3 to 3 { A[j] = j }
    seen = 1
  }
}
`
	for _, scheme := range []string{"BASE", "SC", "TPI"} {
		onC, onS, onM := runStreamCase(t, src, scheme, true, nil)
		offC, offS, offM := runStreamCase(t, src, scheme, false, nil)
		if onC != offC || !reflect.DeepEqual(onS, offS) || !reflect.DeepEqual(onM, offM) {
			t.Errorf("%s: degenerate loops diverge (cycles %d vs %d)", scheme, onC, offC)
		}
	}
}

// TestStreamNonCapableScheme: a Streamer that opts out (two-level TPI)
// must run fully scalar and still match its own fastpath-off run.
func TestStreamNonCapableScheme(t *testing.T) {
	p, m := compileSrc(t, streamEquivSrc)
	run := func(fast bool) (int64, []float64) {
		cfg := machine.Default(machine.SchemeTPI)
		cfg.Procs = 4
		cfg.L1Words = 1024
		cfg.FastPath = fast
		sys := tpi.NewTwoLevel(cfg, p.MemWords)
		st, err := New(p, m, sys, cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles, sys.Mem().Snapshot()
	}
	onC, onM := run(true)
	offC, offM := run(false)
	if onC != offC || !reflect.DeepEqual(onM, offM) {
		t.Errorf("two-level TPI diverges under FastPath (cycles %d vs %d)", onC, offC)
	}
}

// TestStreamCriticalSectionStaysScalar: a streamable-shaped loop inside
// a critical section must take the scalar path (bypass reads, critical
// writes) — results must match the fastpath-off run exactly.
func TestStreamCriticalSectionStaysScalar(t *testing.T) {
	src := `
program p
param n = 8
array A[n]
scalar s = 0
proc main() {
  doall i = 0 to 3 {
    critical {
      for j = 0 to n-1 { s = s + 1 }
    }
  }
  doall i = 0 to 3 {
    for j = 0 to n-1 { A[j] = s + j }
  }
}
`
	for _, scheme := range []string{"SC", "TPI"} {
		onC, onS, onM := runStreamCase(t, src, scheme, true, nil)
		offC, offS, offM := runStreamCase(t, src, scheme, false, nil)
		if onC != offC || !reflect.DeepEqual(onS, offS) || !reflect.DeepEqual(onM, offM) {
			t.Errorf("%s: critical-section loop diverges (cycles %d vs %d)", scheme, onC, offC)
		}
	}
}
