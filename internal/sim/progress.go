// Run-progress sampling: an optional callback invoked at epoch barriers
// with a snapshot of the run's counters, for live telemetry (tpiserved's
// /metrics and per-run SSE streams) without touching the hot reference
// path. All sampling happens at the barrier, after the lane flush and
// merge, where the memory-system totals are sequential-equivalent; with
// no callback attached the cost is one nil test per epoch.
package sim

import (
	"sync/atomic"

	"repro/internal/memsys"
)

// Progress is one barrier-sampled snapshot of a running simulation.
// Every numeric field is cumulative over the run (monotonically
// non-decreasing), so consumers may export successive snapshots as
// counter deltas.
type Progress struct {
	// Epoch and Cycles are the global epoch counter and simulated-cycle
	// clock at the sampling barrier. MaxEpochs is the configured runaway
	// bound — the only a-priori "total" an execution-driven run has.
	Epoch     int64
	Cycles    int64
	MaxEpochs int64

	// Counters aggregates the memory system's reference, miss, and
	// coherence counters (per scheme, the scheme being the run's).
	Counters memsys.CounterSample

	// StreamLoops counts recognized affine loops executed through the
	// scheme's stream cursors; StreamFallbacks counts recognized loops
	// that fell back to the scalar path (entry guard failed, or the run
	// configuration kept the fast path off).
	StreamLoops     int64
	StreamFallbacks int64

	// HostParEpochs counts DOALL epochs sharded across host workers;
	// SeqDoallEpochs counts DOALL epochs dispatched sequentially
	// (including seqOnly and dynamic-scheduling epochs).
	// HostParWorkers is the active worker count (0 when host
	// parallelism is off for this run).
	HostParEpochs  int64
	SeqDoallEpochs int64
	HostParWorkers int

	// ClusterWords is the cumulative word traffic served by each mesh
	// cluster's home directory/memory slice, indexed by cluster. Nil for
	// non-mesh topologies. Like every other field it is cumulative, so
	// consumers can export deltas and watch for hot-spotted homes.
	ClusterWords []int64

	// Done marks the final snapshot of the run; Aborted additionally
	// marks a run that ended early (context cancellation, deadline, or
	// a runtime fault) rather than completing.
	Done    bool
	Aborted bool
}

// ProgressFunc receives progress snapshots. It is called on the
// simulating goroutine between epochs — keep it cheap (atomic counter
// updates, a non-blocking channel send); a slow callback stalls the run.
type ProgressFunc func(Progress)

// SetProgress attaches a progress callback, sampled at most once per
// every epochs (minimum 1) plus a final Done snapshot when the run
// completes or aborts. Pass nil to disable. Sampling reads a few dozen
// counters at the barrier; the per-reference hot path is untouched, so
// the run's statistics are bit-identical with or without a callback.
func (r *Runner) SetProgress(fn ProgressFunc, every int64) {
	if every < 1 {
		every = 1
	}
	r.progress = fn
	r.progressEvery = every
}

// maybeEmitProgress fires the callback when the sampling stride has
// elapsed. Called at the end of endEpoch, after the barrier merge.
func (r *Runner) maybeEmitProgress() {
	if r.progress == nil || r.epoch-r.progressLast < r.progressEvery {
		return
	}
	r.progressLast = r.epoch
	r.emitProgress(false, false)
}

func (r *Runner) emitProgress(done, aborted bool) {
	workers := 0
	if r.hostpar != nil {
		workers = r.hostpar.workers
	}
	var clusterWords []int64
	if ct, ok := r.sys.(memsys.ClusterTraffic); ok {
		clusterWords = ct.ClusterHomeWords()
	}
	r.progress(Progress{
		Epoch:           r.epoch,
		Cycles:          r.cycles,
		MaxEpochs:       r.maxEpochs,
		Counters:        memsys.SampleStats(r.sys.Stats()),
		StreamLoops:     r.streamLoops.Load(),
		StreamFallbacks: r.streamFallbacks.Load(),
		HostParEpochs:   r.hostparEpochs,
		SeqDoallEpochs:  r.seqDoallEpochs,
		HostParWorkers:  workers,
		ClusterWords:    clusterWords,
		Done:            done,
		Aborted:         aborted,
	})
}

// noteStreamRun tallies one streamed loop execution. Stream loops run
// inside host-parallel workers, so the tally is atomic; one add per
// loop entry (not per iteration) is noise against the loop body.
func (r *Runner) noteStreamRun() { r.streamLoops.Add(1) }

// atomicI64 is a tiny alias so the Runner struct reads cleanly.
type atomicI64 = atomic.Int64
