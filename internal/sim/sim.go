// Package sim is the execution-driven simulator: it interprets a
// compiled PFL program by walking each procedure's epoch flow graph,
// scheduling DOALL iterations across the simulated processors, and
// driving every memory reference through a coherence scheme's memory
// system — so data values actually flow through the simulated caches and
// any coherence failure corrupts the results visibly.
//
// Timing model (the paper's): single-issue processors, weak consistency
// (reads stall on misses, writes retire through an infinite write
// buffer), a global barrier at every epoch boundary, and per-epoch
// execution time equal to the slowest processor in that epoch.
// Tasks of an epoch are simulated one at a time in ascending iteration
// order; DOALL independence makes the result order-insensitive, and
// critical sections execute in the same order as a sequential run, so
// results are bit-for-bit comparable with the sequential oracle.
package sim

import (
	"fmt"
	"io"
	"math"

	"repro/internal/epochg"
	"repro/internal/machine"
	"repro/internal/marking"
	"repro/internal/memsys"
	"repro/internal/pfl"
	"repro/internal/prog"
	"repro/internal/stats"
)

// Runner executes one program on one memory system.
type Runner struct {
	prog  *prog.Prog
	marks *marking.Result
	sys   memsys.System
	cfg   machine.Config
	trace io.Writer

	epoch      int64
	cycles     int64
	procWork   []int64 // cycles consumed by each processor in the current epoch
	procBusy   []int64 // lifetime busy cycles per processor
	serialNext int     // rotation state for MigrateSerial
	maxEpochs  int64
}

// New builds a runner. The marking must have been computed for this
// program.
func New(p *prog.Prog, marks *marking.Result, sys memsys.System, cfg machine.Config) *Runner {
	maxE := cfg.MaxEpochs
	if maxE == 0 {
		maxE = 50_000_000
	}
	return &Runner{
		prog:      p,
		marks:     marks,
		sys:       sys,
		cfg:       cfg,
		procWork:  make([]int64, cfg.Procs),
		procBusy:  make([]int64, cfg.Procs),
		maxEpochs: maxE,
	}
}

// Run initializes memory from declarations, executes proc main, and
// returns the accumulated statistics.
func (r *Runner) Run() (*stats.Stats, error) {
	for _, sc := range r.prog.Scalars {
		r.sys.Mem().InitWord(sc.Addr, sc.Init)
	}
	if err := r.runProc("main", map[string]*prog.ArrayInfo{}); err != nil {
		return nil, err
	}
	r.endEpoch() // flush trailing structural-node work into the total
	st := r.sys.Stats()
	st.Cycles = r.cycles
	st.Epochs = r.epoch
	st.ProcBusy = append([]int64(nil), r.procBusy...)
	return st, nil
}

// task is the execution context of one running task.
type task struct {
	r        *Runner
	proc     int
	env      map[string]int64
	bindings map[string]*prog.ArrayInfo
	inCrit   bool
}

// charge adds processor cycles to the task's processor.
func (t *task) charge(c int64) { t.r.procWork[t.proc] += c }

// runProc walks a procedure's epoch flow graph.
func (r *Runner) runProc(name string, bindings map[string]*prog.ArrayInfo) error {
	ps := r.marks.Analysis.Procs[name]
	if ps == nil {
		return fmt.Errorf("sim: no analysis for proc %q", name)
	}
	g := ps.Graph

	type loopState struct {
		active      bool
		v, hi, step int64
	}
	loops := map[*epochg.Node]*loopState{}
	env := map[string]int64{}

	n := g.Entry
	for n != nil {
		// Only real epochs (see epochg.Node.Counts) advance the counter
		// and pay the barrier; structural nodes execute inside the
		// surrounding epoch, exactly as the static distances assume.
		counts := n.Counts()
		if counts {
			if err := r.enterEpoch(); err != nil {
				return err
			}
		}
		switch n.Kind {
		case epochg.KindEntry:
			n = onlySucc(n)

		case epochg.KindExit:
			return nil // exit nodes have no references

		case epochg.KindSerial:
			t := r.newSerialTask(env, bindings)
			for _, s := range n.Stmts {
				if err := t.stmt(s); err != nil {
					return err
				}
			}
			if counts {
				r.noteEpochMods(name, n, bindings)
				r.endEpoch()
			}
			n = onlySucc(n)

		case epochg.KindHeader:
			t := r.newSerialTask(env, bindings)
			ls := loops[n]
			if ls == nil || !ls.active {
				lo, err := t.evalInt(n.Loop.Lo)
				if err != nil {
					return err
				}
				hi, err := t.evalInt(n.Loop.Hi)
				if err != nil {
					return err
				}
				step := int64(1)
				if n.Loop.Step != nil {
					if step, err = t.evalInt(n.Loop.Step); err != nil {
						return err
					}
					if step == 0 {
						return fmt.Errorf("sim: %s: loop step is zero", n.Loop.Lo.Position())
					}
				}
				ls = &loopState{active: true, v: lo, hi: hi, step: step}
				loops[n] = ls
			} else {
				ls.v += ls.step
			}
			t.charge(2) // loop bookkeeping
			env[n.Loop.Var] = ls.v
			cont := (ls.step > 0 && ls.v <= ls.hi) || (ls.step < 0 && ls.v >= ls.hi)
			if cont {
				n = n.Loop.Body
			} else {
				ls.active = false
				delete(env, n.Loop.Var)
				n = loopExit(n)
			}

		case epochg.KindBranch:
			t := r.newSerialTask(env, bindings)
			v, err := t.eval(n.Branch.Cond)
			if err != nil {
				return err
			}
			if v != 0 {
				n = n.Branch.Then
			} else {
				n = n.Branch.Else
			}

		case epochg.KindDoall:
			if err := r.runDoall(n.Doall, env, bindings); err != nil {
				return err
			}
			r.noteEpochMods(name, n, bindings)
			r.endEpoch()
			n = onlySucc(n)

		case epochg.KindCall:
			// The call node's own epoch is the call prologue; the callee's
			// epochs follow inside it.
			r.endEpoch()
			callee := r.prog.AST.Proc(n.Call.Name)
			nb := map[string]*prog.ArrayInfo{}
			for i, f := range callee.Formals {
				ai, err := r.resolveArray(n.Call.Args[i], bindings)
				if err != nil {
					return err
				}
				nb[f.Name] = ai
			}
			if err := r.runProc(n.Call.Name, nb); err != nil {
				return err
			}
			n = onlySucc(n)

		default:
			return fmt.Errorf("sim: unknown node kind %v", n.Kind)
		}
	}
	return nil
}

// onlySucc returns a node's unique non-structural successor.
func onlySucc(n *epochg.Node) *epochg.Node {
	if len(n.Succs) == 0 {
		return nil
	}
	return n.Succs[len(n.Succs)-1]
}

// loopExit finds the header's successor outside the loop body.
func loopExit(h *epochg.Node) *epochg.Node {
	for _, s := range h.Succs {
		if s != h.Loop.Body {
			return s
		}
	}
	return nil
}

// SetTrace attaches an event trace writer: one line per epoch boundary
// and per memory reference (the execution-driven tooling view of a run).
// Pass nil to disable. Tracing is line-oriented text:
//
//	E <epoch>
//	R <proc> <addr> <kind> <stall>
//	W <proc> <addr> <crit> <stall>
func (r *Runner) SetTrace(w io.Writer) { r.trace = w }

// enterEpoch advances the global epoch counter and applies boundary costs.
func (r *Runner) enterEpoch() error {
	r.epoch++
	if r.trace != nil {
		fmt.Fprintf(r.trace, "E %d\n", r.epoch)
	}
	if r.epoch > r.maxEpochs {
		return fmt.Errorf("sim: epoch limit exceeded (%d): runaway loop?", r.maxEpochs)
	}
	stall := r.sys.EpochBoundary(r.epoch)
	if stall > 0 {
		r.cycles += stall
	}
	return nil
}

// noteEpochMods reports the finishing epoch's may-written variables to a
// version-tracking scheme (VC), translating formal array names to the
// bound actuals.
func (r *Runner) noteEpochMods(procName string, n *epochg.Node, bindings map[string]*prog.ArrayInfo) {
	vs, ok := r.sys.(memsys.Versioned)
	if !ok {
		return
	}
	ps := r.marks.Analysis.Procs[procName]
	mods := ps.Nodes[n.ID].Mod
	if len(mods) == 0 {
		return
	}
	names := make([]string, 0, len(mods))
	for name := range mods {
		if ai, ok := bindings[name]; ok {
			names = append(names, ai.Name)
		} else {
			names = append(names, name)
		}
	}
	vs.EpochMods(names)
}

// endEpoch closes the current epoch: global time advances by the slowest
// processor plus the barrier cost.
func (r *Runner) endEpoch() {
	var maxWork int64
	for p := range r.procWork {
		if r.procWork[p] > maxWork {
			maxWork = r.procWork[p]
		}
		r.procBusy[p] += r.procWork[p]
		r.procWork[p] = 0
	}
	r.cycles += maxWork + r.cfg.BarrierCycles
	r.sys.Stats().BarrierCycles += r.cfg.BarrierCycles
	r.sys.Net().AdvanceTo(r.cycles)
}

// newSerialTask builds the task context for serial work, honoring the
// serial-task placement policy.
func (r *Runner) newSerialTask(env map[string]int64, bindings map[string]*prog.ArrayInfo) *task {
	p := 0
	if r.cfg.MigrateSerial {
		p = r.serialNext
		r.serialNext = (r.serialNext + 1) % r.cfg.Procs
	}
	return &task{r: r, proc: p, env: env, bindings: bindings}
}

// runDoall schedules and executes a parallel loop.
func (r *Runner) runDoall(d *pfl.DoallStmt, env map[string]int64, bindings map[string]*prog.ArrayInfo) error {
	// Bounds are evaluated once by the scheduling (serial) task.
	st := r.newSerialTask(env, bindings)
	lo, err := st.evalInt(d.Lo)
	if err != nil {
		return err
	}
	hi, err := st.evalInt(d.Hi)
	if err != nil {
		return err
	}
	st.charge(4) // dispatch overhead
	if hi < lo {
		return nil
	}
	n := hi - lo + 1
	chunk := (n + int64(r.cfg.Procs) - 1) / int64(r.cfg.Procs)

	for it := lo; it <= hi; it++ {
		var p int64
		switch {
		case r.cfg.DynamicSched:
			// self-scheduling: next task goes to the least-loaded processor
			p = 0
			for q := 1; q < r.cfg.Procs; q++ {
				if r.procWork[q] < r.procWork[p] {
					p = int64(q)
				}
			}
		case r.cfg.CyclicSched:
			p = (it - lo) % int64(r.cfg.Procs)
		default:
			p = (it - lo) / chunk
		}
		t := &task{
			r:        r,
			proc:     int(p),
			env:      make(map[string]int64, len(env)+1),
			bindings: bindings,
		}
		for k, v := range env {
			t.env[k] = v
		}
		t.env[d.Var] = it
		t.charge(2) // per-task scheduling overhead
		for _, s := range d.Body.Stmts {
			if err := t.stmt(s); err != nil {
				return err
			}
		}
	}
	return nil
}

// resolveArray maps an array name through formal bindings to its storage.
func (r *Runner) resolveArray(name string, bindings map[string]*prog.ArrayInfo) (*prog.ArrayInfo, error) {
	if ai, ok := bindings[name]; ok {
		return ai, nil
	}
	if ai, ok := r.prog.Arrays[name]; ok {
		return ai, nil
	}
	return nil, fmt.Errorf("sim: unknown array %q", name)
}

// stmt executes one statement in the task context.
func (t *task) stmt(s pfl.Stmt) error {
	switch st := s.(type) {
	case *pfl.AssignStmt:
		v, err := t.eval(st.RHS)
		if err != nil {
			return err
		}
		t.charge(1)
		return t.store(st.LHS, v)

	case *pfl.ForStmt:
		lo, err := t.evalInt(st.Lo)
		if err != nil {
			return err
		}
		hi, err := t.evalInt(st.Hi)
		if err != nil {
			return err
		}
		step := int64(1)
		if st.Step != nil {
			if step, err = t.evalInt(st.Step); err != nil {
				return err
			}
			if step == 0 {
				return fmt.Errorf("sim: %s: loop step is zero", st.Pos)
			}
		}
		for v := lo; (step > 0 && v <= hi) || (step < 0 && v >= hi); v += step {
			t.env[st.Var] = v
			t.charge(2)
			for _, bs := range st.Body.Stmts {
				if err := t.stmt(bs); err != nil {
					return err
				}
			}
		}
		delete(t.env, st.Var)
		return nil

	case *pfl.IfStmt:
		v, err := t.eval(st.Cond)
		if err != nil {
			return err
		}
		t.charge(1)
		if v != 0 {
			for _, bs := range st.Then.Stmts {
				if err := t.stmt(bs); err != nil {
					return err
				}
			}
		} else if st.Else != nil {
			for _, bs := range st.Else.Stmts {
				if err := t.stmt(bs); err != nil {
					return err
				}
			}
		}
		return nil

	case *pfl.CriticalStmt:
		t.charge(t.r.cfg.LockCycles)
		t.inCrit = true
		for _, bs := range st.Body.Stmts {
			if err := t.stmt(bs); err != nil {
				t.inCrit = false
				return err
			}
		}
		t.inCrit = false
		return nil

	case *pfl.OrderedStmt:
		// The simulator executes DOALL iterations in ascending order, so
		// the doacross ordering holds by construction; the synchronization
		// cost models the iteration-order token handoff.
		t.charge(t.r.cfg.LockCycles)
		t.inCrit = true // ordered data takes the critical coherence path
		for _, bs := range st.Body.Stmts {
			if err := t.stmt(bs); err != nil {
				t.inCrit = false
				return err
			}
		}
		t.inCrit = false
		return nil

	default:
		return fmt.Errorf("sim: %s: unexpected statement %T in task body", s.Position(), s)
	}
}

// store writes a value to an assignment target.
func (t *task) store(lhs pfl.Expr, v float64) error {
	switch e := lhs.(type) {
	case *pfl.VarRef:
		sc := t.r.prog.Scalars[e.Name]
		if sc == nil {
			return fmt.Errorf("sim: %s: assignment to non-scalar %q", e.Pos, e.Name)
		}
		stall := t.r.sys.Write(t.proc, sc.Addr, v, t.inCrit)
		t.charge(1 + stall)
		t.traceWrite(sc.Addr, stall)
		return nil
	case *pfl.IndexRef:
		addr, err := t.address(e)
		if err != nil {
			return err
		}
		stall := t.r.sys.Write(t.proc, addr, v, t.inCrit)
		t.charge(1 + stall)
		t.traceWrite(addr, stall)
		return nil
	default:
		return fmt.Errorf("sim: invalid assignment target %T", lhs)
	}
}

// traceWrite logs one store event when tracing is active.
func (t *task) traceWrite(addr prog.Word, stall int64) {
	if t.r.trace == nil {
		return
	}
	crit := 0
	if t.inCrit {
		crit = 1
	}
	fmt.Fprintf(t.r.trace, "W %d %d %d %d\n", t.proc, addr, crit, stall)
}

// address computes the word address of an array element reference.
func (t *task) address(e *pfl.IndexRef) (prog.Word, error) {
	ai, err := t.r.resolveArray(e.Name, t.bindings)
	if err != nil {
		return 0, fmt.Errorf("sim: %s: %v", e.Pos, err)
	}
	idx := make([]int64, len(e.Subs))
	for i, sub := range e.Subs {
		v, err := t.evalInt(sub)
		if err != nil {
			return 0, err
		}
		idx[i] = v
	}
	addr, err := t.r.prog.Address(ai, idx)
	if err != nil {
		return 0, fmt.Errorf("sim: %s: %v", e.Pos, err)
	}
	return addr, nil
}

// load performs a read reference through the memory system using the
// compiler's mark (forced to bypass inside critical sections).
func (t *task) load(addr prog.Word, refID int) float64 {
	kind := memsys.ReadRegular
	window := 0
	if t.inCrit {
		kind = memsys.ReadBypass
	} else {
		mk := t.r.marks.MarkOf(refID)
		switch mk.Kind {
		case marking.TimeRead:
			kind = memsys.ReadTime
			window = mk.Window
		case marking.Bypass:
			kind = memsys.ReadBypass
		}
	}
	v, stall := t.r.sys.Read(t.proc, addr, kind, window)
	t.charge(stall)
	if t.r.trace != nil {
		fmt.Fprintf(t.r.trace, "R %d %d %s %d\n", t.proc, addr, kind, stall)
	}
	return v
}

// evalInt evaluates an expression as an integer (subscripts, bounds).
func (t *task) evalInt(e pfl.Expr) (int64, error) {
	v, err := t.eval(e)
	if err != nil {
		return 0, err
	}
	return int64(v), nil
}

// eval evaluates an expression, charging one cycle per operator and
// driving every memory reference through the coherence scheme.
func (t *task) eval(e pfl.Expr) (float64, error) {
	switch ex := e.(type) {
	case *pfl.NumLit:
		return ex.Val, nil
	case *pfl.VarRef:
		if v, ok := t.env[ex.Name]; ok {
			return float64(v), nil
		}
		if pv, ok := t.r.prog.Params[ex.Name]; ok {
			return float64(pv), nil
		}
		if sc := t.r.prog.Scalars[ex.Name]; sc != nil {
			return t.load(sc.Addr, ex.RefID), nil
		}
		return 0, fmt.Errorf("sim: %s: unbound name %q", ex.Pos, ex.Name)
	case *pfl.IndexRef:
		addr, err := t.address(ex)
		if err != nil {
			return 0, err
		}
		return t.load(addr, ex.RefID), nil
	case *pfl.UnExpr:
		v, err := t.eval(ex.X)
		if err != nil {
			return 0, err
		}
		t.charge(1)
		switch ex.Op {
		case "-":
			return -v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("sim: %s: unknown unary op %q", ex.Pos, ex.Op)
	case *pfl.CallExpr:
		args := make([]float64, len(ex.Args))
		for i, a := range ex.Args {
			v, err := t.eval(a)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		t.charge(4) // intrinsics cost a few cycles
		return evalIntrinsic(ex, args)
	case *pfl.BinExpr:
		x, err := t.eval(ex.X)
		if err != nil {
			return 0, err
		}
		// Short-circuit boolean operators.
		switch ex.Op {
		case "&&":
			t.charge(1)
			if x == 0 {
				return 0, nil
			}
			y, err := t.eval(ex.Y)
			if err != nil {
				return 0, err
			}
			return boolVal(y != 0), nil
		case "||":
			t.charge(1)
			if x != 0 {
				return 1, nil
			}
			y, err := t.eval(ex.Y)
			if err != nil {
				return 0, err
			}
			return boolVal(y != 0), nil
		}
		y, err := t.eval(ex.Y)
		if err != nil {
			return 0, err
		}
		t.charge(1)
		switch ex.Op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			if y == 0 {
				return 0, fmt.Errorf("sim: %s: division by zero", ex.Pos)
			}
			return x / y, nil
		case "%":
			iy := int64(y)
			if iy == 0 {
				return 0, fmt.Errorf("sim: %s: modulo by zero", ex.Pos)
			}
			m := int64(x) % iy
			if m < 0 {
				m += absI64(iy)
			}
			return float64(m), nil
		case "<":
			return boolVal(x < y), nil
		case "<=":
			return boolVal(x <= y), nil
		case ">":
			return boolVal(x > y), nil
		case ">=":
			return boolVal(x >= y), nil
		case "==":
			return boolVal(x == y), nil
		case "!=":
			return boolVal(x != y), nil
		}
		return 0, fmt.Errorf("sim: %s: unknown op %q", ex.Pos, ex.Op)
	default:
		return 0, fmt.Errorf("sim: unknown expression %T", e)
	}
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func absI64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// evalIntrinsic applies a builtin pure function.
func evalIntrinsic(ex *pfl.CallExpr, args []float64) (float64, error) {
	switch ex.Name {
	case "abs":
		return math.Abs(args[0]), nil
	case "sqrt":
		if args[0] < 0 {
			return 0, fmt.Errorf("sim: %s: sqrt of negative value %v", ex.Pos, args[0])
		}
		return math.Sqrt(args[0]), nil
	case "exp":
		return math.Exp(args[0]), nil
	case "log":
		if args[0] <= 0 {
			return 0, fmt.Errorf("sim: %s: log of non-positive value %v", ex.Pos, args[0])
		}
		return math.Log(args[0]), nil
	case "sin":
		return math.Sin(args[0]), nil
	case "cos":
		return math.Cos(args[0]), nil
	case "floor":
		return math.Floor(args[0]), nil
	case "min":
		return math.Min(args[0], args[1]), nil
	case "max":
		return math.Max(args[0], args[1]), nil
	default:
		return 0, fmt.Errorf("sim: %s: unknown intrinsic %q", ex.Pos, ex.Name)
	}
}
