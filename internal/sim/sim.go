// Package sim is the execution-driven simulator: it executes a
// compiled PFL program by walking each procedure's epoch flow graph,
// scheduling DOALL iterations across the simulated processors, and
// driving every memory reference through a coherence scheme's memory
// system — so data values actually flow through the simulated caches and
// any coherence failure corrupts the results visibly.
//
// Procedure bodies are first lowered (see lower.go) to a slot-addressed
// closure IR, so the hot loop executes pre-bound closures over a flat
// []int64 frame instead of re-walking the AST with map-keyed
// environments. Lowering never changes the observable memory-reference
// order or the cycle charges.
//
// Timing model (the paper's): single-issue processors, weak consistency
// (reads stall on misses, writes retire through an infinite write
// buffer), a global barrier at every epoch boundary, and per-epoch
// execution time equal to the slowest processor in that epoch.
// Tasks of an epoch are simulated one at a time in ascending iteration
// order; DOALL independence makes the result order-insensitive, and
// critical sections execute in the same order as a sequential run, so
// results are bit-for-bit comparable with the sequential oracle.
package sim

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/epochg"
	"repro/internal/machine"
	"repro/internal/marking"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/pfl"
	"repro/internal/prog"
	"repro/internal/stats"
)

// readFunc performs one read reference; selected once per run so neither
// the tracing nor the instrumentation test is paid per reference. ref is
// the static source-reference ID bound into the lowered closure (-1 for
// references without one).
type readFunc func(t *task, addr prog.Word, kind memsys.ReadKind, window int, ref int32) float64

// writeFunc performs one write reference.
type writeFunc func(t *task, addr prog.Word, v float64, ref int32)

// Runner executes one lowered program on one memory system.
type Runner struct {
	lp       *Program
	lowerErr error
	sys      memsys.System
	cfg      machine.Config
	ctx      context.Context
	trace    io.Writer
	rec      *obs.Recorder
	st       *stats.Stats // sys.Stats(), cached at Run start for the observed path

	read  readFunc
	write writeFunc

	// streamSys is the stream-capable view of sys when the affine
	// fast path is engaged for this run (cfg.FastPath, a Streamer
	// scheme, and no text trace — the stream driver emits obs events
	// in exact scalar order, so any observation level streams); nil
	// otherwise, with streamOff naming why. See stream.go.
	streamSys memsys.Streamer
	streamOff string

	// buffered is non-nil when the scheme runs every epoch on buffered
	// lanes (memsys.Buffered with EpochBuffered true): endEpoch then
	// flushes lanes — and any deferred protocol replay — at the barrier.
	// laneStats accompanies it: sequential reference counters land in
	// the per-processor lanes, so the classified read/write paths must
	// diff the processor's lane sink instead of the run totals.
	buffered  memsys.Buffered
	laneStats memsys.Sharded

	// Fast-path fallback tracking for -require-fastpath (fpTrack off =
	// zero overhead). Misses dedup on (site, reason); the mutex is only
	// taken on an actual fallback, which host-parallel workers may hit
	// concurrently.
	fpTrack  bool
	fpMu     sync.Mutex
	fpSeen   map[fpKey]struct{}
	fpMisses []FastPathMiss

	epoch      int64
	cycles     int64
	procWork   []int64 // cycles consumed by each processor in the current epoch
	procBusy   []int64 // lifetime busy cycles per processor
	serialNext int     // rotation state for MigrateSerial
	maxEpochs  int64

	// Progress sampling (see progress.go). The stream tallies are
	// atomic because streamed loops execute inside host-parallel
	// workers; the doall tallies only move on the scheduling goroutine.
	progress        ProgressFunc
	progressEvery   int64
	progressLast    int64
	streamLoops     atomicI64
	streamFallbacks atomicI64
	hostparEpochs   int64
	seqDoallEpochs  int64

	// hostpar, when non-nil, executes eligible DOALL epochs across host
	// goroutines (see hostpar.go). Set up once per Run; hostparOff names
	// the run-wide reason when it stays nil.
	hostpar    *hostPar
	hostparOff string

	// dynHeap is the DynamicSched least-loaded heap, reused across
	// doalls (see runDoallDynamic).
	dynHeap []int32
}

// New builds a runner, lowering the program first. The marking must
// have been computed for this program. Lowering diagnostics surface
// from Run, preserving the interpreter-era error flow.
func New(p *prog.Prog, marks *marking.Result, sys memsys.System, cfg machine.Config) *Runner {
	lp, err := Lower(p, marks)
	r := NewLowered(lp, sys, cfg)
	r.lowerErr = err
	return r
}

// NewLowered builds a runner over an already-lowered program, so the
// lowering cost is paid once per compiled program rather than per run.
func NewLowered(lp *Program, sys memsys.System, cfg machine.Config) *Runner {
	maxE := cfg.MaxEpochs
	if maxE == 0 {
		maxE = machine.DefaultMaxEpochs
	}
	return &Runner{
		lp:        lp,
		sys:       sys,
		cfg:       cfg,
		procWork:  make([]int64, cfg.Procs),
		procBusy:  make([]int64, cfg.Procs),
		maxEpochs: maxE,
	}
}

// Run initializes memory from declarations, executes proc main, and
// returns the accumulated statistics.
func (r *Runner) Run() (st *stats.Stats, err error) {
	if r.lowerErr != nil {
		return nil, r.lowerErr
	}
	defer func() {
		if p := recover(); p != nil {
			re, ok := p.(runError)
			if !ok {
				panic(p)
			}
			st, err = nil, re.err
			if r.progress != nil {
				// Final snapshot for an aborted run: the unwind happens
				// between references on this goroutine, and counters are
				// readable (possibly mid-epoch for non-barrier faults).
				r.emitProgress(true, true)
			}
		}
	}()
	if r.trace != nil {
		// Buffer the text trace: one Fprintf per memory event straight to
		// an unbuffered file dominates traced runs otherwise.
		bw := bufio.NewWriterSize(r.trace, 1<<16)
		r.trace = bw
		defer func() {
			if fe := bw.Flush(); fe != nil && err == nil {
				st, err = nil, fe
			}
		}()
	}
	r.st = r.sys.Stats()
	switch {
	case r.rec != nil && r.trace != nil:
		r.read, r.write = readObsTraced, writeObsTraced
	case r.rec != nil:
		r.read, r.write = readObs, writeObs
	case r.trace != nil:
		r.read, r.write = readTraced, writeTraced
	default:
		r.read, r.write = readFast, writeFast
	}
	// The affine stream fast path engages wherever it is provably
	// equivalent: the stream driver emits per-reference obs events in
	// exact scalar order, so any observation level streams. Only the
	// line-oriented text trace forces the scalar path (its format is
	// coupled to the scalar reference loop). Schemes opt in via
	// memsys.Streamer.
	r.streamSys, r.streamOff = nil, ""
	switch {
	case !r.cfg.FastPath:
		r.streamOff = "the fast path is disabled (-fastpath=false)"
	case r.trace != nil:
		r.streamOff = "the text trace forces the scalar path"
	default:
		if ssys, ok := r.sys.(memsys.Streamer); ok && ssys.StreamCapable() {
			r.streamSys = ssys
		} else {
			r.streamOff = fmt.Sprintf("scheme %s does not implement stream cursors", r.sys.Name())
		}
	}
	// Schemes that buffer every epoch in per-processor lanes flush (and
	// replay any deferred coherence actions) at each barrier; their
	// sequential reference counters live in the lanes.
	r.buffered, r.laneStats = nil, nil
	if b, ok := r.sys.(memsys.Buffered); ok && b.EpochBuffered() {
		r.buffered = b
		if sh, ok := r.sys.(memsys.Sharded); ok {
			r.laneStats = sh
		}
	}
	r.setupHostParallel()
	for _, sc := range r.lp.prog.Scalars {
		r.sys.Mem().InitWord(sc.Addr, sc.Init)
	}
	r.runProc(r.lp.procs["main"], nil)
	r.endEpoch() // flush trailing structural-node work into the total
	st = r.sys.Stats()
	st.Cycles = r.cycles
	st.Epochs = r.epoch
	st.ProcBusy = append([]int64(nil), r.procBusy...)
	if r.progress != nil {
		r.emitProgress(true, false)
	}
	return st, nil
}

// task is the execution context of one running task: the frame of loop
// variable slots plus the formal-array bindings of the enclosing
// procedure invocation. One task value is reused across the tasks of a
// procedure walk; only proc (and transiently inCrit) change.
type task struct {
	r      *Runner
	proc   int
	inCrit bool
	slots  []int64
	arrays []*prog.ArrayInfo

	// Per-task event sinks. Sequential execution points them at the
	// runner's own stats/recorder/trace; inside a host-parallel epoch each
	// worker task points at its current processor's shard, so the lowered
	// closures never touch shared state from a goroutine.
	st    *stats.Stats
	rec   obs.Sink
	trace io.Writer

	// ss is the task's lazily-allocated stream-execution scratch
	// (cursors, address walkers, value stack); see stream.go.
	ss *streamScratch
}

// charge adds processor cycles to the task's processor.
func (t *task) charge(c int64) { t.r.procWork[t.proc] += c }

// loopState is one header node's live iteration state.
type loopState struct {
	active      bool
	v, hi, step int64
}

// runProc walks a procedure's epoch flow graph over its lowered nodes.
func (r *Runner) runProc(lp *loweredProc, arrays []*prog.ArrayInfo) {
	loops := make([]loopState, len(lp.nodes))
	t := task{r: r, slots: make([]int64, lp.numSlots), arrays: arrays, st: r.st, trace: r.trace}
	if r.rec != nil {
		t.rec = r.rec
	}

	n := lp.graph.Entry
	for n != nil {
		// Only real epochs (see epochg.Node.Counts) advance the counter
		// and pay the barrier; structural nodes execute inside the
		// surrounding epoch, exactly as the static distances assume.
		counts := n.Counts()
		if counts {
			r.enterEpoch()
		}
		ln := &lp.nodes[n.ID]
		switch n.Kind {
		case epochg.KindEntry:
			n = onlySucc(n)

		case epochg.KindExit:
			return // exit nodes have no references

		case epochg.KindSerial:
			t.proc = r.serialProc()
			for _, s := range ln.serial {
				s(&t)
			}
			if counts {
				r.noteEpochMods(ln, arrays)
				r.endEpoch()
			}
			n = onlySucc(n)

		case epochg.KindHeader:
			t.proc = r.serialProc()
			ls := &loops[n.ID]
			if !ls.active {
				lo := int64(ln.lo(&t))
				hi := int64(ln.hi(&t))
				step := int64(1)
				if ln.step != nil {
					step = int64(ln.step(&t))
					if step == 0 {
						fail("sim: %s: loop step is zero", ln.stepPos)
					}
				}
				*ls = loopState{active: true, v: lo, hi: hi, step: step}
			} else {
				ls.v += ls.step
			}
			t.charge(2) // loop bookkeeping
			t.slots[ln.loopVarSlot] = ls.v
			if (ls.step > 0 && ls.v <= ls.hi) || (ls.step < 0 && ls.v >= ls.hi) {
				n = n.Loop.Body
			} else {
				ls.active = false
				n = loopExit(n)
			}

		case epochg.KindBranch:
			t.proc = r.serialProc()
			if ln.cond(&t) != 0 {
				n = n.Branch.Then
			} else {
				n = n.Branch.Else
			}

		case epochg.KindDoall:
			r.runDoall(ln.doall, &t)
			r.noteEpochMods(ln, arrays)
			r.endEpoch()
			n = onlySucc(n)

		case epochg.KindCall:
			// The call node's own epoch is the call prologue; the callee's
			// epochs follow inside it.
			r.endEpoch()
			calleeArrays := make([]*prog.ArrayInfo, len(ln.callArgs))
			for i, src := range ln.callArgs {
				if src.fixed != nil {
					calleeArrays[i] = src.fixed
				} else {
					calleeArrays[i] = arrays[src.formal]
				}
			}
			r.runProc(ln.callee, calleeArrays)
			n = onlySucc(n)

		default:
			fail("sim: unknown node kind %v", n.Kind)
		}
	}
}

// onlySucc returns a node's unique non-structural successor.
func onlySucc(n *epochg.Node) *epochg.Node {
	if len(n.Succs) == 0 {
		return nil
	}
	return n.Succs[len(n.Succs)-1]
}

// loopExit finds the header's successor outside the loop body.
func loopExit(h *epochg.Node) *epochg.Node {
	for _, s := range h.Succs {
		if s != h.Loop.Body {
			return s
		}
	}
	return nil
}

// SetTrace attaches an event trace writer: one line per epoch boundary
// and per memory reference (the execution-driven tooling view of a run).
// Pass nil to disable. The writer is buffered internally and flushed when
// the run completes. Tracing is line-oriented text; R/W lines carry the
// current epoch so events are attributable without replaying E markers:
//
//	E <epoch>
//	R <epoch> <proc> <addr> <kind> <stall>
//	W <epoch> <proc> <addr> <crit> <stall>
//
// For the structured binary trace and attributed counters, see SetObserver
// and package obs.
func (r *Runner) SetTrace(w io.Writer) { r.trace = w }

// SetContext attaches a cancellation context: the runner checks it at
// every epoch barrier (the natural stopping point — no task is mid-
// flight, so the memory system is consistent and releasable) and aborts
// the run with an error wrapping ctx.Err(). Pass nil to disable. The
// check is one atomic load per epoch, unmeasurable against the barrier's
// own work.
func (r *Runner) SetContext(ctx context.Context) {
	if ctx == context.Background() || ctx == context.TODO() {
		ctx = nil
	}
	r.ctx = ctx
}

// SetObserver attaches an instrumentation recorder (see package obs):
// every memory reference is classified and attributed, and epoch
// boundaries are announced with the cumulative cycle count. Pass nil to
// disable; when disabled the fast path is selected and nothing is paid.
func (r *Runner) SetObserver(rec *obs.Recorder) { r.rec = rec }

// enterEpoch advances the global epoch counter and applies boundary costs.
func (r *Runner) enterEpoch() {
	if r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			panic(runError{fmt.Errorf("sim: run aborted at epoch %d barrier: %w", r.epoch, err)})
		}
	}
	r.epoch++
	if r.trace != nil {
		fmt.Fprintf(r.trace, "E %d\n", r.epoch)
	}
	if r.epoch > r.maxEpochs {
		fail("sim: epoch limit exceeded (%d): runaway loop?", r.maxEpochs)
	}
	if r.rec != nil {
		// Announce before the boundary work so reset-phase events land in
		// the epoch the barrier opens.
		r.rec.EpochStart(r.epoch, r.cycles)
	}
	stall := r.sys.EpochBoundary(r.epoch)
	if stall > 0 {
		r.cycles += stall
	}
}

// noteEpochMods reports the finishing epoch's may-written variables to a
// version-tracking scheme (VC), resolving formal bindings to the bound
// actuals.
func (r *Runner) noteEpochMods(ln *loweredNode, arrays []*prog.ArrayInfo) {
	if len(ln.mods) == 0 {
		return
	}
	vs, ok := r.sys.(memsys.Versioned)
	if !ok {
		return
	}
	names := make([]string, len(ln.mods))
	for i, m := range ln.mods {
		if m.formal >= 0 {
			names[i] = arrays[m.formal].Name
		} else {
			names[i] = m.name
		}
	}
	vs.EpochMods(names)
}

// endEpoch closes the current epoch: global time advances by the slowest
// processor plus the barrier cost. Always-buffered schemes merge their
// per-processor lanes (and replay deferred coherence actions) here, at
// the barrier, before time advances.
func (r *Runner) endEpoch() {
	if r.buffered != nil {
		r.buffered.FlushEpoch()
	}
	var maxWork int64
	for p := range r.procWork {
		if r.procWork[p] > maxWork {
			maxWork = r.procWork[p]
		}
		r.procBusy[p] += r.procWork[p]
		r.procWork[p] = 0
	}
	r.cycles += maxWork + r.cfg.BarrierCycles
	r.sys.Stats().BarrierCycles += r.cfg.BarrierCycles
	r.sys.Net().AdvanceTo(r.cycles)
	r.maybeEmitProgress()
}

// serialProc picks the processor for serial work, honoring the
// serial-task placement policy (one rotation per serial task, exactly
// as the interpreter rotated).
func (r *Runner) serialProc() int {
	if !r.cfg.MigrateSerial {
		return 0
	}
	p := r.serialNext
	r.serialNext = (r.serialNext + 1) % r.cfg.Procs
	return p
}

// runDoall schedules and executes a parallel loop.
func (r *Runner) runDoall(ld *loweredDoall, t *task) {
	// Bounds are evaluated once by the scheduling (serial) task.
	t.proc = r.serialProc()
	lo := int64(ld.lo(t))
	hi := int64(ld.hi(t))
	t.charge(4) // dispatch overhead
	if hi < lo {
		return
	}
	if r.cfg.DynamicSched {
		r.seqDoallEpochs++
		r.noteDoallFallback(ld, r.hostparOff)
		r.runDoallDynamic(ld, t, lo, hi)
		return
	}
	if r.hostpar != nil && !ld.seqOnly {
		r.hostparEpochs++
		r.hostpar.run(ld, t, lo, hi)
		return
	}
	// seqOnly doalls (body reaches a critical/ordered section) are
	// structural non-candidates for sharding — same-epoch communication
	// is the point — so they are not recorded as fast-path misses.
	r.seqDoallEpochs++
	if !ld.seqOnly {
		r.noteDoallFallback(ld, r.hostparOff)
	}
	n := hi - lo + 1
	procs := int64(r.cfg.Procs)
	chunk := (n + procs - 1) / procs

	for it := lo; it <= hi; it++ {
		var p int64
		if r.cfg.CyclicSched {
			p = (it - lo) % procs
		} else {
			p = (it - lo) / chunk
		}
		t.proc = int(p)
		t.slots[ld.varSlot] = it
		t.charge(2) // per-task scheduling overhead
		for _, s := range ld.body {
			s(t)
		}
	}
}

// runDoallDynamic self-schedules iterations onto the least-loaded
// processor. The argmin lives in a binary min-heap over (procWork, proc)
// — lexicographic, so ties break to the lowest processor index, exactly
// like the linear scan it replaces. Only the processor that just ran an
// iteration gains work between selections, so one sift-down of the root
// per iteration maintains the heap: O(log P) instead of O(P).
func (r *Runner) runDoallDynamic(ld *loweredDoall, t *task, lo, hi int64) {
	h := r.dynHeap[:0]
	for p := 0; p < r.cfg.Procs; p++ {
		h = append(h, int32(p))
	}
	r.dynHeap = h
	for i := len(h)/2 - 1; i >= 0; i-- {
		r.dynSiftDown(i)
	}
	for it := lo; it <= hi; it++ {
		t.proc = int(h[0])
		t.slots[ld.varSlot] = it
		t.charge(2) // per-task scheduling overhead
		for _, s := range ld.body {
			s(t)
		}
		r.dynSiftDown(0) // only the root's load grew
	}
}

// dynLess orders heap entries by (current epoch work, processor index).
func (r *Runner) dynLess(a, b int32) bool {
	wa, wb := r.procWork[a], r.procWork[b]
	return wa < wb || (wa == wb && a < b)
}

// dynSiftDown restores the heap property below index i.
func (r *Runner) dynSiftDown(i int) {
	h := r.dynHeap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if rc := l + 1; rc < n && r.dynLess(h[rc], h[l]) {
			m = rc
		}
		if !r.dynLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// readFast performs a read reference through the memory system.
func readFast(t *task, addr prog.Word, kind memsys.ReadKind, window int, ref int32) float64 {
	v, stall := t.r.sys.Read(t.proc, addr, kind, window)
	t.charge(stall)
	return v
}

// readTraced is readFast plus the trace line.
func readTraced(t *task, addr prog.Word, kind memsys.ReadKind, window int, ref int32) float64 {
	v, stall := t.r.sys.Read(t.proc, addr, kind, window)
	t.charge(stall)
	fmt.Fprintf(t.trace, "R %d %d %d %s %d\n", t.r.epoch, t.proc, addr, kind, stall)
	return v
}

// readClassified performs the read and recovers its hit/miss class by
// diffing the scheme's own counters around the call: every scheme
// increments exactly one of ReadHits or one ReadMisses cell per read, so
// the diff is exact without widening the memsys.System interface. The
// diff base is the processor's lane shard for always-buffered schemes
// (their counters land there even sequentially), otherwise the task's
// counter sink (the processor's stats shard in a host-parallel epoch).
// class -1 means hit.
func readClassified(t *task, addr prog.Word, kind memsys.ReadKind, window int) (v float64, stall int64, class int8) {
	st := t.st
	if sh := t.r.laneStats; sh != nil {
		st = sh.LaneStats(t.proc)
	}
	hitsBefore := st.ReadHits
	missBefore := st.ReadMisses
	v, stall = t.r.sys.Read(t.proc, addr, kind, window)
	t.charge(stall)
	class = -1
	if st.ReadHits == hitsBefore {
		for c := range st.ReadMisses {
			if st.ReadMisses[c] != missBefore[c] {
				class = int8(c)
				break
			}
		}
	}
	return v, stall, class
}

// readObs is readFast plus attributed-counter recording.
func readObs(t *task, addr prog.Word, kind memsys.ReadKind, window int, ref int32) float64 {
	v, stall, class := readClassified(t, addr, kind, window)
	t.rec.Read(t.proc, addr, ref, uint8(kind), class, stall)
	return v
}

// readObsTraced is readObs plus the text trace line.
func readObsTraced(t *task, addr prog.Word, kind memsys.ReadKind, window int, ref int32) float64 {
	v, stall, class := readClassified(t, addr, kind, window)
	t.rec.Read(t.proc, addr, ref, uint8(kind), class, stall)
	fmt.Fprintf(t.trace, "R %d %d %d %s %d\n", t.r.epoch, t.proc, addr, kind, stall)
	return v
}

// writeFast performs a write reference through the memory system.
func writeFast(t *task, addr prog.Word, v float64, ref int32) {
	stall := t.r.sys.Write(t.proc, addr, v, t.inCrit)
	t.charge(1 + stall)
}

// writeTraced is writeFast plus the trace line.
func writeTraced(t *task, addr prog.Word, v float64, ref int32) {
	stall := t.r.sys.Write(t.proc, addr, v, t.inCrit)
	t.charge(1 + stall)
	crit := 0
	if t.inCrit {
		crit = 1
	}
	fmt.Fprintf(t.trace, "W %d %d %d %d %d\n", t.r.epoch, t.proc, addr, crit, stall)
}

// writeClassified mirrors readClassified for the write-side counters.
func writeClassified(t *task, addr prog.Word, v float64) (stall int64, class int8) {
	st := t.st
	if sh := t.r.laneStats; sh != nil {
		st = sh.LaneStats(t.proc)
	}
	hitsBefore := st.WriteHits
	missBefore := st.WriteMisses
	stall = t.r.sys.Write(t.proc, addr, v, t.inCrit)
	t.charge(1 + stall)
	class = -1
	if st.WriteHits == hitsBefore {
		for c := range st.WriteMisses {
			if st.WriteMisses[c] != missBefore[c] {
				class = int8(c)
				break
			}
		}
	}
	return stall, class
}

// writeObs is writeFast plus attributed-counter recording.
func writeObs(t *task, addr prog.Word, v float64, ref int32) {
	stall, class := writeClassified(t, addr, v)
	t.rec.Write(t.proc, addr, ref, t.inCrit, class, stall)
}

// writeObsTraced is writeObs plus the text trace line.
func writeObsTraced(t *task, addr prog.Word, v float64, ref int32) {
	stall, class := writeClassified(t, addr, v)
	t.rec.Write(t.proc, addr, ref, t.inCrit, class, stall)
	crit := 0
	if t.inCrit {
		crit = 1
	}
	fmt.Fprintf(t.trace, "W %d %d %d %d %d\n", t.r.epoch, t.proc, addr, crit, stall)
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func absI64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// evalIntrinsic applies a builtin pure function (shared by the lowerer's
// constant folding; the lowered closures inline the same operations).
func evalIntrinsic(ex *pfl.CallExpr, args []float64) (float64, error) {
	switch ex.Name {
	case "abs":
		return math.Abs(args[0]), nil
	case "sqrt":
		if args[0] < 0 {
			return 0, fmt.Errorf("sim: %s: sqrt of negative value %v", ex.Pos, args[0])
		}
		return math.Sqrt(args[0]), nil
	case "exp":
		return math.Exp(args[0]), nil
	case "log":
		if args[0] <= 0 {
			return 0, fmt.Errorf("sim: %s: log of non-positive value %v", ex.Pos, args[0])
		}
		return math.Log(args[0]), nil
	case "sin":
		return math.Sin(args[0]), nil
	case "cos":
		return math.Cos(args[0]), nil
	case "floor":
		return math.Floor(args[0]), nil
	case "min":
		return math.Min(args[0], args[1]), nil
	case "max":
		return math.Max(args[0], args[1]), nil
	default:
		return 0, fmt.Errorf("sim: %s: unknown intrinsic %q", ex.Pos, ex.Name)
	}
}
