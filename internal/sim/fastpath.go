// Fast-path fallback tracking: with tracking enabled (tpisim
// -require-fastpath), the runner records every site where a recognized
// stream loop executed scalar or a DOALL epoch executed sequentially
// under host parallelism, with the reason. Tracking is off by default
// and costs one boolean test on the fallback-only paths.
package sim

// FastPathMiss is one deduplicated runtime fast-path fallback.
type FastPathMiss struct {
	Kind   string // "stream-loop" or "doall-epoch"
	Proc   string // enclosing procedure (stream loops; empty for doalls)
	Var    string // loop variable
	Pos    string // source position
	Reason string
}

// fpKey dedups fallback records: one entry per (site, reason).
type fpKey struct {
	doall  bool
	site   int    // stream-diag index (stream loops)
	pos    string // source position (doalls)
	reason string
}

// EnableFastPathTracking turns on fallback recording for this runner.
func (r *Runner) EnableFastPathTracking() { r.fpTrack = true }

// FastPathMisses returns the fallbacks recorded by the last Run, in
// first-observation order. Doall fallbacks are only recorded when host
// parallelism was requested (-hostpar > 1): sequential scheduling is
// the configured behavior otherwise, not a miss. Structural
// non-candidates are never recorded — loops the recognizer rejected
// (see StreamDiag) and seqOnly doalls, whose critical/ordered sections
// communicate within the epoch and so must dispatch sequentially.
func (r *Runner) FastPathMisses() []FastPathMiss { return r.fpMisses }

// noteStreamFallback records a recognized stream loop that ran scalar.
// Called from the lowered loop closure, possibly inside a host-parallel
// worker — hence the mutex (contended only on actual fallbacks).
func (r *Runner) noteStreamFallback(diagIdx int, reason string) {
	r.streamFallbacks.Add(1) // progress tally; atomic for hostpar workers
	if !r.fpTrack {
		return
	}
	r.fpMu.Lock()
	defer r.fpMu.Unlock()
	k := fpKey{site: diagIdx, reason: reason}
	if _, dup := r.fpSeen[k]; dup {
		return
	}
	if r.fpSeen == nil {
		r.fpSeen = map[fpKey]struct{}{}
	}
	r.fpSeen[k] = struct{}{}
	d := r.lp.streamDiags[diagIdx]
	r.fpMisses = append(r.fpMisses, FastPathMiss{
		Kind:   "stream-loop",
		Proc:   d.Proc,
		Var:    d.Var,
		Pos:    d.Pos.String(),
		Reason: reason,
	})
}

// noteDoallFallback records a DOALL epoch that ran sequentially while
// host parallelism was requested. Only called from the sequential
// scheduling path (no locking hazard beyond the shared map).
func (r *Runner) noteDoallFallback(ld *loweredDoall, reason string) {
	if !r.fpTrack || r.cfg.HostParallel <= 1 {
		return
	}
	r.fpMu.Lock()
	defer r.fpMu.Unlock()
	k := fpKey{doall: true, pos: ld.pos.String(), reason: reason}
	if _, dup := r.fpSeen[k]; dup {
		return
	}
	if r.fpSeen == nil {
		r.fpSeen = map[fpKey]struct{}{}
	}
	r.fpSeen[k] = struct{}{}
	r.fpMisses = append(r.fpMisses, FastPathMiss{
		Kind:   "doall-epoch",
		Var:    ld.varName,
		Pos:    ld.pos.String(),
		Reason: reason,
	})
}
