package sim

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/prog"
	"repro/internal/swschemes"
	"repro/internal/tpi"
)

// writeSetChecker wraps a memsys.System and verifies the host-parallel
// soundness precondition: within one epoch, the non-critical write sets
// of distinct simulated processors are pairwise disjoint, so the barrier
// merge's (processor, sequence) replay order cannot change the memory
// image. Critical-section stores are exempt — they communicate between
// same-epoch tasks by design, and host-parallel mode runs such doalls
// sequentially (seqOnly).
type writeSetChecker struct {
	memsys.System
	t      *testing.T
	writer map[prog.Word]int // word -> first non-crit writer this epoch
	epoch  int64
}

func (c *writeSetChecker) Write(p int, addr prog.Word, val float64, crit bool) int64 {
	if !crit {
		if q, ok := c.writer[addr]; ok && q != p {
			c.t.Errorf("epoch %d: word %d written by procs %d and %d", c.epoch, addr, q, p)
		} else {
			c.writer[addr] = p
		}
	}
	return c.System.Write(p, addr, val, crit)
}

func (c *writeSetChecker) EpochBoundary(epoch int64) int64 {
	clear(c.writer)
	c.epoch = epoch
	return c.System.EpochBoundary(epoch)
}

// TestEpochWriteSetsDisjoint runs every paper kernel under static and
// cyclic scheduling and property-checks DOALL write-set disjointness on
// every epoch. The wrapper hides the Sharded interface, so this runs on
// the sequential path regardless of config — it validates the workload
// property host parallelism relies on, not the parallel runner itself.
func TestEpochWriteSetsDisjoint(t *testing.T) {
	for _, name := range bench.Names {
		for _, cyclic := range []bool{false, true} {
			sched := "static"
			if cyclic {
				sched = "cyclic"
			}
			t.Run(fmt.Sprintf("%s/%s", name, sched), func(t *testing.T) {
				k, err := bench.Get(name, bench.Params{N: 12, Steps: 1})
				if err != nil {
					t.Fatal(err)
				}
				p, m := compileSrc(t, k.Source)
				cfg := machine.Default(machine.SchemeBase)
				cfg.Procs = 8
				cfg.CyclicSched = cyclic
				sys := &writeSetChecker{
					System: swschemes.NewBase(cfg, p.MemWords),
					t:      t,
					writer: map[prog.Word]int{},
				}
				if _, err := New(p, m, sys, cfg).Run(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestSeqOnlyLowering: doalls whose body reaches a critical or ordered
// section — at any nesting depth — must lower with seqOnly set, and
// plain doalls must not.
func TestSeqOnlyLowering(t *testing.T) {
	src := `
program p
param n = 8
scalar acc = 0.0
array A[n]
proc main() {
  doall i = 0 to n-1 { A[i] = i }
  doall i = 0 to n-1 {
    if (i > 3) {
      for j = 0 to 1 {
        critical { acc = acc + A[i] }
      }
    }
  }
}
`
	p, m := compileSrc(t, src)
	lp, err := Lower(p, m)
	if err != nil {
		t.Fatal(err)
	}
	var got []bool
	for _, proc := range lp.procs {
		for i := range proc.nodes {
			if d := proc.nodes[i].doall; d != nil {
				got = append(got, d.seqOnly)
			}
		}
	}
	if len(got) != 2 || got[0] || !got[1] {
		t.Fatalf("seqOnly flags = %v, want [false true]", got)
	}
}

// runKernelHostPar runs one kernel on a fresh system and returns the
// runner (whose hostpar field records whether sharding engaged).
func runKernelHostPar(t *testing.T, sys memsys.System, cfg machine.Config) *Runner {
	t.Helper()
	k, err := bench.Get("trfd", bench.Params{N: 8, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, m := compileSrc(t, k.Source)
	r := New(p, m, sys, cfg)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestHostParallelEngagement checks which configurations shard and which
// fall back to the sequential path.
func TestHostParallelEngagement(t *testing.T) {
	k, err := bench.Get("trfd", bench.Params{N: 8, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := compileSrc(t, k.Source)
	memWords := p.MemWords

	cases := []struct {
		name   string
		mutate func(*machine.Config)
		sys    func(machine.Config) memsys.System
		want   bool
	}{
		{"base-hostpar4", nil,
			func(c machine.Config) memsys.System { return swschemes.NewBase(c, memWords) }, true},
		{"sc-hostpar4", nil,
			func(c machine.Config) memsys.System { return swschemes.NewSC(c, memWords) }, true},
		{"tpi-hostpar4", nil,
			func(c machine.Config) memsys.System { return tpi.New(c, memWords) }, true},
		{"hostpar1-sequential", func(c *machine.Config) { c.HostParallel = 1 },
			func(c machine.Config) memsys.System { return tpi.New(c, memWords) }, false},
		{"dynamic-falls-back", func(c *machine.Config) { c.DynamicSched = true },
			func(c machine.Config) memsys.System { return tpi.New(c, memWords) }, false},
		{"oracle-not-sharded", nil,
			func(c machine.Config) memsys.System { return memsys.NewOracle(c, memWords) }, false},
		{"twolevel-shards", func(c *machine.Config) { c.L1Words = 256 },
			func(c machine.Config) memsys.System { return tpi.NewTwoLevel(c, memWords) }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := machine.Default(machine.SchemeTPI)
			cfg.Procs = 8
			cfg.HostParallel = 4
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			r := runKernelHostPar(t, tc.sys(cfg), cfg)
			if got := r.hostpar != nil; got != tc.want {
				t.Fatalf("hostpar engaged = %v, want %v", got, tc.want)
			}
		})
	}
}
