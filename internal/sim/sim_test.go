package sim

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/marking"
	"repro/internal/memsys"
	"repro/internal/pfl"
	"repro/internal/prog"
	"repro/internal/sections"
)

// compileSrc runs the pipeline pieces directly (sim cannot import core,
// which depends on it).
func compileSrc(t *testing.T, src string) (*prog.Prog, *marking.Result) {
	t.Helper()
	ast, err := pfl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := pfl.Check(ast)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prog.Build(info, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := sections.Analyze(p, sections.Options{Interproc: true})
	return p, marking.Compute(a, marking.DefaultOptions())
}

func runOracle(t *testing.T, src string, procs int, mutate func(*machine.Config)) (*memsys.Oracle, *Runner) {
	t.Helper()
	p, m := compileSrc(t, src)
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = procs
	if mutate != nil {
		mutate(&cfg)
	}
	sys := memsys.NewOracle(cfg, p.MemWords)
	r := New(p, m, sys, cfg)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return sys, r
}

func scalarVal(t *testing.T, p *prog.Prog, sys memsys.System, name string) float64 {
	t.Helper()
	sc := p.Scalars[name]
	if sc == nil {
		t.Fatalf("no scalar %q", name)
	}
	return sys.Mem().Read(sc.Addr)
}

func TestEpochCountMatchesStructure(t *testing.T) {
	// entry + serial + doall + serial + exit = 5 epochs.
	_, r := runOracle(t, `
program p
param n = 4
array A[n]
proc main() {
  A[0] = 1
  doall i = 0 to n-1 { A[i] = i }
  A[1] = 2
}
`, 2, nil)
	// serial + doall + serial = 3 epochs (entry/exit are structural).
	if r.epoch != 3 {
		t.Fatalf("epochs = %d, want 3", r.epoch)
	}
}

func TestEpochCountLoop(t *testing.T) {
	// Three doall instances; headers, body-entry joins, entry and exit
	// are structural and free.
	_, r := runOracle(t, `
program p
param n = 4
array A[n]
proc main() {
  for t = 0 to 2 {
    doall i = 0 to n-1 { A[i] = t }
  }
}
`, 2, nil)
	if r.epoch != 3 {
		t.Fatalf("epochs = %d, want 3", r.epoch)
	}
}

func TestEpochCountCall(t *testing.T) {
	// call prologue (1) + the callee's doall (1) = 2 epochs.
	_, r := runOracle(t, `
program p
param n = 4
array A[n]
proc main() {
  call f(A)
}
proc f(X[]) {
  doall i = 0 to n-1 { X[i] = i }
}
`, 2, nil)
	if r.epoch != 2 {
		t.Fatalf("epochs = %d, want 2", r.epoch)
	}
}

func TestSerialLoopSemantics(t *testing.T) {
	src := `
program p
scalar acc = 0.0
array A[8]
proc main() {
  for i = 0 to 7 { A[i] = i }
  for i = 7 to 0 step -2 { acc = acc + A[i] }
  for i = 5 to 3 { acc = acc + 100.0 }   # zero iterations
}
`
	p, m := compileSrc(t, src)
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = 1
	sys := memsys.NewOracle(cfg, p.MemWords)
	if _, err := New(p, m, sys, cfg).Run(); err != nil {
		t.Fatal(err)
	}
	// 7 + 5 + 3 + 1 = 16; the empty loop adds nothing.
	if got := scalarVal(t, p, sys, "acc"); got != 16 {
		t.Fatalf("acc = %v, want 16", got)
	}
}

func TestLoopWithBoundaryAndStep(t *testing.T) {
	src := `
program p
param n = 8
scalar acc = 0.0
array A[n]
proc main() {
  doall i = 0 to n-1 { A[i] = i }
  for t = 0 to 6 step 3 {
    doall i = 0 to n-1 { A[i] = A[i] + 1.0 }
  }
  doall i = 0 to n-1 {
    critical { acc = acc + A[i] }
  }
}
`
	p, m := compileSrc(t, src)
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = 4
	sys := memsys.NewOracle(cfg, p.MemWords)
	if _, err := New(p, m, sys, cfg).Run(); err != nil {
		t.Fatal(err)
	}
	// A[i] = i + 3 (t = 0, 3, 6); sum = 28 + 24 = 52.
	if got := scalarVal(t, p, sys, "acc"); got != 52 {
		t.Fatalf("acc = %v, want 52", got)
	}
}

func TestParallelSpeedup(t *testing.T) {
	src := `
program p
param n = 64
array A[n]
array B[n]
proc main() {
  doall i = 0 to n-1 { A[i] = i }
  doall i = 0 to n-1 {
    for k = 0 to 63 { B[i] = B[i] + A[i] * 0.5 }
  }
}
`
	cycles := map[int]int64{}
	for _, procs := range []int{1, 4, 16} {
		p, m := compileSrc(t, src)
		cfg := machine.Default(machine.SchemeBase)
		cfg.Procs = procs
		sys := memsys.NewOracle(cfg, p.MemWords)
		st, err := New(p, m, sys, cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		cycles[procs] = st.Cycles
	}
	if !(cycles[1] > 3*cycles[4] && cycles[4] > 2*cycles[16]) {
		t.Fatalf("no parallel speedup: %v", cycles)
	}
}

func TestBlockVsCyclicBalance(t *testing.T) {
	// Triangular work: iteration i does i inner steps. Block scheduling
	// gives the last processor the heavy half; cyclic spreads it.
	src := `
program p
param n = 64
array A[n]
proc main() {
  doall i = 0 to n-1 {
    for k = 1 to i { A[i] = A[i] + 1.0 }
  }
}
`
	run := func(cyclic bool) int64 {
		p, m := compileSrc(t, src)
		cfg := machine.Default(machine.SchemeBase)
		cfg.Procs = 8
		cfg.CyclicSched = cyclic
		sys := memsys.NewOracle(cfg, p.MemWords)
		st, err := New(p, m, sys, cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	block, cyclic := run(false), run(true)
	if !(cyclic < block) {
		t.Fatalf("cyclic (%d) should beat block (%d) on triangular work", cyclic, block)
	}
}

func TestCriticalSectionCost(t *testing.T) {
	with := `
program p
param n = 16
scalar s
array A[n]
proc main() {
  doall i = 0 to n-1 { critical { s = s + 1.0 } A[i] = 0.0 }
}
`
	without := `
program p
param n = 16
scalar s
array A[n]
proc main() {
  doall i = 0 to n-1 { A[i] = 0.0 }
}
`
	run := func(src string) int64 {
		p, m := compileSrc(t, src)
		cfg := machine.Default(machine.SchemeBase)
		cfg.Procs = 4
		sys := memsys.NewOracle(cfg, p.MemWords)
		st, err := New(p, m, sys, cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	if !(run(with) > run(without)) {
		t.Fatal("critical sections must cost lock cycles")
	}
}

func TestMaxEpochsGuard(t *testing.T) {
	src := `
program p
param n = 4
array A[n]
proc main() {
  for t = 0 to 100000 {
    doall i = 0 to n-1 { A[i] = t }
  }
}
`
	p, m := compileSrc(t, src)
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = 2
	cfg.MaxEpochs = 100
	sys := memsys.NewOracle(cfg, p.MemWords)
	_, err := New(p, m, sys, cfg).Run()
	if err == nil || !strings.Contains(err.Error(), "epoch limit") {
		t.Fatalf("want epoch-limit error, got %v", err)
	}
}

func TestSubscriptOutOfRangeIsError(t *testing.T) {
	src := `
program p
param n = 4
scalar k = 9.0
array A[n]
proc main() {
  doall i = 0 to n-1 { A[i] = 0.0 }
  A[0] = A[k]
}
`
	p, m := compileSrc(t, src)
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = 1
	sys := memsys.NewOracle(cfg, p.MemWords)
	_, err := New(p, m, sys, cfg).Run()
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want subscript error, got %v", err)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	// The right operand of && must not evaluate when the left is false:
	// here it would index out of range.
	src := `
program p
param n = 4
scalar flag = 0.0
scalar r = 0.0
array A[n]
proc main() {
  A[0] = 1.0
  if (flag > 0.5 && A[9] > 0.0) {
    r = 1.0
  } else {
    r = 2.0
  }
}
`
	p, m := compileSrc(t, src)
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = 1
	sys := memsys.NewOracle(cfg, p.MemWords)
	if _, err := New(p, m, sys, cfg).Run(); err != nil {
		t.Fatalf("short-circuit failed: %v", err)
	}
	if got := scalarVal(t, p, sys, "r"); got != 2.0 {
		t.Fatalf("r = %v, want 2", got)
	}
}

func TestDivisionByZeroIsError(t *testing.T) {
	src := `
program p
scalar z = 0.0
scalar r
proc main() {
  r = 1.0 / z
}
`
	p, m := compileSrc(t, src)
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = 1
	sys := memsys.NewOracle(cfg, p.MemWords)
	if _, err := New(p, m, sys, cfg).Run(); err == nil {
		t.Fatal("want division-by-zero error")
	}
}

func TestModuloSemantics(t *testing.T) {
	// % must be non-negative for subscript safety: (-3) % 4 == 1 here.
	src := `
program p
param n = 4
scalar r
array A[n]
proc main() {
  A[1] = 42.0
  A[0] = A[(0 - 3) % n]
  r = A[0]
}
`
	p, m := compileSrc(t, src)
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = 1
	sys := memsys.NewOracle(cfg, p.MemWords)
	if _, err := New(p, m, sys, cfg).Run(); err != nil {
		t.Fatal(err)
	}
	if got := scalarVal(t, p, sys, "r"); got != 42 {
		t.Fatalf("r = %v, want 42 (euclidean modulo)", got)
	}
}

func TestTraceOutput(t *testing.T) {
	src := `
program p
param n = 4
array A[n]
proc main() {
  doall i = 0 to n-1 { A[i] = i }
  A[0] = A[1] + A[2]
}
`
	p, m := compileSrc(t, src)
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = 2
	sys := memsys.NewOracle(cfg, p.MemWords)
	r := New(p, m, sys, cfg)
	var buf strings.Builder
	r.SetTrace(&buf)
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var epochs, reads, writes int
	for _, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "E "):
			epochs++
		case strings.HasPrefix(ln, "R "):
			reads++
		case strings.HasPrefix(ln, "W "):
			writes++
		default:
			t.Fatalf("unexpected trace line %q", ln)
		}
	}
	if int64(epochs) != st.Epochs {
		t.Errorf("trace epochs %d != stats %d", epochs, st.Epochs)
	}
	if int64(reads) != st.Reads || int64(writes) != st.Writes {
		t.Errorf("trace refs %d/%d != stats %d/%d", reads, writes, st.Reads, st.Writes)
	}
}

func TestDoallBoundsReadThroughMemory(t *testing.T) {
	// The scheduler evaluates doall bounds; array refs in them are real
	// memory reads and must appear in the stats and the trace.
	src := `
program p
param n = 8
array LIM[2]
array A[n]
proc main() {
  LIM[0] = 1
  LIM[1] = 6
  doall i = LIM[0] to LIM[1] { A[i] = i }
}
`
	p, m := compileSrc(t, src)
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = 2
	sys := memsys.NewOracle(cfg, p.MemWords)
	r := New(p, m, sys, cfg)
	var buf strings.Builder
	r.SetTrace(&buf)
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Reads != 2 {
		t.Fatalf("bound reads = %d, want 2", st.Reads)
	}
	// A[1..6] written: 6 writes + 2 LIM writes.
	if st.Writes != 8 {
		t.Fatalf("writes = %d, want 8", st.Writes)
	}
}

func TestMigrateSerialRotates(t *testing.T) {
	// With migration, consecutive serial epochs run on different
	// processors; observable through per-processor busy cycles.
	src := `
program p
param n = 4
array A[n]
proc main() {
  A[0] = 1
  doall i = 0 to n-1 { A[i] = i }
  A[1] = 2
  doall i = 0 to n-1 { A[i] = i + 1 }
  A[2] = 3
}
`
	p, m := compileSrc(t, src)
	cfg := machine.Default(machine.SchemeBase)
	cfg.Procs = 4
	cfg.MigrateSerial = true
	sys := memsys.NewOracle(cfg, p.MemWords)
	st, err := New(p, m, sys, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	busyProcs := 0
	for _, b := range st.ProcBusy {
		if b > 0 {
			busyProcs++
		}
	}
	if busyProcs < 3 {
		t.Fatalf("serial work landed on %d processors, want >= 3 with migration", busyProcs)
	}
}
