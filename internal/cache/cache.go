// Package cache implements the per-processor data cache used by all
// coherence schemes: set-associative (direct-mapped by default) with
// multi-word lines, per-word validity, per-word timetags for the TPI
// scheme, MSI state and dirty bits for the directory scheme, and per-word
// used-since-fill bits for Tullsen–Eggers false-sharing classification.
//
// The cache stores real data values; the simulator reads through it, so
// stale data — if a scheme ever allowed it — would visibly corrupt the
// computation. That is intentional: it is what makes the staleness oracle
// and the sequential-equivalence property tests meaningful.
package cache

import (
	"math/bits"
	"sync"

	"repro/internal/prog"
)

// State is the MSI line state used by the directory scheme. Write-through
// schemes only use Invalid and Shared.
type State uint8

const (
	// Invalid means the line holds no valid data.
	Invalid State = iota
	// Shared means a clean copy readable by this processor.
	Shared
	// Exclusive means this processor owns the only (possibly dirty) copy.
	Exclusive
)

// TTInvalid marks an invalid word (no valid data in that word slot).
const TTInvalid = int64(-1)

// Line is one cache line frame.
type Line struct {
	Tag   int64 // line address (word address / line size); -1 when empty
	State State
	Dirty bool
	Vals  []float64
	// TT is the per-word timetag: the epoch at which the word was last
	// written, filled, or validated by this processor. TTInvalid marks an
	// invalid word.
	TT []int64
	// Used marks words accessed by the local processor since the fill
	// (for false-sharing classification).
	Used []bool
	// DirtyW marks words written but not yet flushed to memory under the
	// write-back-at-boundary policy (traffic accounting only; the
	// simulator keeps memory values authoritative).
	DirtyW []bool
	lru    int64
}

// ValidWord reports whether word w of the line holds data.
func (l *Line) ValidWord(w int) bool { return l.State != Invalid && l.TT[w] != TTInvalid }

// InvalidateWord drops one word.
func (l *Line) InvalidateWord(w int) { l.TT[w] = TTInvalid }

// InvalidateLine drops the whole line.
func (l *Line) InvalidateLine() {
	l.State = Invalid
	l.Dirty = false
	l.Tag = -1
	for i := range l.TT {
		l.TT[i] = TTInvalid
		l.Used[i] = false
		l.DirtyW[i] = false
	}
}

// Cache is one processor's data cache.
type Cache struct {
	lineWords int
	// Power-of-two line sizes (the common case; machine.Validate enforces
	// it for simulated configurations) split addresses with a shift and a
	// mask instead of div/mod. pow2 selects the fast path; the general
	// path stays for arbitrary line sizes.
	pow2  bool
	shift uint
	mask  int64
	sets  int
	assoc int
	lines []Line // sets * assoc, set-major
	clock int64
	// Flat backing arrays behind the per-line subslices (one allocation
	// each; see New). Kept here so a pooled reset can sweep them flat.
	vals   []float64
	tt     []int64
	used   []bool
	dirtyW []bool
}

// Caches are the largest allocations a simulated run makes (megabytes of
// line frames and word arrays per processor), and systems are built per
// run, so construction cost — allocation, zeroing, and the GC pressure of
// the line slice headers — dominates short end-to-end runs. New therefore
// draws from a per-geometry pool of released caches and resets them
// instead of allocating. A reset cache is indistinguishable from a fresh
// one: every line is invalidated (Tag -1, State Invalid, LRU and clock
// zeroed) and every word timetag is TTInvalid. Vals is intentionally left
// stale — no scheme reads a word value without first passing a validity
// check (ValidWord / a timetag hit predicate), and every fill overwrites
// Vals before validating the words.
type poolKey struct {
	capacityWords int64
	lineWords     int
	assoc         int
}

var pools sync.Map // poolKey -> *sync.Pool of *Cache

// Release returns a cache to the construction pool. The caller must not
// use it afterwards (core releases a run's system only after the last
// snapshot has been taken).
func Release(c *Cache) {
	key := poolKey{int64(len(c.vals)), c.lineWords, c.assoc}
	p, _ := pools.LoadOrStore(key, &sync.Pool{})
	p.(*sync.Pool).Put(c)
}

// reset restores a pooled cache to the fresh-construction state (except
// for the never-read-before-validated Vals contents).
func (c *Cache) reset() {
	c.clock = 0
	for i := range c.lines {
		l := &c.lines[i]
		l.Tag = -1
		l.State = Invalid
		l.Dirty = false
		l.lru = 0
	}
	for i := range c.tt {
		c.tt[i] = TTInvalid
	}
	clear(c.used)
	clear(c.dirtyW)
}

// New builds a cache of capacityWords with the given line size (words)
// and associativity. capacityWords must be a multiple of lineWords*assoc.
// The per-line word arrays are carved out of four shared backing slices,
// so construction costs a handful of allocations rather than four per
// line; a released cache of the same geometry is reused instead of
// allocating at all (systems are built per simulated run).
func New(capacityWords int64, lineWords, assoc int) *Cache {
	if p, ok := pools.Load(poolKey{capacityWords, lineWords, assoc}); ok {
		if c, ok := p.(*sync.Pool).Get().(*Cache); ok {
			c.reset()
			return c
		}
	}
	numLines := int(capacityWords) / lineWords
	sets := numLines / assoc
	c := &Cache{
		lineWords: lineWords,
		sets:      sets,
		assoc:     assoc,
		lines:     make([]Line, numLines),
	}
	if lineWords&(lineWords-1) == 0 {
		c.pow2 = true
		c.shift = uint(bits.TrailingZeros(uint(lineWords)))
		c.mask = int64(lineWords - 1)
	}
	words := numLines * lineWords
	vals := make([]float64, words)
	tt := make([]int64, words)
	used := make([]bool, words)
	dirtyW := make([]bool, words)
	for i := range tt {
		tt[i] = TTInvalid
	}
	c.vals, c.tt, c.used, c.dirtyW = vals, tt, used, dirtyW
	for i := range c.lines {
		l := &c.lines[i]
		l.Tag = -1
		lo, hi := i*lineWords, (i+1)*lineWords
		l.Vals = vals[lo:hi:hi]
		l.TT = tt[lo:hi:hi]
		l.Used = used[lo:hi:hi]
		l.DirtyW = dirtyW[lo:hi:hi]
	}
	return c
}

// LineWords returns the line size in words.
func (c *Cache) LineWords() int { return c.lineWords }

// Split decomposes a word address into (line tag, word-in-line).
func (c *Cache) Split(addr prog.Word) (tag int64, word int) {
	if c.pow2 {
		return int64(addr) >> c.shift, int(int64(addr) & c.mask)
	}
	return int64(addr) / int64(c.lineWords), int(int64(addr) % int64(c.lineWords))
}

// LineBase returns the first word address of the line containing addr.
func (c *Cache) LineBase(addr prog.Word) prog.Word {
	if c.pow2 {
		return addr &^ prog.Word(c.mask)
	}
	return addr - prog.Word(int(int64(addr))%c.lineWords)
}

func (c *Cache) set(tag int64) []Line {
	s := int(tag % int64(c.sets))
	return c.lines[s*c.assoc : (s+1)*c.assoc]
}

// Lookup finds the line holding addr. It returns (line, word index,
// present); present means the tag matches and the line is not Invalid —
// the word itself may still be invalid (check ValidWord).
func (c *Cache) Lookup(addr prog.Word) (*Line, int, bool) {
	tag, w := c.Split(addr)
	set := c.set(tag)
	for i := range set {
		l := &set[i]
		if l.State != Invalid && l.Tag == tag {
			return l, w, true
		}
	}
	return nil, w, false
}

// Touch refreshes the line's LRU position. Direct-mapped caches (the
// default configuration) skip the bookkeeping: Victim ignores LRU order
// when the set has a single way, so the clock is unobservable.
func (c *Cache) Touch(l *Line) {
	if c.assoc == 1 {
		return
	}
	c.clock++
	l.lru = c.clock
}

// Victim selects the frame to (re)fill for addr: an invalid way if one
// exists, else the LRU way. The returned line may hold a conflicting
// valid line that the caller must evict first.
func (c *Cache) Victim(addr prog.Word) *Line {
	tag, _ := c.Split(addr)
	set := c.set(tag)
	var victim *Line
	for i := range set {
		l := &set[i]
		if l.State == Invalid {
			return l
		}
		if victim == nil || l.lru < victim.lru {
			victim = l
		}
	}
	return victim
}

// InvalidateAll drops every line (whole-cache flash invalidation).
// It returns the number of valid words dropped.
func (c *Cache) InvalidateAll() int64 {
	var dropped int64
	for i := range c.lines {
		l := &c.lines[i]
		if l.State == Invalid {
			continue
		}
		for w := range l.TT {
			if l.TT[w] != TTInvalid {
				dropped++
			}
		}
		l.InvalidateLine()
	}
	return dropped
}

// ForEachValidLine visits every non-invalid line.
func (c *Cache) ForEachValidLine(fn func(l *Line)) {
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			fn(&c.lines[i])
		}
	}
}

// LostReason records why a processor lost a word it once cached; it feeds
// the miss classifier.
type LostReason uint8

const (
	// LostNone means the word was never cached (cold).
	LostNone LostReason = iota
	// LostReplaced means the word was evicted by a conflicting fill.
	LostReplaced
	// LostInvalTrue means a coherence invalidation where the invalidating
	// write touched a word this processor had used (true sharing).
	LostInvalTrue
	// LostInvalFalse means a coherence invalidation caused by a write to a
	// word this processor had NOT used since the fill (false sharing).
	LostInvalFalse
	// LostReset means a TPI two-phase reset dropped the word.
	LostReset
)

// Tracker records per-word history for one processor: whether the word
// was ever cached, and how it was last lost, for miss classification.
// The seen set is a bitset over the memory extent (one bit per word,
// allocated once), an eighth of the []bool it replaces per processor.
type Tracker struct {
	seen   []uint64
	reason []LostReason
	lostTT []int64
}

var trackerPools sync.Map // memWords (int64) -> *sync.Pool of *Tracker

// NewTracker sizes the tracker for the memory extent, reusing a released
// tracker of the same extent when one is pooled. Reset is just clearing
// the seen bitset: reason and lostTT are only ever read for words whose
// seen bit is set (ClassifyMiss checks Seen first), and NoteCached
// rewrites reason before setting the bit.
func NewTracker(memWords int64) *Tracker {
	if p, ok := trackerPools.Load(memWords); ok {
		if t, ok := p.(*sync.Pool).Get().(*Tracker); ok {
			clear(t.seen)
			return t
		}
	}
	return &Tracker{
		seen:   make([]uint64, (memWords+63)/64),
		reason: make([]LostReason, memWords),
		lostTT: make([]int64, memWords),
	}
}

// ReleaseTracker returns a tracker to the construction pool; the caller
// must not use it afterwards.
func ReleaseTracker(t *Tracker) {
	p, _ := trackerPools.LoadOrStore(int64(len(t.reason)), &sync.Pool{})
	p.(*sync.Pool).Put(t)
}

// NoteCached records that the processor now caches addr.
func (t *Tracker) NoteCached(addr prog.Word) {
	t.seen[addr>>6] |= 1 << (uint(addr) & 63)
	t.reason[addr] = LostNone
}

// NoteLost records losing a word with a reason and the timetag it had.
func (t *Tracker) NoteLost(addr prog.Word, r LostReason, tt int64) {
	if t.Seen(addr) {
		t.reason[addr] = r
		t.lostTT[addr] = tt
	}
}

// Seen reports whether the processor ever cached addr.
func (t *Tracker) Seen(addr prog.Word) bool {
	return t.seen[addr>>6]&(1<<(uint(addr)&63)) != 0
}

// Lost returns how addr was last lost and the timetag it had then.
func (t *Tracker) Lost(addr prog.Word) (LostReason, int64) {
	return t.reason[addr], t.lostTT[addr]
}
