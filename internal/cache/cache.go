// Package cache implements the per-processor data cache used by all
// coherence schemes: set-associative (direct-mapped by default) with
// multi-word lines, per-word validity, per-word timetags for the TPI
// scheme, MSI state and dirty bits for the directory scheme, and per-word
// used-since-fill bits for Tullsen–Eggers false-sharing classification.
//
// The cache stores real data values; the simulator reads through it, so
// stale data — if a scheme ever allowed it — would visibly corrupt the
// computation. That is intentional: it is what makes the staleness oracle
// and the sequential-equivalence property tests meaningful.
package cache

import (
	"repro/internal/prog"
)

// State is the MSI line state used by the directory scheme. Write-through
// schemes only use Invalid and Shared.
type State uint8

const (
	// Invalid means the line holds no valid data.
	Invalid State = iota
	// Shared means a clean copy readable by this processor.
	Shared
	// Exclusive means this processor owns the only (possibly dirty) copy.
	Exclusive
)

// TTInvalid marks an invalid word (no valid data in that word slot).
const TTInvalid = int64(-1)

// Line is one cache line frame.
type Line struct {
	Tag   int64 // line address (word address / line size); -1 when empty
	State State
	Dirty bool
	Vals  []float64
	// TT is the per-word timetag: the epoch at which the word was last
	// written, filled, or validated by this processor. TTInvalid marks an
	// invalid word.
	TT []int64
	// Used marks words accessed by the local processor since the fill
	// (for false-sharing classification).
	Used []bool
	// DirtyW marks words written but not yet flushed to memory under the
	// write-back-at-boundary policy (traffic accounting only; the
	// simulator keeps memory values authoritative).
	DirtyW []bool
	lru    int64
}

// ValidWord reports whether word w of the line holds data.
func (l *Line) ValidWord(w int) bool { return l.State != Invalid && l.TT[w] != TTInvalid }

// InvalidateWord drops one word.
func (l *Line) InvalidateWord(w int) { l.TT[w] = TTInvalid }

// InvalidateLine drops the whole line.
func (l *Line) InvalidateLine() {
	l.State = Invalid
	l.Dirty = false
	l.Tag = -1
	for i := range l.TT {
		l.TT[i] = TTInvalid
		l.Used[i] = false
		l.DirtyW[i] = false
	}
}

// Cache is one processor's data cache.
type Cache struct {
	lineWords int
	sets      int
	assoc     int
	lines     []Line // sets * assoc, set-major
	clock     int64
}

// New builds a cache of capacityWords with the given line size (words)
// and associativity. capacityWords must be a multiple of lineWords*assoc.
// The per-line word arrays are carved out of four shared backing slices,
// so construction costs a handful of allocations rather than four per
// line (systems are built per simulated run).
func New(capacityWords int64, lineWords, assoc int) *Cache {
	numLines := int(capacityWords) / lineWords
	sets := numLines / assoc
	c := &Cache{
		lineWords: lineWords,
		sets:      sets,
		assoc:     assoc,
		lines:     make([]Line, numLines),
	}
	words := numLines * lineWords
	vals := make([]float64, words)
	tt := make([]int64, words)
	used := make([]bool, words)
	dirtyW := make([]bool, words)
	for i := range tt {
		tt[i] = TTInvalid
	}
	for i := range c.lines {
		l := &c.lines[i]
		l.Tag = -1
		lo, hi := i*lineWords, (i+1)*lineWords
		l.Vals = vals[lo:hi:hi]
		l.TT = tt[lo:hi:hi]
		l.Used = used[lo:hi:hi]
		l.DirtyW = dirtyW[lo:hi:hi]
	}
	return c
}

// LineWords returns the line size in words.
func (c *Cache) LineWords() int { return c.lineWords }

// Split decomposes a word address into (line tag, word-in-line).
func (c *Cache) Split(addr prog.Word) (tag int64, word int) {
	return int64(addr) / int64(c.lineWords), int(int64(addr) % int64(c.lineWords))
}

// LineBase returns the first word address of the line containing addr.
func (c *Cache) LineBase(addr prog.Word) prog.Word {
	return addr - prog.Word(int(int64(addr))%c.lineWords)
}

func (c *Cache) set(tag int64) []Line {
	s := int(tag % int64(c.sets))
	return c.lines[s*c.assoc : (s+1)*c.assoc]
}

// Lookup finds the line holding addr. It returns (line, word index,
// present); present means the tag matches and the line is not Invalid —
// the word itself may still be invalid (check ValidWord).
func (c *Cache) Lookup(addr prog.Word) (*Line, int, bool) {
	tag, w := c.Split(addr)
	for i := range c.set(tag) {
		l := &c.set(tag)[i]
		if l.State != Invalid && l.Tag == tag {
			return l, w, true
		}
	}
	return nil, w, false
}

// Touch refreshes the line's LRU position.
func (c *Cache) Touch(l *Line) {
	c.clock++
	l.lru = c.clock
}

// Victim selects the frame to (re)fill for addr: an invalid way if one
// exists, else the LRU way. The returned line may hold a conflicting
// valid line that the caller must evict first.
func (c *Cache) Victim(addr prog.Word) *Line {
	tag, _ := c.Split(addr)
	set := c.set(tag)
	var victim *Line
	for i := range set {
		l := &set[i]
		if l.State == Invalid {
			return l
		}
		if victim == nil || l.lru < victim.lru {
			victim = l
		}
	}
	return victim
}

// InvalidateAll drops every line (whole-cache flash invalidation).
// It returns the number of valid words dropped.
func (c *Cache) InvalidateAll() int64 {
	var dropped int64
	for i := range c.lines {
		l := &c.lines[i]
		if l.State == Invalid {
			continue
		}
		for w := range l.TT {
			if l.TT[w] != TTInvalid {
				dropped++
			}
		}
		l.InvalidateLine()
	}
	return dropped
}

// ForEachValidLine visits every non-invalid line.
func (c *Cache) ForEachValidLine(fn func(l *Line)) {
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			fn(&c.lines[i])
		}
	}
}

// LostReason records why a processor lost a word it once cached; it feeds
// the miss classifier.
type LostReason uint8

const (
	// LostNone means the word was never cached (cold).
	LostNone LostReason = iota
	// LostReplaced means the word was evicted by a conflicting fill.
	LostReplaced
	// LostInvalTrue means a coherence invalidation where the invalidating
	// write touched a word this processor had used (true sharing).
	LostInvalTrue
	// LostInvalFalse means a coherence invalidation caused by a write to a
	// word this processor had NOT used since the fill (false sharing).
	LostInvalFalse
	// LostReset means a TPI two-phase reset dropped the word.
	LostReset
)

// Tracker records per-word history for one processor: whether the word
// was ever cached, and how it was last lost, for miss classification.
type Tracker struct {
	seen   []bool
	reason []LostReason
	lostTT []int64
}

// NewTracker sizes the tracker for the memory extent.
func NewTracker(memWords int64) *Tracker {
	return &Tracker{
		seen:   make([]bool, memWords),
		reason: make([]LostReason, memWords),
		lostTT: make([]int64, memWords),
	}
}

// NoteCached records that the processor now caches addr.
func (t *Tracker) NoteCached(addr prog.Word) {
	t.seen[addr] = true
	t.reason[addr] = LostNone
}

// NoteLost records losing a word with a reason and the timetag it had.
func (t *Tracker) NoteLost(addr prog.Word, r LostReason, tt int64) {
	if t.seen[addr] {
		t.reason[addr] = r
		t.lostTT[addr] = tt
	}
}

// Seen reports whether the processor ever cached addr.
func (t *Tracker) Seen(addr prog.Word) bool { return t.seen[addr] }

// Lost returns how addr was last lost and the timetag it had then.
func (t *Tracker) Lost(addr prog.Word) (LostReason, int64) {
	return t.reason[addr], t.lostTT[addr]
}
