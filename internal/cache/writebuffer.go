package cache

import "repro/internal/prog"

// WriteBuffer models the infinite write buffer of a write-through cache.
// When organized as a cache (DEC Alpha 21164 style, the paper's
// recommendation), writes to a word already pending in the buffer within
// the current epoch are coalesced and generate no additional memory
// traffic; a plain buffer forwards every write.
//
// The buffer only affects traffic accounting: under weak consistency the
// simulator retires writes to memory immediately (DOALL independence
// guarantees no same-epoch cross-task reader outside critical sections,
// and critical-section writes flush eagerly).
type WriteBuffer struct {
	coalesce bool
	pending  map[prog.Word]bool
}

// NewWriteBuffer creates a buffer; coalesce selects the
// write-buffer-as-cache organization.
func NewWriteBuffer(coalesce bool) *WriteBuffer {
	return &WriteBuffer{coalesce: coalesce, pending: make(map[prog.Word]bool)}
}

// Write records a write and reports whether it generates memory traffic
// (false when coalesced into a pending entry).
func (wb *WriteBuffer) Write(addr prog.Word) bool {
	if !wb.coalesce {
		return true
	}
	if wb.pending[addr] {
		return false
	}
	wb.pending[addr] = true
	return true
}

// Flush empties the buffer (epoch boundary: the fence forces all pending
// writes to memory; entries are no longer coalescible afterwards). The
// map is cleared in place, not reallocated: it is flushed every epoch
// and its capacity is reused by the next epoch's writes.
func (wb *WriteBuffer) Flush() {
	clear(wb.pending)
}

// Pending returns the number of distinct buffered words.
func (wb *WriteBuffer) Pending() int { return len(wb.pending) }
