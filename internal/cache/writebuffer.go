package cache

import (
	"sync"

	"repro/internal/prog"
)

// WriteBuffer models the infinite write buffer of a write-through cache.
// When organized as a cache (DEC Alpha 21164 style, the paper's
// recommendation), writes to a word already pending in the buffer within
// the current epoch are coalesced and generate no additional memory
// traffic; a plain buffer forwards every write.
//
// The buffer only affects traffic accounting: under weak consistency the
// simulator retires writes to memory immediately (DOALL independence
// guarantees no same-epoch cross-task reader outside critical sections,
// and critical-section writes flush eagerly).
//
// The pending set is an open-addressed hash table with generation-stamped
// slots: membership of a slot is "gen[i] == current generation", so the
// per-epoch Flush is a single counter increment instead of clearing (or
// reallocating) a map — this sits on the write hot path of every
// write-through scheme.
type WriteBuffer struct {
	coalesce bool
	keys     []prog.Word
	gens     []uint32
	gen      uint32
	n        int // live entries in the current generation
}

const wbMinSlots = 64 // power of two; tiny tables grow rarely

// Coalescing buffers grow their table during a run; pooling released
// buffers keeps the grown table across runs, so steady-state simulation
// neither reallocates nor rehashes. A generation bump (Flush) makes every
// slot stale, which is exactly the fresh-buffer state; table capacity is
// not observable (Write's coalescing decision is pure membership).
var wbPool sync.Pool

// NewWriteBuffer creates a buffer; coalesce selects the
// write-buffer-as-cache organization.
func NewWriteBuffer(coalesce bool) *WriteBuffer {
	if coalesce {
		if wb, ok := wbPool.Get().(*WriteBuffer); ok {
			wb.Flush()
			return wb
		}
	}
	wb := &WriteBuffer{coalesce: coalesce, gen: 1}
	if coalesce {
		wb.keys = make([]prog.Word, wbMinSlots)
		wb.gens = make([]uint32, wbMinSlots)
	}
	return wb
}

// ReleaseWriteBuffer returns a buffer to the construction pool; the
// caller must not use it afterwards.
func ReleaseWriteBuffer(wb *WriteBuffer) {
	if wb.coalesce {
		wbPool.Put(wb)
	}
}

// slot probes for addr and returns its slot index: either the slot that
// holds addr in the current generation, or the first stale/empty slot of
// its probe chain.
func (wb *WriteBuffer) slot(addr prog.Word) int {
	mask := len(wb.keys) - 1
	i := int(uint64(addr) * 0x9E3779B97F4A7C15 >> 32 & uint64(mask))
	for wb.gens[i] == wb.gen && wb.keys[i] != addr {
		i = (i + 1) & mask
	}
	return i
}

// Write records a write and reports whether it generates memory traffic
// (false when coalesced into a pending entry).
func (wb *WriteBuffer) Write(addr prog.Word) bool {
	if !wb.coalesce {
		return true
	}
	i := wb.slot(addr)
	if wb.gens[i] == wb.gen {
		return false // already pending this epoch: coalesced
	}
	wb.keys[i] = addr
	wb.gens[i] = wb.gen
	wb.n++
	if wb.n*4 >= len(wb.keys)*3 {
		wb.grow()
	}
	return true
}

// grow doubles the table, rehashing only the current generation's
// entries.
func (wb *WriteBuffer) grow() {
	oldKeys, oldGens := wb.keys, wb.gens
	wb.keys = make([]prog.Word, 2*len(oldKeys))
	wb.gens = make([]uint32, 2*len(oldGens))
	for i, g := range oldGens {
		if g == wb.gen {
			j := wb.slot(oldKeys[i])
			wb.keys[j] = oldKeys[i]
			wb.gens[j] = wb.gen
		}
	}
}

// Flush empties the buffer (epoch boundary: the fence forces all pending
// writes to memory; entries are no longer coalescible afterwards) by
// advancing the generation — O(1), no clearing. On the (theoretical)
// generation-counter wraparound the stamp array is zeroed so stale slots
// cannot alias the restarted counter.
func (wb *WriteBuffer) Flush() {
	if !wb.coalesce {
		return
	}
	wb.n = 0
	wb.gen++
	if wb.gen == 0 {
		clear(wb.gens)
		wb.gen = 1
	}
}

// Pending returns the number of distinct buffered words.
func (wb *WriteBuffer) Pending() int { return wb.n }
