package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/prog"
)

func TestSplitAndLineBase(t *testing.T) {
	c := New(64, 4, 1)
	tag, w := c.Split(prog.Word(13))
	if tag != 3 || w != 1 {
		t.Fatalf("Split(13) = (%d,%d), want (3,1)", tag, w)
	}
	if got := c.LineBase(13); got != 12 {
		t.Fatalf("LineBase(13) = %d, want 12", got)
	}
}

func TestLookupMissThenFill(t *testing.T) {
	c := New(64, 4, 1)
	if _, _, ok := c.Lookup(20); ok {
		t.Fatal("empty cache must miss")
	}
	v := c.Victim(20)
	if v == nil || v.State != Invalid {
		t.Fatal("victim in empty cache must be an invalid frame")
	}
	tag, w := c.Split(20)
	v.Tag = tag
	v.State = Shared
	v.TT[w] = 5
	v.Vals[w] = 3.25
	c.Touch(v)
	l, w2, ok := c.Lookup(20)
	if !ok || w2 != w || !l.ValidWord(w2) || l.Vals[w2] != 3.25 {
		t.Fatalf("lookup after fill failed: %v %d %v", l, w2, ok)
	}
	// Word 21 shares the line but is invalid.
	l21, w21, ok := c.Lookup(21)
	if !ok || l21 != l {
		t.Fatal("same-line lookup must find the line")
	}
	if l21.ValidWord(w21) {
		t.Fatal("unfilled word must be invalid")
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := New(16, 4, 1) // 4 lines, direct mapped
	// addresses 0 and 16 map to the same set (tags 0 and 4, 4 sets).
	fill := func(addr prog.Word) {
		v := c.Victim(addr)
		tag, w := c.Split(addr)
		v.InvalidateLine()
		v.Tag = tag
		v.State = Shared
		v.TT[w] = 1
		c.Touch(v)
	}
	fill(0)
	if _, _, ok := c.Lookup(0); !ok {
		t.Fatal("0 should be present")
	}
	v := c.Victim(16)
	tag0, _ := c.Split(0)
	if v.Tag != tag0 {
		t.Fatalf("victim for 16 must be the line holding 0, got tag %d", v.Tag)
	}
	fill(16)
	if _, _, ok := c.Lookup(0); ok {
		t.Fatal("0 must be evicted by 16 in a direct-mapped cache")
	}
}

func TestSetAssociativeLRU(t *testing.T) {
	c := New(32, 4, 2) // 8 lines, 4 sets... 32/4=8 lines, 8/2=4 sets
	fill := func(addr prog.Word) {
		v := c.Victim(addr)
		tag, w := c.Split(addr)
		v.InvalidateLine()
		v.Tag = tag
		v.State = Shared
		v.TT[w] = 1
		c.Touch(v)
	}
	// tags 0, 4, 8 all map to set 0 (4 sets).
	fill(0)
	fill(16)
	// touch 0 so 16 is LRU
	if l, _, ok := c.Lookup(0); ok {
		c.Touch(l)
	} else {
		t.Fatal("0 missing")
	}
	fill(32) // must evict 16
	if _, _, ok := c.Lookup(0); !ok {
		t.Fatal("0 (MRU) must survive")
	}
	if _, _, ok := c.Lookup(16); ok {
		t.Fatal("16 (LRU) must be evicted")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(64, 4, 1)
	v := c.Victim(0)
	tag, _ := c.Split(0)
	v.Tag = tag
	v.State = Shared
	v.TT[0] = 1
	v.TT[2] = 3
	if got := c.InvalidateAll(); got != 2 {
		t.Fatalf("dropped %d words, want 2", got)
	}
	if _, _, ok := c.Lookup(0); ok {
		t.Fatal("cache must be empty after InvalidateAll")
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker(100)
	if tr.Seen(5) {
		t.Fatal("fresh tracker must not have seen 5")
	}
	tr.NoteCached(5)
	if !tr.Seen(5) {
		t.Fatal("5 must be seen")
	}
	tr.NoteLost(5, LostInvalFalse, 7)
	r, tt := tr.Lost(5)
	if r != LostInvalFalse || tt != 7 {
		t.Fatalf("Lost = (%v,%d)", r, tt)
	}
	// losing a never-seen word is a no-op
	tr.NoteLost(6, LostReplaced, 1)
	if r, _ := tr.Lost(6); r != LostNone {
		t.Fatal("unseen word must keep LostNone")
	}
}

func TestWriteBufferCoalescing(t *testing.T) {
	wb := NewWriteBuffer(true)
	if !wb.Write(10) {
		t.Fatal("first write generates traffic")
	}
	if wb.Write(10) {
		t.Fatal("second write to same word must coalesce")
	}
	if !wb.Write(11) {
		t.Fatal("different word generates traffic")
	}
	wb.Flush()
	if !wb.Write(10) {
		t.Fatal("after flush the word is no longer pending")
	}

	plain := NewWriteBuffer(false)
	if !plain.Write(10) || !plain.Write(10) {
		t.Fatal("plain buffer never coalesces")
	}
}

// TestWriteBufferGrowth drives the pending set far past its initial
// capacity and cross-checks every traffic decision against a model map:
// a write is traffic exactly when its word is not already pending this
// epoch, through any number of grow/rehash steps.
func TestWriteBufferGrowth(t *testing.T) {
	wb := NewWriteBuffer(true)
	model := map[prog.Word]bool{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		addr := prog.Word(r.Intn(2048))
		if traffic := wb.Write(addr); traffic == model[addr] {
			t.Fatalf("write %d of word %d: traffic = %v with pending = %v", i, addr, traffic, model[addr])
		}
		model[addr] = true
		if wb.Pending() != len(model) {
			t.Fatalf("Pending = %d, model holds %d", wb.Pending(), len(model))
		}
	}
	wb.Flush()
	if wb.Pending() != 0 {
		t.Fatalf("Pending = %d after Flush", wb.Pending())
	}
	for addr := range model {
		if !wb.Write(addr) {
			t.Fatalf("word %d still coalesces after Flush", addr)
		}
	}
}

// TestWriteBufferGenerationWraparound: when the epoch generation counter
// wraps, the stamp array must be reset so pre-wrap entries cannot alias
// the restarted counter and falsely coalesce.
func TestWriteBufferGenerationWraparound(t *testing.T) {
	wb := NewWriteBuffer(true)
	wb.gen = ^uint32(0)
	if !wb.Write(7) {
		t.Fatal("first write at max generation is traffic")
	}
	if wb.Write(7) {
		t.Fatal("repeat write at max generation must coalesce")
	}
	wb.Flush() // wraps: stamps cleared, generation restarts at 1
	if wb.gen != 1 {
		t.Fatalf("generation = %d after wraparound, want 1", wb.gen)
	}
	if !wb.Write(7) {
		t.Fatal("pre-wrap entry must not survive the wraparound flush")
	}
}

// Property: after filling an address, Lookup finds it with the value; after
// eviction of its line, it misses — random fill sequence consistency vs a
// model map.
func TestQuickCacheModelConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(64, 4, 2)
		model := map[int64]float64{} // line tag -> fill stamp (presence model)
		present := map[int64]bool{}
		for step := 0; step < 200; step++ {
			addr := prog.Word(r.Intn(256))
			tag, w := c.Split(addr)
			if l, ww, ok := c.Lookup(addr); ok {
				if ww != w {
					return false
				}
				if present[tag] && l.ValidWord(ww) && l.Vals[ww] != model[int64(addr)] {
					return false
				}
				c.Touch(l)
				continue
			}
			// fill
			v := c.Victim(addr)
			if v.State != Invalid {
				delete(present, v.Tag)
			}
			v.InvalidateLine()
			v.Tag = tag
			v.State = Shared
			val := r.Float64()
			v.TT[w] = int64(step)
			v.Vals[w] = val
			model[int64(addr)] = val
			present[tag] = true
			c.Touch(v)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFourWayAssociativity(t *testing.T) {
	c := New(64, 4, 4) // 16 lines, 4 sets of 4 ways
	fill := func(addr prog.Word, stamp int64) {
		v := c.Victim(addr)
		if v.State != Invalid {
			v.InvalidateLine()
		}
		tag, w := c.Split(addr)
		v.Tag = tag
		v.State = Shared
		v.TT[w] = stamp
		c.Touch(v)
	}
	// Four tags mapping to set 0 coexist (tags 0,4,8,12 with 4 sets).
	for k := 0; k < 4; k++ {
		fill(prog.Word(k*16), int64(k))
	}
	for k := 0; k < 4; k++ {
		if _, _, ok := c.Lookup(prog.Word(k * 16)); !ok {
			t.Fatalf("way %d evicted prematurely", k)
		}
	}
	// Fifth conflicting fill evicts exactly the LRU (tag of addr 0).
	fill(prog.Word(4*16), 9)
	if _, _, ok := c.Lookup(0); ok {
		t.Fatal("LRU way must be the victim")
	}
	for k := 1; k < 5; k++ {
		if _, _, ok := c.Lookup(prog.Word(k * 16)); !ok {
			t.Fatalf("way %d should survive", k)
		}
	}
}

func TestForEachValidLine(t *testing.T) {
	c := New(32, 4, 1)
	v := c.Victim(0)
	tag, _ := c.Split(0)
	v.Tag = tag
	v.State = Shared
	v.TT[0] = 1
	seen := 0
	c.ForEachValidLine(func(l *Line) { seen++ })
	if seen != 1 {
		t.Fatalf("visited %d lines, want 1", seen)
	}
}

func TestWordValidityAndDirtyBits(t *testing.T) {
	c := New(16, 4, 1)
	v := c.Victim(0)
	tag, _ := c.Split(0)
	v.Tag = tag
	v.State = Shared
	v.TT[1] = 5
	v.DirtyW[1] = true
	if v.ValidWord(0) || !v.ValidWord(1) {
		t.Fatal("per-word validity broken")
	}
	v.InvalidateWord(1)
	if v.ValidWord(1) {
		t.Fatal("InvalidateWord failed")
	}
	if !v.DirtyW[1] {
		t.Fatal("InvalidateWord must not clear dirty accounting")
	}
	v.InvalidateLine()
	if v.DirtyW[1] {
		t.Fatal("InvalidateLine must clear dirty bits")
	}
}

// TestSplitCrossCheck verifies the power-of-two shift/mask Split and
// LineBase against the general div/mod path for both power-of-two and
// non-power-of-two line sizes.
func TestSplitCrossCheck(t *testing.T) {
	refSplit := func(addr prog.Word, lw int) (int64, int) {
		return int64(addr) / int64(lw), int(int64(addr) % int64(lw))
	}
	refBase := func(addr prog.Word, lw int) prog.Word {
		return addr - prog.Word(int(int64(addr))%lw)
	}
	for _, lw := range []int{1, 2, 4, 8, 16, 3, 5, 6, 12} {
		c := New(int64(lw*16), lw, 1)
		pow2 := lw&(lw-1) == 0
		if c.pow2 != pow2 {
			t.Fatalf("lineWords=%d: pow2 flag = %v, want %v", lw, c.pow2, pow2)
		}
		for _, addr := range []prog.Word{0, 1, prog.Word(lw - 1), prog.Word(lw), prog.Word(lw + 1), 63, 64, 1023, 1 << 30} {
			wantTag, wantW := refSplit(addr, lw)
			tag, w := c.Split(addr)
			if tag != wantTag || w != wantW {
				t.Fatalf("lineWords=%d Split(%d) = (%d,%d), want (%d,%d)", lw, addr, tag, w, wantTag, wantW)
			}
			if got, want := c.LineBase(addr), refBase(addr, lw); got != want {
				t.Fatalf("lineWords=%d LineBase(%d) = %d, want %d", lw, addr, got, want)
			}
		}
		rnd := rand.New(rand.NewSource(int64(lw)))
		for i := 0; i < 1000; i++ {
			addr := prog.Word(rnd.Int63n(1 << 40))
			wantTag, wantW := refSplit(addr, lw)
			if tag, w := c.Split(addr); tag != wantTag || w != wantW {
				t.Fatalf("lineWords=%d Split(%d) = (%d,%d), want (%d,%d)", lw, addr, tag, w, wantTag, wantW)
			}
			if got, want := c.LineBase(addr), refBase(addr, lw); got != want {
				t.Fatalf("lineWords=%d LineBase(%d) = %d, want %d", lw, addr, got, want)
			}
		}
	}
}

// TestTrackerBitset exercises the bitset-backed seen set across word
// boundaries and against a reference map implementation.
func TestTrackerBitset(t *testing.T) {
	const memWords = 200 // deliberately not a multiple of 64
	tr := NewTracker(memWords)
	if got, want := len(tr.seen), (memWords+63)/64; got != want {
		t.Fatalf("bitset words = %d, want %d", got, want)
	}
	ref := map[prog.Word]bool{}
	for _, addr := range []prog.Word{0, 1, 62, 63, 64, 65, 127, 128, memWords - 1} {
		if tr.Seen(addr) {
			t.Fatalf("Seen(%d) true before NoteCached", addr)
		}
		tr.NoteCached(addr)
		ref[addr] = true
	}
	for addr := prog.Word(0); addr < memWords; addr++ {
		if tr.Seen(addr) != ref[addr] {
			t.Fatalf("Seen(%d) = %v, want %v", addr, tr.Seen(addr), ref[addr])
		}
	}
	// NoteLost on a seen word records reason+tt; on an unseen word it is
	// a no-op (cold words classify as cold, not replaced).
	tr.NoteLost(63, LostReplaced, 7)
	if r, tt := tr.Lost(63); r != LostReplaced || tt != 7 {
		t.Fatalf("Lost(63) = (%v,%d), want (LostReplaced,7)", r, tt)
	}
	tr.NoteLost(100, LostReplaced, 9)
	if tr.Seen(100) {
		t.Fatal("NoteLost must not mark unseen words as seen")
	}
	if r, _ := tr.Lost(100); r != LostNone {
		t.Fatalf("Lost(100) = %v on never-cached word, want LostNone", r)
	}
	// Re-caching resets the loss reason.
	tr.NoteCached(63)
	if r, _ := tr.Lost(63); r != LostNone {
		t.Fatalf("Lost(63) after recache = %v, want LostNone", r)
	}
}

// TestPooledReuseIsFresh: a cache released back to the construction pool
// and re-obtained with the same geometry must be observationally
// identical to a fresh one — every line invalid, every word timetag
// TTInvalid, LRU state reset — even after heavy dirtying. (Vals may keep
// stale data: it is never readable without a validity check.)
func TestPooledReuseIsFresh(t *testing.T) {
	const capacity, lineWords, assoc = 256, 4, 2
	c := New(capacity, lineWords, assoc)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		addr := prog.Word(rng.Intn(4096))
		v := c.Victim(addr)
		tag, w := c.Split(addr)
		v.Tag = tag
		v.State = Exclusive
		v.Dirty = true
		v.TT[w] = int64(i)
		v.Used[w] = true
		v.DirtyW[w] = true
		v.Vals[w] = float64(i)
		c.Touch(v)
	}
	Release(c)
	r := New(capacity, lineWords, assoc)
	if r != c {
		t.Skip("pool did not return the released cache (GC-cleared pool)")
	}
	if r.clock != 0 {
		t.Errorf("pooled cache clock = %d, want 0", r.clock)
	}
	for i := range r.lines {
		l := &r.lines[i]
		if l.Tag != -1 || l.State != Invalid || l.Dirty || l.lru != 0 {
			t.Fatalf("line %d not reset: %+v", i, l)
		}
		for w := range l.TT {
			if l.TT[w] != TTInvalid || l.Used[w] || l.DirtyW[w] {
				t.Fatalf("line %d word %d not reset: tt=%d used=%v dirtyW=%v",
					i, w, l.TT[w], l.Used[w], l.DirtyW[w])
			}
			if l.ValidWord(w) {
				t.Fatalf("line %d word %d valid in reset cache", i, w)
			}
		}
	}
	for addr := prog.Word(0); addr < 4096; addr += 3 {
		if _, _, ok := r.Lookup(addr); ok {
			t.Fatalf("pooled cache hits addr %d before any fill", addr)
		}
	}
}

// TestPooledTrackerIsFresh: a released tracker re-obtained for the same
// memory extent must report no word as seen.
func TestPooledTrackerIsFresh(t *testing.T) {
	tr := NewTracker(512)
	for a := prog.Word(0); a < 512; a += 2 {
		tr.NoteCached(a)
		tr.NoteLost(a, LostReset, 3)
	}
	ReleaseTracker(tr)
	r := NewTracker(512)
	if r != tr {
		t.Skip("pool did not return the released tracker (GC-cleared pool)")
	}
	for a := prog.Word(0); a < 512; a++ {
		if r.Seen(a) {
			t.Fatalf("pooled tracker has word %d seen", a)
		}
	}
}
