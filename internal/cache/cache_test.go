package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/prog"
)

func TestSplitAndLineBase(t *testing.T) {
	c := New(64, 4, 1)
	tag, w := c.Split(prog.Word(13))
	if tag != 3 || w != 1 {
		t.Fatalf("Split(13) = (%d,%d), want (3,1)", tag, w)
	}
	if got := c.LineBase(13); got != 12 {
		t.Fatalf("LineBase(13) = %d, want 12", got)
	}
}

func TestLookupMissThenFill(t *testing.T) {
	c := New(64, 4, 1)
	if _, _, ok := c.Lookup(20); ok {
		t.Fatal("empty cache must miss")
	}
	v := c.Victim(20)
	if v == nil || v.State != Invalid {
		t.Fatal("victim in empty cache must be an invalid frame")
	}
	tag, w := c.Split(20)
	v.Tag = tag
	v.State = Shared
	v.TT[w] = 5
	v.Vals[w] = 3.25
	c.Touch(v)
	l, w2, ok := c.Lookup(20)
	if !ok || w2 != w || !l.ValidWord(w2) || l.Vals[w2] != 3.25 {
		t.Fatalf("lookup after fill failed: %v %d %v", l, w2, ok)
	}
	// Word 21 shares the line but is invalid.
	l21, w21, ok := c.Lookup(21)
	if !ok || l21 != l {
		t.Fatal("same-line lookup must find the line")
	}
	if l21.ValidWord(w21) {
		t.Fatal("unfilled word must be invalid")
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := New(16, 4, 1) // 4 lines, direct mapped
	// addresses 0 and 16 map to the same set (tags 0 and 4, 4 sets).
	fill := func(addr prog.Word) {
		v := c.Victim(addr)
		tag, w := c.Split(addr)
		v.InvalidateLine()
		v.Tag = tag
		v.State = Shared
		v.TT[w] = 1
		c.Touch(v)
	}
	fill(0)
	if _, _, ok := c.Lookup(0); !ok {
		t.Fatal("0 should be present")
	}
	v := c.Victim(16)
	tag0, _ := c.Split(0)
	if v.Tag != tag0 {
		t.Fatalf("victim for 16 must be the line holding 0, got tag %d", v.Tag)
	}
	fill(16)
	if _, _, ok := c.Lookup(0); ok {
		t.Fatal("0 must be evicted by 16 in a direct-mapped cache")
	}
}

func TestSetAssociativeLRU(t *testing.T) {
	c := New(32, 4, 2) // 8 lines, 4 sets... 32/4=8 lines, 8/2=4 sets
	fill := func(addr prog.Word) {
		v := c.Victim(addr)
		tag, w := c.Split(addr)
		v.InvalidateLine()
		v.Tag = tag
		v.State = Shared
		v.TT[w] = 1
		c.Touch(v)
	}
	// tags 0, 4, 8 all map to set 0 (4 sets).
	fill(0)
	fill(16)
	// touch 0 so 16 is LRU
	if l, _, ok := c.Lookup(0); ok {
		c.Touch(l)
	} else {
		t.Fatal("0 missing")
	}
	fill(32) // must evict 16
	if _, _, ok := c.Lookup(0); !ok {
		t.Fatal("0 (MRU) must survive")
	}
	if _, _, ok := c.Lookup(16); ok {
		t.Fatal("16 (LRU) must be evicted")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(64, 4, 1)
	v := c.Victim(0)
	tag, _ := c.Split(0)
	v.Tag = tag
	v.State = Shared
	v.TT[0] = 1
	v.TT[2] = 3
	if got := c.InvalidateAll(); got != 2 {
		t.Fatalf("dropped %d words, want 2", got)
	}
	if _, _, ok := c.Lookup(0); ok {
		t.Fatal("cache must be empty after InvalidateAll")
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker(100)
	if tr.Seen(5) {
		t.Fatal("fresh tracker must not have seen 5")
	}
	tr.NoteCached(5)
	if !tr.Seen(5) {
		t.Fatal("5 must be seen")
	}
	tr.NoteLost(5, LostInvalFalse, 7)
	r, tt := tr.Lost(5)
	if r != LostInvalFalse || tt != 7 {
		t.Fatalf("Lost = (%v,%d)", r, tt)
	}
	// losing a never-seen word is a no-op
	tr.NoteLost(6, LostReplaced, 1)
	if r, _ := tr.Lost(6); r != LostNone {
		t.Fatal("unseen word must keep LostNone")
	}
}

func TestWriteBufferCoalescing(t *testing.T) {
	wb := NewWriteBuffer(true)
	if !wb.Write(10) {
		t.Fatal("first write generates traffic")
	}
	if wb.Write(10) {
		t.Fatal("second write to same word must coalesce")
	}
	if !wb.Write(11) {
		t.Fatal("different word generates traffic")
	}
	wb.Flush()
	if !wb.Write(10) {
		t.Fatal("after flush the word is no longer pending")
	}

	plain := NewWriteBuffer(false)
	if !plain.Write(10) || !plain.Write(10) {
		t.Fatal("plain buffer never coalesces")
	}
}

// TestWriteBufferGrowth drives the pending set far past its initial
// capacity and cross-checks every traffic decision against a model map:
// a write is traffic exactly when its word is not already pending this
// epoch, through any number of grow/rehash steps.
func TestWriteBufferGrowth(t *testing.T) {
	wb := NewWriteBuffer(true)
	model := map[prog.Word]bool{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		addr := prog.Word(r.Intn(2048))
		if traffic := wb.Write(addr); traffic == model[addr] {
			t.Fatalf("write %d of word %d: traffic = %v with pending = %v", i, addr, traffic, model[addr])
		}
		model[addr] = true
		if wb.Pending() != len(model) {
			t.Fatalf("Pending = %d, model holds %d", wb.Pending(), len(model))
		}
	}
	wb.Flush()
	if wb.Pending() != 0 {
		t.Fatalf("Pending = %d after Flush", wb.Pending())
	}
	for addr := range model {
		if !wb.Write(addr) {
			t.Fatalf("word %d still coalesces after Flush", addr)
		}
	}
}

// TestWriteBufferGenerationWraparound: when the epoch generation counter
// wraps, the stamp array must be reset so pre-wrap entries cannot alias
// the restarted counter and falsely coalesce.
func TestWriteBufferGenerationWraparound(t *testing.T) {
	wb := NewWriteBuffer(true)
	wb.gen = ^uint32(0)
	if !wb.Write(7) {
		t.Fatal("first write at max generation is traffic")
	}
	if wb.Write(7) {
		t.Fatal("repeat write at max generation must coalesce")
	}
	wb.Flush() // wraps: stamps cleared, generation restarts at 1
	if wb.gen != 1 {
		t.Fatalf("generation = %d after wraparound, want 1", wb.gen)
	}
	if !wb.Write(7) {
		t.Fatal("pre-wrap entry must not survive the wraparound flush")
	}
}

// Property: after filling an address, Lookup finds it with the value; after
// eviction of its line, it misses — random fill sequence consistency vs a
// model map.
func TestQuickCacheModelConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(64, 4, 2)
		model := map[int64]float64{} // line tag -> fill stamp (presence model)
		present := map[int64]bool{}
		for step := 0; step < 200; step++ {
			addr := prog.Word(r.Intn(256))
			tag, w := c.Split(addr)
			if l, ww, ok := c.Lookup(addr); ok {
				if ww != w {
					return false
				}
				if present[tag] && l.ValidWord(ww) && l.Vals[ww] != model[int64(addr)] {
					return false
				}
				c.Touch(l)
				continue
			}
			// fill
			v := c.Victim(addr)
			if v.State != Invalid {
				delete(present, v.Tag)
			}
			v.InvalidateLine()
			v.Tag = tag
			v.State = Shared
			val := r.Float64()
			v.TT[w] = int64(step)
			v.Vals[w] = val
			model[int64(addr)] = val
			present[tag] = true
			c.Touch(v)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFourWayAssociativity(t *testing.T) {
	c := New(64, 4, 4) // 16 lines, 4 sets of 4 ways
	fill := func(addr prog.Word, stamp int64) {
		v := c.Victim(addr)
		if v.State != Invalid {
			v.InvalidateLine()
		}
		tag, w := c.Split(addr)
		v.Tag = tag
		v.State = Shared
		v.TT[w] = stamp
		c.Touch(v)
	}
	// Four tags mapping to set 0 coexist (tags 0,4,8,12 with 4 sets).
	for k := 0; k < 4; k++ {
		fill(prog.Word(k*16), int64(k))
	}
	for k := 0; k < 4; k++ {
		if _, _, ok := c.Lookup(prog.Word(k * 16)); !ok {
			t.Fatalf("way %d evicted prematurely", k)
		}
	}
	// Fifth conflicting fill evicts exactly the LRU (tag of addr 0).
	fill(prog.Word(4*16), 9)
	if _, _, ok := c.Lookup(0); ok {
		t.Fatal("LRU way must be the victim")
	}
	for k := 1; k < 5; k++ {
		if _, _, ok := c.Lookup(prog.Word(k * 16)); !ok {
			t.Fatalf("way %d should survive", k)
		}
	}
}

func TestForEachValidLine(t *testing.T) {
	c := New(32, 4, 1)
	v := c.Victim(0)
	tag, _ := c.Split(0)
	v.Tag = tag
	v.State = Shared
	v.TT[0] = 1
	seen := 0
	c.ForEachValidLine(func(l *Line) { seen++ })
	if seen != 1 {
		t.Fatalf("visited %d lines, want 1", seen)
	}
}

func TestWordValidityAndDirtyBits(t *testing.T) {
	c := New(16, 4, 1)
	v := c.Victim(0)
	tag, _ := c.Split(0)
	v.Tag = tag
	v.State = Shared
	v.TT[1] = 5
	v.DirtyW[1] = true
	if v.ValidWord(0) || !v.ValidWord(1) {
		t.Fatal("per-word validity broken")
	}
	v.InvalidateWord(1)
	if v.ValidWord(1) {
		t.Fatal("InvalidateWord failed")
	}
	if !v.DirtyW[1] {
		t.Fatal("InvalidateWord must not clear dirty accounting")
	}
	v.InvalidateLine()
	if v.DirtyW[1] {
		t.Fatal("InvalidateLine must clear dirty bits")
	}
}
