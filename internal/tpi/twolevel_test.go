package tpi

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/memsys"
)

func cfg2L() machine.Config {
	c := machine.Default(machine.SchemeTPI)
	c.Procs = 2
	c.CacheWords = 256
	c.L1Words = 32
	c.LineWords = 4
	return c
}

func newTwoLevel(t *testing.T) *TwoLevel {
	t.Helper()
	c := cfg2L()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return NewTwoLevel(c, 512)
}

func TestL1HitPath(t *testing.T) {
	s := newTwoLevel(t)
	s.EpochBoundary(1)
	s.Memory.InitWord(8, 2.5)
	// first regular read: L1 miss, L2 miss -> fill both
	if _, lat := s.Read(0, 8, memsys.ReadRegular, 0); lat <= s.Cfg.L2HitCycles {
		t.Fatalf("first read should be a full miss, lat=%d", lat)
	}
	// second regular read: on-chip hit at L1 latency
	v, lat := s.Read(0, 8, memsys.ReadRegular, 0)
	if v != 2.5 || lat != s.Cfg.L1HitCycles {
		t.Fatalf("L1 hit: v=%v lat=%d", v, lat)
	}
	if s.St.L1Hits != 1 {
		t.Fatalf("L1Hits = %d", s.St.L1Hits)
	}
}

func TestTimeReadBypassesL1(t *testing.T) {
	s := newTwoLevel(t)
	s.EpochBoundary(1)
	s.Write(0, 16, 1.0, false) // populates L2 (write-through) but not L1
	s.Read(0, 16, memsys.ReadRegular, 0)
	// The word now sits in L1. A Time-Read must NOT take the 1-cycle L1
	// path: the compiled sequence invalidates the L1 word and revalidates
	// against the L2 timetags (L2HitCycles when the window passes).
	s.EpochBoundary(2)
	v, lat := s.Read(0, 16, memsys.ReadTime, 1)
	if v != 1.0 {
		t.Fatalf("value = %v", v)
	}
	if lat != s.Cfg.L2HitCycles {
		t.Fatalf("Time-Read latency = %d, want L2 hit %d", lat, s.Cfg.L2HitCycles)
	}
	if s.St.TimeReadL1Invalidations == 0 {
		t.Fatal("Time-Read must invalidate the on-chip copy")
	}
}

func TestL1NeverServesStaleData(t *testing.T) {
	s := newTwoLevel(t)
	s.EpochBoundary(1)
	s.Write(0, 24, 1.0, false)
	s.Read(0, 24, memsys.ReadRegular, 0) // L1 holds 1.0
	s.EpochBoundary(2)
	s.Write(1, 24, 9.0, false) // another processor rewrites the word
	s.EpochBoundary(3)
	// The compiler would mark this read Time-Read(1); the L1 copy is
	// stale but cannot be consulted.
	v, _ := s.Read(0, 24, memsys.ReadTime, 1)
	if v != 9.0 {
		t.Fatalf("stale on-chip data served: %v", v)
	}
	// The refill updated L1; a covered (regular) read now hits on-chip
	// with the fresh value.
	v, lat := s.Read(0, 24, memsys.ReadRegular, 0)
	if v != 9.0 || lat != s.Cfg.L1HitCycles {
		t.Fatalf("post-refill L1 read: v=%v lat=%d", v, lat)
	}
}

func TestCriticalWriteInvalidatesL1Word(t *testing.T) {
	s := newTwoLevel(t)
	s.EpochBoundary(1)
	s.Write(0, 32, 1.0, false)
	s.Read(0, 32, memsys.ReadRegular, 0) // into L1
	s.Write(0, 32, 2.0, true)            // critical store
	if line, w, ok := s.l1[0].Lookup(32); ok && line.ValidWord(w) {
		t.Fatal("critical store must drop the L1 word")
	}
	if v, _ := s.Read(0, 32, memsys.ReadBypass, 0); v != 2.0 {
		t.Fatal("memory must hold the critical store")
	}
}

func TestWriteThroughUpdatesL1(t *testing.T) {
	s := newTwoLevel(t)
	s.EpochBoundary(1)
	s.Memory.InitWord(40, 5.0)
	s.Read(0, 40, memsys.ReadRegular, 0) // L1 holds 5.0
	s.Write(0, 40, 6.0, false)
	v, lat := s.Read(0, 40, memsys.ReadRegular, 0)
	if v != 6.0 || lat != s.Cfg.L1HitCycles {
		t.Fatalf("L1 after write-through: v=%v lat=%d", v, lat)
	}
}

func TestNameAndStats(t *testing.T) {
	s := newTwoLevel(t)
	if s.Name() != "TPI2L" {
		t.Fatal("name")
	}
	s.EpochBoundary(1)
	s.Read(0, 0, memsys.ReadRegular, 0)
	if s.St.Reads != 1 {
		t.Fatalf("reads double counted: %d", s.St.Reads)
	}
}

// TPI2L inherits TPI's host-parallel and stream fast-path opt-ins and
// layers the L1 filter into the stream cursors.
var (
	_ memsys.Sharded  = (*TwoLevel)(nil)
	_ memsys.Streamer = (*TwoLevel)(nil)
	_ memsys.Releaser = (*TwoLevel)(nil)
)
