// Package tpi implements the paper's Two-Phase Invalidation (TPI)
// hardware: per-processor epoch counters, per-word timetags, the
// Time-Read hit rule, the line-fill timetag rule that protects against
// same-epoch false sharing, write-through caches with (optionally
// cache-organized) write buffers, and the two-phase timetag reset that
// recycles small timetags.
//
// Hit rules (E = current epoch counter, tt = word timetag, w = window):
//
//	regular load:  hit iff the word is valid.
//	Time-Read(w):  hit iff the word is valid AND tt >= E - min(w, maxW).
//	bypass load:   always fetches from memory (critical-section data).
//
// Update rules:
//
//	write:        tt := E (write-through; critical writes self-invalidate)
//	fill:         accessed word tt := E, neighbours tt := E-1
//	Time-Read hit: tt := E (validation refreshes the tag)
//	regular hit:   tt := E (the compiler proved freshness this epoch)
package tpi

import (
	"math"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/prog"
	"repro/internal/stats"
)

// System is the TPI memory system.
type System struct {
	*memsys.Core
	caches   []*cache.Cache
	trackers []*cache.Tracker
	wbufs    []*cache.WriteBuffer
	phase    int64 // two-phase reset period: half the timetag range
}

// New builds a TPI system.
func New(cfg machine.Config, memWords int64) *System {
	s := &System{
		Core:  memsys.NewCore(cfg, memWords),
		phase: (int64(1) << uint(cfg.TimetagBits)) / 2,
	}
	if s.phase < 1 {
		s.phase = 1
	}
	s.caches = make([]*cache.Cache, cfg.Procs)
	s.trackers = make([]*cache.Tracker, cfg.Procs)
	s.wbufs = make([]*cache.WriteBuffer, cfg.Procs)
	return s
}

// Name implements memsys.System.
func (s *System) Name() string { return "TPI" }

// procState returns p's cache and tracker (building them, and the write
// buffer, on first use). Safe under host parallelism: each processor is
// owned by exactly one worker, so concurrent first-touches write
// distinct slice elements.
func (s *System) procState(p int) (*cache.Cache, *cache.Tracker) {
	if cc := s.caches[p]; cc != nil {
		return cc, s.trackers[p]
	}
	cc := cache.New(s.Cfg.CacheWords, s.Cfg.LineWords, s.Cfg.Assoc)
	s.caches[p] = cc
	s.trackers[p] = cache.NewTracker(s.Memory.Size())
	s.wbufs[p] = cache.NewWriteBuffer(s.Cfg.WriteBufferCache)
	return cc, s.trackers[p]
}

// ReleaseCaches implements memsys.Releaser. The fields are nilled so any
// use after release fails loudly instead of corrupting a pooled cache.
func (s *System) ReleaseCaches() {
	for p, cc := range s.caches {
		if cc == nil {
			continue
		}
		cache.Release(cc)
		cache.ReleaseTracker(s.trackers[p])
		cache.ReleaseWriteBuffer(s.wbufs[p])
	}
	s.caches, s.trackers, s.wbufs = nil, nil, nil
}

// HostShardable implements memsys.Sharded: TPI's coherence decisions are
// processor-local (timetags against the global epoch counter, which only
// changes at barriers), so the reference paths shard per processor. The
// two-phase reset machinery runs only at EpochBoundary, outside any
// parallel region.
func (s *System) HostShardable() bool { return true }

// effWindow caps a compiler window at what the timetag width supports.
func (s *System) effWindow(w int) int64 {
	max := s.Cfg.MaxWindow()
	if int64(w) > max {
		return max
	}
	return int64(w)
}

// Read implements memsys.System.
func (s *System) Read(p int, addr prog.Word, kind memsys.ReadKind, window int) (float64, int64) {
	ln := s.LaneFor(p)
	ln.St.Reads++
	cc, tr := s.procState(p)

	if kind == memsys.ReadBypass {
		return s.bypassRead(ln, p, addr)
	}

	line, w, present := cc.Lookup(addr)
	if present && line.ValidWord(w) {
		ok := true
		if kind == memsys.ReadTime && line.TT[w] < s.Epoch-s.effWindow(window) {
			ok = false
		}
		if ok {
			ln.St.ReadHits++
			if !s.Cfg.LineTimetags {
				// Per-word tags may be promoted on a validated hit; a
				// line-granular tag may not (its other words could have
				// been written by other tasks since the fill).
				line.TT[w] = s.Epoch
			}
			line.Used[w] = true
			cc.Touch(line)
			ln.CheckFresh(addr, line.Vals[w], p, kind.HitContext())
			return line.Vals[w], s.Cfg.HitCycles
		}
		// Window failure on a present word: necessary (data really
		// changed) or conservative (compiler/window artifact)?
		if ln.LastWriteEpoch(addr) > line.TT[w] {
			ln.St.ReadMisses[stats.MissTrueSharing]++
		} else {
			ln.St.ReadMisses[stats.MissConservative]++
		}
		s.refreshLine(ln, line, w, addr, cc, tr)
		lat := s.chargeLineMiss(ln, p, addr)
		return line.Vals[w], lat
	}

	// Word absent (whole line, or a word-grain hole).
	ln.St.ReadMisses[s.ClassifyMissLane(ln, tr, addr)]++
	if present {
		s.refreshLine(ln, line, w, addr, cc, tr)
		lat := s.chargeLineMiss(ln, p, addr)
		return line.Vals[w], lat
	}
	if v := cc.Victim(addr); v.State != cache.Invalid {
		s.evictFor(ln, p, v) // accounts write-back of dirty words
	}
	accessedTT := s.Epoch
	if s.Cfg.LineTimetags {
		accessedTT = s.Epoch - 1 // the line tag claims only fill freshness
	}
	nl, nw := s.FillLane(ln, cc, tr, addr, accessedTT, s.Epoch-1)
	lat := s.chargeLineMiss(ln, p, addr)
	s.maybePrefetch(ln, p, addr)
	return nl.Vals[nw], lat
}

// maybePrefetch fetches the sequentially-next line after a demand miss
// (one-block lookahead). The prefetched words carry neighbour-rule
// timetags (E-1): they are data prefetches, not freshness claims.
func (s *System) maybePrefetch(ln *memsys.Lane, p int, addr prog.Word) {
	if !s.Cfg.Prefetch {
		return
	}
	cc, tr := s.caches[p], s.trackers[p]
	next := cc.LineBase(addr) + prog.Word(cc.LineWords())
	if int64(next) >= s.Memory.Size() {
		return
	}
	if _, _, ok := cc.Lookup(next); ok {
		return // already resident
	}
	if v := cc.Victim(next); v.State != cache.Invalid {
		s.evictFor(ln, p, v)
	}
	s.FillLane(ln, cc, tr, next, s.Epoch-1, s.Epoch-1)
	ln.St.ReadTrafficWords += int64(s.Cfg.LineWords)
	ln.St.PrefetchedLines++
	ln.Inject(int64(s.Cfg.LineWords) + 1)
	// No processor stall: the prefetch overlaps with computation.
}

// refreshLine refetches a present line's data from memory, promoting the
// accessed word to the current epoch and its neighbours to at least E-1.
func (s *System) refreshLine(ln *memsys.Lane, line *cache.Line, w int, addr prog.Word, cc *cache.Cache, tr *cache.Tracker) {
	base := cc.LineBase(addr)
	for i := 0; i < cc.LineWords(); i++ {
		line.Vals[i] = ln.Value(base + prog.Word(i))
		if nt := s.Epoch - 1; line.TT[i] == cache.TTInvalid || line.TT[i] < nt {
			line.TT[i] = nt
		}
		tr.NoteCached(base + prog.Word(i))
	}
	if !s.Cfg.LineTimetags {
		line.TT[w] = s.Epoch
	}
	line.Used[w] = true
	cc.Touch(line)
}

// chargeLineMiss accounts traffic, network load and latency of a line
// fetch by processor p from addr's home node.
func (s *System) chargeLineMiss(ln *memsys.Lane, p int, addr prog.Word) int64 {
	ln.St.ReadTrafficWords += int64(s.Cfg.LineWords)
	ln.Inject(int64(s.Cfg.LineWords) + 1)
	lat := s.LineMissLatencyFor(p, addr)
	ln.St.MissLatencySum += lat
	return lat
}

// bypassRead fetches one word from memory without validating the cache.
// Any cached copy of the word is refreshed in place (value only) so that
// later covered reads of the same task see current data.
func (s *System) bypassRead(ln *memsys.Lane, p int, addr prog.Word) (float64, int64) {
	v := ln.Value(addr)
	cc := s.caches[p]
	if line, w, ok := cc.Lookup(addr); ok && line.ValidWord(w) {
		line.Vals[w] = v
	}
	ln.St.ReadMisses[stats.MissBypass]++
	ln.St.ReadTrafficWords++
	ln.Inject(2)
	lat := s.WordMissLatencyFor(p, addr)
	ln.St.MissLatencySum += lat
	return v, lat
}

// Write implements memsys.System: write-through with an infinite write
// buffer; the processor does not stall. Critical stores are written
// through immediately (no coalescing) and self-invalidated so no cache
// holds a copy that claims epoch-freshness for lock-protected data.
func (s *System) Write(p int, addr prog.Word, val float64, crit bool) int64 {
	ln := s.LaneFor(p)
	if crit {
		return s.writeCritical(ln, p, addr, val)
	}
	ln.St.Writes++
	ln.Write(addr, val, p, s.Epoch)
	cc, tr := s.procState(p)
	wtt := s.Epoch
	if s.Cfg.LineTimetags {
		// A line-granular tag cannot record a single-word write; the
		// written value is usable via the ordinary validity rules only.
		wtt = s.Epoch - 1
	}
	line, w, ok := cc.Lookup(addr)
	hit := ok && line.ValidWord(w)
	if hit {
		ln.St.WriteHits++
	} else {
		// Classify before the tracker below records the new residency.
		ln.St.WriteMisses[s.ClassifyMissLane(ln, tr, addr)]++
	}
	if ok {
		line.Vals[w] = val
		if line.TT[w] < wtt || line.TT[w] == cache.TTInvalid {
			line.TT[w] = wtt
		}
		line.Used[w] = true
		cc.Touch(line)
		tr.NoteCached(addr)
	} else {
		// Write-validate allocation: claim a frame, validate only the
		// written word (no fetch-on-write).
		v := cc.Victim(addr)
		if v.State != cache.Invalid {
			s.evictFor(ln, p, v)
		}
		tag, w := cc.Split(addr)
		v.Tag = tag
		v.State = cache.Shared
		v.Vals[w] = val
		v.TT[w] = wtt
		v.Used[w] = true
		cc.Touch(v)
		tr.NoteCached(addr)
	}
	if s.Cfg.TPIWriteBack {
		// Write-back-at-boundary: the write stays dirty in the cache (the
		// simulator keeps memory values authoritative; only traffic and
		// stalls follow the policy) and drains at the next barrier.
		if line, w, ok := cc.Lookup(addr); ok {
			line.DirtyW[w] = true
		}
		return 0
	}
	if s.wbufs[p].Write(addr) {
		ln.St.WriteTrafficWords++
		ln.Inject(1)
	} else {
		ln.St.WritesCoalesced++
	}
	if s.Cfg.SeqConsistency {
		// write-through must be globally performed before the processor
		// proceeds: the whole remote store latency is exposed.
		lat := s.WordMissLatencyFor(p, addr)
		if !hit {
			ln.St.WriteMissLatencySum += lat
		}
		return lat
	}
	return 0
}

func (s *System) writeCritical(ln *memsys.Lane, p int, addr prog.Word, val float64) int64 {
	ln.St.Writes++
	ln.St.WriteMisses[stats.MissBypass]++
	ln.Write(addr, val, p, s.Epoch)
	cc, tr := s.procState(p)
	if line, w, ok := cc.Lookup(addr); ok && line.ValidWord(w) {
		tr.NoteLost(addr, cache.LostInvalTrue, line.TT[w])
		line.InvalidateWord(w)
	}
	ln.St.WriteTrafficWords++
	ln.Inject(1)
	return 0
}

func (s *System) evictFor(ln *memsys.Lane, p int, v *cache.Line) {
	cc, tr := s.caches[p], s.trackers[p]
	base := prog.Word(v.Tag * int64(cc.LineWords()))
	for i := 0; i < cc.LineWords(); i++ {
		if v.TT[i] != cache.TTInvalid {
			tr.NoteLost(base+prog.Word(i), cache.LostReplaced, v.TT[i])
		}
		if v.DirtyW[i] {
			ln.St.WriteTrafficWords++
			ln.Inject(1)
		}
	}
	v.InvalidateLine()
}

// EpochBoundary implements memsys.System: the barrier drains write
// buffers (or, under the write-back policy, flushes every dirty word in
// a burst), and when the epoch counter crosses a phase boundary it runs
// the two-phase timetag reset (or the flash-invalidate ablation).
func (s *System) EpochBoundary(epoch int64) int64 {
	s.Epoch = epoch
	var stall int64
	if s.Cfg.TPIWriteBack {
		stall += s.flushDirty()
	}
	for _, wb := range s.wbufs {
		if wb != nil {
			wb.Flush()
		}
	}
	switch {
	case s.Cfg.FlashReset:
		if epoch > 0 && epoch%(2*s.phase) == 0 {
			s.St.TimetagResets++
			before := s.St.ResetInvalidations
			for p := 0; p < s.Cfg.Procs; p++ {
				s.flashInvalidate(p)
			}
			stall += s.Cfg.ResetCycles
			if s.Probe != nil {
				s.Probe.TimetagReset(epoch, s.St.ResetInvalidations-before)
			}
		}
	default:
		if epoch > 0 && epoch%s.phase == 0 {
			s.St.TimetagResets++
			before := s.St.ResetInvalidations
			cut := epoch - s.phase
			for p := 0; p < s.Cfg.Procs; p++ {
				s.resetOutOfPhase(p, cut)
			}
			stall += s.Cfg.ResetCycles
			if s.Probe != nil {
				s.Probe.TimetagReset(epoch, s.St.ResetInvalidations-before)
			}
		}
	}
	return stall
}

// flushDirty drains every dirty word at the barrier (the burst the paper
// warns about), returning the stall: the slowest processor's dirty words
// at FlushBandwidth words/cycle.
func (s *System) flushDirty() int64 {
	bw := s.Cfg.FlushBandwidth
	if bw <= 0 {
		bw = 1
	}
	var worst int64
	for p := 0; p < s.Cfg.Procs; p++ {
		cc := s.caches[p]
		if cc == nil {
			continue
		}
		var dirty int64
		cc.ForEachValidLine(func(l *cache.Line) {
			for i := range l.DirtyW {
				if l.DirtyW[i] {
					dirty++
					l.DirtyW[i] = false
				}
			}
		})
		s.St.FlushedWords += dirty
		s.St.WriteTrafficWords += dirty
		s.Netw.Inject(dirty)
		if dirty > worst {
			worst = dirty
		}
	}
	stall := (worst + bw - 1) / bw
	s.St.FlushStallCycles += stall
	return stall
}

// resetOutOfPhase invalidates every word whose timetag is at or below the
// cut (one full phase old): the two-phase hardware reset.
func (s *System) resetOutOfPhase(p int, cut int64) {
	cc, tr := s.caches[p], s.trackers[p]
	if cc == nil {
		return
	}
	cc.ForEachValidLine(func(l *cache.Line) {
		base := prog.Word(l.Tag * int64(cc.LineWords()))
		live := 0
		for i := 0; i < cc.LineWords(); i++ {
			if l.TT[i] == cache.TTInvalid {
				continue
			}
			if l.TT[i] <= cut {
				tr.NoteLost(base+prog.Word(i), cache.LostReset, l.TT[i])
				l.InvalidateWord(i)
				s.St.ResetInvalidations++
			} else {
				live++
			}
		}
		if live == 0 {
			l.InvalidateLine()
		}
	})
}

// flashInvalidate drops the whole cache (the simple overflow strategy the
// paper rejects).
func (s *System) flashInvalidate(p int) {
	cc, tr := s.caches[p], s.trackers[p]
	if cc == nil {
		return
	}
	cc.ForEachValidLine(func(l *cache.Line) {
		base := prog.Word(l.Tag * int64(cc.LineWords()))
		for i := 0; i < cc.LineWords(); i++ {
			if l.TT[i] != cache.TTInvalid {
				tr.NoteLost(base+prog.Word(i), cache.LostReset, l.TT[i])
				s.St.ResetInvalidations++
			}
		}
		l.InvalidateLine()
	})
}

// Caches exposes the per-processor caches for white-box tests,
// materializing any a lazy run has not built yet.
func (s *System) Caches() []*cache.Cache {
	for p := range s.caches {
		if s.caches[p] == nil {
			s.procState(p)
		}
	}
	return s.caches
}

// StreamCapable implements memsys.Streamer.
func (s *System) StreamCapable() bool { return true }

// InitReadCursor implements memsys.Streamer: regular and Time-Reads
// inline the timetag hit check (the Time-Read cut is E - min(w, maxW),
// the regular cut accepts any valid word); bypass reads always take the
// scalar bypass path.
func (s *System) InitReadCursor(c *memsys.ReadCursor, p int, kind memsys.ReadKind, window int, addr0 prog.Word) {
	if kind == memsys.ReadBypass {
		*c = memsys.ReadCursor{Mode: memsys.StreamUncached, Sys: s, Proc: p, Kind: kind, Window: window}
		return
	}
	cut := int64(math.MinInt64)
	if kind == memsys.ReadTime {
		cut = s.Epoch - s.effWindow(window)
	}
	ln := s.LaneFor(p)
	cc, _ := s.procState(p)
	*c = memsys.ReadCursor{
		Mode: memsys.StreamCached, Sys: s, Core: s.Core, Ln: ln, CC: cc,
		Proc: p, Kind: kind, Window: window, Cut: cut, PromoteTT: !s.Cfg.LineTimetags,
		Epoch: s.Epoch, HitCycles: s.Cfg.HitCycles, HitCtx: kind.HitContext(),
		Fresh: ln.FreshWords(),
	}
}

// InitWriteCursor implements memsys.Streamer: write-through (or the
// write-back-at-boundary policy) with the promote-if-older tag rule.
func (s *System) InitWriteCursor(c *memsys.WriteCursor, p int, addr0 prog.Word) {
	wtt := s.Epoch
	if s.Cfg.LineTimetags {
		wtt = s.Epoch - 1
	}
	cc, tr := s.procState(p)
	*c = memsys.WriteCursor{
		Mode: memsys.StreamCached, Sys: s, Core: s.Core, Ln: s.LaneFor(p),
		CC: cc, Tr: tr, WB: s.wbufs[p],
		Proc: p, Epoch: s.Epoch, WTT: wtt, PromoteTT: true,
		WriteBack: s.Cfg.TPIWriteBack, SeqC: s.Cfg.SeqConsistency,
	}
}
