package tpi

// Two-level "off-the-shelf microprocessor" implementation (paper §3).
//
// Commodity CPUs (the paper names the MIPS R10000 and the PowerPC 600
// series) have on-chip caches with no room for per-word timetags, so the
// TPI state lives in the off-chip L2 SRAM. Ordinary loads may hit the
// on-chip L1; a Time-Read cannot be validated there, so the compiler
// emits a cache-block-invalidate followed by a regular load ("Index
// Write Back Invalidate" on the R10000, DCBF on the PowerPC): the L1
// word is discarded and the access is re-validated against the L2
// timetags, paying at least the L2 latency even when the data was
// on-chip and fresh.
//
// The model here: when cfg.L1Words > 0, every processor gets an L1 in
// front of the existing (timetagged) cache, which plays the L2 role.
//   - regular load: L1 hit (L1HitCycles) else L2 path + L1 fill.
//   - Time-Read:    invalidate the L1 word, run the L2 Time-Read path
//                   (L2HitCycles on an L2 timetag hit), refill L1.
//   - bypass load:  invalidate the L1 word, fetch memory.
//   - store:        write-through both levels (write-validate allocate
//                   in L1 only on hit).
// Inclusion is maintained the cheap way: L1 data is always a subset of
// what the L2 path would return, because every L1 fill comes from an L2
// access that just validated or fetched the word.

import (
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/prog"
)

// TwoLevel wraps the TPI system with per-processor on-chip L1 caches.
// The L1 filter counters (L1Hits, L1Misses, TimeReadL1Invalidations)
// live in stats.Stats and route through the processor's lane, so the
// two-level model shards across host goroutines and streams exactly
// like plain TPI.
type TwoLevel struct {
	*System
	l1 []*cache.Cache
}

// NewTwoLevel builds the off-the-shelf implementation.
func NewTwoLevel(cfg machine.Config, memWords int64) *TwoLevel {
	t := &TwoLevel{System: New(cfg, memWords)}
	t.l1 = make([]*cache.Cache, cfg.Procs)
	return t
}

// l1For returns p's L1, building it on first use (same single-owner
// argument as procState).
func (t *TwoLevel) l1For(p int) *cache.Cache {
	if l1 := t.l1[p]; l1 != nil {
		return l1
	}
	l1 := cache.New(t.Cfg.L1Words, t.Cfg.LineWords, t.Cfg.Assoc)
	t.l1[p] = l1
	return l1
}

// Name implements memsys.System.
func (t *TwoLevel) Name() string { return "TPI2L" }

// ReleaseCaches implements memsys.Releaser: the L1s return to the pool
// along with the embedded TPI system's timetagged caches.
func (t *TwoLevel) ReleaseCaches() {
	for _, cc := range t.l1 {
		if cc != nil {
			cache.Release(cc)
		}
	}
	t.l1 = nil
	t.System.ReleaseCaches()
}

// Read implements memsys.System.
func (t *TwoLevel) Read(p int, addr prog.Word, kind memsys.ReadKind, window int) (float64, int64) {
	l1 := t.l1For(p)

	if kind == memsys.ReadRegular {
		if line, w, ok := l1.Lookup(addr); ok && line.ValidWord(w) {
			ln := t.LaneFor(p)
			ln.St.L1Hits++
			ln.St.Reads++
			ln.St.ReadHits++
			l1.Touch(line)
			ln.CheckFresh(addr, line.Vals[w], p, "tpi2l L1 hit")
			return line.Vals[w], t.Cfg.L1HitCycles
		}
		t.LaneFor(p).St.L1Misses++
		v, lat := t.System.Read(p, addr, kind, window)
		if lat == t.Cfg.HitCycles {
			lat = t.Cfg.L2HitCycles // the L2 tag+timetag access is slower
		}
		memsys.FillWordL1(l1, addr, v)
		return v, lat
	}

	// Time-Read / bypass: the on-chip copy cannot be validated; the
	// compiled sequence invalidates it and re-reads through the L2.
	if line, w, ok := l1.Lookup(addr); ok && line.ValidWord(w) {
		line.InvalidateWord(w)
		t.LaneFor(p).St.TimeReadL1Invalidations++
	}
	v, lat := t.System.Read(p, addr, kind, window)
	if lat == t.Cfg.HitCycles {
		lat = t.Cfg.L2HitCycles
	}
	if kind == memsys.ReadTime {
		memsys.FillWordL1(l1, addr, v)
	}
	return v, lat
}

// Write implements memsys.System: write-through both levels.
func (t *TwoLevel) Write(p int, addr prog.Word, val float64, crit bool) int64 {
	l1 := t.l1For(p)
	if line, w, ok := l1.Lookup(addr); ok && line.ValidWord(w) {
		if crit {
			line.InvalidateWord(w)
		} else {
			line.Vals[w] = val
		}
	}
	return t.System.Write(p, addr, val, crit)
}

// EpochBoundary implements memsys.System. The L1 needs no epoch actions:
// it holds no coherence state (Time-Reads never trust it), and two-phase
// resets apply to the timetagged L2 only. Regular reads may keep hitting
// stale-capable L1 words only if the compiler proved them never-stale,
// which is exactly the Regular contract.
func (t *TwoLevel) EpochBoundary(epoch int64) int64 {
	return t.System.EpochBoundary(epoch)
}

// InitReadCursor implements memsys.Streamer: the inner TPI cursor is
// built first (it carries the L2 hit predicate, lane, and fallback
// target — the embedded System, so fallbacks never re-run the L1
// filter), then the L1 front is layered on as StreamTwoLevel.
func (t *TwoLevel) InitReadCursor(c *memsys.ReadCursor, p int, kind memsys.ReadKind, window int, addr0 prog.Word) {
	t.System.InitReadCursor(c, p, kind, window, addr0)
	c.Inner = c.Mode
	c.Mode = memsys.StreamTwoLevel
	// The uncached (bypass) inner init leaves Ln and HitCycles unset; the
	// L1 layer needs both (lane counters, L2-latency substitution).
	c.Ln = t.LaneFor(p)
	c.HitCycles = t.Cfg.HitCycles
	c.L1 = t.l1For(p)
	c.L1HitCycles = t.Cfg.L1HitCycles
	c.L2HitCycles = t.Cfg.L2HitCycles
}

// InitWriteCursor implements memsys.Streamer: write-through both levels
// (stream writes are never critical, so the L1 word is updated in place
// when valid).
func (t *TwoLevel) InitWriteCursor(c *memsys.WriteCursor, p int, addr0 prog.Word) {
	t.System.InitWriteCursor(c, p, addr0)
	c.Inner = c.Mode
	c.Mode = memsys.StreamTwoLevel
	c.L1 = t.l1For(p)
}
