package tpi

// Two-level "off-the-shelf microprocessor" implementation (paper §3).
//
// Commodity CPUs (the paper names the MIPS R10000 and the PowerPC 600
// series) have on-chip caches with no room for per-word timetags, so the
// TPI state lives in the off-chip L2 SRAM. Ordinary loads may hit the
// on-chip L1; a Time-Read cannot be validated there, so the compiler
// emits a cache-block-invalidate followed by a regular load ("Index
// Write Back Invalidate" on the R10000, DCBF on the PowerPC): the L1
// word is discarded and the access is re-validated against the L2
// timetags, paying at least the L2 latency even when the data was
// on-chip and fresh.
//
// The model here: when cfg.L1Words > 0, every processor gets an L1 in
// front of the existing (timetagged) cache, which plays the L2 role.
//   - regular load: L1 hit (L1HitCycles) else L2 path + L1 fill.
//   - Time-Read:    invalidate the L1 word, run the L2 Time-Read path
//                   (L2HitCycles on an L2 timetag hit), refill L1.
//   - bypass load:  invalidate the L1 word, fetch memory.
//   - store:        write-through both levels (write-validate allocate
//                   in L1 only on hit).
// Inclusion is maintained the cheap way: L1 data is always a subset of
// what the L2 path would return, because every L1 fill comes from an L2
// access that just validated or fetched the word.

import (
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/prog"
)

// TwoLevel wraps the TPI system with per-processor on-chip L1 caches.
type TwoLevel struct {
	*System
	l1 []*cache.Cache

	// L1Stats
	L1Hits, L1Misses, TimeReadL1Invalidations int64
}

// NewTwoLevel builds the off-the-shelf implementation.
func NewTwoLevel(cfg machine.Config, memWords int64) *TwoLevel {
	t := &TwoLevel{System: New(cfg, memWords)}
	for p := 0; p < cfg.Procs; p++ {
		t.l1 = append(t.l1, cache.New(cfg.L1Words, cfg.LineWords, cfg.Assoc))
	}
	return t
}

// Name implements memsys.System.
func (t *TwoLevel) Name() string { return "TPI2L" }

// ReleaseCaches implements memsys.Releaser: the L1s return to the pool
// along with the embedded TPI system's timetagged caches.
func (t *TwoLevel) ReleaseCaches() {
	for _, cc := range t.l1 {
		cache.Release(cc)
	}
	t.l1 = nil
	t.System.ReleaseCaches()
}

// HostShardable overrides the embedded TPI opt-in: the two-level model
// accumulates L1 counters (L1Hits, L1Misses, TimeReadL1Invalidations)
// directly on the system from every processor's reference path, so
// concurrent execution would race on them. TPI2L runs sequentially.
func (t *TwoLevel) HostShardable() bool { return false }

// StreamCapable overrides the embedded TPI opt-in: every reference must
// go through the L1 filter (and its counters), which the inlined stream
// cursors would skip. TPI2L takes the scalar path.
func (t *TwoLevel) StreamCapable() bool { return false }

// Read implements memsys.System.
func (t *TwoLevel) Read(p int, addr prog.Word, kind memsys.ReadKind, window int) (float64, int64) {
	l1 := t.l1[p]

	if kind == memsys.ReadRegular {
		if line, w, ok := l1.Lookup(addr); ok && line.ValidWord(w) {
			t.L1Hits++
			t.St.Reads++
			t.St.ReadHits++
			l1.Touch(line)
			t.Memory.CheckFresh(addr, line.Vals[w], p, "tpi2l L1 hit")
			return line.Vals[w], t.Cfg.L1HitCycles
		}
		t.L1Misses++
		v, lat := t.System.Read(p, addr, kind, window)
		if lat == t.Cfg.HitCycles {
			lat = t.Cfg.L2HitCycles // the L2 tag+timetag access is slower
		}
		t.fillL1(p, addr, v)
		return v, lat
	}

	// Time-Read / bypass: the on-chip copy cannot be validated; the
	// compiled sequence invalidates it and re-reads through the L2.
	if line, w, ok := l1.Lookup(addr); ok && line.ValidWord(w) {
		line.InvalidateWord(w)
		t.TimeReadL1Invalidations++
	}
	v, lat := t.System.Read(p, addr, kind, window)
	if lat == t.Cfg.HitCycles {
		lat = t.Cfg.L2HitCycles
	}
	if kind == memsys.ReadTime {
		t.fillL1(p, addr, v)
	}
	return v, lat
}

// fillL1 installs a word in the on-chip cache (word-grain validate; no
// extra memory traffic — the data just came through the L2 path).
func (t *TwoLevel) fillL1(p int, addr prog.Word, v float64) {
	l1 := t.l1[p]
	if line, w, ok := l1.Lookup(addr); ok {
		line.Vals[w] = v
		line.TT[w] = 0 // L1 carries no timetags; 0 marks "valid"
		l1.Touch(line)
		return
	}
	vic := l1.Victim(addr)
	if vic.State != cache.Invalid {
		vic.InvalidateLine() // clean write-through L1: silent drop
	}
	tag, w := l1.Split(addr)
	vic.Tag = tag
	vic.State = cache.Shared
	vic.Vals[w] = v
	vic.TT[w] = 0
	l1.Touch(vic)
}

// Write implements memsys.System: write-through both levels.
func (t *TwoLevel) Write(p int, addr prog.Word, val float64, crit bool) int64 {
	l1 := t.l1[p]
	if line, w, ok := l1.Lookup(addr); ok && line.ValidWord(w) {
		if crit {
			line.InvalidateWord(w)
		} else {
			line.Vals[w] = val
		}
	}
	return t.System.Write(p, addr, val, crit)
}

// EpochBoundary implements memsys.System. The L1 needs no epoch actions:
// it holds no coherence state (Time-Reads never trust it), and two-phase
// resets apply to the timetagged L2 only. Regular reads may keep hitting
// stale-capable L1 words only if the compiler proved them never-stale,
// which is exactly the Regular contract.
func (t *TwoLevel) EpochBoundary(epoch int64) int64 {
	return t.System.EpochBoundary(epoch)
}
