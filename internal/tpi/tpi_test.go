package tpi

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/stats"
)

func cfg() machine.Config {
	c := machine.Default(machine.SchemeTPI)
	c.Procs = 2
	c.CacheWords = 64
	c.LineWords = 4
	return c
}

func newSys(t *testing.T, c machine.Config) *System {
	t.Helper()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return New(c, 256)
}

func TestTimeReadWindowSemantics(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	s.Write(0, 10, 3.5, false) // P0 caches word 10 with tt=1

	// epoch 2: window 1 covers a write at epoch 1 -> hit
	s.EpochBoundary(2)
	v, lat := s.Read(0, 10, memsys.ReadTime, 1)
	if v != 3.5 || lat != s.Cfg.HitCycles {
		t.Fatalf("window-1 hit: v=%v lat=%d", v, lat)
	}

	// the hit promoted tt to 2; at epoch 4 a window-1 read needs tt >= 3:
	// must miss conservatively (data unchanged).
	s.EpochBoundary(3)
	s.EpochBoundary(4)
	before := s.St.ReadMisses[stats.MissConservative]
	v, lat = s.Read(0, 10, memsys.ReadTime, 1)
	if v != 3.5 {
		t.Fatalf("value after refetch = %v", v)
	}
	if lat <= s.Cfg.HitCycles {
		t.Fatal("window failure must pay miss latency")
	}
	if s.St.ReadMisses[stats.MissConservative] != before+1 {
		t.Fatal("unchanged data failing the window is a conservative miss")
	}
}

func TestTrueSharingClassification(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	s.Write(0, 10, 1.0, false) // P0 caches word 10 (tt=1)
	s.EpochBoundary(2)
	s.Write(1, 10, 2.0, false) // P1 overwrites in epoch 2
	s.EpochBoundary(3)
	v, _ := s.Read(0, 10, memsys.ReadTime, 1)
	if v != 2.0 {
		t.Fatalf("read stale value %v", v)
	}
	if s.St.ReadMisses[stats.MissTrueSharing] != 1 {
		t.Fatalf("miss should be true sharing: %+v", s.St.ReadMisses)
	}
}

func TestRegularReadIgnoresAge(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	s.Write(0, 10, 7.0, false)
	for e := int64(2); e < 20; e++ {
		s.EpochBoundary(e)
	}
	v, lat := s.Read(0, 10, memsys.ReadRegular, 0)
	if v != 7.0 || lat != s.Cfg.HitCycles {
		t.Fatalf("regular read of old-but-fresh copy must hit: v=%v lat=%d", v, lat)
	}
}

func TestFillNeighbourRule(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(5)
	// Miss on word 8 fills the line 8..11.
	s.Read(0, 8, memsys.ReadRegular, 0)
	cc := s.Caches()[0]
	line, w, ok := cc.Lookup(8)
	if !ok || !line.ValidWord(w) {
		t.Fatal("fill failed")
	}
	if line.TT[0] != 5 {
		t.Fatalf("accessed word tt = %d, want 5", line.TT[0])
	}
	for i := 1; i < 4; i++ {
		if line.TT[i] != 4 {
			t.Fatalf("neighbour word %d tt = %d, want E-1 = 4", i, line.TT[i])
		}
	}
	// Consequence: a window-0 Time-Read of a neighbour must MISS even
	// though the word is valid (it may have been written by another task
	// this epoch before our fill).
	misses := s.St.TotalReadMisses()
	s.Read(0, 9, memsys.ReadTime, 0)
	if s.St.TotalReadMisses() != misses+1 {
		t.Fatal("window-0 Time-Read of a neighbour-filled word must miss")
	}
}

func TestWriteValidateAllocation(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	s.Write(0, 20, 1.25, false)
	cc := s.Caches()[0]
	line, w, ok := cc.Lookup(20)
	if !ok || !line.ValidWord(w) {
		t.Fatal("write must allocate the written word")
	}
	// neighbours must NOT be validated (no fetch-on-write)
	for i := 0; i < 4; i++ {
		if i != w && line.TT[i] != cache.TTInvalid {
			t.Fatalf("write-validate must not validate neighbour %d", i)
		}
	}
	if s.St.ReadTrafficWords != 0 {
		t.Fatal("write allocation must not generate read traffic")
	}
}

func TestWriteBufferCoalescingTraffic(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	for i := 0; i < 10; i++ {
		s.Write(0, 30, float64(i), false)
	}
	if s.St.WriteTrafficWords != 1 || s.St.WritesCoalesced != 9 {
		t.Fatalf("traffic=%d coalesced=%d, want 1/9", s.St.WriteTrafficWords, s.St.WritesCoalesced)
	}
	// Epoch boundary flushes: next write to the same word is new traffic.
	s.EpochBoundary(2)
	s.Write(0, 30, 99, false)
	if s.St.WriteTrafficWords != 2 {
		t.Fatalf("post-flush traffic = %d, want 2", s.St.WriteTrafficWords)
	}

	// Plain buffer never coalesces.
	c2 := cfg()
	c2.WriteBufferCache = false
	s2 := newSys(t, c2)
	s2.EpochBoundary(1)
	for i := 0; i < 10; i++ {
		s2.Write(0, 30, float64(i), false)
	}
	if s2.St.WriteTrafficWords != 10 {
		t.Fatalf("plain buffer traffic = %d, want 10", s2.St.WriteTrafficWords)
	}
}

func TestCriticalWriteSelfInvalidates(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	s.Write(0, 40, 1.0, false) // cached copy
	s.Write(0, 40, 2.0, true)  // critical store
	cc := s.Caches()[0]
	line, w, ok := cc.Lookup(40)
	if ok && line.ValidWord(w) {
		t.Fatal("critical store must invalidate the writer's own copy")
	}
	if v := s.Memory.Read(40); v != 2.0 {
		t.Fatalf("memory = %v, want 2.0", v)
	}
	// A window-1 Time-Read by another processor with an old copy must
	// miss and see the new value.
	s.Write(1, 40, 0.5, false) // stale-path: P1 writes then P0 critical-writes
	s.Write(0, 40, 3.0, true)
	v, _ := s.Read(1, 40, memsys.ReadBypass, 0)
	if v != 3.0 {
		t.Fatalf("bypass read = %v, want 3.0", v)
	}
}

func TestBypassReadRefreshesCachedCopy(t *testing.T) {
	s := newSys(t, cfg())
	s.EpochBoundary(1)
	s.Write(0, 50, 1.0, false)    // P0 caches 1.0
	s.Memory.Write(50, 9.0, 1, 1) // P1 writes behind P0's back (critical path)
	v, _ := s.Read(0, 50, memsys.ReadBypass, 0)
	if v != 9.0 {
		t.Fatalf("bypass must fetch memory value, got %v", v)
	}
	cc := s.Caches()[0]
	line, w, _ := cc.Lookup(50)
	if line.Vals[w] != 9.0 {
		t.Fatal("bypass read must refresh the cached value in place")
	}
}

func TestTwoPhaseResetDropsOnlyOutOfPhase(t *testing.T) {
	c := cfg()
	c.TimetagBits = 3 // phase = 4
	s := newSys(t, c)
	s.EpochBoundary(1)
	s.Write(0, 0, 1.0, false) // tt=1 (out of phase at E=4: 1 <= 0? cut = 4-4 = 0 -> survives)
	s.EpochBoundary(2)
	s.Write(0, 8, 2.0, false) // tt=2
	s.EpochBoundary(3)
	s.EpochBoundary(4) // reset with cut=0: everything survives
	if s.St.TimetagResets != 1 {
		t.Fatalf("resets = %d, want 1", s.St.TimetagResets)
	}
	if s.St.ResetInvalidations != 0 {
		t.Fatalf("cut=0 reset dropped %d words", s.St.ResetInvalidations)
	}
	s.EpochBoundary(5)
	s.Write(0, 16, 3.0, false) // tt=5
	s.EpochBoundary(6)
	s.EpochBoundary(7)
	s.EpochBoundary(8) // reset with cut=4: words with tt<=4 drop (tt=1, tt=2)
	if s.St.ResetInvalidations != 2 {
		t.Fatalf("reset invalidations = %d, want 2", s.St.ResetInvalidations)
	}
	cc := s.Caches()[0]
	if l, w, ok := cc.Lookup(16); !ok || !l.ValidWord(w) {
		t.Fatal("in-phase word must survive the reset")
	}
	if l, w, ok := cc.Lookup(0); ok && l.ValidWord(w) {
		t.Fatal("out-of-phase word must be invalidated")
	}
	// the reset stall is reported to the caller
	if stall := s.EpochBoundary(12); stall != s.Cfg.ResetCycles {
		t.Fatalf("reset stall = %d, want %d", stall, s.Cfg.ResetCycles)
	}
}

func TestFlashResetDropsEverything(t *testing.T) {
	c := cfg()
	c.TimetagBits = 3 // phase 4, flash period 8
	c.FlashReset = true
	s := newSys(t, c)
	s.EpochBoundary(7)
	s.Write(0, 0, 1.0, false)
	s.Write(0, 16, 2.0, false)
	s.EpochBoundary(8) // flash
	if s.St.ResetInvalidations != 2 {
		t.Fatalf("flash dropped %d words, want 2", s.St.ResetInvalidations)
	}
	cc := s.Caches()[0]
	if _, _, ok := cc.Lookup(0); ok {
		t.Fatal("flash reset must empty the cache")
	}
}

func TestWindowCappedByTimetagWidth(t *testing.T) {
	c := cfg()
	c.TimetagBits = 3 // MaxWindow = 6
	s := newSys(t, c)
	s.EpochBoundary(1)
	s.Write(0, 0, 1.0, false) // tt=1
	s.EpochBoundary(2)
	s.EpochBoundary(3)
	// At epoch 3, an absurdly wide compiler window must be capped to 6:
	// tt=1 >= 3-6 -> still a hit here; push further.
	for e := int64(4); e <= 3+7; e++ {
		s.EpochBoundary(e)
	}
	// Now E=10, tt would need >= 10-6=4 > 1 -> miss even with window 1000.
	// (The word may already have been reset-invalidated, which also
	// forces the miss — either path is the hardware limit in action.)
	hits := s.St.ReadHits
	s.Read(0, 0, memsys.ReadTime, 1000)
	if s.St.ReadHits != hits {
		t.Fatal("window beyond timetag capacity must not hit")
	}
}

func TestEvictionClassifiedAsReplacement(t *testing.T) {
	s := newSys(t, cfg()) // 64-word cache, 16 lines, direct-mapped
	s.EpochBoundary(1)
	s.Read(0, 0, memsys.ReadRegular, 0)  // fill line 0
	s.Read(0, 64, memsys.ReadRegular, 0) // conflicts with line 0 (16 sets)
	s.Read(0, 0, memsys.ReadRegular, 0)  // back: replacement miss
	if s.St.ReadMisses[stats.MissReplace] != 1 {
		t.Fatalf("replacement misses = %d, want 1 (%v)", s.St.ReadMisses[stats.MissReplace], s.St.ReadMisses)
	}
}
