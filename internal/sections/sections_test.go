package sections

import (
	"strings"
	"testing"

	"repro/internal/epochg"
	"repro/internal/pfl"
	"repro/internal/prog"
)

func build(t *testing.T, src string, interproc bool) *Analysis {
	t.Helper()
	ast, err := pfl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := pfl.Check(ast)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prog.Build(info, 4)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(p, Options{Interproc: interproc})
}

func findNodes(ps *ProcSummary, k epochg.Kind) []*NodeSummary {
	var out []*NodeSummary
	for _, ns := range ps.Nodes {
		if ns.Node.Kind == k {
			out = append(out, ns)
		}
	}
	return out
}

func TestDoallModSection(t *testing.T) {
	a := build(t, `
program p
param n = 64
array A[n][n]
proc main() {
  doall i = 0 to n-1 {
    for j = 1 to n-2 {
      A[i][j] = 1.0
    }
  }
}
`, true)
	ps := a.Procs["main"]
	doalls := findNodes(ps, epochg.KindDoall)
	if len(doalls) != 1 {
		t.Fatalf("%d doall nodes", len(doalls))
	}
	mod := doalls[0].Mod["A"]
	if got, want := mod.String(), "[0:63][1:62]"; got != want {
		t.Fatalf("MOD(A) = %s, want %s", got, want)
	}
	if _, ok := doalls[0].Use["A"]; ok {
		t.Fatal("A is not read in this epoch")
	}
}

func TestUseSectionAndStencil(t *testing.T) {
	a := build(t, `
program p
param n = 16
array A[n]
array B[n]
proc main() {
  doall i = 1 to n-2 {
    B[i] = A[i-1] + A[i+1]
  }
}
`, true)
	ps := a.Procs["main"]
	d := findNodes(ps, epochg.KindDoall)[0]
	if got, want := d.Use["A"].String(), "[0:15]"; got != want {
		t.Fatalf("USE(A) = %s, want %s", got, want)
	}
	if got, want := d.Mod["B"].String(), "[1:14]"; got != want {
		t.Fatalf("MOD(B) = %s, want %s", got, want)
	}
}

func TestNonAffineSubscriptBecomesUnknown(t *testing.T) {
	a := build(t, `
program p
param n = 8
array A[n]
array IDX[n]
proc main() {
  doall i = 0 to n-1 {
    A[IDX[i]] = 1.0
  }
}
`, true)
	ps := a.Procs["main"]
	d := findNodes(ps, epochg.KindDoall)[0]
	if !d.Mod["A"].Dims[0].IsFull() {
		t.Fatalf("MOD(A) = %s, want full (unknown subscript)", d.Mod["A"])
	}
	// IDX[i] itself is a read with a precise section.
	if got, want := d.Use["IDX"].String(), "[0:7]"; got != want {
		t.Fatalf("USE(IDX) = %s, want %s", got, want)
	}
}

func TestScalarRefs(t *testing.T) {
	a := build(t, `
program p
param n = 8
scalar s
array A[n]
proc main() {
  doall i = 0 to n-1 {
    critical {
      s = s + A[i]
    }
  }
}
`, true)
	ps := a.Procs["main"]
	d := findNodes(ps, epochg.KindDoall)[0]
	if _, ok := d.Mod["s"]; !ok {
		t.Fatal("scalar write missing from MOD")
	}
	if _, ok := d.Use["s"]; !ok {
		t.Fatal("scalar read missing from USE")
	}
	var critRefs int
	for _, r := range d.Refs {
		if r.InCritical {
			critRefs++
		}
	}
	// s (read), A[i] (read), s (write) are inside the critical section;
	// the subscript i is a register.
	if critRefs != 3 {
		t.Fatalf("critical refs = %d, want 3", critRefs)
	}
}

func TestInterproceduralGMod(t *testing.T) {
	src := `
program p
param n = 8
array A[n]
array B[n]
proc main() {
  call init(A)
  doall i = 0 to n-1 { B[i] = A[i] }
}
proc init(X[]) {
  doall i = 0 to n-1 { X[i] = 0.5 }
}
`
	a := build(t, src, true)
	ps := a.Procs["main"]
	calls := findNodes(ps, epochg.KindCall)
	if len(calls) != 1 {
		t.Fatalf("%d call nodes", len(calls))
	}
	// The call's MOD must be renamed to the actual argument A.
	if got, want := calls[0].Mod["A"].String(), "[0:7]"; got != want {
		t.Fatalf("call MOD(A) = %s, want %s", got, want)
	}
	if _, ok := calls[0].Mod["X"]; ok {
		t.Fatal("formal name leaked into caller summary")
	}
	if _, ok := calls[0].Mod["B"]; ok {
		t.Fatal("B is not written by init")
	}

	// Without interprocedural analysis the call clobbers everything.
	a2 := build(t, src, false)
	calls2 := findNodes(a2.Procs["main"], epochg.KindCall)
	if _, ok := calls2[0].Mod["B"]; !ok {
		t.Fatal("interproc-off call must clobber all arrays")
	}
}

func TestEntryFreshness(t *testing.T) {
	src := `
program p
param n = 8
array A[n]
array B[n]
proc main() {
  doall i = 0 to n-1 { A[i] = 1.0 }
  doall i = 0 to n-1 { B[i] = 2.0 }
  call use(A)
}
proc use(X[]) {
  doall i = 0 to n-1 { X[i] = X[i] + 1.0 }
}
`
	a := build(t, src, true)
	use := a.Procs["use"]
	// A is written two counting epochs before the callee entry (the B
	// doall and the call-node prologue; the callee's entry node is
	// structural and free).
	fx := use.EntryFresh["X"]
	if fx != 2 {
		t.Fatalf("EntryFresh(X) = %d, want 2", fx)
	}
	// B is also written before the call (one epoch closer).
	fb := use.EntryFresh["B"]
	if fb >= Infinity || fb <= 0 {
		t.Fatalf("EntryFresh(B) = %d, want finite > 0", fb)
	}
	if fx <= fb {
		t.Fatalf("A written earlier than B: freshness(X)=%d should exceed freshness(B)=%d", fx, fb)
	}

	// main's entry freshness is infinite (nothing precedes program start).
	if a.Procs["main"].EntryFresh["A"] != Infinity {
		t.Fatal("main entry freshness must be Infinity")
	}

	// interproc off: callee must assume everything was just written.
	a2 := build(t, src, false)
	if a2.Procs["use"].EntryFresh["X"] != 0 {
		t.Fatal("interproc-off entry freshness must be 0")
	}
}

func TestMustExecute(t *testing.T) {
	a := build(t, `
program p
param n = 8
scalar s
array A[n]
array B[n]
proc main() {
  doall i = 0 to n-1 {
    A[i] = 0.0
    if (s > 0) {
      B[i] = 1.0
    }
    for j = 0 to n-1 {
      A[j % 4] = A[j % 4] + 1.0
    }
  }
}
`, true)
	ps := a.Procs["main"]
	d := findNodes(ps, epochg.KindDoall)[0]
	var aDef, bDef *Ref
	for _, r := range d.Refs {
		if r.Write && r.Array == "A" && len(r.Loops) == 0 {
			aDef = r
		}
		if r.Write && r.Array == "B" {
			bDef = r
		}
	}
	if aDef == nil || bDef == nil {
		t.Fatal("refs not found")
	}
	if !aDef.MustExecute() {
		t.Error("unconditional A def must execute")
	}
	if bDef.MustExecute() {
		t.Error("conditional B def must not be a must-def")
	}
}

func TestRefSeqOrdering(t *testing.T) {
	a := build(t, `
program p
array A[4]
array B[4]
proc main() {
  A[0] = B[0]
  B[1] = A[0]
}
`, true)
	ps := a.Procs["main"]
	ser := findNodes(ps, epochg.KindSerial)[0]
	last := -1
	for _, r := range ser.Refs {
		if r.Seq <= last {
			t.Fatalf("refs out of order: %d after %d", r.Seq, last)
		}
		last = r.Seq
	}
	// Order: B[0] read, A[0] write, A[0] read, B[1] write.
	if len(ser.Refs) != 4 {
		t.Fatalf("refs = %d, want 4", len(ser.Refs))
	}
	if ser.Refs[0].Array != "B" || ser.Refs[0].Write {
		t.Fatalf("first ref should be read of B, got %+v", ser.Refs[0])
	}
	if ser.Refs[1].Array != "A" || !ser.Refs[1].Write {
		t.Fatalf("second ref should be write of A, got %+v", ser.Refs[1])
	}
}

func TestReportContents(t *testing.T) {
	a := build(t, `
program p
param n = 8
array A[n]
array T[n]
proc main() {
  doall i = 0 to n-1 { A[i] = T[i] }
  call f(A)
}
proc f(X[]) {
  doall i = 1 to n-2 { X[i] = X[i-1] * 0.5 }
}
`, true)
	rep := a.Report()
	for _, want := range []string{
		"proc main:", "proc f:",
		"MOD A[0:7]", "USE T[0:7]",
		"GMOD X[1:6]", "GUSE X[0:5]",
		"entry-fresh T = never-written",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestOrderedRefsFlagged(t *testing.T) {
	a := build(t, `
program p
param n = 8
array S[n]
proc main() {
  doall i = 1 to n-1 {
    ordered {
      S[i] = S[i-1] + 1.0
    }
  }
}
`, true)
	d := findNodes(a.Procs["main"], epochg.KindDoall)[0]
	ordered := 0
	for _, r := range d.Refs {
		if r.InOrdered {
			ordered++
		}
		if r.InCritical {
			t.Error("ordered is not critical")
		}
	}
	// S[i-1] read and S[i] write inside the ordered section (the
	// subscript i is a register).
	if ordered != 2 {
		t.Fatalf("ordered refs = %d, want 2", ordered)
	}
}

func TestIntrinsicArgsAreUses(t *testing.T) {
	a := build(t, `
program p
param n = 8
array A[n]
array B[n]
proc main() {
  doall i = 0 to n-1 {
    B[i] = max(A[i], sin(A[n-1-i]))
  }
}
`, true)
	d := findNodes(a.Procs["main"], epochg.KindDoall)[0]
	if got, want := d.Use["A"].String(), "[0:7]"; got != want {
		t.Fatalf("USE(A) = %s, want %s (intrinsic arguments must be walked)", got, want)
	}
}

func TestDecreasingLoopSection(t *testing.T) {
	a := build(t, `
program p
param n = 8
array A[n]
proc main() {
  doall i = 0 to 0 {
    for j = 6 to 2 step -2 {
      A[j] = 1.0
    }
  }
}
`, true)
	d := findNodes(a.Procs["main"], epochg.KindDoall)[0]
	// Decreasing loop [6..2 step -2] writes indices {2,4,6}: the section
	// hull must be ordered low:high.
	if got, want := d.Mod["A"].String(), "[2:6]"; got != want {
		t.Fatalf("MOD(A) = %s, want %s", got, want)
	}
}
