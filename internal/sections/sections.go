// Package sections implements the array data-flow analysis of the
// compiler: per-epoch MOD (may-write) and USE (may-read) array sections,
// per-procedure summaries (GMOD/GUSE) propagated bottom-up over the call
// graph, and the top-down "entry freshness" analysis that lets reads in a
// callee keep locality across procedure boundaries instead of assuming
// every incoming array was just written (the paper's interprocedural
// contribution).
//
// All results are conservative in the safe direction: sections may
// overapproximate (hulls, Unknown bounds) and distances underapproximate.
package sections

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/epochg"
	"repro/internal/pfl"
	"repro/internal/prog"
	"repro/internal/symexpr"
)

// Infinity is the entry-freshness value meaning "never written before this
// point" (reads of such data can never be stale).
const Infinity = int(1) << 30

// LoopFrame records one serial for-loop enclosing a reference within an
// epoch node.
type LoopFrame struct {
	Var      string
	Lo, Hi   symexpr.Expr
	NonEmpty bool // provably iterates at least once
	// Stmt identifies the source loop, so the marking phase can tell when
	// two references share the same dynamic loop instance.
	Stmt *pfl.ForStmt
}

// Ref is one array-element or scalar reference within an epoch node, with
// enough context to compute its section under several expansions.
type Ref struct {
	RefID      int
	Array      string // array or scalar name as written in this proc
	IsScalar   bool
	Write      bool
	InCritical bool
	// InOrdered marks references inside DOACROSS ordered sections, which
	// permit same-epoch cross-iteration flow and need critical-style
	// coherence handling.
	InOrdered bool
	Seq       int         // walk order within the node (program order for one task)
	CondDepth int         // enclosing if-statements within the node body
	Loops     []LoopFrame // enclosing serial loops, outermost first
	// Doall context: set when the ref sits inside a DOALL body.
	DoallVar         string
	DoallLo, DoallHi symexpr.Expr
	Subs             []symexpr.Expr // affine subscripts (loop + doall vars symbolic)
	Pos              pfl.Pos
}

// PointSec returns the exact (symbolic) element section of the reference.
func (r *Ref) PointSec() symexpr.Section { return symexpr.PointSection(r.Subs) }

// TaskSec returns the section touched by one task (one doall iteration or
// the single serial task): expanded over enclosing serial loops, with the
// doall variable left symbolic.
func (r *Ref) TaskSec() symexpr.Section {
	s := r.PointSec()
	for i := len(r.Loops) - 1; i >= 0; i-- {
		f := r.Loops[i]
		s = s.Expand(f.Var, f.Lo, f.Hi)
	}
	return s
}

// NodeSec returns the section touched by the whole epoch (all tasks):
// TaskSec additionally expanded over the doall variable.
func (r *Ref) NodeSec() symexpr.Section {
	s := r.TaskSec()
	if r.DoallVar != "" {
		s = s.Expand(r.DoallVar, r.DoallLo, r.DoallHi)
	}
	return s
}

// MustExecute reports whether the reference executes unconditionally in
// every task instance of its node (no enclosing ifs, all enclosing loops
// provably non-empty). Only such references may serve as covering
// definitions in the marking phase.
func (r *Ref) MustExecute() bool {
	if r.CondDepth > 0 {
		return false
	}
	for _, f := range r.Loops {
		if !f.NonEmpty {
			return false
		}
	}
	return true
}

// ArraySections maps array/scalar name to a hull section.
type ArraySections map[string]symexpr.Section

// add hulls sec into as[name].
func (as ArraySections) add(name string, sec symexpr.Section, env symexpr.Env) {
	if cur, ok := as[name]; ok {
		as[name] = cur.Hull(sec, env)
	} else {
		as[name] = sec
	}
}

// Clone deep-copies the map (sections are immutable values).
func (as ArraySections) Clone() ArraySections {
	c := make(ArraySections, len(as))
	for k, v := range as {
		c[k] = v
	}
	return c
}

// Names returns the sorted key set.
func (as ArraySections) Names() []string {
	ns := make([]string, 0, len(as))
	for n := range as {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// NodeSummary is the per-epoch analysis result.
type NodeSummary struct {
	Node *epochg.Node
	Refs []*Ref
	Mod  ArraySections // may-write hull per array (cross-task)
	Use  ArraySections // may-read hull per array (cross-task)
}

// ProcSummary is the per-procedure analysis result.
type ProcSummary struct {
	Proc  *pfl.Proc
	Graph *epochg.Graph
	Nodes []*NodeSummary // indexed by node ID

	// GMod/GUse summarize the procedure's side effects in terms of its own
	// array names (formals and globals), used by callers after renaming.
	GMod ArraySections
	GUse ArraySections

	// EntryFresh[array] is the minimum number of epoch-counter increments
	// that can separate the most recent pre-entry write of the array from
	// the procedure's entry node (Infinity = never written before entry).
	EntryFresh map[string]int
}

// Analysis holds the whole-program result.
type Analysis struct {
	Prog  *prog.Prog
	Procs map[string]*ProcSummary
	// Interproc records whether interprocedural propagation was enabled;
	// when false, call nodes MOD/USE everything and entry freshness is 0
	// (the whole-cache-invalidate-at-calls baseline the paper argues
	// against).
	Interproc bool
}

// Options configures the analysis.
type Options struct {
	// Interproc enables interprocedural summaries and entry freshness.
	// Disabled, every call conservatively clobbers all arrays and callees
	// assume arbitrary pre-entry writes (the paper's ablation baseline).
	Interproc bool
}

// Analyze runs the section analysis over all procedures.
func Analyze(p *prog.Prog, opts Options) *Analysis {
	a := &Analysis{Prog: p, Procs: make(map[string]*ProcSummary), Interproc: opts.Interproc}

	// Build graphs and local (intra-procedural) summaries first.
	for _, pr := range p.AST.Procs {
		ps := &ProcSummary{
			Proc:       pr,
			Graph:      epochg.Build(pr),
			GMod:       ArraySections{},
			GUse:       ArraySections{},
			EntryFresh: map[string]int{},
		}
		ps.Nodes = make([]*NodeSummary, len(ps.Graph.Nodes))
		for _, n := range ps.Graph.Nodes {
			ps.Nodes[n.ID] = a.summarizeNode(pr, n)
		}
		a.Procs[pr.Name] = ps
	}

	// Bottom-up GMOD/GUSE over the (acyclic) call graph.
	done := map[string]bool{}
	var visit func(name string)
	visit = func(name string) {
		if done[name] {
			return
		}
		done[name] = true
		ps := a.Procs[name]
		for _, ns := range ps.Nodes {
			if ns.Node.Kind == epochg.KindCall {
				visit(ns.Node.Call.Name)
				a.expandCall(ps, ns)
			}
		}
		for _, ns := range ps.Nodes {
			for arr, sec := range ns.Mod {
				ps.GMod.add(arr, sec, nil)
			}
			for arr, sec := range ns.Use {
				ps.GUse.add(arr, sec, nil)
			}
		}
	}
	for _, pr := range p.AST.Procs {
		visit(pr.Name)
	}

	a.computeEntryFreshness()
	return a
}

// summarizeNode collects refs and builds MOD/USE hulls for one node.
func (a *Analysis) summarizeNode(pr *pfl.Proc, n *epochg.Node) *NodeSummary {
	ns := &NodeSummary{Node: n, Mod: ArraySections{}, Use: ArraySections{}}
	w := &refWalker{prog: a.Prog, ns: ns}
	switch n.Kind {
	case epochg.KindSerial:
		for _, s := range n.Stmts {
			w.stmt(s)
		}
	case epochg.KindHeader:
		w.expr(n.Loop.Lo, false)
		w.expr(n.Loop.Hi, false)
		if n.Loop.Step != nil {
			w.expr(n.Loop.Step, false)
		}
	case epochg.KindBranch:
		w.expr(n.Branch.Cond, false)
	case epochg.KindDoall:
		d := n.Doall
		w.expr(d.Lo, false)
		w.expr(d.Hi, false)
		w.doallVar = d.Var
		w.doallLo = a.Prog.Affine(d.Lo, w.loopVarSet())
		w.doallHi = a.Prog.Affine(d.Hi, w.loopVarSet())
		for _, s := range d.Body.Stmts {
			w.stmt(s)
		}
	case epochg.KindCall:
		// Filled in by expandCall once the callee summary exists.
	}
	for _, r := range ns.Refs {
		sec := r.NodeSec()
		if r.Write {
			ns.Mod.add(r.Array, sec, nil)
		} else {
			ns.Use.add(r.Array, sec, nil)
		}
	}
	return ns
}

// expandCall fills a call node's MOD/USE from the callee's summary,
// renaming formals to actuals. Without interprocedural analysis the call
// clobbers every global array and scalar (rank-appropriate full sections).
func (a *Analysis) expandCall(caller *ProcSummary, ns *NodeSummary) {
	call := ns.Node.Call
	if !a.Interproc {
		for name, ai := range a.Prog.Arrays {
			ns.Mod.add(name, symexpr.FullSection(len(ai.Dims)), nil)
			ns.Use.add(name, symexpr.FullSection(len(ai.Dims)), nil)
		}
		for name := range a.Prog.Scalars {
			ns.Mod.add(name, symexpr.Section{}, nil)
			ns.Use.add(name, symexpr.Section{}, nil)
		}
		return
	}
	callee := a.Procs[call.Name]
	rename := map[string]string{}
	for i, f := range callee.Proc.Formals {
		rename[f.Name] = call.Args[i]
	}
	for arr, sec := range callee.GMod {
		name := arr
		if actual, ok := rename[arr]; ok {
			name = actual
		}
		ns.Mod.add(name, sec, nil)
	}
	for arr, sec := range callee.GUse {
		name := arr
		if actual, ok := rename[arr]; ok {
			name = actual
		}
		ns.Use.add(name, sec, nil)
	}
}

// computeEntryFreshness propagates, top-down from main, the minimum epoch
// distance between the last possible write of each array and each
// procedure's entry.
func (a *Analysis) computeEntryFreshness() {
	// Initialize: main's data was last "written" at program load; caches
	// start empty, so it can never be stale.
	for name, ps := range a.Procs {
		init := 0
		if name == "main" || a.Interproc {
			// main: nothing precedes program start; other procs start at
			// Infinity and are refined by their call sites below.
			init = Infinity
		}
		for arr := range a.Prog.Arrays {
			ps.EntryFresh[arr] = init
		}
		for sc := range a.Prog.Scalars {
			ps.EntryFresh[sc] = init
		}
		for _, f := range ps.Proc.Formals {
			ps.EntryFresh[f.Name] = init
		}
	}
	if !a.Interproc {
		return
	}

	// Process procedures in topological order (callers before callees).
	order := a.topoOrder()
	for _, name := range order {
		caller := a.Procs[name]
		de := caller.Graph.DistFromEntry()
		for _, ns := range caller.Nodes {
			if ns.Node.Kind != epochg.KindCall {
				continue
			}
			callee := a.Procs[ns.Node.Call.Name]
			rename := map[string]string{} // actual -> formal
			for i, f := range callee.Proc.Formals {
				rename[ns.Node.Call.Args[i]] = f.Name
			}
			// For every array the callee might read, compute the distance
			// from its last possible write to this call site (+1 for
			// entering the callee's entry node).
			for _, actual := range a.allNames() {
				calleeName := actual
				if f, ok := rename[actual]; ok {
					calleeName = f
				}
				// No +1 here: the callee's entry node is structural and
				// does not advance the epoch counter (epochg.Node.Counts).
				fresh := a.freshAtNode(caller, de, actual, ns.Node)
				if fresh < callee.EntryFresh[calleeName] {
					callee.EntryFresh[calleeName] = fresh
				}
			}
		}
	}
}

// freshAtNode computes the minimum epoch distance from any write of array
// `name` (inside the caller, or before the caller's entry) to node `at`.
func (a *Analysis) freshAtNode(ps *ProcSummary, distFromEntry []int, name string, at *epochg.Node) int {
	best := Infinity
	// Writes before the caller's own entry.
	if ef := ps.EntryFresh[name]; ef < Infinity {
		if d := distFromEntry[at.ID]; d >= 0 && ef+d < best {
			best = ef + d
		}
	}
	// Writes inside the caller.
	for _, ns := range ps.Nodes {
		if _, written := ns.Mod[name]; !written {
			continue
		}
		if ns.Node == at {
			// A write in the call node itself (callee writes then reads):
			// handled inside the callee's own analysis; the conservative
			// cross-visit distance is the shortest cycle.
			if d := ps.Graph.Dist(at, at); d > 0 && d < best {
				best = d
			}
			continue
		}
		if d := ps.Graph.Dist(ns.Node, at); d >= 0 && d < best {
			best = d
		}
	}
	return best
}

// topoOrder returns procedure names with callers before callees,
// starting from main.
func (a *Analysis) topoOrder() []string {
	var order []string
	seen := map[string]bool{}
	var visit func(string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		order = append(order, name)
		ps := a.Procs[name]
		if ps == nil {
			return
		}
		for _, ns := range ps.Nodes {
			if ns.Node.Kind == epochg.KindCall {
				visit(ns.Node.Call.Name)
			}
		}
	}
	visit("main")
	// Unreachable procedures last, deterministically.
	var rest []string
	for name := range a.Procs {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	return append(order, rest...)
}

// allNames returns every array and scalar name, sorted.
func (a *Analysis) allNames() []string {
	var ns []string
	for n := range a.Prog.Arrays {
		ns = append(ns, n)
	}
	for n := range a.Prog.Scalars {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// refWalker walks statements collecting references with loop context.
type refWalker struct {
	prog      *prog.Prog
	ns        *NodeSummary
	loops     []LoopFrame
	condDepth int
	inCrit    bool
	inOrdered bool
	doallVar  string
	doallLo   symexpr.Expr
	doallHi   symexpr.Expr
	seq       int
}

func (w *refWalker) loopVarSet() map[string]bool {
	s := make(map[string]bool, len(w.loops)+1)
	for _, f := range w.loops {
		s[f.Var] = true
	}
	if w.doallVar != "" {
		s[w.doallVar] = true
	}
	return s
}

func (w *refWalker) stmt(s pfl.Stmt) {
	switch st := s.(type) {
	case *pfl.AssignStmt:
		w.expr(st.RHS, false)
		// Subscripts of the LHS are reads; the element itself is a write.
		if ir, ok := st.LHS.(*pfl.IndexRef); ok {
			for _, sub := range ir.Subs {
				w.expr(sub, false)
			}
		}
		w.expr(st.LHS, true)
	case *pfl.ForStmt:
		vars := w.loopVarSet()
		lo := w.prog.Affine(st.Lo, vars)
		hi := w.prog.Affine(st.Hi, vars)
		w.expr(st.Lo, false)
		w.expr(st.Hi, false)
		if st.Step != nil {
			w.expr(st.Step, false)
		}
		step := int64(1)
		if st.Step != nil {
			if c, ok := w.prog.Affine(st.Step, vars).IsConst(); ok {
				step = c
			} else {
				step = 0 // unknown step
			}
		}
		frame := LoopFrame{Var: st.Var, Lo: lo, Hi: hi, NonEmpty: loopNonEmpty(lo, hi, step), Stmt: st}
		if step < 0 {
			// Decreasing loop: index set is [hi, lo] in section terms.
			frame.Lo, frame.Hi = hi, lo
		}
		w.loops = append(w.loops, frame)
		for _, bs := range st.Body.Stmts {
			w.stmt(bs)
		}
		w.loops = w.loops[:len(w.loops)-1]
	case *pfl.IfStmt:
		w.expr(st.Cond, false)
		w.condDepth++
		for _, bs := range st.Then.Stmts {
			w.stmt(bs)
		}
		if st.Else != nil {
			for _, bs := range st.Else.Stmts {
				w.stmt(bs)
			}
		}
		w.condDepth--
	case *pfl.CriticalStmt:
		w.inCrit = true
		for _, bs := range st.Body.Stmts {
			w.stmt(bs)
		}
		w.inCrit = false
	case *pfl.OrderedStmt:
		w.inOrdered = true
		for _, bs := range st.Body.Stmts {
			w.stmt(bs)
		}
		w.inOrdered = false
	case *pfl.DoallStmt, *pfl.CallStmt:
		// Cannot appear inside a node payload (checker + EFG builder).
		panic("sections: boundary statement inside node payload")
	}
}

func loopNonEmpty(lo, hi symexpr.Expr, step int64) bool {
	if step == 0 {
		return false // unknown step: cannot prove the loop runs
	}
	d := hi.Sub(lo)
	b := d.BoundsOf(nil)
	if !b.Known {
		return false
	}
	if step > 0 {
		return b.Lo >= 0
	}
	return b.Hi <= 0
}

// expr walks an expression; write marks the top-level reference a write.
func (w *refWalker) expr(e pfl.Expr, write bool) {
	switch ex := e.(type) {
	case *pfl.NumLit:
	case *pfl.VarRef:
		if ex.RefID < 0 {
			return // param or loop index: register value
		}
		w.emit(&Ref{
			RefID:    ex.RefID,
			Array:    ex.Name,
			IsScalar: true,
			Write:    write,
			Pos:      ex.Pos,
		})
	case *pfl.IndexRef:
		if !write {
			for _, sub := range ex.Subs {
				w.expr(sub, false)
			}
		}
		vars := w.loopVarSet()
		subs := make([]symexpr.Expr, len(ex.Subs))
		for i, sub := range ex.Subs {
			subs[i] = w.prog.Affine(sub, vars)
		}
		w.emit(&Ref{
			RefID: ex.RefID,
			Array: ex.Name,
			Write: write,
			Subs:  subs,
			Pos:   ex.Pos,
		})
	case *pfl.BinExpr:
		w.expr(ex.X, false)
		w.expr(ex.Y, false)
	case *pfl.UnExpr:
		w.expr(ex.X, false)
	case *pfl.CallExpr:
		for _, a := range ex.Args {
			w.expr(a, false)
		}
	}
}

func (w *refWalker) emit(r *Ref) {
	r.Seq = w.seq
	w.seq++
	r.CondDepth = w.condDepth
	r.InCritical = w.inCrit
	r.InOrdered = w.inOrdered
	r.Loops = append([]LoopFrame(nil), w.loops...)
	r.DoallVar = w.doallVar
	r.DoallLo = w.doallLo
	r.DoallHi = w.doallHi
	w.ns.Refs = append(w.ns.Refs, r)
}

// Report renders the analysis results per procedure: per-epoch MOD/USE
// sections, procedure summaries, and entry freshness — the compiler
// introspection output behind tpicc -sections.
func (a *Analysis) Report() string {
	var b strings.Builder
	names := make([]string, 0, len(a.Procs))
	for n := range a.Procs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		ps := a.Procs[name]
		fmt.Fprintf(&b, "proc %s:\n", name)
		for _, ns := range ps.Nodes {
			if len(ns.Mod) == 0 && len(ns.Use) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  epoch n%d (%s):\n", ns.Node.ID, ns.Node.Kind)
			for _, arr := range ns.Mod.Names() {
				fmt.Fprintf(&b, "    MOD %s%s\n", arr, ns.Mod[arr])
			}
			for _, arr := range ns.Use.Names() {
				fmt.Fprintf(&b, "    USE %s%s\n", arr, ns.Use[arr])
			}
		}
		for _, arr := range ps.GMod.Names() {
			fmt.Fprintf(&b, "  GMOD %s%s\n", arr, ps.GMod[arr])
		}
		for _, arr := range ps.GUse.Names() {
			fmt.Fprintf(&b, "  GUSE %s%s\n", arr, ps.GUse[arr])
		}
		var fresh []string
		for v := range ps.EntryFresh {
			fresh = append(fresh, v)
		}
		sort.Strings(fresh)
		for _, v := range fresh {
			f := ps.EntryFresh[v]
			if f >= Infinity {
				fmt.Fprintf(&b, "  entry-fresh %s = never-written\n", v)
			} else {
				fmt.Fprintf(&b, "  entry-fresh %s = %d epochs\n", v, f)
			}
		}
	}
	return b.String()
}
