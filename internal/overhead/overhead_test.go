package overhead

import "testing"

func TestPaperFigure5Totals(t *testing.T) {
	c := PaperDefault()

	fm := FullMap(c)
	// Paper: 4 MB SRAM / 64.5 GB DRAM at P=1024.
	if got := FormatBits(fm.CacheSRAM); got != "4.0MB" {
		t.Errorf("full-map SRAM = %s, want 4.0MB", got)
	}
	if got := FormatBits(fm.MemDRAM); got != "64.1GB" && got != "64.5GB" {
		// (P+2)*M*P = 1026 * 4Mi * 1024 bits = 64.125 GiB; the paper
		// rounds to 64.5 GB. Accept the computed value.
		t.Errorf("full-map DRAM = %s, want ~64GB", got)
	}

	ll := LimitLess(c)
	// Paper: 4 MB SRAM and a few GB of DRAM at i=10 — an order of
	// magnitude below full-map, far above TPI's zero.
	if got := FormatBits(ll.CacheSRAM); got != "4.0MB" {
		t.Errorf("limitless SRAM = %s, want 4.0MB", got)
	}
	if !(ll.MemDRAM*10 < fm.MemDRAM) || ll.MemDRAM == 0 {
		t.Errorf("limitless DRAM %s must sit between TPI (0) and full-map (%s)",
			FormatBits(ll.MemDRAM), FormatBits(fm.MemDRAM))
	}

	tpi := TPI(c)
	// Paper: 64 MB SRAM only, no DRAM.
	if got := FormatBits(tpi.CacheSRAM); got != "64.0MB" {
		t.Errorf("TPI SRAM = %s, want 64.0MB", got)
	}
	if tpi.MemDRAM != 0 {
		t.Errorf("TPI DRAM = %d, want 0", tpi.MemDRAM)
	}

	// The structural claims that make the paper's argument:
	// 1. TPI total is orders of magnitude below full-map total.
	if tpi.Total()*100 > fm.Total() {
		t.Errorf("TPI total %d should be <1%% of full-map total %d", tpi.Total(), fm.Total())
	}
	// 2. Directory DRAM grows with P (full-map) but TPI does not grow
	//    with memory size at all.
	big := c
	big.M *= 4
	if TPI(big).Total() != tpi.Total() {
		t.Error("TPI overhead must not depend on memory size")
	}
	if FullMap(big).MemDRAM <= fm.MemDRAM {
		t.Error("full-map overhead must grow with memory size")
	}
}

func TestScalingWithProcessors(t *testing.T) {
	c := PaperDefault()
	prev := int64(0)
	for _, p := range []int64{16, 64, 256, 1024} {
		c.P = p
		fm := FullMap(c)
		// Full-map DRAM grows superlinearly in P: (P+2)*M*P.
		if fm.MemDRAM <= prev {
			t.Fatalf("full-map DRAM must grow with P: %d at P=%d", fm.MemDRAM, p)
		}
		// TPI stays linear in P.
		tpi := TPI(c)
		if tpi.CacheSRAM != c.T*c.L*c.C*p {
			t.Fatalf("TPI linear-in-P broken at P=%d", p)
		}
		prev = fm.MemDRAM
	}
}

func TestFormatBits(t *testing.T) {
	cases := []struct {
		bits int64
		want string
	}{
		{8, "1B"},
		{8 << 10, "1.0KB"},
		{8 << 20, "1.0MB"},
		{8 << 30, "1.0GB"},
	}
	for _, c := range cases {
		if got := FormatBits(c.bits); got != c.want {
			t.Errorf("FormatBits(%d) = %s, want %s", c.bits, got, c.want)
		}
	}
}

func TestTPILineVariant(t *testing.T) {
	c := PaperDefault()
	word := TPI(c)
	line := TPILine(c)
	if line.MemDRAM != 0 {
		t.Fatal("per-line variant has no memory state either")
	}
	if word.CacheSRAM != line.CacheSRAM*c.L {
		t.Fatalf("per-word SRAM (%d) must be L=%d times the per-line SRAM (%d)",
			word.CacheSRAM, c.L, line.CacheSRAM)
	}
	if len(All(c)) != 4 {
		t.Fatal("All must include the per-line variant")
	}
}
