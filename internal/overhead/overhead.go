// Package overhead implements the paper's Figure 5 storage-overhead
// model: the extra SRAM (cache-side) and DRAM (memory-side) bits that a
// full-map directory, a LimitLess directory DIR_NB(i), and the TPI scheme
// require, as functions of
//
//	P — number of processors
//	L — words per memory block (cache line)
//	C — node cache size in blocks... the paper states its formulas with
//	    C = cache size and M = memory size in blocks per node:
//
//	Full-map:   cache 2*C*P SRAM bits,  memory (P+2)*M*P DRAM bits
//	LimitLess:  cache 2*C*P SRAM bits,  memory (i+2)*M*P DRAM bits
//	TPI:        cache 8*L*C*P SRAM bits, no memory overhead
//
// (The paper's headline point: at P = 1024, i = 10 the directory schemes
// need gigabytes of DRAM directory state, while TPI needs only the
// per-word 8-bit timetags — 64 MB of SRAM total — because coherence
// state lives with the cache, proportional to cache size, not memory
// size.)
package overhead

import "fmt"

// Config holds the machine parameters of the model.
type Config struct {
	P int64 // processors
	L int64 // words per block
	C int64 // cache blocks per node
	M int64 // memory blocks per node
	I int64 // LimitLess pointer count i
	T int64 // TPI timetag bits per word (paper uses 8)
}

// PaperDefault reproduces the paper's Figure 5 printed totals at
// P = 1024, i = 10: full-map 4 MB SRAM + ~64.5 GB DRAM, LimitLess 4 MB
// SRAM + a few GB DRAM, TPI 64 MB SRAM only. The scraped figure does not
// pin down its cache/memory units unambiguously, so C and M are chosen
// to land on the printed totals; the scaling *shape* (what grows with P,
// M, and cache size) is exactly the paper's formulas.
func PaperDefault() Config {
	return Config{
		P: 1024,
		L: 4,
		C: 16384,  // cache blocks per node
		M: 524288, // memory blocks per node
		I: 10,
		T: 8,
	}
}

// Overhead is one scheme's storage cost in bits.
type Overhead struct {
	Scheme    string
	CacheSRAM int64 // total across the machine
	MemDRAM   int64
}

// Total returns combined bits.
func (o Overhead) Total() int64 { return o.CacheSRAM + o.MemDRAM }

// FullMap returns the Censier–Feautrier full-map directory overhead:
// 2 state bits per cache block on the cache side; P presence bits plus 2
// state bits per memory block on the memory side.
func FullMap(c Config) Overhead {
	return Overhead{
		Scheme:    "full-map",
		CacheSRAM: 2 * c.C * c.P,
		MemDRAM:   (c.P + 2) * c.M * c.P,
	}
}

// LimitLess returns the DIR_NB(i) overhead: i pointers of log2(P) bits
// are approximated by the paper as (i+2) bits per block scaled by the
// pointer width folded into i; we follow the paper's printed formula
// (i+2)*M*P with i counting pointer-register bits.
func LimitLess(c Config) Overhead {
	return Overhead{
		Scheme:    "limitless",
		CacheSRAM: 2 * c.C * c.P,
		MemDRAM:   (c.I + 2) * c.M * c.P,
	}
}

// TPI returns the two-phase invalidation overhead: a T-bit timetag per
// cache word and no memory-side state at all.
func TPI(c Config) Overhead {
	return Overhead{
		Scheme:    "tpi",
		CacheSRAM: c.T * c.L * c.C * c.P,
		MemDRAM:   0,
	}
}

// TPILine returns the per-line-timetag variant's overhead (experiment
// E22): one T-bit tag per block instead of per word, an L-fold SRAM
// saving bought with false-sharing-like conservative misses.
func TPILine(c Config) Overhead {
	return Overhead{
		Scheme:    "tpi-line",
		CacheSRAM: c.T * c.C * c.P,
		MemDRAM:   0,
	}
}

// All returns the compared schemes, the paper's three plus the per-line
// tag variant.
func All(c Config) []Overhead {
	return []Overhead{FullMap(c), LimitLess(c), TPI(c), TPILine(c)}
}

// FormatBits renders a bit count in human units (paper uses MB/GB).
func FormatBits(bits int64) string {
	bytes := float64(bits) / 8
	switch {
	case bytes >= 1<<30:
		return fmt.Sprintf("%.1fGB", bytes/(1<<30))
	case bytes >= 1<<20:
		return fmt.Sprintf("%.1fMB", bytes/(1<<20))
	case bytes >= 1<<10:
		return fmt.Sprintf("%.1fKB", bytes/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", bytes)
	}
}
