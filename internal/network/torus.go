package network

import (
	"fmt"
	"math"
)

// Net abstracts the interconnect model: the Kruskal–Snir multistage
// network the paper simulates (uniform, distance-independent) and a
// 2-D torus like the Cray T3D's physical topology (distance-dependent,
// dimension-ordered routing).
type Net interface {
	// Inject records words entering the network for load estimation.
	Inject(words int64)
	// AdvanceTo updates the load estimate at a new global cycle count.
	AdvanceTo(cycle int64)
	// Load returns the clamped offered-load estimate.
	Load() float64
	// Delay is the one-way traversal time under uniform (average
	// distance) traffic.
	Delay(payloadWords int) int64
	// DelayBetween is the one-way traversal time between two endpoints
	// (equal to Delay for distance-independent topologies).
	DelayBetween(src, dst, payloadWords int) int64
	// RoundTrip is a request out and a payload back, average distance.
	RoundTrip(payloadWords int) int64
	// RoundTripBetween is a request src->dst and a payload dst->src.
	RoundTripBetween(src, dst, payloadWords int) int64
	fmt.Stringer
}

// The multistage Model implements Net (distance-independent).
var _ Net = (*Model)(nil)

// DelayBetween implements Net: a multistage network's path length does
// not depend on the endpoints.
func (m *Model) DelayBetween(src, dst, payloadWords int) int64 {
	return m.Delay(payloadWords)
}

// RoundTripBetween implements Net.
func (m *Model) RoundTripBetween(src, dst, payloadWords int) int64 {
	return m.RoundTrip(payloadWords)
}

// Torus is a 2-D bidirectional torus with dimension-ordered routing and
// the same EWMA load estimator as the multistage model: per-hop latency
// grows with channel load, and total latency with the Manhattan-on-rings
// distance between the endpoints.
type Torus struct {
	Procs      int
	DimX, DimY int

	ewmaLoad  float64
	lastCycle int64
	words     int64
}

// NewTorus builds a near-square 2-D torus for the machine size.
func NewTorus(procs int) *Torus {
	if procs < 1 {
		procs = 1
	}
	dx := int(math.Sqrt(float64(procs)))
	for dx > 1 && procs%dx != 0 {
		dx--
	}
	return &Torus{Procs: procs, DimX: dx, DimY: procs / dx}
}

var _ Net = (*Torus)(nil)

// Inject implements Net.
func (t *Torus) Inject(words int64) { t.words += words }

// AdvanceTo implements Net.
func (t *Torus) AdvanceTo(cycle int64) {
	if cycle <= t.lastCycle {
		return
	}
	dt := cycle - t.lastCycle
	inst := float64(t.words) / (float64(dt) * float64(t.Procs))
	const alpha = 0.25
	t.ewmaLoad = alpha*inst + (1-alpha)*t.ewmaLoad
	t.words = 0
	t.lastCycle = cycle
}

// Load implements Net.
func (t *Torus) Load() float64 {
	l := t.ewmaLoad
	if l < 0 {
		return 0
	}
	if l > 0.95 {
		return 0.95
	}
	return l
}

// ringDist is the shortest distance between a and b on a ring of size n.
func ringDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// Hops returns the dimension-ordered routing distance between two nodes.
func (t *Torus) Hops(src, dst int) int {
	sx, sy := src%t.DimX, src/t.DimX
	dx, dy := dst%t.DimX, dst/t.DimX
	return ringDist(sx, dx, t.DimX) + ringDist(sy, dy, t.DimY)
}

// AvgHops is the expected routing distance under uniform traffic.
func (t *Torus) AvgHops() float64 {
	return (float64(t.DimX) + float64(t.DimY)) / 4
}

func (t *Torus) delayHops(hops float64, payloadWords int) int64 {
	if hops < 1 {
		hops = 1
	}
	load := t.Load()
	perHopWait := load / (2 * (1 - load))
	d := hops*(1+perHopWait) + float64(payloadWords-1)
	return int64(math.Ceil(d))
}

// Delay implements Net (average distance).
func (t *Torus) Delay(payloadWords int) int64 {
	return t.delayHops(t.AvgHops(), payloadWords)
}

// DelayBetween implements Net.
func (t *Torus) DelayBetween(src, dst, payloadWords int) int64 {
	return t.delayHops(float64(t.Hops(src, dst)), payloadWords)
}

// RoundTrip implements Net.
func (t *Torus) RoundTrip(payloadWords int) int64 {
	return t.Delay(1) + t.Delay(payloadWords)
}

// RoundTripBetween implements Net.
func (t *Torus) RoundTripBetween(src, dst, payloadWords int) int64 {
	return t.DelayBetween(src, dst, 1) + t.DelayBetween(dst, src, payloadWords)
}

func (t *Torus) String() string {
	return fmt.Sprintf("torus{%dx%d, load=%.3f}", t.DimX, t.DimY, t.Load())
}
