package network

import (
	"testing"
	"testing/quick"
)

func TestStageCount(t *testing.T) {
	cases := []struct {
		procs, arity, want int
	}{
		{16, 4, 2},
		{16, 2, 4},
		{64, 4, 3},
		{1024, 4, 5},
		{1, 2, 1},
		{3, 2, 2},
	}
	for _, c := range cases {
		m := New(c.procs, c.arity)
		if m.Stages != c.want {
			t.Errorf("New(%d,%d).Stages = %d, want %d", c.procs, c.arity, m.Stages, c.want)
		}
	}
}

func TestDelayGrowsWithLoad(t *testing.T) {
	m := New(16, 4)
	d0 := m.Delay(4)
	// Saturate the load estimator.
	m.Inject(100000)
	m.AdvanceTo(1000)
	if m.Load() <= 0 {
		t.Fatal("load estimator did not rise")
	}
	d1 := m.Delay(4)
	if d1 <= d0 {
		t.Fatalf("loaded delay %d must exceed unloaded %d", d1, d0)
	}
}

func TestLoadClamped(t *testing.T) {
	m := New(16, 4)
	for i := 0; i < 50; i++ {
		m.Inject(1 << 40)
		m.AdvanceTo(int64(i+1) * 10)
	}
	if l := m.Load(); l > 0.95 {
		t.Fatalf("load %f exceeds clamp", l)
	}
	// Delay stays finite at the clamp.
	if d := m.Delay(4); d <= 0 || d > 10000 {
		t.Fatalf("clamped delay = %d", d)
	}
}

func TestDelayGrowsWithPayload(t *testing.T) {
	m := New(16, 4)
	if !(m.Delay(16) > m.Delay(4) && m.Delay(4) > m.Delay(1)) {
		t.Fatal("delay must grow with payload (pipelined words)")
	}
}

func TestRoundTrip(t *testing.T) {
	m := New(16, 4)
	if m.RoundTrip(4) != m.Delay(1)+m.Delay(4) {
		t.Fatal("round trip = request + reply")
	}
}

func TestAdvanceIgnoresPast(t *testing.T) {
	m := New(16, 4)
	m.Inject(100)
	m.AdvanceTo(100)
	l := m.Load()
	m.AdvanceTo(50) // no-op
	if m.Load() != l {
		t.Fatal("AdvanceTo into the past must not change the estimate")
	}
}

func TestQuickDelayMonotoneInLoad(t *testing.T) {
	// For any pair of load states, more load never means less delay.
	f := func(a, b uint16) bool {
		m1, m2 := New(16, 4), New(16, 4)
		m1.Inject(int64(a))
		m1.AdvanceTo(100)
		m2.Inject(int64(b))
		m2.AdvanceTo(100)
		if m1.Load() <= m2.Load() {
			return m1.Delay(4) <= m2.Delay(4)
		}
		return m1.Delay(4) >= m2.Delay(4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringForm(t *testing.T) {
	m := New(16, 4)
	if s := m.String(); s == "" {
		t.Fatal("empty string form")
	}
}

func TestTorusDims(t *testing.T) {
	cases := []struct{ procs, dx, dy int }{
		{16, 4, 4},
		{8, 2, 4},
		{12, 3, 4},
		{7, 1, 7},
		{1, 1, 1},
	}
	for _, c := range cases {
		tr := NewTorus(c.procs)
		if tr.DimX != c.dx || tr.DimY != c.dy {
			t.Errorf("NewTorus(%d) = %dx%d, want %dx%d", c.procs, tr.DimX, tr.DimY, c.dx, c.dy)
		}
		if tr.DimX*tr.DimY != c.procs {
			t.Errorf("NewTorus(%d): dims do not multiply out", c.procs)
		}
	}
}

func TestTorusHops(t *testing.T) {
	tr := NewTorus(16) // 4x4
	if got := tr.Hops(0, 0); got != 0 {
		t.Errorf("self distance = %d", got)
	}
	if got := tr.Hops(0, 3); got != 1 {
		t.Errorf("ring wrap 0->3 = %d, want 1", got)
	}
	if got := tr.Hops(0, 5); got != 2 {
		t.Errorf("diagonal 0->5 = %d, want 2", got)
	}
	// max distance on a 4x4 torus is 2+2
	max := 0
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if h := tr.Hops(a, b); h > max {
				max = h
			}
			if tr.Hops(a, b) != tr.Hops(b, a) {
				t.Fatalf("asymmetric hops %d<->%d", a, b)
			}
		}
	}
	if max != 4 {
		t.Errorf("diameter = %d, want 4", max)
	}
}

func TestTorusDistanceDependence(t *testing.T) {
	tr := NewTorus(16)
	near := tr.DelayBetween(0, 1, 4)
	far := tr.DelayBetween(0, 10, 4)
	if !(far > near) {
		t.Errorf("far delay %d should exceed near %d", far, near)
	}
	// average-distance Delay sits between the extremes
	avg := tr.Delay(4)
	if avg < near || avg > far+1 {
		t.Errorf("avg %d outside [%d, %d]", avg, near, far)
	}
}

func TestTorusLoadRaisesDelay(t *testing.T) {
	tr := NewTorus(16)
	d0 := tr.DelayBetween(0, 10, 4)
	tr.Inject(1 << 30)
	tr.AdvanceTo(100)
	if d1 := tr.DelayBetween(0, 10, 4); d1 <= d0 {
		t.Errorf("loaded delay %d should exceed unloaded %d", d1, d0)
	}
}
