package network

import (
	"fmt"
	"math"
)

// Mesh is a clustered 2-D mesh: ClusterSize processors share each mesh
// node (a TSAR-style cluster with its own home-directory/memory slice),
// nodes form a near-square grid with no wraparound links, and routing is
// dimension-ordered with plain Manhattan distance. The load estimator is
// the same EWMA the multistage and torus models use, so per-hop latency
// grows with offered load. Intra-cluster traffic still pays one hop
// (the local crossbar); the locality win is that a cluster's home slice
// is that single hop away while a remote slice is up to DimX+DimY-2.
type Mesh struct {
	Procs      int
	Cluster    int // processors per node
	DimX, DimY int // node grid

	ewmaLoad  float64
	lastCycle int64
	words     int64
}

// NewMesh builds a near-square clustered mesh for the machine size.
// clusterSize <= 0 means one processor per node (a plain mesh).
func NewMesh(procs, clusterSize int) *Mesh {
	if procs < 1 {
		procs = 1
	}
	if clusterSize < 1 {
		clusterSize = 1
	}
	nodes := (procs + clusterSize - 1) / clusterSize
	dx := int(math.Sqrt(float64(nodes)))
	for dx > 1 && nodes%dx != 0 {
		dx--
	}
	return &Mesh{Procs: procs, Cluster: clusterSize, DimX: dx, DimY: nodes / dx}
}

var _ Net = (*Mesh)(nil)

// Inject implements Net.
func (m *Mesh) Inject(words int64) { m.words += words }

// AdvanceTo implements Net.
func (m *Mesh) AdvanceTo(cycle int64) {
	if cycle <= m.lastCycle {
		return
	}
	dt := cycle - m.lastCycle
	inst := float64(m.words) / (float64(dt) * float64(m.Procs))
	const alpha = 0.25
	m.ewmaLoad = alpha*inst + (1-alpha)*m.ewmaLoad
	m.words = 0
	m.lastCycle = cycle
}

// Load implements Net.
func (m *Mesh) Load() float64 {
	l := m.ewmaLoad
	if l < 0 {
		return 0
	}
	if l > 0.95 {
		return 0.95
	}
	return l
}

// Node returns the mesh node (cluster) housing processor p.
func (m *Mesh) Node(p int) int { return p / m.Cluster }

// Hops returns the dimension-ordered routing distance between the
// clusters of two processors (no wraparound: distance is |Δx| + |Δy|).
func (m *Mesh) Hops(src, dst int) int {
	s, d := m.Node(src), m.Node(dst)
	sx, sy := s%m.DimX, s/m.DimX
	dx, dy := d%m.DimX, d/m.DimX
	return absInt(sx-dx) + absInt(sy-dy)
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// AvgHops is the expected routing distance under uniform traffic: the
// mean distance between two uniform points on a line of n nodes is
// (n²-1)/(3n), summed per dimension (no wraparound halves nothing).
func (m *Mesh) AvgHops() float64 {
	lineAvg := func(n int) float64 {
		if n <= 1 {
			return 0
		}
		nf := float64(n)
		return (nf*nf - 1) / (3 * nf)
	}
	return lineAvg(m.DimX) + lineAvg(m.DimY)
}

func (m *Mesh) delayHops(hops float64, payloadWords int) int64 {
	if hops < 1 {
		hops = 1 // intra-cluster traffic crosses the node crossbar once
	}
	load := m.Load()
	perHopWait := load / (2 * (1 - load))
	d := hops*(1+perHopWait) + float64(payloadWords-1)
	return int64(math.Ceil(d))
}

// Delay implements Net (average distance).
func (m *Mesh) Delay(payloadWords int) int64 {
	return m.delayHops(m.AvgHops(), payloadWords)
}

// DelayBetween implements Net.
func (m *Mesh) DelayBetween(src, dst, payloadWords int) int64 {
	return m.delayHops(float64(m.Hops(src, dst)), payloadWords)
}

// RoundTrip implements Net.
func (m *Mesh) RoundTrip(payloadWords int) int64 {
	return m.Delay(1) + m.Delay(payloadWords)
}

// RoundTripBetween implements Net.
func (m *Mesh) RoundTripBetween(src, dst, payloadWords int) int64 {
	return m.DelayBetween(src, dst, 1) + m.DelayBetween(dst, src, payloadWords)
}

func (m *Mesh) String() string {
	return fmt.Sprintf("mesh{%dx%d nodes, %d/cluster, load=%.3f}", m.DimX, m.DimY, m.Cluster, m.Load())
}
