// Package network implements the interconnection network model: an
// indirect k-ary multistage network whose delays follow the Kruskal–Snir
// analytic queueing model, plus per-class traffic accounting.
//
// The Kruskal–Snir result approximates the expected waiting time per
// stage of an unbuffered/buffered banyan under offered load m (packets
// per cycle per input) with k-input switches as
//
//	w = m * (1 - 1/k) / (2 * (1 - m))
//
// so a request that traverses n = ceil(log_k P) stages with a payload of
// L words sees a network delay of roughly n*(1+w) + (L-1) pipelined
// cycles each way.
package network

import (
	"fmt"
	"math"
)

// Model is the analytic network model.
type Model struct {
	Procs  int
	Arity  int // k
	Stages int // ceil(log_k Procs)

	// load estimation state: an exponentially-weighted words/cycle/port.
	ewmaLoad  float64
	lastCycle int64
	words     int64 // words injected since lastCycle
}

// New builds the model for a machine size.
func New(procs, arity int) *Model {
	if arity < 2 {
		arity = 2
	}
	stages := 0
	for n := 1; n < procs; n *= arity {
		stages++
	}
	if stages == 0 {
		stages = 1
	}
	return &Model{Procs: procs, Arity: arity, Stages: stages}
}

// Inject records words entering the network (for load estimation).
func (m *Model) Inject(words int64) { m.words += words }

// AdvanceTo updates the load estimate at a new global cycle count.
func (m *Model) AdvanceTo(cycle int64) {
	if cycle <= m.lastCycle {
		return
	}
	dt := cycle - m.lastCycle
	inst := float64(m.words) / (float64(dt) * float64(m.Procs))
	const alpha = 0.25
	m.ewmaLoad = alpha*inst + (1-alpha)*m.ewmaLoad
	m.words = 0
	m.lastCycle = cycle
}

// Load returns the current offered-load estimate, clamped to [0, 0.95]
// so the queueing term stays finite.
func (m *Model) Load() float64 {
	l := m.ewmaLoad
	if l < 0 {
		return 0
	}
	if l > 0.95 {
		return 0.95
	}
	return l
}

// Delay returns the one-way network traversal time in cycles for a packet
// of payloadWords under the current load estimate.
func (m *Model) Delay(payloadWords int) int64 {
	load := m.Load()
	perStageWait := load * (1 - 1/float64(m.Arity)) / (2 * (1 - load))
	d := float64(m.Stages)*(1+perStageWait) + float64(payloadWords-1)
	return int64(math.Ceil(d))
}

// RoundTrip returns request + response traversal time: a small request
// packet out, a payload packet back.
func (m *Model) RoundTrip(payloadWords int) int64 {
	return m.Delay(1) + m.Delay(payloadWords)
}

func (m *Model) String() string {
	return fmt.Sprintf("network{P=%d, %d-ary, %d stages, load=%.3f}", m.Procs, m.Arity, m.Stages, m.Load())
}
