package stats

import (
	"reflect"
	"testing"
)

// fillDistinct sets every settable field of a Stats to a distinct
// non-zero value via reflection, so the round-trip test below fails the
// moment a new counter is added to Stats without being carried through
// Snapshot and Restore.
func fillDistinct(s *Stats) {
	v := reflect.ValueOf(s).Elem()
	next := int64(3)
	var walk func(v reflect.Value)
	walk = func(v reflect.Value) {
		switch v.Kind() {
		case reflect.Int64:
			v.SetInt(next)
			next += 7
		case reflect.String:
			v.SetString("TPI")
		case reflect.Array:
			for i := 0; i < v.Len(); i++ {
				walk(v.Index(i))
			}
		case reflect.Slice:
			v.Set(reflect.MakeSlice(v.Type(), 3, 3))
			for i := 0; i < v.Len(); i++ {
				walk(v.Index(i))
			}
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				walk(v.Field(i))
			}
		}
	}
	walk(v)
}

// TestSnapshotRestoreRoundTrip pins the losslessness contract the
// distributed sweep path relies on: Restore(Snapshot(s)) == s for every
// counter field, and re-snapshotting reproduces the snapshot exactly
// (derived rates recompute identically from identical counters).
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	var s Stats
	fillDistinct(&s)

	sn := s.Snapshot()
	back := sn.Restore()
	if !reflect.DeepEqual(&s, back) {
		t.Fatalf("Restore lost counters:\n got %+v\nwant %+v", back, &s)
	}
	sn2 := back.Snapshot()
	if !reflect.DeepEqual(sn, sn2) {
		t.Fatalf("re-snapshot differs:\n got %+v\nwant %+v", sn2, sn)
	}
}

// TestSnapshotRestoreZero: the zero snapshot restores to the zero stats
// (no spurious allocations of ProcBusy).
func TestSnapshotRestoreZero(t *testing.T) {
	var sn Snapshot
	back := sn.Restore()
	if !reflect.DeepEqual(back, &Stats{}) {
		t.Fatalf("zero snapshot restored to %+v", back)
	}
}
