package stats

import (
	"strings"
	"testing"
)

func TestRates(t *testing.T) {
	var s Stats
	s.Scheme = "TPI"
	s.Reads = 100
	s.ReadHits = 90
	s.ReadMisses[MissCold] = 4
	s.ReadMisses[MissTrueSharing] = 3
	s.ReadMisses[MissConservative] = 2
	s.ReadMisses[MissBypass] = 1
	if s.TotalReadMisses() != 10 {
		t.Fatalf("total misses = %d", s.TotalReadMisses())
	}
	if s.MissRate() != 0.10 {
		t.Fatalf("miss rate = %f", s.MissRate())
	}
	if s.UnnecessaryMisses() != 2 {
		t.Fatalf("unnecessary = %d", s.UnnecessaryMisses())
	}
	s.MissLatencySum = 1000
	if s.AvgMissLatency() != 100 {
		t.Fatalf("avg latency = %f", s.AvgMissLatency())
	}
}

func TestZeroDivisionSafety(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.AvgMissLatency() != 0 {
		t.Fatal("empty stats must not divide by zero")
	}
}

func TestTraffic(t *testing.T) {
	var s Stats
	s.ReadTrafficWords = 10
	s.WriteTrafficWords = 20
	s.CoherenceTrafficWords = 5
	if s.TotalTraffic() != 35 {
		t.Fatalf("traffic = %d", s.TotalTraffic())
	}
}

func TestStringIncludesClasses(t *testing.T) {
	var s Stats
	s.Scheme = "TPI"
	s.Reads = 10
	s.ReadMisses[MissConservative] = 2
	s.TimetagResets = 1
	out := s.String()
	for _, want := range []string{"TPI", "conservative=2", "resets=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestMissClassStrings(t *testing.T) {
	want := map[MissClass]string{
		MissCold:         "cold",
		MissReplace:      "replace",
		MissTrueSharing:  "true-sharing",
		MissFalseSharing: "false-sharing",
		MissConservative: "conservative",
		MissBypass:       "bypass",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d = %s, want %s", c, c, w)
		}
	}
	if len(MissClasses) != len(want) {
		t.Error("MissClasses list out of sync")
	}
}

func TestImbalance(t *testing.T) {
	var s Stats
	if s.Imbalance() != 0 {
		t.Fatal("no data -> 0")
	}
	s.ProcBusy = []int64{100, 100, 100, 100}
	if got := s.Imbalance(); got != 1.0 {
		t.Fatalf("balanced = %f", got)
	}
	s.ProcBusy = []int64{400, 0, 0, 0}
	if got := s.Imbalance(); got != 4.0 {
		t.Fatalf("one-proc = %f", got)
	}
}
