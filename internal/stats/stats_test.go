package stats

import (
	"strings"
	"testing"
)

func TestRates(t *testing.T) {
	var s Stats
	s.Scheme = "TPI"
	s.Reads = 100
	s.ReadHits = 90
	s.ReadMisses[MissCold] = 4
	s.ReadMisses[MissTrueSharing] = 3
	s.ReadMisses[MissConservative] = 2
	s.ReadMisses[MissBypass] = 1
	if s.TotalReadMisses() != 10 {
		t.Fatalf("total misses = %d", s.TotalReadMisses())
	}
	if s.MissRate() != 0.10 {
		t.Fatalf("miss rate = %f", s.MissRate())
	}
	if s.UnnecessaryMisses() != 2 {
		t.Fatalf("unnecessary = %d", s.UnnecessaryMisses())
	}
	s.MissLatencySum = 1000
	if s.AvgMissLatency() != 100 {
		t.Fatalf("avg latency = %f", s.AvgMissLatency())
	}
}

func TestZeroDivisionSafety(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.AvgMissLatency() != 0 {
		t.Fatal("empty stats must not divide by zero")
	}
}

func TestTraffic(t *testing.T) {
	var s Stats
	s.ReadTrafficWords = 10
	s.WriteTrafficWords = 20
	s.CoherenceTrafficWords = 5
	if s.TotalTraffic() != 35 {
		t.Fatalf("traffic = %d", s.TotalTraffic())
	}
}

func TestStringIncludesClasses(t *testing.T) {
	var s Stats
	s.Scheme = "TPI"
	s.Reads = 10
	s.ReadMisses[MissConservative] = 2
	s.TimetagResets = 1
	out := s.String()
	for _, want := range []string{"TPI", "conservative=2", "resets=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestWriteMissDecomposition(t *testing.T) {
	var s Stats
	s.Writes = 50
	s.WriteHits = 40
	s.WriteMisses[MissCold] = 6
	s.WriteMisses[MissTrueSharing] = 3
	s.WriteMisses[MissBypass] = 1
	if s.TotalWriteMisses() != 10 {
		t.Fatalf("total write misses = %d", s.TotalWriteMisses())
	}
	if s.WriteMissRate() != 0.20 {
		t.Fatalf("write miss rate = %f", s.WriteMissRate())
	}
	s.WriteMissLatencySum = 500
	if s.AvgWriteMissLatency() != 50 {
		t.Fatalf("avg write miss latency = %f", s.AvgWriteMissLatency())
	}
	out := s.String()
	for _, want := range []string{"wmisses:", "cold=6", "bypass=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
	// Zero-division safety and silence when there are no write misses.
	var z Stats
	if z.WriteMissRate() != 0 || z.AvgWriteMissLatency() != 0 {
		t.Fatal("empty stats must not divide by zero")
	}
	if strings.Contains(z.String(), "wmisses:") {
		t.Error("String() should omit the wmisses line when there are none")
	}
}

func TestClassCountsRoundTrip(t *testing.T) {
	var a [NumMissClasses]int64
	a[MissCold] = 1
	a[MissReplace] = 2
	a[MissTrueSharing] = 3
	a[MissFalseSharing] = 4
	a[MissConservative] = 5
	a[MissBypass] = 6
	c := CountsOf(a)
	if c.Array() != a {
		t.Fatalf("Array() round-trip: %+v -> %+v", a, c.Array())
	}
	if c.Total() != 21 {
		t.Fatalf("Total() = %d", c.Total())
	}
}

func TestSnapshotMirrorsStats(t *testing.T) {
	var s Stats
	s.Scheme = "TPI"
	s.Reads = 100
	s.ReadHits = 90
	s.ReadMisses[MissConservative] = 10
	s.Writes = 40
	s.WriteHits = 30
	s.WriteMisses[MissCold] = 10
	s.MissLatencySum = 700
	s.Cycles = 12345
	s.ProcBusy = []int64{10, 20}
	snap := s.Snapshot()
	if snap.Scheme != "TPI" || snap.Reads != 100 || snap.Writes != 40 {
		t.Fatalf("snapshot basics: %+v", snap)
	}
	if snap.ReadMisses.Array() != s.ReadMisses || snap.WriteMisses.Array() != s.WriteMisses {
		t.Fatal("snapshot miss decomposition differs from stats")
	}
	if snap.MissRate != s.MissRate() || snap.WriteMissRate != s.WriteMissRate() {
		t.Fatal("snapshot rates differ from stats")
	}
	if snap.Cycles != 12345 || len(snap.ProcBusy) != 2 {
		t.Fatalf("snapshot timing: %+v", snap)
	}
}

func TestMissClassStrings(t *testing.T) {
	want := map[MissClass]string{
		MissCold:         "cold",
		MissReplace:      "replace",
		MissTrueSharing:  "true-sharing",
		MissFalseSharing: "false-sharing",
		MissConservative: "conservative",
		MissLeaseExpired: "lease-expired",
		MissBypass:       "bypass",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d = %s, want %s", c, c, w)
		}
	}
	if len(MissClasses) != len(want) {
		t.Error("MissClasses list out of sync")
	}
}

func TestImbalance(t *testing.T) {
	var s Stats
	if s.Imbalance() != 0 {
		t.Fatal("no data -> 0")
	}
	s.ProcBusy = []int64{100, 100, 100, 100}
	if got := s.Imbalance(); got != 1.0 {
		t.Fatalf("balanced = %f", got)
	}
	s.ProcBusy = []int64{400, 0, 0, 0}
	if got := s.Imbalance(); got != 4.0 {
		t.Fatalf("one-proc = %f", got)
	}
}
