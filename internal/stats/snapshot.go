package stats

// ClassCounts is the named (JSON-friendly) form of a per-miss-class
// counter array, in MissClasses order.
type ClassCounts struct {
	Cold         int64 `json:"cold"`
	Replace      int64 `json:"replace"`
	TrueSharing  int64 `json:"trueSharing"`
	FalseSharing int64 `json:"falseSharing"`
	Conservative int64 `json:"conservative"`
	LeaseExpired int64 `json:"leaseExpired"`
	Bypass       int64 `json:"bypass"`
}

// CountsOf converts a per-class counter array to its named form.
func CountsOf(a [NumMissClasses]int64) ClassCounts {
	return ClassCounts{
		Cold:         a[MissCold],
		Replace:      a[MissReplace],
		TrueSharing:  a[MissTrueSharing],
		FalseSharing: a[MissFalseSharing],
		Conservative: a[MissConservative],
		LeaseExpired: a[MissLeaseExpired],
		Bypass:       a[MissBypass],
	}
}

// Array converts the named form back to a per-class counter array.
func (c ClassCounts) Array() [NumMissClasses]int64 {
	var a [NumMissClasses]int64
	a[MissCold] = c.Cold
	a[MissReplace] = c.Replace
	a[MissTrueSharing] = c.TrueSharing
	a[MissFalseSharing] = c.FalseSharing
	a[MissConservative] = c.Conservative
	a[MissLeaseExpired] = c.LeaseExpired
	a[MissBypass] = c.Bypass
	return a
}

// Total sums all classes.
func (c ClassCounts) Total() int64 {
	return c.Cold + c.Replace + c.TrueSharing + c.FalseSharing + c.Conservative + c.LeaseExpired + c.Bypass
}

// Snapshot is the machine-readable form of Stats used by `tpisim -json`
// and the experiments JSON output. Counter fields mirror Stats; derived
// rates are precomputed so consumers need no formulas.
type Snapshot struct {
	Scheme string `json:"scheme"`

	Reads       int64       `json:"reads"`
	Writes      int64       `json:"writes"`
	ReadHits    int64       `json:"readHits"`
	WriteHits   int64       `json:"writeHits"`
	ReadMisses  ClassCounts `json:"readMisses"`
	WriteMisses ClassCounts `json:"writeMisses"`

	MissRate       float64 `json:"missRate"`
	WriteMissRate  float64 `json:"writeMissRate"`
	AvgMissLatency float64 `json:"avgMissLatency"`

	ReadTrafficWords      int64 `json:"readTrafficWords"`
	WriteTrafficWords     int64 `json:"writeTrafficWords"`
	CoherenceTrafficWords int64 `json:"coherenceTrafficWords"`
	CoherenceMsgs         int64 `json:"coherenceMsgs"`
	Invalidations         int64 `json:"invalidations"`

	MissLatencySum      int64 `json:"missLatencySum"`
	WriteMissLatencySum int64 `json:"writeMissLatencySum"`

	TimetagResets      int64 `json:"timetagResets"`
	ResetInvalidations int64 `json:"resetInvalidations"`
	WritesCoalesced    int64 `json:"writesCoalesced"`
	LeaseRenewals      int64 `json:"leaseRenewals"`
	ExclusiveGrants    int64 `json:"exclusiveGrants"`
	PointerEvictions   int64 `json:"pointerEvictions"`
	FlushedWords       int64 `json:"flushedWords"`
	FlushStallCycles   int64 `json:"flushStallCycles"`
	PrefetchedLines    int64 `json:"prefetchedLines"`

	L1Hits                  int64 `json:"l1Hits"`
	L1Misses                int64 `json:"l1Misses"`
	TimeReadL1Invalidations int64 `json:"timeReadL1Invalidations"`

	Cycles        int64 `json:"cycles"`
	BarrierCycles int64 `json:"barrierCycles"`
	Epochs        int64 `json:"epochs"`

	ProcBusy  []int64 `json:"procBusy,omitempty"`
	Imbalance float64 `json:"imbalance"`
}

// Restore converts a snapshot back into the counter struct it was taken
// from. Every Snapshot field is either a Stats counter (copied back
// verbatim) or a rate derived from those counters (recomputed by the
// Stats methods on demand), so restore is lossless:
// sn.Restore().Snapshot() == sn for any snapshot a (*Stats).Snapshot
// call produced. The distributed sweep path depends on this — a remote
// worker's RunResult feeds the same experiment table builders that
// consume local *Stats, and the rendered rows come out byte-identical.
func (sn *Snapshot) Restore() *Stats {
	return &Stats{
		Scheme:                  sn.Scheme,
		Reads:                   sn.Reads,
		Writes:                  sn.Writes,
		ReadHits:                sn.ReadHits,
		WriteHits:               sn.WriteHits,
		ReadMisses:              sn.ReadMisses.Array(),
		WriteMisses:             sn.WriteMisses.Array(),
		ReadTrafficWords:        sn.ReadTrafficWords,
		WriteTrafficWords:       sn.WriteTrafficWords,
		CoherenceTrafficWords:   sn.CoherenceTrafficWords,
		CoherenceMsgs:           sn.CoherenceMsgs,
		Invalidations:           sn.Invalidations,
		MissLatencySum:          sn.MissLatencySum,
		WriteMissLatencySum:     sn.WriteMissLatencySum,
		TimetagResets:           sn.TimetagResets,
		ResetInvalidations:      sn.ResetInvalidations,
		WritesCoalesced:         sn.WritesCoalesced,
		LeaseRenewals:           sn.LeaseRenewals,
		ExclusiveGrants:         sn.ExclusiveGrants,
		PointerEvictions:        sn.PointerEvictions,
		FlushedWords:            sn.FlushedWords,
		FlushStallCycles:        sn.FlushStallCycles,
		PrefetchedLines:         sn.PrefetchedLines,
		L1Hits:                  sn.L1Hits,
		L1Misses:                sn.L1Misses,
		TimeReadL1Invalidations: sn.TimeReadL1Invalidations,
		Cycles:                  sn.Cycles,
		BarrierCycles:           sn.BarrierCycles,
		Epochs:                  sn.Epochs,
		ProcBusy:                sn.ProcBusy,
	}
}

// Snapshot converts the run's counters to the exported JSON schema.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Scheme:                  s.Scheme,
		Reads:                   s.Reads,
		Writes:                  s.Writes,
		ReadHits:                s.ReadHits,
		WriteHits:               s.WriteHits,
		ReadMisses:              CountsOf(s.ReadMisses),
		WriteMisses:             CountsOf(s.WriteMisses),
		MissRate:                s.MissRate(),
		WriteMissRate:           s.WriteMissRate(),
		AvgMissLatency:          s.AvgMissLatency(),
		ReadTrafficWords:        s.ReadTrafficWords,
		WriteTrafficWords:       s.WriteTrafficWords,
		CoherenceTrafficWords:   s.CoherenceTrafficWords,
		CoherenceMsgs:           s.CoherenceMsgs,
		Invalidations:           s.Invalidations,
		MissLatencySum:          s.MissLatencySum,
		WriteMissLatencySum:     s.WriteMissLatencySum,
		TimetagResets:           s.TimetagResets,
		ResetInvalidations:      s.ResetInvalidations,
		WritesCoalesced:         s.WritesCoalesced,
		LeaseRenewals:           s.LeaseRenewals,
		ExclusiveGrants:         s.ExclusiveGrants,
		PointerEvictions:        s.PointerEvictions,
		FlushedWords:            s.FlushedWords,
		FlushStallCycles:        s.FlushStallCycles,
		PrefetchedLines:         s.PrefetchedLines,
		L1Hits:                  s.L1Hits,
		L1Misses:                s.L1Misses,
		TimeReadL1Invalidations: s.TimeReadL1Invalidations,
		Cycles:                  s.Cycles,
		BarrierCycles:           s.BarrierCycles,
		Epochs:                  s.Epochs,
		ProcBusy:                s.ProcBusy,
		Imbalance:               s.Imbalance(),
	}
}
