// Package stats collects the measurements the paper's evaluation reports:
// miss rates with cause classification, network traffic split into read,
// write, and coherence words, miss latencies, and execution time.
package stats

import (
	"fmt"
	"strings"
)

// MissClass classifies why a cache miss happened, following the paper's
// decomposition (true sharing is a necessary coherence miss; false sharing
// and conservative misses are the unnecessary ones; cold and replacement
// are ordinary uniprocessor misses).
type MissClass int

const (
	// MissCold is the first access to a word by this processor.
	MissCold MissClass = iota
	// MissReplace re-fetches a word lost to capacity/conflict eviction.
	MissReplace
	// MissTrueSharing re-fetches a word another processor actually
	// changed (necessary coherence miss).
	MissTrueSharing
	// MissFalseSharing re-fetches a word lost to an invalidation caused
	// by a write to a *different* word of the line (directory protocols).
	MissFalseSharing
	// MissConservative re-fetches a word that was actually still current
	// but failed the Time-Read window test (HSCD schemes) .
	MissConservative
	// MissBypass counts uncached accesses (BASE shared data, SC bypasses,
	// critical-section reads): always remote.
	MissBypass
	// MissLeaseExpired re-fetches (renews) a word whose data was still
	// current but whose Tardis read lease had expired — the timestamp-
	// coherence analog of the HSCD conservative miss and the directory
	// false-sharing miss. Declared after MissBypass so the earlier
	// classes keep their ordinals (binary traces store the class as a
	// byte); MissClasses and ClassCounts put it in report position
	// between conservative and bypass.
	MissLeaseExpired
	numMissClasses
)

// NumMissClasses is the number of miss classes, for sizing per-class
// counter arrays outside this package.
const NumMissClasses = int(numMissClasses)

func (m MissClass) String() string {
	switch m {
	case MissCold:
		return "cold"
	case MissReplace:
		return "replace"
	case MissTrueSharing:
		return "true-sharing"
	case MissFalseSharing:
		return "false-sharing"
	case MissConservative:
		return "conservative"
	case MissBypass:
		return "bypass"
	case MissLeaseExpired:
		return "lease-expired"
	default:
		return "?"
	}
}

// MissClasses lists all classes in report order.
var MissClasses = []MissClass{
	MissCold, MissReplace, MissTrueSharing, MissFalseSharing, MissConservative, MissLeaseExpired, MissBypass,
}

// Stats accumulates one simulation run's measurements.
type Stats struct {
	Scheme string

	Reads      int64 // all read references issued
	Writes     int64 // all write references issued
	ReadHits   int64
	ReadMisses [numMissClasses]int64

	// Write-reference decomposition, mirroring the read side: a write hit
	// finds the word valid in the cache; a write miss is classified by the
	// same tracker history (uncached/critical stores count as MissBypass).
	WriteHits   int64
	WriteMisses [numMissClasses]int64

	// Traffic in words moved through the network.
	ReadTrafficWords      int64
	WriteTrafficWords     int64
	CoherenceTrafficWords int64
	CoherenceMsgs         int64 // invalidations, ownership transfers
	Invalidations         int64 // lines/words invalidated by coherence

	// Latency: sum of read miss latencies in cycles (for avg miss latency).
	MissLatencySum int64

	// WriteMissLatencySum sums write stalls charged at write misses (zero
	// under weak consistency, where stores are buffered).
	WriteMissLatencySum int64

	// TPI-specific.
	TimetagResets      int64 // two-phase reset events
	ResetInvalidations int64 // words invalidated by resets
	WritesCoalesced    int64 // redundant writes removed by the wb-cache

	// Tardis-specific: lease renewals that moved no data (the home found
	// the data unchanged and only extended the lease) and Tardis 2.0
	// exclusive grants on unshared read misses.
	LeaseRenewals   int64
	ExclusiveGrants int64

	// Limited-pointer directory: sharers evicted to free a pointer.
	PointerEvictions int64

	// Write-back-at-boundary policy: words flushed at barriers and the
	// stall cycles those bursts cost.
	FlushedWords     int64
	FlushStallCycles int64

	// PrefetchedLines counts one-block-lookahead prefetches issued.
	PrefetchedLines int64

	// Two-level TPI (on-chip L1 in front of the timetagged L2): L1 filter
	// hits/misses and the L1 word invalidations the compiled Time-Read /
	// bypass sequences issue. Kept here (not on the scheme) so they shard
	// per lane and merge at barriers like every other counter.
	L1Hits                  int64
	L1Misses                int64
	TimeReadL1Invalidations int64

	// Execution time.
	Cycles        int64
	BarrierCycles int64
	Epochs        int64

	// ProcBusy is the per-processor busy-cycle total (compute + stalls),
	// filled by the simulator for load-imbalance analysis.
	ProcBusy []int64
}

// Add accumulates another run fragment's counters into s. It is the
// host-parallel barrier merge: every field is an integer sum, so folding
// per-processor shards in any order reproduces the sequential totals bit
// for bit. Scheme and ProcBusy are identity fields owned by the enclosing
// run, not counters, and are left untouched.
func (s *Stats) Add(o *Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.ReadHits += o.ReadHits
	for i := range s.ReadMisses {
		s.ReadMisses[i] += o.ReadMisses[i]
	}
	s.WriteHits += o.WriteHits
	for i := range s.WriteMisses {
		s.WriteMisses[i] += o.WriteMisses[i]
	}
	s.ReadTrafficWords += o.ReadTrafficWords
	s.WriteTrafficWords += o.WriteTrafficWords
	s.CoherenceTrafficWords += o.CoherenceTrafficWords
	s.CoherenceMsgs += o.CoherenceMsgs
	s.Invalidations += o.Invalidations
	s.MissLatencySum += o.MissLatencySum
	s.WriteMissLatencySum += o.WriteMissLatencySum
	s.TimetagResets += o.TimetagResets
	s.ResetInvalidations += o.ResetInvalidations
	s.WritesCoalesced += o.WritesCoalesced
	s.LeaseRenewals += o.LeaseRenewals
	s.ExclusiveGrants += o.ExclusiveGrants
	s.PointerEvictions += o.PointerEvictions
	s.FlushedWords += o.FlushedWords
	s.FlushStallCycles += o.FlushStallCycles
	s.PrefetchedLines += o.PrefetchedLines
	s.L1Hits += o.L1Hits
	s.L1Misses += o.L1Misses
	s.TimeReadL1Invalidations += o.TimeReadL1Invalidations
	s.Cycles += o.Cycles
	s.BarrierCycles += o.BarrierCycles
	s.Epochs += o.Epochs
}

// Imbalance is max/mean of the per-processor busy cycles (1.0 =
// perfectly balanced; undefined without ProcBusy data).
func (s *Stats) Imbalance() float64 {
	if len(s.ProcBusy) == 0 {
		return 0
	}
	var max, sum int64
	for _, v := range s.ProcBusy {
		if v > max {
			max = v
		}
		sum += v
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.ProcBusy))
	return float64(max) / mean
}

// TotalReadMisses sums all miss classes.
func (s *Stats) TotalReadMisses() int64 {
	var t int64
	for _, v := range s.ReadMisses {
		t += v
	}
	return t
}

// MissRate is read misses over all reads.
func (s *Stats) MissRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.TotalReadMisses()) / float64(s.Reads)
}

// TotalWriteMisses sums all write-miss classes.
func (s *Stats) TotalWriteMisses() int64 {
	var t int64
	for _, v := range s.WriteMisses {
		t += v
	}
	return t
}

// WriteMissRate is write misses over all writes.
func (s *Stats) WriteMissRate() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.TotalWriteMisses()) / float64(s.Writes)
}

// AvgWriteMissLatency is the mean write-miss stall in cycles.
func (s *Stats) AvgWriteMissLatency() float64 {
	n := s.TotalWriteMisses()
	if n == 0 {
		return 0
	}
	return float64(s.WriteMissLatencySum) / float64(n)
}

// AvgMissLatency is the mean read-miss latency in cycles.
func (s *Stats) AvgMissLatency() float64 {
	n := s.TotalReadMisses()
	if n == 0 {
		return 0
	}
	return float64(s.MissLatencySum) / float64(n)
}

// TotalTraffic sums all traffic classes in words.
func (s *Stats) TotalTraffic() int64 {
	return s.ReadTrafficWords + s.WriteTrafficWords + s.CoherenceTrafficWords
}

// UnnecessaryMisses are the coherence misses the paper calls unnecessary:
// false-sharing (directory), conservative (HSCD), and lease-expired
// (Tardis) — each a re-fetch of data that was in fact still current.
func (s *Stats) UnnecessaryMisses() int64 {
	return s.ReadMisses[MissFalseSharing] + s.ReadMisses[MissConservative] + s.ReadMisses[MissLeaseExpired]
}

// String renders a compact single-run report.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s reads=%d writes=%d missrate=%.4f avgmisslat=%.1f cycles=%d\n",
		s.Scheme, s.Reads, s.Writes, s.MissRate(), s.AvgMissLatency(), s.Cycles)
	fmt.Fprintf(&b, "      misses:")
	for _, c := range MissClasses {
		if s.ReadMisses[c] > 0 {
			fmt.Fprintf(&b, " %s=%d", c, s.ReadMisses[c])
		}
	}
	if s.TotalWriteMisses() > 0 {
		fmt.Fprintf(&b, "\n      wmisses:")
		for _, c := range MissClasses {
			if s.WriteMisses[c] > 0 {
				fmt.Fprintf(&b, " %s=%d", c, s.WriteMisses[c])
			}
		}
	}
	fmt.Fprintf(&b, "\n      traffic: read=%d write=%d coherence=%d words (coalesced %d writes)",
		s.ReadTrafficWords, s.WriteTrafficWords, s.CoherenceTrafficWords, s.WritesCoalesced)
	if s.TimetagResets > 0 {
		fmt.Fprintf(&b, "\n      resets=%d resetInvalidations=%d", s.TimetagResets, s.ResetInvalidations)
	}
	if s.LeaseRenewals > 0 || s.ExclusiveGrants > 0 {
		fmt.Fprintf(&b, "\n      leaseRenewals=%d exclusiveGrants=%d", s.LeaseRenewals, s.ExclusiveGrants)
	}
	return b.String()
}
