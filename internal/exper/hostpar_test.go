package exper

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
)

// schemeVariant names one memory-system configuration point: a scheme
// plus the L1 size that selects the two-level TPI variant (cfg.L1Words >
// 0 puts an on-chip filter in front of the timetagged cache).
type schemeVariant struct {
	name    string
	scheme  machine.Scheme
	l1Words int64
}

// allVariants covers every sharded, stream-capable memory system: all
// six scheme families plus two-level TPI. Only the sequential oracle is
// absent — it opts out of both fast paths by design.
var allVariants = []schemeVariant{
	{"BASE", machine.SchemeBase, 0},
	{"SC", machine.SchemeSC, 0},
	{"TPI", machine.SchemeTPI, 0},
	{"TPI2L", machine.SchemeTPI, 64},
	{"HW", machine.SchemeHW, 0},
	{"VC", machine.SchemeVC, 0},
	{"TARDIS", machine.SchemeTardis, 0},
	{"TARDIS2", machine.SchemeTardis2, 0},
}

// TestHostParallelEquivalence is the tentpole's oracle: for every kernel
// x scheme variant x simulated-processor count x scheduling, a
// host-parallel run must produce a byte-identical stats.Snapshot JSON
// and an identical final memory image to the sequential run.
func TestHostParallelEquivalence(t *testing.T) {
	type point struct {
		kernel  string
		variant schemeVariant
		procs   int
		cyclic  bool
	}
	var points []point
	for _, name := range bench.Names {
		for _, v := range allVariants {
			for _, procs := range []int{16, 64} {
				for _, cyclic := range []bool{false, true} {
					points = append(points, point{name, v, procs, cyclic})
				}
			}
		}
	}
	s := smallSuite()
	_, err := forEach(points, func(pt point) ([][]string, error) {
		label := fmt.Sprintf("%s/%s/p%d/cyclic=%v", pt.kernel, pt.variant.name, pt.procs, pt.cyclic)
		cfg := s.cfg(pt.variant.scheme)
		cfg.L1Words = pt.variant.l1Words
		cfg.Procs = pt.procs
		cfg.CyclicSched = pt.cyclic
		c, err := s.compile(pt.kernel, core.CompileOptions{
			Interproc:      cfg.Interproc,
			FirstReadReuse: cfg.FirstReadReuse,
			AlignWords:     int64(cfg.LineWords),
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		seqSt, seqMem, err := core.RunWithMemory(c, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: sequential: %w", label, err)
		}
		cfg.HostParallel = 4
		parSt, parMem, err := core.RunWithMemory(c, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: hostpar: %w", label, err)
		}
		seqJSON, err := json.Marshal(seqSt.Snapshot())
		if err != nil {
			return nil, err
		}
		parJSON, err := json.Marshal(parSt.Snapshot())
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(seqJSON, parJSON) {
			return nil, fmt.Errorf("%s: snapshots diverge:\nseq %s\npar %s", label, seqJSON, parJSON)
		}
		if !reflect.DeepEqual(seqMem, parMem) {
			return nil, fmt.Errorf("%s: final memory images diverge", label)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestHostParallelObservedEquivalence: with the instrumentation layer
// on, the attributed report must be identical between sequential and
// host-parallel runs for every scheme variant, and a binary trace
// written at -hostpar 4 must replay to the identical live report (the
// shard merge preserves the trace contract).
func TestHostParallelObservedEquivalence(t *testing.T) {
	s := smallSuite()
	for _, kernel := range []string{"ocean", "trfd"} {
		for _, v := range allVariants {
			for _, cyclic := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/%s/cyclic=%v", kernel, v.name, cyclic), func(t *testing.T) {
					cfg := s.cfg(v.scheme)
					cfg.L1Words = v.l1Words
					cfg.Procs = 16
					cfg.CyclicSched = cyclic
					c, err := s.compile(kernel, core.CompileOptions{
						Interproc:      cfg.Interproc,
						FirstReadReuse: cfg.FirstReadReuse,
						AlignWords:     int64(cfg.LineWords),
					})
					if err != nil {
						t.Fatal(err)
					}
					seqSt, seqRep, err := core.RunObserved(c, cfg, obs.LevelCounters, nil)
					if err != nil {
						t.Fatal(err)
					}
					cfg.HostParallel = 4
					var buf bytes.Buffer
					parSt, parRep, err := core.RunObserved(c, cfg, obs.LevelTrace, &buf)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(seqSt.Snapshot(), parSt.Snapshot()) {
						t.Errorf("stats diverge:\nseq %+v\npar %+v", seqSt.Snapshot(), parSt.Snapshot())
					}
					if !reflect.DeepEqual(seqRep, parRep) {
						t.Errorf("attributed reports diverge")
					}
					replayed, err := obs.Replay(bytes.NewReader(buf.Bytes()))
					if err != nil {
						t.Fatalf("Replay: %v", err)
					}
					if !reflect.DeepEqual(replayed, parRep) {
						t.Errorf("replayed report differs from live host-parallel report")
					}
				})
			}
		}
	}
}

// TestHostParallelTraceDeterminism pins the text-trace merge contract:
// under static scheduling the host-parallel byte stream equals the
// sequential one (static iteration order is already processor-major);
// under cyclic scheduling the stream is reordered processor-major but
// must be identical from run to run at any worker count.
func TestHostParallelTraceDeterminism(t *testing.T) {
	s := smallSuite()
	cfg := s.cfg(machine.SchemeTPI)
	cfg.Procs = 16
	c, err := s.compile("ocean", core.CompileOptions{
		Interproc:      cfg.Interproc,
		FirstReadReuse: cfg.FirstReadReuse,
		AlignWords:     int64(cfg.LineWords),
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := func(cfg machine.Config) []byte {
		t.Helper()
		var buf bytes.Buffer
		if _, err := core.RunTraced(c, cfg, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	seq := trace(cfg)
	cfg.HostParallel = 4
	if par := trace(cfg); !bytes.Equal(seq, par) {
		t.Errorf("static scheduling: host-parallel trace differs from sequential (%d vs %d bytes)", len(seq), len(par))
	}

	cfg.CyclicSched = true
	first := trace(cfg)
	cfg.HostParallel = 8
	if again := trace(cfg); !bytes.Equal(first, again) {
		t.Errorf("cyclic scheduling: trace not deterministic across worker counts (%d vs %d bytes)", len(first), len(again))
	}
}
