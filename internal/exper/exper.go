// Package exper is the experiment harness: one entry per table or figure
// of the paper's evaluation plus the documented extensions (DESIGN.md's
// experiment index, E1–E26). Each experiment returns a Table that
// cmd/experiments prints (text or markdown) and that the root-level
// benchmarks assert shape properties on.
package exper

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stats"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Suite bundles the workload size and machine baseline for a run of the
// experiments. Simulation runs are independent, so experiments fan their
// parameter points out across the CPUs (each point gets a fresh memory
// system; only the compile cache is shared, under a mutex).
type Suite struct {
	Params  bench.Params
	Procs   int
	HostPar int // host goroutines per DOALL epoch; 0/1 = sequential
	// NoFastPath disables the affine reference-stream fast path
	// (machine.Config.FastPath) for every run of the suite. Results are
	// bit-identical either way; this is the experiments-level kill
	// switch and the off-arm of the CI equivalence check.
	NoFastPath bool
	// Exec, when set, replaces local in-process simulation for every
	// named-kernel (kernel, config) point the tables run — the
	// distributed sweep (internal/sweep) plugs its fleet executor in
	// here to shard a table's points across tpiserved workers. The
	// executor must return the stats a local core.Run of the same point
	// would (the svc result-fidelity contract plus stats.Snapshot's
	// lossless Restore guarantee exactly that), which keeps the rendered
	// table bytes identical either way. The few points that compile
	// custom inline sources (E21's auto-parallelized variants, E23's
	// ping-pong probe) always run locally.
	Exec func(kernel string, cfg machine.Config) (*stats.Stats, error)
	mu   sync.Mutex
	kernels map[string]*core.Compiled // cache, keyed by name+options
}

// NewSuite builds a suite; procs <= 0 selects the paper default (16).
func NewSuite(p bench.Params, procs int) *Suite {
	if procs <= 0 {
		procs = 16
	}
	return &Suite{Params: p, Procs: procs, kernels: map[string]*core.Compiled{}}
}

// compile returns the (cached) compiled form of a kernel.
func (s *Suite) compile(name string, opts core.CompileOptions) (*core.Compiled, error) {
	key := fmt.Sprintf("%s/%+v", name, opts)
	s.mu.Lock()
	if c, ok := s.kernels[key]; ok {
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()
	k, err := bench.Get(name, s.Params)
	if err != nil {
		return nil, err
	}
	c, err := core.Compile(k.Source, opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.kernels[key] = c
	s.mu.Unlock()
	return c, nil
}

// forEach runs fn over the cross product of items in parallel, preserving
// input order in the returned row groups. fn returns the rows for one
// item.
func forEach[T any](items []T, fn func(T) ([][]string, error)) ([][]string, error) {
	type result struct {
		rows [][]string
		err  error
	}
	results := make([]result, len(items))
	var wg sync.WaitGroup
	// Acquire before spawning: a large cross product keeps at most
	// GOMAXPROCS goroutines alive instead of one per item up front.
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, it := range items {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, it T) {
			defer wg.Done()
			defer func() { <-sem }()
			rows, err := fn(it)
			results[i] = result{rows, err}
		}(i, it)
	}
	wg.Wait()
	var out [][]string
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.rows...)
	}
	return out, nil
}

// cfg builds the default machine config for a scheme at this suite size.
func (s *Suite) cfg(scheme machine.Scheme) machine.Config {
	c := machine.Default(scheme)
	c.Procs = s.Procs
	c.HostParallel = s.HostPar
	c.FastPath = !s.NoFastPath
	return c
}

// run compiles (default options) and simulates one kernel under cfg —
// or hands the point to the pluggable executor when one is set.
func (s *Suite) run(name string, cfg machine.Config) (*stats.Stats, error) {
	if s.Exec != nil {
		return s.Exec(name, cfg)
	}
	opts := core.CompileOptions{
		Interproc:      cfg.Interproc,
		FirstReadReuse: cfg.FirstReadReuse,
		AlignWords:     int64(cfg.LineWords),
	}
	c, err := s.compile(name, opts)
	if err != nil {
		return nil, err
	}
	return core.Run(c, cfg)
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func d(v int64) string     { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// Markdown renders the table as GitHub-flavored markdown (for committing
// regenerated results into EXPERIMENTS-style documents).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Notes)
	}
	return b.String()
}
