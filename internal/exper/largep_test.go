package exper

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/machine"
	"repro/internal/tardis"
)

// TestWidePresenceBitIdentical proves the two presence-set
// representations are observationally identical at P <= 64: every kernel
// x scheme variant is run twice, once on the inline-word path and once
// with directory.ForceWidePresence steering the HW directory onto the
// multi-word path, and the stats snapshots and final memory images must
// match byte for byte. Only SchemeHW owns a directory, but running all
// six variants keeps the sweep a regression net for the hook itself.
func TestWidePresenceBitIdentical(t *testing.T) {
	type point struct {
		idx     int
		kernel  string
		variant schemeVariant
	}
	var points []point
	for _, name := range bench.Names {
		for _, v := range allVariants {
			points = append(points, point{len(points), name, v})
		}
	}
	s := smallSuite()
	runAll := func() ([][]byte, [][]float64, error) {
		jsons := make([][]byte, len(points))
		mems := make([][]float64, len(points))
		_, err := forEach(points, func(pt point) ([][]string, error) {
			cfg := s.cfg(pt.variant.scheme)
			cfg.L1Words = pt.variant.l1Words
			cfg.Procs = 16
			c, err := s.compile(pt.kernel, core.CompileOptions{
				Interproc:      cfg.Interproc,
				FirstReadReuse: cfg.FirstReadReuse,
				AlignWords:     int64(cfg.LineWords),
			})
			if err != nil {
				return nil, err
			}
			st, mem, err := core.RunWithMemory(c, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", pt.kernel, pt.variant.name, err)
			}
			j, err := json.Marshal(st.Snapshot())
			if err != nil {
				return nil, err
			}
			jsons[pt.idx], mems[pt.idx] = j, mem
			return nil, nil
		})
		return jsons, mems, err
	}

	narrowJSON, narrowMem, err := runAll()
	if err != nil {
		t.Fatal(err)
	}
	prev := directory.ForceWidePresence(true)
	wideJSON, wideMem, err := runAll()
	directory.ForceWidePresence(prev)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		label := fmt.Sprintf("%s/%s", pt.kernel, pt.variant.name)
		if !bytes.Equal(narrowJSON[pt.idx], wideJSON[pt.idx]) {
			t.Errorf("%s: snapshots diverge:\nnarrow %s\nwide   %s",
				label, narrowJSON[pt.idx], wideJSON[pt.idx])
		}
		if !reflect.DeepEqual(narrowMem[pt.idx], wideMem[pt.idx]) {
			t.Errorf("%s: final memory images diverge", label)
		}
	}
}

// TestWideTimestampsBitIdentical is the Tardis analog of the presence
// test above: the packed and wide home timestamp tables must be
// observationally identical. P = 96 puts the run past the P > 64 cliff
// where the HW presence sets also go multi-word, so the sweep exercises
// both two-tier representations at once on the Tardis variants.
func TestWideTimestampsBitIdentical(t *testing.T) {
	variants := []schemeVariant{
		{"TARDIS", machine.SchemeTardis, 0},
		{"TARDIS2", machine.SchemeTardis2, 0},
	}
	type point struct {
		idx     int
		kernel  string
		variant schemeVariant
	}
	var points []point
	for _, name := range bench.Names {
		for _, v := range variants {
			points = append(points, point{len(points), name, v})
		}
	}
	s := smallSuite()
	runAll := func() ([][]byte, [][]float64, error) {
		jsons := make([][]byte, len(points))
		mems := make([][]float64, len(points))
		_, err := forEach(points, func(pt point) ([][]string, error) {
			cfg := s.cfg(pt.variant.scheme)
			cfg.Procs = 96
			c, err := s.compile(pt.kernel, core.CompileOptions{
				Interproc:      cfg.Interproc,
				FirstReadReuse: cfg.FirstReadReuse,
				AlignWords:     int64(cfg.LineWords),
			})
			if err != nil {
				return nil, err
			}
			st, mem, err := core.RunWithMemory(c, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", pt.kernel, pt.variant.name, err)
			}
			j, err := json.Marshal(st.Snapshot())
			if err != nil {
				return nil, err
			}
			jsons[pt.idx], mems[pt.idx] = j, mem
			return nil, nil
		})
		return jsons, mems, err
	}

	narrowJSON, narrowMem, err := runAll()
	if err != nil {
		t.Fatal(err)
	}
	tardis.ForceWideTimestamps = true
	wideJSON, wideMem, err := runAll()
	tardis.ForceWideTimestamps = false
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		label := fmt.Sprintf("%s/%s", pt.kernel, pt.variant.name)
		if !bytes.Equal(narrowJSON[pt.idx], wideJSON[pt.idx]) {
			t.Errorf("%s: snapshots diverge:\nnarrow %s\nwide   %s",
				label, narrowJSON[pt.idx], wideJSON[pt.idx])
		}
		if !reflect.DeepEqual(narrowMem[pt.idx], wideMem[pt.idx]) {
			t.Errorf("%s: final memory images diverge", label)
		}
	}
}

// TestFourThousandProcOcean is the scale acceptance criterion as a test:
// a 4096-processor ocean run on the clustered mesh completes under the
// hardware directory, two-level TPI, and Tardis 2.0, and its stats pass
// the structural run-result validator.
func TestFourThousandProcOcean(t *testing.T) {
	if testing.Short() {
		t.Skip("P=4096 runs skipped in -short mode")
	}
	s := NewSuite(bench.Params{N: 48, Steps: 2}, 4096)
	for _, v := range []schemeVariant{
		{"HW", machine.SchemeHW, 0},
		{"TPI2L", machine.SchemeTPI, 64},
		{"TARDIS2", machine.SchemeTardis2, 0},
	} {
		cfg := s.cfg(v.scheme)
		cfg.L1Words = v.l1Words
		cfg.Topology = "mesh"
		cfg.ClusterSize = 16
		cfg.HostParallel = 8
		st, err := s.run("ocean", cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		b, err := json.Marshal(core.NewRunResult("ocean", cfg, st, nil))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateRunResult(b); err != nil {
			t.Errorf("%s: result fails validation: %v", v.name, err)
		}
	}
}

// TestLargePMeshEquivalence extends the host-parallel and fast-path
// oracles to a configuration point past both scale cliffs at once: 256
// simulated processors (multi-word presence sets) on the clustered mesh
// topology (per-cluster home directories). For every kernel under HW and
// two-level TPI, a -hostpar 4 run and a fast-path-off run must both be
// bit-identical to the sequential fast-path-on baseline.
func TestLargePMeshEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("P=256 sweep skipped in -short mode")
	}
	variants := []schemeVariant{
		{"HW", machine.SchemeHW, 0},
		{"TPI2L", machine.SchemeTPI, 64},
	}
	type point struct {
		kernel  string
		variant schemeVariant
	}
	var points []point
	for _, name := range bench.Names {
		for _, v := range variants {
			points = append(points, point{name, v})
		}
	}
	s := smallSuite()
	_, err := forEach(points, func(pt point) ([][]string, error) {
		label := fmt.Sprintf("%s/%s/p256/mesh", pt.kernel, pt.variant.name)
		cfg := s.cfg(pt.variant.scheme)
		cfg.L1Words = pt.variant.l1Words
		cfg.Procs = 256
		cfg.Topology = "mesh"
		cfg.ClusterSize = 8
		c, err := s.compile(pt.kernel, core.CompileOptions{
			Interproc:      cfg.Interproc,
			FirstReadReuse: cfg.FirstReadReuse,
			AlignWords:     int64(cfg.LineWords),
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		seqSt, seqMem, err := core.RunWithMemory(c, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: sequential: %w", label, err)
		}
		seqJSON, err := json.Marshal(seqSt.Snapshot())
		if err != nil {
			return nil, err
		}
		check := func(mode string, mutate func(*machine.Config)) error {
			mcfg := cfg
			mutate(&mcfg)
			st, mem, err := core.RunWithMemory(c, mcfg)
			if err != nil {
				return fmt.Errorf("%s: %s: %w", label, mode, err)
			}
			j, err := json.Marshal(st.Snapshot())
			if err != nil {
				return err
			}
			if !bytes.Equal(seqJSON, j) {
				return fmt.Errorf("%s: %s snapshot diverges:\nseq %s\ngot %s", label, mode, seqJSON, j)
			}
			if !reflect.DeepEqual(seqMem, mem) {
				return fmt.Errorf("%s: %s final memory diverges", label, mode)
			}
			return nil
		}
		if err := check("hostpar", func(c *machine.Config) { c.HostParallel = 4 }); err != nil {
			return nil, err
		}
		if err := check("nofastpath", func(c *machine.Config) { c.FastPath = false }); err != nil {
			return nil, err
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
