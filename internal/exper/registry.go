package exper

// Entry binds an experiment id to its table builder.
type Entry struct {
	ID  string
	Run func() (*Table, error)
}

// Entries returns the full experiment registry in E-number order — the
// single list both cmd/experiments (sequential, in-process) and
// cmd/tpisweep (sharded across a tpiserved fleet via Suite.Exec) drive,
// so the two paths can never disagree about what an experiment id means.
func (s *Suite) Entries() []Entry {
	return []Entry{
		{"E1", s.E1StorageOverhead},
		{"E2", s.E2Parameters},
		{"E3", s.E3MissRates},
		{"E4", s.E4MissClassification},
		{"E5", s.E5NetworkTraffic},
		{"E6", s.E6MissLatency},
		{"E7", s.E7ExecutionTime},
		{"E8", s.E8TimetagSensitivity},
		{"E9", s.E9CacheSizeSweep},
		{"E10", s.E10LineSizeSweep},
		{"E11", s.E11ResetAblation},
		{"E12", s.E12Scalability},
		{"E13", s.E13CompilerAblations},
		{"E14", s.E14LimitedPointers},
		{"E15", s.E15ConsistencyModels},
		{"E16", s.E16SchedulingPolicies},
		{"E17", s.E17HSCDFamily},
		{"E18", s.E18WritePolicies},
		{"E19", s.E19OffTheShelf},
		{"E20", s.E20Topologies},
		{"E21", s.E21Toolchain},
		{"E22", s.E22TagGranularity},
		{"E23", s.E23Prefetch},
		{"E24", s.E24ScalarPadding},
		{"E25", s.E25TimeDecomposition},
		{"E26", s.E26LargePMesh},
		{"E27", s.E27LeaseSensitivity},
	}
}
