package exper

import (
	"encoding/json"
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
)

// ResultsSchemaVersion identifies the experiments JSON schema; bump it on
// any incompatible change so downstream consumers (BENCH_*.json
// trajectory tooling, the CI smoke check) can reject what they do not
// understand.
const ResultsSchemaVersion = 1

// Results is the machine-readable output of an experiments run: the
// workload point plus every produced table, verbatim.
type Results struct {
	SchemaVersion int          `json:"schemaVersion"`
	Params        bench.Params `json:"params"`
	Procs         int          `json:"procs"`
	Experiments   []*Table     `json:"experiments"`
}

// jsonTable fixes the Table JSON field names independently of the Go
// struct (Table predates the JSON output and has no tags).
type jsonTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   string     `json:"notes,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonTable{ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Table) UnmarshalJSON(b []byte) error {
	var jt jsonTable
	if err := json.Unmarshal(b, &jt); err != nil {
		return err
	}
	*t = Table{ID: jt.ID, Title: jt.Title, Columns: jt.Columns, Rows: jt.Rows, Notes: jt.Notes}
	return nil
}

// ValidateRunResult parses data as a single-run core.RunResult document
// (what `tpisim -json` prints and the svc server returns) and checks its
// structural invariants: a known scheme, positive processor count, a
// stats block whose scheme agrees, and self-consistent counters (hits
// plus classified misses account for every reference; cycles and epochs
// are positive for any run that touched memory). It returns the parsed
// document on success.
func ValidateRunResult(data []byte) (*core.RunResult, error) {
	var r core.RunResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("exper: run result JSON: %w", err)
	}
	if _, err := machine.ParseScheme(r.Scheme); err != nil {
		return nil, fmt.Errorf("exper: run result: %w", err)
	}
	if r.Procs <= 0 {
		return nil, fmt.Errorf("exper: run result has procs %d", r.Procs)
	}
	s := r.Stats
	if s.Scheme != r.Scheme {
		return nil, fmt.Errorf("exper: stats scheme %q disagrees with run scheme %q", s.Scheme, r.Scheme)
	}
	if s.Reads < 0 || s.Writes < 0 {
		return nil, fmt.Errorf("exper: negative reference counts (reads %d writes %d)", s.Reads, s.Writes)
	}
	if got, want := s.ReadHits+s.ReadMisses.Total(), s.Reads; got != want {
		return nil, fmt.Errorf("exper: read hits+misses = %d, want %d reads", got, want)
	}
	if got, want := s.WriteHits+s.WriteMisses.Total(), s.Writes; got != want {
		return nil, fmt.Errorf("exper: write hits+misses = %d, want %d writes", got, want)
	}
	if s.Reads+s.Writes > 0 && (s.Cycles <= 0 || s.Epochs <= 0) {
		return nil, fmt.Errorf("exper: run touched memory but cycles=%d epochs=%d", s.Cycles, s.Epochs)
	}
	return &r, nil
}

// ValidateResults parses data as a Results document and checks its
// structural invariants: known schema version, at least one experiment,
// every table carrying an ID, columns, and rectangular rows. It returns
// the parsed document on success.
func ValidateResults(data []byte) (*Results, error) {
	var r Results
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("exper: results JSON: %w", err)
	}
	if r.SchemaVersion != ResultsSchemaVersion {
		return nil, fmt.Errorf("exper: results schema version %d (want %d)", r.SchemaVersion, ResultsSchemaVersion)
	}
	if len(r.Experiments) == 0 {
		return nil, fmt.Errorf("exper: results contain no experiments")
	}
	for i, t := range r.Experiments {
		if t == nil {
			return nil, fmt.Errorf("exper: experiment %d is null", i)
		}
		if t.ID == "" {
			return nil, fmt.Errorf("exper: experiment %d has no id", i)
		}
		if len(t.Columns) == 0 {
			return nil, fmt.Errorf("exper: %s has no columns", t.ID)
		}
		if len(t.Rows) == 0 {
			return nil, fmt.Errorf("exper: %s has no rows", t.ID)
		}
		for j, row := range t.Rows {
			if len(row) != len(t.Columns) {
				return nil, fmt.Errorf("exper: %s row %d has %d cells (want %d)", t.ID, j, len(row), len(t.Columns))
			}
		}
	}
	return &r, nil
}
