package exper

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/overhead"
	"repro/internal/stats"
)

// E1StorageOverhead reproduces Figure 5: directory vs TPI storage cost.
func (s *Suite) E1StorageOverhead() (*Table, error) {
	t := &Table{
		ID:      "E1/Fig5",
		Title:   "storage overhead (full-map vs LimitLess vs TPI)",
		Columns: []string{"P", "scheme", "cache SRAM", "memory DRAM", "total", "simulated"},
		Notes:   "storage columns are analytic (overhead model at the paper's machine); the simulated column says which rows the simulator has actually run — E26 holds the measured large-P results",
	}
	for _, procs := range []int64{64, 256, 1024, 4096} {
		simulated := "yes, all schemes (equivalence suites run P=16-64)"
		if procs > 64 {
			simulated = "yes, HW + TPI-2L on mesh (E26)"
		}
		c := overhead.PaperDefault()
		c.P = procs
		for _, o := range overhead.All(c) {
			t.Rows = append(t.Rows, []string{
				d(procs), o.Scheme,
				overhead.FormatBits(o.CacheSRAM),
				overhead.FormatBits(o.MemDRAM),
				overhead.FormatBits(o.Total()),
				simulated,
			})
		}
	}
	return t, nil
}

// E2Parameters reproduces Figure 8: the simulation parameters in effect.
func (s *Suite) E2Parameters() (*Table, error) {
	c := s.cfg(machine.SchemeTPI)
	t := &Table{
		ID:      "E2/Fig8",
		Title:   "default simulation parameters",
		Columns: []string{"parameter", "value"},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("processors", d(int64(c.Procs)))
	add("cache size", fmt.Sprintf("%d words (%d KB at 4B words), direct-mapped", c.CacheWords, c.CacheWords*4/1024))
	add("line size", fmt.Sprintf("%d words", c.LineWords))
	add("cache hit", fmt.Sprintf("%d cycle", c.HitCycles))
	add("base miss latency", fmt.Sprintf("%d cycles", c.MissCycles))
	add("timetag size", fmt.Sprintf("%d bits", c.TimetagBits))
	add("two-phase reset", fmt.Sprintf("%d cycles", c.ResetCycles))
	add("network", fmt.Sprintf("%d-ary multistage, Kruskal–Snir delays", c.SwitchArity))
	add("write policy", "write-through + wb-cache (TPI/SC), write-back (HW)")
	add("consistency", "weak")
	add("workload", fmt.Sprintf("N=%d, steps=%d", s.Params.N, s.Params.Steps))
	return t, nil
}

// E3MissRates reproduces Figure 11: miss rates per scheme per benchmark.
// The columns come from the shared scheme registry, so every scheme
// family — the paper's four, VC, and the Tardis timestamp pair — lands
// in the table the moment it is registered.
func (s *Suite) E3MissRates() (*Table, error) {
	cols := []string{"benchmark"}
	for _, scheme := range machine.AllSchemes {
		cols = append(cols, scheme.String())
	}
	t := &Table{
		ID:      "E3/Fig11",
		Title:   "read miss rates by scheme",
		Columns: cols,
		Notes:   "TPI comparable to HW, both far below SC and BASE; Tardis sits between — leases expire at epoch grain, so it renews where TPI's static windows hit",
	}
	rows, err := forEach(kernelNames(), func(name string) ([][]string, error) {
		row := []string{name}
		for _, scheme := range machine.AllSchemes {
			st, err := s.run(name, s.cfg(scheme))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, scheme, err)
			}
			row = append(row, pct(st.MissRate()))
		}
		return [][]string{row}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E4MissClassification reproduces the miss-decomposition figure: the
// unnecessary misses are false sharing under HW and conservative
// coherence misses under TPI, of comparable magnitude.
func (s *Suite) E4MissClassification() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "miss classification (per 1000 reads)",
		Columns: []string{"benchmark", "scheme", "cold", "replace", "true-shr", "false-shr", "conserv", "lease-exp", "bypass"},
		Notes:   "HW pays false-sharing misses where TPI pays conservative misses; Tardis pays lease-expired renewals — same unnecessary-miss role, different mechanism (timestamp expiry vs compiler window)",
	}
	for _, name := range kernelNames() {
		for _, scheme := range []machine.Scheme{
			machine.SchemeTPI, machine.SchemeHW,
			machine.SchemeTardis, machine.SchemeTardis2,
		} {
			st, err := s.run(name, s.cfg(scheme))
			if err != nil {
				return nil, err
			}
			per := func(c stats.MissClass) string {
				return f3(1000 * float64(st.ReadMisses[c]) / float64(st.Reads))
			}
			t.Rows = append(t.Rows, []string{
				name, scheme.String(),
				per(stats.MissCold), per(stats.MissReplace), per(stats.MissTrueSharing),
				per(stats.MissFalseSharing), per(stats.MissConservative),
				per(stats.MissLeaseExpired), per(stats.MissBypass),
			})
		}
	}
	return t, nil
}

// E5NetworkTraffic reproduces the traffic figure: read/write/coherence
// words per scheme, plus the TRFD write-buffer-as-cache ablation.
func (s *Suite) E5NetworkTraffic() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "network traffic in words per read reference",
		Columns: []string{"benchmark", "scheme", "read", "write", "coherence", "coalesced"},
		Notes:   "trfd rows show the redundant-write storm and its elimination by the wb-cache",
	}
	for _, name := range kernelNames() {
		for _, scheme := range machine.Schemes {
			st, err := s.run(name, s.cfg(scheme))
			if err != nil {
				return nil, err
			}
			norm := float64(st.Reads)
			t.Rows = append(t.Rows, []string{
				name, scheme.String(),
				f3(float64(st.ReadTrafficWords) / norm),
				f3(float64(st.WriteTrafficWords) / norm),
				f3(float64(st.CoherenceTrafficWords) / norm),
				d(st.WritesCoalesced),
			})
		}
	}
	// TRFD without the write-buffer cache.
	cfg := s.cfg(machine.SchemeTPI)
	cfg.WriteBufferCache = false
	st, err := s.run("trfd", cfg)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"trfd", "TPI-nowbc",
		f3(float64(st.ReadTrafficWords) / float64(st.Reads)),
		f3(float64(st.WriteTrafficWords) / float64(st.Reads)),
		f3(float64(st.CoherenceTrafficWords) / float64(st.Reads)),
		d(st.WritesCoalesced),
	})
	return t, nil
}

// E6MissLatency reproduces the average miss latency table at 16-byte
// (4-word) and 64-byte (16-word) lines.
func (s *Suite) E6MissLatency() (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "average read miss latency (cycles)",
		Columns: []string{"benchmark", "TPI 4w", "TPI 16w", "HW 4w", "HW 16w"},
		Notes:   "TPI stays flat; HW rises where misses hit remote-dirty lines (qcd2/trfd-like)",
	}
	rows, err := forEach(kernelNames(), func(name string) ([][]string, error) {
		row := []string{name}
		for _, scheme := range []machine.Scheme{machine.SchemeTPI, machine.SchemeHW} {
			for _, lw := range []int{4, 16} {
				cfg := s.cfg(scheme)
				cfg.LineWords = lw
				st, err := s.run(name, cfg)
				if err != nil {
					return nil, err
				}
				row = append(row, f1(st.AvgMissLatency()))
			}
		}
		return [][]string{row}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E7ExecutionTime reproduces the execution-time comparison, normalized
// to the HW directory scheme.
func (s *Suite) E7ExecutionTime() (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "execution time normalized to HW",
		Columns: []string{"benchmark", "BASE", "SC", "TPI", "HW"},
		Notes:   "the paper's headline: TPI within a small factor of HW, both far ahead of BASE/SC",
	}
	for _, name := range kernelNames() {
		hw, err := s.run(name, s.cfg(machine.SchemeHW))
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, scheme := range machine.Schemes {
			st, err := s.run(name, s.cfg(scheme))
			if err != nil {
				return nil, err
			}
			row = append(row, f3(float64(st.Cycles)/float64(hw.Cycles)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// E8TimetagSensitivity reproduces the claim that 4–8 bit timetags
// suffice: miss rate and reset-invalidation count vs timetag width.
func (s *Suite) E8TimetagSensitivity() (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "TPI sensitivity to timetag width",
		Columns: []string{"benchmark", "bits", "missrate", "resets", "reset-invalidations"},
		Notes:   "small tags force frequent two-phase resets; 4-8 bits recover full performance",
	}
	for _, name := range kernelNames() {
		for _, bits := range []int{2, 4, 8, 16} {
			cfg := s.cfg(machine.SchemeTPI)
			cfg.TimetagBits = bits
			st, err := s.run(name, cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				name, d(int64(bits)), pct(st.MissRate()), d(st.TimetagResets), d(st.ResetInvalidations),
			})
		}
	}
	return t, nil
}

// E9CacheSizeSweep reports miss rate vs cache size for TPI and HW.
func (s *Suite) E9CacheSizeSweep() (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "miss rate vs cache size (TPI and HW)",
		Columns: []string{"benchmark", "cache", "TPI", "HW"},
	}
	rows, err := forEach(kernelNames(), func(name string) ([][]string, error) {
		var out [][]string
		for _, words := range []int64{1024, 4096, 16384, 65536} {
			row := []string{name, fmt.Sprintf("%dKB", words*4/1024)}
			for _, scheme := range []machine.Scheme{machine.SchemeTPI, machine.SchemeHW} {
				cfg := s.cfg(scheme)
				cfg.CacheWords = words
				st, err := s.run(name, cfg)
				if err != nil {
					return nil, err
				}
				row = append(row, pct(st.MissRate()))
			}
			out = append(out, row)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E10LineSizeSweep reports miss rate and unnecessary misses vs line size.
func (s *Suite) E10LineSizeSweep() (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "miss rate and unnecessary misses vs line size",
		Columns: []string{"benchmark", "line", "TPI miss", "TPI unnec", "HW miss", "HW unnec"},
		Notes:   "larger lines raise HW false sharing; TPI's word timetags are immune to it",
	}
	rows, err := forEach(kernelNames(), func(name string) ([][]string, error) {
		var out [][]string
		for _, lw := range []int{1, 2, 4, 8, 16} {
			row := []string{name, fmt.Sprintf("%dw", lw)}
			for _, scheme := range []machine.Scheme{machine.SchemeTPI, machine.SchemeHW} {
				cfg := s.cfg(scheme)
				cfg.LineWords = lw
				st, err := s.run(name, cfg)
				if err != nil {
					return nil, err
				}
				row = append(row, pct(st.MissRate()),
					f3(1000*float64(st.UnnecessaryMisses())/float64(st.Reads)))
			}
			out = append(out, row)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E11ResetAblation compares the two-phase reset with whole-cache flash
// invalidation at small timetag widths.
func (s *Suite) E11ResetAblation() (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "two-phase reset vs flash invalidation (4-bit timetags)",
		Columns: []string{"benchmark", "policy", "missrate", "reset-invalidations", "cycles"},
		Notes:   "the two-phase reset drops only out-of-phase words",
	}
	for _, name := range kernelNames() {
		for _, flash := range []bool{false, true} {
			cfg := s.cfg(machine.SchemeTPI)
			cfg.TimetagBits = 4
			cfg.FlashReset = flash
			st, err := s.run(name, cfg)
			if err != nil {
				return nil, err
			}
			policy := "two-phase"
			if flash {
				policy = "flash"
			}
			t.Rows = append(t.Rows, []string{
				name, policy, pct(st.MissRate()), d(st.ResetInvalidations), d(st.Cycles),
			})
		}
	}
	return t, nil
}

// E12Scalability reports execution time and miss latency vs machine size.
func (s *Suite) E12Scalability() (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "scalability: cycles and miss latency vs processors (ocean)",
		Columns: []string{"P", "TPI cycles", "TPI lat", "HW cycles", "HW lat"},
	}
	for _, procs := range []int{4, 8, 16, 32} {
		row := []string{d(int64(procs))}
		for _, scheme := range []machine.Scheme{machine.SchemeTPI, machine.SchemeHW} {
			cfg := s.cfg(scheme)
			cfg.Procs = procs
			st, err := s.run("ocean", cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, d(st.Cycles), f1(st.AvgMissLatency()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// E13CompilerAblations measures the interprocedural and first-read-reuse
// analyses' contribution (DESIGN.md ablations 4 and 5), under both TPI
// and SC. A reproduction finding: TPI's timetag promotion on hits makes
// the first-read (reuse) analysis nearly performance-neutral — the
// hardware rediscovers the reuse dynamically — while SC, which acts on
// the static marks alone, depends on it heavily.
func (s *Suite) E13CompilerAblations() (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "compiler analysis ablations (TPI and SC)",
		Columns: []string{"benchmark", "analysis", "TPI miss", "TPI conserv/1k", "SC miss"},
		Notes:   "ablations barely hurt TPI (hardware re-validates) but cripple SC",
	}
	variants := []struct {
		label            string
		interproc, reuse bool
	}{
		{"full", true, true},
		{"no-interproc", false, true},
		{"no-reuse", true, false},
		{"neither", false, false},
	}
	for _, name := range kernelNames() {
		for _, v := range variants {
			cfgT := s.cfg(machine.SchemeTPI)
			cfgT.Interproc = v.interproc
			cfgT.FirstReadReuse = v.reuse
			stT, err := s.run(name, cfgT)
			if err != nil {
				return nil, err
			}
			cfgS := s.cfg(machine.SchemeSC)
			cfgS.Interproc = v.interproc
			cfgS.FirstReadReuse = v.reuse
			stS, err := s.run(name, cfgS)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				name, v.label, pct(stT.MissRate()),
				f3(1000 * float64(stT.ReadMisses[stats.MissConservative]) / float64(stT.Reads)),
				pct(stS.MissRate()),
			})
		}
	}
	return t, nil
}

// kernelNames returns the reporting order.
func kernelNames() []string {
	return []string{"spec77", "ocean", "flo52", "qcd2", "trfd", "arc2d"}
}

// All runs every experiment in order.
func (s *Suite) All() ([]*Table, error) {
	funcs := []func() (*Table, error){
		s.E1StorageOverhead,
		s.E2Parameters,
		s.E3MissRates,
		s.E4MissClassification,
		s.E5NetworkTraffic,
		s.E6MissLatency,
		s.E7ExecutionTime,
		s.E8TimetagSensitivity,
		s.E9CacheSizeSweep,
		s.E10LineSizeSweep,
		s.E11ResetAblation,
		s.E12Scalability,
		s.E13CompilerAblations,
		s.E14LimitedPointers,
		s.E15ConsistencyModels,
		s.E16SchedulingPolicies,
		s.E17HSCDFamily,
		s.E18WritePolicies,
		s.E19OffTheShelf,
		s.E20Topologies,
		s.E21Toolchain,
		s.E22TagGranularity,
		s.E23Prefetch,
		s.E24ScalarPadding,
		s.E25TimeDecomposition,
		s.E26LargePMesh,
		s.E27LeaseSensitivity,
	}
	var out []*Table
	for _, f := range funcs {
		t, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
