package exper

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
)

// TestLoweredSimMatchesOracle guards the slot-addressed closure IR: every
// kernel runs through the lowered simulator on all four schemes and the
// final memory image must match the sequential oracle bit-for-bit. The
// cross product fans out through forEach, so one Compiled's lazy lowering
// is also hit concurrently (the race detector covers the sync.Once path).
func TestLoweredSimMatchesOracle(t *testing.T) {
	s := smallSuite()
	schemes := []machine.Scheme{
		machine.SchemeBase, machine.SchemeSC, machine.SchemeTPI, machine.SchemeHW,
	}
	type point struct {
		kernel string
		scheme machine.Scheme
	}
	var points []point
	for _, name := range bench.Names {
		for _, sch := range schemes {
			points = append(points, point{name, sch})
		}
	}
	_, err := forEach(points, func(pt point) ([][]string, error) {
		cfg := s.cfg(pt.scheme)
		c, err := s.compile(pt.kernel, core.CompileOptions{
			Interproc:      cfg.Interproc,
			FirstReadReuse: cfg.FirstReadReuse,
			AlignWords:     int64(cfg.LineWords),
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pt.kernel, err)
		}
		if _, err := core.VerifyAgainstOracle(c, cfg); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", pt.kernel, pt.scheme, err)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
