package exper

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
)

// TestFastPathEquivalence is the tentpole's oracle: for every kernel x
// scheme variant (all five schemes plus two-level TPI — every system
// implements stream cursors now) x simulated-processor count x
// scheduling x host parallelism, the affine stream fast path must
// produce a byte-identical stats.Snapshot JSON and an identical final
// memory image to the scalar path.
func TestFastPathEquivalence(t *testing.T) {
	type point struct {
		kernel  string
		variant schemeVariant
		procs   int
		cyclic  bool
		hostpar int
	}
	var points []point
	for _, name := range bench.Names {
		for _, v := range allVariants {
			for _, procs := range []int{16, 64} {
				for _, cyclic := range []bool{false, true} {
					for _, hp := range []int{1, 4} {
						points = append(points, point{name, v, procs, cyclic, hp})
					}
				}
			}
		}
	}
	s := smallSuite()
	_, err := forEach(points, func(pt point) ([][]string, error) {
		label := fmt.Sprintf("%s/%s/p%d/cyclic=%v/hostpar=%d",
			pt.kernel, pt.variant.name, pt.procs, pt.cyclic, pt.hostpar)
		cfg := s.cfg(pt.variant.scheme)
		cfg.L1Words = pt.variant.l1Words
		cfg.Procs = pt.procs
		cfg.CyclicSched = pt.cyclic
		cfg.HostParallel = pt.hostpar
		c, err := s.compile(pt.kernel, core.CompileOptions{
			Interproc:      cfg.Interproc,
			FirstReadReuse: cfg.FirstReadReuse,
			AlignWords:     int64(cfg.LineWords),
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		cfg.FastPath = true
		onSt, onMem, err := core.RunWithMemory(c, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: fastpath: %w", label, err)
		}
		cfg.FastPath = false
		offSt, offMem, err := core.RunWithMemory(c, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: scalar: %w", label, err)
		}
		onJSON, err := json.Marshal(onSt.Snapshot())
		if err != nil {
			return nil, err
		}
		offJSON, err := json.Marshal(offSt.Snapshot())
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(onJSON, offJSON) {
			return nil, fmt.Errorf("%s: snapshots diverge:\nfast   %s\nscalar %s", label, onJSON, offJSON)
		}
		if !reflect.DeepEqual(onMem, offMem) {
			return nil, fmt.Errorf("%s: final memory images diverge", label)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFastPathObservedEquivalence: the stream driver emits
// per-reference observer events in exact scalar order, so at every
// observation level — including the full binary trace, which no longer
// disengages the fast path — the attributed report and the event stream
// must be byte-identical to the scalar path's.
func TestFastPathObservedEquivalence(t *testing.T) {
	s := smallSuite()
	for _, kernel := range []string{"ocean", "trfd"} {
		for _, v := range allVariants {
			t.Run(fmt.Sprintf("%s/%s", kernel, v.name), func(t *testing.T) {
				cfg := s.cfg(v.scheme)
				cfg.L1Words = v.l1Words
				cfg.Procs = 16
				c, err := s.compile(kernel, core.CompileOptions{
					Interproc:      cfg.Interproc,
					FirstReadReuse: cfg.FirstReadReuse,
					AlignWords:     int64(cfg.LineWords),
				})
				if err != nil {
					t.Fatal(err)
				}
				cfg.FastPath = false
				offSt, offRep, err := core.RunObserved(c, cfg, obs.LevelCounters, nil)
				if err != nil {
					t.Fatal(err)
				}
				cfg.FastPath = true
				onSt, onRep, err := core.RunObserved(c, cfg, obs.LevelCounters, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(offSt.Snapshot(), onSt.Snapshot()) {
					t.Errorf("stats diverge:\nscalar %+v\nfast   %+v", offSt.Snapshot(), onSt.Snapshot())
				}
				if !reflect.DeepEqual(offRep, onRep) {
					t.Errorf("attributed reports diverge")
				}

				var offBuf, onBuf bytes.Buffer
				cfg.FastPath = false
				if _, _, err := core.RunObserved(c, cfg, obs.LevelTrace, &offBuf); err != nil {
					t.Fatal(err)
				}
				cfg.FastPath = true
				if _, _, err := core.RunObserved(c, cfg, obs.LevelTrace, &onBuf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(offBuf.Bytes(), onBuf.Bytes()) {
					t.Errorf("trace-level binary streams diverge (%d vs %d bytes): the engaged fast path must emit the scalar event stream byte-for-byte",
						offBuf.Len(), onBuf.Len())
				}
			})
		}
	}
}

// TestFastPathExperimentsJSON: a whole experiment table rendered by the
// harness must be byte-identical with the fast path on and off (the
// experiments-level form of the equivalence contract, mirrored in CI
// over the full suite).
func TestFastPathExperimentsJSON(t *testing.T) {
	render := func(noFast bool) []byte {
		t.Helper()
		s := smallSuite()
		s.NoFastPath = noFast
		tab, err := s.E3MissRates()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(tab)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	on := render(false)
	off := render(true)
	if !bytes.Equal(on, off) {
		t.Errorf("E3 JSON diverges:\nfast   %s\nscalar %s", on, off)
	}
}
