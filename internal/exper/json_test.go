package exper

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
)

// TestValidateRunResultAcceptsRealRuns feeds ValidateRunResult the JSON
// of an actual run under every scheme — the same bytes `tpisim -json`
// and the svc server emit — so the validator's invariants are anchored
// to what the simulator really produces.
func TestValidateRunResultAcceptsRealRuns(t *testing.T) {
	k, err := bench.Get("ocean", bench.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range machine.AllSchemes {
		cfg := machine.Default(sc)
		c, err := core.CompileForConfig(k.Source, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, rep, err := core.RunObserved(c, cfg, obs.LevelCounters, nil)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		b, err := json.Marshal(core.NewRunResult(k.Name, cfg, st, rep))
		if err != nil {
			t.Fatal(err)
		}
		r, err := ValidateRunResult(b)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if r.Scheme != sc.String() || r.Program != "ocean" {
			t.Fatalf("%s: parsed %s/%s", sc, r.Scheme, r.Program)
		}
	}
}

func TestValidateRunResultRejectsBroken(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"not json", "nope", "JSON"},
		{"unknown scheme", `{"scheme":"XYZ","procs":16,"stats":{"scheme":"XYZ"}}`, "scheme"},
		{"bad procs", `{"scheme":"TPI","procs":0,"stats":{"scheme":"TPI"}}`, "procs"},
		{"scheme mismatch", `{"scheme":"TPI","procs":16,"stats":{"scheme":"HW"}}`, "disagrees"},
		{"unbalanced reads", `{"scheme":"TPI","procs":16,"stats":{"scheme":"TPI","reads":10,"readHits":3,"cycles":1,"epochs":1}}`, "read hits"},
		{"zero cycles", `{"scheme":"TPI","procs":16,"stats":{"scheme":"TPI","reads":1,"readHits":1,"epochs":1}}`, "cycles"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateRunResult([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
