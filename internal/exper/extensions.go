package exper

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/parallelize"
	"repro/internal/pfl"
	"repro/internal/stats"
)

// E14LimitedPointers compares the full-map directory with LimitLess-style
// limited-pointer variants DIR_NB(i): Figure 5 showed their storage
// advantage; this experiment shows the performance price of pointer
// eviction on widely shared data.
func (s *Suite) E14LimitedPointers() (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "full-map vs limited-pointer directory DIR_NB(i)",
		Columns: []string{"benchmark", "directory", "missrate", "ptr-evictions", "invalidations"},
		Notes:   "few pointers force sharer eviction on widely-read data (e.g. read-only tables)",
	}
	for _, name := range kernelNames() {
		for _, ptrs := range []int{0, 4, 1} {
			cfg := s.cfg(machine.SchemeHW)
			cfg.DirPointers = ptrs
			st, err := s.run(name, cfg)
			if err != nil {
				return nil, err
			}
			label := "full-map"
			if ptrs > 0 {
				label = fmt.Sprintf("DIR_NB(%d)", ptrs)
			}
			t.Rows = append(t.Rows, []string{
				name, label, pct(st.MissRate()), d(st.PointerEvictions), d(st.Invalidations),
			})
		}
	}
	return t, nil
}

// E15ConsistencyModels compares weak consistency (the paper's model)
// with sequential consistency, where writes stall until globally
// performed — the paper's footnote that coherence costs "would be much
// more significant in a sequential consistency model".
func (s *Suite) E15ConsistencyModels() (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "weak vs sequential consistency (execution cycles)",
		Columns: []string{"benchmark", "scheme", "WC cycles", "SC cycles", "slowdown"},
		Notes:   "write-through schemes are devastated without write buffering; HW's owned writes stay local",
	}
	for _, name := range []string{"ocean", "trfd", "arc2d"} {
		for _, scheme := range []machine.Scheme{machine.SchemeTPI, machine.SchemeHW} {
			wcCfg := s.cfg(scheme)
			wc, err := s.run(name, wcCfg)
			if err != nil {
				return nil, err
			}
			scCfg := s.cfg(scheme)
			scCfg.SeqConsistency = true
			sc, err := s.run(name, scCfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				name, scheme.String(), d(wc.Cycles), d(sc.Cycles),
				f3(float64(sc.Cycles) / float64(wc.Cycles)),
			})
		}
	}
	return t, nil
}

// E16SchedulingPolicies compares block, cyclic, and dynamic
// (self-scheduling) DOALL iteration placement under TPI: the compiler
// cannot know the schedule (the paper's core motivation for runtime
// timetags), and placement changes locality, not correctness.
func (s *Suite) E16SchedulingPolicies() (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "DOALL scheduling policy under TPI",
		Columns: []string{"benchmark", "policy", "missrate", "cycles", "imbalance"},
		Notes:   "dynamic placement balances load but destroys processor/data affinity",
	}
	for _, name := range []string{"ocean", "spec77", "qcd2"} {
		for _, policy := range []string{"block", "cyclic", "dynamic"} {
			cfg := s.cfg(machine.SchemeTPI)
			cfg.CyclicSched = policy == "cyclic"
			cfg.DynamicSched = policy == "dynamic"
			st, err := s.run(name, cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{name, policy, pct(st.MissRate()), d(st.Cycles), f3(st.Imbalance())})
		}
	}
	return t, nil
}

// E17HSCDFamily compares the three hardware-supported compiler-directed
// generations side by side: SC (cache bypass, no runtime state), VC
// (per-variable version numbers, Cheong–Veidenbaum) and TPI (per-word
// timetags with epoch windows) — the axis along which the paper's
// contribution improves on its predecessors, with HW as the yardstick.
func (s *Suite) E17HSCDFamily() (*Table, error) {
	t := &Table{
		ID:      "E17",
		Title:   "HSCD scheme family: SC vs VC vs TPI (HW yardstick)",
		Columns: []string{"benchmark", "SC miss", "VC miss", "TPI miss", "HW miss", "VC conserv/1k", "TPI conserv/1k"},
		Notes:   "finer coherence state monotonically recovers locality: bypass < per-variable < per-word",
	}
	for _, name := range kernelNames() {
		row := []string{name}
		var vcConserv, tpiConserv string
		for _, scheme := range []machine.Scheme{machine.SchemeSC, machine.SchemeVC, machine.SchemeTPI, machine.SchemeHW} {
			st, err := s.run(name, s.cfg(scheme))
			if err != nil {
				return nil, err
			}
			row = append(row, pct(st.MissRate()))
			c := f3(1000 * float64(st.ReadMisses[stats.MissConservative]) / float64(st.Reads))
			if scheme == machine.SchemeVC {
				vcConserv = c
			}
			if scheme == machine.SchemeTPI {
				tpiConserv = c
			}
		}
		row = append(row, vcConserv, tpiConserv)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// E18WritePolicies compares TPI's write policies: write-through with the
// wb-cache (the paper's choice) against write-back with a forced flush
// at every epoch boundary (the alternative the paper rejects as adding
// invalidation latency and bursty traffic).
func (s *Suite) E18WritePolicies() (*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "TPI write policy: write-through+wbc vs write-back-at-boundary",
		Columns: []string{"benchmark", "policy", "write-traffic/read", "flush-stall", "cycles"},
		Notes:   "write-back coalesces best but pays bursty barrier flushes",
	}
	for _, name := range []string{"trfd", "ocean", "spec77"} {
		for _, wb := range []bool{false, true} {
			cfg := s.cfg(machine.SchemeTPI)
			cfg.TPIWriteBack = wb
			st, err := s.run(name, cfg)
			if err != nil {
				return nil, err
			}
			policy := "write-through+wbc"
			if wb {
				policy = "write-back-flush"
			}
			t.Rows = append(t.Rows, []string{
				name, policy,
				f3(float64(st.WriteTrafficWords) / float64(st.Reads)),
				d(st.FlushStallCycles), d(st.Cycles),
			})
		}
	}
	return t, nil
}

// E19OffTheShelf reproduces the paper's Section 3 design discussion: the
// integrated implementation (timetags beside the on-chip cache) against
// the off-the-shelf two-level implementation, where Time-Reads compile
// to an L1 block-invalidate + load and always pay the off-chip L2 access.
func (s *Suite) E19OffTheShelf() (*Table, error) {
	t := &Table{
		ID:      "E19",
		Title:   "TPI integrated vs off-the-shelf two-level implementation",
		Columns: []string{"benchmark", "design", "missrate", "cycles", "slowdown"},
		Notes:   "Time-Reads cannot be validated on-chip: every one costs at least the L2 access",
	}
	for _, name := range []string{"ocean", "spec77", "trfd"} {
		base := s.cfg(machine.SchemeTPI)
		st1, err := s.run(name, base)
		if err != nil {
			return nil, err
		}
		two := base
		two.L1Words = 2048 // 8 KB on-chip
		st2, err := s.run(name, two)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{name, "integrated", pct(st1.MissRate()), d(st1.Cycles), "1.000"})
		t.Rows = append(t.Rows, []string{name, "two-level", pct(st2.MissRate()), d(st2.Cycles),
			f3(float64(st2.Cycles) / float64(st1.Cycles))})
	}
	return t, nil
}

// E20Topologies compares the paper's simulated network (Kruskal–Snir
// indirect multistage, uniform latency) with the Cray T3D's physical
// topology (a torus with line-interleaved home memories and
// distance-dependent latency).
func (s *Suite) E20Topologies() (*Table, error) {
	t := &Table{
		ID:      "E20",
		Title:   "interconnect: multistage (paper model) vs 2-D torus (T3D physical)",
		Columns: []string{"benchmark", "scheme", "multistage lat", "torus lat", "multistage cycles", "torus cycles"},
		Notes:   "the torus rewards placement locality; the indirect net is distance-blind",
	}
	for _, name := range []string{"ocean", "qcd2"} {
		for _, scheme := range []machine.Scheme{machine.SchemeTPI, machine.SchemeHW} {
			ms := s.cfg(scheme)
			st1, err := s.run(name, ms)
			if err != nil {
				return nil, err
			}
			to := s.cfg(scheme)
			to.Topology = "torus"
			st2, err := s.run(name, to)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				name, scheme.String(),
				f1(st1.AvgMissLatency()), f1(st2.AvgMissLatency()),
				d(st1.Cycles), d(st2.Cycles),
			})
		}
	}
	return t, nil
}

// E21Toolchain runs the whole pipeline front to back the way the paper's
// authors did: sequential source -> Polaris-style auto-parallelization
// (with reduction recognition) -> reference marking -> simulation, and
// compares the result with the hand-parallelized kernels.
func (s *Suite) E21Toolchain() (*Table, error) {
	t := &Table{
		ID:      "E21",
		Title:   "full toolchain: auto-parallelized sequential code vs hand-parallelized",
		Columns: []string{"kernel", "loops DOALLed", "reductions", "auto TPI miss", "hand TPI miss"},
		Notes:   "the auto-parallelizer recovers the DOALL structure the hand kernels encode",
	}
	hand := map[string]string{"ocean-seq": "ocean", "trfd-seq": "trfd"}
	for _, k := range bench.SequentialKernels(s.Params) {
		ast, err := pfl.Parse(k.Source)
		if err != nil {
			return nil, err
		}
		if _, err := pfl.Check(ast); err != nil {
			return nil, err
		}
		rep, err := parallelize.Run(ast)
		if err != nil {
			return nil, err
		}
		reds := 0
		for _, d := range rep.Decisions {
			reds += len(d.Reductions)
		}
		cfg := s.cfg(machine.SchemeTPI)
		c, err := core.Compile(pfl.Format(ast), core.CompileOptions{
			Interproc: true, FirstReadReuse: true, AlignWords: int64(cfg.LineWords),
		})
		if err != nil {
			return nil, err
		}
		stAuto, err := core.Run(c, cfg)
		if err != nil {
			return nil, err
		}
		stHand, err := s.run(hand[k.Name], cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			k.Name, d(int64(rep.NumParallelized())), d(int64(reds)),
			pct(stAuto.MissRate()), pct(stHand.MissRate()),
		})
	}
	return t, nil
}

// E22TagGranularity prices the timetag granularity choice implicit in
// Figure 5: per-word tags (8*L*C*P SRAM bits, the paper's design) against
// one tag per line (8*C*P bits). Line-granular tags cannot be promoted on
// writes or validated hits — a line's tag may only claim what all its
// words support — so intra-epoch and producer-consumer locality degrade.
func (s *Suite) E22TagGranularity() (*Table, error) {
	t := &Table{
		ID:      "E22",
		Title:   "TPI timetag granularity: per-word (paper) vs per-line",
		Columns: []string{"benchmark", "tags", "missrate", "conserv/1k", "SRAM bits/line"},
		Notes:   "the line tag saves L* the SRAM but pays false-sharing-like conservative misses",
	}
	for _, name := range kernelNames() {
		for _, lineTags := range []bool{false, true} {
			cfg := s.cfg(machine.SchemeTPI)
			cfg.LineTimetags = lineTags
			st, err := s.run(name, cfg)
			if err != nil {
				return nil, err
			}
			label, bits := "per-word", fmt.Sprintf("%d", 8*cfg.LineWords)
			if lineTags {
				label, bits = "per-line", "8"
			}
			t.Rows = append(t.Rows, []string{
				name, label, pct(st.MissRate()),
				f3(1000 * float64(st.ReadMisses[stats.MissConservative]) / float64(st.Reads)),
				bits,
			})
		}
	}
	return t, nil
}

// E23Prefetch measures one-block-lookahead sequential prefetching under
// TPI: the miss-rate/traffic trade Tullsen & Eggers warn about.
func (s *Suite) E23Prefetch() (*Table, error) {
	t := &Table{
		ID:      "E23",
		Title:   "TPI sequential prefetch (one-block lookahead)",
		Columns: []string{"benchmark", "prefetch", "missrate", "read-traffic/read", "prefetches", "cycles"},
		Notes:   "prefetching trades read traffic for misses; wins on streaming kernels only",
	}
	for _, name := range []string{"ocean", "trfd", "qcd2"} {
		for _, pf := range []bool{false, true} {
			cfg := s.cfg(machine.SchemeTPI)
			cfg.Prefetch = pf
			st, err := s.run(name, cfg)
			if err != nil {
				return nil, err
			}
			label := "off"
			if pf {
				label = "on"
			}
			t.Rows = append(t.Rows, []string{
				name, label, pct(st.MissRate()),
				f3(float64(st.ReadTrafficWords) / float64(st.Reads)),
				d(st.PrefetchedLines), d(st.Cycles),
			})
		}
	}
	return t, nil
}

// scalarPingPong is a synthetic workload isolating false sharing on
// packed scalars: four per-processor counters live on one cache line
// (at 4-word lines); each DOALL iteration updates only its own counter,
// so under the line-grain HW directory the line ping-pongs between the
// owners while TPI's per-word tags are unaffected.
const scalarPingPong = `
program pingpong
param n = 4
param steps = 200
scalar s0 = 0.0
scalar s1 = 0.0
scalar s2 = 0.0
scalar s3 = 0.0
array A[n]

proc main() {
  doall i = 0 to n-1 { A[i] = i * 0.5 }
  for t = 1 to steps {
    doall i = 0 to n-1 {
      if (i == 0) { s0 = s0 + A[0] }
      if (i == 1) { s1 = s1 + A[1] }
      if (i == 2) { s2 = s2 + A[2] }
      if (i == 3) { s3 = s3 + A[3] }
    }
  }
}
`

// E24ScalarPadding isolates false sharing on packed scalars: the HW
// directory invalidates whole lines, so per-processor counters packed
// into one line ping-pong; padding gives each its own line. TPI's
// per-word timetags never see the effect.
func (s *Suite) E24ScalarPadding() (*Table, error) {
	t := &Table{
		ID:      "E24",
		Title:   "scalar padding vs packed scalars (per-processor counters)",
		Columns: []string{"scheme", "layout", "missrate", "false-shr/1k", "invalidations"},
		Notes:   "padding removes scalar false sharing at a few words of memory; TPI is immune either way",
	}
	for _, scheme := range []machine.Scheme{machine.SchemeHW, machine.SchemeTPI} {
		for _, pad := range []bool{false, true} {
			cfg := s.cfg(scheme)
			c, err := core.Compile(scalarPingPong, core.CompileOptions{
				Interproc: true, FirstReadReuse: true,
				AlignWords: int64(cfg.LineWords), PadScalars: pad,
			})
			if err != nil {
				return nil, err
			}
			st, err := core.Run(c, cfg)
			if err != nil {
				return nil, err
			}
			label := "packed"
			if pad {
				label = "padded"
			}
			t.Rows = append(t.Rows, []string{
				scheme.String(), label, pct(st.MissRate()),
				f3(1000 * float64(st.ReadMisses[stats.MissFalseSharing]) / float64(st.Reads)),
				d(st.Invalidations),
			})
		}
	}
	return t, nil
}

// E25TimeDecomposition splits execution into compute, read-stall, and
// barrier/reset components per scheme — the execution-time-breakdown
// view papers of this era present alongside raw speedups. Shares are of
// total processor busy time (compute + stalls), with the barrier and
// flush costs shown per total cycles.
func (s *Suite) E25TimeDecomposition() (*Table, error) {
	t := &Table{
		ID:      "E25",
		Title:   "execution time decomposition",
		Columns: []string{"benchmark", "scheme", "cycles", "read-stall %busy", "barrier %cycles"},
		Notes:   "BASE/SC drown in read stalls; HW converts them into coherence traffic",
	}
	for _, name := range []string{"ocean", "trfd"} {
		for _, scheme := range machine.Schemes {
			st, err := s.run(name, s.cfg(scheme))
			if err != nil {
				return nil, err
			}
			var busy int64
			for _, b := range st.ProcBusy {
				busy += b
			}
			stallShare := 0.0
			if busy > 0 {
				stallShare = float64(st.MissLatencySum) / float64(busy)
			}
			t.Rows = append(t.Rows, []string{
				name, scheme.String(), d(st.Cycles),
				pct(stallShare),
				pct(float64(st.BarrierCycles) / float64(st.Cycles)),
			})
		}
	}
	return t, nil
}

// E26LargePMesh measures the paper's E1 scaling story instead of
// extrapolating it: ocean on the clustered 2-D mesh at machine sizes
// past the inline presence word (multi-word bitsets, per-cluster home
// directories), under the hardware directory and the two-level TPI that
// maps its level boundary onto the cluster hierarchy. The E3-style miss
// rate and E5-style words-per-read columns let these rows be compared
// directly against the P=16 tables above; cycles and miss latency show
// the network diameter growing with the mesh.
func (s *Suite) E26LargePMesh() (*Table, error) {
	t := &Table{
		ID:      "E26",
		Title:   "large-P clustered mesh: ocean at P=256/1024/4096 (measured)",
		Columns: []string{"P", "clusters", "scheme", "miss rate", "read w/ref", "coh w/ref", "avg lat", "cycles"},
		Notes:   "measured runs, not analytic storage rows; the kernel is fixed-size so per-P work shrinks while latency grows with mesh diameter",
	}
	type point struct {
		procs   int
		scheme  machine.Scheme
		l1Words int64
		name    string
	}
	var points []point
	for _, procs := range []int{256, 1024, 4096} {
		points = append(points,
			point{procs, machine.SchemeHW, 0, "HW"},
			point{procs, machine.SchemeTPI, 64, "TPI-2L"})
	}
	rows, err := forEach(points, func(pt point) ([][]string, error) {
		cfg := s.cfg(pt.scheme)
		cfg.L1Words = pt.l1Words
		cfg.Procs = pt.procs
		cfg.Topology = "mesh"
		cfg.ClusterSize = 16
		st, err := s.run("ocean", cfg)
		if err != nil {
			return nil, fmt.Errorf("ocean/%s/p%d: %w", pt.name, pt.procs, err)
		}
		return [][]string{{
			d(int64(pt.procs)), d(int64(cfg.Clusters())), pt.name,
			pct(st.MissRate()),
			f3(float64(st.ReadTrafficWords) / float64(st.Reads)),
			f3(float64(st.CoherenceTrafficWords) / float64(st.Reads)),
			f1(st.AvgMissLatency()),
			d(st.Cycles),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E27LeaseSensitivity is the Tardis analog of E8's timetag sweep: how
// the Tardis variants respond to the base lease length. Short leases
// expire every copy almost immediately — the renewal machinery (and,
// under TARDIS2, the lease predictor) has to win the locality back —
// while long leases approach invalidation-free sharing at the price of
// writes having to jump further past outstanding leases. The renewal
// and exclusive-grant columns expose the Tardis 2.0 knobs directly:
// TARDIS2's predicted leases and silent stores should shed renewals and
// coherence words as the base lease shrinks.
func (s *Suite) E27LeaseSensitivity() (*Table, error) {
	t := &Table{
		ID:      "E27",
		Title:   "Tardis sensitivity to lease length",
		Columns: []string{"benchmark", "lease", "scheme", "missrate", "lease-exp/1k", "renewals/1k", "excl-grants", "coh w/ref"},
		Notes:   "short leases force renewals the way narrow timetags force resets in E8; prediction (TARDIS2) recovers most of the loss",
	}
	type point struct {
		name   string
		lease  int64
		scheme machine.Scheme
	}
	var points []point
	for _, name := range []string{"ocean", "spec77", "trfd"} {
		for _, lease := range []int64{1, 2, 4, 8, 16, 32} {
			for _, scheme := range []machine.Scheme{machine.SchemeTardis, machine.SchemeTardis2} {
				points = append(points, point{name, lease, scheme})
			}
		}
	}
	rows, err := forEach(points, func(pt point) ([][]string, error) {
		cfg := s.cfg(pt.scheme)
		cfg.LeaseEpochs = pt.lease
		st, err := s.run(pt.name, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s/%s/lease%d: %w", pt.name, pt.scheme, pt.lease, err)
		}
		return [][]string{{
			pt.name, d(pt.lease), pt.scheme.String(),
			pct(st.MissRate()),
			f3(1000 * float64(st.ReadMisses[stats.MissLeaseExpired]) / float64(st.Reads)),
			f3(1000 * float64(st.LeaseRenewals) / float64(st.Reads)),
			d(st.ExclusiveGrants),
			f3(float64(st.CoherenceTrafficWords) / float64(st.Reads)),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
