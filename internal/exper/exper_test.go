package exper

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
)

func smallSuite() *Suite {
	return NewSuite(bench.Params{N: 16, Steps: 1}, 8)
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q: %v", s, err)
	}
	return v
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float %q: %v", s, err)
	}
	return v
}

func TestE1Shape(t *testing.T) {
	tab, err := smallSuite().E1StorageOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16 { // 4 machine sizes x 4 schemes
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// TPI rows (both granularities) must show zero DRAM.
	for _, r := range tab.Rows {
		if (r[1] == "tpi" || r[1] == "tpi-line") && r[3] != "0B" {
			t.Errorf("%s DRAM = %s, want 0B", r[1], r[3])
		}
	}
}

func TestE3MissRateShape(t *testing.T) {
	tab, err := smallSuite().E3MissRates()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows, want 6 benchmarks", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		base := parsePct(t, r[1])
		sc := parsePct(t, r[2])
		tpi := parsePct(t, r[3])
		hw := parsePct(t, r[4])
		if !(base >= sc && sc > tpi) {
			t.Errorf("%s: ordering BASE(%v) >= SC(%v) > TPI(%v) violated", r[0], base, sc, tpi)
		}
		if tpi > 8*hw+1 {
			t.Errorf("%s: TPI (%v) not comparable to HW (%v)", r[0], tpi, hw)
		}
	}
}

func TestE4UnnecessaryMissesComparable(t *testing.T) {
	tab, err := smallSuite().E4MissClassification()
	if err != nil {
		t.Fatal(err)
	}
	// TPI rows must have zero false sharing; HW rows zero conservative.
	for _, r := range tab.Rows {
		switch r[1] {
		case "TPI":
			if parseF(t, r[5]) != 0 {
				t.Errorf("%s TPI false sharing = %s, want 0", r[0], r[5])
			}
		case "HW":
			if parseF(t, r[6]) != 0 {
				t.Errorf("%s HW conservative = %s, want 0", r[0], r[6])
			}
		}
	}
}

func TestE6LatencyShape(t *testing.T) {
	tab, err := smallSuite().E6MissLatency()
	if err != nil {
		t.Fatal(err)
	}
	var qcdRow []string
	for _, r := range tab.Rows {
		if r[0] == "qcd2" {
			qcdRow = r
		}
		// Larger lines mean longer transfers for both schemes.
		if !(parseF(t, r[2]) > parseF(t, r[1])) {
			t.Errorf("%s: TPI 16w latency (%s) should exceed 4w (%s)", r[0], r[2], r[1])
		}
	}
	if qcdRow == nil {
		t.Fatal("qcd2 row missing")
	}
	// The paper's signature: HW's latency exceeds TPI's on qcd2.
	if !(parseF(t, qcdRow[3]) > parseF(t, qcdRow[1])) {
		t.Errorf("qcd2: HW 4w latency (%s) should exceed TPI 4w (%s)", qcdRow[3], qcdRow[1])
	}
}

func TestE8TimetagShape(t *testing.T) {
	tab, err := smallSuite().E8TimetagSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	// For each benchmark: 2-bit tags must reset at least as often as
	// 16-bit tags, and the 16-bit miss rate must be <= the 2-bit one.
	byBench := map[string]map[string][]string{}
	for _, r := range tab.Rows {
		if byBench[r[0]] == nil {
			byBench[r[0]] = map[string][]string{}
		}
		byBench[r[0]][r[1]] = r
	}
	for name, rows := range byBench {
		r2, r16 := rows["2"], rows["16"]
		if parseF(t, r2[3]) < parseF(t, r16[3]) {
			t.Errorf("%s: 2-bit resets (%s) < 16-bit resets (%s)", name, r2[3], r16[3])
		}
		if parsePct(t, r2[2]) < parsePct(t, r16[2])-0.01 {
			t.Errorf("%s: 2-bit miss rate (%s) below 16-bit (%s)", name, r2[2], r16[2])
		}
	}
}

func TestE13AblationShape(t *testing.T) {
	tab, err := smallSuite().E13CompilerAblations()
	if err != nil {
		t.Fatal(err)
	}
	// "neither" must never beat "full" on miss rate (analyses only help).
	full := map[string]float64{}
	neither := map[string]float64{}
	for _, r := range tab.Rows {
		switch r[1] {
		case "full":
			full[r[0]] = parsePct(t, r[2])
		case "neither":
			neither[r[0]] = parsePct(t, r[2])
		}
	}
	for name := range full {
		if neither[name] < full[name]-0.01 {
			t.Errorf("%s: ablated compiler (%v) beats full (%v)", name, neither[name], full[name])
		}
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	s := smallSuite()
	tabs, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(s.Entries()); len(tabs) != want {
		t.Fatalf("%d tables, want %d (the registry)", len(tabs), want)
	}
	for _, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", tab.ID)
		}
		if !strings.Contains(tab.String(), tab.ID) {
			t.Errorf("%s render missing id", tab.ID)
		}
	}
}

func TestE14PointerPressure(t *testing.T) {
	tab, err := smallSuite().E14LimitedPointers()
	if err != nil {
		t.Fatal(err)
	}
	// DIR_NB(1) must never beat full-map, and must show pointer evictions
	// somewhere.
	fullRate := map[string]float64{}
	anyEvictions := false
	for _, r := range tab.Rows {
		if r[1] == "full-map" {
			fullRate[r[0]] = parsePct(t, r[2])
			if parseF(t, r[3]) != 0 {
				t.Errorf("%s: full-map must have zero pointer evictions", r[0])
			}
		}
	}
	for _, r := range tab.Rows {
		if r[1] == "DIR_NB(1)" {
			if parsePct(t, r[2]) < fullRate[r[0]]-0.01 {
				t.Errorf("%s: DIR_NB(1) (%s) beats full-map (%v)", r[0], r[2], fullRate[r[0]])
			}
			if parseF(t, r[3]) > 0 {
				anyEvictions = true
			}
		}
	}
	if !anyEvictions {
		t.Error("DIR_NB(1) never evicted a pointer on any kernel")
	}
}

func TestE15ConsistencyShape(t *testing.T) {
	tab, err := smallSuite().E15ConsistencyModels()
	if err != nil {
		t.Fatal(err)
	}
	slow := map[string]map[string]float64{}
	for _, r := range tab.Rows {
		if slow[r[0]] == nil {
			slow[r[0]] = map[string]float64{}
		}
		slow[r[0]][r[1]] = parseF(t, r[4])
		if parseF(t, r[4]) < 1.0 {
			t.Errorf("%s/%s: SC cannot be faster than WC (%s)", r[0], r[1], r[4])
		}
	}
	for name, m := range slow {
		if !(m["TPI"] > m["HW"]) {
			t.Errorf("%s: TPI SC-slowdown (%v) should exceed HW's (%v)", name, m["TPI"], m["HW"])
		}
	}
}

func TestE16SchedulingShape(t *testing.T) {
	tab, err := smallSuite().E16SchedulingPolicies()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("%d rows, want 9", len(tab.Rows))
	}
	// block placement must win on the affinity-heavy stencil (ocean).
	rates := map[string]float64{}
	for _, r := range tab.Rows {
		if r[0] == "ocean" {
			rates[r[1]] = parsePct(t, r[2])
		}
	}
	if !(rates["block"] <= rates["cyclic"]) {
		t.Errorf("ocean: block (%v) should not miss more than cyclic (%v)", rates["block"], rates["cyclic"])
	}
}

func TestE17HSCDFamilyShape(t *testing.T) {
	tab, err := smallSuite().E17HSCDFamily()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		sc := parsePct(t, r[1])
		vc := parsePct(t, r[2])
		tpi := parsePct(t, r[3])
		// runtime coherence state (VC, TPI) must beat pure bypass (SC)
		// decisively; VC-vs-TPI depends on write granularity (see
		// EXPERIMENTS.md E17) so only a loose band is asserted.
		if !(vc < sc/2) {
			t.Errorf("%s: VC (%v) should beat SC (%v) decisively", r[0], vc, sc)
		}
		if !(tpi < sc/2) {
			t.Errorf("%s: TPI (%v) should beat SC (%v) decisively", r[0], tpi, sc)
		}
		if tpi > 3*vc+1 || vc > 3*tpi+1 {
			t.Errorf("%s: VC (%v) and TPI (%v) should be in the same band", r[0], vc, tpi)
		}
	}
}

func TestE18WritePolicyShape(t *testing.T) {
	tab, err := smallSuite().E18WritePolicies()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string][]string{}
	for _, r := range tab.Rows {
		byKey[r[0]+"/"+r[1]] = r
	}
	wt := byKey["trfd/write-through+wbc"]
	wb := byKey["trfd/write-back-flush"]
	if wt == nil || wb == nil {
		t.Fatal("missing trfd rows")
	}
	// Write-back must flush at barriers and pay stalls there.
	if parseF(t, wb[3]) == 0 {
		t.Error("write-back policy must report flush stalls")
	}
	if parseF(t, wt[3]) != 0 {
		t.Error("write-through policy must not flush at barriers")
	}
	// Write-back coalesces at least as well as the wb-cache on trfd.
	if parseF(t, wb[2]) > parseF(t, wt[2])+0.01 {
		t.Errorf("write-back traffic (%s) should not exceed write-through+wbc (%s)", wb[2], wt[2])
	}
}

func TestE19OffTheShelfShape(t *testing.T) {
	tab, err := smallSuite().E19OffTheShelf()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tab.Rows); i += 2 {
		integ, two := tab.Rows[i], tab.Rows[i+1]
		if parsePct(t, integ[2]) != parsePct(t, two[2]) {
			t.Errorf("%s: two-level must not change the miss rate (%s vs %s)",
				integ[0], integ[2], two[2])
		}
		if parseF(t, two[4]) < 1.0 {
			t.Errorf("%s: two-level slowdown %s < 1", integ[0], two[4])
		}
	}
}

func TestTableString(t *testing.T) {
	tab := &Table{
		ID:      "T1",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"x", "1"}, {"longer-cell", "2"}},
		Notes:   "n",
	}
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// column alignment: the second column starts at the same offset on
	// every data line
	idx := strings.Index(lines[1], "long-column")
	for _, ln := range lines[2:4] {
		if len(ln) <= idx {
			t.Fatalf("row too short: %q", ln)
		}
	}
	if !strings.HasPrefix(lines[4], "note:") {
		t.Fatalf("notes missing: %q", lines[4])
	}
}

func TestE5TrafficShape(t *testing.T) {
	tab, err := smallSuite().E5NetworkTraffic()
	if err != nil {
		t.Fatal(err)
	}
	var tpiWrite, noWbcWrite float64
	for _, r := range tab.Rows {
		// BASE reads exactly one word per read reference.
		if r[1] == "BASE" && parseF(t, r[2]) != 1.0 {
			t.Errorf("%s BASE read traffic %s != 1.000", r[0], r[2])
		}
		// HW never writes through (write-back): write column is writebacks
		// only and coherence traffic is nonzero on sharing-heavy kernels.
		if r[0] == "trfd" && r[1] == "TPI" {
			tpiWrite = parseF(t, r[3])
		}
		if r[0] == "trfd" && r[1] == "TPI-nowbc" {
			noWbcWrite = parseF(t, r[3])
		}
	}
	if !(noWbcWrite > 2*tpiWrite) {
		t.Errorf("trfd redundant writes: nowbc %v should be >2x wbc %v", noWbcWrite, tpiWrite)
	}
}

func TestE7ExecutionTimeShape(t *testing.T) {
	tab, err := smallSuite().E7ExecutionTime()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		base, sc, tpi, hw := parseF(t, r[1]), parseF(t, r[2]), parseF(t, r[3]), parseF(t, r[4])
		if hw != 1.0 {
			t.Errorf("%s: HW column must be 1.000, got %v", r[0], hw)
		}
		if !(base >= sc && sc >= tpi) {
			t.Errorf("%s: ordering BASE(%v) >= SC(%v) >= TPI(%v) violated", r[0], base, sc, tpi)
		}
		if tpi > 4 {
			t.Errorf("%s: TPI %vx HW is not 'comparable'", r[0], tpi)
		}
	}
}

func TestE9CacheSizeShape(t *testing.T) {
	tab, err := smallSuite().E9CacheSizeSweep()
	if err != nil {
		t.Fatal(err)
	}
	// Within each benchmark, miss rates must be non-increasing in cache
	// size for both schemes.
	prev := map[string][2]float64{}
	for _, r := range tab.Rows {
		cur := [2]float64{parsePct(t, r[2]), parsePct(t, r[3])}
		if p, ok := prev[r[0]]; ok {
			if cur[0] > p[0]+0.01 || cur[1] > p[1]+0.01 {
				t.Errorf("%s: miss rate rose with cache size: %v -> %v", r[0], p, cur)
			}
		}
		prev[r[0]] = cur
	}
}

func TestE12ScalabilityShape(t *testing.T) {
	tab, err := smallSuite().E12Scalability()
	if err != nil {
		t.Fatal(err)
	}
	var prevTPI, prevHW float64 = 1e18, 1e18
	for _, r := range tab.Rows {
		tpi, hw := parseF(t, r[1]), parseF(t, r[3])
		if tpi > prevTPI*1.05 || hw > prevHW*1.05 {
			t.Errorf("P=%s: cycles rose with more processors (TPI %v->%v, HW %v->%v)",
				r[0], prevTPI, tpi, prevHW, hw)
		}
		prevTPI, prevHW = tpi, hw
	}
}

func TestE21ToolchainShape(t *testing.T) {
	tab, err := smallSuite().E21Toolchain()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if parseF(t, r[1]) < 3 {
			t.Errorf("%s: only %s loops parallelized", r[0], r[1])
		}
		// auto and hand miss rates agree to within a couple of points
		if a, h := parsePct(t, r[3]), parsePct(t, r[4]); a > h+2 || h > a+2 {
			t.Errorf("%s: auto (%v) and hand (%v) diverge", r[0], a, h)
		}
	}
	// ocean-seq carries the resid reduction.
	if tab.Rows[0][2] == "0" {
		t.Error("ocean-seq reduction not recognized")
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{
		ID:      "T1",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"x", "1"}},
		Notes:   "note text",
	}
	md := tab.Markdown()
	for _, want := range []string{"### T1 — demo", "| a | b |", "|---|---|", "| x | 1 |", "*note text*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestE22TagGranularityShape(t *testing.T) {
	tab, err := smallSuite().E22TagGranularity()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tab.Rows); i += 2 {
		word, line := tab.Rows[i], tab.Rows[i+1]
		if parsePct(t, line[2]) < parsePct(t, word[2])-0.01 {
			t.Errorf("%s: per-line tags (%s) beat per-word (%s)", word[0], line[2], word[2])
		}
	}
}

func TestE23PrefetchShape(t *testing.T) {
	tab, err := smallSuite().E23Prefetch()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tab.Rows); i += 2 {
		off, on := tab.Rows[i], tab.Rows[i+1]
		if parseF(t, on[4]) == 0 {
			t.Errorf("%s: no prefetches issued", off[0])
		}
		if parsePct(t, on[2]) > parsePct(t, off[2])+0.5 {
			t.Errorf("%s: prefetching raised the miss rate (%s -> %s)", off[0], off[2], on[2])
		}
	}
}

func TestE24ScalarPaddingShape(t *testing.T) {
	tab, err := smallSuite().E24ScalarPadding()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, r := range tab.Rows {
		rows[r[0]+"/"+r[1]] = r
	}
	hwPacked, hwPadded := rows["HW/packed"], rows["HW/padded"]
	if !(parseF(t, hwPacked[3]) > 50*parseF(t, hwPadded[3])+1) {
		t.Errorf("padding should crush HW scalar false sharing: %s -> %s", hwPacked[3], hwPadded[3])
	}
	for _, layout := range []string{"packed", "padded"} {
		r := rows["TPI/"+layout]
		if parseF(t, r[3]) != 0 {
			t.Errorf("TPI %s has false sharing %s, want 0 (word-grain tags)", layout, r[3])
		}
	}
}

func TestE25DecompositionShape(t *testing.T) {
	tab, err := smallSuite().E25TimeDecomposition()
	if err != nil {
		t.Fatal(err)
	}
	shares := map[string]float64{}
	for _, r := range tab.Rows {
		if r[0] == "ocean" {
			shares[r[1]] = parsePct(t, r[3])
		}
	}
	// BASE spends (far) more of its time stalled on reads than TPI/HW.
	if !(shares["BASE"] > shares["TPI"] && shares["BASE"] > shares["HW"]) {
		t.Errorf("stall shares: %v", shares)
	}
}

func TestE26LargePMeshShape(t *testing.T) {
	tab, err := smallSuite().E26LargePMesh()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // 3 machine sizes x {HW, TPI-2L}
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// The kernel is fixed-size, so miss rates hold steady while the read
	// latency grows with the mesh diameter: for each scheme the P=4096
	// latency must exceed the P=256 one.
	lat := map[string]map[string]float64{}
	for _, r := range tab.Rows {
		if lat[r[2]] == nil {
			lat[r[2]] = map[string]float64{}
		}
		lat[r[2]][r[0]] = parseF(t, r[6])
	}
	for scheme, byP := range lat {
		if !(byP["4096"] > byP["256"]) {
			t.Errorf("%s: latency %v does not grow with the mesh", scheme, byP)
		}
	}
}
