package svc

import (
	"compress/gzip"
	"net/http"
	"strings"
)

// gzipMinBytes is the smallest body worth compressing: below this the
// gzip header plus CPU outweighs the wire savings, and a short status
// poll stays a single small frame either way.
const gzipMinBytes = 1024

// acceptsGzip reports whether the request advertises gzip support. A
// bare token match is enough here — clients that send q=0 to refuse an
// encoding are not a population this fleet-internal API serves.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if enc == "gzip" {
			return true
		}
	}
	return false
}

// writeBodyMaybeGzip writes body with the given status and content
// type, gzip-compressing when the client accepts it and the body is
// large enough to benefit. Vary: Accept-Encoding is always set on the
// eligible endpoints so any intermediary caches split correctly.
func writeBodyMaybeGzip(w http.ResponseWriter, r *http.Request, code int, contentType string, body []byte) {
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Add("Vary", "Accept-Encoding")
	if !acceptsGzip(r) || len(body) < gzipMinBytes {
		w.WriteHeader(code)
		w.Write(body)
		return
	}
	h.Set("Content-Encoding", "gzip")
	w.WriteHeader(code)
	gz := gzip.NewWriter(w)
	gz.Write(body)
	gz.Close()
}
