package svc

import "sync"

// lruCache is a bounded, thread-safe LRU keyed by content-address
// strings. Both cache tiers use it: the compile tier holds *core.Compiled
// and the result tier holds marshaled core.RunResult bytes. Entries are
// immutable once inserted (the content address guarantees a key never
// maps to two different values), so Get can hand out the stored value
// without copying.
type lruCache[V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*lruEntry[V]
	// Intrusive doubly-linked recency list; head is most recent.
	head, tail *lruEntry[V]
	hits       int64
	misses     int64
	evictions  int64
}

type lruEntry[V any] struct {
	key        string
	val        V
	prev, next *lruEntry[V]
}

// newLRU builds a cache bounded to capacity entries (minimum 1).
func newLRU[V any](capacity int) *lruCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache[V]{capacity: capacity, entries: make(map[string]*lruEntry[V])}
}

// Get returns the value for key and refreshes its recency.
func (c *lruCache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.moveToFront(e)
	return e.val, true
}

// Peek returns the value for key, refreshing its recency but NOT the
// hit/miss counters. The peer-cache endpoint serves probes from sibling
// workers through it, so fleet traffic cannot distort the tier's
// submission-path hit rate (which tpiload and the CI smoke assert on);
// endpoint-level outcomes are counted separately in the telemetry
// families.
func (c *lruCache[V]) Peek(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(e)
	return e.val, true
}

// Put inserts or refreshes key, evicting the least-recently-used entry
// when the cache is full.
func (c *lruCache[V]) Put(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.val = v // same content address ⇒ same value; refresh anyway
		c.moveToFront(e)
		return
	}
	e := &lruEntry[V]{key: key, val: v}
	c.entries[key] = e
	c.pushFront(e)
	if len(c.entries) > c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.evictions++
	}
}

// CacheStats is the metrics view of one tier.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// Stats snapshots the hit/miss/eviction counters and occupancy.
func (c *lruCache[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Size: len(c.entries), Capacity: c.capacity,
	}
}

func (c *lruCache[V]) pushFront(e *lruEntry[V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lruCache[V]) unlink(e *lruEntry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *lruCache[V]) moveToFront(e *lruEntry[V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
