package svc

import (
	"context"
	"testing"
	"time"
)

// TestAnnounceMutualRegistration boots two in-process servers and has B
// join A: after one announce round each server must list the other, from
// either side — B registered itself on A over PUT /v1/peers and adopted
// A locally.
func TestAnnounceMutualRegistration(t *testing.T) {
	a, hsA := newTestServer(t, Options{Workers: 1})
	b, hsB := newTestServer(t, Options{Workers: 1})

	ann := &Announcer{Self: hsB.URL, Seeds: []string{hsA.URL}, Server: b}
	if err := ann.AnnounceOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := a.Peers(); len(got) != 1 || got[0] != hsB.URL {
		t.Fatalf("A's peers after announce: %v, want [%s]", got, hsB.URL)
	}
	if got := b.Peers(); len(got) != 1 || got[0] != hsA.URL {
		t.Fatalf("B's peers after announce: %v, want [%s]", got, hsA.URL)
	}

	// A second round is idempotent: no duplicates on either side.
	if err := ann.AnnounceOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := a.Peers(); len(got) != 1 {
		t.Fatalf("A's peers after re-announce: %v, want 1 entry", got)
	}
	if got := b.Peers(); len(got) != 1 {
		t.Fatalf("B's peers after re-announce: %v, want 1 entry", got)
	}
}

// TestAnnounceTransitiveAdoption: C joins seed A that already knows B, so
// one round leaves C knowing the whole fleet and A knowing C.
func TestAnnounceTransitiveAdoption(t *testing.T) {
	a, hsA := newTestServer(t, Options{Workers: 1})
	_, hsB := newTestServer(t, Options{Workers: 1})
	c, hsC := newTestServer(t, Options{Workers: 1})
	if err := a.SetPeers([]string{hsB.URL}); err != nil {
		t.Fatal(err)
	}

	ann := &Announcer{Self: hsC.URL, Seeds: []string{hsA.URL}, Server: c}
	if err := ann.AnnounceOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := a.Peers(); len(got) != 2 || got[0] != hsB.URL || got[1] != hsC.URL {
		t.Fatalf("A's peers: %v, want [%s %s]", got, hsB.URL, hsC.URL)
	}
	if got := c.Peers(); len(got) != 2 || got[0] != hsA.URL || got[1] != hsB.URL {
		t.Fatalf("C's peers: %v, want [%s %s]", got, hsA.URL, hsB.URL)
	}
}

// TestAnnounceHealsSeedRestart simulates the seed losing its in-memory
// peer list (a restart) and requires the re-announce loop to repair the
// registration on its next tick.
func TestAnnounceHealsSeedRestart(t *testing.T) {
	a, hsA := newTestServer(t, Options{Workers: 1})
	b, hsB := newTestServer(t, Options{Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ann := &Announcer{Self: hsB.URL, Seeds: []string{hsA.URL}, Server: b}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ann.Run(ctx, 20*time.Millisecond)
	}()

	waitFor := func(what string, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	registered := func() bool {
		p := a.Peers()
		return len(p) == 1 && p[0] == hsB.URL
	}
	waitFor("initial registration", registered)

	// "Restart" the seed: wipe its peer list out from under the announcer.
	if err := a.SetPeers(nil); err != nil {
		t.Fatal(err)
	}
	waitFor("re-registration after seed restart", registered)

	cancel()
	<-done
}

// TestAnnounceBadConfig: a relative advertise URL is a configuration
// error, reported immediately rather than retried forever.
func TestAnnounceBadConfig(t *testing.T) {
	b, hsB := newTestServer(t, Options{Workers: 1})
	ann := &Announcer{Self: "not-a-url", Seeds: []string{hsB.URL}, Server: b}
	if err := ann.AnnounceOnce(context.Background()); err == nil {
		t.Fatal("announce with relative advertise URL: want error")
	}
}
