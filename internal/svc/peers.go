// Peer-fetch layer on the content-addressed result cache. Every worker
// already serves its cached RunResult bytes on GET /v1/cache/{key}
// (see http.go); this file is the other half — before simulating a
// local miss, the server probes its configured siblings for the same
// content address and adopts a hit into its own cache. Because the key
// is a sha256 over the complete simulation identity (program source,
// compile options, canonical config, obs level), an adopted body is
// byte-identical to what the local simulation would have produced, so
// peer serving preserves the service's result-fidelity contract.
//
// Probes are strictly best-effort and sequential: each peer gets one
// request bounded by Options.PeerTimeout, a miss or any error falls
// through to the next peer, and exhausting the list falls back to local
// simulation. Bodies that fail validation (truncated transfer, a
// confused proxy, a peer running different code) are discarded rather
// than cached.
package svc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/url"
	"strings"

	"repro/internal/core"
)

// Peer-probe outcome labels for tpiserved_peer_cache_requests_total.
const (
	peerHit     = "hit"
	peerMiss    = "miss"
	peerError   = "error"
	peerInvalid = "invalid"
)

// normalizePeers validates and canonicalizes a peer URL list: blanks
// drop, trailing slashes strip, and every survivor must be an absolute
// http(s) URL — the first bad one fails the whole list so a typo cannot
// silently shrink the fleet.
func normalizePeers(peers []string) ([]string, error) {
	norm := make([]string, 0, len(peers))
	for _, p := range peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		u, err := url.Parse(p)
		if err != nil {
			return nil, fmt.Errorf("svc: peer %q: %w", p, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("svc: peer %q: want an absolute http(s) URL", p)
		}
		norm = append(norm, p)
	}
	return norm, nil
}

// SetPeers replaces the sibling list. Safe to call at runtime
// (PUT /v1/peers).
func (s *Server) SetPeers(peers []string) error {
	norm, err := normalizePeers(peers)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.peers = norm
	s.mu.Unlock()
	return nil
}

// AddPeers merges URLs into the sibling list without disturbing what is
// already there (existing entries keep their probe order; new ones
// append, deduplicated). The startup announcer uses this to adopt the
// fleet it discovers, so a concurrent PUT /v1/peers is never clobbered.
func (s *Server) AddPeers(peers []string) error {
	norm, err := normalizePeers(peers)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	have := make(map[string]bool, len(s.peers))
	for _, p := range s.peers {
		have[p] = true
	}
	for _, p := range norm {
		if !have[p] {
			have[p] = true
			s.peers = append(s.peers, p)
		}
	}
	return nil
}

// Peers returns a copy of the current sibling list.
func (s *Server) Peers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.peers...)
}

// fetchFromPeers probes each sibling for res's content address and
// returns the first valid body plus the peer that served it. ok=false
// means every peer missed, erred, or the list is empty — simulate
// locally.
func (s *Server) fetchFromPeers(ctx context.Context, res *resolved) (body []byte, peer string, ok bool) {
	peers := s.Peers()
	if len(peers) == 0 {
		return nil, "", false
	}
	for _, p := range peers {
		if ctx.Err() != nil {
			return nil, "", false // job cancelled or timed out; stop probing
		}
		b, outcome := s.fetchPeer(ctx, p, res)
		s.tel.peerRequests.With(outcome).Inc()
		if outcome == peerHit {
			return b, p, true
		}
	}
	return nil, "", false
}

// fetchPeer issues one bounded probe and classifies the outcome. A 200
// body must unmarshal to a core.RunResult whose scheme and processor
// count match the request — a cheap sanity check that catches corrupt
// or mismatched payloads without re-deriving the full key.
func (s *Server) fetchPeer(ctx context.Context, peer string, res *resolved) ([]byte, string) {
	pctx, cancel := context.WithTimeout(ctx, s.opts.PeerTimeout)
	defer cancel()
	status, b, err := s.opts.PeerClient.Get(pctx, peer+"/v1/cache/"+res.resultKey)
	switch {
	case err != nil:
		s.log.Debug("peer probe failed", "peer", peer, "error", err.Error())
		return nil, peerError
	case status == 404:
		return nil, peerMiss
	case status != 200:
		s.log.Debug("peer probe rejected", "peer", peer, "status", status)
		return nil, peerError
	}
	var rr core.RunResult
	if err := json.Unmarshal(b, &rr); err != nil {
		s.log.Warn("peer returned undecodable result", "peer", peer, "error", err.Error())
		return nil, peerInvalid
	}
	if rr.Scheme != res.cfg.Scheme.String() || rr.Procs != res.cfg.Procs {
		s.log.Warn("peer returned mismatched result", "peer", peer,
			"wantScheme", res.cfg.Scheme.String(), "gotScheme", rr.Scheme,
			"wantProcs", res.cfg.Procs, "gotProcs", rr.Procs)
		return nil, peerInvalid
	}
	return b, peerHit
}
