package svc

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// cacheGet fetches /v1/cache/{key} with optional extra headers and
// returns the status, headers, and raw (undecoded) body.
func rawGet(t *testing.T, url string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	// DisableCompression keeps the transport from injecting its own
	// Accept-Encoding and transparently gunzipping — the tests need to
	// see the bytes on the wire.
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestCacheEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 2})
	req := RunRequest{Kernel: "ocean", Scheme: "TPI"}
	code, st := postRun(t, hs, req)
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("seed run: HTTP %d state %s error %q", code, st.State, st.Error)
	}
	key, err := RequestKey(&req)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := rawGet(t, hs.URL+"/v1/cache/"+key, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit: HTTP %d", resp.StatusCode)
	}
	if !bytes.Equal(body, []byte(st.Result)) {
		t.Fatalf("cache body differs from job result:\n%s\nvs\n%s", body, st.Result)
	}

	missKey := strings.Repeat("0", 64)
	if resp, _ := rawGet(t, hs.URL+"/v1/cache/"+missKey, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cache miss: HTTP %d, want 404", resp.StatusCode)
	}
	for _, bad := range []string{"short", strings.Repeat("0", 63) + "G", strings.Repeat("Z", 64)} {
		if resp, _ := rawGet(t, hs.URL+"/v1/cache/"+bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad key %q: HTTP %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestCacheEndpointDoesNotCountTierStats pins the Peek contract: fleet
// probes must not move the result tier's hit/miss counters, which
// tpiload and the CI smoke assert on.
func TestCacheEndpointDoesNotCountTierStats(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1})
	req := RunRequest{Kernel: "trfd", Scheme: "TPI"}
	if code, st := postRun(t, hs, req); code != http.StatusOK || st.State != StateDone {
		t.Fatalf("seed run: HTTP %d state %s", code, st.State)
	}
	key, err := RequestKey(&req)
	if err != nil {
		t.Fatal(err)
	}
	before := s.resultCache.Stats()
	rawGet(t, hs.URL+"/v1/cache/"+key, nil)                     // hit
	rawGet(t, hs.URL+"/v1/cache/"+strings.Repeat("a", 64), nil) // miss
	after := s.resultCache.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("peer endpoint moved tier stats: before %+v after %+v", before, after)
	}
}

func TestGzipResponses(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 2})
	req := RunRequest{Kernel: "ocean", Scheme: "TPI", Obs: "counters", Async: true}
	code, st := postRun(t, hs, req)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	// Wait for completion so GET returns the (large) result body.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, _ := rawGet(t, hs.URL+"/v1/runs/"+st.ID, nil)
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, plain := rawGet(t, hs.URL+"/v1/runs/"+st.ID, nil)
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("identity request got Content-Encoding %q", enc)
	}
	if len(plain) < gzipMinBytes {
		t.Fatalf("test body too small to exercise gzip: %d bytes", len(plain))
	}

	resp, wire := rawGet(t, hs.URL+"/v1/runs/"+st.ID, map[string]string{"Accept-Encoding": "gzip"})
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("gzip request got Content-Encoding %q", enc)
	}
	if !strings.Contains(strings.Join(resp.Header.Values("Vary"), ","), "Accept-Encoding") {
		t.Fatalf("gzip response missing Vary: Accept-Encoding (got %v)", resp.Header.Values("Vary"))
	}
	if len(wire) >= len(plain) {
		t.Fatalf("gzip did not shrink the body: %d vs %d", len(wire), len(plain))
	}
	gz, err := gzip.NewReader(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unzipped, plain) {
		t.Fatal("gzip body does not round-trip to the identity body")
	}

	// The standard Go client decompresses transparently — the path the
	// sweep coordinator and tpiload actually take.
	httpResp, err := http.Get(hs.URL + "/v1/runs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	auto, err := io.ReadAll(httpResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(auto, plain) {
		t.Fatal("transparent decompression does not match identity body")
	}
}

// TestPeerFetch is the fleet cache-sharing path: worker B, peered with
// worker A, serves a request A has already simulated without running
// the simulation itself — and the adopted body is byte-identical.
func TestPeerFetch(t *testing.T) {
	_, hsA := newTestServer(t, Options{Workers: 2})
	req := RunRequest{Kernel: "ocean", Scheme: "TPI"}
	code, stA := postRun(t, hsA, req)
	if code != http.StatusOK || stA.State != StateDone {
		t.Fatalf("seed run on A: HTTP %d state %s", code, stA.State)
	}

	sB, hsB := newTestServer(t, Options{Workers: 2, Peers: []string{hsA.URL}})
	code, stB := postRun(t, hsB, req)
	if code != http.StatusOK || stB.State != StateDone {
		t.Fatalf("run on B: HTTP %d state %s error %q", code, stB.State, stB.Error)
	}
	if !stB.Peer || !stB.Cached {
		t.Fatalf("expected peer-served job, got peer=%v cached=%v", stB.Peer, stB.Cached)
	}
	if !bytes.Equal(stB.Result, stA.Result) {
		t.Fatal("peer-served result differs from origin result")
	}
	m := sB.MetricsSnapshot()
	if m.Jobs.Simulated != 0 {
		t.Fatalf("B simulated %d jobs, want 0", m.Jobs.Simulated)
	}
	if m.Jobs.PeerServed != 1 {
		t.Fatalf("B peerServed = %d, want 1", m.Jobs.PeerServed)
	}

	// Resubmitting on B now hits B's own result cache — the adoption
	// populated it.
	code, stB2 := postRun(t, hsB, req)
	if code != http.StatusOK || !stB2.Cached || stB2.Peer {
		t.Fatalf("resubmit on B: HTTP %d cached=%v peer=%v (want local cache hit)", code, stB2.Cached, stB2.Peer)
	}
}

// TestPeerFallback covers every way a probe can fail — dead peer, slow
// peer, garbage payload, plain miss — and requires the job to complete
// by local simulation regardless.
func TestPeerFallback(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
		w.WriteHeader(http.StatusNotFound)
	}))
	defer slow.Close()
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "this is not a RunResult")
	}))
	defer garbage.Close()
	missing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	}))
	defer missing.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on

	s, hs := newTestServer(t, Options{
		Workers:     2,
		Peers:       []string{dead.URL, slow.URL, garbage.URL, missing.URL},
		PeerTimeout: 100 * time.Millisecond,
	})
	req := RunRequest{Kernel: "ocean", Scheme: "TPI"}
	code, st := postRun(t, hs, req)
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("run with broken peers: HTTP %d state %s error %q", code, st.State, st.Error)
	}
	if st.Peer || st.Cached {
		t.Fatalf("job should have simulated locally, got peer=%v cached=%v", st.Peer, st.Cached)
	}
	m := s.MetricsSnapshot()
	if m.Jobs.Simulated != 1 || m.Jobs.PeerServed != 0 {
		t.Fatalf("counters: simulated=%d peerServed=%d, want 1/0", m.Jobs.Simulated, m.Jobs.PeerServed)
	}
}

func TestPeersAPI(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1})

	put := func(body string) *http.Response {
		req, err := http.NewRequest(http.MethodPut, hs.URL+"/v1/peers", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := put(`{"peers":["http://h1:8080/","https://h2:8443"]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT peers: HTTP %d", resp.StatusCode)
	}
	want := []string{"http://h1:8080", "https://h2:8443"}
	got := s.Peers()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("peers after PUT: %v, want %v", got, want)
	}

	resp, body := rawGet(t, hs.URL+"/v1/peers", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET peers: HTTP %d", resp.StatusCode)
	}
	var doc peersDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Peers) != 2 || doc.Peers[0] != want[0] {
		t.Fatalf("GET peers body: %v", doc.Peers)
	}

	// A bad URL rejects the whole update and leaves the list untouched.
	if resp := put(`{"peers":["not a url at all","http://ok:1"]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT invalid peers: HTTP %d, want 400", resp.StatusCode)
	}
	if got := s.Peers(); len(got) != 2 || got[0] != want[0] {
		t.Fatalf("peers changed after rejected PUT: %v", got)
	}
}
