// Fleet self-registration. Historically a tpiserved fleet was wired
// from the outside: every worker was started with the full -peers list,
// or cmd/tpisweep pushed sibling lists over PUT /v1/peers. Both need a
// coordinator that already knows the whole fleet. The Announcer inverts
// that: a worker started with -advertise (its own reachable base URL)
// and -join (any existing fleet members) registers itself — for each
// seed it reads GET /v1/peers, appends its advertised URL if missing,
// and writes the merged list back with PUT /v1/peers (the endpoint is
// full-replace, hence the read-merge-write). Whatever fleet the seed
// already knew is adopted into the local sibling list the same way, so
// joining one member joins them all, from either side.
//
// Announcing repeats on a timer: a seed that was down at startup, or
// that restarted and lost its in-memory peer list, is re-registered at
// the next tick. Every step is best-effort — an unreachable seed is
// logged and retried next round, never fatal.
package svc

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/httpx"
)

// Announcer registers this server with a fleet and keeps the
// registration alive. All fields are read-only after construction.
type Announcer struct {
	// Self is the base URL other fleet members can reach this server at
	// (the -advertise flag). Normalized like any peer URL.
	Self string
	// Seeds are fleet entry points to register with (the -join flag).
	Seeds []string
	// Server is the local server that adopts discovered siblings.
	Server *Server
	// Client issues the HTTP calls; nil uses the server's peer client.
	Client *httpx.Client
	// Log receives per-seed outcomes; nil uses the server's logger.
	Log *slog.Logger
}

func (a *Announcer) client() *httpx.Client {
	if a.Client != nil {
		return a.Client
	}
	return a.Server.opts.PeerClient
}

func (a *Announcer) log() *slog.Logger {
	if a.Log != nil {
		return a.Log
	}
	return a.Server.log
}

// AnnounceOnce runs one registration round: every seed is read, merged,
// and (when this server was missing) written back, and every sibling
// the seeds reported is adopted locally. It returns an error only when
// configuration is invalid or no seed could be reached at all — partial
// fleet reachability is normal operation, not failure.
func (a *Announcer) AnnounceOnce(ctx context.Context) error {
	self, err := normalizePeers([]string{a.Self})
	if err != nil || len(self) != 1 {
		return fmt.Errorf("svc: bad advertise URL %q: %v", a.Self, err)
	}
	seeds, err := normalizePeers(a.Seeds)
	if err != nil {
		return err
	}
	reached := 0
	for _, seed := range seeds {
		if seed == self[0] {
			continue // joining ourselves is a no-op
		}
		if err := a.announceTo(ctx, seed, self[0]); err != nil {
			a.log().Warn("announce failed", "seed", seed, "error", err.Error())
			continue
		}
		reached++
	}
	if reached == 0 && len(seeds) > 0 {
		return fmt.Errorf("svc: announce: no seed of %d reachable", len(seeds))
	}
	return nil
}

// announceTo performs the read-merge-write against one seed and adopts
// its sibling list.
func (a *Announcer) announceTo(ctx context.Context, seed, self string) error {
	status, body, err := a.client().Get(ctx, seed+"/v1/peers")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("GET /v1/peers: status %d", status)
	}
	var doc peersDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("GET /v1/peers: %w", err)
	}
	registered := false
	for _, p := range doc.Peers {
		if p == self {
			registered = true
			break
		}
	}
	if !registered {
		doc.Peers = append(doc.Peers, self)
		payload, err := json.Marshal(doc)
		if err != nil {
			return err
		}
		status, _, err := a.client().Do(ctx, http.MethodPut, seed+"/v1/peers", "application/json", payload)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("PUT /v1/peers: status %d", status)
		}
	}
	// Adopt the seed and everything it knows, except ourselves.
	adopt := []string{seed}
	for _, p := range doc.Peers {
		if p != self {
			adopt = append(adopt, p)
		}
	}
	if err := a.Server.AddPeers(adopt); err != nil {
		return err
	}
	a.log().Info("announced", "seed", seed, "self", self,
		"alreadyRegistered", registered, "fleet", len(a.Server.Peers()))
	return nil
}

// Run announces immediately and then re-announces every interval until
// the context is cancelled, healing seed restarts and late joiners.
func (a *Announcer) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if err := a.AnnounceOnce(ctx); err != nil && ctx.Err() == nil {
			a.log().Warn("announce round failed", "error", err.Error())
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
