// Per-job live event streams: each job carries an eventHub that fans
// out lifecycle ("phase") events, throttled epoch-progress heartbeats,
// and a terminal result/error event to any number of SSE subscribers
// (GET /v1/runs/{id}/events). Phase and terminal events are retained and
// replayed to late subscribers, so attaching after completion still
// yields the full lifecycle; progress heartbeats are ephemeral — only
// the latest is replayed. Publishing never blocks the simulator: sends
// are non-blocking and a subscriber that falls subBuffer events behind
// is disconnected (the SSE response ends; the client may resubscribe).
package svc

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Event kinds, used as the SSE `event:` field.
const (
	EventPhase    = "phase"    // lifecycle transition (PhaseEvent payload)
	EventProgress = "progress" // epoch heartbeat (ProgressEvent payload)
	EventResult   = "result"   // terminal success (JobStatus payload)
	EventError    = "error"    // terminal failure/cancel (JobStatus payload)
)

// Event is one entry in a job's event stream. Seq is strictly
// increasing per job and becomes the SSE `id:` field; Data is a
// compact JSON payload (PhaseEvent, ProgressEvent, or JobStatus).
type Event struct {
	Seq  int64
	Kind string
	Data []byte
}

// PhaseEvent announces a job lifecycle transition. Phases are the job
// states plus the two worker-side sub-states of "running": a job moves
// queued → compiling → running → done|failed|cancelled (cache hits jump
// straight from queued to done).
type PhaseEvent struct {
	Job   string  `json:"job"`
	Phase string  `json:"phase"`
	TMS   float64 `json:"tMs"` // milliseconds since submission
}

// Worker-side phases (the JSON job states double as the rest).
const (
	PhaseCompiling = "compiling"
	PhaseRunning   = "running"
)

// ProgressEvent is a barrier-sampled snapshot of the running
// simulation. All numeric fields are cumulative over the run.
type ProgressEvent struct {
	Job       string `json:"job"`
	Epoch     int64  `json:"epoch"`
	Cycles    int64  `json:"cycles"`
	MaxEpochs int64  `json:"maxEpochs"`

	Reads         int64 `json:"reads"`
	Writes        int64 `json:"writes"`
	ReadMisses    int64 `json:"readMisses"`
	WriteMisses   int64 `json:"writeMisses"`
	Invalidations int64 `json:"invalidations"`

	StreamLoops     int64 `json:"streamLoops,omitempty"`
	StreamFallbacks int64 `json:"streamFallbacks,omitempty"`
	HostParEpochs   int64 `json:"hostparEpochs,omitempty"`
}

// subBuffer is the per-subscriber channel depth; a subscriber this far
// behind is evicted rather than back-pressuring the publisher.
const subBuffer = 64

// eventHub is one job's pub/sub state. The zero value is not usable;
// build with newEventHub.
type eventHub struct {
	clock  func() time.Time
	minGap time.Duration // minimum interval between progress events

	mu       sync.Mutex
	nextSeq  int64
	history  []Event // phase + terminal events, replayed to subscribers
	progress *Event  // latest progress event, replayed after history
	lastProg time.Time
	subs     map[chan Event]struct{}
	closed   bool
}

// newEventHub builds a hub. clock defaults to time.Now; minGap is the
// progress-heartbeat floor (defaults to 250ms when <= 0).
func newEventHub(clock func() time.Time, minGap time.Duration) *eventHub {
	if clock == nil {
		clock = time.Now
	}
	if minGap <= 0 {
		minGap = 250 * time.Millisecond
	}
	return &eventHub{clock: clock, minGap: minGap, subs: make(map[chan Event]struct{})}
}

// publishPhase records and fans out a lifecycle transition.
func (h *eventHub) publishPhase(job, phase string, tMS float64) {
	h.publishRetained(EventPhase, mustJSON(PhaseEvent{Job: job, Phase: phase, TMS: tMS}))
}

// publishProgress fans out a heartbeat, dropping it when the previous
// one is newer than minGap. Progress events are not retained in the
// history (only the most recent survives for replay).
func (h *eventHub) publishProgress(ev ProgressEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	now := h.clock()
	if !h.lastProg.IsZero() && now.Sub(h.lastProg) < h.minGap {
		return
	}
	h.lastProg = now
	e := Event{Seq: h.nextSeq, Kind: EventProgress, Data: mustJSON(ev)}
	h.nextSeq++
	h.progress = &e
	h.fanOutLocked(e)
}

// publishTerminal records and fans out the final event, then closes
// every subscriber channel. Later publishes are no-ops; later
// subscribers get the full history replayed and a closed channel.
func (h *eventHub) publishTerminal(kind string, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	e := Event{Seq: h.nextSeq, Kind: kind, Data: data}
	h.nextSeq++
	h.history = append(h.history, e)
	h.fanOutLocked(e)
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}

// publishRetained appends a non-terminal event to the replay history.
func (h *eventHub) publishRetained(kind string, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	e := Event{Seq: h.nextSeq, Kind: kind, Data: data}
	h.nextSeq++
	h.history = append(h.history, e)
	h.fanOutLocked(e)
}

// fanOutLocked delivers e to every subscriber without blocking; a full
// subscriber is evicted. Caller holds h.mu.
func (h *eventHub) fanOutLocked(e Event) {
	for ch := range h.subs {
		select {
		case ch <- e:
		default:
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// subscribe returns the replayable past (phase events, the latest
// progress snapshot, and the terminal event if any, in seq order) plus
// a live channel for what follows. The channel is closed when the
// stream ends — immediately, for a job that already finished. cancel
// detaches early; it is idempotent and safe after the close.
func (h *eventHub) subscribe() (replay []Event, ch chan Event, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = append(replay, h.history...)
	if h.progress != nil {
		replay = append(replay, *h.progress)
		sort.Slice(replay, func(i, j int) bool { return replay[i].Seq < replay[j].Seq })
	}
	ch = make(chan Event, subBuffer)
	if h.closed {
		close(ch)
		return replay, ch, func() {}
	}
	h.subs[ch] = struct{}{}
	cancel = func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
	}
	return replay, ch, cancel
}

// mustJSON marshals payloads whose types cannot fail to encode.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("svc: event payload: %v", err))
	}
	return b
}
