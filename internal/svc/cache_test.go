package svc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := newLRU[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for k, want := range map[string]int{"a": 1, "c": 3} {
		got, ok := c.Get(k)
		if !ok || got != want {
			t.Fatalf("%s = %d,%v want %d", k, got, ok, want)
		}
	}
	st := c.Stats()
	if st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hits %d misses %d, want 3/1", st.Hits, st.Misses)
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := newLRU[string](2)
	c.Put("a", "1")
	c.Put("b", "2")
	c.Put("a", "1") // refresh, not insert
	c.Put("c", "3") // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived")
	}
	if v, ok := c.Get("a"); !ok || v != "1" {
		t.Fatalf("a = %q,%v", v, ok)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRU[int](32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%48)
				c.Put(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Size > 32 {
		t.Fatalf("size %d over capacity", st.Size)
	}
}

func TestSingleflightCollapses(t *testing.T) {
	var g flightGroup[int]
	var calls atomic.Int64
	gate := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]int, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.Do("key", func() (int, error) {
				calls.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let every goroutine reach Do before releasing the one real call.
	for calls.Load() == 0 {
	}
	close(gate)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}

	// The key is released after completion: a later Do runs fresh.
	_, _, shared := g.Do("key", func() (int, error) {
		calls.Add(1)
		return 7, nil
	})
	if shared || calls.Load() != 2 {
		t.Fatalf("second Do shared=%v calls=%d, want fresh call", shared, calls.Load())
	}
}

func TestSingleflightPropagatesError(t *testing.T) {
	var g flightGroup[int]
	wantErr := fmt.Errorf("boom")
	_, err, _ := g.Do("k", func() (int, error) { return 0, wantErr })
	if err != wantErr {
		t.Fatalf("err = %v", err)
	}
}
