// Prometheus wiring for the job server: every counter the JSON
// /v1/metrics document already tracks is mirrored into a
// telemetry.Registry at scrape time (CounterFunc/GaugeFunc reading the
// same state under the same lock — one source of truth, no drift), and
// the per-run simulation counters are exported as per-scheme deltas by
// a runExporter attached to each job's progress callback.
package svc

import (
	"strconv"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// svcTelemetry holds the pre-registered metric handles the hot paths
// update directly (histograms, singleflight, per-scheme sim counters);
// the scrape-time mirrors are registered once in register().
type svcTelemetry struct {
	// phaseSeconds is tpiserved_job_phase_seconds{phase=queue|compile|run}.
	phaseSeconds *telemetry.HistogramVec
	// coalesced is tpiserved_singleflight_coalesced_total{kind=compile|run}.
	coalesced *telemetry.CounterVec
	// peerRequests is tpiserved_peer_cache_requests_total
	// {outcome=hit|miss|error|invalid}: outbound probes of sibling caches.
	peerRequests *telemetry.CounterVec
	// cacheEndpoint is tpiserved_cache_endpoint_requests_total
	// {outcome=hit|miss|bad_key}: inbound GET /v1/cache/{key} traffic.
	cacheEndpoint *telemetry.CounterVec

	// Per-scheme simulation counters, fed by progress-sample deltas at
	// epoch barriers (see runExporter).
	runAborts       *telemetry.CounterVec
	epochs          *telemetry.CounterVec
	cycles          *telemetry.CounterVec
	reads           *telemetry.CounterVec
	writes          *telemetry.CounterVec
	readMisses      *telemetry.CounterVec
	writeMisses     *telemetry.CounterVec
	invalidations   *telemetry.CounterVec
	coherenceMsgs   *telemetry.CounterVec
	trafficWords    *telemetry.CounterVec
	leaseRenewals   *telemetry.CounterVec
	streamLoops     *telemetry.CounterVec
	streamFallbacks *telemetry.CounterVec
	hostparEpochs   *telemetry.CounterVec
	seqDoallEpochs  *telemetry.CounterVec
	clusterWords    *telemetry.CounterVec
}

// Phase labels for phaseSeconds.
const (
	phaseQueue   = "queue"
	phaseCompile = "compile"
	phaseRun     = "run"
)

// newSvcTelemetry registers the server's metric families on reg and
// returns the handles. Called once from New; reg is never nil.
func newSvcTelemetry(reg *telemetry.Registry, s *Server) *svcTelemetry {
	t := &svcTelemetry{
		phaseSeconds: reg.HistogramVec("tpiserved_job_phase_seconds",
			"Job time spent per phase (queue wait, compile, simulation run).",
			nil, "phase"),
		coalesced: reg.CounterVec("tpiserved_singleflight_coalesced_total",
			"Submissions collapsed onto identical in-flight work, by kind.",
			"kind"),
		peerRequests: reg.CounterVec("tpiserved_peer_cache_requests_total",
			"Outbound probes of sibling workers' content-addressed caches.",
			"outcome"),
		cacheEndpoint: reg.CounterVec("tpiserved_cache_endpoint_requests_total",
			"Inbound GET /v1/cache/{key} requests served to the fleet.",
			"outcome"),
		runAborts: reg.CounterVec("tpisim_run_aborts_total",
			"Simulations that ended early (cancellation, deadline, fault).",
			"scheme"),
		epochs: reg.CounterVec("tpisim_run_epochs_total",
			"Simulated epochs completed, sampled at epoch barriers.", "scheme"),
		cycles: reg.CounterVec("tpisim_run_cycles_total",
			"Simulated cycles elapsed, sampled at epoch barriers.", "scheme"),
		reads: reg.CounterVec("tpisim_reads_total",
			"Shared-data read references simulated.", "scheme"),
		writes: reg.CounterVec("tpisim_writes_total",
			"Shared-data write references simulated.", "scheme"),
		readMisses: reg.CounterVec("tpisim_read_misses_total",
			"Read misses across all miss classes.", "scheme"),
		writeMisses: reg.CounterVec("tpisim_write_misses_total",
			"Write misses across all miss classes.", "scheme"),
		invalidations: reg.CounterVec("tpisim_invalidations_total",
			"Cache-line invalidations performed.", "scheme"),
		coherenceMsgs: reg.CounterVec("tpisim_coherence_messages_total",
			"Coherence protocol messages exchanged.", "scheme"),
		trafficWords: reg.CounterVec("tpisim_traffic_words_total",
			"Interconnect traffic in words.", "scheme"),
		leaseRenewals: reg.CounterVec("tpisim_lease_renewals_total",
			"Tardis timestamp-only lease renewals (no data transfer).", "scheme"),
		streamLoops: reg.CounterVec("tpisim_stream_loops_total",
			"Recognized affine loops executed through stream cursors.", "scheme"),
		streamFallbacks: reg.CounterVec("tpisim_stream_fallbacks_total",
			"Recognized affine loops that fell back to the scalar path.", "scheme"),
		hostparEpochs: reg.CounterVec("tpisim_hostpar_epochs_total",
			"DOALL epochs sharded across host-parallel workers.", "scheme"),
		seqDoallEpochs: reg.CounterVec("tpisim_seq_doall_epochs_total",
			"DOALL epochs dispatched sequentially.", "scheme"),
		clusterWords: reg.CounterVec("tpisim_cluster_home_words_total",
			"Word traffic served by each mesh cluster's home directory/memory slice (mesh topology only).",
			"scheme", "cluster"),
	}
	t.register(reg, s)
	return t
}

// register adds the scrape-time mirrors of the server's JSON metrics.
func (t *svcTelemetry) register(reg *telemetry.Registry, s *Server) {
	outcomes := map[string]func(c counters) int64{
		"submitted":    func(c counters) int64 { return c.Submitted },
		"deduped":      func(c counters) int64 { return c.Deduped },
		"cache_served": func(c counters) int64 { return c.CacheServed },
		"peer_served":  func(c counters) int64 { return c.PeerServed },
		"simulated":    func(c counters) int64 { return c.Simulated },
		"done":         func(c counters) int64 { return c.Done },
		"failed":       func(c counters) int64 { return c.Failed },
		"cancelled":    func(c counters) int64 { return c.Cancelled },
		"rejected":     func(c counters) int64 { return c.Rejected },
	}
	for name, get := range outcomes {
		get := get
		reg.CounterFunc("tpiserved_jobs_total",
			"Cumulative job-flow counts (mirrors /v1/metrics jobs).",
			telemetry.Labels{"outcome": name},
			func() float64 { return float64(get(s.countersSnapshot())) })
	}

	tiers := map[string]func() CacheStats{
		"compile": func() CacheStats { return s.compileCache.Stats() },
		"result":  func() CacheStats { return s.resultCache.Stats() },
	}
	for tier, stats := range tiers {
		stats := stats
		ls := telemetry.Labels{"tier": tier}
		reg.CounterFunc("tpiserved_cache_hits_total",
			"Cache lookups served from the tier.", ls,
			func() float64 { return float64(stats().Hits) })
		reg.CounterFunc("tpiserved_cache_misses_total",
			"Cache lookups that missed the tier.", ls,
			func() float64 { return float64(stats().Misses) })
		reg.CounterFunc("tpiserved_cache_evictions_total",
			"Entries evicted from the tier by capacity pressure.", ls,
			func() float64 { return float64(stats().Evictions) })
		reg.GaugeFunc("tpiserved_cache_entries",
			"Entries currently resident in the tier.", ls,
			func() float64 { return float64(stats().Size) })
		reg.GaugeFunc("tpiserved_cache_capacity",
			"Configured entry bound of the tier.", ls,
			func() float64 { return float64(stats().Capacity) })
	}

	reg.GaugeFunc("tpiserved_uptime_seconds",
		"Seconds since the server started.", nil,
		func() float64 { return time.Since(s.started).Seconds() })
	reg.GaugeFunc("tpiserved_draining",
		"1 while the server is draining, else 0.", nil,
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.draining {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("tpiserved_workers",
		"Configured worker-pool size.", nil,
		func() float64 { return float64(s.opts.Workers) })
	reg.GaugeFunc("tpiserved_workers_busy",
		"Workers currently executing a simulation.", nil,
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.busy)
		})
	reg.GaugeFunc("tpiserved_queue_depth",
		"Jobs waiting in the submission queue.", nil,
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("tpiserved_queue_capacity",
		"Configured submission-queue bound.", nil,
		func() float64 { return float64(s.opts.QueueDepth) })
	reg.GaugeFunc("tpiserved_inflight_runs",
		"Distinct result keys with a live (queued or running) job.", nil,
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.inflight))
		})
}

// runExporter feeds one job's progress samples into the per-scheme
// counters (as deltas between consecutive cumulative snapshots) and the
// job's event hub. It runs on the simulating goroutine only, so prev
// needs no lock. Counter handles are resolved once, not per sample.
type runExporter struct {
	jobID  string
	scheme string
	hub    *eventHub
	prev   sim.Progress

	aborts          *telemetry.Counter
	epochs          *telemetry.Counter
	cycles          *telemetry.Counter
	reads           *telemetry.Counter
	writes          *telemetry.Counter
	readMisses      *telemetry.Counter
	writeMisses     *telemetry.Counter
	invalidations   *telemetry.Counter
	coherenceMsgs   *telemetry.Counter
	trafficWords    *telemetry.Counter
	leaseRenewals   *telemetry.Counter
	streamLoops     *telemetry.Counter
	streamFallbacks *telemetry.Counter
	hostparEpochs   *telemetry.Counter
	seqDoallEpochs  *telemetry.Counter

	// clusterWords handles are resolved on the first sample that carries
	// mesh cluster traffic (the cluster count is a run property, unknown
	// when the exporter is built); non-mesh runs never touch them.
	clusterVec   *telemetry.CounterVec
	clusterWords []*telemetry.Counter
}

// newRunExporter resolves the scheme's counter handles for one run.
func (t *svcTelemetry) newRunExporter(jobID, scheme string, hub *eventHub) *runExporter {
	return &runExporter{
		jobID:           jobID,
		scheme:          scheme,
		hub:             hub,
		aborts:          t.runAborts.With(scheme),
		epochs:          t.epochs.With(scheme),
		cycles:          t.cycles.With(scheme),
		reads:           t.reads.With(scheme),
		writes:          t.writes.With(scheme),
		readMisses:      t.readMisses.With(scheme),
		writeMisses:     t.writeMisses.With(scheme),
		invalidations:   t.invalidations.With(scheme),
		coherenceMsgs:   t.coherenceMsgs.With(scheme),
		trafficWords:    t.trafficWords.With(scheme),
		leaseRenewals:   t.leaseRenewals.With(scheme),
		streamLoops:     t.streamLoops.With(scheme),
		streamFallbacks: t.streamFallbacks.With(scheme),
		hostparEpochs:   t.hostparEpochs.With(scheme),
		seqDoallEpochs:  t.seqDoallEpochs.With(scheme),
		clusterVec:      t.clusterWords,
	}
}

// exportClusters mirrors per-cluster home-traffic deltas for mesh runs,
// resolving the per-cluster handles on first use. Cluster labels are the
// decimal cluster index, so a hot-spotted home slice stands out on
// /metrics.
func (e *runExporter) exportClusters(p sim.Progress) {
	if len(p.ClusterWords) == 0 {
		return
	}
	if e.clusterWords == nil {
		e.clusterWords = make([]*telemetry.Counter, len(p.ClusterWords))
		for i := range e.clusterWords {
			e.clusterWords[i] = e.clusterVec.With(e.scheme, strconv.Itoa(i))
		}
	}
	for i, v := range p.ClusterWords {
		var prev int64
		if i < len(e.prev.ClusterWords) {
			prev = e.prev.ClusterWords[i]
		}
		e.clusterWords[i].Add(v - prev)
	}
}

// sample is the sim.ProgressFunc: export counter deltas, then hand the
// cumulative snapshot to the hub (which applies its own heartbeat
// throttle before fanning out to SSE subscribers).
func (e *runExporter) sample(p sim.Progress) {
	e.epochs.Add(p.Epoch - e.prev.Epoch)
	e.cycles.Add(p.Cycles - e.prev.Cycles)
	e.reads.Add(p.Counters.Reads - e.prev.Counters.Reads)
	e.writes.Add(p.Counters.Writes - e.prev.Counters.Writes)
	e.readMisses.Add(p.Counters.ReadMisses - e.prev.Counters.ReadMisses)
	e.writeMisses.Add(p.Counters.WriteMisses - e.prev.Counters.WriteMisses)
	e.invalidations.Add(p.Counters.Invalidations - e.prev.Counters.Invalidations)
	e.coherenceMsgs.Add(p.Counters.CoherenceMsgs - e.prev.Counters.CoherenceMsgs)
	e.trafficWords.Add(p.Counters.TrafficWords - e.prev.Counters.TrafficWords)
	e.leaseRenewals.Add(p.Counters.LeaseRenewals - e.prev.Counters.LeaseRenewals)
	e.streamLoops.Add(p.StreamLoops - e.prev.StreamLoops)
	e.streamFallbacks.Add(p.StreamFallbacks - e.prev.StreamFallbacks)
	e.hostparEpochs.Add(p.HostParEpochs - e.prev.HostParEpochs)
	e.seqDoallEpochs.Add(p.SeqDoallEpochs - e.prev.SeqDoallEpochs)
	e.exportClusters(p)
	e.prev = p
	if p.Aborted {
		e.aborts.Inc()
	}
	e.hub.publishProgress(ProgressEvent{
		Job:             e.jobID,
		Epoch:           p.Epoch,
		Cycles:          p.Cycles,
		MaxEpochs:       p.MaxEpochs,
		Reads:           p.Counters.Reads,
		Writes:          p.Counters.Writes,
		ReadMisses:      p.Counters.ReadMisses,
		WriteMisses:     p.Counters.WriteMisses,
		Invalidations:   p.Counters.Invalidations,
		StreamLoops:     p.StreamLoops,
		StreamFallbacks: p.StreamFallbacks,
		HostParEpochs:   p.HostParEpochs,
	})
}
