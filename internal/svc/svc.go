// Package svc is the simulation-as-a-service subsystem: a long-lived job
// server that amortizes what the one-shot CLIs rebuild on every
// invocation. It exposes an HTTP JSON API (POST /v1/runs, GET and DELETE
// /v1/runs/{id}, GET /v1/healthz, GET /v1/metrics) backed by
//
//   - a bounded worker pool over a bounded submission queue,
//   - a content-addressed two-tier cache — a compile cache keyed by
//     sha256(source, CompileOptions) holding *core.Compiled, and a result
//     cache keyed by sha256(compile key, canonical machine.Config,
//     obs.Level, program label) holding core.RunResult JSON,
//   - singleflight collapsing of concurrent identical submissions, so a
//     thundering herd of equal requests costs one simulation, and
//   - cancellable, deadline-carrying runs: the simulator checks the job
//     context at every epoch barrier and a cancelled run releases its
//     pooled caches through the memsys.Releaser hook.
//
// The daemon wrapper is cmd/tpiserved; cmd/tpiload is the load generator
// used by the benchmark and the CI smoke test. docs/SERVICE.md is the
// API reference.
package svc

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
)

// RunRequest is the POST /v1/runs payload. Exactly one of Source or
// Kernel selects the program; everything else is optional.
type RunRequest struct {
	// Source is inline PFL source text.
	Source string `json:"source,omitempty"`
	// Kernel names a built-in benchmark kernel (see internal/bench),
	// sized by N and Steps (defaults 24 and 2, the unit-test size).
	Kernel string `json:"kernel,omitempty"`
	N      int    `json:"n,omitempty"`
	Steps  int    `json:"steps,omitempty"`

	// Scheme is the coherence scheme (BASE, SC, TPI, HW, VC, TARDIS,
	// TARDIS2; default
	// TPI). The machine defaults for that scheme seed the config.
	Scheme string `json:"scheme,omitempty"`
	// Config holds machine.Config field overrides as a JSON object
	// (Go field names, unknown fields rejected), merged over
	// machine.Default(scheme). Overriding Scheme here is an error —
	// set it at the top level.
	Config json.RawMessage `json:"config,omitempty"`
	// PadScalars is the compile-time false-sharing mitigation
	// (tpisim -padscalars).
	PadScalars bool `json:"padScalars,omitempty"`

	// Obs selects the instrumentation level: "off" (default) or
	// "counters". "trace" needs a local trace sink and is not served.
	Obs string `json:"obs,omitempty"`

	// TimeoutMS bounds the job from submission (queue time included).
	// 0 applies the server default.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`

	// Async makes POST return 202 with the job id immediately instead
	// of waiting for completion; poll GET /v1/runs/{id}.
	Async bool `json:"async,omitempty"`
}

// resolved is a validated request bound to concrete simulation inputs
// and its two cache identities.
type resolved struct {
	program string // label stored in the RunResult ("ocean", "pfl")
	src     string
	cfg     machine.Config
	copts   core.CompileOptions
	level   obs.Level
	timeout time.Duration

	compileKey string
	resultKey  string
}

// resolve validates a request and computes its cache keys.
func resolve(req *RunRequest) (*resolved, error) {
	r := &resolved{}
	switch {
	case req.Source != "" && req.Kernel != "":
		return nil, fmt.Errorf("svc: request has both source and kernel; pick one")
	case req.Source != "":
		r.program = "pfl"
		r.src = req.Source
	case req.Kernel != "":
		n, steps := req.N, req.Steps
		if n == 0 {
			n = bench.DefaultParams().N
		}
		if steps == 0 {
			steps = bench.DefaultParams().Steps
		}
		if n < 2 || steps < 1 {
			return nil, fmt.Errorf("svc: kernel size out of range: n=%d steps=%d", n, steps)
		}
		k, err := bench.Get(req.Kernel, bench.Params{N: n, Steps: steps})
		if err != nil {
			return nil, fmt.Errorf("svc: %w", err)
		}
		r.program = k.Name
		r.src = k.Source
	default:
		return nil, fmt.Errorf("svc: request needs source or kernel")
	}

	schemeName := req.Scheme
	if schemeName == "" {
		schemeName = "TPI"
	}
	scheme, err := machine.ParseScheme(schemeName)
	if err != nil {
		return nil, fmt.Errorf("svc: %w", err)
	}
	cfg := machine.Default(scheme)
	if len(req.Config) > 0 {
		cfg, err = machine.ParseConfig(req.Config, cfg)
		if err != nil {
			return nil, fmt.Errorf("svc: %w", err)
		}
		if cfg.Scheme != scheme {
			return nil, fmt.Errorf("svc: config overrides Scheme; set it at the top level")
		}
	}
	r.cfg = cfg.Canonical()

	switch strings.ToLower(req.Obs) {
	case "", "off":
		r.level = obs.LevelOff
	case "counters":
		r.level = obs.LevelCounters
	case "trace":
		return nil, fmt.Errorf("svc: obs level %q needs a local trace sink; use tpisim -btrace", req.Obs)
	default:
		return nil, fmt.Errorf("svc: unknown obs level %q (want off or counters)", req.Obs)
	}

	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("svc: negative timeoutMs %d", req.TimeoutMS)
	}
	r.timeout = time.Duration(req.TimeoutMS) * time.Millisecond

	r.copts = core.CompileOptions{
		Interproc:      r.cfg.Interproc,
		FirstReadReuse: r.cfg.FirstReadReuse,
		AlignWords:     int64(r.cfg.LineWords),
		PadScalars:     req.PadScalars,
	}
	r.compileKey = core.CompileKey(r.src, r.copts)
	cfgHash, err := r.cfg.Hash()
	if err != nil {
		return nil, fmt.Errorf("svc: %w", err)
	}
	sum := sha256.Sum256([]byte(r.compileKey + "\x00" + cfgHash + "\x00" +
		fmt.Sprint(int(r.level)) + "\x00" + r.program))
	r.resultKey = hex.EncodeToString(sum[:])
	return r, nil
}

// RequestKey resolves a request to its content-addressed result key:
// the hex sha256 the server caches the marshaled RunResult under and
// serves raw on GET /v1/cache/{key}. Sweep coordinators use it to probe
// fleet caches (or dedupe grid points) without submitting work. The
// request is fully validated on the way.
func RequestKey(req *RunRequest) (string, error) {
	res, err := resolve(req)
	if err != nil {
		return "", err
	}
	return res.resultKey, nil
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobStatus is the JSON view of a job returned by POST and GET.
type JobStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Program string `json:"program"`
	Scheme  string `json:"scheme"`
	// Cached means the result was served from the result cache (local or
	// a peer's) without running a simulation.
	Cached bool `json:"cached,omitempty"`
	// Peer means the cached result was fetched from a sibling worker's
	// content-addressed cache (GET /v1/cache/{key}) instead of simulated
	// locally; Cached is also set.
	Peer bool `json:"peer,omitempty"`
	// Deduped means this submission was collapsed onto an already
	// in-flight identical job (whose id it shares).
	Deduped bool    `json:"deduped,omitempty"`
	Error   string  `json:"error,omitempty"`
	QueueMS float64 `json:"queueMs"`
	RunMS   float64 `json:"runMs"`
	// Result is the core.RunResult JSON of a done job — byte-identical
	// to what a local run of the same (program, config, obs) produces.
	Result json.RawMessage `json:"result,omitempty"`
}

// job is one submitted run. The immutable fields are set at creation;
// everything mutable is guarded by mu. done is closed exactly once when
// the job reaches a terminal state.
type job struct {
	id        string
	res       *resolved
	submitted time.Time
	ctx       context.Context
	cancel    context.CancelFunc
	hub       *eventHub // live event stream; never nil

	mu       sync.Mutex
	state    string
	err      error
	result   []byte
	cached   bool
	peer     bool
	started  time.Time
	finished time.Time
	done     chan struct{}
}

func newJob(id string, res *resolved, base context.Context, defaultTimeout time.Duration, hub *eventHub) *job {
	timeout := res.timeout
	if timeout == 0 {
		timeout = defaultTimeout
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(base, timeout)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	j := &job{
		id:        id,
		res:       res,
		submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		hub:       hub,
		state:     StateQueued,
		done:      make(chan struct{}),
	}
	hub.publishPhase(id, StateQueued, 0)
	return j
}

// start transitions queued → running; it reports false if the job is
// already terminal (cancelled while queued).
func (j *job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish moves the job to a terminal state; the first call wins and
// reports true, later calls are no-ops reporting false. The winning
// call publishes the terminal phase and result/error events and closes
// the event stream (the hub lock is a leaf — safe under j.mu).
func (j *job) finish(state string, result []byte, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone, StateFailed, StateCancelled:
		return false
	}
	if j.started.IsZero() {
		j.started = time.Now()
	}
	j.state = state
	j.result = result
	j.err = err
	j.finished = time.Now()
	j.cancel() // release the timer; the run is over
	j.hub.publishPhase(j.id, state, msSince(j.submitted, j.finished))
	kind := EventResult
	if state != StateDone {
		kind = EventError
	}
	j.hub.publishTerminal(kind, mustJSON(j.statusLocked(false)))
	close(j.done)
	return true
}

// terminal reports whether the job has finished, in any way.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateDone || j.state == StateFailed || j.state == StateCancelled
}

// status renders the job's JSON view. deduped marks responses for
// submissions that attached to this job rather than creating it.
func (j *job) status(deduped bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(deduped)
}

// statusLocked renders the status with j.mu already held.
func (j *job) statusLocked(deduped bool) JobStatus {
	st := JobStatus{
		ID:      j.id,
		State:   j.state,
		Program: j.res.program,
		Scheme:  j.res.cfg.Scheme.String(),
		Cached:  j.cached,
		Peer:    j.peer,
		Deduped: deduped,
		Result:  j.result,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	switch {
	case j.started.IsZero():
		st.QueueMS = msSince(j.submitted, time.Now())
	default:
		st.QueueMS = msSince(j.submitted, j.started)
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.RunMS = msSince(j.started, end)
	}
	return st
}

func msSince(from, to time.Time) float64 {
	return float64(to.Sub(from)) / float64(time.Millisecond)
}
