package svc

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler returns the HTTP API:
//
//	POST   /v1/runs       submit a RunRequest; waits for completion
//	                      unless async, then 202 + job id
//	GET    /v1/runs/{id}  job status (with result once done)
//	DELETE /v1/runs/{id}  cancel a queued or running job
//	GET    /v1/healthz    {"status":"ok"} or 503 {"status":"draining"}
//	GET    /v1/metrics    Metrics JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "svc: request JSON: "+err.Error())
		return
	}

	jb, deduped, apiErr := s.Submit(&req)
	if apiErr != nil {
		writeError(w, apiErr.code, apiErr.msg)
		return
	}
	if req.Async {
		writeStatus(w, jb.status(deduped))
		return
	}
	writeStatus(w, s.Wait(r.Context(), jb, deduped))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "svc: unknown job "+r.PathValue("id"))
		return
	}
	writeStatus(w, jb.status(false))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "svc: unknown job "+r.PathValue("id"))
		return
	}
	writeStatus(w, jb.status(false))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.MetricsSnapshot())
}

// writeStatus renders a job status: 200 once terminal, 202 while the
// job is still queued or running (async submissions and polls).
func writeStatus(w http.ResponseWriter, st JobStatus) {
	w.Header().Set("Content-Type", "application/json")
	switch st.State {
	case StateDone, StateFailed, StateCancelled:
		w.WriteHeader(http.StatusOK)
	default:
		w.WriteHeader(http.StatusAccepted)
	}
	json.NewEncoder(w).Encode(st)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
