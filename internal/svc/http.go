package svc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Handler returns the HTTP API:
//
//	POST   /v1/runs              submit a RunRequest; waits for completion
//	                             unless async, then 202 + job id
//	GET    /v1/runs/{id}         job status (with result once done)
//	GET    /v1/runs/{id}/events  live SSE stream: phase transitions,
//	                             epoch-progress heartbeats, terminal
//	                             result/error event
//	DELETE /v1/runs/{id}         cancel a queued or running job
//	GET    /v1/cache/{key}       raw cached RunResult bytes by content
//	                             address (the fleet's peer-fetch protocol);
//	                             404 on a miss, never triggers work
//	GET    /v1/peers             current sibling list
//	PUT    /v1/peers             replace the sibling list: {"peers":[...]}
//	GET    /v1/healthz           {"status":"ok"} or 503 {"status":"draining"}
//	GET    /v1/metrics           Metrics JSON (?format=prometheus for text)
//	GET    /metrics              Prometheus text exposition
//
// GET /v1/runs/{id} and GET /v1/cache/{key} honor Accept-Encoding: gzip
// for bodies of gzipMinBytes or more.
//
// Every response carries an X-Request-ID header (echoed from the
// request when present) that also tags the Debug-level access log.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	mux.HandleFunc("GET /v1/peers", s.handlePeersGet)
	mux.HandleFunc("PUT /v1/peers", s.handlePeersPut)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics", s.handlePrometheus)
	return s.withRequestID(mux)
}

// reqSeq mints fallback request ids (shared across servers; the ids
// only need to be unique, not dense).
var reqSeq atomic.Int64

// withRequestID assigns each request an id, echoes it on the response,
// and emits a Debug access log with method, path, status, and duration.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("q-%06d", reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		s.log.Debug("http request", "reqId", id, "method", r.Method,
			"path", r.URL.Path, "status", sw.status,
			"durMs", float64(time.Since(t0))/float64(time.Millisecond))
	})
}

// statusWriter records the response status for the access log while
// passing http.Flusher through — the SSE handler needs to flush.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "svc: request JSON: "+err.Error())
		return
	}

	jb, deduped, apiErr := s.Submit(&req)
	if apiErr != nil {
		writeError(w, apiErr.code, apiErr.msg)
		return
	}
	if req.Async {
		writeStatus(w, jb.status(deduped))
		return
	}
	writeStatus(w, s.Wait(r.Context(), jb, deduped))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "svc: unknown job "+r.PathValue("id"))
		return
	}
	st := jb.status(false)
	code := http.StatusAccepted
	switch st.State {
	case StateDone, StateFailed, StateCancelled:
		code = http.StatusOK
	}
	body, err := json.Marshal(st)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "svc: marshal status: "+err.Error())
		return
	}
	body = append(body, '\n')
	writeBodyMaybeGzip(w, r, code, "application/json", body)
}

// handleCacheGet serves raw cached result bytes by content address —
// the peer-fetch protocol. Misses are cheap 404s (Peek counts no
// tier-level miss, so fleet probes cannot distort the submission-path
// hit rate); a hit refreshes the entry's recency, keeping results the
// fleet actually shares resident longest.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validCacheKey(key) {
		s.tel.cacheEndpoint.With("bad_key").Inc()
		writeError(w, http.StatusBadRequest, "svc: cache key must be 64 hex characters")
		return
	}
	b, ok := s.resultCache.Peek(key)
	if !ok {
		s.tel.cacheEndpoint.With("miss").Inc()
		writeError(w, http.StatusNotFound, "svc: no cached result for key")
		return
	}
	s.tel.cacheEndpoint.With("hit").Inc()
	writeBodyMaybeGzip(w, r, http.StatusOK, "application/json", b)
}

// validCacheKey reports whether key looks like a hex sha256 — the only
// shape resultKey ever takes.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// peersDoc is the GET/PUT /v1/peers payload.
type peersDoc struct {
	Peers []string `json:"peers"`
}

func (s *Server) handlePeersGet(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(peersDoc{Peers: s.Peers()})
}

func (s *Server) handlePeersPut(w http.ResponseWriter, r *http.Request) {
	var doc peersDoc
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		writeError(w, http.StatusBadRequest, "svc: peers JSON: "+err.Error())
		return
	}
	if err := s.SetPeers(doc.Peers); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.log.Info("peer list updated", "peers", len(s.Peers()))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(peersDoc{Peers: s.Peers()})
}

// handleEvents streams a job's event hub as Server-Sent Events. The
// replayable past (phases, latest progress, terminal event) is written
// first, then live events until the job finishes or the client goes
// away. Event ids are the per-job sequence numbers, so a reconnecting
// client can detect gaps.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "svc: unknown job "+r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "svc: response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	replay, ch, cancel := jb.hub.subscribe()
	defer cancel()
	for _, e := range replay {
		writeSSE(w, e)
	}
	fl.Flush()
	for {
		select {
		case e, open := <-ch:
			if !open {
				return // terminal event delivered (or subscriber evicted)
			}
			writeSSE(w, e)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one event frame. Payloads are compact JSON (no
// newlines), so a single data: line suffices.
func writeSSE(w http.ResponseWriter, e Event) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, e.Data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "svc: unknown job "+r.PathValue("id"))
		return
	}
	s.log.Info("job cancel requested", "job", jb.id)
	writeStatus(w, jb.status(false))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// handleMetrics serves the JSON metrics document. ?format=prometheus is
// an alias for GET /metrics — the JSON document is kept for scripts but
// the Prometheus endpoint is what fleet scrapers should use (see
// docs/SERVICE.md).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		s.handlePrometheus(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.MetricsSnapshot())
}

// handlePrometheus serves the registry in Prometheus text format 0.0.4.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	s.reg.WritePrometheus(w)
}

// writeStatus renders a job status: 200 once terminal, 202 while the
// job is still queued or running (async submissions and polls).
func writeStatus(w http.ResponseWriter, st JobStatus) {
	w.Header().Set("Content-Type", "application/json")
	switch st.State {
	case StateDone, StateFailed, StateCancelled:
		w.WriteHeader(http.StatusOK)
	default:
		w.WriteHeader(http.StatusAccepted)
	}
	json.NewEncoder(w).Encode(st)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
