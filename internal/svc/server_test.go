package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/machine"
	"repro/internal/obs"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

// postRun submits a request and decodes the response.
func postRun(t *testing.T, hs *httptest.Server, req RunRequest) (int, JobStatus) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode response (HTTP %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, st
}

// longSrc runs a few hundred thousand epochs: long enough that a
// deadline or cancellation always lands mid-run.
const longSrc = `
program longrun
param n = 16
array A[n]
proc main() {
  doall i = 0 to n-1 { A[i] = i }
  for t = 0 to 300000 {
    doall i = 0 to n-1 { A[i] = A[i] + 1.0 }
  }
}
`

// TestServerResultMatchesDirectRun is the fidelity contract: the result
// JSON the server returns is byte-identical to marshaling the RunResult
// of a direct in-process run of the same (program, config, obs) — the
// same bytes `tpisim -json` renders for that run.
func TestServerResultMatchesDirectRun(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 2})
	for _, scheme := range []string{"BASE", "TPI", "HW"} {
		for _, level := range []string{"off", "counters"} {
			code, st := postRun(t, hs, RunRequest{Kernel: "ocean", Scheme: scheme, Obs: level})
			if code != http.StatusOK || st.State != StateDone {
				t.Fatalf("%s/%s: HTTP %d state %s error %q", scheme, level, code, st.State, st.Error)
			}

			sc, err := machine.ParseScheme(scheme)
			if err != nil {
				t.Fatal(err)
			}
			cfg := machine.Default(sc).Canonical()
			k, err := bench.Get("ocean", bench.DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			c, err := core.CompileForConfig(k.Source, cfg)
			if err != nil {
				t.Fatal(err)
			}
			lv := obs.LevelOff
			if level == "counters" {
				lv = obs.LevelCounters
			}
			stats, rep, err := core.RunObserved(c, cfg, lv, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(core.NewRunResult("ocean", cfg, stats, rep))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(st.Result, want) {
				t.Fatalf("%s/%s: server result differs from direct run:\nserver %s\ndirect %s",
					scheme, level, st.Result, want)
			}
		}
	}
}

func TestResultCacheHit(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 2})
	req := RunRequest{Kernel: "trfd", Scheme: "SC"}

	_, first := postRun(t, hs, req)
	if first.State != StateDone || first.Cached {
		t.Fatalf("first run: state %s cached %v error %q", first.State, first.Cached, first.Error)
	}
	_, second := postRun(t, hs, req)
	if second.State != StateDone || !second.Cached {
		t.Fatalf("second run not served from cache: %+v", second)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cached result differs from the computed one")
	}
	m := s.MetricsSnapshot()
	if m.Jobs.Simulated != 1 {
		t.Fatalf("Simulated = %d, want 1", m.Jobs.Simulated)
	}
	if m.ResultCache.Hits == 0 {
		t.Fatalf("result cache recorded no hits: %+v", m.ResultCache)
	}
}

// TestSingleflightDedup is the thundering-herd contract: concurrent
// identical submissions cost exactly one underlying simulation.
func TestSingleflightDedup(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 4})
	const herd = 8
	req := RunRequest{Kernel: "ocean", N: 32, Steps: 3, Scheme: "TPI"}

	var wg sync.WaitGroup
	stats := make([]JobStatus, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, stats[i] = postRun(t, hs, req)
		}(i)
	}
	wg.Wait()

	for i, st := range stats {
		if st.State != StateDone {
			t.Fatalf("submission %d: state %s error %q", i, st.State, st.Error)
		}
		if !bytes.Equal(st.Result, stats[0].Result) {
			t.Fatalf("submission %d result differs", i)
		}
	}
	m := s.MetricsSnapshot()
	if m.Jobs.Simulated != 1 {
		t.Fatalf("herd of %d cost %d simulations, want 1 (metrics %+v)", herd, m.Jobs.Simulated, m.Jobs)
	}
	if m.Jobs.Deduped+m.Jobs.CacheServed != herd-1 {
		t.Fatalf("deduped %d + cacheServed %d, want %d", m.Jobs.Deduped, m.Jobs.CacheServed, herd-1)
	}
}

// TestDeadlineJobReturnsPromptly: a job whose deadline expires mid-run
// reaches its terminal state within 100ms of the deadline (the watchdog
// releases waiters; the simulation aborts at the next epoch barrier and
// releases its pooled caches), and the server keeps serving correct
// results afterwards.
func TestDeadlineJobReturnsPromptly(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 2})
	const deadline = 100 * time.Millisecond

	start := time.Now()
	code, st := postRun(t, hs, RunRequest{Source: longSrc, Scheme: "TPI", TimeoutMS: deadline.Milliseconds()})
	elapsed := time.Since(start)
	if code != http.StatusOK || st.State != StateFailed {
		t.Fatalf("HTTP %d state %s error %q", code, st.State, st.Error)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("error does not name the deadline: %q", st.Error)
	}
	if elapsed > deadline+100*time.Millisecond {
		t.Fatalf("deadline job returned after %v (deadline %v + 100ms)", elapsed, deadline)
	}

	// Pooled state survived the abort: the next run is correct.
	code, st = postRun(t, hs, RunRequest{Kernel: "ocean", Scheme: "TPI"})
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("run after aborted job: HTTP %d state %s error %q", code, st.State, st.Error)
	}
}

func TestCancelEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})
	_, st := postRun(t, hs, RunRequest{Source: longSrc, Scheme: "TPI", Async: true})
	if st.State == StateFailed {
		t.Fatalf("async submit failed: %q", st.Error)
	}

	req, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/runs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/v1/runs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got.State == StateCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not cancelled in time; state %s", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainFinishesInFlight: SIGTERM semantics — draining stops new
// submissions but completes what is already in flight.
func TestDrainFinishesInFlight(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 2})
	jb, _, apiErr := s.Submit(&RunRequest{Kernel: "ocean", N: 32, Steps: 3, Scheme: "TPI"})
	if apiErr != nil {
		t.Fatal(apiErr)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := jb.status(false); st.State != StateDone {
		t.Fatalf("in-flight job after drain: state %s error %q", st.State, st.Error)
	}

	// New submissions are rejected and healthz reports draining.
	code, _ := postRunCode(t, hs, RunRequest{Kernel: "ocean", Scheme: "TPI", N: 20})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d, want 503", code)
	}
	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: HTTP %d, want 503", resp.StatusCode)
	}
}

// TestDrainDeadlineCancelsStragglers: when the drain deadline passes,
// in-flight jobs are cancelled (abort at the next epoch barrier) and
// Drain still returns with the pool stopped.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	s, _ := newTestServer(t, Options{Workers: 1})
	jb, _, apiErr := s.Submit(&RunRequest{Source: longSrc, Scheme: "TPI"})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	// Let the worker pick it up so the drain really interrupts a run.
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Drain(ctx)
	if err == nil {
		t.Fatal("drain within 50ms of a multi-second job should report the deadline")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("drain took %v after its deadline", elapsed)
	}
	if st := jb.status(false); st.State != StateCancelled && st.State != StateFailed {
		t.Fatalf("straggler state %s, want cancelled/failed", st.State)
	}
}

func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		req  RunRequest
		code int
	}{
		{"no program", RunRequest{Scheme: "TPI"}, http.StatusBadRequest},
		{"both programs", RunRequest{Kernel: "ocean", Source: "program x"}, http.StatusBadRequest},
		{"unknown kernel", RunRequest{Kernel: "nope"}, http.StatusBadRequest},
		{"unknown scheme", RunRequest{Kernel: "ocean", Scheme: "MESI"}, http.StatusBadRequest},
		{"unknown config field", RunRequest{Kernel: "ocean", Config: json.RawMessage(`{"LineWord": 8}`)}, http.StatusBadRequest},
		{"invalid config", RunRequest{Kernel: "ocean", Config: json.RawMessage(`{"Procs": -1}`)}, http.StatusBadRequest},
		{"procs over limit", RunRequest{Kernel: "ocean", Scheme: "HW", Config: json.RawMessage(`{"Procs": 65536}`)}, http.StatusBadRequest},
		{"cluster size off mesh", RunRequest{Kernel: "ocean", Config: json.RawMessage(`{"ClusterSize": 4}`)}, http.StatusBadRequest},
		{"scheme in config", RunRequest{Kernel: "ocean", Scheme: "TPI", Config: json.RawMessage(`{"Scheme": "HW"}`)}, http.StatusBadRequest},
		{"obs trace", RunRequest{Kernel: "ocean", Obs: "trace"}, http.StatusBadRequest},
		{"bad source", RunRequest{Source: "this is not PFL"}, http.StatusOK}, // compile errors are job failures
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, st := postRun(t, hs, tc.req)
			if code != tc.code {
				t.Fatalf("HTTP %d, want %d (status %+v)", code, tc.code, st)
			}
			if tc.code == http.StatusOK && st.State != StateFailed {
				t.Fatalf("compile-error job state %s, want failed", st.State)
			}
		})
	}

	resp, err := http.Get(hs.URL + "/v1/runs/r-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestLargePMeshRun: a config past the 64-processor presence word on the
// clustered mesh topology runs to completion through the service (the
// worker must not crash where directory.New once panicked) and returns a
// result that passes the structural validator.
func TestLargePMeshRun(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})
	code, st := postRun(t, hs, RunRequest{
		Kernel: "ocean", N: 16, Steps: 1, Scheme: "HW",
		Config: json.RawMessage(`{"Procs": 128, "Topology": "mesh", "ClusterSize": 8}`),
	})
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("HTTP %d state %s error %q", code, st.State, st.Error)
	}
	if _, err := exper.ValidateRunResult(st.Result); err != nil {
		t.Fatalf("result fails validation: %v", err)
	}
}

// TestConfigOverridesChangeResults: config overrides reach the
// simulation and distinct configs get distinct cache entries.
func TestConfigOverridesChangeResults(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 2})
	_, def := postRun(t, hs, RunRequest{Kernel: "ocean", Scheme: "TPI"})
	_, big := postRun(t, hs, RunRequest{Kernel: "ocean", Scheme: "TPI",
		Config: json.RawMessage(`{"Procs": 32}`)})
	if def.State != StateDone || big.State != StateDone {
		t.Fatalf("states %s / %s", def.State, big.State)
	}
	if bytes.Equal(def.Result, big.Result) {
		t.Fatal("Procs override did not change the result")
	}
	var rr core.RunResult
	if err := json.Unmarshal(big.Result, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Procs != 32 {
		t.Fatalf("result procs %d, want 32", rr.Procs)
	}
	if m := s.MetricsSnapshot(); m.Jobs.Simulated != 2 {
		t.Fatalf("Simulated = %d, want 2", m.Jobs.Simulated)
	}
}

// TestCompileCacheSharedAcrossSchemes: the compile tier is keyed by
// (source, compile options), so the same kernel under BASE/SC/TPI (same
// line size ⇒ same compile options) compiles once.
func TestCompileCacheSharedAcrossSchemes(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1})
	for _, scheme := range []string{"BASE", "SC", "TPI"} {
		if _, st := postRun(t, hs, RunRequest{Kernel: "flo52", Scheme: scheme}); st.State != StateDone {
			t.Fatalf("%s: state %s error %q", scheme, st.State, st.Error)
		}
	}
	m := s.MetricsSnapshot()
	if m.CompileCache.Misses != 1 || m.CompileCache.Hits < 2 {
		t.Fatalf("compile cache hits %d misses %d, want 1 miss and >= 2 hits",
			m.CompileCache.Hits, m.CompileCache.Misses)
	}
}

func postRunCode(t *testing.T, hs *httptest.Server, req RunRequest) (int, JobStatus) {
	t.Helper()
	return postRun(t, hs, req)
}
