package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/telemetry"
)

// Options sizes the server. Zero values select the defaults noted on
// each field.
type Options struct {
	// Workers is the worker-pool size — the maximum number of
	// simulations in flight (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the submission queue; a full queue rejects with
	// 429 rather than buffering unboundedly (default 256).
	QueueDepth int
	// CompileCacheEntries bounds the compile tier (default 128).
	CompileCacheEntries int
	// ResultCacheEntries bounds the result tier (default 4096).
	ResultCacheEntries int
	// DefaultTimeout applies to jobs that carry no timeoutMs, measured
	// from submission (default 5m; <0 disables).
	DefaultTimeout time.Duration
	// MaxBodyBytes bounds POST bodies (default 8 MiB).
	MaxBodyBytes int64
	// JobHistory is how many finished jobs stay queryable by id
	// (default 4096).
	JobHistory int
	// Logger receives the server's structured logs (default: discard).
	// Job lifecycle logs at Info, per-request access logs at Debug.
	Logger *slog.Logger
	// Registry receives the server's Prometheus metrics (default: a
	// fresh private registry). Pass a shared registry to co-expose
	// process-level metrics (telemetry.RegisterRuntimeMetrics).
	Registry *telemetry.Registry
	// HeartbeatInterval is the floor between progress events on a job's
	// SSE stream (default 250ms). Progress is sampled at epoch barriers
	// and dropped when it arrives faster than this.
	HeartbeatInterval time.Duration
	// Peers lists sibling workers' base URLs (e.g. "http://host:8080").
	// Before simulating a result-cache miss, the server probes each
	// peer's GET /v1/cache/{key}; a hit is adopted into the local cache
	// and served without simulating. Updatable at runtime via SetPeers
	// (PUT /v1/peers).
	Peers []string
	// PeerTimeout bounds each individual peer probe (default 2s). Probes
	// are best-effort: a slow or dead peer must not cost more than this
	// before the job falls back to the next peer or local simulation.
	PeerTimeout time.Duration
	// PeerClient issues the peer probes (default: an httpx client with
	// PeerTimeout and no retries — a peer miss is answered locally, not
	// retried).
	PeerClient *httpx.Client
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.CompileCacheEntries <= 0 {
		o.CompileCacheEntries = 128
	}
	if o.ResultCacheEntries <= 0 {
		o.ResultCacheEntries = 4096
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 5 * time.Minute
	}
	if o.DefaultTimeout < 0 {
		o.DefaultTimeout = 0
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.JobHistory <= 0 {
		o.JobHistory = 4096
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.Registry == nil {
		o.Registry = telemetry.NewRegistry()
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 250 * time.Millisecond
	}
	if o.PeerTimeout <= 0 {
		o.PeerTimeout = 2 * time.Second
	}
	if o.PeerClient == nil {
		o.PeerClient = httpx.New(httpx.Options{Timeout: o.PeerTimeout, Retries: -1})
	}
	return o
}

// Server is the simulation job server. Build with New, mount Handler on
// an http.Server, and stop with Drain (graceful) or Close (immediate).
type Server struct {
	opts    Options
	started time.Time
	log     *slog.Logger
	reg     *telemetry.Registry
	tel     *svcTelemetry
	clock   func() time.Time // event-hub clock; time.Now outside tests

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue     chan *job
	queueOnce sync.Once // guards close(queue)
	workerWG  sync.WaitGroup
	jobWG     sync.WaitGroup // one count per accepted (non-cached) submission

	compiles     flightGroup[*core.Compiled]
	compileCache *lruCache[*core.Compiled]
	resultCache  *lruCache[[]byte]

	mu       sync.Mutex
	draining bool
	peers    []string // sibling base URLs, normalized (no trailing slash)
	jobs     map[string]*job
	fifo     []string        // registration order, for history pruning
	inflight map[string]*job // resultKey → live job (singleflight for runs)
	nextID   int64
	busy     int
	counters counters
	byScheme map[string]*schemeLatency
}

// counters are the cumulative job-flow counts served by /v1/metrics.
type counters struct {
	Submitted   int64 `json:"submitted"`
	Deduped     int64 `json:"deduped"`
	CacheServed int64 `json:"cacheServed"`
	// PeerServed jobs were answered by adopting a sibling worker's cached
	// result (a subset of neither CacheServed nor Simulated — a third
	// way a submission completes).
	PeerServed int64 `json:"peerServed"`
	Simulated  int64 `json:"simulated"`
	Done        int64 `json:"done"`
	Failed      int64 `json:"failed"`
	Cancelled   int64 `json:"cancelled"`
	Rejected    int64 `json:"rejected"`
}

// schemeLatency aggregates successful run wall time per scheme.
type schemeLatency struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"totalMs"`
	MaxMS   float64 `json:"maxMs"`
}

// Metrics is the /v1/metrics document (expvar-style flat JSON).
type Metrics struct {
	UptimeMS      float64                  `json:"uptimeMs"`
	Draining      bool                     `json:"draining"`
	Workers       int                      `json:"workers"`
	WorkersBusy   int                      `json:"workersBusy"`
	QueueDepth    int                      `json:"queueDepth"`
	QueueCapacity int                      `json:"queueCapacity"`
	Jobs          counters                 `json:"jobs"`
	CompileCache  CacheStats               `json:"compileCache"`
	ResultCache   CacheStats               `json:"resultCache"`
	RunsByScheme  map[string]schemeLatency `json:"runsByScheme"`
}

// New builds a server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:         opts,
		started:      time.Now(),
		log:          opts.Logger,
		reg:          opts.Registry,
		clock:        time.Now,
		baseCtx:      ctx,
		baseCancel:   cancel,
		queue:        make(chan *job, opts.QueueDepth),
		compileCache: newLRU[*core.Compiled](opts.CompileCacheEntries),
		resultCache:  newLRU[[]byte](opts.ResultCacheEntries),
		jobs:         make(map[string]*job),
		inflight:     make(map[string]*job),
		byScheme:     make(map[string]*schemeLatency),
	}
	s.tel = newSvcTelemetry(s.reg, s)
	if err := s.SetPeers(opts.Peers); err != nil {
		s.log.Warn("peer list rejected; starting without peers", "error", err.Error())
	}
	for i := 0; i < opts.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// apiError carries an HTTP status for request-level failures.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func apiErrorf(code int, format string, args ...any) *apiError {
	return &apiError{code: code, msg: fmt.Sprintf(format, args...)}
}

// Submit resolves and accepts a run request: a result-cache hit returns
// an already-done job, an identical in-flight submission is collapsed
// onto the existing job (deduped=true), and otherwise a new job is
// registered and enqueued. The returned *apiError carries the HTTP
// status for rejections (400 bad request, 429 queue full, 503 draining).
func (s *Server) Submit(req *RunRequest) (jb *job, deduped bool, apiErr *apiError) {
	res, err := resolve(req)
	if err != nil {
		s.mu.Lock()
		s.counters.Rejected++
		s.mu.Unlock()
		return nil, false, apiErrorf(http.StatusBadRequest, "%v", err)
	}

	if b, ok := s.resultCache.Get(res.resultKey); ok {
		jb := newJob(s.newID(), res, context.Background(), 0, s.newHub())
		jb.cached = true
		jb.finish(StateDone, b, nil)
		s.mu.Lock()
		s.counters.Submitted++
		s.counters.CacheServed++
		s.counters.Done++
		s.register(jb)
		s.mu.Unlock()
		s.log.Debug("job served from result cache", "job", jb.id, "program", res.program, "scheme", res.cfg.Scheme.String())
		return jb, false, nil
	}

	s.mu.Lock()
	if s.draining {
		s.counters.Rejected++
		s.mu.Unlock()
		return nil, false, apiErrorf(http.StatusServiceUnavailable, "svc: server is draining")
	}
	s.counters.Submitted++
	if live, ok := s.inflight[res.resultKey]; ok && !live.terminal() {
		s.counters.Deduped++
		s.mu.Unlock()
		s.tel.coalesced.With("run").Inc()
		s.log.Debug("submission coalesced onto in-flight job", "job", live.id)
		return live, true, nil
	}
	// Re-check the result cache: runJob publishes the result before it
	// clears the in-flight entry, so a submission that lost the race
	// between the first cache probe and this lock still finds it here
	// instead of queueing a duplicate simulation.
	if b, ok := s.resultCache.Get(res.resultKey); ok {
		jb := newJob(s.newIDLocked(), res, context.Background(), 0, s.newHub())
		jb.cached = true
		jb.finish(StateDone, b, nil)
		s.counters.CacheServed++
		s.counters.Done++
		s.register(jb)
		s.mu.Unlock()
		return jb, false, nil
	}
	jb = newJob(s.newIDLocked(), res, s.baseCtx, s.opts.DefaultTimeout, s.newHub())
	s.register(jb)
	s.inflight[res.resultKey] = jb
	s.jobWG.Add(1) // under mu: serialized against Drain's Wait
	s.mu.Unlock()

	select {
	case s.queue <- jb:
	default:
		s.mu.Lock()
		s.counters.Rejected++
		s.counters.Submitted--
		s.unregister(jb)
		s.mu.Unlock()
		jb.cancel()
		s.jobWG.Done()
		return nil, false, apiErrorf(http.StatusTooManyRequests,
			"svc: queue full (%d pending)", s.opts.QueueDepth)
	}

	// Watchdog: a cancelled or timed-out job reaches its terminal state
	// within moments of the event even while still queued — the waiter
	// is released now, and the worker later discovers the job terminal
	// and skips it (or the running simulation aborts at the next epoch
	// barrier).
	go func() {
		select {
		case <-jb.ctx.Done():
			s.finishJob(jb, nil, fmt.Errorf("svc: job %s: %w", jb.id, jb.ctx.Err()))
		case <-jb.done:
		}
	}()
	s.log.Debug("job enqueued", "job", jb.id, "program", res.program, "scheme", res.cfg.Scheme.String())
	return jb, false, nil
}

// newHub builds the event hub for one job from the server's clock and
// heartbeat floor.
func (s *Server) newHub() *eventHub {
	return newEventHub(s.clock, s.opts.HeartbeatInterval)
}

// countersSnapshot copies the job-flow counters for scrape-time mirrors.
func (s *Server) countersSnapshot() counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// Wait blocks until the job is terminal or ctx is done, then returns its
// status.
func (s *Server) Wait(ctx context.Context, jb *job, deduped bool) JobStatus {
	select {
	case <-jb.done:
	case <-ctx.Done():
	}
	return jb.status(deduped)
}

// Job looks up a job by id.
func (s *Server) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb, ok := s.jobs[id]
	return jb, ok
}

// Cancel cancels a job by id. Queued and running jobs reach the
// cancelled state promptly (the simulator aborts at the next epoch
// barrier, releasing its pooled caches); finished jobs are unaffected.
func (s *Server) Cancel(id string) (*job, bool) {
	jb, ok := s.Job(id)
	if !ok {
		return nil, false
	}
	jb.cancel()
	return jb, true
}

// Drain stops accepting submissions and waits for in-flight and queued
// jobs to finish. If ctx expires first, the remaining jobs are cancelled
// (they abort at the next epoch barrier) and Drain still waits for them
// to wind down before stopping the workers. Always returns with the
// worker pool stopped.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.log.Info("drain started")

	finished := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		err = fmt.Errorf("svc: drain deadline: cancelling in-flight jobs: %w", ctx.Err())
		s.baseCancel()
		<-finished // abort-at-barrier makes this prompt
	}
	s.queueOnce.Do(func() { close(s.queue) })
	s.workerWG.Wait()
	s.baseCancel()
	s.log.Info("drain complete", "forced", err != nil)
	return err
}

// Registry returns the server's metric registry (the one passed in
// Options, or the private default) for co-registering process metrics
// and mounting on auxiliary listeners.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Close shuts down immediately: all jobs are cancelled and the pool is
// stopped. Equivalent to Drain with an already-expired context.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx) //nolint:errcheck // the deadline error is the expected path
}

// newID / newIDLocked mint job ids.
func (s *Server) newID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.newIDLocked()
}

func (s *Server) newIDLocked() string {
	s.nextID++
	return fmt.Sprintf("r-%06d", s.nextID)
}

// register adds a job to the queryable set, pruning the oldest finished
// jobs beyond the history bound. Caller holds s.mu.
func (s *Server) register(jb *job) {
	s.jobs[jb.id] = jb
	s.fifo = append(s.fifo, jb.id)
	for len(s.jobs) > s.opts.JobHistory && len(s.fifo) > 0 {
		oldest, ok := s.jobs[s.fifo[0]]
		if ok && !oldest.terminal() {
			break // never evict a live job
		}
		if ok {
			delete(s.jobs, oldest.id)
		}
		s.fifo = s.fifo[1:]
	}
}

// unregister removes a job that never ran (queue-full rejection).
// Caller holds s.mu.
func (s *Server) unregister(jb *job) {
	delete(s.jobs, jb.id)
	if s.inflight[jb.res.resultKey] == jb {
		delete(s.inflight, jb.res.resultKey)
	}
	for i, id := range s.fifo {
		if id == jb.id {
			s.fifo = append(s.fifo[:i], s.fifo[i+1:]...)
			break
		}
	}
}

// worker consumes the queue until it is closed.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for jb := range s.queue {
		s.runJob(jb)
	}
}

// runJob executes one queued job end to end: compile (through the
// compile cache and singleflight), simulate under the job context,
// marshal the RunResult, and populate the result cache.
func (s *Server) runJob(jb *job) {
	defer s.jobWG.Done()
	s.mu.Lock()
	s.busy++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.busy--
		s.mu.Unlock()
	}()

	if jb.terminal() { // cancelled or timed out while queued
		s.clearInflight(jb)
		return
	}
	if err := jb.ctx.Err(); err != nil {
		s.finishJob(jb, nil, fmt.Errorf("svc: job %s: %w", jb.id, err))
		return
	}
	if !jb.start() {
		s.clearInflight(jb)
		return
	}
	jb.mu.Lock()
	queueWait := jb.started.Sub(jb.submitted)
	jb.mu.Unlock()
	s.tel.phaseSeconds.With(phaseQueue).Observe(queueWait.Seconds())

	// Before paying for a compile and a simulation, ask the fleet: a
	// sibling may already hold this content address.
	if body, peer, ok := s.fetchFromPeers(jb.ctx, jb.res); ok {
		s.resultCache.Put(jb.res.resultKey, body)
		jb.mu.Lock()
		jb.cached = true
		jb.peer = true
		jb.mu.Unlock()
		s.mu.Lock()
		s.counters.PeerServed++
		s.mu.Unlock()
		s.log.Info("job served from peer cache", "job", jb.id, "peer", peer,
			"program", jb.res.program, "scheme", jb.res.cfg.Scheme.String())
		s.finishJob(jb, body, nil)
		return
	}

	jb.hub.publishPhase(jb.id, PhaseCompiling, msSince(jb.submitted, time.Now()))
	tc := time.Now()
	c, err := s.compile(jb.res)
	s.tel.phaseSeconds.With(phaseCompile).Observe(time.Since(tc).Seconds())
	if err != nil {
		s.finishJob(jb, nil, err)
		return
	}

	jb.hub.publishPhase(jb.id, PhaseRunning, msSince(jb.submitted, time.Now()))
	exp := s.tel.newRunExporter(jb.id, jb.res.cfg.Scheme.String(), jb.hub)
	t0 := time.Now()
	st, rep, err := core.RunObservedWithOptions(c, jb.res.cfg, jb.res.level, nil, core.RunOptions{
		Ctx:      jb.ctx,
		Progress: exp.sample,
	})
	elapsed := time.Since(t0)
	s.tel.phaseSeconds.With(phaseRun).Observe(elapsed.Seconds())
	if err != nil {
		s.finishJob(jb, nil, err)
		return
	}
	b, err := json.Marshal(core.NewRunResult(jb.res.program, jb.res.cfg, st, rep))
	if err != nil {
		s.finishJob(jb, nil, fmt.Errorf("svc: marshal result: %w", err))
		return
	}
	s.resultCache.Put(jb.res.resultKey, b)

	s.mu.Lock()
	s.counters.Simulated++
	sl := s.byScheme[jb.res.cfg.Scheme.String()]
	if sl == nil {
		sl = &schemeLatency{}
		s.byScheme[jb.res.cfg.Scheme.String()] = sl
	}
	sl.Count++
	ms := float64(elapsed) / float64(time.Millisecond)
	sl.TotalMS += ms
	if ms > sl.MaxMS {
		sl.MaxMS = ms
	}
	s.mu.Unlock()

	s.finishJob(jb, b, nil)
}

// compile returns the job's compiled program, from the cache when
// present; concurrent misses on the same key compile once.
func (s *Server) compile(res *resolved) (*core.Compiled, error) {
	if c, ok := s.compileCache.Get(res.compileKey); ok {
		return c, nil
	}
	c, err, shared := s.compiles.Do(res.compileKey, func() (*core.Compiled, error) {
		c, err := core.Compile(res.src, res.copts)
		if err != nil {
			return nil, err
		}
		s.compileCache.Put(res.compileKey, c)
		return c, nil
	})
	if shared {
		s.tel.coalesced.With("compile").Inc()
	}
	return c, err
}

// finishJob moves a job to its terminal state (first caller wins),
// classifies the outcome for the counters, and clears the in-flight
// index entry.
func (s *Server) finishJob(jb *job, result []byte, err error) {
	state := StateDone
	switch {
	case errors.Is(err, context.Canceled):
		state = StateCancelled
	case err != nil:
		state = StateFailed
	}
	applied := jb.finish(state, result, err)
	s.clearInflight(jb)
	if !applied {
		return // someone else finished (and counted) it first
	}
	s.mu.Lock()
	switch state {
	case StateDone:
		s.counters.Done++
	case StateFailed:
		s.counters.Failed++
	case StateCancelled:
		s.counters.Cancelled++
	}
	s.mu.Unlock()
	st := jb.status(false)
	if err != nil {
		s.log.Info("job finished", "job", jb.id, "state", state,
			"queueMs", st.QueueMS, "runMs", st.RunMS, "error", err.Error())
		return
	}
	s.log.Info("job finished", "job", jb.id, "state", state,
		"program", st.Program, "scheme", st.Scheme,
		"queueMs", st.QueueMS, "runMs", st.RunMS, "cached", st.Cached)
}

// clearInflight removes the job's result-key reservation so later
// identical submissions start fresh (or hit the result cache).
func (s *Server) clearInflight(jb *job) {
	s.mu.Lock()
	if s.inflight[jb.res.resultKey] == jb {
		delete(s.inflight, jb.res.resultKey)
	}
	s.mu.Unlock()
}

// MetricsSnapshot assembles the /v1/metrics document.
func (s *Server) MetricsSnapshot() Metrics {
	s.mu.Lock()
	m := Metrics{
		UptimeMS:      msSince(s.started, time.Now()),
		Draining:      s.draining,
		Workers:       s.opts.Workers,
		WorkersBusy:   s.busy,
		QueueDepth:    len(s.queue),
		QueueCapacity: s.opts.QueueDepth,
		Jobs:          s.counters,
		RunsByScheme:  make(map[string]schemeLatency, len(s.byScheme)),
	}
	for k, v := range s.byScheme {
		m.RunsByScheme[k] = *v
	}
	s.mu.Unlock()
	m.CompileCache = s.compileCache.Stats()
	m.ResultCache = s.resultCache.Stats()
	return m
}
