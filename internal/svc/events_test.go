package svc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for heartbeat-cadence tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1000, 0)} }

// drain reads every event currently buffered on ch without blocking.
func drain(ch chan Event) []Event {
	var out []Event
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, e)
		default:
			return out
		}
	}
}

// TestEventHubOrdering checks that sequence numbers are strictly
// monotonic across phase, progress, and terminal events, both live and
// in the replay a late subscriber receives.
func TestEventHubOrdering(t *testing.T) {
	clk := newFakeClock()
	h := newEventHub(clk.Now, time.Millisecond)

	_, live, cancel := h.subscribe()
	defer cancel()

	h.publishPhase("r-1", StateQueued, 0)
	h.publishPhase("r-1", PhaseCompiling, 1)
	h.publishPhase("r-1", PhaseRunning, 2)
	clk.Advance(time.Second)
	h.publishProgress(ProgressEvent{Job: "r-1", Epoch: 10})
	h.publishPhase("r-1", StateDone, 3)
	h.publishTerminal(EventResult, []byte(`{"id":"r-1","state":"done"}`))

	got := drain(live)
	if len(got) != 6 {
		t.Fatalf("live events: got %d, want 6", len(got))
	}
	wantKinds := []string{EventPhase, EventPhase, EventPhase, EventProgress, EventPhase, EventResult}
	for i, e := range got {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind %s, want %s", i, e.Kind, wantKinds[i])
		}
		if i > 0 && e.Seq <= got[i-1].Seq {
			t.Errorf("event %d seq %d not after %d", i, e.Seq, got[i-1].Seq)
		}
	}
	if _, ok := <-live; ok {
		t.Fatal("live channel not closed after terminal event")
	}

	// A late subscriber replays phases + latest progress + terminal, in
	// seq order, and gets an immediately-closed channel.
	replay, ch, _ := h.subscribe()
	if len(replay) != 6 {
		t.Fatalf("replay: got %d events, want 6", len(replay))
	}
	for i := 1; i < len(replay); i++ {
		if replay[i].Seq <= replay[i-1].Seq {
			t.Errorf("replay %d seq %d not after %d", i, replay[i].Seq, replay[i-1].Seq)
		}
	}
	if replay[len(replay)-1].Kind != EventResult {
		t.Errorf("replay ends with %s, want %s", replay[len(replay)-1].Kind, EventResult)
	}
	if _, ok := <-ch; ok {
		t.Fatal("late subscriber channel not closed")
	}
}

// TestEventHubHeartbeatCadence checks the progress throttle under a
// fake clock: samples inside the heartbeat window are dropped, samples
// at or beyond it pass.
func TestEventHubHeartbeatCadence(t *testing.T) {
	clk := newFakeClock()
	h := newEventHub(clk.Now, 100*time.Millisecond)
	_, live, cancel := h.subscribe()
	defer cancel()

	h.publishProgress(ProgressEvent{Epoch: 1}) // first always passes
	for i := 2; i <= 9; i++ {
		clk.Advance(10 * time.Millisecond) // stays inside the window
		h.publishProgress(ProgressEvent{Epoch: int64(i)})
	}
	clk.Advance(20 * time.Millisecond) // 100ms since the first: passes
	h.publishProgress(ProgressEvent{Epoch: 10})
	clk.Advance(99 * time.Millisecond)
	h.publishProgress(ProgressEvent{Epoch: 11}) // dropped
	clk.Advance(1 * time.Millisecond)
	h.publishProgress(ProgressEvent{Epoch: 12}) // passes

	got := drain(live)
	var epochs []int64
	for _, e := range got {
		var p ProgressEvent
		if err := json.Unmarshal(e.Data, &p); err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, p.Epoch)
	}
	want := []int64{1, 10, 12}
	if fmt.Sprint(epochs) != fmt.Sprint(want) {
		t.Fatalf("delivered epochs %v, want %v", epochs, want)
	}
}

// TestEventHubSlowSubscriberEvicted checks that a subscriber that stops
// reading is disconnected instead of blocking the publisher.
func TestEventHubSlowSubscriberEvicted(t *testing.T) {
	h := newEventHub(nil, time.Millisecond)
	_, slow, _ := h.subscribe()
	for i := 0; i < subBuffer+1; i++ {
		h.publishPhase("r-1", PhaseRunning, float64(i))
	}
	n := 0
	for range slow { // channel must be closed (eviction), not open-blocked
		n++
	}
	if n != subBuffer {
		t.Fatalf("slow subscriber got %d events before eviction, want %d", n, subBuffer)
	}
	// The hub still works for a fresh subscriber.
	_, live, cancel := h.subscribe()
	defer cancel()
	h.publishPhase("r-1", StateDone, 0)
	if got := drain(live); len(got) != 1 {
		t.Fatalf("fresh subscriber got %d events, want 1", len(got))
	}
}

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	id    int64
	event string
	data  []byte
}

// readSSE parses frames until the stream closes or limit is reached.
func readSSE(t *testing.T, body *bufio.Scanner, limit int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	cur := sseFrame{id: -1}
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id)
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(line[len("data: "):])
		case line == "":
			if cur.event != "" {
				frames = append(frames, cur)
				if len(frames) >= limit {
					return frames
				}
			}
			cur = sseFrame{id: -1}
		}
	}
	return frames
}

// TestSSEStreamLifecycle drives the HTTP endpoint end to end: async
// submit, stream events, assert the phase order and the terminal result
// event, with strictly increasing ids.
func TestSSEStreamLifecycle(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})
	code, st := postRun(t, hs, RunRequest{Kernel: "ocean", Async: true})
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d state %s error %q", code, st.State, st.Error)
	}

	resp, err := http.Get(hs.URL + "/v1/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	frames := readSSE(t, sc, 64)
	if len(frames) < 2 {
		t.Fatalf("got %d frames, want at least queued + terminal", len(frames))
	}

	// Ids strictly increase; phase events appear in lifecycle order.
	var phases []string
	for i, f := range frames {
		if i > 0 && f.id <= frames[i-1].id {
			t.Errorf("frame %d id %d not after %d", i, f.id, frames[i-1].id)
		}
		if f.event == EventPhase {
			var p PhaseEvent
			if err := json.Unmarshal(f.data, &p); err != nil {
				t.Fatalf("phase payload: %v", err)
			}
			phases = append(phases, p.Phase)
		}
	}
	order := map[string]int{StateQueued: 0, PhaseCompiling: 1, PhaseRunning: 2, StateDone: 3}
	for i := 1; i < len(phases); i++ {
		if order[phases[i]] <= order[phases[i-1]] {
			t.Fatalf("phases out of order: %v", phases)
		}
	}
	if phases[0] != StateQueued || phases[len(phases)-1] != StateDone {
		t.Fatalf("phases %v, want queued first and done last", phases)
	}

	last := frames[len(frames)-1]
	if last.event != EventResult {
		t.Fatalf("last event %s, want %s", last.event, EventResult)
	}
	var final JobStatus
	if err := json.Unmarshal(last.data, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || len(final.Result) == 0 {
		t.Fatalf("terminal status state %s result %d bytes", final.State, len(final.Result))
	}
}

// TestSSECancelMidStream opens the stream on a long-running job, then
// cancels it and expects the stream to end with an error event carrying
// the cancelled state.
func TestSSECancelMidStream(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1, HeartbeatInterval: time.Millisecond})
	code, st := postRun(t, hs, RunRequest{Source: longSrc, Async: true})
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d state %s error %q", code, st.State, st.Error)
	}

	resp, err := http.Get(hs.URL + "/v1/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Cancel once the stream is open; the job aborts at the next barrier.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/runs/"+st.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	frames := readSSE(t, sc, 1024)
	if len(frames) == 0 {
		t.Fatal("no frames before stream close")
	}
	last := frames[len(frames)-1]
	if last.event != EventError {
		t.Fatalf("last event %s, want %s", last.event, EventError)
	}
	var final JobStatus
	if err := json.Unmarshal(last.data, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("terminal state %s, want %s", final.State, StateCancelled)
	}
}
