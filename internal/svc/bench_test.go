package svc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"
)

// BenchmarkServiceThroughput measures POST /v1/runs end-to-end latency.
//
// cold: every request carries a distinct source program, so each one
// pays compile + simulate. warm: every request is identical, so after
// the first they are all result-cache hits. The p50-ms/op metric is the
// median per-request latency; the warm/cold median ratio is the payoff
// of the two-tier cache (recorded in docs/results.md).
func BenchmarkServiceThroughput(b *testing.B) {
	bench := func(b *testing.B, reqFor func(i int) RunRequest) {
		s := New(Options{Workers: 2, ResultCacheEntries: 8192, CompileCacheEntries: 8192})
		hs := httptest.NewServer(s.Handler())
		defer func() {
			hs.Close()
			s.Close()
		}()

		lat := make([]float64, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body, err := json.Marshal(reqFor(i))
			if err != nil {
				b.Fatal(err)
			}
			t0 := time.Now()
			resp, err := http.Post(hs.URL+"/v1/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			lat = append(lat, float64(time.Since(t0))/float64(time.Millisecond))
			if st.State != StateDone {
				b.Fatalf("request %d: state %s error %q", i, st.State, st.Error)
			}
		}
		b.StopTimer()
		sort.Float64s(lat)
		b.ReportMetric(lat[len(lat)/2], "p50-ms/op")
	}

	b.Run("cold", func(b *testing.B) {
		bench(b, func(i int) RunRequest {
			// A distinct constant per request defeats both cache tiers.
			// Sized like a small sweep point so compile + simulate
			// dominates, as it does for real cold traffic.
			return RunRequest{Scheme: "TPI", Source: fmt.Sprintf(`
program coldrun
param n = 96
array A[n][n]
array B[n][n]
proc main() {
  for t = 0 to 3 {
    doall i = 1 to n-2 {
      for j = 1 to n-2 {
        B[i][j] = 0.25 * (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]) + %d.0
      }
    }
    doall i = 1 to n-2 {
      for j = 1 to n-2 { A[i][j] = B[i][j] }
    }
  }
}
`, i)}
		})
	})
	b.Run("warm", func(b *testing.B) {
		req := RunRequest{Kernel: "ocean", Scheme: "TPI"}
		bench(b, func(int) RunRequest { return req })
	})
}
