package svc

import "sync"

// flightGroup collapses concurrent calls with the same key into one
// execution whose result every caller shares (a minimal, dependency-free
// singleflight). Results are not retained after the last waiter returns;
// retention is the cache's job.
type flightGroup[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

type flightCall[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Do runs fn once per concurrent set of callers sharing key and returns
// fn's result to all of them; shared reports whether this caller joined
// an execution started by another.
func (g *flightGroup[V]) Do(key string, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall[V]{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
