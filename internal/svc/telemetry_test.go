package svc

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// scrape fetches path and parses it as Prometheus text.
func scrape(t *testing.T, url string) (*telemetry.Parsed, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("scrape %s: Content-Type %q, want %q", url, ct, telemetry.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	p, err := telemetry.ParseText(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("scrape %s does not parse: %v", url, err)
	}
	return p, string(raw)
}

// TestPrometheusScrape runs a few jobs and asserts the scrape carries
// the job-flow, phase-latency, cache, queue, and per-scheme simulation
// families with values consistent with the JSON metrics document.
func TestPrometheusScrape(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 2})
	for _, scheme := range []string{"BASE", "TPI"} {
		if code, st := postRun(t, hs, RunRequest{Kernel: "ocean", Scheme: scheme}); code != http.StatusOK || st.State != StateDone {
			t.Fatalf("%s: HTTP %d state %s error %q", scheme, code, st.State, st.Error)
		}
	}
	// A repeat submission exercises the result-cache path.
	if code, st := postRun(t, hs, RunRequest{Kernel: "ocean", Scheme: "TPI"}); code != http.StatusOK || !st.Cached {
		t.Fatalf("repeat: HTTP %d cached %v", code, st.Cached)
	}

	p, raw := scrape(t, hs.URL+"/metrics")
	m := s.MetricsSnapshot()

	intVal := func(name string, labels map[string]string) int64 {
		t.Helper()
		v, err := p.Value(name, labels)
		if err != nil {
			t.Fatalf("%v\nscrape:\n%s", err, raw)
		}
		return int64(v)
	}

	if got := intVal("tpiserved_jobs_total", map[string]string{"outcome": "submitted"}); got != m.Jobs.Submitted {
		t.Errorf("jobs submitted %d, JSON says %d", got, m.Jobs.Submitted)
	}
	if got := intVal("tpiserved_jobs_total", map[string]string{"outcome": "done"}); got != m.Jobs.Done {
		t.Errorf("jobs done %d, JSON says %d", got, m.Jobs.Done)
	}
	if got := intVal("tpiserved_cache_hits_total", map[string]string{"tier": "result"}); got != m.ResultCache.Hits {
		t.Errorf("result cache hits %d, JSON says %d", got, m.ResultCache.Hits)
	}
	if got := intVal("tpiserved_cache_misses_total", map[string]string{"tier": "compile"}); got != m.CompileCache.Misses {
		t.Errorf("compile cache misses %d, JSON says %d", got, m.CompileCache.Misses)
	}
	if got := intVal("tpiserved_queue_depth", nil); got != 0 {
		t.Errorf("queue depth %d with no inflight work", got)
	}
	if got := intVal("tpiserved_workers", nil); got != 2 {
		t.Errorf("workers %d, want 2", got)
	}

	// Phase histograms: one observation per simulated job per phase.
	if got := intVal("tpiserved_job_phase_seconds_count", map[string]string{"phase": "run"}); got != m.Jobs.Simulated {
		t.Errorf("run-phase observations %d, want %d", got, m.Jobs.Simulated)
	}
	if p.Types["tpiserved_job_phase_seconds"] != "histogram" {
		t.Errorf("phase seconds type %q", p.Types["tpiserved_job_phase_seconds"])
	}

	// Per-scheme simulation counters advanced for both schemes.
	for _, scheme := range []string{"BASE", "TPI"} {
		if got := intVal("tpisim_run_epochs_total", map[string]string{"scheme": scheme}); got <= 0 {
			t.Errorf("%s epochs %d, want > 0", scheme, got)
		}
		if got := intVal("tpisim_reads_total", map[string]string{"scheme": scheme}); got <= 0 {
			t.Errorf("%s reads %d, want > 0", scheme, got)
		}
		if got := intVal("tpisim_read_misses_total", map[string]string{"scheme": scheme}); got <= 0 {
			t.Errorf("%s read misses %d, want > 0", scheme, got)
		}
	}
}

// TestMetricsEndpointFormats checks the JSON document's content type and
// the ?format=prometheus alias.
func TestMetricsEndpointFormats(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})

	resp, err := http.Get(hs.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/v1/metrics Content-Type %q, want application/json", ct)
	}

	p, _ := scrape(t, hs.URL+"/v1/metrics?format=prometheus")
	if _, err := p.Value("tpiserved_queue_capacity", nil); err != nil {
		t.Fatalf("prometheus alias missing queue capacity: %v", err)
	}
}

// TestSharedRegistry checks a caller-supplied registry is used and can
// carry co-registered process metrics.
func TestSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg, 0)
	_, hs := newTestServer(t, Options{Workers: 1, Registry: reg})
	p, _ := scrape(t, hs.URL+"/metrics")
	if _, err := p.Value("go_goroutines", nil); err != nil {
		t.Fatalf("runtime metrics not exposed through server scrape: %v", err)
	}
	if _, err := p.Value("tpiserved_workers", nil); err != nil {
		t.Fatalf("server metrics missing from shared registry: %v", err)
	}
}
