package marking_test

// Marking-stability tests over the benchmark kernels: these pin down the
// compiler's per-kernel behaviour (how many reads end up Regular /
// Time-Read / Bypass and the window distribution), so an analysis
// regression that silently degrades precision — or worse, silently
// loosens conservatism — shows up as a test failure rather than a
// perturbation buried in simulator statistics.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/marking"
)

type markCounts struct {
	regular, timeread, bypass int
	maxWindow                 int
}

func countMarks(t *testing.T, name string, interproc, reuse bool) markCounts {
	t.Helper()
	k, err := bench.Get(name, bench.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(k.Source, core.CompileOptions{
		Interproc:      interproc,
		FirstReadReuse: reuse,
		AlignWords:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mc markCounts
	for _, m := range c.Marks.Marks {
		switch m.Kind {
		case marking.Regular:
			mc.regular++
		case marking.TimeRead:
			mc.timeread++
			if m.Window > mc.maxWindow {
				mc.maxWindow = m.Window
			}
		case marking.Bypass:
			mc.bypass++
		}
	}
	return mc
}

func TestKernelMarkingProfiles(t *testing.T) {
	// Expected static marking profile per kernel with full analysis.
	// These are behavioural pins, revisited deliberately when the
	// analysis changes.
	want := map[string]struct {
		minRegular, minTimeread, minBypass int
	}{
		"spec77": {minRegular: 1, minTimeread: 4, minBypass: 1},
		"ocean":  {minRegular: 0, minTimeread: 8, minBypass: 2},
		"flo52":  {minRegular: 0, minTimeread: 6, minBypass: 0},
		"qcd2":   {minRegular: 1, minTimeread: 3, minBypass: 1},
		"trfd":   {minRegular: 1, minTimeread: 3, minBypass: 0},
		"arc2d":  {minRegular: 0, minTimeread: 4, minBypass: 0},
	}
	for name, w := range want {
		mc := countMarks(t, name, true, true)
		if mc.regular < w.minRegular {
			t.Errorf("%s: regular reads = %d, want >= %d", name, mc.regular, w.minRegular)
		}
		if mc.timeread < w.minTimeread {
			t.Errorf("%s: time-reads = %d, want >= %d", name, mc.timeread, w.minTimeread)
		}
		if mc.bypass < w.minBypass {
			t.Errorf("%s: bypasses = %d, want >= %d", name, mc.bypass, w.minBypass)
		}
		// Windows stay small on these kernels: epoch distances are short.
		if mc.maxWindow > 64 {
			t.Errorf("%s: suspiciously wide window %d", name, mc.maxWindow)
		}
	}
}

func TestReuseAblationNeverAddsRegulars(t *testing.T) {
	for _, name := range bench.Names {
		full := countMarks(t, name, true, true)
		noReuse := countMarks(t, name, true, false)
		if noReuse.regular > full.regular {
			t.Errorf("%s: disabling reuse analysis cannot create Regular marks (%d -> %d)",
				name, full.regular, noReuse.regular)
		}
		if noReuse.timeread < full.timeread {
			t.Errorf("%s: disabling reuse analysis cannot remove Time-Reads (%d -> %d)",
				name, full.timeread, noReuse.timeread)
		}
	}
}

func TestInterprocAblationNeverWidensWindows(t *testing.T) {
	for _, name := range bench.Names {
		k, err := bench.Get(name, bench.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		full, err := core.Compile(k.Source, core.CompileOptions{Interproc: true, FirstReadReuse: true, AlignWords: 4})
		if err != nil {
			t.Fatal(err)
		}
		off, err := core.Compile(k.Source, core.CompileOptions{Interproc: false, FirstReadReuse: true, AlignWords: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(full.Marks.Marks) != len(off.Marks.Marks) {
			t.Fatalf("%s: mark counts differ", name)
		}
		for i := range full.Marks.Marks {
			fm, om := full.Marks.Marks[i], off.Marks.Marks[i]
			if fm.Kind == marking.TimeRead && om.Kind == marking.TimeRead && om.Window > fm.Window {
				t.Errorf("%s ref %d: interproc-off window %d wider than full %d",
					name, i, om.Window, fm.Window)
			}
			// A Regular mark under full analysis may become a Time-Read
			// without interprocedural information, never the other way.
			if fm.Kind == marking.TimeRead && om.Kind == marking.Regular {
				t.Errorf("%s ref %d: losing interprocedural info cannot prove more", name, i)
			}
		}
	}
}
