package marking

import (
	"strings"
	"testing"

	"repro/internal/pfl"
	"repro/internal/prog"
	"repro/internal/sections"
)

func compile(t *testing.T, src string, sopts sections.Options, mopts Options) *Result {
	t.Helper()
	ast, err := pfl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := pfl.Check(ast)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prog.Build(info, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := sections.Analyze(p, sopts)
	return Compute(a, mopts)
}

func defaults() (sections.Options, Options) {
	return sections.Options{Interproc: true}, DefaultOptions()
}

// marksFor returns the marks of all reads of the named array, in order.
func marksFor(res *Result, array string) []Mark {
	var out []Mark
	for _, name := range procNames(res.Analysis) {
		ps := res.Analysis.Procs[name]
		for _, ns := range ps.Nodes {
			for _, r := range ns.Refs {
				if r.Array == array && !r.Write {
					out = append(out, res.Marks[r.RefID])
				}
			}
		}
	}
	return out
}

func TestProducerConsumerIsTimeRead(t *testing.T) {
	so, mo := defaults()
	res := compile(t, `
program p
param n = 16
array A[n]
array B[n]
proc main() {
  doall i = 0 to n-1 { A[i] = i }
  doall i = 0 to n-1 { B[i] = A[n-1-i] }
}
`, so, mo)
	ms := marksFor(res, "A")
	if len(ms) != 1 {
		t.Fatalf("%d reads of A", len(ms))
	}
	if ms[0].Kind != TimeRead {
		t.Fatalf("consumer read = %v, want TimeRead", ms[0])
	}
	if ms[0].Window != 1 {
		t.Fatalf("window = %d, want 1 (adjacent epochs)", ms[0].Window)
	}
}

func TestReadOnlyDataIsRegular(t *testing.T) {
	so, mo := defaults()
	res := compile(t, `
program p
param n = 16
array T[n]
array B[n]
proc main() {
  doall i = 0 to n-1 { B[i] = T[i] * 2.0 }
  doall i = 0 to n-1 { B[i] = B[i] + T[n-1-i] }
}
`, so, mo)
	for i, m := range marksFor(res, "T") {
		if m.Kind != Regular {
			t.Fatalf("read %d of never-written T = %v, want Regular", i, m)
		}
	}
}

func TestIntraTaskCoverage(t *testing.T) {
	so, mo := defaults()
	src := `
program p
param n = 16
array A[n]
array B[n]
proc main() {
  doall i = 0 to n-1 { A[i] = i }
  doall i = 0 to n-1 {
    B[i] = A[i]
    B[i] = B[i] + A[i]
  }
}
`
	res := compile(t, src, so, mo)
	ms := marksFor(res, "A")
	if len(ms) != 2 {
		t.Fatalf("%d reads of A", len(ms))
	}
	if ms[0].Kind != TimeRead {
		t.Fatalf("first read = %v, want TimeRead", ms[0])
	}
	if ms[1].Kind != Regular {
		t.Fatalf("second read = %v, want Regular (covered by first)", ms[1])
	}

	// Ablation: reuse analysis off makes both reads Time-Reads.
	res2 := compile(t, src, so, Options{FirstReadReuse: false})
	ms2 := marksFor(res2, "A")
	if ms2[1].Kind != TimeRead {
		t.Fatalf("with reuse off, second read = %v, want TimeRead", ms2[1])
	}
}

func TestCoverageByOwnWrite(t *testing.T) {
	so, mo := defaults()
	res := compile(t, `
program p
param n = 16
array A[n]
proc main() {
  doall i = 0 to n-1 { A[i] = 1.0 }
  doall i = 0 to n-1 {
    A[i] = 2.0
    A[i] = A[i] + 1.0
  }
}
`, so, mo)
	ms := marksFor(res, "A")
	if len(ms) != 1 {
		t.Fatalf("%d reads of A", len(ms))
	}
	if ms[0].Kind != Regular {
		t.Fatalf("read after own write = %v, want Regular", ms[0])
	}
}

func TestCoverageDoesNotCrossTasks(t *testing.T) {
	// The second epoch reads a DIFFERENT element than the one the task
	// wrote: no coverage; must be a Time-Read.
	so, mo := defaults()
	res := compile(t, `
program p
param n = 16
array A[n]
array B[n]
proc main() {
  doall i = 0 to n-1 { A[i] = 1.0 }
  doall i = 0 to n-1 {
    A[i] = 2.0
    B[i] = A[(i+1) % n]
  }
}
`, so, mo)
	ms := marksFor(res, "A")
	if len(ms) != 1 {
		t.Fatalf("%d reads of A", len(ms))
	}
	if ms[0].Kind != TimeRead {
		t.Fatalf("read of neighbour element = %v, want TimeRead", ms[0])
	}
	// Non-affine (modulo) subscript: window must fall back to the nearest
	// possible writer, which is the same doall via the loop... there is no
	// loop here, so the nearest is the first doall at distance 1? The
	// same-node write A[i]=2.0 also overlaps (full section), but with no
	// cycle it cannot precede the read: window = 1.
	if ms[0].Window != 1 {
		t.Fatalf("window = %d, want 1", ms[0].Window)
	}
}

func TestCriticalSectionBypass(t *testing.T) {
	so, mo := defaults()
	res := compile(t, `
program p
param n = 16
scalar sum
array A[n]
proc main() {
  doall i = 0 to n-1 {
    critical {
      sum = sum + A[i]
    }
  }
}
`, so, mo)
	ms := marksFor(res, "sum")
	if len(ms) != 1 || ms[0].Kind != Bypass {
		t.Fatalf("critical read marks = %+v, want one Bypass", ms)
	}
	// A[i] inside the critical section is also bypassed.
	msA := marksFor(res, "A")
	if len(msA) != 1 || msA[0].Kind != Bypass {
		t.Fatalf("A marks = %+v", msA)
	}
}

func TestLoopCarriedDistance(t *testing.T) {
	// Writer and reader alternate inside a serial loop; the write is two
	// epochs upstream around the cycle but 1 downstream; distance from the
	// producer doall to the consumer doall of the NEXT iteration wraps
	// around the loop.
	so, mo := defaults()
	res := compile(t, `
program p
param n = 16
array A[n]
array B[n]
proc main() {
  for t = 0 to 9 {
    doall i = 0 to n-1 { A[i] = t }
    doall i = 0 to n-1 { B[i] = A[i] }
  }
}
`, so, mo)
	ms := marksFor(res, "A")
	if len(ms) != 1 {
		t.Fatalf("%d reads of A", len(ms))
	}
	if ms[0].Kind != TimeRead || ms[0].Window != 1 {
		t.Fatalf("mark = %+v, want TimeRead window 1", ms[0])
	}
	// The producer's read... B is written then never read: B reads none.
	// A's writer precedes the reader directly: window 1. Check the reverse
	// flow: if we read A in the first doall of the next iteration it must
	// see distance around the back edge (> 1).
	res2 := compile(t, `
program p
param n = 16
array A[n]
array B[n]
proc main() {
  for t = 0 to 9 {
    doall i = 0 to n-1 { B[i] = A[i] }
    doall i = 0 to n-1 { A[i] = t }
  }
}
`, so, mo)
	ms2 := marksFor(res2, "A")
	if len(ms2) != 1 {
		t.Fatalf("%d reads of A", len(ms2))
	}
	if ms2[0].Kind != TimeRead {
		t.Fatalf("mark = %+v", ms2[0])
	}
	// Around the back edge the only intervening epoch is the writer
	// itself (loop header and body-entry are structural): window 1.
	if ms2[0].Window != 1 {
		t.Fatalf("window = %d, want 1 (around the loop)", ms2[0].Window)
	}
}

func TestDisjointSectionsStayRegular(t *testing.T) {
	// Writer touches the left half, reader the right half: provably
	// disjoint, so the read is Regular.
	so, mo := defaults()
	res := compile(t, `
program p
param n = 16
array A[n+n]
array B[n]
proc main() {
  doall i = 0 to n-1 { A[i] = 1.0 }
  doall i = 0 to n-1 { B[i] = A[n+i] }
}
`, so, mo)
	ms := marksFor(res, "A")
	if len(ms) != 1 {
		t.Fatalf("%d reads of A", len(ms))
	}
	if ms[0].Kind != Regular {
		t.Fatalf("disjoint read = %+v, want Regular", ms[0])
	}
}

func TestInterproceduralWindow(t *testing.T) {
	src := `
program p
param n = 16
array A[n]
array B[n]
proc main() {
  doall i = 0 to n-1 { A[i] = 1.0 }
  doall i = 0 to n-1 { B[i] = 0.0 }
  call consume(A)
}
proc consume(X[]) {
  doall i = 0 to n-1 { X[i] = X[i] + 1.0 }
}
`
	so, mo := defaults()
	res := compile(t, src, so, mo)
	ms := marksFor(res, "X")
	if len(ms) != 1 {
		t.Fatalf("%d reads of X", len(ms))
	}
	if ms[0].Kind != TimeRead {
		t.Fatalf("mark = %+v", ms[0])
	}
	if ms[0].Window < 3 {
		t.Fatalf("interprocedural window = %d, want >= 3 (write is epochs away)", ms[0].Window)
	}

	// Without interprocedural analysis the window collapses to the
	// conservative entry assumption.
	res2 := compile(t, src, sections.Options{Interproc: false}, mo)
	ms2 := marksFor(res2, "X")
	if ms2[0].Kind != TimeRead {
		t.Fatalf("mark = %+v", ms2[0])
	}
	if ms2[0].Window >= ms[0].Window {
		t.Fatalf("interproc-off window %d should be tighter than interproc-on %d",
			ms2[0].Window, ms[0].Window)
	}
}

func TestWindowsAreSafeLowerBounds(t *testing.T) {
	// Branchy control flow: two paths of different epoch lengths; the
	// window must use the SHORT path.
	so, mo := defaults()
	res := compile(t, `
program p
param n = 16
scalar c
array A[n]
array B[n]
array D[n]
proc main() {
  doall i = 0 to n-1 { A[i] = 1.0 }
  if (c > 0.0) {
    doall i = 0 to n-1 { B[i] = 1.0 }
    doall i = 0 to n-1 { B[i] = B[i] * 2.0 }
    doall i = 0 to n-1 { B[i] = B[i] * 3.0 }
  }
  doall i = 0 to n-1 { D[i] = A[i] }
}
`, so, mo)
	ms := marksFor(res, "A")
	// A is read once in the last doall (and never in the branch).
	if len(ms) != 1 {
		t.Fatalf("%d reads of A", len(ms))
	}
	m := ms[0]
	if m.Kind != TimeRead {
		t.Fatalf("mark = %+v", m)
	}
	// Short path: A-writer -> branch(0) -> else-entry(0) -> final doall(1):
	// one epoch. The long path adds the three B epochs; the window must
	// use the SHORT path.
	if m.Window != 1 {
		t.Fatalf("window = %d, want 1 (shortest path through the empty arm)", m.Window)
	}
}

func TestReportMentionsWindows(t *testing.T) {
	so, mo := defaults()
	res := compile(t, `
program p
param n = 4
array A[n]
array B[n]
proc main() {
  doall i = 0 to n-1 { A[i] = i }
  doall i = 0 to n-1 { B[i] = A[i] }
}
`, so, mo)
	rep := res.Report()
	if !strings.Contains(rep, "time-read window=1") {
		t.Fatalf("report missing time-read window:\n%s", rep)
	}
	if res.NumTimeRead != 1 || res.NumWrite != 2 {
		t.Fatalf("counts: %+v", res)
	}
}

func TestScalarFlow(t *testing.T) {
	so, mo := defaults()
	res := compile(t, `
program p
param n = 8
scalar alpha
array A[n]
proc main() {
  alpha = 0.5
  doall i = 0 to n-1 { A[i] = alpha * i }
}
`, so, mo)
	ms := marksFor(res, "alpha")
	if len(ms) != 1 {
		t.Fatalf("%d reads of alpha", len(ms))
	}
	// Written in the preceding serial epoch by (possibly) a different
	// processor than each doall task: must be a Time-Read.
	if ms[0].Kind != TimeRead {
		t.Fatalf("mark = %+v, want TimeRead", ms[0])
	}
}

func TestLockProtectedDataBypassesOutsideCritical(t *testing.T) {
	// A non-critical read of a variable written under the lock in the
	// same epoch can race with other tasks' locked writes: it must bypass.
	so, mo := defaults()
	res := compile(t, `
program p
param n = 16
scalar count = 0.0
array A[n]
proc main() {
  doall i = 0 to n-1 {
    critical {
      count = count + 1.0
    }
    A[i] = count
  }
}
`, so, mo)
	ms := marksFor(res, "count")
	// two reads: inside the critical (bypass) and outside (must also bypass)
	if len(ms) != 2 {
		t.Fatalf("%d reads of count", len(ms))
	}
	for i, m := range ms {
		if m.Kind != Bypass {
			t.Fatalf("read %d of lock-protected count = %v, want Bypass", i, m)
		}
	}
}

func TestWindowHistogram(t *testing.T) {
	so, mo := defaults()
	res := compile(t, `
program p
param n = 16
array A[n]
array B[n]
array C[n]
proc main() {
  doall i = 0 to n-1 { A[i] = i }
  doall i = 0 to n-1 { B[i] = A[i] }
  doall i = 0 to n-1 { C[i] = A[i] + B[i] }
}
`, so, mo)
	h := res.WindowHistogram()
	// A@epoch2: w1; A@epoch3: w2; B@epoch3: w1.
	if h[1] != 2 || h[2] != 1 || h[0] != 0 || h[3] != 0 {
		t.Fatalf("histogram = %v", h)
	}
}
