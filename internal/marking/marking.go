// Package marking implements the paper's reference-marking algorithm:
// stale-reference-sequence detection over the epoch flow graph, first-read
// (upwardly-exposed) identification for intra-task reuse, and assignment
// of conservative Time-Read epoch windows.
//
// Every read reference receives one of three marks:
//
//   - Regular: the cached copy can never be stale (covered by an earlier
//     access of the same task instance, or the data has no possible writer
//     before this read). The hardware performs an ordinary tag-match load.
//   - TimeRead(w): potentially stale; the hardware hits only when the
//     word's timetag tt satisfies tt >= E - w for current epoch counter E.
//     w is a proven lower bound on the epoch distance from the most recent
//     possible cross-task write.
//   - Bypass: lock-protected data inside a critical section; same-epoch
//     cross-task communication is possible, so the access always goes to
//     memory.
//
// Soundness invariant (checked at runtime by the simulator's staleness
// oracle): a Regular or TimeRead-hit load never returns a value older than
// the most recent write to that word.
package marking

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sections"
	"repro/internal/symexpr"
)

// Kind classifies a read reference's coherence behaviour.
type Kind int

const (
	// Regular is an ordinary load (address tag check only).
	Regular Kind = iota
	// TimeRead is a load that additionally checks the word timetag.
	TimeRead
	// Bypass always reads from memory (critical-section data).
	Bypass
	// WriteRef marks a write reference (write-through; no read marking).
	WriteRef
)

func (k Kind) String() string {
	switch k {
	case Regular:
		return "read"
	case TimeRead:
		return "time-read"
	case Bypass:
		return "bypass"
	case WriteRef:
		return "write"
	default:
		return "?"
	}
}

// Mark is the per-reference marking result.
type Mark struct {
	Kind Kind
	// Window is the Time-Read epoch window w (Kind == TimeRead only): the
	// access hits iff timetag >= E - w.
	Window int
	// Reason is a human-readable explanation for tooling and tests.
	Reason string
}

// Result holds the whole-program marking, indexed by RefID.
type Result struct {
	Analysis *sections.Analysis
	Marks    []Mark

	// Stats for reporting.
	NumRegular, NumTimeRead, NumBypass, NumWrite int
}

// WindowHistogram buckets the Time-Read windows: [0]=w0, [1]=w1, [2]=w2,
// [3]=w>=3. Narrow windows are the compiler's conservatism at work.
func (r *Result) WindowHistogram() [4]int {
	var h [4]int
	for _, m := range r.Marks {
		if m.Kind != TimeRead {
			continue
		}
		w := m.Window
		if w > 3 {
			w = 3
		}
		h[w]++
	}
	return h
}

// Options configures marking.
type Options struct {
	// FirstReadReuse enables coverage by earlier same-task accesses
	// (the intra-task reuse analysis). Disabled, every potentially-stale
	// read is a Time-Read — the paper's ablation for reuse analysis.
	FirstReadReuse bool
}

// DefaultOptions enables all analyses.
func DefaultOptions() Options { return Options{FirstReadReuse: true} }

// Compute runs the marking algorithm over a completed section analysis.
func Compute(a *sections.Analysis, opts Options) *Result {
	res := &Result{
		Analysis: a,
		Marks:    make([]Mark, a.Prog.Info.NumRefs),
	}
	for _, name := range procNames(a) {
		ps := a.Procs[name]
		m := &marker{a: a, ps: ps, res: res, opts: opts, distFromEntry: ps.Graph.DistFromEntry()}
		for _, ns := range ps.Nodes {
			m.markNode(ns)
		}
	}
	for _, mk := range res.Marks {
		switch mk.Kind {
		case Regular:
			res.NumRegular++
		case TimeRead:
			res.NumTimeRead++
		case Bypass:
			res.NumBypass++
		case WriteRef:
			res.NumWrite++
		}
	}
	return res
}

func procNames(a *sections.Analysis) []string {
	ns := make([]string, 0, len(a.Procs))
	for n := range a.Procs {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

type marker struct {
	a             *sections.Analysis
	ps            *sections.ProcSummary
	res           *Result
	opts          Options
	distFromEntry []int
}

// markNode assigns marks to every reference in one epoch node.
func (m *marker) markNode(ns *sections.NodeSummary) {
	// covered accumulates sections already touched by must-execute
	// references earlier in the same task instance, keyed by array.
	covered := map[string][]*sections.Ref{}

	// Variables written inside critical sections of this epoch can change
	// under another task's lock at any moment of the epoch; every read of
	// them in this epoch — critical or not — must go to memory.
	critWritten := map[string]bool{}
	for _, r := range ns.Refs {
		if r.Write && (r.InCritical || r.InOrdered) {
			critWritten[r.Array] = true
		}
	}

	for _, r := range ns.Refs {
		switch {
		case r.Write:
			m.res.Marks[r.RefID] = Mark{Kind: WriteRef, Reason: "write-through"}
		case critWritten[r.Array]:
			m.res.Marks[r.RefID] = Mark{Kind: Bypass, Reason: "lock-protected data (written under lock this epoch)"}
		default:
			m.res.Marks[r.RefID] = m.markRead(ns, r, covered)
		}
		if m.opts.FirstReadReuse && r.MustExecute() && !r.InCritical && !r.InOrdered && !critWritten[r.Array] {
			covered[r.Array] = append(covered[r.Array], r)
		}
	}
}

// markRead classifies one read reference.
func (m *marker) markRead(ns *sections.NodeSummary, r *sections.Ref, covered map[string][]*sections.Ref) Mark {
	if r.InCritical {
		return Mark{Kind: Bypass, Reason: "critical-section data"}
	}
	if r.InOrdered {
		return Mark{Kind: Bypass, Reason: "ordered-section (doacross) data"}
	}

	// Intra-task coverage: an earlier must-execute access of the same task
	// instance that certainly touched this element makes the copy current
	// for the rest of the epoch (no other task may write it this epoch).
	if m.opts.FirstReadReuse {
		for _, c := range covered[r.Array] {
			if taskCovers(c, r) {
				return Mark{Kind: Regular, Reason: fmt.Sprintf("covered by earlier access at %s", c.Pos)}
			}
		}
	}

	// Find candidate cross-task writers and the minimum epoch distance.
	window := sections.Infinity
	why := ""
	rSec := r.NodeSec()

	for _, ws := range m.ps.Nodes {
		mod, ok := ws.Mod[r.Array]
		if !ok {
			continue
		}
		if !mod.MayOverlap(rSec, nil) {
			continue
		}
		var d int
		if ws.Node == ns.Node {
			d = m.ps.Graph.Dist(ns.Node, ns.Node) // cross-instance self distance
		} else {
			d = m.ps.Graph.Dist(ws.Node, ns.Node)
		}
		if d < 0 {
			continue // writer cannot precede this read
		}
		if d < window {
			window = d
			why = fmt.Sprintf("write in epoch node n%d at distance %d", ws.Node.ID, d)
		}
	}

	// Writes that happened before procedure entry.
	if ef := m.ps.EntryFresh[r.Array]; ef < sections.Infinity {
		if de := m.distFromEntry[ns.Node.ID]; de >= 0 && ef+de < window {
			window = ef + de
			why = fmt.Sprintf("pre-entry write at freshness %d + entry distance %d", ef, de)
		}
	}

	if window >= sections.Infinity {
		return Mark{Kind: Regular, Reason: "no possible prior cross-task write"}
	}
	return Mark{Kind: TimeRead, Window: window, Reason: why}
}

// taskCovers reports whether an earlier reference `cov` certainly touched
// every element that `r` touches, within the same task instance.
func taskCovers(cov, r *sections.Ref) bool {
	if cov.Array != r.Array {
		return false
	}
	if cov.IsScalar && r.IsScalar {
		return true
	}
	// Identify the shared loop-frame prefix (same source loops).
	shared := 0
	for shared < len(cov.Loops) && shared < len(r.Loops) &&
		cov.Loops[shared].Stmt == r.Loops[shared].Stmt {
		shared++
	}
	// cov must execute in every iteration of the frames beyond the shared
	// prefix that enclose r... no: cov's own extra frames are expanded, so
	// they only need to be provably non-empty; that is part of
	// MustExecute, which the caller established before adding cov.

	// Expand both references over their non-shared frames; shared frames
	// and the doall variable stay symbolic (same values for both).
	covSec := expandBeyond(cov, shared)
	rSec := expandBeyond(r, shared)
	return covSec.MustContain(rSec, nil)
}

// expandBeyond expands a reference's section over its loop frames beyond
// the first `shared` frames (innermost first), keeping shared frames and
// the doall variable symbolic.
func expandBeyond(r *sections.Ref, shared int) symexpr.Section {
	s := r.PointSec()
	for i := len(r.Loops) - 1; i >= shared; i-- {
		f := r.Loops[i]
		s = s.Expand(f.Var, f.Lo, f.Hi)
	}
	return s
}

// Report renders a human-readable marking summary per procedure, in
// source order, for cmd/tpicc and golden tests.
func (r *Result) Report() string {
	var b strings.Builder
	a := r.Analysis
	for _, name := range procNames(a) {
		ps := a.Procs[name]
		fmt.Fprintf(&b, "proc %s:\n", name)
		for _, ns := range ps.Nodes {
			if len(ns.Refs) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  epoch n%d (%s):\n", ns.Node.ID, ns.Node.Kind)
			for _, ref := range ns.Refs {
				mk := r.Marks[ref.RefID]
				loc := refString(ref)
				switch mk.Kind {
				case TimeRead:
					fmt.Fprintf(&b, "    %-20s %s window=%d  # %s\n", loc, mk.Kind, mk.Window, mk.Reason)
				case WriteRef:
					fmt.Fprintf(&b, "    %-20s %s\n", loc, mk.Kind)
				default:
					fmt.Fprintf(&b, "    %-20s %s  # %s\n", loc, mk.Kind, mk.Reason)
				}
			}
		}
	}
	return b.String()
}

func refString(r *sections.Ref) string {
	if r.IsScalar {
		return fmt.Sprintf("%s@%s", r.Array, r.Pos)
	}
	var parts []string
	for _, s := range r.Subs {
		parts = append(parts, s.String())
	}
	return fmt.Sprintf("%s[%s]@%s", r.Array, strings.Join(parts, "]["), r.Pos)
}

// MarkOf is a convenience accessor used by the simulator: it returns the
// mark for a reference id, defaulting to a conservative Time-Read window 0
// for ids the compiler never saw (defensive; should not happen).
func (r *Result) MarkOf(refID int) Mark {
	if refID < 0 || refID >= len(r.Marks) {
		return Mark{Kind: TimeRead, Window: 0, Reason: "unknown ref"}
	}
	return r.Marks[refID]
}
