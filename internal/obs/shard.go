package obs

import "repro/internal/prog"

// Sink receives per-reference instrumentation events. The live Recorder
// implements it for sequential execution; inside a host-parallel epoch
// each simulated processor records into its own ShardRecorder, and the
// shards are drained into the Recorder at the barrier in (processor,
// sequence) order — so the attributed counters and the binary trace are
// bit-identical to a sequential run under static block scheduling, and
// deterministic (processor-major within the epoch) under cyclic
// scheduling.
type Sink interface {
	// Read records one read reference; class < 0 means cache hit.
	Read(proc int, addr prog.Word, ref int32, kind uint8, class int8, stall int64)
	// Write records one write reference; class < 0 means cache hit.
	Write(proc int, addr prog.Word, ref int32, crit bool, class int8, stall int64)
}

// shardEvent is one buffered reference event.
type shardEvent struct {
	addr  prog.Word
	stall int64
	ref   int32
	proc  int32
	kind  uint8
	class int8
	write bool
	crit  bool
}

// ShardRecorder buffers one simulated processor's reference events during
// a host-parallel epoch. It is used by exactly one goroutine at a time
// and keeps its backing array across epochs.
type ShardRecorder struct {
	events []shardEvent
}

// Read implements Sink.
func (s *ShardRecorder) Read(proc int, addr prog.Word, ref int32, kind uint8, class int8, stall int64) {
	s.events = append(s.events, shardEvent{
		addr: addr, stall: stall, ref: ref, proc: int32(proc), kind: kind, class: class,
	})
}

// Write implements Sink.
func (s *ShardRecorder) Write(proc int, addr prog.Word, ref int32, crit bool, class int8, stall int64) {
	s.events = append(s.events, shardEvent{
		addr: addr, stall: stall, ref: ref, proc: int32(proc), class: class, write: true, crit: crit,
	})
}

// Len reports the number of buffered events.
func (s *ShardRecorder) Len() int { return len(s.events) }

// Drain replays a shard's buffered events into the recorder in recording
// order and resets the shard for reuse. All accumulator updates are
// integer sums, so draining shards in processor order reproduces the
// sequential counters exactly and emits a deterministic trace.
func (r *Recorder) Drain(sh *ShardRecorder) {
	for i := range sh.events {
		e := &sh.events[i]
		if e.write {
			r.Write(int(e.proc), e.addr, e.ref, e.crit, e.class, e.stall)
		} else {
			r.Read(int(e.proc), e.addr, e.ref, e.kind, e.class, e.stall)
		}
	}
	sh.events = sh.events[:0]
}
