package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// table is a minimal aligned-column text renderer for the tpitrace CLI.
type table struct {
	cols []string
	rows [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(w io.Writer) {
	width := make([]int, len(t.cols))
	for i, c := range t.cols {
		width[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", width[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.cols)
	for _, r := range t.rows {
		line(r)
	}
}

func n(v int64) string { return fmt.Sprintf("%d", v) }

func classCells(c stats.ClassCounts) []string {
	return []string{n(c.Cold), n(c.Replace), n(c.TrueSharing), n(c.FalseSharing), n(c.Conservative), n(c.LeaseExpired), n(c.Bypass)}
}

var classHeads = []string{"cold", "repl", "true", "false", "consv", "lease", "byp"}

// WriteSummary prints the run header: scheme, size, totals.
func (r *Report) WriteSummary(w io.Writer) {
	m := &r.Meta
	fmt.Fprintf(w, "scheme=%s procs=%d line=%dw mem=%dw", m.Scheme, m.Procs, m.LineWords, m.MemWords)
	if m.Program != "" {
		fmt.Fprintf(w, " program=%s", m.Program)
	}
	fmt.Fprintln(w)
	var reads, writes, rh, wh int64
	for _, e := range r.Epochs {
		reads += e.Reads
		writes += e.Writes
		rh += e.ReadHits
		wh += e.WriteHits
	}
	rm, wm := r.ReadMissTotals(), r.WriteMissTotals()
	fmt.Fprintf(w, "epochs=%d cycles=%d reads=%d (hits %d, misses %d) writes=%d (hits %d, misses %d)\n",
		len(r.Epochs), r.TotalCycles, reads, rh, rm.Total(), writes, wh, wm.Total())
	fmt.Fprintf(w, "read misses: cold=%d replace=%d true=%d false=%d conservative=%d lease-expired=%d bypass=%d\n",
		rm.Cold, rm.Replace, rm.TrueSharing, rm.FalseSharing, rm.Conservative, rm.LeaseExpired, rm.Bypass)
}

// WriteEpochTimeline prints the per-epoch miss-class table; maxRows <= 0
// prints every epoch, otherwise the head and tail around an ellipsis.
func (r *Report) WriteEpochTimeline(w io.Writer, maxRows int) {
	t := &table{cols: append([]string{"epoch", "cycle", "reads", "rhit"}, append(append([]string{}, classHeads...), "wmiss", "inval", "reset")...)}
	row := func(e *EpochRow) {
		cells := []string{n(e.Epoch), n(e.StartCycle), n(e.Reads), n(e.ReadHits)}
		cells = append(cells, classCells(e.ReadMisses)...)
		cells = append(cells, n(e.WriteMisses.Total()), n(e.Invalidations), n(e.ResetInvalidations))
		t.add(cells...)
	}
	if maxRows > 0 && len(r.Epochs) > maxRows {
		head := maxRows / 2
		tail := maxRows - head
		for i := range r.Epochs[:head] {
			row(&r.Epochs[i])
		}
		t.add("...")
		for i := range r.Epochs[len(r.Epochs)-tail:] {
			row(&r.Epochs[len(r.Epochs)-tail+i])
		}
	} else {
		for i := range r.Epochs {
			row(&r.Epochs[i])
		}
	}
	t.render(w)
}

// WriteArrayTable prints the per-array miss heatmap: which variables the
// misses land on, decomposed by class.
func (r *Report) WriteArrayTable(w io.Writer) {
	t := &table{cols: append([]string{"array", "reads", "writes"}, append(append([]string{}, classHeads...), "wmiss")...)}
	for _, a := range r.Arrays {
		cells := []string{a.Name, n(a.Reads), n(a.Writes)}
		cells = append(cells, classCells(a.ReadMisses)...)
		cells = append(cells, n(a.WriteMisses.Total()))
		t.add(cells...)
	}
	t.render(w)
}

// WriteTopConservative prints the k source references paying the most
// conservative misses — the compiler-marking drill-down.
func (r *Report) WriteTopConservative(w io.Writer, k int) {
	rows := r.TopConservative(k)
	if len(rows) == 0 {
		fmt.Fprintln(w, "no conservative misses")
		return
	}
	t := &table{cols: []string{"ref", "pos", "proc", "array", "mark", "execs", "consv", "allmiss"}}
	for _, rr := range rows {
		mark := rr.Mark
		if rr.Window > 0 {
			mark = fmt.Sprintf("%s(w=%d)", mark, rr.Window)
		}
		t.add(n(int64(rr.ID)), rr.Pos, rr.Proc, rr.Array, mark, n(rr.Count),
			n(rr.Misses.Conservative), n(rr.Misses.Total()))
	}
	t.render(w)
}

// WriteProcTable prints the per-processor attribution.
func (r *Report) WriteProcTable(w io.Writer) {
	t := &table{cols: append([]string{"proc", "reads", "rhit", "stall"}, classHeads...)}
	for _, p := range r.Procs {
		cells := []string{n(int64(p.Proc)), n(p.Reads), n(p.ReadHits), n(p.ReadStallCycles)}
		cells = append(cells, classCells(p.ReadMisses)...)
		t.add(cells...)
	}
	t.render(w)
}

// WriteLatencyHistogram prints the fixed-bucket read-miss latency
// histogram.
func (r *Report) WriteLatencyHistogram(w io.Writer) {
	t := &table{cols: []string{"cycles", "misses"}}
	for _, b := range r.Latency {
		if b.Count == 0 {
			continue
		}
		rng := fmt.Sprintf("%d-%d", b.Lo, b.Hi)
		if b.Hi < 0 {
			rng = fmt.Sprintf(">=%d", b.Lo)
		}
		t.add(rng, n(b.Count))
	}
	t.render(w)
}

// perfettoEvent is one Chrome trace_event record.
type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
	S    string         `json:"s,omitempty"`
}

// WritePerfetto emits the epoch timeline as Chrome trace_event JSON
// (load the file in Perfetto or chrome://tracing). One slice per epoch,
// counter tracks for the miss classes, and instants for reset phases;
// timestamps are simulated cycles interpreted as microseconds.
func (r *Report) WritePerfetto(w io.Writer) error {
	var evs []perfettoEvent
	for i := range r.Epochs {
		e := &r.Epochs[i]
		end := r.TotalCycles
		if i+1 < len(r.Epochs) {
			end = r.Epochs[i+1].StartCycle
		}
		dur := end - e.StartCycle
		if dur < 1 {
			dur = 1
		}
		evs = append(evs, perfettoEvent{
			Name: fmt.Sprintf("epoch %d", e.Epoch),
			Ph:   "X", Ts: e.StartCycle, Dur: dur, Pid: 0, Tid: 0,
			Args: map[string]any{
				"reads": e.Reads, "writes": e.Writes,
				"readMisses": e.ReadMisses.Total(), "invalidations": e.Invalidations,
			},
		})
		evs = append(evs, perfettoEvent{
			Name: "read misses", Ph: "C", Ts: e.StartCycle, Pid: 0,
			Args: map[string]any{
				"cold": e.ReadMisses.Cold, "replace": e.ReadMisses.Replace,
				"true-sharing": e.ReadMisses.TrueSharing, "false-sharing": e.ReadMisses.FalseSharing,
				"conservative": e.ReadMisses.Conservative, "lease-expired": e.ReadMisses.LeaseExpired,
				"bypass": e.ReadMisses.Bypass,
			},
		})
		if e.TimetagResets > 0 {
			evs = append(evs, perfettoEvent{
				Name: "timetag reset", Ph: "i", Ts: e.StartCycle, Pid: 0, Tid: 0, S: "g",
				Args: map[string]any{"invalidatedWords": e.ResetInvalidations},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
		"otherData": map[string]any{
			"scheme": r.Meta.Scheme, "program": r.Meta.Program, "procs": r.Meta.Procs,
		},
	})
}
