package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format
//
//	magic    8 bytes "TPITRC1\n"
//	header   uvarint length, then the Meta payload (see encodeMeta)
//	records  uvarint length, then an opcode byte and its fields
//	         (all integers are unsigned varints; strings are
//	         uvarint-length-prefixed UTF-8)
//
// Record payloads:
//
//	OpEpoch  epoch, startCycle
//	OpRead   proc, addr, kind, class+1 (0 = hit), stall, ref+1 (0 = none)
//	OpWrite  proc, addr, crit, class+1, stall, ref+1
//	OpReset  epoch, invalidatedWords
//	OpInval  writer, victim, addr, class
//	OpEnd    totalReads, totalWrites, totalCycles
//
// The stream is self-describing (the header carries the scheme, the
// array map, and the source-reference table) and ends with OpEnd, whose
// totals let a reader verify it saw every event.

// Op identifies a trace record type.
type Op uint8

const (
	// OpEpoch marks the barrier that begins an epoch.
	OpEpoch Op = 1
	// OpRead is one read reference.
	OpRead Op = 2
	// OpWrite is one write reference.
	OpWrite Op = 3
	// OpReset is a timetag reset phase.
	OpReset Op = 4
	// OpInval is one directory invalidation (writer → victim).
	OpInval Op = 5
	// OpEnd terminates the stream with run totals.
	OpEnd Op = 6
)

func (o Op) String() string {
	switch o {
	case OpEpoch:
		return "epoch"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpReset:
		return "reset"
	case OpInval:
		return "inval"
	case OpEnd:
		return "end"
	default:
		return "?"
	}
}

// Event is one decoded trace record; fields beyond Op are meaningful per
// the record type (see the format comment above).
type Event struct {
	Op     Op
	Epoch  int64 // OpEpoch, OpReset
	Cycle  int64 // OpEpoch: cumulative cycles at the barrier; OpEnd: total
	Proc   int   // OpRead/OpWrite issuer; OpInval victim
	Addr   int64
	Kind   uint8 // OpRead: memsys.ReadKind
	Class  int8  // miss class, -1 = cache hit
	Crit   bool
	Stall  int64
	Ref    int32 // static reference ID, -1 = none
	Words  int64 // OpReset: invalidated words
	From   int   // OpInval: writing processor
	Reads  int64 // OpEnd totals
	Writes int64
}

var traceMagic = [8]byte{'T', 'P', 'I', 'T', 'R', 'C', '1', '\n'}

// TraceWriter encodes the binary event stream through an internal
// buffered writer. Errors are sticky and surface at Flush.
type TraceWriter struct {
	bw      *bufio.Writer
	scratch []byte
	lenBuf  [binary.MaxVarintLen64]byte // reused; a local would escape into bw.Write
	err     error
}

// NewTraceWriter writes the magic and header for meta and returns the
// encoder.
func NewTraceWriter(w io.Writer, meta *Meta) (*TraceWriter, error) {
	t := &TraceWriter{bw: bufio.NewWriterSize(w, 1<<16), scratch: make([]byte, 0, 256)}
	if _, err := t.bw.Write(traceMagic[:]); err != nil {
		return nil, err
	}
	t.emit(encodeMeta(meta))
	if t.err != nil {
		return nil, t.err
	}
	return t, nil
}

// emit writes one length-prefixed block.
func (t *TraceWriter) emit(payload []byte) {
	if t.err != nil {
		return
	}
	n := binary.PutUvarint(t.lenBuf[:], uint64(len(payload)))
	if _, err := t.bw.Write(t.lenBuf[:n]); err != nil {
		t.err = err
		return
	}
	if _, err := t.bw.Write(payload); err != nil {
		t.err = err
	}
}

func (t *TraceWriter) epoch(epoch, cycle int64) {
	b := t.scratch[:0]
	b = append(b, byte(OpEpoch))
	b = binary.AppendUvarint(b, uint64(epoch))
	b = binary.AppendUvarint(b, uint64(cycle))
	t.scratch = b
	t.emit(b)
}

func (t *TraceWriter) read(proc int, addr int64, ref int32, kind uint8, class int8, stall int64) {
	b := t.scratch[:0]
	b = append(b, byte(OpRead))
	b = binary.AppendUvarint(b, uint64(proc))
	b = binary.AppendUvarint(b, uint64(addr))
	b = append(b, kind, byte(class+1))
	b = binary.AppendUvarint(b, uint64(stall))
	b = binary.AppendUvarint(b, uint64(ref+1))
	t.scratch = b
	t.emit(b)
}

func (t *TraceWriter) write(proc int, addr int64, ref int32, crit bool, class int8, stall int64) {
	b := t.scratch[:0]
	b = append(b, byte(OpWrite))
	b = binary.AppendUvarint(b, uint64(proc))
	b = binary.AppendUvarint(b, uint64(addr))
	c := byte(0)
	if crit {
		c = 1
	}
	b = append(b, c, byte(class+1))
	b = binary.AppendUvarint(b, uint64(stall))
	b = binary.AppendUvarint(b, uint64(ref+1))
	t.scratch = b
	t.emit(b)
}

func (t *TraceWriter) reset(epoch, words int64) {
	b := t.scratch[:0]
	b = append(b, byte(OpReset))
	b = binary.AppendUvarint(b, uint64(epoch))
	b = binary.AppendUvarint(b, uint64(words))
	t.scratch = b
	t.emit(b)
}

func (t *TraceWriter) inval(writer, victim int, addr int64, class uint8) {
	b := t.scratch[:0]
	b = append(b, byte(OpInval))
	b = binary.AppendUvarint(b, uint64(writer))
	b = binary.AppendUvarint(b, uint64(victim))
	b = binary.AppendUvarint(b, uint64(addr))
	b = append(b, class)
	t.scratch = b
	t.emit(b)
}

func (t *TraceWriter) end(reads, writes, cycles int64) {
	b := t.scratch[:0]
	b = append(b, byte(OpEnd))
	b = binary.AppendUvarint(b, uint64(reads))
	b = binary.AppendUvarint(b, uint64(writes))
	b = binary.AppendUvarint(b, uint64(cycles))
	t.scratch = b
	t.emit(b)
}

// Flush drains the buffer and reports the first encoding error.
func (t *TraceWriter) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.bw.Flush()
}

func encodeMeta(m *Meta) []byte {
	b := make([]byte, 0, 256)
	b = appendString(b, m.Program)
	b = appendString(b, m.Scheme)
	b = binary.AppendUvarint(b, uint64(m.Procs))
	b = binary.AppendUvarint(b, uint64(m.LineWords))
	b = binary.AppendUvarint(b, uint64(m.MemWords))
	b = binary.AppendUvarint(b, uint64(len(m.Arrays)))
	for _, a := range m.Arrays {
		b = appendString(b, a.Name)
		b = binary.AppendUvarint(b, uint64(a.Base))
		b = binary.AppendUvarint(b, uint64(a.Size))
	}
	b = binary.AppendUvarint(b, uint64(len(m.Refs)))
	for _, r := range m.Refs {
		b = appendString(b, r.Pos)
		b = appendString(b, r.Proc)
		b = appendString(b, r.Array)
		b = appendString(b, r.Mark)
		b = binary.AppendUvarint(b, uint64(r.Window))
		w := byte(0)
		if r.Write {
			w = 1
		}
		b = append(b, w)
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// TraceReader decodes a binary event trace.
type TraceReader struct {
	br   *bufio.Reader
	meta Meta
	buf  []byte
}

// NewTraceReader checks the magic and decodes the header.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	t := &TraceReader{br: bufio.NewReaderSize(r, 1<<16)}
	var magic [8]byte
	if _, err := io.ReadFull(t.br, magic[:]); err != nil {
		return nil, fmt.Errorf("obs: trace magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("obs: not a TPI trace (magic %q)", magic[:])
	}
	payload, err := t.block()
	if err != nil {
		return nil, fmt.Errorf("obs: trace header: %w", err)
	}
	m, err := decodeMeta(payload)
	if err != nil {
		return nil, fmt.Errorf("obs: trace header: %w", err)
	}
	t.meta = m
	return t, nil
}

// Meta returns the run description from the trace header.
func (t *TraceReader) Meta() *Meta { return &t.meta }

// block reads one length-prefixed payload into the shared buffer.
func (t *TraceReader) block() ([]byte, error) {
	n, err := binary.ReadUvarint(t.br)
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("oversized record (%d bytes)", n)
	}
	if uint64(cap(t.buf)) < n {
		t.buf = make([]byte, n)
	}
	t.buf = t.buf[:n]
	if _, err := io.ReadFull(t.br, t.buf); err != nil {
		return nil, err
	}
	return t.buf, nil
}

// Next decodes the next record; it returns io.EOF after OpEnd (or at a
// cleanly truncated stream boundary).
func (t *TraceReader) Next() (Event, error) {
	payload, err := t.block()
	if err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("obs: trace record: %w", err)
	}
	d := decoder{b: payload}
	var ev Event
	ev.Op = Op(d.byte())
	switch ev.Op {
	case OpEpoch:
		ev.Epoch = d.int()
		ev.Cycle = d.int()
	case OpRead:
		ev.Proc = int(d.int())
		ev.Addr = d.int()
		ev.Kind = d.byte()
		ev.Class = int8(d.byte()) - 1
		ev.Stall = d.int()
		ev.Ref = int32(d.int()) - 1
	case OpWrite:
		ev.Proc = int(d.int())
		ev.Addr = d.int()
		ev.Crit = d.byte() != 0
		ev.Class = int8(d.byte()) - 1
		ev.Stall = d.int()
		ev.Ref = int32(d.int()) - 1
	case OpReset:
		ev.Epoch = d.int()
		ev.Words = d.int()
	case OpInval:
		ev.From = int(d.int())
		ev.Proc = int(d.int())
		ev.Addr = d.int()
		ev.Class = int8(d.byte())
	case OpEnd:
		ev.Reads = d.int()
		ev.Writes = d.int()
		ev.Cycle = d.int()
	default:
		return Event{}, fmt.Errorf("obs: unknown trace opcode %d", ev.Op)
	}
	if d.err != nil {
		return Event{}, fmt.Errorf("obs: %s record: %w", ev.Op, d.err)
	}
	return ev, nil
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) byte() uint8 {
	if d.err != nil || len(d.b) == 0 {
		d.setErr()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.setErr()
		return 0
	}
	d.b = d.b[n:]
	return int64(v)
}

func (d *decoder) setErr() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated payload")
	}
}

func (d *decoder) string() string {
	n := d.int()
	if d.err != nil || int64(len(d.b)) < n {
		d.setErr()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func decodeMeta(payload []byte) (Meta, error) {
	d := decoder{b: payload}
	var m Meta
	m.Program = d.string()
	m.Scheme = d.string()
	m.Procs = int(d.int())
	m.LineWords = int(d.int())
	m.MemWords = d.int()
	nArrays := d.int()
	for i := int64(0); i < nArrays && d.err == nil; i++ {
		var a ArraySpan
		a.Name = d.string()
		a.Base = d.int()
		a.Size = d.int()
		m.Arrays = append(m.Arrays, a)
	}
	nRefs := d.int()
	for i := int64(0); i < nRefs && d.err == nil; i++ {
		var r RefInfo
		r.Pos = d.string()
		r.Proc = d.string()
		r.Array = d.string()
		r.Mark = d.string()
		r.Window = int(d.int())
		r.Write = d.byte() != 0
		m.Refs = append(m.Refs, r)
	}
	return m, d.err
}

// Replay decodes a trace and rebuilds the attributed Report from its
// events, exactly as the live Recorder would have. The OpEnd totals are
// cross-checked against the replayed event counts.
func Replay(r io.Reader) (*Report, error) {
	tr, err := NewTraceReader(r)
	if err != nil {
		return nil, err
	}
	a := newAgg(*tr.Meta())
	var reads, writes int64
	var end *Event
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch ev.Op {
		case OpEpoch:
			a.epochStart(ev.Epoch, ev.Cycle)
		case OpRead:
			reads++
			a.read(ev.Proc, ev.Addr, ev.Ref, ev.Class, ev.Stall)
			a.refCount(ev.Ref)
			a.arrayRead(ev.Addr)
		case OpWrite:
			writes++
			a.write(ev.Proc, ev.Addr, ev.Ref, ev.Class)
			a.refCount(ev.Ref)
		case OpReset:
			a.reset(ev.Epoch, ev.Words)
		case OpInval:
			a.inval()
		case OpEnd:
			e := ev
			end = &e
		}
		if end != nil {
			break
		}
	}
	rep := a.report()
	if end != nil {
		rep.TotalCycles = end.Cycle
		if end.Reads != reads || end.Writes != writes {
			return rep, fmt.Errorf("obs: trace totals mismatch: trailer %d reads / %d writes, replayed %d / %d",
				end.Reads, end.Writes, reads, writes)
		}
	}
	return rep, nil
}
