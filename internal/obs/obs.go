// Package obs is the simulator's instrumentation layer: attributed
// per-epoch / per-processor / per-array / per-source-reference miss-class
// counters, a fixed-bucket miss-latency histogram, and a compact binary
// event trace with an exported decoder.
//
// The simulator keeps its closure-preselection fast path: when
// observation is off nothing here is called (see sim.Runner); when it is
// on, the lowered reference closures call Recorder.Read/Write once per
// memory reference. Coherence events that happen outside the reference
// stream (directory invalidations, timetag reset phases) arrive through
// the memsys.Probe interface, which Recorder implements.
package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/prog"
	"repro/internal/stats"
)

// Level selects how much instrumentation a run pays for.
type Level int

const (
	// LevelOff records nothing; the simulator uses its plain fast path.
	LevelOff Level = iota
	// LevelCounters accumulates attributed counters and the latency
	// histogram in memory (no I/O).
	LevelCounters
	// LevelTrace additionally streams every event to a binary trace.
	LevelTrace
)

func (l Level) String() string {
	switch l {
	case LevelOff:
		return "off"
	case LevelCounters:
		return "counters"
	case LevelTrace:
		return "trace"
	default:
		return "?"
	}
}

// ParseLevel parses "off", "counters", or "trace".
func ParseLevel(s string) (Level, error) {
	switch s {
	case "off", "":
		return LevelOff, nil
	case "counters":
		return LevelCounters, nil
	case "trace":
		return LevelTrace, nil
	default:
		return LevelOff, fmt.Errorf("unknown obs level %q (want off, counters, or trace)", s)
	}
}

// ArraySpan locates one program variable (array or scalar) in the flat
// address space; attribution maps an address to the covering span.
type ArraySpan struct {
	Name string `json:"name"`
	Base int64  `json:"base"`
	Size int64  `json:"size"`
}

// RefInfo describes one static source reference (indexed by the dense
// RefID the checker assigns and the lowered closures carry).
type RefInfo struct {
	Pos    string `json:"pos"`   // source "line:col"
	Proc   string `json:"proc"`  // procedure name
	Array  string `json:"array"` // referenced variable
	Mark   string `json:"mark"`  // compiler mark (regular / time-read / bypass / write)
	Window int    `json:"window,omitempty"`
	Write  bool   `json:"write,omitempty"`
}

// Meta is the run description embedded in every trace header so analysis
// tools are self-contained.
type Meta struct {
	Program   string      `json:"program,omitempty"`
	Scheme    string      `json:"scheme"`
	Procs     int         `json:"procs"`
	LineWords int         `json:"lineWords"`
	MemWords  int64       `json:"memWords"`
	Arrays    []ArraySpan `json:"arrays"`
	Refs      []RefInfo   `json:"refs"`
}

// LatencyBucketBounds are the inclusive upper bounds of the fixed
// miss-latency histogram buckets (cycles); the last bucket is unbounded.
var LatencyBucketBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

const numLatBuckets = 12 // len(LatencyBucketBounds) + 1 overflow bucket

func latBucket(stall int64) int {
	for i, b := range LatencyBucketBounds {
		if stall <= b {
			return i
		}
	}
	return len(LatencyBucketBounds)
}

// classCols is the per-class counter array used by the accumulators.
type classCols = [stats.NumMissClasses]int64

type epochAcc struct {
	startCycle  int64
	reads       int64
	writes      int64
	readHits    int64
	writeHits   int64
	readMisses  classCols
	writeMisses classCols
	readStall   int64
	resets      int64
	resetWords  int64
	invals      int64
}

type procAcc struct {
	reads      int64
	writes     int64
	readHits   int64
	writeHits  int64
	readMisses classCols
	readStall  int64
}

type arrayAcc struct {
	reads       int64
	writes      int64
	readMisses  classCols
	writeMisses classCols
}

type refAcc struct {
	count  int64
	misses classCols
}

// agg is the attribution accumulator shared by the live Recorder and the
// offline trace Replay.
type agg struct {
	meta    Meta
	arrayOf []int32 // addr -> index into meta.Arrays, -1 = padding
	epochs  []epochAcc
	cur     *epochAcc
	procs   []procAcc
	arrays  []arrayAcc
	refs    []refAcc
	latHist [numLatBuckets]int64
}

func newAgg(meta Meta) *agg {
	a := &agg{
		meta:   meta,
		procs:  make([]procAcc, meta.Procs),
		arrays: make([]arrayAcc, len(meta.Arrays)),
		refs:   make([]refAcc, len(meta.Refs)),
		epochs: make([]epochAcc, 1), // epoch 0: references before the first barrier
	}
	a.cur = &a.epochs[0]
	a.arrayOf = make([]int32, meta.MemWords)
	for i := range a.arrayOf {
		a.arrayOf[i] = -1
	}
	for i, sp := range meta.Arrays {
		for w := sp.Base; w < sp.Base+sp.Size && w < meta.MemWords; w++ {
			a.arrayOf[w] = int32(i)
		}
	}
	return a
}

func (a *agg) epochStart(epoch, cycle int64) {
	for int64(len(a.epochs)) <= epoch {
		a.epochs = append(a.epochs, epochAcc{startCycle: cycle})
	}
	a.cur = &a.epochs[epoch]
	a.cur.startCycle = cycle
}

// read accumulates one read reference; class < 0 means hit. Stall is
// attributed only to misses, so the per-epoch/per-proc stall columns
// decompose stats.MissLatencySum exactly (hits can still carry latency
// on some schemes — timetag checks, L1→L2 fills — but that is busy
// time, not miss stall).
func (a *agg) read(proc int, addr int64, ref int32, class int8, stall int64) {
	e := a.cur
	e.reads++
	if proc >= 0 && proc < len(a.procs) {
		p := &a.procs[proc]
		p.reads++
		if class < 0 {
			p.readHits++
		} else {
			p.readMisses[class]++
			p.readStall += stall
		}
	}
	if class < 0 {
		e.readHits++
		return
	}
	e.readMisses[class]++
	e.readStall += stall
	a.latHist[latBucket(stall)]++
	if addr >= 0 && addr < int64(len(a.arrayOf)) {
		if ai := a.arrayOf[addr]; ai >= 0 {
			a.arrays[ai].readMisses[class]++
		}
	}
	if ref >= 0 && int(ref) < len(a.refs) {
		a.refs[ref].misses[class]++
	}
}

// write accumulates one write reference; class < 0 means hit.
func (a *agg) write(proc int, addr int64, ref int32, class int8) {
	e := a.cur
	e.writes++
	if proc >= 0 && proc < len(a.procs) {
		p := &a.procs[proc]
		p.writes++
		if class < 0 {
			p.writeHits++
		}
	}
	var ai int32 = -1
	if addr >= 0 && addr < int64(len(a.arrayOf)) {
		ai = a.arrayOf[addr]
	}
	if ai >= 0 {
		a.arrays[ai].writes++
	}
	if class < 0 {
		e.writeHits++
		return
	}
	e.writeMisses[class]++
	if ai >= 0 {
		a.arrays[ai].writeMisses[class]++
	}
	if ref >= 0 && int(ref) < len(a.refs) {
		a.refs[ref].misses[class]++
	}
}

func (a *agg) refCount(ref int32) {
	if ref >= 0 && int(ref) < len(a.refs) {
		a.refs[ref].count++
	}
}

func (a *agg) arrayRead(addr int64) {
	if addr >= 0 && addr < int64(len(a.arrayOf)) {
		if ai := a.arrayOf[addr]; ai >= 0 {
			a.arrays[ai].reads++
		}
	}
}

func (a *agg) inval() { a.cur.invals++ }

func (a *agg) reset(epoch, words int64) {
	// Reset phases run at the barrier entering `epoch`; attribute there.
	a.epochStart(epoch, a.cur.startCycle)
	a.cur.resets++
	a.cur.resetWords += words
}

// EpochRow is one epoch's attributed counters.
type EpochRow struct {
	Epoch       int64             `json:"epoch"`
	StartCycle  int64             `json:"startCycle"`
	Reads       int64             `json:"reads"`
	Writes      int64             `json:"writes"`
	ReadHits    int64             `json:"readHits"`
	WriteHits   int64             `json:"writeHits"`
	ReadMisses  stats.ClassCounts `json:"readMisses"`
	WriteMisses stats.ClassCounts `json:"writeMisses"`
	// ReadStallCycles is the miss-attributed read stall; summed over
	// epochs it equals stats.MissLatencySum.
	ReadStallCycles    int64 `json:"readStallCycles"`
	TimetagResets      int64 `json:"timetagResets,omitempty"`
	ResetInvalidations int64 `json:"resetInvalidations,omitempty"`
	Invalidations      int64 `json:"invalidations,omitempty"`
}

// ProcRow is one processor's attributed counters.
type ProcRow struct {
	Proc            int               `json:"proc"`
	Reads           int64             `json:"reads"`
	Writes          int64             `json:"writes"`
	ReadHits        int64             `json:"readHits"`
	WriteHits       int64             `json:"writeHits"`
	ReadMisses      stats.ClassCounts `json:"readMisses"`
	ReadStallCycles int64             `json:"readStallCycles"`
}

// ArrayRow attributes misses to one program variable.
type ArrayRow struct {
	Name        string            `json:"name"`
	Reads       int64             `json:"reads"`
	Writes      int64             `json:"writes"`
	ReadMisses  stats.ClassCounts `json:"readMisses"`
	WriteMisses stats.ClassCounts `json:"writeMisses"`
}

// RefRow attributes misses to one static source reference.
type RefRow struct {
	ID     int               `json:"id"`
	Pos    string            `json:"pos"`
	Proc   string            `json:"proc"`
	Array  string            `json:"array"`
	Mark   string            `json:"mark"`
	Window int               `json:"window,omitempty"`
	Write  bool              `json:"write,omitempty"`
	Count  int64             `json:"count"`
	Misses stats.ClassCounts `json:"misses"`
}

// LatencyBucket is one histogram bucket; Hi < 0 means unbounded.
type LatencyBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Report is the full attributed result of an observed run (or a trace
// replay). It marshals directly to the JSON consumed by tooling.
type Report struct {
	Meta        Meta            `json:"meta"`
	TotalCycles int64           `json:"totalCycles"`
	Epochs      []EpochRow      `json:"epochs"`
	Procs       []ProcRow       `json:"procs"`
	Arrays      []ArrayRow      `json:"arrays"`
	Refs        []RefRow        `json:"refs"`
	Latency     []LatencyBucket `json:"latencyHistogram"`
}

func (a *agg) report() *Report {
	rep := &Report{Meta: a.meta}
	for i := range a.epochs {
		e := &a.epochs[i]
		if i > 0 && e.reads == 0 && e.writes == 0 && e.resets == 0 && e.invals == 0 {
			continue
		}
		rep.Epochs = append(rep.Epochs, EpochRow{
			Epoch:              int64(i),
			StartCycle:         e.startCycle,
			Reads:              e.reads,
			Writes:             e.writes,
			ReadHits:           e.readHits,
			WriteHits:          e.writeHits,
			ReadMisses:         stats.CountsOf(e.readMisses),
			WriteMisses:        stats.CountsOf(e.writeMisses),
			ReadStallCycles:    e.readStall,
			TimetagResets:      e.resets,
			ResetInvalidations: e.resetWords,
			Invalidations:      e.invals,
		})
	}
	for p := range a.procs {
		pa := &a.procs[p]
		rep.Procs = append(rep.Procs, ProcRow{
			Proc:            p,
			Reads:           pa.reads,
			Writes:          pa.writes,
			ReadHits:        pa.readHits,
			WriteHits:       pa.writeHits,
			ReadMisses:      stats.CountsOf(pa.readMisses),
			ReadStallCycles: pa.readStall,
		})
	}
	for i := range a.arrays {
		aa := &a.arrays[i]
		var z classCols
		if aa.reads == 0 && aa.writes == 0 && aa.readMisses == z && aa.writeMisses == z {
			continue
		}
		rep.Arrays = append(rep.Arrays, ArrayRow{
			Name:        a.meta.Arrays[i].Name,
			Reads:       aa.reads,
			Writes:      aa.writes,
			ReadMisses:  stats.CountsOf(aa.readMisses),
			WriteMisses: stats.CountsOf(aa.writeMisses),
		})
	}
	for id := range a.refs {
		ra := &a.refs[id]
		var z classCols
		if ra.count == 0 && ra.misses == z {
			continue
		}
		info := RefInfo{}
		if id < len(a.meta.Refs) {
			info = a.meta.Refs[id]
		}
		rep.Refs = append(rep.Refs, RefRow{
			ID:     id,
			Pos:    info.Pos,
			Proc:   info.Proc,
			Array:  info.Array,
			Mark:   info.Mark,
			Window: info.Window,
			Write:  info.Write,
			Count:  ra.count,
			Misses: stats.CountsOf(ra.misses),
		})
	}
	lo := int64(0)
	for i := 0; i < numLatBuckets; i++ {
		hi := int64(-1)
		if i < len(LatencyBucketBounds) {
			hi = LatencyBucketBounds[i]
		}
		rep.Latency = append(rep.Latency, LatencyBucket{Lo: lo, Hi: hi, Count: a.latHist[i]})
		lo = hi + 1
	}
	return rep
}

// ReadMissTotals sums the per-epoch read-miss decomposition; by
// construction it must equal the run's stats.Stats.ReadMisses.
func (r *Report) ReadMissTotals() stats.ClassCounts {
	var t stats.ClassCounts
	for _, e := range r.Epochs {
		t.Cold += e.ReadMisses.Cold
		t.Replace += e.ReadMisses.Replace
		t.TrueSharing += e.ReadMisses.TrueSharing
		t.FalseSharing += e.ReadMisses.FalseSharing
		t.Conservative += e.ReadMisses.Conservative
		t.LeaseExpired += e.ReadMisses.LeaseExpired
		t.Bypass += e.ReadMisses.Bypass
	}
	return t
}

// WriteMissTotals sums the per-epoch write-miss decomposition.
func (r *Report) WriteMissTotals() stats.ClassCounts {
	var t stats.ClassCounts
	for _, e := range r.Epochs {
		t.Cold += e.WriteMisses.Cold
		t.Replace += e.WriteMisses.Replace
		t.TrueSharing += e.WriteMisses.TrueSharing
		t.FalseSharing += e.WriteMisses.FalseSharing
		t.Conservative += e.WriteMisses.Conservative
		t.LeaseExpired += e.WriteMisses.LeaseExpired
		t.Bypass += e.WriteMisses.Bypass
	}
	return t
}

// TopConservative returns up to k source references ordered by
// conservative-miss count (descending), the drill-down that diagnoses
// compiler-marking quality.
func (r *Report) TopConservative(k int) []RefRow {
	rows := make([]RefRow, 0, len(r.Refs))
	for _, rr := range r.Refs {
		if rr.Misses.Conservative > 0 {
			rows = append(rows, rr)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Misses.Conservative != rows[j].Misses.Conservative {
			return rows[i].Misses.Conservative > rows[j].Misses.Conservative
		}
		return rows[i].ID < rows[j].ID
	})
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	return rows
}

// Recorder is the live instrumentation sink the simulator drives. It is
// not safe for concurrent use; the simulator is single-threaded.
type Recorder struct {
	level Level
	a     *agg
	tw    *TraceWriter
}

// NewRecorder builds a recorder at the given level. traceW, when non-nil,
// receives the binary event trace (implying at least LevelTrace).
func NewRecorder(level Level, meta Meta, traceW io.Writer) (*Recorder, error) {
	if traceW != nil {
		level = LevelTrace
	}
	if level == LevelOff {
		return nil, fmt.Errorf("obs: recorder needs a level above %s", LevelOff)
	}
	if level == LevelTrace && traceW == nil {
		return nil, fmt.Errorf("obs: %s needs a trace writer", LevelTrace)
	}
	r := &Recorder{level: level, a: newAgg(meta)}
	if traceW != nil {
		tw, err := NewTraceWriter(traceW, &meta)
		if err != nil {
			return nil, err
		}
		r.tw = tw
	}
	return r, nil
}

// Level reports the active instrumentation level.
func (r *Recorder) Level() Level { return r.level }

// EpochStart notes the barrier that begins an epoch and the cumulative
// cycle count at that point.
func (r *Recorder) EpochStart(epoch, cycle int64) {
	r.a.epochStart(epoch, cycle)
	if r.tw != nil {
		r.tw.epoch(epoch, cycle)
	}
}

// Read records one read reference; class < 0 means cache hit.
func (r *Recorder) Read(proc int, addr prog.Word, ref int32, kind uint8, class int8, stall int64) {
	r.a.read(proc, int64(addr), ref, class, stall)
	r.a.refCount(ref)
	r.a.arrayRead(int64(addr))
	if r.tw != nil {
		r.tw.read(proc, int64(addr), ref, kind, class, stall)
	}
}

// Write records one write reference; class < 0 means cache hit.
func (r *Recorder) Write(proc int, addr prog.Word, ref int32, crit bool, class int8, stall int64) {
	r.a.write(proc, int64(addr), ref, class)
	r.a.refCount(ref)
	if r.tw != nil {
		r.tw.write(proc, int64(addr), ref, crit, class, stall)
	}
}

// Invalidation implements memsys.Probe.
func (r *Recorder) Invalidation(writer, victim int, addr prog.Word, class stats.MissClass) {
	r.a.inval()
	if r.tw != nil {
		r.tw.inval(writer, victim, int64(addr), uint8(class))
	}
}

// TimetagReset implements memsys.Probe.
func (r *Recorder) TimetagReset(epoch int64, words int64) {
	r.a.reset(epoch, words)
	if r.tw != nil {
		r.tw.reset(epoch, words)
	}
}

// Finish closes the trace (if any) and builds the attributed report. st,
// when non-nil, supplies run totals for the trace trailer and the report.
func (r *Recorder) Finish(st *stats.Stats) (*Report, error) {
	rep := r.a.report()
	if st != nil {
		rep.TotalCycles = st.Cycles
	}
	if r.tw != nil {
		var reads, writes int64
		if st != nil {
			reads, writes = st.Reads, st.Writes
		}
		r.tw.end(reads, writes, rep.TotalCycles)
		if err := r.tw.Flush(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}
