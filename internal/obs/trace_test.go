package obs

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
)

func testMeta() Meta {
	return Meta{
		Program:   "synthetic",
		Scheme:    "TPI",
		Procs:     4,
		LineWords: 4,
		MemWords:  64,
		Arrays: []ArraySpan{
			{Name: "A", Base: 0, Size: 32},
			{Name: "B", Base: 32, Size: 16},
			{Name: "x", Base: 48, Size: 1},
		},
		Refs: []RefInfo{
			{Pos: "3:5", Proc: "main", Array: "A", Mark: "time-read", Window: 2},
			{Pos: "4:1", Proc: "main", Array: "B", Mark: "write", Write: true},
		},
	}
}

// TestTraceRoundTrip encodes a synthetic event stream, decodes it, and
// compares every record field-for-field.
func TestTraceRoundTrip(t *testing.T) {
	meta := testMeta()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, &meta)
	if err != nil {
		t.Fatalf("NewTraceWriter: %v", err)
	}
	tw.epoch(1, 0)
	tw.read(2, 33, 0, 1, int8(stats.MissCold), 120)
	tw.read(0, 5, -1, 0, -1, 0) // hit, no static ref
	tw.write(3, 48, 1, false, int8(stats.MissBypass), 0)
	tw.reset(4, 17)
	tw.inval(1, 2, 40, uint8(stats.MissFalseSharing))
	tw.end(2, 1, 999)
	if err := tw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	tr, err := NewTraceReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewTraceReader: %v", err)
	}
	if !reflect.DeepEqual(*tr.Meta(), meta) {
		t.Fatalf("meta round-trip mismatch:\n got %+v\nwant %+v", *tr.Meta(), meta)
	}

	want := []Event{
		{Op: OpEpoch, Epoch: 1, Cycle: 0},
		{Op: OpRead, Proc: 2, Addr: 33, Ref: 0, Kind: 1, Class: int8(stats.MissCold), Stall: 120},
		{Op: OpRead, Proc: 0, Addr: 5, Ref: -1, Kind: 0, Class: -1, Stall: 0},
		{Op: OpWrite, Proc: 3, Addr: 48, Ref: 1, Crit: false, Class: int8(stats.MissBypass), Stall: 0},
		{Op: OpReset, Epoch: 4, Words: 17},
		{Op: OpInval, From: 1, Proc: 2, Addr: 40, Class: int8(stats.MissFalseSharing)},
		{Op: OpEnd, Reads: 2, Writes: 1, Cycle: 999},
	}
	for i, w := range want {
		ev, err := tr.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if !reflect.DeepEqual(ev, w) {
			t.Errorf("event %d:\n got %+v\nwant %+v", i, ev, w)
		}
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF after last record, got %v", err)
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := NewTraceReader(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("want error for bad magic")
	}
}

func TestReplayAggregates(t *testing.T) {
	meta := testMeta()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, &meta)
	if err != nil {
		t.Fatal(err)
	}
	tw.epoch(1, 0)
	tw.read(0, 0, 0, 1, int8(stats.MissCold), 100)     // array A miss
	tw.read(0, 1, 0, 1, -1, 0)                         // array A hit
	tw.write(1, 32, 1, false, int8(stats.MissCold), 0) // array B write miss
	tw.epoch(2, 500)
	tw.read(2, 0, 0, 1, int8(stats.MissConservative), 80)
	tw.reset(2, 9)
	tw.inval(0, 3, 32, uint8(stats.MissTrueSharing))
	tw.end(3, 1, 1000)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	rep, err := Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.TotalCycles != 1000 {
		t.Errorf("TotalCycles = %d, want 1000", rep.TotalCycles)
	}
	rm := rep.ReadMissTotals()
	if rm.Cold != 1 || rm.Conservative != 1 || rm.Total() != 2 {
		t.Errorf("read miss totals = %+v", rm)
	}
	if wm := rep.WriteMissTotals(); wm.Cold != 1 || wm.Total() != 1 {
		t.Errorf("write miss totals = %+v", wm)
	}
	// Epoch attribution: conservative miss and reset land in epoch 2.
	var e2 *EpochRow
	for i := range rep.Epochs {
		if rep.Epochs[i].Epoch == 2 {
			e2 = &rep.Epochs[i]
		}
	}
	if e2 == nil {
		t.Fatal("no epoch-2 row")
	}
	if e2.ReadMisses.Conservative != 1 || e2.TimetagResets != 1 || e2.ResetInvalidations != 9 || e2.Invalidations != 1 {
		t.Errorf("epoch 2 row = %+v", *e2)
	}
	// Array attribution.
	byName := map[string]ArrayRow{}
	for _, a := range rep.Arrays {
		byName[a.Name] = a
	}
	if a := byName["A"]; a.Reads != 3 || a.ReadMisses.Cold != 1 || a.ReadMisses.Conservative != 1 {
		t.Errorf("array A row = %+v", a)
	}
	if b := byName["B"]; b.Writes != 1 || b.WriteMisses.Cold != 1 {
		t.Errorf("array B row = %+v", b)
	}
	// Ref attribution: ref 0 executed 3 reads, 2 misses.
	if len(rep.Refs) == 0 || rep.Refs[0].Count != 3 || rep.Refs[0].Misses.Total() != 2 {
		t.Errorf("ref rows = %+v", rep.Refs)
	}
	// Top conservative.
	top := rep.TopConservative(5)
	if len(top) != 1 || top[0].ID != 0 || top[0].Misses.Conservative != 1 {
		t.Errorf("TopConservative = %+v", top)
	}
}

func TestReplayDetectsTruncatedTotals(t *testing.T) {
	meta := testMeta()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, &meta)
	if err != nil {
		t.Fatal(err)
	}
	tw.epoch(1, 0)
	tw.read(0, 0, -1, 0, -1, 0)
	tw.end(5, 0, 10) // claims 5 reads; stream has 1
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("want totals-mismatch error")
	}
}

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Level
		err  bool
	}{
		{"off", LevelOff, false},
		{"", LevelOff, false},
		{"counters", LevelCounters, false},
		{"trace", LevelTrace, false},
		{"bogus", LevelOff, true},
	} {
		got, err := ParseLevel(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestLatencyBuckets(t *testing.T) {
	if latBucket(0) != 0 || latBucket(1) != 0 {
		t.Error("stall 0/1 should land in the first bucket")
	}
	if latBucket(1025) != numLatBuckets-1 {
		t.Error("huge stall should land in the overflow bucket")
	}
	// Buckets must cover [0, inf) contiguously.
	prev := int64(-1)
	for _, b := range LatencyBucketBounds {
		if b <= prev {
			t.Fatalf("bounds not increasing: %v", LatencyBucketBounds)
		}
		prev = b
	}
}
