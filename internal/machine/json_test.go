package machine

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseConfigOverrides(t *testing.T) {
	base := Default(SchemeTPI)
	cfg, err := ParseConfig([]byte(`{"Procs": 32, "LineWords": 8, "CacheWords": 32768}`), base)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Procs != 32 || cfg.LineWords != 8 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	// Untouched fields keep the base defaults.
	if cfg.TimetagBits != base.TimetagBits || cfg.Scheme != SchemeTPI {
		t.Fatalf("base fields clobbered: %+v", cfg)
	}
}

func TestParseConfigRejectsUnknownFields(t *testing.T) {
	_, err := ParseConfig([]byte(`{"LineWord": 8}`), Default(SchemeTPI))
	if err == nil || !strings.Contains(err.Error(), "LineWord") {
		t.Fatalf("want unknown-field error naming LineWord, got %v", err)
	}
}

func TestParseConfigRejectsInvalid(t *testing.T) {
	for _, bad := range []string{
		`{"Procs": 0}`,
		`{"LineWords": 3}`,
		`{"Scheme": "XYZ"}`,
		`{"Topology": "hypercube"}`,
		`{} {}`,
		`[1,2]`,
	} {
		if _, err := ParseConfig([]byte(bad), Default(SchemeTPI)); err == nil {
			t.Errorf("ParseConfig(%s) = nil error, want failure", bad)
		}
	}
}

func TestSchemeJSONRoundTrip(t *testing.T) {
	for _, s := range AllSchemes {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != `"`+s.String()+`"` {
			t.Fatalf("Scheme %v marshals to %s", s, b)
		}
		var got Scheme
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Fatalf("round trip %v -> %v", s, got)
		}
	}
	// Legacy ordinal form still decodes.
	var got Scheme
	if err := json.Unmarshal([]byte("2"), &got); err != nil || got != SchemeTPI {
		t.Fatalf("ordinal decode: %v %v", got, err)
	}
}

// TestConfigCanonicalRoundTrip is the cache-key stability contract:
// parsing a config's canonical JSON yields the same canonical JSON, and
// equivalent spellings (zero vs explicit default) hash identically.
func TestConfigCanonicalRoundTrip(t *testing.T) {
	for _, s := range AllSchemes {
		cfg := Default(s)
		cfg.Procs = 8
		b, err := cfg.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		re, err := ParseConfig(b, Config{})
		if err != nil {
			t.Fatalf("%s: reparse canonical JSON: %v", s, err)
		}
		b2, err := re.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(b2) {
			t.Fatalf("%s: canonical JSON not a fixed point:\n%s\n%s", s, b, b2)
		}
	}
}

func TestConfigHashEquivalentSpellings(t *testing.T) {
	a := Default(SchemeTPI)
	b := Default(SchemeTPI)
	b.Topology = "multistage"
	b.MaxEpochs = DefaultMaxEpochs
	b.HostParallel = 1
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("equivalent configs hash differently: %s vs %s", ha, hb)
	}
	c := b
	c.LineWords = 8
	c.CacheWords = 16384
	hc, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Fatal("distinct configs share a hash")
	}
}
