package machine

import (
	"strings"
	"testing"
)

func TestDefaultMatchesPaperFigure8(t *testing.T) {
	c := Default(SchemeTPI)
	if c.Procs != 16 {
		t.Errorf("Procs = %d", c.Procs)
	}
	if c.CacheWords != 16384 { // 64 KB of 4-byte words
		t.Errorf("CacheWords = %d", c.CacheWords)
	}
	if c.LineWords != 4 || c.Assoc != 1 {
		t.Errorf("line/assoc = %d/%d", c.LineWords, c.Assoc)
	}
	if c.TimetagBits != 8 || c.ResetCycles != 128 {
		t.Errorf("timetag = %d bits, reset %d", c.TimetagBits, c.ResetCycles)
	}
	if c.HitCycles != 1 || c.MissCycles != 100 {
		t.Errorf("hit/miss = %d/%d", c.HitCycles, c.MissCycles)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.Procs = 0 }, "Procs"},
		{func(c *Config) { c.LineWords = 3 }, "LineWords"},
		{func(c *Config) { c.CacheWords = 6 }, "CacheWords"},
		{func(c *Config) { c.Assoc = 0 }, "Assoc"},
		{func(c *Config) { c.TimetagBits = 0 }, "TimetagBits"},
		{func(c *Config) { c.TimetagBits = 63 }, "TimetagBits"},
		{func(c *Config) { c.SwitchArity = 1 }, "SwitchArity"},
		{func(c *Config) { c.CacheWords = 12; c.LineWords = 4; c.Assoc = 2 }, "associativity"},
		{func(c *Config) { c.Topology = "hypercube" }, "topology"},
		{func(c *Config) { c.L1Words = 6 }, "L1Words"},
	}
	for _, cse := range cases {
		c := Default(SchemeTPI)
		cse.mutate(&c)
		err := c.Validate()
		if err == nil || !strings.Contains(err.Error(), cse.want) {
			t.Errorf("want error containing %q, got %v", cse.want, err)
		}
	}
}

func TestMaxWindow(t *testing.T) {
	c := Default(SchemeTPI)
	c.TimetagBits = 8
	if c.MaxWindow() != 254 {
		t.Errorf("MaxWindow(8) = %d", c.MaxWindow())
	}
	c.TimetagBits = 2
	if c.MaxWindow() != 2 {
		t.Errorf("MaxWindow(2) = %d", c.MaxWindow())
	}
}

func TestSchemeStrings(t *testing.T) {
	want := []string{"BASE", "SC", "TPI", "HW"}
	for i, s := range Schemes {
		if s.String() != want[i] {
			t.Errorf("scheme %d = %s", i, s)
		}
	}
	if !strings.Contains(Scheme(99).String(), "99") {
		t.Error("unknown scheme string")
	}
}
