// Package machine defines the simulated machine configuration. The
// defaults reproduce the paper's Figure 8: a Cray-T3D-like multiprocessor
// with 16 single-issue processors, 64 KB direct-mapped lock-up-free data
// caches with 4-word lines, 1-cycle hits, a 100-cycle base miss latency,
// an 8-bit timetag with a 128-cycle two-phase reset, infinite write
// buffers, weak consistency, and an indirect multistage network whose
// delays follow the Kruskal–Snir analytic model.
package machine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Scheme selects the coherence scheme under simulation.
type Scheme int

const (
	// SchemeBase caches nothing that is shared: every shared reference is
	// a remote memory access (the no-coherence baseline).
	SchemeBase Scheme = iota
	// SchemeSC is the software cache-bypass scheme: potentially-stale
	// references (compiler-marked) bypass the cache; everything else
	// caches with write-through.
	SchemeSC
	// SchemeTPI is the paper's two-phase invalidation HSCD scheme.
	SchemeTPI
	// SchemeHW is the full-map three-state invalidation directory with
	// write-back caches.
	SchemeHW
	// SchemeVC is the Cheong–Veidenbaum version-control HSCD scheme: one
	// current-version number per shared variable, one birth-version
	// number per cache word (our extension; the paper's closest
	// predecessor, compared against directories by Lilja).
	SchemeVC
	// SchemeTardis is timestamp coherence (Yu & Devadas, PACT 2015): per-
	// line write/read-lease timestamps at the home directory slice and
	// per-processor logical clocks replace sharer lists entirely — no
	// invalidation messages; stale copies expire when logical time passes
	// their lease. Its lease-expiry misses are the analog of TPI's
	// conservative misses (our extension).
	SchemeTardis
	// SchemeTardis2 is Tardis with the Tardis 2.0 relaxed-consistency
	// optimizations: lease prediction from per-line reuse history, a
	// MESI-style exclusive grant on unshared read misses, and livelock-
	// avoiding renewal backoff on contended lines.
	SchemeTardis2
)

func (s Scheme) String() string {
	switch s {
	case SchemeBase:
		return "BASE"
	case SchemeSC:
		return "SC"
	case SchemeTPI:
		return "TPI"
	case SchemeHW:
		return "HW"
	case SchemeVC:
		return "VC"
	case SchemeTardis:
		return "TARDIS"
	case SchemeTardis2:
		return "TARDIS2"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// SchemeNames lists the parseable scheme names, in AllSchemes order. It is
// derived from the registry, so error messages and CLI cross-products stay
// in sync with new schemes automatically.
func SchemeNames() []string {
	names := make([]string, len(AllSchemes))
	for i, sc := range AllSchemes {
		names[i] = sc.String()
	}
	return names
}

// ParseScheme resolves a scheme name (case-insensitive: "tpi", "HW", ...).
// The error enumerates every valid name from the scheme registry.
func ParseScheme(s string) (Scheme, error) {
	for _, sc := range AllSchemes {
		if strings.EqualFold(sc.String(), s) {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("machine: unknown scheme %q (want %s)", s, strings.Join(SchemeNames(), ", "))
}

// MarshalJSON encodes the scheme by name, so configs serialize as
// {"Scheme":"TPI",...} rather than an opaque enum ordinal.
func (s Scheme) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts either a scheme name or the legacy ordinal.
func (s *Scheme) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var name string
		if err := json.Unmarshal(b, &name); err != nil {
			return err
		}
		sc, err := ParseScheme(name)
		if err != nil {
			return err
		}
		*s = sc
		return nil
	}
	n, err := strconv.Atoi(string(bytes.TrimSpace(b)))
	if err != nil || n < 0 || n > int(SchemeTardis2) {
		return fmt.Errorf("machine: invalid scheme %s", b)
	}
	*s = Scheme(n)
	return nil
}

// Schemes lists the paper's four schemes in its comparison order.
var Schemes = []Scheme{SchemeBase, SchemeSC, SchemeTPI, SchemeHW}

// AllSchemes is the shared scheme registry: the paper's four schemes plus
// the version-control and Tardis timestamp-coherence extensions. CLI
// cross-products (`tpisim -scheme all`), the exper sweep builders, and
// ParseScheme's error message all derive from this list, so a new scheme
// added here propagates everywhere.
var AllSchemes = []Scheme{SchemeBase, SchemeSC, SchemeTPI, SchemeHW, SchemeVC, SchemeTardis, SchemeTardis2}

// Config is the machine and scheme configuration.
type Config struct {
	Scheme Scheme

	// Procs is the number of processors (paper default 16).
	Procs int
	// CacheWords is the per-processor data cache capacity in words.
	// The paper's 64 KB cache with 32-bit words is 16384 words.
	CacheWords int64
	// LineWords is the cache line size in words (paper default 4).
	LineWords int
	// Assoc is the set associativity (paper default 1, direct-mapped).
	Assoc int

	// TimetagBits is the per-word timetag width (paper default 8).
	TimetagBits int
	// ResetCycles is the stall charged by one two-phase timetag reset
	// (paper default 128).
	ResetCycles int64
	// FlashReset selects the ablation where counter overflow invalidates
	// the whole cache instead of only out-of-phase words.
	FlashReset bool

	// HitCycles and MissCycles are the cache hit latency and the base
	// (unloaded, local-equivalent) miss latency in CPU cycles.
	HitCycles  int64
	MissCycles int64

	// SwitchArity is k for the k-ary multistage interconnection network.
	SwitchArity int

	// Topology selects the interconnect model: "multistage" (the paper's
	// Kruskal–Snir indirect network, the default), "torus" (a 2-D
	// bidirectional torus like the Cray T3D's physical network, with
	// distance-dependent latency to line-interleaved home nodes), or
	// "mesh" (a clustered 2-D mesh NUMA machine: ClusterSize processors
	// per mesh node, one home-directory/memory slice per cluster, and
	// Manhattan-distance latency without wraparound links — the
	// TSAR-style organization for thousand-core configurations).
	Topology string

	// ClusterSize is the number of processors per mesh node (cluster).
	// Memory lines are interleaved across clusters rather than across
	// individual processors, so a cluster's processors share a home
	// slice one hop away. 0 means DefaultClusterSize. Only valid with
	// Topology "mesh".
	ClusterSize int

	// WriteBufferCache organizes the write buffer as a small cache that
	// coalesces redundant writes within an epoch (DEC 21164-style), as the
	// paper recommends to eliminate TPI's redundant write traffic.
	WriteBufferCache bool

	// L1Words enables the two-level "off-the-shelf microprocessor"
	// implementation of the paper's Section 3: a small on-chip L1 without
	// timetags in front of the timetagged off-chip L2. Time-Reads cannot
	// be validated in L1, so they are compiled to a cache-block-invalidate
	// + load sequence (MIPS R10000 / PowerPC DCBF style) that always pays
	// at least the L2 access. 0 disables the L1 (the integrated design).
	L1Words int64

	// L1HitCycles and L2HitCycles split the hit latency for the two-level
	// implementation (defaults 1 and 6).
	L1HitCycles, L2HitCycles int64

	// Prefetch enables one-block-lookahead sequential prefetching on TPI
	// read misses: the next line is fetched alongside the missing one
	// (neighbour-rule timetags), trading extra traffic for fewer misses —
	// with the bus-saturation caveats of Tullsen & Eggers.
	Prefetch bool

	// LineTimetags is the storage-saving ablation: one timetag per cache
	// LINE instead of per word (Figure 5's 8*L*C*P SRAM bits become
	// 8*C*P). Soundness then forbids tag promotion on writes and hits —
	// a line's tag can only claim what ALL its words support — so the
	// scheme pays false-sharing-like conservative misses.
	LineTimetags bool

	// TPIWriteBack switches the HSCD schemes from write-through to
	// write-back with a forced flush of all dirty words at every epoch
	// boundary — the alternative the paper rejects because it "increases
	// the latency of the invalidation, and results in more bursty
	// traffic". Flushes drain at FlushBandwidth words/cycle through the
	// barrier.
	TPIWriteBack bool

	// FlushBandwidth is the epoch-boundary flush drain rate in
	// words/cycle (default 4).
	FlushBandwidth int64

	// MigrateSerial rotates serial epochs across processors instead of
	// pinning them to processor 0, exercising the task-migration scenario
	// the paper's Section 5 discusses.
	MigrateSerial bool

	// CyclicSched schedules DOALL iterations cyclically instead of in
	// blocks.
	CyclicSched bool

	// LockCycles is the cost of acquiring+releasing the critical-section
	// lock.
	LockCycles int64

	// MaxEpochs aborts runaway simulations (0 = default guard).
	MaxEpochs int64

	// DirPointers limits the HW directory to i sharer pointers per line
	// (LimitLess-style DIR_NB(i)); adding a sharer beyond the limit
	// evicts an existing one. 0 means full-map.
	DirPointers int

	// SeqConsistency switches from the weak model to sequential
	// consistency: writes stall the processor until globally performed.
	SeqConsistency bool

	// DynamicSched self-schedules DOALL iterations onto the least-loaded
	// processor instead of a static block/cyclic assignment.
	DynamicSched bool

	// BarrierCycles is the cost of the epoch-boundary barrier.
	BarrierCycles int64

	// FastPath enables the affine reference-stream fast path: innermost
	// serial loops recognized at lower time as straight-line affine
	// stream loops execute through batched per-scheme stream cursors
	// instead of per-reference closure dispatch. Results are bit-identical
	// to the scalar path; the flag exists as a kill-switch and for
	// measuring the speedup. All five schemes stream (BASE, SC, TPI,
	// two-level TPI, HW, VC); only the line-oriented text trace forces
	// the scalar path transparently.
	FastPath bool

	// HostParallel shards the simulated processors of each DOALL epoch
	// across up to this many host goroutines with a deterministic barrier
	// merge (results are bit-identical to sequential execution). 0 or 1
	// keeps the sequential runner. All five schemes shard (HW and VC via
	// always-buffered lanes with barrier-deferred coherence replay);
	// DynamicSched and doalls containing critical/ordered sections fall
	// back to sequential execution transparently.
	HostParallel int

	// LeaseEpochs is the base Tardis read-lease length in logical-time
	// units: a read grants the line a lease to max(rts, gts+LeaseEpochs),
	// and the copy stays valid until the global logical clock passes that
	// bound (0 = DefaultLeaseEpochs). Tardis schemes only.
	LeaseEpochs int64

	// LeaseMax caps the predicted lease length under LeasePredict
	// (0 = DefaultLeaseMax).
	LeaseMax int64

	// LeasePredict enables Tardis 2.0 lease prediction: each line's home
	// entry keeps a reuse history — renewals that found the data unchanged
	// double the next granted lease (up to LeaseMax); a write resets it.
	LeasePredict bool

	// TardisExclusive enables the Tardis 2.0 MESI-style exclusive grant: a
	// read miss to a line with no outstanding leases (rts <= wts) returns
	// the line in the exclusive state, so the reader's later stores are
	// silent (no per-store home message) while it remains the owner.
	TardisExclusive bool

	// RenewBackoff enables the Tardis 2.0 livelock-avoiding renewal
	// backoff: a renewal that found the data changed (the lease was wasted
	// on a contended line) halves the line's next granted lease, down to a
	// single logical-time unit.
	RenewBackoff bool

	// Interproc and FirstReadReuse gate the compiler analyses (ablations).
	Interproc      bool
	FirstReadReuse bool
}

// Default returns the paper's Figure 8 configuration for a scheme. The
// Tardis schemes add their lease parameters; TARDIS2 turns on the three
// Tardis 2.0 optimizations (each individually overridable).
func Default(s Scheme) Config {
	cfg := Config{
		Scheme:           s,
		Procs:            16,
		CacheWords:       16384, // 64 KB of 4-byte words
		LineWords:        4,
		Assoc:            1,
		TimetagBits:      8,
		ResetCycles:      128,
		HitCycles:        1,
		MissCycles:       100,
		SwitchArity:      4,
		WriteBufferCache: true,
		FlushBandwidth:   4,
		L1HitCycles:      1,
		L2HitCycles:      6,
		BarrierCycles:    20,
		LockCycles:       40,
		FastPath:         true,
		Interproc:        true,
		FirstReadReuse:   true,
	}
	if s == SchemeTardis || s == SchemeTardis2 {
		cfg.LeaseEpochs = DefaultLeaseEpochs
		cfg.LeaseMax = DefaultLeaseMax
	}
	if s == SchemeTardis2 {
		cfg.LeasePredict = true
		cfg.TardisExclusive = true
		cfg.RenewBackoff = true
	}
	return cfg
}

// DefaultLeaseEpochs is the base Tardis lease length applied when
// Config.LeaseEpochs is zero.
const DefaultLeaseEpochs = 8

// DefaultLeaseMax is the predicted-lease cap applied when Config.LeaseMax
// is zero.
const DefaultLeaseMax = 256

// IsTardis reports whether the configured scheme is a Tardis variant.
func (c Config) IsTardis() bool {
	return c.Scheme == SchemeTardis || c.Scheme == SchemeTardis2
}

// MaxProcs bounds the simulated machine size. Every scheme scales to
// this width (the directory's presence sets spill to word-packed
// bitsets above 64 processors), so the bound exists to reject absurd
// configurations with a clear error instead of an allocation failure —
// and it keeps the directory's int16 owner pointers sufficient.
const MaxProcs = 16384

// DefaultClusterSize is the processors-per-cluster default of the mesh
// topology: four cores per node, the TSAR-style organization.
const DefaultClusterSize = 4

// MeshClusterSize returns the effective processors-per-cluster for the
// mesh topology, applying the default; it is 0 for other topologies.
func (c Config) MeshClusterSize() int {
	if c.Topology != "mesh" {
		return 0
	}
	if c.ClusterSize > 0 {
		return c.ClusterSize
	}
	return DefaultClusterSize
}

// Clusters returns the number of mesh nodes (home-directory/memory
// slices) of the configuration; it is 0 for non-mesh topologies.
func (c Config) Clusters() int {
	cs := c.MeshClusterSize()
	if cs == 0 {
		return 0
	}
	return (c.Procs + cs - 1) / cs
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Procs <= 0:
		return fmt.Errorf("machine: Procs must be positive, got %d", c.Procs)
	case c.Procs > MaxProcs:
		return fmt.Errorf("machine: Procs %d exceeds the supported maximum %d", c.Procs, MaxProcs)
	case c.LineWords <= 0 || (c.LineWords&(c.LineWords-1)) != 0:
		return fmt.Errorf("machine: LineWords must be a positive power of two, got %d", c.LineWords)
	case c.CacheWords <= 0 || c.CacheWords%int64(c.LineWords) != 0:
		return fmt.Errorf("machine: CacheWords %d must be a positive multiple of LineWords %d", c.CacheWords, c.LineWords)
	case c.Assoc <= 0:
		return fmt.Errorf("machine: Assoc must be positive, got %d", c.Assoc)
	case c.TimetagBits < 1 || c.TimetagBits > 62:
		return fmt.Errorf("machine: TimetagBits out of range: %d", c.TimetagBits)
	case c.SwitchArity < 2:
		return fmt.Errorf("machine: SwitchArity must be >= 2, got %d", c.SwitchArity)
	case c.Topology != "" && c.Topology != "multistage" && c.Topology != "torus" && c.Topology != "mesh":
		return fmt.Errorf("machine: unknown topology %q", c.Topology)
	case c.ClusterSize < 0:
		return fmt.Errorf("machine: ClusterSize must be >= 0, got %d", c.ClusterSize)
	case c.ClusterSize > 0 && c.Topology != "mesh":
		return fmt.Errorf("machine: ClusterSize is only meaningful with the mesh topology, got %q", c.Topology)
	case c.HostParallel < 0:
		return fmt.Errorf("machine: HostParallel must be >= 0, got %d", c.HostParallel)
	case c.LeaseEpochs < 0:
		return fmt.Errorf("machine: LeaseEpochs must be >= 0, got %d", c.LeaseEpochs)
	case c.LeaseMax < 0:
		return fmt.Errorf("machine: LeaseMax must be >= 0, got %d", c.LeaseMax)
	case c.LeaseMax > 0 && c.LeaseEpochs > c.LeaseMax:
		return fmt.Errorf("machine: LeaseEpochs %d exceeds LeaseMax %d", c.LeaseEpochs, c.LeaseMax)
	}
	lines := c.CacheWords / int64(c.LineWords)
	if lines%int64(c.Assoc) != 0 {
		return fmt.Errorf("machine: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	if c.L1Words > 0 {
		if c.L1Words%int64(c.LineWords) != 0 {
			return fmt.Errorf("machine: L1Words %d must be a multiple of LineWords %d", c.L1Words, c.LineWords)
		}
		if (c.L1Words/int64(c.LineWords))%int64(c.Assoc) != 0 {
			return fmt.Errorf("machine: L1 lines not divisible by associativity %d", c.Assoc)
		}
	}
	return nil
}

// DefaultMaxEpochs is the runaway-simulation guard applied when
// Config.MaxEpochs is zero.
const DefaultMaxEpochs = 50_000_000

// ParseConfig decodes a Config from JSON, rejecting unknown fields so a
// typo'd override ("LineWord") fails loudly instead of silently running
// the default. Field names are the Go struct names; Scheme accepts its
// string form. The input is merged over base, so callers pass
// Default(scheme) to get override semantics. The result is validated but
// NOT canonicalized; cache-key users must call Canonical themselves.
func ParseConfig(data []byte, base Config) (Config, error) {
	cfg := base
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("machine: config JSON: %w", err)
	}
	// A second document in the payload is a client bug, not trailing noise.
	if dec.More() {
		return Config{}, fmt.Errorf("machine: config JSON: trailing data after config object")
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Canonical returns the config with behavior-neutral zero values resolved
// to the defaults the runtime would apply anyway, so two configs that
// simulate identically serialize identically:
//
//   - Topology ""  → "multistage" (memsys builds the multistage net for both)
//   - ClusterSize 0 under "mesh" → DefaultClusterSize (what memsys applies)
//   - MaxEpochs 0  → DefaultMaxEpochs (the guard sim applies for 0)
//   - HostParallel 0 → 1 (both select the sequential runner)
//   - LeaseEpochs/LeaseMax 0 under a Tardis scheme → their defaults
//     (what internal/tardis applies)
//
// Fields that change only host-side performance but are contractually
// bit-identical in results (FastPath, HostParallel > 1) are kept as-is:
// a kill-switch run must really re-execute.
func (c Config) Canonical() Config {
	if c.Topology == "" {
		c.Topology = "multistage"
	}
	if c.Topology == "mesh" && c.ClusterSize == 0 {
		c.ClusterSize = DefaultClusterSize
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = DefaultMaxEpochs
	}
	if c.HostParallel == 0 {
		c.HostParallel = 1
	}
	if c.IsTardis() {
		if c.LeaseEpochs == 0 {
			c.LeaseEpochs = DefaultLeaseEpochs
		}
		if c.LeaseMax == 0 {
			c.LeaseMax = DefaultLeaseMax
		}
	}
	return c
}

// CanonicalJSON is the deterministic serialization used for cache keys:
// the canonicalized config marshaled with the fixed struct field order.
func (c Config) CanonicalJSON() ([]byte, error) {
	return json.Marshal(c.Canonical())
}

// Hash is the content address of the canonical config (hex sha256),
// stable across processes and across equivalent spellings of a config.
func (c Config) Hash() (string, error) {
	b, err := c.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// MaxWindow is the widest Time-Read window the timetag width can support:
// one value is reserved to distinguish "just written" from the oldest
// representable epoch, as in the two-phase scheme.
func (c Config) MaxWindow() int64 {
	return (int64(1) << uint(c.TimetagBits)) - 2
}
