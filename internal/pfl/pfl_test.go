package pfl

import (
	"strings"
	"testing"
)

const sampleSrc = `
program sample
param n = 8
scalar sum = 0.0
array A[n][n]
array B[n][n]
array W[2*n]

proc main() {
  doall i = 0 to n-1 {
    for j = 0 to n-1 {
      A[i][j] = i * n + j
    }
  }
  call smooth(A, B)
  for t = 0 to 1 {
    doall i = 1 to n-2 {
      for j = 1 to n-2 {
        B[i][j] = (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]) / 4.0
      }
      critical {
        sum = sum + B[i][1]
      }
      ordered {
        B[i][0] = max(B[i][0], abs(sum) * 0.5)
      }
    }
  }
  if (sum > 0.0) {
    W[0] = sum
  } else {
    W[1] = 0.0 - sum
  }
}

proc smooth(X[][], Y[][]) {
  doall i = 0 to n-1 {
    Y[i][0] = X[i][0] * 0.5
  }
}
`

func TestLexBasics(t *testing.T) {
	toks, err := lexAll("doall i = 0 to n-1 { A[i] = 1.5e2 } # comment\n")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		kinds = append(kinds, tk.text)
	}
	want := []string{"doall", "i", "=", "0", "to", "n", "-", "1", "{", "A", "[", "i", "]", "=", "1.5e2", "}"}
	if strings.Join(kinds, " ") != strings.Join(want, " ") {
		t.Fatalf("tokens = %v, want %v", kinds, want)
	}
}

func TestLexMultiCharOps(t *testing.T) {
	toks, err := lexAll("a <= b && c != d || !e >= f == g")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tk := range toks {
		if tk.kind == tokOp {
			ops = append(ops, tk.text)
		}
	}
	want := []string{"<=", "&&", "!=", "||", "!", ">=", "=="}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lexAll("a @ b"); err == nil {
		t.Fatal("want error for @")
	}
}

func TestParseAndCheckSample(t *testing.T) {
	prog, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "sample" {
		t.Errorf("name = %q", prog.Name)
	}
	if len(prog.Procs) != 2 || prog.Proc("smooth") == nil {
		t.Fatalf("procs = %d", len(prog.Procs))
	}
	if info.NumDoalls != 3 {
		t.Errorf("NumDoalls = %d, want 3", info.NumDoalls)
	}
	if info.NumRefs == 0 {
		t.Error("no refs numbered")
	}
	if got := info.Callees["main"]; len(got) != 1 || got[0] != "smooth" {
		t.Errorf("callees(main) = %v", got)
	}
	if info.GlobalArrayRank["A"] != 2 || info.GlobalArrayRank["W"] != 1 {
		t.Errorf("ranks = %v", info.GlobalArrayRank)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	prog, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	src2 := Format(prog)
	prog2, err := Parse(src2)
	if err != nil {
		t.Fatalf("reparse of formatted output failed: %v\nsource:\n%s", err, src2)
	}
	// formatting must be a fixed point after one round
	src3 := Format(prog2)
	if src2 != src3 {
		t.Fatalf("format not idempotent:\n--- first ---\n%s\n--- second ---\n%s", src2, src3)
	}
}

func TestPrecedence(t *testing.T) {
	prog, err := Parse(`
program p
scalar s
array A[4]
proc main() {
  s = 1 + 2 * 3
  A[0] = s
}
`)
	if err != nil {
		t.Fatal(err)
	}
	as := prog.Procs[0].Body.Stmts[0].(*AssignStmt)
	be := as.RHS.(*BinExpr)
	if be.Op != "+" {
		t.Fatalf("top op = %q, want +", be.Op)
	}
	if inner, ok := be.Y.(*BinExpr); !ok || inner.Op != "*" {
		t.Fatalf("rhs of + should be *, got %v", FormatExpr(be.Y))
	}
}

func TestParenOverridesPrecedence(t *testing.T) {
	prog, err := Parse(`
program p
scalar s
proc main() {
  s = (1 + 2) * 3
}
`)
	if err != nil {
		t.Fatal(err)
	}
	as := prog.Procs[0].Body.Stmts[0].(*AssignStmt)
	be := as.RHS.(*BinExpr)
	if be.Op != "*" {
		t.Fatalf("top op = %q, want *", be.Op)
	}
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	prog, err := Parse(src)
	if err == nil {
		_, err = Check(prog)
	}
	if err == nil || !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error = %v, want substring %q", err, wantSub)
	}
}

func TestCheckErrors(t *testing.T) {
	t.Run("no main", func(t *testing.T) {
		checkErr(t, `program p
array A[2]
proc other() { A[0] = 1 }`, "no proc main")
	})
	t.Run("nested doall", func(t *testing.T) {
		checkErr(t, `program p
param n = 4
array A[n][n]
proc main() {
  doall i = 0 to n-1 {
    doall j = 0 to n-1 { A[i][j] = 0 }
  }
}`, "nested doall")
	})
	t.Run("call inside doall", func(t *testing.T) {
		checkErr(t, `program p
param n = 4
array A[n]
proc main() {
  doall i = 0 to n-1 { call f(A) }
}
proc f(X[]) { X[0] = 1 }`, "call inside doall")
	})
	t.Run("undefined name", func(t *testing.T) {
		checkErr(t, `program p
array A[2]
proc main() { A[0] = zz }`, "undefined name")
	})
	t.Run("rank mismatch", func(t *testing.T) {
		checkErr(t, `program p
array A[2][2]
proc main() { A[0] = 1 }`, "rank 2")
	})
	t.Run("recursion", func(t *testing.T) {
		checkErr(t, `program p
array A[2]
proc main() { call f(A) }
proc f(X[]) { call f(X) }`, "recursive")
	})
	t.Run("assign to param", func(t *testing.T) {
		checkErr(t, `program p
param n = 3
proc main() { n = 4 }`, "not a scalar")
	})
	t.Run("critical outside doall", func(t *testing.T) {
		checkErr(t, `program p
scalar s
proc main() { critical { s = 1 } }`, "critical section outside doall")
	})
	t.Run("loop bound uses own var", func(t *testing.T) {
		checkErr(t, `program p
array A[9]
proc main() { for i = 0 to i { A[0] = 1 } }`, "may not use loop variable")
	})
	t.Run("shadowing loop var", func(t *testing.T) {
		checkErr(t, `program p
param n = 4
array A[n]
proc main() {
  for i = 0 to n-1 { for i = 0 to n-1 { A[0] = 1 } }
}`, "shadows")
	})
	t.Run("arg count", func(t *testing.T) {
		checkErr(t, `program p
array A[2]
proc main() { call f() }
proc f(X[]) { X[0] = 1 }`, "got 0 args")
	})
}

func TestRefIDsDense(t *testing.T) {
	prog, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, info.NumRefs)
	var walkE func(Expr)
	walkE = func(e Expr) {
		switch ex := e.(type) {
		case *VarRef:
			if ex.RefID >= 0 {
				if ex.RefID >= info.NumRefs || seen[ex.RefID] {
					t.Fatalf("bad scalar RefID %d", ex.RefID)
				}
				seen[ex.RefID] = true
			}
		case *IndexRef:
			if ex.RefID < 0 || ex.RefID >= info.NumRefs || seen[ex.RefID] {
				t.Fatalf("bad RefID %d", ex.RefID)
			}
			seen[ex.RefID] = true
			for _, s := range ex.Subs {
				walkE(s)
			}
		case *BinExpr:
			walkE(ex.X)
			walkE(ex.Y)
		case *UnExpr:
			walkE(ex.X)
		case *CallExpr:
			for _, a := range ex.Args {
				walkE(a)
			}
		}
	}
	var walkB func(*Block)
	walkS := func(s Stmt) {
		switch st := s.(type) {
		case *AssignStmt:
			walkE(st.LHS)
			walkE(st.RHS)
		case *ForStmt:
			walkE(st.Lo)
			walkE(st.Hi)
			walkB(st.Body)
		case *DoallStmt:
			walkE(st.Lo)
			walkE(st.Hi)
			walkB(st.Body)
		case *IfStmt:
			walkE(st.Cond)
			walkB(st.Then)
			if st.Else != nil {
				walkB(st.Else)
			}
		case *CriticalStmt:
			walkB(st.Body)
		case *OrderedStmt:
			walkB(st.Body)
		}
	}
	walkB = func(b *Block) {
		for _, s := range b.Stmts {
			walkS(s)
		}
	}
	for _, pr := range prog.Procs {
		walkB(pr.Body)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("RefID %d never assigned", i)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	// Parser and checker errors must carry accurate line:col positions.
	cases := []struct {
		src  string
		want string // "line:col" prefix expected in the message
	}{
		{"program p\nproc main() { x = }", "2:19"},              // missing expr
		{"program p\nscalar s\nproc main() { s = zz }", "3:19"}, // undefined name
		{"program p\nproc main() { doall i = 0 to }", "2:30"},   // missing bound
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err == nil {
			_, err = Check(prog)
		}
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error %q does not mention position %s", err, c.want)
		}
	}
}

func TestIntrinsicFormatRoundTrip(t *testing.T) {
	src := `program p
scalar s
proc main() {
  s = min(abs(s), max(1.0, sin(s)))
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err != nil {
		t.Fatal(err)
	}
	out := Format(prog)
	if !strings.Contains(out, "min(abs(s), max(1.0, sin(s)))") {
		t.Fatalf("intrinsics not formatted:\n%s", out)
	}
	if _, err := Parse(out); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func TestOrderedCheckErrors(t *testing.T) {
	checkErr(t, `program p
scalar s
proc main() { ordered { s = 1 } }`, "ordered section outside doall")
}
