package pfl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokKeyword
	tokOp // operators and punctuation
)

var keywords = map[string]bool{
	"program": true, "param": true, "scalar": true, "array": true,
	"proc": true, "for": true, "doall": true, "to": true, "step": true,
	"if": true, "else": true, "call": true, "critical": true, "ordered": true,
}

type token struct {
	kind tokKind
	text string
	pos  Pos
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer converts PFL source text into a token stream.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(pos Pos, format string, args ...any) error {
	return fmt.Errorf("pfl: %s: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// multi-byte operators, longest first.
var multiOps = []string{"<=", ">=", "==", "!=", "&&", "||"}

// next scans the next token.
func (l *lexer) next() (token, error) {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: Pos{l.line, l.col}}, nil

scan:
	pos := Pos{l.line, l.col}
	c := l.peekByte()

	if unicode.IsLetter(rune(c)) || c == '_' {
		start := l.off
		for l.off < len(l.src) {
			c := l.peekByte()
			if !unicode.IsLetter(rune(c)) && !unicode.IsDigit(rune(c)) && c != '_' {
				break
			}
			l.advance()
		}
		text := l.src[start:l.off]
		if keywords[text] {
			return token{kind: tokKeyword, text: text, pos: pos}, nil
		}
		return token{kind: tokIdent, text: text, pos: pos}, nil
	}

	if unicode.IsDigit(rune(c)) || (c == '.' && l.off+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.off+1]))) {
		start := l.off
		seenDot, seenExp := false, false
		for l.off < len(l.src) {
			c := l.peekByte()
			switch {
			case unicode.IsDigit(rune(c)):
				l.advance()
			case c == '.' && !seenDot && !seenExp:
				seenDot = true
				l.advance()
			case (c == 'e' || c == 'E') && !seenExp && l.off > start:
				seenExp = true
				l.advance()
				if l.peekByte() == '+' || l.peekByte() == '-' {
					l.advance()
				}
			default:
				goto doneNum
			}
		}
	doneNum:
		text := l.src[start:l.off]
		if _, err := strconv.ParseFloat(text, 64); err != nil {
			return token{}, l.errorf(pos, "malformed number %q", text)
		}
		return token{kind: tokNumber, text: text, pos: pos}, nil
	}

	if l.off+1 < len(l.src) {
		two := l.src[l.off : l.off+2]
		for _, op := range multiOps {
			if two == op {
				l.advance()
				l.advance()
				return token{kind: tokOp, text: op, pos: pos}, nil
			}
		}
	}

	if strings.ContainsRune("+-*/%<>=!(){}[],", rune(c)) {
		l.advance()
		return token{kind: tokOp, text: string(c), pos: pos}, nil
	}

	return token{}, l.errorf(pos, "unexpected character %q", string(c))
}

// lexAll scans the whole input (used by tests).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
