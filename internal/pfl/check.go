package pfl

import (
	"fmt"
	"sort"
)

// Info is the result of semantic analysis: resolved symbol kinds, dense
// reference and DOALL numbering, and per-procedure call information. The
// checker also mutates the AST in place, assigning IndexRef.RefID and
// DoallStmt.ID.
type Info struct {
	Prog *Program

	// NumRefs is the total number of array references in the program;
	// RefIDs are dense in [0, NumRefs).
	NumRefs int
	// NumDoalls is the total number of DOALL statements; IDs are dense.
	NumDoalls int

	// GlobalArrayRank maps global array name to its rank.
	GlobalArrayRank map[string]int
	// Callees maps procedure name to the set of procedures it calls.
	Callees map[string][]string
}

type symKind int

const (
	symNone symKind = iota
	symParam
	symScalar
	symArray
	symLoopVar
)

// Check performs semantic analysis and returns program info. Rules:
// name resolution; array rank agreement; DOALL bodies may not contain
// nested DOALLs or calls (the paper's epochs are flat parallel loops);
// calls pass arrays only; the call graph must be acyclic; main must exist
// and take no formals.
func Check(p *Program) (*Info, error) {
	info := &Info{
		Prog:            p,
		GlobalArrayRank: make(map[string]int),
		Callees:         make(map[string][]string),
	}

	globals := map[string]symKind{}
	declare := func(name string, k symKind, pos Pos) error {
		if globals[name] != symNone {
			return fmt.Errorf("pfl: %s: duplicate global declaration %q", pos, name)
		}
		globals[name] = k
		return nil
	}
	for _, d := range p.Params {
		// The initializer may only use parameters declared before it.
		if err := checkParamInit(globals, d.Value); err != nil {
			return nil, err
		}
		if err := declare(d.Name, symParam, d.Pos); err != nil {
			return nil, err
		}
	}
	for _, d := range p.Scalars {
		if err := declare(d.Name, symScalar, d.Pos); err != nil {
			return nil, err
		}
	}
	for _, d := range p.Arrays {
		if err := declare(d.Name, symArray, d.Pos); err != nil {
			return nil, err
		}
		info.GlobalArrayRank[d.Name] = len(d.Dims)
		for _, dim := range d.Dims {
			if err := checkParamExpr(p, dim); err != nil {
				return nil, err
			}
		}
	}

	procNames := map[string]*Proc{}
	for _, pr := range p.Procs {
		if procNames[pr.Name] != nil {
			return nil, fmt.Errorf("pfl: %s: duplicate proc %q", pr.Pos, pr.Name)
		}
		if globals[pr.Name] != symNone {
			return nil, fmt.Errorf("pfl: %s: proc %q collides with a global", pr.Pos, pr.Name)
		}
		procNames[pr.Name] = pr
	}
	main := procNames["main"]
	if main == nil {
		return nil, fmt.Errorf("pfl: program %s has no proc main", p.Name)
	}
	if len(main.Formals) != 0 {
		return nil, fmt.Errorf("pfl: %s: proc main must take no formals", main.Pos)
	}

	for _, pr := range p.Procs {
		c := &checker{prog: p, info: info, globals: globals, procs: procNames, proc: pr}
		c.arrayRank = map[string]int{}
		for name, r := range info.GlobalArrayRank {
			c.arrayRank[name] = r
		}
		seen := map[string]bool{}
		for _, f := range pr.Formals {
			if globals[f.Name] != symNone || seen[f.Name] {
				return nil, fmt.Errorf("pfl: %s: formal %q shadows another name", f.Pos, f.Name)
			}
			seen[f.Name] = true
			c.arrayRank[f.Name] = f.Rank
		}
		if err := c.block(pr.Body, false); err != nil {
			return nil, err
		}
		sort.Strings(info.Callees[pr.Name])
	}

	if err := checkAcyclic(info.Callees, "main"); err != nil {
		return nil, err
	}
	return info, nil
}

// checkParamExpr verifies that e is a constant expression over params.
func checkParamExpr(p *Program, e Expr) error {
	switch ex := e.(type) {
	case *NumLit:
		if !ex.IsInt {
			return fmt.Errorf("pfl: %s: array dimension must be an integer", ex.Pos)
		}
		return nil
	case *VarRef:
		if p.Param(ex.Name) == nil {
			return fmt.Errorf("pfl: %s: array dimension must use params only, found %q", ex.Pos, ex.Name)
		}
		return nil
	case *BinExpr:
		if err := checkParamExpr(p, ex.X); err != nil {
			return err
		}
		return checkParamExpr(p, ex.Y)
	case *UnExpr:
		return checkParamExpr(p, ex.X)
	default:
		return fmt.Errorf("pfl: %s: invalid array dimension expression", e.Position())
	}
}

type checker struct {
	prog      *Program
	info      *Info
	globals   map[string]symKind
	procs     map[string]*Proc
	proc      *Proc
	arrayRank map[string]int // arrays visible in this proc (globals + formals)
	loopVars  []string       // active loop variables, innermost last
}

func (c *checker) loopVarActive(name string) bool {
	for _, v := range c.loopVars {
		if v == name {
			return true
		}
	}
	return false
}

func (c *checker) block(b *Block, inDoall bool) error {
	for _, s := range b.Stmts {
		if err := c.stmt(s, inDoall); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt, inDoall bool) error {
	switch st := s.(type) {
	case *AssignStmt:
		switch lhs := st.LHS.(type) {
		case *VarRef:
			if c.globals[lhs.Name] != symScalar {
				return fmt.Errorf("pfl: %s: assignment target %q is not a scalar", lhs.Pos, lhs.Name)
			}
			lhs.RefID = c.info.NumRefs
			c.info.NumRefs++
		case *IndexRef:
			if err := c.expr(lhs); err != nil {
				return err
			}
		default:
			return fmt.Errorf("pfl: %s: invalid assignment target", st.Pos)
		}
		return c.expr(st.RHS)
	case *ForStmt:
		if err := c.enterLoopVar(st.Var, st.Pos); err != nil {
			return err
		}
		defer c.exitLoopVar()
		for _, e := range []Expr{st.Lo, st.Hi} {
			// bounds may not use the loop's own variable
			if err := c.exprNoVar(e, st.Var); err != nil {
				return err
			}
		}
		if st.Step != nil {
			if err := c.exprNoVar(st.Step, st.Var); err != nil {
				return err
			}
		}
		return c.block(st.Body, inDoall)
	case *DoallStmt:
		if inDoall {
			return fmt.Errorf("pfl: %s: nested doall is not allowed", st.Pos)
		}
		st.ID = c.info.NumDoalls
		c.info.NumDoalls++
		if err := c.enterLoopVar(st.Var, st.Pos); err != nil {
			return err
		}
		defer c.exitLoopVar()
		for _, e := range []Expr{st.Lo, st.Hi} {
			if err := c.exprNoVar(e, st.Var); err != nil {
				return err
			}
		}
		return c.block(st.Body, true)
	case *IfStmt:
		if err := c.expr(st.Cond); err != nil {
			return err
		}
		if err := c.block(st.Then, inDoall); err != nil {
			return err
		}
		if st.Else != nil {
			return c.block(st.Else, inDoall)
		}
		return nil
	case *CallStmt:
		if inDoall {
			return fmt.Errorf("pfl: %s: call inside doall is not allowed", st.Pos)
		}
		callee := c.procs[st.Name]
		if callee == nil {
			return fmt.Errorf("pfl: %s: call to undefined proc %q", st.Pos, st.Name)
		}
		if len(st.Args) != len(callee.Formals) {
			return fmt.Errorf("pfl: %s: call %s: got %d args, want %d",
				st.Pos, st.Name, len(st.Args), len(callee.Formals))
		}
		for i, arg := range st.Args {
			rank, ok := c.arrayRank[arg]
			if !ok {
				return fmt.Errorf("pfl: %s: call %s: argument %q is not an array", st.Pos, st.Name, arg)
			}
			if rank != callee.Formals[i].Rank {
				return fmt.Errorf("pfl: %s: call %s: argument %q has rank %d, formal %q wants %d",
					st.Pos, st.Name, arg, rank, callee.Formals[i].Name, callee.Formals[i].Rank)
			}
		}
		c.info.Callees[c.proc.Name] = appendUnique(c.info.Callees[c.proc.Name], st.Name)
		return nil
	case *CriticalStmt:
		if !inDoall {
			return fmt.Errorf("pfl: %s: critical section outside doall", st.Pos)
		}
		return c.block(st.Body, inDoall)
	case *OrderedStmt:
		if !inDoall {
			return fmt.Errorf("pfl: %s: ordered section outside doall", st.Pos)
		}
		return c.block(st.Body, inDoall)
	default:
		return fmt.Errorf("pfl: %s: unknown statement", s.Position())
	}
}

func (c *checker) enterLoopVar(name string, pos Pos) error {
	if c.globals[name] != symNone || c.arrayRank[name] > 0 || c.loopVarActive(name) {
		return fmt.Errorf("pfl: %s: loop variable %q shadows another name", pos, name)
	}
	c.loopVars = append(c.loopVars, name)
	return nil
}

func (c *checker) exitLoopVar() {
	c.loopVars = c.loopVars[:len(c.loopVars)-1]
}

func (c *checker) expr(e Expr) error {
	switch ex := e.(type) {
	case *NumLit:
		return nil
	case *VarRef:
		switch {
		case c.loopVarActive(ex.Name):
			return nil
		case c.globals[ex.Name] == symParam:
			return nil
		case c.globals[ex.Name] == symScalar:
			ex.RefID = c.info.NumRefs
			c.info.NumRefs++
			return nil
		case c.arrayRank[ex.Name] > 0:
			return fmt.Errorf("pfl: %s: array %q used without subscripts", ex.Pos, ex.Name)
		default:
			return fmt.Errorf("pfl: %s: undefined name %q", ex.Pos, ex.Name)
		}
	case *IndexRef:
		rank, ok := c.arrayRank[ex.Name]
		if !ok {
			return fmt.Errorf("pfl: %s: %q is not an array", ex.Pos, ex.Name)
		}
		if len(ex.Subs) != rank {
			return fmt.Errorf("pfl: %s: array %q has rank %d, got %d subscripts",
				ex.Pos, ex.Name, rank, len(ex.Subs))
		}
		ex.RefID = c.info.NumRefs
		c.info.NumRefs++
		for _, s := range ex.Subs {
			if err := c.expr(s); err != nil {
				return err
			}
		}
		return nil
	case *BinExpr:
		if err := c.expr(ex.X); err != nil {
			return err
		}
		return c.expr(ex.Y)
	case *UnExpr:
		return c.expr(ex.X)
	case *CallExpr:
		arity, ok := Intrinsics[ex.Name]
		if !ok {
			return fmt.Errorf("pfl: %s: unknown intrinsic %q", ex.Pos, ex.Name)
		}
		if len(ex.Args) != arity {
			return fmt.Errorf("pfl: %s: intrinsic %s takes %d argument(s), got %d",
				ex.Pos, ex.Name, arity, len(ex.Args))
		}
		for _, a := range ex.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("pfl: %s: unknown expression", e.Position())
	}
}

// Intrinsics maps the builtin pure functions to their arities.
var Intrinsics = map[string]int{
	"abs": 1, "sqrt": 1, "exp": 1, "log": 1, "sin": 1, "cos": 1,
	"floor": 1, "min": 2, "max": 2,
}

// exprNoVar checks e and additionally rejects uses of variable v (used for
// loop bounds, which may not reference the loop's own index).
func (c *checker) exprNoVar(e Expr, v string) error {
	if err := c.expr(e); err != nil {
		return err
	}
	var uses func(Expr) bool
	uses = func(e Expr) bool {
		switch ex := e.(type) {
		case *VarRef:
			return ex.Name == v
		case *IndexRef:
			for _, s := range ex.Subs {
				if uses(s) {
					return true
				}
			}
		case *BinExpr:
			return uses(ex.X) || uses(ex.Y)
		case *UnExpr:
			return uses(ex.X)
		case *CallExpr:
			for _, a := range ex.Args {
				if uses(a) {
					return true
				}
			}
		}
		return false
	}
	if uses(e) {
		return fmt.Errorf("pfl: %s: loop bound may not use loop variable %q", e.Position(), v)
	}
	return nil
}

func appendUnique(ss []string, s string) []string {
	for _, x := range ss {
		if x == s {
			return ss
		}
	}
	return append(ss, s)
}

// checkAcyclic rejects recursive call graphs (the interprocedural analysis
// is a bottom-up pass over an acyclic call graph, as in the paper).
func checkAcyclic(callees map[string][]string, root string) error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) error
	visit = func(n string) error {
		switch color[n] {
		case grey:
			return fmt.Errorf("pfl: recursive call cycle through %q", n)
		case black:
			return nil
		}
		color[n] = grey
		for _, m := range callees[n] {
			if err := visit(m); err != nil {
				return err
			}
		}
		color[n] = black
		return nil
	}
	return visit(root)
}

// checkParamInit verifies a param initializer is a constant expression
// over already-declared params.
func checkParamInit(declared map[string]symKind, e Expr) error {
	switch ex := e.(type) {
	case *NumLit:
		if !ex.IsInt {
			return fmt.Errorf("pfl: %s: param initializer must be an integer", ex.Pos)
		}
		return nil
	case *VarRef:
		if declared[ex.Name] != symParam {
			return fmt.Errorf("pfl: %s: param initializer may only use earlier params, found %q", ex.Pos, ex.Name)
		}
		return nil
	case *UnExpr:
		return checkParamInit(declared, ex.X)
	case *BinExpr:
		if err := checkParamInit(declared, ex.X); err != nil {
			return err
		}
		return checkParamInit(declared, ex.Y)
	default:
		return fmt.Errorf("pfl: %s: invalid param initializer", e.Position())
	}
}
