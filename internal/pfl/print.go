package pfl

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a program back to parseable PFL source.
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, d := range p.Params {
		fmt.Fprintf(&b, "param %s = %s\n", d.Name, FormatExpr(d.Value))
	}
	for _, d := range p.Scalars {
		if d.Init != 0 {
			fmt.Fprintf(&b, "scalar %s = %s\n", d.Name, formatFloat(d.Init))
		} else {
			fmt.Fprintf(&b, "scalar %s\n", d.Name)
		}
	}
	for _, d := range p.Arrays {
		fmt.Fprintf(&b, "array %s", d.Name)
		for _, dim := range d.Dims {
			fmt.Fprintf(&b, "[%s]", FormatExpr(dim))
		}
		b.WriteByte('\n')
	}
	for _, pr := range p.Procs {
		b.WriteByte('\n')
		fmt.Fprintf(&b, "proc %s(", pr.Name)
		for i, f := range pr.Formals {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Name + strings.Repeat("[]", f.Rank))
		}
		b.WriteString(") ")
		formatBlock(&b, pr.Body, 0)
		b.WriteByte('\n')
	}
	return b.String()
}

func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func formatBlock(b *strings.Builder, blk *Block, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		formatStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch st := s.(type) {
	case *AssignStmt:
		fmt.Fprintf(b, "%s = %s\n", FormatExpr(st.LHS), FormatExpr(st.RHS))
	case *ForStmt:
		fmt.Fprintf(b, "for %s = %s to %s", st.Var, FormatExpr(st.Lo), FormatExpr(st.Hi))
		if st.Step != nil {
			fmt.Fprintf(b, " step %s", FormatExpr(st.Step))
		}
		b.WriteString(" ")
		formatBlock(b, st.Body, depth)
		b.WriteString("\n")
	case *DoallStmt:
		fmt.Fprintf(b, "doall %s = %s to %s ", st.Var, FormatExpr(st.Lo), FormatExpr(st.Hi))
		formatBlock(b, st.Body, depth)
		b.WriteString("\n")
	case *IfStmt:
		fmt.Fprintf(b, "if (%s) ", FormatExpr(st.Cond))
		formatBlock(b, st.Then, depth)
		if st.Else != nil {
			b.WriteString(" else ")
			formatBlock(b, st.Else, depth)
		}
		b.WriteString("\n")
	case *CallStmt:
		fmt.Fprintf(b, "call %s(%s)\n", st.Name, strings.Join(st.Args, ", "))
	case *CriticalStmt:
		b.WriteString("critical ")
		formatBlock(b, st.Body, depth)
		b.WriteString("\n")
	case *OrderedStmt:
		b.WriteString("ordered ")
		formatBlock(b, st.Body, depth)
		b.WriteString("\n")
	}
}

// FormatExpr renders an expression to parseable source.
func FormatExpr(e Expr) string {
	switch ex := e.(type) {
	case *NumLit:
		if ex.IsInt {
			return strconv.FormatInt(int64(ex.Val), 10)
		}
		return formatFloat(ex.Val)
	case *VarRef:
		return ex.Name
	case *IndexRef:
		var b strings.Builder
		b.WriteString(ex.Name)
		for _, s := range ex.Subs {
			fmt.Fprintf(&b, "[%s]", FormatExpr(s))
		}
		return b.String()
	case *UnExpr:
		return ex.Op + parenIfBinary(ex.X)
	case *CallExpr:
		args := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = FormatExpr(a)
		}
		return ex.Name + "(" + strings.Join(args, ", ") + ")"
	case *BinExpr:
		return fmt.Sprintf("%s %s %s", parenIfBinary(ex.X), ex.Op, parenIfBinary(ex.Y))
	default:
		return "<?expr>"
	}
}

func parenIfBinary(e Expr) string {
	if _, ok := e.(*BinExpr); ok {
		return "(" + FormatExpr(e) + ")"
	}
	return FormatExpr(e)
}
