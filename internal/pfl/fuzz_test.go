package pfl

import (
	"strings"
	"testing"
)

// FuzzParse asserts the front end never panics: any input either parses
// (and then formats to re-parseable source) or returns an error.
func FuzzParse(f *testing.F) {
	f.Add(sampleSrc)
	f.Add("program p\nproc main() { }")
	f.Add("program p\nscalar s\nproc main() { s = min(1.0, sin(s)) }")
	f.Add("program p\narray A[4]\nproc main() { doall i = 0 to 3 { ordered { A[i] = 1 } } }")
	f.Add(strings.Repeat("(", 2000))
	f.Add("program p\n" + strings.Repeat("param x%d = 1\n", 3))
	f.Add("\x00\x01\xff")
	f.Add("program p proc main() { if (1 < 2 && 3 > 4) { } else { } }")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := Check(prog); err != nil {
			return
		}
		// A checked program must format to source that parses and checks.
		out := Format(prog)
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\n%s", err, out)
		}
		if _, err := Check(p2); err != nil {
			t.Fatalf("formatted output does not re-check: %v\n%s", err, out)
		}
	})
}

func TestDeepNestingRejected(t *testing.T) {
	src := "program p\nscalar s\nproc main() { s = " + strings.Repeat("(", 600) + "1" + strings.Repeat(")", 600) + " }"
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "nesting too deep") {
		t.Fatalf("want nesting error, got %v", err)
	}
}
