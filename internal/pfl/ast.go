// Package pfl implements the parallel Fortran-like mini-language used as
// the compiler's input. PFL captures exactly the program shape the paper's
// analysis operates on: a sequence of serial sections and DOALL loops
// (epochs), procedures with array reference parameters, and affine (or
// deliberately non-affine) array subscripts.
//
// A program consists of global declarations (integer parameters, float
// scalars, float arrays) and procedures. Execution starts at proc main.
// DOALL iterations are assumed independent (the parallelizer's output);
// cross-iteration communication must go through critical sections.
package pfl

import "fmt"

// Pos is a source position for diagnostics.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Program is a parsed PFL compilation unit.
type Program struct {
	Name    string
	Params  []*ParamDecl
	Scalars []*ScalarDecl
	Arrays  []*ArrayDecl
	Procs   []*Proc
}

// Proc looks up a procedure by name, or nil.
func (p *Program) Proc(name string) *Proc {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// Array looks up a global array declaration by name, or nil.
func (p *Program) Array(name string) *ArrayDecl {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Param looks up a parameter declaration by name, or nil.
func (p *Program) Param(name string) *ParamDecl {
	for _, d := range p.Params {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// ParamDecl is a compile-time integer constant: `param n = 64`.
// The initializer may be any constant expression over previously declared
// parameters: `param half = n / 2`.
type ParamDecl struct {
	Pos   Pos
	Name  string
	Value Expr
}

// ScalarDecl is a global shared float scalar: `scalar eps = 0.5`.
type ScalarDecl struct {
	Pos  Pos
	Name string
	Init float64
}

// ArrayDecl is a global shared float array: `array A[n][n]`.
type ArrayDecl struct {
	Pos  Pos
	Name string
	Dims []Expr // constant or parameter expressions
}

// Proc is a procedure. Formals are arrays passed by reference; scalars and
// parameters are global, so procedures only abstract over array identity
// (which is what makes interprocedural section translation non-trivial).
type Proc struct {
	Pos     Pos
	Name    string
	Formals []*Formal
	Body    *Block
}

// Formal is an array reference parameter with a declared rank.
type Formal struct {
	Pos  Pos
	Name string
	Rank int
}

// Block is a statement sequence.
type Block struct {
	Stmts []Stmt
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Position() Pos
	stmtNode()
}

// AssignStmt assigns RHS to an array element or scalar.
type AssignStmt struct {
	Pos Pos
	LHS Expr // *IndexRef or *VarRef
	RHS Expr
}

// ForStmt is a serial loop: `for i = lo to hi [step s] { ... }`.
type ForStmt struct {
	Pos    Pos
	Var    string
	Lo, Hi Expr
	Step   Expr // nil means 1
	Body   *Block
}

// DoallStmt is a parallel loop whose iterations form the tasks of one
// epoch: `doall i = lo to hi { ... }`.
type DoallStmt struct {
	Pos    Pos
	Var    string
	Lo, Hi Expr
	Body   *Block
	// ID is assigned by the checker: a dense index over all DOALLs in the
	// program, used by later phases to attach analysis results.
	ID int
}

// IfStmt is a conditional.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// CallStmt invokes a procedure with array arguments (by reference).
type CallStmt struct {
	Pos  Pos
	Name string
	Args []string // array names visible in the caller
}

// CriticalStmt is a critical section: its body executes atomically with
// respect to all other critical sections (one global lock, as in the
// paper's treatment of lock-protected data).
type CriticalStmt struct {
	Pos  Pos
	Body *Block
}

// OrderedStmt is a DOACROSS-style ordered section inside a doall: the
// bodies execute in ascending iteration order, so an iteration may
// legally consume data produced by earlier iterations' ordered sections
// within the same epoch. Coherence-wise its references need the same
// treatment as critical-section data (same-epoch cross-task flow).
type OrderedStmt struct {
	Pos  Pos
	Body *Block
}

func (s *AssignStmt) Position() Pos   { return s.Pos }
func (s *ForStmt) Position() Pos      { return s.Pos }
func (s *DoallStmt) Position() Pos    { return s.Pos }
func (s *IfStmt) Position() Pos       { return s.Pos }
func (s *CallStmt) Position() Pos     { return s.Pos }
func (s *CriticalStmt) Position() Pos { return s.Pos }
func (s *OrderedStmt) Position() Pos  { return s.Pos }

func (*AssignStmt) stmtNode()   {}
func (*ForStmt) stmtNode()      {}
func (*DoallStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*CallStmt) stmtNode()     {}
func (*CriticalStmt) stmtNode() {}
func (*OrderedStmt) stmtNode()  {}

// Expr is implemented by all expression nodes.
type Expr interface {
	Position() Pos
	exprNode()
}

// NumLit is a numeric literal.
type NumLit struct {
	Pos   Pos
	Val   float64
	IsInt bool
}

// VarRef names a scalar, parameter, or loop index.
// RefID is assigned by the checker for references that resolve to global
// scalars (which are shared memory); it is -1 for parameters and loop
// indices (register values with no memory identity).
type VarRef struct {
	Pos   Pos
	Name  string
	RefID int
}

// IndexRef is an array element reference A[e1][e2]...
// RefID is assigned by the checker: a dense program-wide identity used by
// the marking phase to attach per-reference coherence annotations.
type IndexRef struct {
	Pos   Pos
	Name  string
	Subs  []Expr
	RefID int
}

// BinExpr is a binary operation. Op is one of
// + - * / % < <= > >= == != && ||.
type BinExpr struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

// UnExpr is a unary operation: - or !.
type UnExpr struct {
	Pos Pos
	Op  string
	X   Expr
}

// CallExpr is a builtin intrinsic application: abs, min, max, sqrt, exp,
// log, sin, cos, floor. Intrinsics are pure; their results are non-affine
// for subscript analysis.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

func (e *NumLit) Position() Pos   { return e.Pos }
func (e *VarRef) Position() Pos   { return e.Pos }
func (e *IndexRef) Position() Pos { return e.Pos }
func (e *BinExpr) Position() Pos  { return e.Pos }
func (e *UnExpr) Position() Pos   { return e.Pos }
func (e *CallExpr) Position() Pos { return e.Pos }

func (*NumLit) exprNode()   {}
func (*VarRef) exprNode()   {}
func (*IndexRef) exprNode() {}
func (*BinExpr) exprNode()  {}
func (*UnExpr) exprNode()   {}
func (*CallExpr) exprNode() {}
